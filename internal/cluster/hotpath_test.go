package cluster

import (
	"runtime"
	"testing"
)

// TestParallelEncodeBitwiseMatchesSerial pins the parallel-bucket-encode
// invariant: the overlap path's encode worker pool (active when GOMAXPROCS
// > 1) fans gather+encode out across buckets, but every bucket owns its
// algorithm instance and RNG stream and the exchanges are enqueued in bucket
// order — so the run is bitwise identical to the same overlap run encoded
// serially (GOMAXPROCS = 1), including for stochastic quantizers.
func TestParallelEncodeBitwiseMatchesSerial(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, algo := range []string{"a2sgd", "topk", "qsgd"} {
		runtime.GOMAXPROCS(1)
		serial, err := Train(bucketCfg(algo, 4, fourBucketBytes, true))
		if err != nil {
			t.Fatal(err)
		}
		// The pool is sized by GOMAXPROCS / Workers (all 4 ranks share this
		// process), so 16 gives every rank a 4-worker encode pool.
		runtime.GOMAXPROCS(16)
		parallel, err := Train(bucketCfg(algo, 4, fourBucketBytes, true))
		if err != nil {
			t.Fatal(err)
		}
		if serial.Buckets < 4 || parallel.Buckets != serial.Buckets {
			t.Fatalf("%s: bucket counts %d vs %d", algo, serial.Buckets, parallel.Buckets)
		}
		assertRunsIdentical(t, algo+" parallel-vs-serial encode", serial, parallel)
	}
}

// TestParallelEncodeSurfacesNonFiniteGradient: the worker-pool path must
// still fail cleanly (no hang, no panic) when a bucket's gradient diverges.
func TestParallelEncodeSurfacesNonFiniteGradient(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	runtime.GOMAXPROCS(8) // 2 ranks → a 4-worker encode pool each
	cfg := bucketCfg("a2sgd", 2, fourBucketBytes, true)
	cfg.LRScale = 1e12 // blow the run up within a few steps
	cfg.Epochs = 30
	if _, err := Train(cfg); err == nil {
		t.Skip("run did not diverge at this scale; nothing to assert")
	}
}
