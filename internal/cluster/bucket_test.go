package cluster

import (
	"testing"

	"a2sgd/internal/comm"
	"a2sgd/internal/compress"
	"a2sgd/internal/core"
	"a2sgd/internal/netsim"
)

// fnn3 at reduced scale has 9,178 parameters in 8 tensors; an 8 KiB bucket
// budget (2,048 float32s) splits them into exactly 4 layer-granular buckets.
const fourBucketBytes = 8192

func bucketCfg(algo string, workers, bucketBytes int, overlap bool) Config {
	cfg := quickCfg("fnn3", algo, workers)
	cfg.BucketBytes = bucketBytes
	cfg.Overlap = overlap
	return cfg
}

// recDoublingFactory builds algorithms pinned to recursive-doubling
// allreduce, whose per-element reduction order is independent of vector
// length — the property that makes bucketed dense bitwise-equal to
// whole-vector dense.
func recDoublingFactory(name string) func(rank, n int) compress.Algorithm {
	return func(rank, n int) compress.Algorithm {
		o := compress.DefaultOptions(n)
		o.Allreduce = comm.AlgoRecursiveDoubling
		switch name {
		case "dense":
			return compress.NewDense(o)
		case "a2sgd":
			return core.NewFromOptions(o)
		default:
			panic("unknown algo " + name)
		}
	}
}

func assertRunsIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.FinalMetric() != b.FinalMetric() {
		t.Errorf("%s: final metric %v != %v", label, a.FinalMetric(), b.FinalMetric())
	}
	if len(a.Epochs) != len(b.Epochs) {
		t.Fatalf("%s: epoch counts %d != %d", label, len(a.Epochs), len(b.Epochs))
	}
	for i := range a.Epochs {
		if a.Epochs[i].Loss != b.Epochs[i].Loss || a.Epochs[i].Metric != b.Epochs[i].Metric {
			t.Errorf("%s: epoch %d diverged: %+v vs %+v", label, i, a.Epochs[i], b.Epochs[i])
		}
	}
}

// TestOverlapMatchesSynchronousBuckets pins the pipeline's core invariant:
// for a fixed seed and bucket plan, launching bucket exchanges on the
// progress worker (overlap) is bitwise identical to running them inline —
// the collectives execute in the same order with the same operands.
func TestOverlapMatchesSynchronousBuckets(t *testing.T) {
	for _, algo := range []string{"dense", "a2sgd"} {
		sync, err := Train(bucketCfg(algo, 4, fourBucketBytes, false))
		if err != nil {
			t.Fatal(err)
		}
		over, err := Train(bucketCfg(algo, 4, fourBucketBytes, true))
		if err != nil {
			t.Fatal(err)
		}
		if sync.Buckets < 4 {
			t.Fatalf("%s: plan produced %d buckets, want >= 4", algo, sync.Buckets)
		}
		if !over.Overlap || over.Buckets != sync.Buckets {
			t.Fatalf("%s: overlap run metadata %+v", algo, over)
		}
		assertRunsIdentical(t, algo+" overlap-vs-sync", sync, over)
	}
}

// TestBucketedDenseMatchesSingleBucket: with recursive-doubling allreduce,
// the 4-bucket overlapped dense run reproduces the single-bucket result
// exactly — bucketing only re-slices the vector, and rec-doubling's
// per-element reduction order does not depend on the vector length.
func TestBucketedDenseMatchesSingleBucket(t *testing.T) {
	single := bucketCfg("dense", 4, 0, false)
	single.NewAlgorithm = recDoublingFactory("dense")
	rs, err := Train(single)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Buckets != 1 {
		t.Fatalf("single-bucket run has %d buckets", rs.Buckets)
	}
	bucketed := bucketCfg("dense", 4, fourBucketBytes, true)
	bucketed.NewAlgorithm = recDoublingFactory("dense")
	rb, err := Train(bucketed)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Buckets != 4 {
		t.Fatalf("bucketed run has %d buckets, want 4", rb.Buckets)
	}
	assertRunsIdentical(t, "dense 4-bucket vs single", rs, rb)
}

// TestSingleBucketOverlapMatchesLegacy: the default configuration (one
// whole-model bucket) must stay numerically identical with overlap enabled,
// so the existing convergence tests remain the oracle for the new loop.
func TestSingleBucketOverlapMatchesLegacy(t *testing.T) {
	for _, algo := range []string{"dense", "a2sgd", "topk", "qsgd"} {
		legacy, err := Train(bucketCfg(algo, 2, 0, false))
		if err != nil {
			t.Fatal(err)
		}
		over, err := Train(bucketCfg(algo, 2, 0, true))
		if err != nil {
			t.Fatal(err)
		}
		if legacy.Buckets != 1 || over.Buckets != 1 {
			t.Fatalf("%s: bucket counts %d/%d", algo, legacy.Buckets, over.Buckets)
		}
		assertRunsIdentical(t, algo+" single-bucket overlap", legacy, over)
	}
}

// TestBucketedA2SGDConverges: per-bucket two-level means carry strictly more
// information than one global pair (2 scalars per bucket), so bucketed A2SGD
// must still track dense convergence on fnn3.
//
// Note an intentional limit: bucketed A2SGD is a *different estimator* from
// whole-model A2SGD (per-bucket µ± instead of one global pair), so — unlike
// dense, pinned bitwise in TestBucketedDenseMatchesSingleBucket — its
// trajectory cannot match the single-bucket run exactly for any float
// implementation. The exact cross-plan invariant for A2SGD is
// overlap-vs-sync at a fixed plan (TestOverlapMatchesSynchronousBuckets);
// a global-mean-preserving bucketed variant (ship per-bucket (Σ, count)
// sums, combine after WaitAll) is recorded as a ROADMAP follow-up.
func TestBucketedA2SGDConverges(t *testing.T) {
	dense, err := Train(bucketCfg("dense", 4, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	single, err := Train(bucketCfg("a2sgd", 4, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	bucketed, err := Train(bucketCfg("a2sgd", 4, fourBucketBytes, true))
	if err != nil {
		t.Fatal(err)
	}
	// The finer estimator must stay convergence-equivalent to whole-model
	// A2SGD: same-ballpark final accuracy on the same budget.
	if d := bucketed.FinalMetric() - single.FinalMetric(); d < -0.05 || d > 0.05 {
		t.Errorf("bucketed a2sgd %.4f vs whole-model %.4f — drifted beyond ±0.05",
			bucketed.FinalMetric(), single.FinalMetric())
	}
	if bucketed.FinalMetric() < dense.FinalMetric()-0.12 {
		t.Errorf("bucketed a2sgd %.3f much worse than dense %.3f",
			bucketed.FinalMetric(), dense.FinalMetric())
	}
	// O(1)-per-bucket traffic: 8 bytes per bucket per step.
	if want := int64(8 * bucketed.Buckets); bucketed.PayloadBytes != want {
		t.Errorf("payload %d, want %d", bucketed.PayloadBytes, want)
	}
	if len(bucketed.BucketPayloadBytes) != bucketed.Buckets {
		t.Errorf("per-bucket payloads %v", bucketed.BucketPayloadBytes)
	}
}

// TestPerBucketSeedsDiffer: NewBucketAlgorithm receives the bucket index, so
// stochastic compressors can decorrelate their per-bucket RNG streams.
func TestPerBucketSeedsDiffer(t *testing.T) {
	seeds := map[int]uint64{}
	cfg := bucketCfg("qsgd", 2, fourBucketBytes, true)
	cfg.NewAlgorithm = nil
	cfg.NewBucketAlgorithm = func(rank int, info compress.BucketInfo) compress.Algorithm {
		o := compress.DefaultOptions(info.Params)
		o.Seed = uint64(rank+1)*1000 + uint64(info.Index)
		if rank == 0 {
			seeds[info.Index] = o.Seed
		}
		return compress.NewQSGD(o)
	}
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Buckets != 4 || len(seeds) != 4 {
		t.Fatalf("buckets %d, distinct bucket seeds %d", res.Buckets, len(seeds))
	}
}

// TestOverlapOverTCP runs the overlapped bucket pipeline over real loopback
// sockets and checks it matches the in-process fabric bitwise.
func TestOverlapOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration")
	}
	inproc, err := Train(bucketCfg("a2sgd", 3, fourBucketBytes, true))
	if err != nil {
		t.Fatal(err)
	}
	tcp := bucketCfg("a2sgd", 3, fourBucketBytes, true)
	tcp.GroupRunner = tcpRunner
	rt, err := Train(tcp)
	if err != nil {
		t.Fatal(err)
	}
	assertRunsIdentical(t, "a2sgd overlap tcp-vs-inproc", inproc, rt)
}

// TestOverlapModeledCheaperThanSerial: the overlap-aware iteration price
// must undercut the serial law whenever sync can hide behind encode, and
// degenerate to it for a single bucket.
func TestOverlapModeledCheaperThanSerial(t *testing.T) {
	res, err := Train(bucketCfg("a2sgd", 4, fourBucketBytes, true))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []netsim.Fabric{netsim.IB100(), netsim.TCP10G()} {
		over := res.ModeledIterSecOverlap(f)
		serial := res.ModeledIterSecSerial(f)
		if over >= serial {
			t.Errorf("%s: overlap %.3e not cheaper than serial %.3e", f.Name, over, serial)
		}
		if over <= res.AvgComputeSec {
			t.Errorf("%s: overlap price %.3e below pure compute", f.Name, over)
		}
	}
	// Single bucket: both laws agree (within float addition order).
	single, err := Train(bucketCfg("a2sgd", 4, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	f := netsim.IB100()
	over, serial := single.ModeledIterSecOverlap(f), single.ModeledIterSec(f)
	if diff := over - serial; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("single bucket: overlap %.3e != serial %.3e", over, serial)
	}
}
