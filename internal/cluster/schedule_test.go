package cluster

import (
	"testing"

	"a2sgd/internal/compress"
	"a2sgd/internal/models"
	"a2sgd/internal/netsim"
	"a2sgd/internal/nn"
	"a2sgd/internal/plan"
)

func fnn3Segments(t *testing.T) []nn.Segment {
	t.Helper()
	m, err := models.New(models.Config{Family: "fnn3", Seed: 1, Reduced: true})
	if err != nil {
		t.Fatal(err)
	}
	return m.ParamSegments()
}

// legacyPolicyCfg builds the runtime's canonical policy-driven config: the
// same construction (and compress.BucketSeed derivation) the a2sgd façade
// uses for TrainConfig{BucketBytes, Policy, Topology}.
func legacyPolicyCfg(t *testing.T, policy string, bucketBytes, topology int, overlap bool) Config {
	t.Helper()
	pol, err := compress.ParsePolicy(policy)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg("fnn3", "dense", 4)
	cfg.NewAlgorithm = nil
	cfg.BucketBytes = bucketBytes
	cfg.Topology = topology
	cfg.Overlap = overlap
	cfg.NewBucketAlgorithm = func(rank int, info compress.BucketInfo) compress.Algorithm {
		o := compress.DefaultOptions(info.Params)
		o.Seed = compress.BucketSeed(cfg.Seed, rank, info.Index)
		a, err := compress.Build(pol.SpecFor(info), o)
		if err != nil {
			panic(err)
		}
		return a
	}
	return cfg
}

// TestScheduleLoweringBitwiseIdentical is the back-compat acceptance pin:
// for every legacy (policy, bucket, topology) configuration, running the
// plan.Lower schedule through the schedule path — cluster building the
// algorithms from Schedule.Specs itself — reproduces the legacy run
// bitwise (identical per-epoch losses and metrics).
func TestScheduleLoweringBitwiseIdentical(t *testing.T) {
	segs := fnn3Segments(t)
	cases := []struct {
		name             string
		policy           string
		bucket, topology int
		overlap          bool
	}{
		{"whole-model a2sgd", "uniform(a2sgd)", 0, 0, false},
		{"bucketed qsgd overlap", "uniform(qsgd)", fourBucketBytes, 0, true},
		{"mixed hierarchical", "mixed(big=a2sgd, small=dense, threshold=8KiB)", fourBucketBytes, 2, true},
	}
	for _, tc := range cases {
		legacy, err := Train(legacyPolicyCfg(t, tc.policy, tc.bucket, tc.topology, tc.overlap))
		if err != nil {
			t.Fatalf("%s legacy: %v", tc.name, err)
		}
		pol, err := compress.ParsePolicy(tc.policy)
		if err != nil {
			t.Fatal(err)
		}
		cfg := quickCfg("fnn3", "dense", 4)
		cfg.NewAlgorithm = nil // cluster builds from Schedule.Specs
		cfg.Schedule = plan.Lower(segs, pol, tc.bucket, tc.topology, tc.overlap, cfg.Workers)
		lowered, err := Train(cfg)
		if err != nil {
			t.Fatalf("%s lowered: %v", tc.name, err)
		}
		assertRunsIdentical(t, tc.name+" legacy-vs-lowered", legacy, lowered)
		if lowered.Buckets != legacy.Buckets || lowered.Overlap != legacy.Overlap ||
			lowered.Topology != legacy.Topology {
			t.Errorf("%s: run metadata diverged: %d/%v/%d vs %d/%v/%d", tc.name,
				lowered.Buckets, lowered.Overlap, lowered.Topology,
				legacy.Buckets, legacy.Overlap, legacy.Topology)
		}
		if lowered.Policy != pol.Name() {
			t.Errorf("%s: result policy %q, want %q", tc.name, lowered.Policy, pol.Name())
		}
	}
}

// TestAutoPlannedRunEndToEnd trains with a planner-built schedule on the
// in-process fabric and checks the run obeys the schedule.
func TestAutoPlannedRunEndToEnd(t *testing.T) {
	segs := fnn3Segments(t)
	sched, err := plan.Build(segs, plan.Options{
		Workers: 4, Pricer: netsim.TwoTierTCP10G(2),
		Candidates: []string{"dense", "a2sgd"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg("fnn3", "dense", 4)
	cfg.NewAlgorithm = nil
	cfg.Schedule = sched
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Buckets != sched.NumBuckets() {
		t.Errorf("ran %d buckets, schedule has %d", res.Buckets, sched.NumBuckets())
	}
	if res.Overlap != sched.Overlap {
		t.Errorf("overlap %v, schedule %v", res.Overlap, sched.Overlap)
	}
	if sched.Topology > 1 && res.Topology != sched.Topology {
		t.Errorf("topology %d, schedule %d", res.Topology, sched.Topology)
	}
	if res.Policy != sched.Policy {
		t.Errorf("policy %q, schedule %q", res.Policy, sched.Policy)
	}
	// The run must converge like any fnn3 quick run (not a degenerate
	// schedule): well above the 10-class floor after 3 epochs.
	if res.FinalMetric() < 0.5 {
		t.Errorf("auto-planned run reached only %.3f accuracy", res.FinalMetric())
	}
}

func TestScheduleConfigValidation(t *testing.T) {
	segs := fnn3Segments(t)
	pol, err := compress.ParsePolicy("uniform(dense)")
	if err != nil {
		t.Fatal(err)
	}
	sched := plan.Lower(segs, pol, 0, 0, false, 4)

	// Schedule + legacy knobs is a conflict.
	cfg := quickCfg("fnn3", "dense", 4)
	cfg.Schedule = sched
	cfg.BucketBytes = 4096
	if _, err := Train(cfg); err == nil {
		t.Error("expected Schedule+BucketBytes conflict error")
	}
	// Worker mismatch is rejected.
	cfg = quickCfg("fnn3", "dense", 2)
	cfg.NewAlgorithm = nil
	cfg.Schedule = sched // planned for 4
	if _, err := Train(cfg); err == nil {
		t.Error("expected worker-count mismatch error")
	}
	// A schedule whose bounds don't fit the model is rejected.
	cfg = quickCfg("fnn3", "dense", 4)
	cfg.NewAlgorithm = nil
	cfg.Schedule = &plan.Schedule{
		Bounds: []int{0, 128}, Specs: []*compress.Spec{{Name: "dense"}},
	}
	if _, err := Train(cfg); err == nil {
		t.Error("expected bounds-mismatch error")
	}
	// An invalid spec in the schedule is rejected up front.
	cfg = quickCfg("fnn3", "dense", 4)
	cfg.NewAlgorithm = nil
	cfg.Schedule = &plan.Schedule{
		Bounds: []int{0, 9178}, Specs: []*compress.Spec{{Name: "no-such"}},
	}
	if _, err := Train(cfg); err == nil {
		t.Error("expected unknown-spec error")
	}
}
