package cluster

import (
	"math"
	"testing"

	"a2sgd/internal/comm/tcpnet"
)

// TestHierarchicalTrainingConvergesLikeFlat trains the same configuration
// flat and with a two-level topology. The hierarchical reduction order
// differs, so losses match to float tolerance rather than bitwise; the final
// metric must be convergence-equivalent.
func TestHierarchicalTrainingConvergesLikeFlat(t *testing.T) {
	for _, algo := range []string{"dense", "a2sgd"} {
		cfg := quickCfg("fnn3", algo, 8)
		cfg.Epochs, cfg.StepsPerEpoch = 2, 6
		flat, err := Train(cfg)
		if err != nil {
			t.Fatalf("%s flat: %v", algo, err)
		}
		hcfg := cfg
		hcfg.Topology = 4
		hier, err := Train(hcfg)
		if err != nil {
			t.Fatalf("%s hierarchical: %v", algo, err)
		}
		if hier.Topology != 4 {
			t.Errorf("%s: Result.Topology = %d, want 4", algo, hier.Topology)
		}
		for e := range flat.Epochs {
			fe, he := flat.Epochs[e], hier.Epochs[e]
			if d := math.Abs(fe.Loss - he.Loss); d > 1e-3*math.Max(1, math.Abs(fe.Loss)) {
				t.Errorf("%s epoch %d: flat loss %v vs hierarchical %v (|Δ|=%g)",
					algo, e, fe.Loss, he.Loss, d)
			}
		}
		if d := math.Abs(flat.FinalMetric() - hier.FinalMetric()); d > 0.05 {
			t.Errorf("%s: flat metric %v vs hierarchical %v", algo, flat.FinalMetric(), hier.FinalMetric())
		}
	}
}

// TestHierarchicalTrainingDeterministic pins that two hierarchical runs with
// the same seed and topology are bitwise identical.
func TestHierarchicalTrainingDeterministic(t *testing.T) {
	cfg := quickCfg("fnn3", "a2sgd", 6)
	cfg.Epochs, cfg.StepsPerEpoch = 2, 5
	cfg.Topology = 3
	cfg.Overlap = true
	cfg.BucketBytes = 4096
	a, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := range a.Epochs {
		if a.Epochs[e].Loss != b.Epochs[e].Loss || a.Epochs[e].Metric != b.Epochs[e].Metric {
			t.Fatalf("epoch %d differs between identical hierarchical runs: %+v vs %+v",
				e, a.Epochs[e], b.Epochs[e])
		}
	}
}

// TestHierarchicalOverlapMatchesSync pins that the overlapped hierarchical
// pipeline is bitwise identical to the synchronous hierarchical path — the
// progress worker executes the same two-level collectives in the same order.
func TestHierarchicalOverlapMatchesSync(t *testing.T) {
	cfg := quickCfg("fnn3", "dense", 6)
	cfg.Epochs, cfg.StepsPerEpoch = 2, 5
	cfg.Topology = 2
	cfg.BucketBytes = 4096
	sync, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Overlap = true
	over, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := range sync.Epochs {
		if sync.Epochs[e].Loss != over.Epochs[e].Loss {
			t.Fatalf("epoch %d: sync loss %v != overlap loss %v",
				e, sync.Epochs[e].Loss, over.Epochs[e].Loss)
		}
	}
}

// TestHierarchicalTrainingOverTCP runs a small hierarchical training job on
// the real TCP fabric: the two-level schedules must be transport agnostic.
func TestHierarchicalTrainingOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := quickCfg("fnn3", "dense", 4)
	cfg.Epochs, cfg.StepsPerEpoch = 1, 4
	cfg.Topology = 2
	cfg.GroupRunner = tcpnet.RunGroup
	tcp, err := Train(cfg)
	if err != nil {
		t.Fatalf("hierarchical TCP training: %v", err)
	}
	cfg.GroupRunner = nil
	inproc, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Dense arithmetic is transport independent: identical collectives,
	// identical schedule, identical results.
	for e := range inproc.Epochs {
		if inproc.Epochs[e].Loss != tcp.Epochs[e].Loss {
			t.Fatalf("epoch %d: inproc loss %v != tcp loss %v",
				e, inproc.Epochs[e].Loss, tcp.Epochs[e].Loss)
		}
	}
}
