package cluster

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"a2sgd/internal/comm/faultnet"
	"a2sgd/internal/tensor"
)

// chaosScenarios are the recoverable fault scenarios of the property sweep:
// they perturb timing, ordering and delivery, never arithmetic.
var chaosScenarios = []string{
	"delay(link=*, alpha=30us, jitter=50us)",
	"dup(link=*, p=0.3)",
	"reorder(link=*, p=0.3)",
	"loss(link=*, p=0.1, resend=200us)",
	"straggler(rank=1, x2)",
	"dup(link=*, p=0.2) reorder(link=*, p=0.2) delay(link=*, alpha=10us)",
	"flap(rank=1, period=25ms, duty=0.7)",
	"partition(groups=0-1|2-3, after=8ms, dur=10ms)",
}

// TestChaosPropertySweep is the seeded fault-equivalence property test: a
// fixed RNG draws configurations across every axis the runtime exposes —
// algorithm spec, two-level topology, tag-space concurrency, backprop
// interleaving — pairs each with a recoverable fault scenario, and asserts
// the faulted run's final checkpoint is bitwise identical to the serial,
// synchronous, fault-free run of the same algorithm and topology. Fault
// injection may reshape wire timing arbitrarily; it must never change a bit
// of the training result.
func TestChaosPropertySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos property sweep")
	}
	algos := []string{"dense", "a2sgd", "qsgd"}
	topologies := []int{0, 2}
	concurrencies := []int{0, 4}

	// Serial fault-free baselines, keyed by algorithm and topology (the two
	// axes that change the arithmetic; overlap/concurrency/interleave and
	// faults must not).
	baselines := map[string][]byte{}
	baseline := func(algo string, topo int) []byte {
		key := fmt.Sprintf("%s/t%d", algo, topo)
		if b, ok := baselines[key]; ok {
			return b
		}
		cfg := bucketCfg(algo, 4, fourBucketBytes, false)
		cfg.Topology = topo
		_, ckpt := trainWithCheckpoint(t, cfg)
		if len(ckpt) == 0 {
			t.Fatalf("%s: baseline produced an empty checkpoint", key)
		}
		baselines[key] = ckpt
		return ckpt
	}

	rng := tensor.NewRNG(20260807)
	const draws = 8
	for i := 0; i < draws; i++ {
		algo := algos[rng.Intn(len(algos))]
		topo := topologies[rng.Intn(len(topologies))]
		conc := concurrencies[rng.Intn(len(concurrencies))]
		interleave := rng.Intn(2) == 1
		scenario := chaosScenarios[rng.Intn(len(chaosScenarios))]
		label := fmt.Sprintf("draw %d: %s topo=%d conc=%d interleave=%v faults=%q",
			i, algo, topo, conc, interleave, scenario)

		cfg := bucketCfg(algo, 4, fourBucketBytes, true)
		cfg.Topology = topo
		cfg.Concurrency = conc
		cfg.Interleave = interleave
		sc := faultnet.MustParse(fmt.Sprintf("seed(%d) %s", 100+uint64(i), scenario))
		cfg.GroupRunner = faultnet.GroupRunner(sc, false)

		res, ckpt := trainWithCheckpoint(t, cfg)
		if !bytes.Equal(ckpt, baseline(algo, topo)) {
			t.Errorf("%s: final weights differ from the serial fault-free run", label)
		}
		if res.Buckets < 2 {
			t.Errorf("%s: plan produced %d buckets, want >= 2", label, res.Buckets)
		}
	}
}

// TestChaosCrashSurfacesStepError: an injected crash makes Train return a
// step-scoped error promptly — no deadlock, no hang — on both the overlap
// and the synchronous paths.
func TestChaosCrashSurfacesStepError(t *testing.T) {
	for _, overlap := range []bool{true, false} {
		cfg := bucketCfg("a2sgd", 4, fourBucketBytes, overlap)
		sc := faultnet.MustParse("deadline(1s) crash(rank=3, step=4)")
		cfg.GroupRunner = faultnet.GroupRunner(sc, false)
		start := time.Now()
		_, err := Train(cfg)
		if err == nil {
			t.Fatalf("overlap=%v: crash scenario trained to completion", overlap)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("overlap=%v: crash took %v to surface", overlap, elapsed)
		}
		if !strings.Contains(err.Error(), "step") {
			t.Errorf("overlap=%v: error is not step-scoped: %v", overlap, err)
		}
		if !strings.Contains(err.Error(), "rank") {
			t.Errorf("overlap=%v: error does not name a rank: %v", overlap, err)
		}
	}
}

// TestChaosStallSurfacesDeadlineError: a silent stall (the hardest failure —
// the peer stops sending but stays up) is detected by the I/O deadline and
// surfaces as a step-scoped timeout error instead of a hang.
func TestChaosStallSurfacesDeadlineError(t *testing.T) {
	cfg := bucketCfg("a2sgd", 4, fourBucketBytes, true)
	sc := faultnet.MustParse("deadline(400ms) stall(rank=2, step=3)")
	cfg.GroupRunner = faultnet.GroupRunner(sc, false)
	start := time.Now()
	_, err := Train(cfg)
	if err == nil {
		t.Fatal("stall scenario trained to completion")
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("stall took %v to surface (deadline 400ms)", elapsed)
	}
	if !strings.Contains(err.Error(), "step") {
		t.Errorf("error is not step-scoped: %v", err)
	}
}

// TestChaosFaultsOverTCP: the fault wrapper composes with the real TCP
// transport — dup/reorder/delay over loopback sockets still trains to the
// bitwise fault-free result.
func TestChaosFaultsOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration")
	}
	base := bucketCfg("a2sgd", 3, fourBucketBytes, false)
	_, want := trainWithCheckpoint(t, base)

	cfg := bucketCfg("a2sgd", 3, fourBucketBytes, true)
	sc := faultnet.MustParse("seed(9) dup(link=*, p=0.25) reorder(link=*, p=0.25) delay(link=*, alpha=10us)")
	cfg.GroupRunner = faultnet.GroupRunner(sc, true)
	_, ckpt := trainWithCheckpoint(t, cfg)
	if !bytes.Equal(ckpt, want) {
		t.Error("faulted TCP run diverged from the fault-free in-process run")
	}
}
