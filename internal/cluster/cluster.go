package cluster

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"a2sgd/internal/comm"
	"a2sgd/internal/compress"
	"a2sgd/internal/data"
	"a2sgd/internal/health"
	"a2sgd/internal/models"
	"a2sgd/internal/netsim"
	"a2sgd/internal/nn"
	"a2sgd/internal/optim"
	"a2sgd/internal/plan"
	"a2sgd/internal/stats"
	"a2sgd/internal/tensor"
)

// Membership is a dynamic view of the worker group, maintained by an elastic
// supervisor across rescale events. Train samples it once at entry — the
// world size is fixed for the duration of one Train call (one membership
// epoch); growing or shrinking means checkpointing, resharding and calling
// Train again at the new size.
type Membership interface {
	// WorldSize returns the current live worker count.
	WorldSize() int
	// Epoch returns the membership epoch — incremented every time the live
	// set changes. Recorded in Result for provenance.
	Epoch() int
}

// ErrPaused is returned (by every rank) when a run stops at a checkpoint
// boundary before completing — because StopStep was reached or the Drain
// channel was closed. The final snapshot delivered to SnapshotSink holds
// everything needed to resume. It wraps comm.ErrGroupStop so group runners
// join the remaining ranks instead of fail-fast tearing the fabric down
// under the pause barrier.
var ErrPaused error = pausedError{}

type pausedError struct{}

func (pausedError) Error() string { return "cluster: training paused at a checkpoint boundary" }
func (pausedError) Unwrap() error { return comm.ErrGroupStop }

// RunState is a full-fidelity snapshot of a training run at a step boundary:
// resuming from it reproduces the uninterrupted run bitwise (same world size
// and bucket plan) or deterministically (after resharding). It is captured by
// the step loop at checkpoint boundaries and consumed via Config.Resume.
type RunState struct {
	// Family, Seed, Epochs and StepsPerEpoch echo the originating Config —
	// a resume must match them.
	Family                string
	Seed                  uint64
	Epochs, StepsPerEpoch int
	// Step is the boundary the snapshot was taken at: steps [0, Step) are
	// complete and the resumed run executes steps [Step, Epochs·StepsPerEpoch).
	Step int
	// World is the worker count the snapshot was captured at, NumParams the
	// flattened parameter count and Bounds the bucket boundaries in effect
	// (compress.RemapStates re-buckets algorithm state when a resumed run
	// plans different bounds).
	World     int
	NumParams int
	Bounds    []int
	// History is rank 0's per-epoch record up to the boundary.
	History []EpochStats
	// Workers holds one entry per rank.
	Workers []*WorkerState
}

// WorkerState is one rank's slice of a RunState.
type WorkerState struct {
	Rank int
	// Params and ModelState are the flattened weights and non-learnable
	// model state (batch-norm running statistics), positionally serialized.
	Params     []float32
	ModelState []float32
	// Velocity is the optimizer's momentum, flattened in params order.
	Velocity []float32
	// SampleRNG is the rank's data-sampling RNG state.
	SampleRNG [4]uint64
	// LossSum is the rank's running loss accumulator within the current
	// epoch (feeds rank 0's EpochStats when resuming mid-epoch).
	LossSum float64
	// Buckets is the per-bucket algorithm state (error feedback, DGC
	// accumulators, RNG streams), parallel to RunState.Bounds.
	Buckets []compress.State
}

// Config describes one distributed training run.
type Config struct {
	// Workers is the data-parallel width P. When Membership is non-nil it is
	// overridden by the membership's current world size.
	Workers int
	// Membership, when non-nil, supplies the worker count dynamically (one
	// sample per Train call) and tags the Result with the membership epoch.
	Membership Membership
	// Family selects the model family ("fnn3", "vgg16", "resnet20", "lstm").
	Family string
	// NewAlgorithm builds the per-worker synchronization algorithm. The
	// parameter count is the bucket's element count (the model's NumParams
	// when BucketBytes is 0, i.e. a single whole-model bucket).
	NewAlgorithm func(rank, numParams int) compress.Algorithm
	// NewBucketAlgorithm, when non-nil, builds per-bucket algorithm
	// instances with the bucket's metadata available — its index (so
	// per-bucket stochastic seeds can differ), element count, raw byte size
	// and covered layer names — which is what a per-bucket policy (the
	// compress.Policy layer) keys its spec choice on. Nil falls back to
	// NewAlgorithm(rank, n) per bucket.
	NewBucketAlgorithm func(rank int, info compress.BucketInfo) compress.Algorithm
	// BucketBytes partitions the flattened gradient into layer-granular
	// buckets of at most this many bytes (nn.PlanBuckets); each bucket gets
	// its own algorithm instance and its own collective. 0 keeps the legacy
	// whole-model single bucket.
	BucketBytes int
	// Overlap launches bucket i's exchange on the communicator's progress
	// worker while bucket i+1 is still being gathered and encoded, hiding
	// synchronization behind local compute. For a fixed seed and bucket
	// plan the results are bitwise identical to the synchronous path (the
	// collectives execute in the same order with the same operands).
	Overlap bool
	// Concurrency is the number of comm tag-space contexts the overlap path
	// may use (comm.SetConcurrency): 0 or 1 keeps the Deterministic mode —
	// one progress worker, exchanges strictly in posting order, bitwise
	// identical to the synchronous path — and n>1 lets up to n bucket
	// exchanges proceed concurrently in disjoint tag blocks. Per-bucket
	// arithmetic is unchanged either way (each bucket owns its algorithm
	// instance and operates on a disjoint gradient range), so concurrent
	// runs converge identically; only the wire interleaving differs.
	Concurrency int
	// Interleave launches a bucket's exchange during the backward pass, as
	// soon as backprop has finalized the bucket's gradient range (deepest
	// layers first), instead of after the whole backward — hiding
	// synchronization behind the remaining compute as well as behind encode.
	// Requires Overlap. Histogram-capture steps fall back to the
	// post-backward launch on every rank (the capture needs the raw local
	// gradient before any exchange rewrites it).
	Interleave bool
	// Topology is the two-level hierarchy width in ranks per node: when > 1,
	// every collective (per-bucket exchanges, the setup broadcast and the
	// final dense synchronization) runs the comm.SetTopology two-level
	// schedule — intra-node reduce/gather, inter-node exchange among node
	// leaders, intra-node broadcast. Consecutive ranks share a node. 0 or 1
	// keeps the flat single-tier topology. The hierarchical reduction order
	// differs from the flat one, so runs match flat runs to float tolerance
	// (convergence-equivalent), not bitwise; for a fixed seed and topology
	// they are fully deterministic.
	Topology int
	// Schedule, when non-nil, replaces the three hand-tuned knobs above with
	// a complete pre-planned synchronization schedule (typically plan.Build's
	// output): explicit bucket boundaries, per-bucket algorithm specs, the
	// topology width and the overlap flag. BucketBytes, Topology and Overlap
	// must stay zero — the schedule carries them. When NewAlgorithm and
	// NewBucketAlgorithm are both nil, each bucket's algorithm is built from
	// Schedule.Specs with the canonical compress.BucketSeed derivation, so a
	// schedule lowered from a legacy configuration (plan.Lower) reproduces
	// that configuration's results bitwise.
	Schedule *plan.Schedule
	// Epochs and StepsPerEpoch bound the run.
	Epochs, StepsPerEpoch int
	// BatchPerWorker is each worker's shard of the global mini-batch.
	BatchPerWorker int
	// SeqLen is the LSTM sequence length (ignored otherwise; default 12).
	SeqLen int
	// Seed controls model init, data generation and per-worker sampling.
	Seed uint64
	// Momentum and WeightDecay configure the optimizer.
	Momentum, WeightDecay float32
	// HistIters lists global step indices at which rank 0 captures the
	// local-gradient histogram (Figure 1). Nil disables capture.
	HistIters []int
	// EvalBatch is the held-out evaluation size (default 256).
	EvalBatch int
	// LRScale multiplies the Table-1 schedule (default 1). Reduced-scale
	// calibration knob; the paper-scale schedules stay in optim.PolicyFor.
	LRScale float64
	// GroupRunner launches the worker group. Nil uses the in-process
	// channel fabric (comm.RunGroup); tests substitute a TCP-backed runner
	// to exercise training over a real network stack.
	GroupRunner func(size int, body func(*comm.Communicator) error) error
	// Checkpoint, when non-nil, receives the final synchronized model
	// weights (rank 0, nn checkpoint format) after training completes.
	Checkpoint io.Writer
	// SnapshotSink, when non-nil, receives full-state snapshots (rank 0,
	// after a group-wide barrier): one at the run's start (fresh runs only),
	// one every CheckpointEvery steps, and one at a StopStep/Drain pause.
	// The sink must not retain the RunState past the call unless it copies
	// it — though every slice inside is deep-copied from live state, so
	// retaining is in fact safe; the elastic runtime does.
	SnapshotSink func(*RunState) error
	// CheckpointEvery takes a snapshot at every multiple of this many global
	// steps (0 disables periodic snapshots; the initial and pause snapshots
	// still fire when SnapshotSink is set).
	CheckpointEvery int
	// Resume, when non-nil, restores a RunState instead of initializing
	// fresh: weights, optimizer and RNG state come from the snapshot (the
	// rank-0 setup broadcast is skipped) and the loop starts at Resume.Step.
	// The snapshot must have been captured — or resharded — at this run's
	// worker count.
	Resume *RunState
	// StopStep, when > 0, pauses the run at that global-step boundary:
	// a snapshot is delivered to SnapshotSink and every rank returns
	// ErrPaused. The elastic runtime uses it to admit joiners at a
	// deterministic boundary.
	StopStep int
	// Drain, when non-nil, is polled by rank 0 at checkpoint boundaries;
	// once it is closed the group snapshots and returns ErrPaused. The
	// drain decision is broadcast from rank 0, so all ranks agree without
	// changing any training arithmetic.
	Drain <-chan struct{}
	// Health, when non-nil, receives per-rank timing beacons: per-step
	// encode/sync/step wall times plus per-send and per-operation timings
	// observed by the comm layer. The monitor's world must equal Workers.
	// Recorders write into preallocated rings, so beacons keep the
	// steady-state step allocation-free.
	Health *health.Monitor
}

// EpochStats reports one epoch's training loss and held-out metric.
type EpochStats struct {
	Epoch    int
	Loss     float64 // mean training loss across steps (rank 0)
	EvalLoss float64
	Metric   float64 // accuracy (higher better) or perplexity (lower better)
	LR       float64
}

// Result aggregates a training run.
type Result struct {
	Family    string
	Algorithm string
	Workers   int
	NumParams int
	Metric    models.Metric
	Epochs    []EpochStats
	// MembershipEpoch is the elastic membership epoch the run executed under
	// (0 for static runs).
	MembershipEpoch int

	// Cost components, averaged per training step (rank 0).
	AvgComputeSec float64 // forward + backward
	// AvgEncodeSec is the compression compute per step (Figure 2's
	// quantity), summed across buckets. It is aggregate encode CPU time:
	// when the overlap path encodes buckets on the parallel worker pool,
	// the per-bucket durations overlap in wall time, so this can exceed
	// the wall-clock encode window (and includes contention).
	AvgEncodeSec float64
	// AvgSyncSec is the wall time the step spent blocked on the collective:
	// the full collective time on the synchronous path, only the *exposed*
	// (non-hidden) time when Overlap pipelines sync behind encode.
	AvgSyncSec float64
	// AvgStepSec is the measured end-to-end wall time of one training step
	// (compute + gather + encode + sync + scatter + optimizer).
	AvgStepSec float64

	// Buckets is the gradient-pipeline bucket count (1 = whole model), and
	// BucketBounds its cumulative offsets (len Buckets+1). Overlap records
	// whether exchanges were pipelined with gather/encode, Concurrency the
	// number of tag-space contexts they ran under (1 = deterministic),
	// Interleave whether launches were folded into the backward pass, and
	// DirectBuckets how many buckets were exchanged in place with no gather
	// or scatter copy — since the strided-view pipeline, always equal to
	// Buckets (the invariant the concurrency tests assert).
	Buckets       int
	BucketBounds  []int
	Overlap       bool
	Concurrency   int
	Interleave    bool
	DirectBuckets int
	// Topology is the hierarchy width the run used (ranks per node after
	// clamping; 0 = flat).
	Topology int
	// BucketPayloadBytes is the analytic per-worker payload of each bucket,
	// the input to the overlap-aware network model.
	BucketPayloadBytes []int64
	// BucketExchangeKinds is each bucket's dominant collective. Under a
	// mixing policy the buckets differ (dense buckets allreduce, sparse
	// buckets allgather); the modelled price laws account each bucket under
	// its own kind. Empty means every bucket uses ExchangeKind.
	BucketExchangeKinds []netsim.ExchangeKind
	// Policy is the canonical per-bucket policy spec the run used, when the
	// caller built algorithms through the policy layer ("" otherwise).
	Policy string

	// BytesPerWorkerPerStep is the measured payload sent per worker per
	// step, averaged across all ranks (from the traffic counters). The
	// average matters under a two-level Topology, where node leaders send
	// strictly more than other ranks; flat ring collectives are symmetric,
	// so there every rank matches the average anyway.
	BytesPerWorkerPerStep float64
	// PayloadBytes is the analytic per-worker payload (Table 2 column 3).
	PayloadBytes int64
	// ExchangeKind feeds the α–β model.
	ExchangeKind netsim.ExchangeKind

	// Histograms holds the Figure 1 captures (rank 0), parallel to
	// HistIters.
	Histograms []*stats.Histogram
	HistIters  []int
}

// FinalMetric returns the last epoch's held-out metric.
func (r *Result) FinalMetric() float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	return r.Epochs[len(r.Epochs)-1].Metric
}

// ModeledIterSec prices one training iteration on the given network model
// (a flat netsim.Fabric or a hierarchical netsim.TwoTier) with the serial
// (non-overlapped) cost law: measured compute + measured compression
// + modelled synchronization of the full per-worker payload.
func (r *Result) ModeledIterSec(f netsim.Pricer) float64 {
	return r.AvgComputeSec + r.AvgEncodeSec + f.SyncTime(r.ExchangeKind, r.PayloadBytes, r.Workers)
}

// bucketCosts apportions the measured encode time across buckets by element
// count (encode cost is O(bucket length) for every evaluated algorithm) and
// returns it alongside the per-bucket payload bytes.
func (r *Result) bucketCosts() (enc []float64, bytes []int64) {
	bytes = r.BucketPayloadBytes
	bounds := r.BucketBounds
	if len(bytes) == 0 || len(bounds) != len(bytes)+1 {
		bytes = []int64{r.PayloadBytes}
		bounds = []int{0, r.NumParams}
	}
	enc = make([]float64, len(bytes))
	if n := bounds[len(bounds)-1]; n > 0 {
		for b := range enc {
			enc[b] = r.AvgEncodeSec * float64(bounds[b+1]-bounds[b]) / float64(n)
		}
	}
	return enc, bytes
}

// bucketKinds returns the per-bucket exchange kinds for the price laws,
// falling back to the aggregate ExchangeKind when the run predates (or
// didn't populate) the per-bucket record.
func (r *Result) bucketKinds() []netsim.ExchangeKind {
	if len(r.BucketExchangeKinds) > 0 {
		return r.BucketExchangeKinds
	}
	return []netsim.ExchangeKind{r.ExchangeKind}
}

// ModeledIterSecOverlap prices one iteration when per-bucket synchronization
// is pipelined behind encode (the Overlap step loop): compute plus the
// makespan of the encode→sync pipeline, in which bucket i's collective is
// hidden behind the encoding of later buckets. With a single bucket it
// degenerates to ModeledIterSec.
func (r *Result) ModeledIterSecOverlap(f netsim.Pricer) float64 {
	enc, bytes := r.bucketCosts()
	return r.AvgComputeSec + f.PipelinedSyncTimeKinds(r.bucketKinds(), enc, bytes, r.Workers)
}

// ModeledIterSecSerial prices the same bucketed step without overlap: every
// per-bucket encode and collective runs back to back. The gap to
// ModeledIterSecOverlap is exactly the sync time the pipeline hides; the gap
// to ModeledIterSec (one fused collective) is the per-bucket latency that
// bucketing pays and fusion avoids.
func (r *Result) ModeledIterSecSerial(f netsim.Pricer) float64 {
	enc, bytes := r.bucketCosts()
	return r.AvgComputeSec + f.SerialSyncTimeKinds(r.bucketKinds(), enc, bytes, r.Workers)
}

// Throughput returns modelled samples/second at the run's worker count.
func (r *Result) Throughput(f netsim.Pricer, batchPerWorker int) float64 {
	it := r.ModeledIterSec(f)
	if it <= 0 {
		return 0
	}
	return float64(batchPerWorker*r.Workers) / it
}

// bucketExchangeOp is the typed, pooled unit of work the step loop posts to
// the communicator (comm.Post): one bucket's collective exchange. The step
// loop owns an array of nb of these and re-fills them in place every step,
// so posting a bucket never allocates — posting a *bucketExchangeOp converts
// to comm.Op without boxing. RunOp receives the tag-space context
// communicator the operation was assigned to. The exchange reconstructs
// directly into the bucket's gradient view (the layers' live storage).
type bucketExchangeOp struct {
	bk *compress.Bucketed
	b  int
	p  compress.Payload
	v  *tensor.VecView
}

func (o *bucketExchangeOp) RunOp(c *comm.Communicator) error {
	return o.bk.ExchangeBucketView(o.b, o.p, o.v, c)
}

// bucketInfos derives each bucket's policy-facing metadata from the plan.
func bucketInfos(plan nn.BucketPlan) []compress.BucketInfo {
	infos := make([]compress.BucketInfo, len(plan.Buckets))
	for b, bk := range plan.Buckets {
		layers := make([]string, len(bk.Segments))
		for i, sg := range bk.Segments {
			layers[i] = sg.Name
		}
		infos[b] = compress.BucketInfo{
			Index: b, Params: bk.Len, Bytes: int64(4 * bk.Len), Layers: layers,
		}
	}
	return infos
}

func (c *Config) defaults() Config {
	cfg := *c
	if cfg.Membership != nil {
		cfg.Workers = cfg.Membership.WorldSize()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.StepsPerEpoch <= 0 {
		cfg.StepsPerEpoch = 10
	}
	if cfg.BatchPerWorker <= 0 {
		cfg.BatchPerWorker = 16
	}
	if cfg.SeqLen <= 0 {
		cfg.SeqLen = 12
	}
	if cfg.EvalBatch <= 0 {
		cfg.EvalBatch = 256
	}
	return cfg
}

// Train runs the distributed training loop and returns rank 0's view.
func Train(c Config) (*Result, error) {
	cfg := c.defaults()
	sched := cfg.Schedule
	if sched != nil {
		if cfg.BucketBytes != 0 || cfg.Topology != 0 || cfg.Overlap {
			return nil, fmt.Errorf("cluster: Schedule carries the bucket/topology/overlap knobs — leave BucketBytes, Topology and Overlap zero")
		}
		if err := sched.Validate(); err != nil {
			return nil, err
		}
		if sched.Workers != 0 && sched.Workers != cfg.Workers {
			return nil, fmt.Errorf("cluster: schedule planned for %d workers, run configured for %d", sched.Workers, cfg.Workers)
		}
		// Pre-build every scheduled spec so construction errors surface
		// here, not inside the worker group.
		for _, s := range sched.Specs {
			if _, err := compress.Build(s, compress.DefaultOptions(4)); err != nil {
				return nil, err
			}
		}
	}
	if cfg.NewAlgorithm == nil && cfg.NewBucketAlgorithm == nil && sched == nil {
		return nil, fmt.Errorf("cluster: NewAlgorithm, NewBucketAlgorithm or a Schedule is required")
	}
	// The schedule, when present, owns the pipeline knobs. Concurrency and
	// Interleave are runtime-execution knobs, not schedule-carried plan
	// state, so they compose with either source.
	overlap, topology := cfg.Overlap, cfg.Topology
	if sched != nil {
		overlap, topology = sched.Overlap, sched.Topology
	}
	if cfg.Concurrency < 0 || cfg.Concurrency > comm.MaxConcurrency {
		return nil, fmt.Errorf("cluster: Concurrency %d out of range [0,%d]", cfg.Concurrency, comm.MaxConcurrency)
	}
	if cfg.Concurrency > 1 && !overlap {
		return nil, fmt.Errorf("cluster: Concurrency > 1 requires Overlap (there is nothing to run concurrently on the synchronous path)")
	}
	if cfg.Interleave && !overlap {
		return nil, fmt.Errorf("cluster: Interleave requires Overlap")
	}
	totalSteps := cfg.Epochs * cfg.StepsPerEpoch
	if rs := cfg.Resume; rs != nil {
		if rs.Family != cfg.Family {
			return nil, fmt.Errorf("cluster: snapshot is for family %q, run configured for %q", rs.Family, cfg.Family)
		}
		if rs.Seed != cfg.Seed {
			return nil, fmt.Errorf("cluster: snapshot seed %d != run seed %d", rs.Seed, cfg.Seed)
		}
		if rs.StepsPerEpoch != cfg.StepsPerEpoch {
			return nil, fmt.Errorf("cluster: snapshot StepsPerEpoch %d != run %d", rs.StepsPerEpoch, cfg.StepsPerEpoch)
		}
		if len(rs.Workers) != cfg.Workers || rs.World != cfg.Workers {
			return nil, fmt.Errorf("cluster: snapshot holds %d workers, run configured for %d (reshard it first)", rs.World, cfg.Workers)
		}
		if rs.Step < 0 || rs.Step > totalSteps {
			return nil, fmt.Errorf("cluster: snapshot step %d outside run bounds [0, %d]", rs.Step, totalSteps)
		}
	}
	if cfg.StopStep < 0 || (cfg.StopStep > 0 && cfg.StopStep >= totalSteps) {
		return nil, fmt.Errorf("cluster: StopStep %d outside (0, %d)", cfg.StopStep, totalSteps)
	}
	if cfg.Health != nil && cfg.Health.World() != cfg.Workers {
		return nil, fmt.Errorf("cluster: health monitor world %d != workers %d", cfg.Health.World(), cfg.Workers)
	}

	img, txt, err := data.ForFamily(cfg.Family, cfg.Seed)
	if err != nil {
		return nil, err
	}

	res := &Result{Family: cfg.Family, Workers: cfg.Workers, HistIters: cfg.HistIters}
	var resMu sync.Mutex
	if cfg.Membership != nil {
		res.MembershipEpoch = cfg.Membership.Epoch()
	}
	// Per-rank sent bytes, collected after the last step (disjoint indices,
	// read only after the group joins) and averaged into the result.
	perRankSent := make([]int64, cfg.Workers)
	// Per-rank snapshot slots: at a checkpoint boundary every rank deep-copies
	// its state into its slot, the group barriers, and rank 0 assembles the
	// RunState for the sink. Disjoint indices; the barrier orders the writes
	// before rank 0's read in real time, but over loopback TCP that ordering
	// flows through the kernel, which the Go memory model does not recognize —
	// the slots are atomic pointers so the intra-process handoff has an
	// explicit edge. All supported group runners (in-process channels,
	// loopback TCP, the fault mesh) run every rank in this process, so the
	// shared slice is visible to all of them.
	snapSlots := make([]atomic.Pointer[WorkerState], cfg.Workers)

	runGroup := cfg.GroupRunner
	if runGroup == nil {
		runGroup = comm.RunGroup
	}
	groupErr := runGroup(cfg.Workers, func(cm *comm.Communicator) error {
		rank := cm.Rank()
		// Two-level topology: partition the ranks into nodes so every
		// collective below — per-bucket exchanges, the setup broadcast, the
		// final dense sync — runs the hierarchical schedule.
		if topology > 1 {
			if err := cm.SetTopology(topology); err != nil {
				return err
			}
		}
		// Tag-space contexts for concurrent bucket exchanges. After the
		// topology call so the shadow contexts replay the same splits.
		if cfg.Concurrency > 1 {
			if err := cm.SetConcurrency(cfg.Concurrency); err != nil {
				return err
			}
		}
		// Timing beacons: install after topology/concurrency so every derived
		// communicator inherits the observers. Method values are built once
		// here — the hot path calls them without allocating.
		var rec *health.Recorder
		if cfg.Health != nil {
			rec = cfg.Health.Recorder(rank)
			cm.SetSendObserver(rec.ObserveSend)
			cm.SetOpObserver(rec.ObserveOp)
		}
		model, err := models.New(models.Config{Family: cfg.Family, Seed: cfg.Seed, Reduced: true})
		if err != nil {
			return err
		}
		n := model.NumParams()

		// Partition the flattened gradient at layer granularity and build
		// one algorithm instance per bucket (per-bucket error feedback,
		// seeds and A2SGD means). BucketBytes 0 yields a single whole-model
		// bucket whose instance — and arithmetic — matches the legacy path;
		// a Schedule supplies explicit (possibly variable-size) boundaries
		// instead.
		var bplan nn.BucketPlan
		if sched != nil {
			bplan, err = nn.PlanFromBounds(model.ParamSegments(), sched.Bounds)
			if err != nil {
				return fmt.Errorf("cluster: schedule does not fit %s: %w", cfg.Family, err)
			}
		} else {
			bplan = nn.PlanBuckets(model.ParamSegments(), cfg.BucketBytes)
		}
		infos := bucketInfos(bplan)
		newBucketAlg := cfg.NewBucketAlgorithm
		if newBucketAlg == nil && cfg.NewAlgorithm != nil {
			newBucketAlg = func(rank int, info compress.BucketInfo) compress.Algorithm {
				return cfg.NewAlgorithm(rank, info.Params)
			}
		}
		if newBucketAlg == nil {
			// Scheduled specs (validated above), with the canonical seed
			// derivation the façade's policy path uses — what makes lowered
			// schedules reproduce their legacy configurations bitwise.
			newBucketAlg = func(rank int, info compress.BucketInfo) compress.Algorithm {
				o := compress.DefaultOptions(info.Params)
				o.Seed = compress.BucketSeed(cfg.Seed, rank, info.Index)
				a, err := compress.Build(sched.Specs[info.Index], o)
				if err != nil {
					panic(fmt.Sprintf("cluster: pre-validated schedule spec failed to build: %v", err))
				}
				return a
			}
		}
		bucketed := compress.NewBucketed(bplan.Bounds(), func(b, bn int) compress.Algorithm {
			return newBucketAlg(rank, infos[b])
		})
		bounds := bucketed.Bounds()
		nb := bucketed.NumBuckets()

		if cfg.Resume == nil {
			// Broadcast rank 0's weights so replicas start identical even if
			// a model family ever gains non-deterministic init.
			w := make([]float32, n)
			model.GatherParams(w)
			if err := cm.Broadcast(w, 0); err != nil {
				return err
			}
			model.ScatterParams(w)
		} else if cfg.Resume.NumParams != n {
			return fmt.Errorf("cluster: snapshot has %d params, model %s has %d", cfg.Resume.NumParams, cfg.Family, n)
		}
		// The setup broadcast is not part of the per-step algorithm cost.
		cm.ResetTraffic()

		lrSched, useLARS := optim.PolicyFor(cfg.Family, cfg.Workers)
		momentum := cfg.Momentum
		lrScale := 1.0
		if cfg.LRScale > 0 {
			lrScale = cfg.LRScale
		}
		if cfg.Family == "lstm" {
			// Reduced-scale calibration: the paper's LR 22 is tuned for the
			// 66 M-parameter PTB model; the reduced LM needs a smaller rate
			// and, like the paper's LSTM runs, plain SGD without momentum.
			momentum = 0
			lrScale *= 0.25
		}
		opt := optim.NewSGD(momentum, cfg.WeightDecay)
		opt.LARS = useLARS

		sampleRNG := tensor.NewRNG(cfg.Seed*1000 + uint64(rank) + 1)
		grad := make([]float32, n)
		reqScratch := make([]comm.Request, 0, nb)
		exchangeOps := make([]bucketExchangeOp, nb)

		// Every bucket is direct: its view spans the layers' live gradient
		// storage across however many parameter tensors the range covers, so
		// encode reads — and the exchange reconstructs into — that storage
		// with no gather copy before and no scatter copy after, regardless
		// of where the bucket boundaries fall.
		viewStore := make([]tensor.VecView, nb)
		bucketView := make([]*tensor.VecView, nb)
		for b := 0; b < nb; b++ {
			bucketView[b] = model.GradView(bounds[b], bounds[b+1], &viewStore[b])
		}

		// encodeBucket checks bucket b's live gradient view is finite and
		// encodes it in place, returning the payload and the encode duration.
		// The serial loop, the parallel worker pool and the interleaved
		// backward callbacks all run exactly this.
		encodeBucket := func(b int) (compress.Payload, float64, error) {
			bv := bucketView[b]
			if bv.HasNaNOrInf() {
				return compress.Payload{}, 0, fmt.Errorf("cluster: worker %d produced a non-finite gradient (diverged — lower the learning rate)", rank)
			}
			t1 := time.Now()
			p := bucketed.EncodeBucketView(b, bv)
			return p, time.Since(t1).Seconds(), nil
		}

		// postBucket fills bucket b's pooled op and posts its exchange.
		postBucket := func(b int, p compress.Payload) comm.Request {
			exchangeOps[b] = bucketExchangeOp{bk: bucketed, b: b, p: p, v: bucketView[b]}
			return cm.Post(&exchangeOps[b])
		}

		// Parallel bucket encode (overlap path): a worker pool gathers and
		// encodes buckets concurrently — every bucket owns its algorithm
		// instance, scratch and RNG stream, so the encoded payloads are
		// bitwise identical to serial encoding — while the step loop below
		// enqueues each bucket's exchange in strict bucket order as soon as
		// that bucket's encode lands. The collectives therefore launch in
		// the same deterministic order with the same operands as the serial
		// path (the bitwise-determinism tests cover both). The pool is
		// sized by this process's share of the CPUs: in-process experiments
		// run all cfg.Workers ranks in one process, so each rank claiming
		// GOMAXPROCS workers would only oversubscribe.
		encWorkers := 0
		if overlap && !cfg.Interleave && nb > 1 {
			if w := runtime.GOMAXPROCS(0) / cfg.Workers; w > 1 {
				encWorkers = w
				if encWorkers > nb {
					encWorkers = nb
				}
			}
		}
		var (
			encPayloads []compress.Payload
			encDur      []float64
			encErr      []error
			encDone     []chan struct{}
			encWork     chan int
		)
		if encWorkers > 0 {
			encPayloads = make([]compress.Payload, nb)
			encDur = make([]float64, nb)
			encErr = make([]error, nb)
			encDone = make([]chan struct{}, nb)
			for b := range encDone {
				encDone[b] = make(chan struct{}, 1)
			}
			encWork = make(chan int, nb)
			for w := 0; w < encWorkers; w++ {
				go func() {
					for b := range encWork {
						encPayloads[b], encDur[b], encErr[b] = encodeBucket(b)
						encDone[b] <- struct{}{}
					}
				}()
			}
			defer close(encWork)
		}

		var evalSet models.Batch
		if rank == 0 {
			if img != nil {
				evalSet = img.EvalSet(cfg.EvalBatch, cfg.Seed)
			} else {
				evalSet = txt.EvalSet(cfg.EvalBatch/4+1, cfg.SeqLen, cfg.Seed)
			}
		}

		var computeSec, encodeSec, syncSec, stepSec float64
		var epochs []EpochStats
		var hists []*stats.Histogram
		histAt := map[int]bool{}
		for _, it := range cfg.HistIters {
			histAt[it] = true
		}
		startStep := 0
		var lossSum float64
		if rs := cfg.Resume; rs != nil {
			ws := rs.Workers[rank]
			if ws == nil || len(ws.Params) != n {
				return fmt.Errorf("cluster: snapshot worker %d does not hold %d params", rank, n)
			}
			model.ScatterParams(ws.Params)
			if sl := model.StateLen(); sl > 0 && len(ws.ModelState) == sl {
				model.ScatterState(ws.ModelState)
			}
			if len(ws.Velocity) == n {
				opt.ScatterVelocity(model.Params(), ws.Velocity)
			}
			sampleRNG.SetState(ws.SampleRNG)
			if len(rs.Bounds) >= 2 {
				bucketed.LoadStates(compress.RemapStates(ws.Buckets, rs.Bounds, bounds))
			}
			startStep = rs.Step
			lossSum = ws.LossSum
			if rank == 0 {
				epochs = append(epochs, rs.History...)
			}
		}
		globalStep := startStep
		steps := 0

		// captureState deep-copies this rank's full training state; the
		// snapshot stays valid while the rank trains on.
		captureState := func() *WorkerState {
			ws := &WorkerState{Rank: rank, SampleRNG: sampleRNG.State(), LossSum: lossSum}
			ws.Params = make([]float32, n)
			model.GatherParams(ws.Params)
			if sl := model.StateLen(); sl > 0 {
				ws.ModelState = make([]float32, sl)
				model.GatherState(ws.ModelState)
			}
			ws.Velocity = make([]float32, n)
			opt.GatherVelocity(model.Params(), ws.Velocity)
			ws.Buckets = bucketed.SaveStates()
			return ws
		}
		// deliverSnapshot captures every rank's state at boundary step (all
		// ranks call it collectively), barriers so the slot writes are
		// ordered before rank 0's read, and hands rank 0's assembled
		// RunState to the sink.
		deliverSnapshot := func(step int) error {
			snapSlots[rank].Store(captureState())
			if err := cm.Barrier(); err != nil {
				return fmt.Errorf("cluster: snapshot barrier at step %d: %w", step, err)
			}
			if rank != 0 {
				return nil
			}
			ws := make([]*WorkerState, len(snapSlots))
			for i := range snapSlots {
				ws[i] = snapSlots[i].Load()
			}
			rs := &RunState{
				Family: cfg.Family, Seed: cfg.Seed,
				Epochs: cfg.Epochs, StepsPerEpoch: cfg.StepsPerEpoch,
				Step: step, World: cfg.Workers, NumParams: n,
				Bounds:  append([]int(nil), bounds...),
				History: append([]EpochStats(nil), epochs...),
				Workers: ws,
			}
			if err := cfg.SnapshotSink(rs); err != nil {
				return fmt.Errorf("cluster: snapshot sink at step %d: %w", step, err)
			}
			return nil
		}

		var drainFlag [1]float32
		var lr float64
		for g := startStep; ; g++ {
			// g is a step boundary: steps [0, g) are complete on every rank.
			// Pause/snapshot decisions happen here so a delivered snapshot is
			// always at a clean boundary.
			pause := cfg.StopStep > 0 && g == cfg.StopStep
			if cfg.Drain != nil && !pause && g > startStep && g < totalSteps &&
				(cfg.CheckpointEvery <= 0 || g%cfg.CheckpointEvery == 0) {
				drainFlag[0] = 0
				if rank == 0 {
					select {
					case <-cfg.Drain:
						drainFlag[0] = 1
					default:
					}
				}
				if err := cm.Broadcast(drainFlag[:], 0); err != nil {
					return fmt.Errorf("cluster: drain poll at step %d: %w", g, err)
				}
				pause = drainFlag[0] != 0
			}
			if cfg.SnapshotSink != nil {
				snap := pause ||
					(g == startStep && cfg.Resume == nil) ||
					(g > startStep && g < totalSteps && cfg.CheckpointEvery > 0 && g%cfg.CheckpointEvery == 0)
				if snap {
					if err := deliverSnapshot(g); err != nil {
						return err
					}
				}
			}
			if pause {
				return ErrPaused
			}
			if g == totalSteps {
				break
			}
			if g == startStep || g%cfg.StepsPerEpoch == 0 {
				lr = lrSched.LR(g/cfg.StepsPerEpoch, cfg.Epochs) * lrScale
				if g%cfg.StepsPerEpoch == 0 {
					lossSum = 0
				}
			}
			globalStep = g
			{
				encMark, syncMark, stepMark := encodeSec, syncSec, stepSec
				var batch models.Batch
				if img != nil {
					batch = img.Sample(sampleRNG, cfg.BatchPerWorker)
				} else {
					batch = txt.Sample(sampleRNG, cfg.BatchPerWorker, cfg.SeqLen)
				}
				// Tell step-aware transports (faultnet) a new training step
				// begins, so step-scoped faults (crash/stall at step k) fire
				// on the step boundary. A no-op on plain transports.
				cm.AdvanceStep()
				model.ZeroGrads()
				// Histogram steps take the post-backward launch path on
				// EVERY rank (the capture needs the raw local gradient
				// before any exchange rewrites it — exchanges reconstruct
				// into the live storage the views alias — and the posting
				// order must stay identical across ranks: concurrent
				// contexts are assigned by posting sequence). Only rank 0
				// actually gathers and captures.
				histStep := histAt[globalStep]
				reqs := reqScratch[:0]
				t0 := time.Now()
				var loss float64
				if cfg.Interleave && !histStep {
					// Backprop-interleaved launch: encode and post each
					// bucket from inside the backward pass as soon as its
					// gradient range is final, deepest buckets first. The
					// exchange proceeds on the progress workers while the
					// shallower layers are still back-propagating.
					next := nb - 1
					var encFail error
					var inlineEnc float64
					loss = model.StepInterleaved(batch, func(lo int) {
						if encFail != nil {
							return
						}
						for next >= 0 && bounds[next] >= lo {
							p, dur, err := encodeBucket(next)
							if err != nil {
								encFail = err
								return
							}
							inlineEnc += dur
							reqs = append(reqs, postBucket(next, p))
							next--
						}
					})
					// The encode time spent inside the backward callbacks
					// is compression cost, not model compute.
					computeSec += time.Since(t0).Seconds() - inlineEnc
					encodeSec += inlineEnc
					lossSum += loss
					if encFail != nil {
						_ = comm.WaitAll(reqs) // drain in-flight buckets first
						return fmt.Errorf("%w (step %d)", encFail, globalStep)
					}
				} else {
					loss = model.Step(batch)
					computeSec += time.Since(t0).Seconds()
					lossSum += loss

					// Figure-1 capture needs the raw local gradient in one
					// piece, copied before any exchange reconstructs into
					// the live storage.
					if histStep && rank == 0 {
						model.GatherGrads(grad)
						h := stats.NewHistogram(-0.25, 0.25, 101)
						h.AddSlice(grad)
						hists = append(hists, h)
					}

					// Bucketed gradient pipeline: encode bucket b in place
					// through its view and either run its collective inline
					// (synchronous) or post it to the communicator's
					// progress workers so it proceeds while bucket b+1 is
					// encoded. With encode workers, encoding of all buckets
					// fans out across the pool and the exchanges are still
					// enqueued in bucket order as each encode completes.
					if encWorkers > 0 {
						for b := 0; b < nb; b++ {
							encWork <- b
						}
						for b := 0; b < nb; b++ {
							<-encDone[b]
							if err := encErr[b]; err != nil {
								encErr[b] = nil
								for b2 := b + 1; b2 < nb; b2++ { // drain the step's remaining tokens
									<-encDone[b2]
								}
								_ = comm.WaitAll(reqs) // drain in-flight buckets first
								return fmt.Errorf("%w (step %d)", err, globalStep)
							}
							encodeSec += encDur[b]
							reqs = append(reqs, postBucket(b, encPayloads[b]))
						}
					} else {
						for b := 0; b < nb; b++ {
							payload, dur, err := encodeBucket(b)
							if err != nil {
								_ = comm.WaitAll(reqs) // drain in-flight buckets first
								return fmt.Errorf("%w (step %d)", err, globalStep)
							}
							encodeSec += dur
							if overlap {
								reqs = append(reqs, postBucket(b, payload))
							} else {
								t2 := time.Now()
								if err := bucketed.ExchangeBucketView(b, payload, bucketView[b], cm); err != nil {
									return fmt.Errorf("cluster: step %d bucket %d sync: %w", globalStep, b, err)
								}
								syncSec += time.Since(t2).Seconds()
							}
						}
					}
				}
				if overlap {
					t2 := time.Now()
					if err := comm.WaitAll(reqs); err != nil {
						return fmt.Errorf("cluster: step %d sync: %w", globalStep, err)
					}
					syncSec += time.Since(t2).Seconds()
					reqScratch = reqs
				}
				// Every exchange reconstructed in place through its bucket
				// view — there is nothing to scatter back.
				opt.Step(model.Params(), lr)
				stepSec += time.Since(t0).Seconds()
				if rec != nil {
					rec.RecordStep(encodeSec-encMark, syncSec-syncMark, stepSec-stepMark)
				}
				steps++
			}
			if (g+1)%cfg.StepsPerEpoch == 0 && rank == 0 {
				evalLoss, metric := model.Eval(evalSet)
				epochs = append(epochs, EpochStats{
					Epoch: g / cfg.StepsPerEpoch, Loss: lossSum / float64(cfg.StepsPerEpoch),
					EvalLoss: evalLoss, Metric: metric, LR: lr,
				})
			}
		}

		// Snapshot traffic before the final dense synchronization so the
		// per-step accounting reflects the algorithm, not the epilogue.
		perRankSent[rank] = cm.Traffic().BytesSent

		// Algorithm 1, lines 9–10: one final dense synchronization so all
		// replicas end identical (A2SGD replicas drift by design).
		model.GatherParams(grad) // reuse the gradient buffer as scratch
		if err := cm.AllreduceMean(grad, comm.AlgoAuto); err != nil {
			return fmt.Errorf("cluster: final dense synchronization: %w", err)
		}
		model.ScatterParams(grad)

		if rank == 0 && cfg.Checkpoint != nil {
			if err := nn.SaveParams(cfg.Checkpoint, model.Params()); err != nil {
				return fmt.Errorf("cluster: checkpoint: %w", err)
			}
		}

		if rank == 0 {
			resMu.Lock()
			res.Algorithm = bucketed.Name()
			res.NumParams = n
			res.Metric = model.Metric()
			res.Epochs = epochs
			res.AvgComputeSec = computeSec / float64(steps)
			res.AvgEncodeSec = encodeSec / float64(steps)
			res.AvgSyncSec = syncSec / float64(steps)
			res.AvgStepSec = stepSec / float64(steps)
			res.PayloadBytes = bucketed.PayloadBytes(n)
			res.ExchangeKind = bucketed.ExchangeKind()
			res.Buckets = nb
			res.BucketBounds = append([]int(nil), bounds...)
			res.Overlap = overlap
			res.Concurrency = cm.Concurrency()
			res.Interleave = cfg.Interleave
			res.DirectBuckets = nb
			res.Topology = cm.Topology()
			res.BucketPayloadBytes = bucketed.PayloadBytesPerBucket()
			res.BucketExchangeKinds = bucketed.ExchangeKinds()
			if sched != nil {
				res.Policy = sched.Policy
			}
			res.Histograms = hists
			resMu.Unlock()
		}
		return nil
	})
	if groupErr != nil {
		return nil, groupErr
	}
	var sentSum int64
	for _, b := range perRankSent {
		sentSum += b
	}
	steps := totalSteps
	if cfg.Resume != nil {
		steps -= cfg.Resume.Step
	}
	if steps > 0 {
		res.BytesPerWorkerPerStep = float64(sentSum) / float64(cfg.Workers) / float64(steps)
	}
	return res, nil
}
