package cluster

import (
	"bytes"
	"testing"
)

// concCfg is bucketCfg plus the concurrent-execution knobs.
func concCfg(algo string, workers int, concurrency int, interleave bool) Config {
	cfg := bucketCfg(algo, workers, fourBucketBytes, true)
	cfg.Concurrency = concurrency
	cfg.Interleave = interleave
	return cfg
}

// trainWithCheckpoint runs Train capturing the final synchronized weights,
// so equality checks cover every parameter bit, not just the epoch stats.
func trainWithCheckpoint(t *testing.T, cfg Config) (*Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	cfg.Checkpoint = &buf
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestConcurrencyMatrixBitwise is the mode-equivalence matrix: for a fixed
// seed and bucket plan, the deterministic overlap path (concurrency 1), the
// concurrent-collectives path (4 tag-space contexts) and the
// backprop-interleaved launch all produce bitwise-identical training — each
// bucket's exchange arithmetic is independent of the others, so neither the
// launch point nor the wire interleaving can change a single bit of the
// result. The serial synchronous run anchors the matrix.
func TestConcurrencyMatrixBitwise(t *testing.T) {
	for _, algo := range []string{"dense", "a2sgd", "qsgd"} {
		base, wantCkpt := trainWithCheckpoint(t, bucketCfg(algo, 4, fourBucketBytes, false))
		if base.Buckets < 2 {
			t.Fatalf("%s: plan produced %d buckets, want >= 2", algo, base.Buckets)
		}
		variants := []struct {
			label string
			cfg   Config
		}{
			{"overlap-det", concCfg(algo, 4, 0, false)},
			{"concurrent-4", concCfg(algo, 4, 4, false)},
			{"interleave-det", concCfg(algo, 4, 0, true)},
			{"interleave-concurrent-4", concCfg(algo, 4, 4, true)},
		}
		for _, v := range variants {
			res, ckpt := trainWithCheckpoint(t, v.cfg)
			assertRunsIdentical(t, algo+" "+v.label, base, res)
			if !bytes.Equal(ckpt, wantCkpt) {
				t.Errorf("%s %s: final weights differ from the serial run", algo, v.label)
			}
			if res.DirectBuckets != res.Buckets {
				t.Errorf("%s %s: %d of %d buckets direct, want all (strided views make every bucket in-place)",
					algo, v.label, res.DirectBuckets, res.Buckets)
			}
		}
	}
}

// TestLSTMInterleaveBitwise extends the mode-equivalence matrix to the LSTM:
// truncated BPTT now reports per-tensor readiness from inside its last
// timestep (output projection first, then each layer top-down, embedding
// last), so the interleaved launch genuinely overlaps exchanges with the
// remaining backward — and must still be bitwise identical to the serial
// synchronous run.
func TestLSTMInterleaveBitwise(t *testing.T) {
	lstmCfg := func(concurrency int, overlap, interleave bool) Config {
		cfg := quickCfg("lstm", "a2sgd", 3)
		cfg.BucketBytes = fourBucketBytes
		cfg.Overlap = overlap
		cfg.Concurrency = concurrency
		cfg.Interleave = interleave
		return cfg
	}
	base, wantCkpt := trainWithCheckpoint(t, lstmCfg(0, false, false))
	if base.Buckets < 2 {
		t.Fatalf("lstm plan produced %d buckets, want >= 2", base.Buckets)
	}
	variants := []struct {
		label string
		cfg   Config
	}{
		{"overlap-det", lstmCfg(0, true, false)},
		{"interleave-det", lstmCfg(0, true, true)},
		{"interleave-concurrent-4", lstmCfg(4, true, true)},
	}
	for _, v := range variants {
		res, ckpt := trainWithCheckpoint(t, v.cfg)
		assertRunsIdentical(t, "lstm "+v.label, base, res)
		if !bytes.Equal(ckpt, wantCkpt) {
			t.Errorf("lstm %s: final weights differ from the serial run", v.label)
		}
		if res.DirectBuckets != res.Buckets {
			t.Errorf("lstm %s: %d of %d buckets direct, want all", v.label, res.DirectBuckets, res.Buckets)
		}
	}
	// Hierarchical: the two-level reduction order differs from flat, so the
	// comparison is interleaved-vs-deterministic under the same topology.
	det := lstmCfg(0, true, false)
	det.Topology = 2
	rd, hckpt := trainWithCheckpoint(t, det)
	il := lstmCfg(4, true, true)
	il.Topology = 2
	ri, ickpt := trainWithCheckpoint(t, il)
	assertRunsIdentical(t, "lstm hierarchical interleave-vs-det", rd, ri)
	if !bytes.Equal(hckpt, ickpt) {
		t.Error("lstm hierarchical: final weights differ between interleaved and deterministic runs")
	}
}

// TestLSTMInterleaveOverTCP: the LSTM interleaved launch over real loopback
// sockets matches the in-process fabric bitwise.
func TestLSTMInterleaveOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration")
	}
	cfg := quickCfg("lstm", "a2sgd", 3)
	cfg.BucketBytes = fourBucketBytes
	cfg.Overlap = true
	cfg.Interleave = true
	inproc, wantCkpt := trainWithCheckpoint(t, cfg)
	tcp := cfg
	tcp.GroupRunner = tcpRunner
	rt, ckpt := trainWithCheckpoint(t, tcp)
	assertRunsIdentical(t, "lstm interleave tcp-vs-inproc", inproc, rt)
	if !bytes.Equal(ckpt, wantCkpt) {
		t.Error("lstm: final weights differ between tcp and inproc")
	}
}

// TestConcurrentInterleaveOverTCP runs the most aggressive mode — concurrent
// contexts plus backprop-interleaved launch — over real loopback sockets and
// checks it matches the in-process fabric bitwise. This exercises the TCP
// transport's tag matcher under genuinely interleaved wire traffic.
func TestConcurrentInterleaveOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration")
	}
	inproc, wantCkpt := trainWithCheckpoint(t, concCfg("a2sgd", 3, 4, true))
	tcp := concCfg("a2sgd", 3, 4, true)
	tcp.GroupRunner = tcpRunner
	rt, ckpt := trainWithCheckpoint(t, tcp)
	assertRunsIdentical(t, "a2sgd concurrent+interleave tcp-vs-inproc", inproc, rt)
	if !bytes.Equal(ckpt, wantCkpt) {
		t.Error("final weights differ between tcp and inproc")
	}
}

// TestHistogramCaptureUnderInterleave: capture steps fall back to the
// post-backward launch on every rank, so the histogram sees the raw local
// gradient and the run still completes (and stays deterministic).
func TestHistogramCaptureUnderInterleave(t *testing.T) {
	cfg := concCfg("a2sgd", 2, 4, true)
	cfg.HistIters = []int{0, 5}
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Histograms) != 2 {
		t.Fatalf("captured %d histograms, want 2", len(res.Histograms))
	}
	if res.Histograms[0].Total() == 0 {
		t.Error("histogram 0 is empty")
	}
}

// TestConcurrencyValidation pins the knob preconditions.
func TestConcurrencyValidation(t *testing.T) {
	cfg := quickCfg("fnn3", "a2sgd", 2)
	cfg.Interleave = true
	if _, err := Train(cfg); err == nil {
		t.Error("Interleave without Overlap must fail")
	}
	cfg = quickCfg("fnn3", "a2sgd", 2)
	cfg.Concurrency = 2
	if _, err := Train(cfg); err == nil {
		t.Error("Concurrency > 1 without Overlap must fail")
	}
	cfg = quickCfg("fnn3", "a2sgd", 2)
	cfg.Overlap = true
	cfg.Concurrency = 99
	if _, err := Train(cfg); err == nil {
		t.Error("Concurrency beyond comm.MaxConcurrency must fail")
	}
}

// TestConcurrentHierarchical: tag-space contexts compose with the two-level
// topology (each shadow context replays the splits); the hierarchical
// concurrent run must match the hierarchical deterministic run bitwise.
func TestConcurrentHierarchical(t *testing.T) {
	det := concCfg("a2sgd", 4, 0, false)
	det.Topology = 2
	rd, wantCkpt := trainWithCheckpoint(t, det)
	conc := concCfg("a2sgd", 4, 4, true)
	conc.Topology = 2
	rc, ckpt := trainWithCheckpoint(t, conc)
	assertRunsIdentical(t, "a2sgd hierarchical concurrent-vs-det", rd, rc)
	if !bytes.Equal(ckpt, wantCkpt) {
		t.Error("final weights differ between hierarchical concurrent and deterministic runs")
	}
}
