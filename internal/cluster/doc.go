// Package cluster is the data-parallel distributed training runtime: it
// plays the role Horovod plays in the paper. P workers (goroutines with
// MPI-style communicators) hold model replicas, compute local gradients on
// their shard of each mini-batch, synchronize through a pluggable
// gradient-synchronization algorithm (A2SGD or any baseline), and apply the
// update with the Table 1 learning-rate policy.
//
// # Gradient pipeline
//
// Each step flows gather → bucket → encode → collective → decode → apply:
// the flattened gradient is partitioned at layer granularity into buckets
// of at most Config.BucketBytes (nn.PlanBuckets), every bucket owns a full
// algorithm instance (compress.Bucketed — per-bucket error feedback, seeds
// and A2SGD means), and with Config.Overlap bucket i's collective runs on
// the communicator's progress worker while bucket i+1 is still being
// gathered and encoded. Overlapped runs are bitwise identical to
// synchronous ones for a fixed seed and bucket plan, because the progress
// worker executes the same collectives in the same order.
//
// # Topology
//
// Config.Topology (ranks per node, > 1) switches every collective to the
// two-level hierarchical schedule of comm.SetTopology: intra-node
// reduce/gather, inter-node exchange among node leaders, intra-node
// broadcast. Hierarchical runs are convergence-equivalent to flat runs
// (float tolerance — the reduction order differs) and deterministic for a
// fixed seed and topology. netsim.TwoTier prices the matching two-tier
// fabric; every Result.ModeledIterSec* helper accepts it.
//
// # Cost accounting
//
// The runtime separates the three cost components the paper's evaluation
// analyses: forward/backward compute (measured), compression compute
// (measured — Figure 2's quantity), and synchronization traffic (counted
// exactly, then priced by the α–β network model for Figures 4–5).
package cluster
