package cluster

import (
	"bytes"
	"math"
	"testing"

	"a2sgd/internal/compress"
	"a2sgd/internal/core"
	"a2sgd/internal/models"
	"a2sgd/internal/netsim"
	"a2sgd/internal/nn"
)

func algoFactory(name string) func(rank, n int) compress.Algorithm {
	return func(rank, n int) compress.Algorithm {
		o := compress.DefaultOptions(n)
		o.Seed = uint64(rank + 1)
		switch name {
		case "dense":
			return compress.NewDense(o)
		case "topk":
			return compress.NewTopK(o)
		case "gaussiank":
			return compress.NewGaussianK(o)
		case "qsgd":
			return compress.NewQSGD(o)
		case "a2sgd":
			return core.New(n)
		case "a2sgd-allgather":
			return core.New(n, core.WithAllgather())
		case "a2sgd-every4":
			return compress.NewPeriodic(core.New(n), 4)
		case "dgc":
			return compress.NewDGC(o)
		case "qsgd-elias":
			return compress.NewQSGDElias(o)
		case "randk":
			return compress.NewRandK(o)
		case "terngrad":
			return compress.NewTernGrad(o)
		default:
			panic("unknown algo " + name)
		}
	}
}

func quickCfg(family, algo string, workers int) Config {
	return Config{
		Workers: workers, Family: family,
		NewAlgorithm:   algoFactory(algo),
		Epochs:         3,
		StepsPerEpoch:  8,
		BatchPerWorker: 8,
		Seed:           7,
		Momentum:       0.9,
		EvalBatch:      64,
	}
}

func TestTrainRequiresAlgorithm(t *testing.T) {
	_, err := Train(Config{Workers: 1, Family: "fnn3"})
	if err == nil {
		t.Fatal("expected error without NewAlgorithm")
	}
}

func TestTrainUnknownFamily(t *testing.T) {
	cfg := quickCfg("nope", "dense", 1)
	if _, err := Train(cfg); err == nil {
		t.Fatal("expected error for unknown family")
	}
}

func TestDenseTrainingLearnsFNN(t *testing.T) {
	cfg := quickCfg("fnn3", "dense", 2)
	cfg.Epochs = 5
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 5 {
		t.Fatalf("epochs %d", len(res.Epochs))
	}
	first, last := res.Epochs[0], res.Epochs[len(res.Epochs)-1]
	if !(last.Loss < first.Loss) {
		t.Errorf("loss did not fall: %v -> %v", first.Loss, last.Loss)
	}
	if last.Metric < 0.5 {
		t.Errorf("final accuracy %v too low", last.Metric)
	}
	if res.Metric != models.MetricAccuracy {
		t.Error("metric kind")
	}
	if res.NumParams <= 0 || res.Algorithm != "dense" {
		t.Errorf("metadata: %+v", res)
	}
}

func TestA2SGDMatchesDenseConvergenceShape(t *testing.T) {
	// The paper's headline convergence claim: A2SGD reaches accuracy close
	// to dense SGD on the same budget.
	accs := map[string]float64{}
	for _, algo := range []string{"dense", "a2sgd"} {
		cfg := quickCfg("fnn3", algo, 4)
		cfg.Epochs = 6
		res, err := Train(cfg)
		if err != nil {
			t.Fatal(err)
		}
		accs[algo] = res.FinalMetric()
	}
	if accs["a2sgd"] < accs["dense"]-0.12 {
		t.Errorf("a2sgd %.3f much worse than dense %.3f", accs["a2sgd"], accs["dense"])
	}
}

func TestAllAlgorithmsTrainAllFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	for _, fam := range models.Families() {
		for _, algo := range []string{
			"dense", "topk", "gaussiank", "qsgd", "a2sgd",
			"a2sgd-allgather", "a2sgd-every4", "dgc", "qsgd-elias", "randk", "terngrad",
		} {
			cfg := quickCfg(fam, algo, 2)
			cfg.Epochs = 2
			cfg.StepsPerEpoch = 4
			cfg.BatchPerWorker = 4
			cfg.EvalBatch = 32
			res, err := Train(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", fam, algo, err)
			}
			if len(res.Epochs) != 2 {
				t.Fatalf("%s/%s: epochs %d", fam, algo, len(res.Epochs))
			}
			if math.IsNaN(res.Epochs[1].Loss) {
				t.Fatalf("%s/%s: NaN loss", fam, algo)
			}
		}
	}
}

func TestTrafficAccountingPerAlgorithm(t *testing.T) {
	// A2SGD must move ~8 bytes/step ×log2 rounds; dense must move ~4·n.
	cfgA := quickCfg("fnn3", "a2sgd", 4)
	resA, err := Train(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	cfgD := quickCfg("fnn3", "dense", 4)
	resD, err := Train(cfgD)
	if err != nil {
		t.Fatal(err)
	}
	if resA.PayloadBytes != 8 {
		t.Errorf("a2sgd payload %d, want 8", resA.PayloadBytes)
	}
	if resD.PayloadBytes != int64(4*resD.NumParams) {
		t.Errorf("dense payload %d, want %d", resD.PayloadBytes, 4*resD.NumParams)
	}
	// Measured per-step traffic: A2SGD orders of magnitude below dense.
	if resA.BytesPerWorkerPerStep*100 > resD.BytesPerWorkerPerStep {
		t.Errorf("a2sgd measured %.0f B/step vs dense %.0f B/step — expected >>100x gap",
			resA.BytesPerWorkerPerStep, resD.BytesPerWorkerPerStep)
	}
}

func TestModeledIterationTimeOrdering(t *testing.T) {
	// On the modelled 100 Gbps fabric with a large model, A2SGD's sync time
	// must be negligible versus dense.
	res := &Result{
		Workers: 8, AvgComputeSec: 0.01, AvgEncodeSec: 0.001,
		PayloadBytes: 8, ExchangeKind: netsim.ExchangeAllreduce,
	}
	dense := &Result{
		Workers: 8, AvgComputeSec: 0.01, AvgEncodeSec: 0,
		PayloadBytes: 66_034_000 * 4, ExchangeKind: netsim.ExchangeAllreduce,
	}
	f := netsim.IB100()
	if res.ModeledIterSec(f) >= dense.ModeledIterSec(f) {
		t.Error("A2SGD modelled iteration must beat dense for the LSTM-sized model")
	}
	if th := res.Throughput(f, 16); th <= 0 {
		t.Errorf("throughput %v", th)
	}
}

func TestHistogramCapture(t *testing.T) {
	cfg := quickCfg("fnn3", "dense", 2)
	cfg.HistIters = []int{0, 10}
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Histograms) != 2 {
		t.Fatalf("captured %d histograms, want 2", len(res.Histograms))
	}
	for i, h := range res.Histograms {
		if h.Total() != int64(res.NumParams) {
			t.Errorf("hist %d covers %d values, want %d", i, h.Total(), res.NumParams)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	// Same seed → bit-identical epoch losses (dense path is deterministic).
	r1, err := Train(quickCfg("fnn3", "dense", 2))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Train(quickCfg("fnn3", "dense", 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Epochs {
		if r1.Epochs[i].Loss != r2.Epochs[i].Loss {
			t.Fatalf("epoch %d: %v vs %v", i, r1.Epochs[i].Loss, r2.Epochs[i].Loss)
		}
	}
}

func TestFinalMetricEmpty(t *testing.T) {
	if (&Result{}).FinalMetric() != 0 {
		t.Error("empty result metric")
	}
}

func TestLSTMClusterRun(t *testing.T) {
	cfg := quickCfg("lstm", "a2sgd", 2)
	cfg.SeqLen = 8
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metric != models.MetricPerplexity {
		t.Error("metric kind")
	}
	if res.FinalMetric() <= 1 {
		t.Errorf("perplexity %v", res.FinalMetric())
	}
}

func TestDivergenceDetection(t *testing.T) {
	// Failure injection: an absurd learning-rate scale must surface as an
	// error ("non-finite gradient"), not as silent Inf metrics.
	cfg := quickCfg("fnn3", "dense", 2)
	cfg.LRScale = 1e9
	cfg.Epochs = 30
	_, err := Train(cfg)
	if err == nil {
		t.Fatal("expected divergence to be detected")
	}
}

func TestCheckpointWrittenAndRestorable(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg("fnn3", "a2sgd", 2)
	cfg.Epochs = 2
	cfg.StepsPerEpoch = 3
	cfg.Checkpoint = &buf
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no checkpoint written")
	}
	// Restore into a fresh model and verify it evaluates identically to a
	// rerun of the same configuration.
	m, err := models.New(models.Config{Family: "fnn3", Seed: cfg.Seed, Reduced: true})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := nn.LoadParams(&buf, m.Params())
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) == 0 {
		t.Fatal("no tensors restored")
	}
	_ = res
}
