package cluster

import (
	"sync"
	"testing"

	"a2sgd/internal/comm"
	"a2sgd/internal/comm/tcpnet"
)

// tcpRunner launches the worker group over real TCP loopback sockets.
func tcpRunner(size int, body func(*comm.Communicator) error) error {
	cs, shutdown, err := tcpnet.NewLocalGroup(size)
	if err != nil {
		return err
	}
	defer shutdown()
	errs := make(chan error, size)
	var wg sync.WaitGroup
	for _, c := range cs {
		wg.Add(1)
		go func(c *comm.Communicator) {
			defer wg.Done()
			if err := body(c); err != nil {
				errs <- err
				shutdown()
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// Training over TCP must produce exactly the same losses as training over
// the in-process fabric: the collectives are deterministic and transport
// agnostic.
func TestTrainingOverTCPMatchesInproc(t *testing.T) {
	base := quickCfg("fnn3", "a2sgd", 3)
	base.Epochs = 2
	base.StepsPerEpoch = 4
	base.BatchPerWorker = 4
	inproc, err := Train(base)
	if err != nil {
		t.Fatal(err)
	}
	tcp := base
	tcp.GroupRunner = tcpRunner
	overTCP, err := Train(tcp)
	if err != nil {
		t.Fatal(err)
	}
	if len(inproc.Epochs) != len(overTCP.Epochs) {
		t.Fatalf("epoch counts differ")
	}
	for i := range inproc.Epochs {
		if inproc.Epochs[i].Loss != overTCP.Epochs[i].Loss {
			t.Errorf("epoch %d loss differs: inproc %v vs tcp %v",
				i, inproc.Epochs[i].Loss, overTCP.Epochs[i].Loss)
		}
		if inproc.Epochs[i].Metric != overTCP.Epochs[i].Metric {
			t.Errorf("epoch %d metric differs: inproc %v vs tcp %v",
				i, inproc.Epochs[i].Metric, overTCP.Epochs[i].Metric)
		}
	}
}

func TestTrainingOverTCPDense(t *testing.T) {
	cfg := quickCfg("fnn3", "dense", 2)
	cfg.Epochs = 2
	cfg.StepsPerEpoch = 3
	cfg.BatchPerWorker = 4
	cfg.GroupRunner = tcpRunner
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("epochs %d", len(res.Epochs))
	}
}
