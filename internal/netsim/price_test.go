package netsim

import "testing"

func TestPriceScheduleMatchesLaws(t *testing.T) {
	f := IB100()
	kinds := []ExchangeKind{ExchangeAllreduce, ExchangeAllgather}
	enc := []float64{1e-5, 2e-5}
	bytes := []int64{4096, 128}
	p := PriceSchedule(f, kinds, enc, bytes, 8)
	if want := f.PipelinedSyncTimeKinds(kinds, enc, bytes, 8); p.Pipelined != want {
		t.Errorf("pipelined %v, want %v", p.Pipelined, want)
	}
	if want := f.SerialSyncTimeKinds(kinds, enc, bytes, 8); p.Serial != want {
		t.Errorf("serial %v, want %v", p.Serial, want)
	}
	if p.Pipelined > p.Serial {
		t.Errorf("pipelined %v exceeds serial %v", p.Pipelined, p.Serial)
	}
}

func TestCheapestPlanPicksMinimum(t *testing.T) {
	kinds := []ExchangeKind{ExchangeAllreduce}
	enc := []float64{0}
	bytes := []int64{1 << 20}
	cands := []Pricer{TCP10G(), IB100(), TwoTierTCP10G(4)}
	best, price := CheapestPlan(cands, kinds, enc, bytes, 8)
	if best < 0 {
		t.Fatal("no candidate chosen")
	}
	for i, pr := range cands {
		if got := PriceSchedule(pr, kinds, enc, bytes, 8); got.Pipelined < price.Pipelined {
			t.Errorf("candidate %d (%s) cheaper than chosen %d", i, pr.Label(), best)
		}
	}
	// A megabyte allreduce must be cheapest on the fast flat fabric.
	if cands[best].Label() != IB100().Label() {
		t.Errorf("chose %s, want ib100", cands[best].Label())
	}
	if best, _ := CheapestPlan(nil, kinds, enc, bytes, 8); best != -1 {
		t.Errorf("empty candidates returned %d", best)
	}
}

func TestCheapestPlanTieKeepsFirst(t *testing.T) {
	f := IB100()
	best, _ := CheapestPlan([]Pricer{f, f}, []ExchangeKind{ExchangeAllreduce}, []float64{0}, []int64{4096}, 4)
	if best != 0 {
		t.Errorf("tie chose %d, want 0", best)
	}
}

func TestAmortizedBucketBytes(t *testing.T) {
	f := IB100()
	// Tighter latency fractions require bigger buckets.
	b50 := f.AmortizedBucketBytes(8, 0.5)
	b10 := f.AmortizedBucketBytes(8, 0.1)
	if b50 <= 0 || b10 <= b50 {
		t.Fatalf("amortized sizes not increasing: 50%%=%d 10%%=%d", b50, b10)
	}
	// At the returned size the latency share of one ring step is ~ the
	// requested fraction: alpha / (alpha + B*beta/p) ≈ frac.
	share := f.Alpha / (f.Alpha + float64(b10)*f.Beta/8)
	if share < 0.09 || share > 0.11 {
		t.Errorf("latency share %.3f at the 10%% size", share)
	}
	// Degenerate inputs stay sane.
	if b := (Fabric{Name: "free", Alpha: 1e-6}).AmortizedBucketBytes(8, 0.1); b != 1<<30 {
		t.Errorf("beta=0 fabric returned %d", b)
	}
	// The two-tier bound amortizes the inter tier at the node count: fewer
	// leaders than ranks, so the bound is below the flat bound at p ranks.
	tt := TwoTierTCP10G(4)
	if got, flat := tt.AmortizedBucketBytes(16, 0.1), tt.Inter.AmortizedBucketBytes(16, 0.1); got >= flat {
		t.Errorf("two-tier bound %d not below flat %d", got, flat)
	}
}
