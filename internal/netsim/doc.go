// Package netsim models the wall-clock cost of collective communication on
// a parameterized network fabric using the classic α–β (latency–bandwidth)
// model: sending an m-byte message costs α + m·β seconds.
//
// The paper's testbed is 16 nodes on 100 Gbps InfiniBand; this repository
// cannot reproduce that hardware, so the benchmark harness instead feeds the
// *actual byte counts* produced by the collective implementations (package
// a2sgd/internal/comm) into this model. The per-collective time laws are
// the standard ones (Thakur, Rabenseifner & Gropp, IJHPCA 2005 — the
// paper's reference [46]) and therefore reproduce exactly the dependency the
// paper's Figures 4–5 measure: how iteration time scales with message
// volume, worker count and the choice of allreduce vs allgather.
//
// # Price laws
//
// Three layers of law build on the α–β primitive:
//
//   - Flat collectives (Fabric): ring and recursive-doubling allreduce,
//     ring allgather, binomial broadcast, and SyncTime selecting by
//     ExchangeKind.
//   - Pipeline laws (PipelinedSyncTime / SerialSyncTime): the makespan of
//     the bucketed encode→collective pipeline, pricing how much
//     synchronization the training runtime's overlap hides behind local
//     compute.
//   - Two-tier laws (TwoTier): hierarchical clusters with fast intra-node
//     links and a slow inter-node network, pricing the two-level schedules
//     of comm.SetTopology (intra-node reduce/gather, leader exchange,
//     intra-node broadcast).
//
// Fabric and TwoTier both implement Pricer, so every modelled-iteration
// helper (cluster.Result.ModeledIterSec*) accepts either interchangeably.
package netsim
