package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSingleWorkerIsFree(t *testing.T) {
	f := IB100()
	if f.RingAllreduce(1e6, 1) != 0 || f.RecDoublingAllreduce(1e6, 1) != 0 ||
		f.Allgather(1e6, 1) != 0 || f.Broadcast(1e6, 1) != 0 || f.Allreduce(1e6, 1) != 0 {
		t.Error("collectives with one worker must cost 0")
	}
}

func TestPointToPoint(t *testing.T) {
	f := Fabric{Alpha: 1e-6, Beta: 1e-9}
	got := f.PointToPoint(1000)
	want := 1e-6 + 1000e-9
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestRingAllreduceLaw(t *testing.T) {
	f := Fabric{Alpha: 2e-6, Beta: 1e-10}
	n, p := int64(4_000_000), 8
	got := f.RingAllreduce(n, p)
	want := 14 * (2e-6 + 500_000*1e-10) // 2(p-1)=14 steps, n/p = 500 kB
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestRecDoublingLaw(t *testing.T) {
	f := Fabric{Alpha: 1e-6, Beta: 1e-10}
	// Power of two: exactly log2(p) rounds.
	got := f.RecDoublingAllreduce(8, 8)
	want := 3 * (1e-6 + 8e-10)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("pow2: got %v want %v", got, want)
	}
	// Non power of two costs strictly more than the next-lower power.
	if f.RecDoublingAllreduce(8, 5) <= f.RecDoublingAllreduce(8, 4) {
		t.Error("non-pow2 should pay the fold penalty")
	}
}

func TestAllreduceChoosesBest(t *testing.T) {
	f := IB100()
	// Tiny message: recursive doubling (latency bound) must win.
	small := f.Allreduce(8, 16)
	if small != f.RecDoublingAllreduce(8, 16) {
		t.Errorf("small message should use recursive doubling: %v", small)
	}
	if small >= f.RingAllreduce(8, 16) {
		t.Error("auto should beat ring on small messages")
	}
	// Huge message: ring (bandwidth bound) must win.
	big := f.Allreduce(264_000_000, 16) // 66M params × 4B
	if big != f.RingAllreduce(264_000_000, 16) {
		t.Errorf("large message should use ring: %v", big)
	}
}

func TestA2SGDVersusDenseModelled(t *testing.T) {
	// The central claim: A2SGD's 8-byte exchange is orders of magnitude
	// cheaper than dense 66M-parameter allreduce on the modelled fabric.
	f := IB100()
	p := 16
	a2 := f.Allreduce(8, p)
	dense := f.Allreduce(66_034_000*4, p)
	if dense/a2 < 100 {
		t.Errorf("dense/a2sgd ratio = %v, expected >> 100", dense/a2)
	}
}

func TestAllgatherVsAllreduceSmallSparse(t *testing.T) {
	// §4.4: on a fast network, allgather of k elements beats ring allreduce
	// of the full vector and can even beat allreduce-style sparse exchange.
	f := IB100()
	p := 8
	k := int64(66_034 * 8) // 0.1% of 66M params, values+indices
	if f.Allgather(k, p) >= f.RingAllreduce(66_034_000*4, p) {
		t.Error("sparse allgather should beat dense allreduce")
	}
}

func TestSyncTimeDispatch(t *testing.T) {
	f := IB100()
	if f.SyncTime(ExchangeAllgather, 100, 4) != f.Allgather(100, 4) {
		t.Error("allgather dispatch")
	}
	if f.SyncTime(ExchangeAllreduce, 100, 4) != f.Allreduce(100, 4) {
		t.Error("allreduce dispatch")
	}
}

func TestMonotonicity(t *testing.T) {
	// Costs must be monotone in message size and (for fixed size) in p.
	f := IB100()
	check := func(g func(int64, int) float64, name string) {
		prev := 0.0
		for _, n := range []int64{1, 10, 1000, 1e6, 1e8} {
			c := g(n, 8)
			if c < prev {
				t.Errorf("%s not monotone in n at %d", name, n)
			}
			prev = c
		}
		prevP := 0.0
		for _, p := range []int{2, 4, 8, 16, 32} {
			c := g(1e6, p)
			if c < prevP && name != "recdbl" { // recdbl fold makes 5 > 8 possible; skip
				t.Errorf("%s not monotone in p at %d", name, p)
			}
			prevP = c
		}
	}
	check(f.RingAllreduce, "ring")
	check(f.Allgather, "allgather")
	check(f.Broadcast, "broadcast")
}

func TestFabricProfiles(t *testing.T) {
	ib, eth := IB100(), TCP10G()
	if ib.Beta >= eth.Beta || ib.Alpha >= eth.Alpha {
		t.Error("IB must be strictly faster than 10G Ethernet")
	}
	if ib.Name != "ib100" || eth.Name != "tcp10g" {
		t.Error("profile names")
	}
}

// Property: ring beats recursive doubling for large n, and vice versa for
// tiny n, across worker counts — the crossover that motivates AlgoAuto.
func TestCrossoverProperty(t *testing.T) {
	f := IB100()
	prop := func(pRaw uint8) bool {
		// Bandwidth side: ring wins on huge vectors for any p ≥ 3 (p=2 is
		// excluded — equal bytes, ring pays one extra latency).
		p := 3 + int(pRaw)%30
		huge := f.RingAllreduce(1e9, p) <= f.RecDoublingAllreduce(1e9, p)
		// Latency side: recursive doubling wins on tiny vectors for
		// power-of-two p ≥ 4, where it has strictly fewer rounds and no
		// fold penalty.
		p2 := 4 << (int(pRaw) % 4)
		tiny := f.RecDoublingAllreduce(8, p2) <= f.RingAllreduce(8, p2)
		return tiny && huge
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestPipelinedSyncTime(t *testing.T) {
	f := IB100()
	enc := []float64{1e-5, 1e-5, 1e-5, 1e-5}
	bytes := []int64{4096, 4096, 4096, 4096}
	over := f.PipelinedSyncTime(ExchangeAllreduce, enc, bytes, 8)
	serial := f.SerialSyncTime(ExchangeAllreduce, enc, bytes, 8)
	if over >= serial {
		t.Errorf("pipelined %.3e must undercut serial %.3e", over, serial)
	}
	// Lower bounds: the pipeline can never beat pure encode or pure sync.
	var encSum, syncSum float64
	for i := range enc {
		encSum += enc[i]
		syncSum += f.SyncTime(ExchangeAllreduce, bytes[i], 8)
	}
	if over < encSum || over < syncSum {
		t.Errorf("pipelined %.3e below encode %.3e / sync %.3e floors", over, encSum, syncSum)
	}
	// Single bucket: pipelined degenerates to enc + sync (the serial law).
	one := f.PipelinedSyncTime(ExchangeAllreduce, enc[:1], bytes[:1], 8)
	if want := enc[0] + f.SyncTime(ExchangeAllreduce, bytes[0], 8); one != want {
		t.Errorf("single bucket %.3e, want %.3e", one, want)
	}
	// No buckets: zero.
	if z := f.PipelinedSyncTime(ExchangeAllreduce, nil, nil, 8); z != 0 {
		t.Errorf("empty pipeline %v", z)
	}
}
