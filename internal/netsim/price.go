package netsim

// Planning query API. The planner (a2sgd/internal/plan) asks two questions of
// a network model: "what does this bucket schedule cost?" (PriceSchedule) and
// "which of these fabrics/topologies runs it cheapest?" (CheapestPlan). Both
// are thin, deterministic wrappers over the per-bucket price laws, factored
// out so sweeps and tests price candidate schedules without re-deriving the
// recurrences.

// SchedulePrice bundles the two modelled execution times of one bucket
// schedule: the overlap pipeline makespan and the back-to-back serial sum.
type SchedulePrice struct {
	// Pipelined is the encode→collective pipeline makespan (bucket b's
	// collective hides behind the encodes of buckets b+1…).
	Pipelined float64
	// Serial runs every encode and collective back to back.
	Serial float64
}

// PriceSchedule prices one bucket schedule on a pricer: kinds[b], encSec[b]
// and bucketBytes[b] describe bucket b's collective, local compression time
// and per-worker payload (short kinds/encSec slices repeat their last
// element, as in the *SyncTimeKinds laws).
func PriceSchedule(pr Pricer, kinds []ExchangeKind, encSec []float64, bucketBytes []int64, p int) SchedulePrice {
	return SchedulePrice{
		Pipelined: pr.PipelinedSyncTimeKinds(kinds, encSec, bucketBytes, p),
		Serial:    pr.SerialSyncTimeKinds(kinds, encSec, bucketBytes, p),
	}
}

// CheapestPlan returns the index of the candidate pricer that runs the given
// bucket schedule with the smallest pipelined makespan, along with its
// price. Ties keep the earliest candidate (deterministic for a fixed
// candidate order); an empty candidate list returns -1.
func CheapestPlan(candidates []Pricer, kinds []ExchangeKind, encSec []float64, bucketBytes []int64, p int) (int, SchedulePrice) {
	best := -1
	var bestPrice SchedulePrice
	for i, pr := range candidates {
		price := PriceSchedule(pr, kinds, encSec, bucketBytes, p)
		if best < 0 || price.Pipelined < bestPrice.Pipelined {
			best, bestPrice = i, price
		}
	}
	return best, bestPrice
}

// BucketSizer is implemented by pricers that can suggest how large a bucket
// must be before the per-collective latency of their priced (slowest) tier
// is amortized. Both Fabric and TwoTier implement it.
type BucketSizer interface {
	// AmortizedBucketBytes returns the smallest per-worker bucket payload
	// for which the latency (α) share of one collective is at most
	// latencyFrac of its total cost.
	AmortizedBucketBytes(p int, latencyFrac float64) int64
}

var (
	_ BucketSizer = Fabric{}
	_ BucketSizer = TwoTier{}
)

// AmortizedBucketBytes implements BucketSizer for a flat fabric. For the
// ring allreduce of B bytes — 2(p−1) steps of α + (B/p)β — the latency share
// is α/(α + Bβ/p), so the bound is B ≥ p·α·(1−f)/(f·β).
func (f Fabric) AmortizedBucketBytes(p int, latencyFrac float64) int64 {
	if p < 2 {
		p = 2
	}
	if latencyFrac <= 0 || latencyFrac >= 1 || f.Beta <= 0 {
		return int64(1) << 30 // degenerate: nothing to amortize against
	}
	b := float64(p) * f.Alpha * (1 - latencyFrac) / (latencyFrac * f.Beta)
	if b < 1 {
		b = 1
	}
	return int64(b)
}

// AmortizedBucketBytes implements BucketSizer for the two-tier law: the tier
// worth amortizing is the slow inter-node leader exchange, so the flat bound
// applies to the Inter fabric at the node count.
func (t TwoTier) AmortizedBucketBytes(p int, latencyFrac float64) int64 {
	_, nodes := t.shape(p)
	return t.Inter.AmortizedBucketBytes(nodes, latencyFrac)
}
