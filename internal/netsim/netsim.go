package netsim

import "math"

// Fabric describes a network by its α–β parameters.
type Fabric struct {
	// Name identifies the profile in reports.
	Name string
	// Alpha is the per-message latency in seconds.
	Alpha float64
	// Beta is the per-byte transfer time in seconds (1 / bandwidth).
	Beta float64
}

// IB100 approximates the paper's testbed: 100 Gbps InfiniBand with ~1.5 µs
// MPI-level latency.
func IB100() Fabric {
	return Fabric{Name: "ib100", Alpha: 1.5e-6, Beta: 8.0e-11} // 12.5 GB/s
}

// TCP10G approximates a commodity 10 Gbps Ethernet cluster (for the
// "slower network" sensitivity analysis in EXPERIMENTS.md).
func TCP10G() Fabric {
	return Fabric{Name: "tcp10g", Alpha: 2.0e-5, Beta: 8.0e-10} // 1.25 GB/s
}

// Measured builds a fabric from runtime α–β estimates (e.g. a
// health.Monitor's link fits) so the planner can price schedules on the
// network as observed rather than as modelled. Negative inputs are clamped
// to zero; an empty name defaults to "measured".
func Measured(name string, alpha, beta float64) Fabric {
	if name == "" {
		name = "measured"
	}
	if alpha < 0 {
		alpha = 0
	}
	if beta < 0 {
		beta = 0
	}
	return Fabric{Name: name, Alpha: alpha, Beta: beta}
}

// PointToPoint returns the cost of one m-byte message.
func (f Fabric) PointToPoint(mBytes int64) float64 {
	return f.Alpha + float64(mBytes)*f.Beta
}

// RingAllreduce returns the cost of a ring allreduce of an n-byte vector
// across p workers: 2(p−1) steps each moving n/p bytes.
func (f Fabric) RingAllreduce(nBytes int64, p int) float64 {
	if p <= 1 {
		return 0
	}
	steps := float64(2 * (p - 1))
	seg := float64(nBytes) / float64(p)
	return steps * (f.Alpha + seg*f.Beta)
}

// RecDoublingAllreduce returns the cost of recursive-doubling allreduce:
// ⌈log2 p⌉ steps each moving the full n bytes (plus the non-power-of-two
// fold, one extra exchange).
func (f Fabric) RecDoublingAllreduce(nBytes int64, p int) float64 {
	if p <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(p)))
	t := rounds * (f.Alpha + float64(nBytes)*f.Beta)
	if p&(p-1) != 0 { // fold + unfold for non-power-of-two
		t += 2 * (f.Alpha + float64(nBytes)*f.Beta)
	}
	return t
}

// autoCutoverBytes mirrors comm's AlgoAuto policy: vectors under 4096
// float32 elements go recursive doubling, larger ones ring. The price law
// prices the collective the runtime actually runs — a min() of the two laws
// would assume an α-aware library choice the communicator does not make, and
// under high injected latency that mispredicts the dense epilogue (the
// runtime rings a large vector even when ⌈log2 p⌉ latency rounds would be
// cheaper).
const autoCutoverBytes = 4 * 4096

// Allreduce returns the cost of the allreduce comm.AlgoAuto would run: the
// length-based cutover between recursive doubling (small vectors) and ring
// (large vectors).
func (f Fabric) Allreduce(nBytes int64, p int) float64 {
	if p <= 1 {
		return 0
	}
	if nBytes < autoCutoverBytes {
		return f.RecDoublingAllreduce(nBytes, p)
	}
	return f.RingAllreduce(nBytes, p)
}

// Allgather returns the cost of a ring allgather where each worker
// contributes nBytes: p−1 steps each moving nBytes.
func (f Fabric) Allgather(nBytes int64, p int) float64 {
	if p <= 1 {
		return 0
	}
	return float64(p-1) * (f.Alpha + float64(nBytes)*f.Beta)
}

// AllgatherV returns the cost of a variable-length allgather where each
// worker contributes nBytes on average: one fixed length-exchange round
// (every worker allgathers its 4-byte element count so peers can size their
// receives) followed by the p−1 data rounds. The length round is pure
// latency overhead — (p−1)·(α+4β) — which the earlier flat Allgather law
// omitted, undercounting every sparse exchange by p−1 α terms per bucket
// per step.
func (f Fabric) AllgatherV(nBytes int64, p int) float64 {
	if p <= 1 {
		return 0
	}
	return f.Allgather(4, p) + f.Allgather(nBytes, p)
}

// Broadcast returns the cost of a binomial-tree broadcast of nBytes.
func (f Fabric) Broadcast(nBytes int64, p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p))) * (f.Alpha + float64(nBytes)*f.Beta)
}

// ExchangeKind tells the model which collective a gradient-synchronization
// algorithm uses, matching §4.4's Allreduce-vs-Allgather discussion.
type ExchangeKind int

// Exchange kinds used by the gradient synchronization algorithms.
const (
	// ExchangeAllreduce: dense SGD, QSGD (dequantized reduce) and A2SGD.
	ExchangeAllreduce ExchangeKind = iota
	// ExchangeAllgather: fixed-length gather exchange (QSGD-Elias's coded
	// streams, priced at their expected length).
	ExchangeAllgather
	// ExchangeAllgatherV: variable-length gather exchange with a leading
	// length round — the sparse value/index algorithms (Top-K, Gaussian-K,
	// Rand-K, DGC), whose payload size is data dependent.
	ExchangeAllgatherV
)

// SyncTime returns the modelled synchronization time for one training step
// in which each worker contributes bytesPerWorker to the given exchange.
func (f Fabric) SyncTime(kind ExchangeKind, bytesPerWorker int64, p int) float64 {
	switch kind {
	case ExchangeAllgather:
		return f.Allgather(bytesPerWorker, p)
	case ExchangeAllgatherV:
		return f.AllgatherV(bytesPerWorker, p)
	default:
		return f.Allreduce(bytesPerWorker, p)
	}
}

// PipelinedSyncTime models the bucketed overlap pipeline: bucket b's encode
// runs on the CPU strictly after bucket b-1's encode, and its collective
// starts once both its encode and the previous bucket's collective have
// finished (collectives execute one at a time, in order, like the
// communicator's progress worker). The returned makespan covers first
// encode start → last collective end:
//
//	encDone_b  = encDone_{b-1} + enc_b
//	syncDone_b = max(encDone_b, syncDone_{b-1}) + sync_b
//
// Bucket b's sync is therefore hidden behind the encode of buckets b+1…;
// with a single bucket the law degenerates to enc + sync (the serial
// model). encSec and bucketBytes must be parallel slices, one per bucket.
func (f Fabric) PipelinedSyncTime(kind ExchangeKind, encSec []float64, bucketBytes []int64, p int) float64 {
	return f.PipelinedSyncTimeKinds(uniformKinds(kind), encSec, bucketBytes, p)
}

// SerialSyncTime is the non-overlapped counterpart of PipelinedSyncTime:
// every encode and every collective runs back to back.
func (f Fabric) SerialSyncTime(kind ExchangeKind, encSec []float64, bucketBytes []int64, p int) float64 {
	return f.SerialSyncTimeKinds(uniformKinds(kind), encSec, bucketBytes, p)
}

// PipelinedSyncTimeKinds is PipelinedSyncTime with a per-bucket exchange
// kind — the price law for mixed per-bucket policies, where allreduce-style
// buckets (dense, QSGD, A2SGD) and allgather-style buckets (Top-K,
// Gaussian-K) share one pipeline. kinds[b] prices bucket b; a short slice
// repeats its last element.
func (f Fabric) PipelinedSyncTimeKinds(kinds []ExchangeKind, encSec []float64, bucketBytes []int64, p int) float64 {
	return pipelinedSyncTime(func(b int, bytes int64) float64 {
		return f.SyncTime(kindAt(kinds, b), bytes, p)
	}, encSec, bucketBytes)
}

// SerialSyncTimeKinds is SerialSyncTime with a per-bucket exchange kind.
func (f Fabric) SerialSyncTimeKinds(kinds []ExchangeKind, encSec []float64, bucketBytes []int64, p int) float64 {
	return serialSyncTime(func(b int, bytes int64) float64 {
		return f.SyncTime(kindAt(kinds, b), bytes, p)
	}, encSec, bucketBytes)
}

// uniformKinds adapts the single-kind price laws to the per-bucket helpers.
func uniformKinds(kind ExchangeKind) []ExchangeKind { return []ExchangeKind{kind} }

// kindAt returns kinds[b], repeating the last element past the end (so a
// one-element slice prices every bucket uniformly).
func kindAt(kinds []ExchangeKind, b int) ExchangeKind {
	if b < len(kinds) {
		return kinds[b]
	}
	if len(kinds) > 0 {
		return kinds[len(kinds)-1]
	}
	return ExchangeAllreduce
}

// pipelinedSyncTime evaluates the overlap recurrence for any per-bucket
// collective price law (flat or hierarchical).
func pipelinedSyncTime(sync func(b int, bytes int64) float64, encSec []float64, bucketBytes []int64) float64 {
	var encDone, syncDone float64
	for b, bytes := range bucketBytes {
		if b < len(encSec) {
			encDone += encSec[b]
		}
		if syncDone < encDone {
			syncDone = encDone
		}
		syncDone += sync(b, bytes)
	}
	return syncDone
}

// serialSyncTime sums encodes and collectives back to back.
func serialSyncTime(sync func(b int, bytes int64) float64, encSec []float64, bucketBytes []int64) float64 {
	var t float64
	for _, e := range encSec {
		t += e
	}
	for b, bytes := range bucketBytes {
		t += sync(b, bytes)
	}
	return t
}
