package netsim

// Two-tier price law. A flat Fabric prices every rank pair identically; real
// clusters are hierarchical — several workers per node on a fast local
// interconnect (shared memory, NVLink, PCIe), nodes joined by a slower
// network. TwoTier prices the two-level collective schedules of
// comm.SetTopology: intra-node phases on the fast tier, the leader exchange
// on the slow tier. Both Fabric and TwoTier implement Pricer, so every
// modelled-iteration helper (cluster.Result.ModeledIterSec*) accepts either.

// Pricer prices the synchronization time of one training step. Fabric (flat
// α–β) and TwoTier (hierarchical) both implement it.
type Pricer interface {
	// Label identifies the network model in reports.
	Label() string
	// SyncTime prices one collective in which each worker contributes
	// bytesPerWorker, across p workers.
	SyncTime(kind ExchangeKind, bytesPerWorker int64, p int) float64
	// BroadcastTime prices a root-to-all broadcast of nBytes — the setup
	// epilogue every run pays once (rank 0's weights), not a per-step cost.
	BroadcastTime(nBytes int64, p int) float64
	// PipelinedSyncTime prices the bucketed overlap pipeline (see
	// Fabric.PipelinedSyncTime for the recurrence).
	PipelinedSyncTime(kind ExchangeKind, encSec []float64, bucketBytes []int64, p int) float64
	// SerialSyncTime prices the same buckets without overlap.
	SerialSyncTime(kind ExchangeKind, encSec []float64, bucketBytes []int64, p int) float64
	// PipelinedSyncTimeKinds and SerialSyncTimeKinds are the per-bucket
	// exchange-kind variants, pricing mixed per-bucket policies where
	// allreduce- and allgather-style buckets share one pipeline.
	PipelinedSyncTimeKinds(kinds []ExchangeKind, encSec []float64, bucketBytes []int64, p int) float64
	SerialSyncTimeKinds(kinds []ExchangeKind, encSec []float64, bucketBytes []int64, p int) float64
}

// Label implements Pricer for the flat fabric.
func (f Fabric) Label() string { return f.Name }

// BroadcastTime implements Pricer with the binomial-tree law.
func (f Fabric) BroadcastTime(nBytes int64, p int) float64 { return f.Broadcast(nBytes, p) }

var (
	_ Pricer = Fabric{}
	_ Pricer = TwoTier{}
)

// TwoTier is a hierarchical fabric: RanksPerNode workers share a node linked
// by the Intra fabric; node leaders exchange over the Inter fabric.
type TwoTier struct {
	// Name identifies the profile in reports.
	Name string
	// Intra prices the node-local links (the fast tier).
	Intra Fabric
	// Inter prices the cross-node links (the slow tier).
	Inter Fabric
	// RanksPerNode is the node width m; consecutive ranks share a node,
	// mirroring comm.SetTopology. Values <= 1 degenerate to flat Inter.
	RanksPerNode int
}

// NVLinkLocal approximates an intra-node accelerator interconnect:
// ~0.3 µs latency, 200 GB/s.
func NVLinkLocal() Fabric {
	return Fabric{Name: "nvlink", Alpha: 3.0e-7, Beta: 5.0e-12}
}

// TwoTierIB100 is the default hierarchical profile: NVLink-class links
// inside each node of the given width, the paper's 100 Gbps InfiniBand
// between nodes.
func TwoTierIB100(ranksPerNode int) TwoTier {
	return TwoTier{Name: "nvlink+ib100", Intra: NVLinkLocal(), Inter: IB100(), RanksPerNode: ranksPerNode}
}

// TwoTierTCP10G swaps the inter-node tier for commodity 10 GbE, widening
// the intra/inter gap the hierarchical schedules exploit.
func TwoTierTCP10G(ranksPerNode int) TwoTier {
	return TwoTier{Name: "nvlink+tcp10g", Intra: NVLinkLocal(), Inter: TCP10G(), RanksPerNode: ranksPerNode}
}

// Label implements Pricer.
func (t TwoTier) Label() string { return t.Name }

// shape clamps the node width to the group and returns (ranks per node,
// node count).
func (t TwoTier) shape(p int) (m, nodes int) {
	m = t.RanksPerNode
	if m > p {
		m = p
	}
	if m < 1 {
		m = 1
	}
	return m, (p + m - 1) / m
}

// HierAllreduce prices the two-level allreduce of an n-byte vector:
// intra-node binomial reduce (⌈log2 m⌉ rounds of n bytes on the fast tier),
// flat allreduce among the node leaders on the slow tier, intra-node
// binomial broadcast.
func (t TwoTier) HierAllreduce(nBytes int64, p int) float64 {
	if p <= 1 {
		return 0
	}
	m, nodes := t.shape(p)
	if m <= 1 {
		return t.Inter.Allreduce(nBytes, p)
	}
	cost := t.Intra.Broadcast(nBytes, m) // binomial reduce: same tree as broadcast
	cost += t.Inter.Allreduce(nBytes, nodes)
	cost += t.Intra.Broadcast(nBytes, m)
	return cost
}

// HierAllgather prices the two-level allgather where every rank contributes
// nBytes: flat gather into the node leader (m−1 messages of nBytes on the
// fast tier), ring allgather of m·n-byte node blocks among leaders on the
// slow tier, then an intra-node broadcast of the full p·n-byte result.
func (t TwoTier) HierAllgather(nBytes int64, p int) float64 {
	if p <= 1 {
		return 0
	}
	m, nodes := t.shape(p)
	if m <= 1 {
		return t.Inter.Allgather(nBytes, p)
	}
	cost := float64(m-1) * t.Intra.PointToPoint(nBytes)
	cost += t.Inter.Allgather(nBytes*int64(m), nodes)
	cost += t.Intra.Broadcast(nBytes*int64(p), m)
	return cost
}

// HierAllgatherV prices the variable-length hierarchical allgather: the
// 4-byte length round runs over the same two-level schedule as the data
// rounds, so the latency overhead scales with the node count, not p.
func (t TwoTier) HierAllgatherV(nBytes int64, p int) float64 {
	if p <= 1 {
		return 0
	}
	return t.HierAllgather(4, p) + t.HierAllgather(nBytes, p)
}

// HierBroadcast prices the two-level broadcast: the root reaches the node
// leaders over the slow tier, each leader fans out locally.
func (t TwoTier) HierBroadcast(nBytes int64, p int) float64 {
	if p <= 1 {
		return 0
	}
	m, nodes := t.shape(p)
	if m <= 1 {
		return t.Inter.Broadcast(nBytes, p)
	}
	return t.Inter.Broadcast(nBytes, nodes) + t.Intra.Broadcast(nBytes, m)
}

// BroadcastTime implements Pricer.
func (t TwoTier) BroadcastTime(nBytes int64, p int) float64 { return t.HierBroadcast(nBytes, p) }

// SyncTime implements Pricer with the hierarchical laws.
func (t TwoTier) SyncTime(kind ExchangeKind, bytesPerWorker int64, p int) float64 {
	switch kind {
	case ExchangeAllgather:
		return t.HierAllgather(bytesPerWorker, p)
	case ExchangeAllgatherV:
		return t.HierAllgatherV(bytesPerWorker, p)
	default:
		return t.HierAllreduce(bytesPerWorker, p)
	}
}

// PipelinedSyncTime implements Pricer (same recurrence as the flat fabric,
// with hierarchical per-bucket collective prices).
func (t TwoTier) PipelinedSyncTime(kind ExchangeKind, encSec []float64, bucketBytes []int64, p int) float64 {
	return t.PipelinedSyncTimeKinds(uniformKinds(kind), encSec, bucketBytes, p)
}

// SerialSyncTime implements Pricer.
func (t TwoTier) SerialSyncTime(kind ExchangeKind, encSec []float64, bucketBytes []int64, p int) float64 {
	return t.SerialSyncTimeKinds(uniformKinds(kind), encSec, bucketBytes, p)
}

// PipelinedSyncTimeKinds implements Pricer with per-bucket exchange kinds.
func (t TwoTier) PipelinedSyncTimeKinds(kinds []ExchangeKind, encSec []float64, bucketBytes []int64, p int) float64 {
	return pipelinedSyncTime(func(b int, bytes int64) float64 {
		return t.SyncTime(kindAt(kinds, b), bytes, p)
	}, encSec, bucketBytes)
}

// SerialSyncTimeKinds implements Pricer with per-bucket exchange kinds.
func (t TwoTier) SerialSyncTimeKinds(kinds []ExchangeKind, encSec []float64, bucketBytes []int64, p int) float64 {
	return serialSyncTime(func(b int, bytes int64) float64 {
		return t.SyncTime(kindAt(kinds, b), bytes, p)
	}, encSec, bucketBytes)
}
