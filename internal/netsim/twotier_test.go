package netsim

import "testing"

func TestTwoTierDegeneratesToFlatInter(t *testing.T) {
	two := TwoTierIB100(1) // every rank its own node
	flat := IB100()
	for _, kind := range []ExchangeKind{ExchangeAllreduce, ExchangeAllgather} {
		for _, p := range []int{2, 4, 7, 16} {
			got := two.SyncTime(kind, 1_000_000, p)
			want := flat.SyncTime(kind, 1_000_000, p)
			if got != want {
				t.Errorf("kind=%d p=%d: two-tier(rpn=1) %g != flat %g", kind, p, got, want)
			}
		}
	}
}

func TestTwoTierAllreduceCheaperThanFlatOnSlowInter(t *testing.T) {
	// With a fast intra tier, moving most hops off the slow network must
	// reduce the modelled allreduce cost for bandwidth-bound payloads.
	flat := TCP10G()
	two := TwoTierTCP10G(4)
	const bytes = 4_000_000
	for _, p := range []int{8, 16, 32} {
		if h, f := two.HierAllreduce(bytes, p), flat.Allreduce(bytes, p); h >= f {
			t.Errorf("p=%d: hierarchical allreduce %g not cheaper than flat %g", p, h, f)
		}
		if h, f := two.HierAllgather(bytes/100, p), flat.Allgather(bytes/100, p); h >= f {
			t.Errorf("p=%d: hierarchical allgather %g not cheaper than flat %g", p, h, f)
		}
	}
}

func TestTwoTierSyncTimeMonotoneInRanksPerNode(t *testing.T) {
	// Widening nodes moves traffic onto the fast tier: modelled allreduce
	// sync time must not increase with ranks-per-node.
	const p, bytes = 16, 10_000_000
	prev := TwoTierIB100(1).SyncTime(ExchangeAllreduce, bytes, p)
	for _, rpn := range []int{2, 4, 8, 16} {
		cur := TwoTierIB100(rpn).SyncTime(ExchangeAllreduce, bytes, p)
		if cur > prev {
			t.Errorf("rpn=%d: sync %g > rpn/2 sync %g (not monotone)", rpn, cur, prev)
		}
		prev = cur
	}
}

func TestTwoTierPipelinedAtMostSerial(t *testing.T) {
	two := TwoTierIB100(4)
	enc := []float64{1e-5, 2e-5, 1e-5}
	bytes := []int64{100_000, 50_000, 200_000}
	pip := two.PipelinedSyncTime(ExchangeAllreduce, enc, bytes, 8)
	ser := two.SerialSyncTime(ExchangeAllreduce, enc, bytes, 8)
	if pip > ser {
		t.Errorf("pipelined %g > serial %g", pip, ser)
	}
	if pip <= 0 || ser <= 0 {
		t.Errorf("non-positive prices: pip=%g ser=%g", pip, ser)
	}
}

func TestTwoTierShapeClamps(t *testing.T) {
	two := TwoTierIB100(32)
	m, nodes := two.shape(8)
	if m != 8 || nodes != 1 {
		t.Errorf("shape(8) with rpn=32: m=%d nodes=%d, want 8, 1", m, nodes)
	}
	if got := two.HierAllreduce(1000, 1); got != 0 {
		t.Errorf("single rank allreduce priced %g, want 0", got)
	}
}
