package comm

// RankMapper is the optional capability of transports whose rank labels are
// local to a derived group (Split groups, tag-space contexts). GlobalRank
// translates a local peer label back to the root communicator's rank so
// timing beacons attribute traffic to the right physical worker. Transports
// without the capability are assumed to use global ranks already.
type RankMapper interface {
	GlobalRank(local int) int
}

// SetSendObserver installs a per-send timing beacon: after every successful
// point-to-point send, f receives the destination's global rank, the payload
// size in bytes and the wall seconds the send took (including transient-error
// retries). The observer is propagated to existing derived communicators
// (Split groups, concurrency contexts) and inherited by ones created later,
// mirroring SetRetry. Install it at setup time, before the communicator is
// used; f must be safe for concurrent calls and should not block or allocate
// — it runs on the hot send path.
func (c *Communicator) SetSendObserver(f func(to, nBytes int, sec float64)) {
	c.sendObs = f
	c.asyncMu.Lock()
	ctxs := append([]*Communicator(nil), c.ctxComms...)
	c.asyncMu.Unlock()
	for _, sc := range ctxs {
		sc.sendObs = f
	}
	for _, ch := range c.children {
		ch.SetSendObserver(f)
	}
}

// SetOpObserver installs a per-operation timing beacon: f receives the wall
// seconds each posted nonblocking operation (Post/IAllreduceMean/IAllgather)
// spent executing on its progress worker. Same contract as SetSendObserver:
// install at setup time; f must be concurrency-safe, non-blocking and
// allocation-free.
func (c *Communicator) SetOpObserver(f func(sec float64)) {
	c.asyncMu.Lock()
	c.opObs = f
	c.asyncMu.Unlock()
	for _, ch := range c.children {
		ch.SetOpObserver(f)
	}
}
