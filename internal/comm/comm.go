package comm

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"a2sgd/internal/tensor"
)

// Transport moves float32 payloads between ranks. Implementations must allow
// concurrent Send and Recv from the same rank (the collectives overlap them)
// and must preserve per-(src,dst) message ordering. Payload element values
// are moved bit-exactly; callers may bit-cast integers through
// math.Float32frombits to ship index data.
type Transport interface {
	// Rank returns this endpoint's 0-based rank.
	Rank() int
	// Size returns the number of ranks in the group.
	Size() int
	// Send transmits data to rank `to`. The buffer may be reused by the
	// caller immediately after Send returns.
	Send(to, tag int, data []float32) error
	// Recv fills data with the next message from rank `from` carrying tag.
	// The message length must equal len(data).
	Recv(from, tag int, data []float32) error
	// Close releases transport resources. Collectives must not be used
	// afterwards.
	Close() error
}

// BufferedTransport is the optional capability of transports whose Send
// enqueues without waiting for the receiver (bounded buffering comfortably
// above the couple of in-flight messages the collectives keep per ordered
// pair). On such transports sendRecv issues the send inline before the
// receive — no helper goroutine, no allocation — which is what makes the
// steady-state inproc collectives allocation-free. Rendezvous transports
// (TCP: a large send blocks until the peer drains it) must not implement it;
// they keep the overlapped send goroutine.
type BufferedTransport interface {
	SendIsBuffered() bool
}

// Traffic aggregates the communication volume observed by one rank.
type Traffic struct {
	BytesSent int64
	BytesRecv int64
	MsgsSent  int64
	MsgsRecv  int64
}

// Communicator couples a Transport with traffic accounting and provides the
// collectives. The intended model is one Communicator per worker goroutine,
// mirroring MPI: blocking collectives are not safe for concurrent use, but
// the owner may overlap computation with communication through the
// nonblocking operations (Async/IAllreduceMean/IAllgather), which execute
// serially on the communicator's progress worker.
type Communicator struct {
	t         Transport
	bytesSent atomic.Int64
	bytesRecv atomic.Int64
	msgsSent  atomic.Int64
	msgsRecv  atomic.Int64

	// asyncMu guards the nonblocking machinery: the per-context request
	// queues, the pooled-request freelist, the posting sequence counter and
	// the context communicators built by SetConcurrency (ctx.go). Empty
	// ctxComms/ctxQueues mean concurrency 1 (queues lazily sized on first
	// post).
	asyncMu   sync.Mutex
	ctxComms  []*Communicator
	ctxQueues []reqQueue
	postSeq   uint64
	freeReqs  *asyncReq

	// scratch is the reusable reduction buffer of the blocking collectives
	// (ring segments, recursive-doubling partner data, binomial reduce).
	// Blocking collectives are not concurrent on one communicator (the MPI
	// model above), so a single buffer grown to the high-water mark makes
	// the steady-state collectives allocation-free.
	scratch []float32
	// sendErr carries the send half of sendRecv back from its goroutine;
	// one persistent channel instead of a per-call allocation.
	sendErr chan error
	// buffered caches the transport's BufferedTransport capability.
	buffered bool
	// barOne/barBuf are Barrier's one-element token buffers.
	barOne, barBuf [1]float32

	// retry bounds the automatic resend of transient peer failures
	// (failure.go); the zero value fails fast on the first error.
	retry RetryPolicy

	// sendObs, when non-nil, receives per-send timing beacons (observe.go);
	// rankMap translates a derived communicator's local peer labels back to
	// global ranks for those beacons. opObs times each posted nonblocking
	// operation on the progress workers.
	sendObs func(to, nBytes int, sec float64)
	opObs   func(sec float64)
	rankMap RankMapper

	// children are the group communicators created by Split; their traffic
	// is folded into this communicator's Traffic.
	children []*Communicator
	// hier, when non-nil, switches the core collectives to the two-level
	// (intra-node + inter-node) schedules of hierarchy.go.
	hier *hierarchy
}

// NewCommunicator wraps a transport.
func NewCommunicator(t Transport) *Communicator {
	c := &Communicator{t: t, sendErr: make(chan error, 1)}
	if bt, ok := t.(BufferedTransport); ok {
		c.buffered = bt.SendIsBuffered()
	}
	if rm, ok := t.(RankMapper); ok {
		c.rankMap = rm
	}
	return c
}

// getScratch returns the communicator-owned scratch grown to at least n
// elements. Callers are the blocking collectives, which never overlap on one
// communicator, so the buffer is never aliased by two operations.
func (c *Communicator) getScratch(n int) []float32 {
	if cap(c.scratch) < n {
		c.scratch = make([]float32, n)
	}
	return c.scratch[:n]
}

// Rank returns this communicator's rank.
func (c *Communicator) Rank() int { return c.t.Rank() }

// Size returns the group size.
func (c *Communicator) Size() int { return c.t.Size() }

// Close closes the underlying transport.
func (c *Communicator) Close() error { return c.t.Close() }

// Traffic returns a snapshot of the accumulated counters, including the
// traffic of every group communicator created by Split (the hierarchical
// collectives run entirely on those groups).
func (c *Communicator) Traffic() Traffic {
	t := Traffic{
		BytesSent: c.bytesSent.Load(),
		BytesRecv: c.bytesRecv.Load(),
		MsgsSent:  c.msgsSent.Load(),
		MsgsRecv:  c.msgsRecv.Load(),
	}
	for _, ch := range c.children {
		ct := ch.Traffic()
		t.BytesSent += ct.BytesSent
		t.BytesRecv += ct.BytesRecv
		t.MsgsSent += ct.MsgsSent
		t.MsgsRecv += ct.MsgsRecv
	}
	return t
}

// ResetTraffic zeroes the counters (between experiment phases), including
// those of group communicators.
func (c *Communicator) ResetTraffic() {
	c.bytesSent.Store(0)
	c.bytesRecv.Store(0)
	c.msgsSent.Store(0)
	c.msgsRecv.Store(0)
	for _, ch := range c.children {
		ch.ResetTraffic()
	}
}

func (c *Communicator) send(to, tag int, data []float32) error {
	obs := c.sendObs
	var t0 time.Time
	if obs != nil {
		t0 = time.Now()
	}
	err := c.t.Send(to, tag, data)
	// Transient errors promise the operation had no stream effect, so a
	// verbatim resend is safe; back off exponentially up to retry.Attempts.
	for a := 0; err != nil && a+1 < c.retry.Attempts && IsTransient(err); a++ {
		c.retry.sleep(a)
		err = c.t.Send(to, tag, data)
	}
	if err != nil {
		return err
	}
	if obs != nil {
		gto := to
		if c.rankMap != nil {
			gto = c.rankMap.GlobalRank(to)
		}
		obs(gto, 4*len(data), time.Since(t0).Seconds())
	}
	c.bytesSent.Add(int64(4 * len(data)))
	c.msgsSent.Add(1)
	return nil
}

func (c *Communicator) recv(from, tag int, data []float32) error {
	err := c.t.Recv(from, tag, data)
	for a := 0; err != nil && a+1 < c.retry.Attempts && IsTransient(err); a++ {
		c.retry.sleep(a)
		err = c.t.Recv(from, tag, data)
	}
	if err != nil {
		return err
	}
	c.bytesRecv.Add(int64(4 * len(data)))
	c.msgsRecv.Add(1)
	return nil
}

// sendAsync runs one send and reports on the persistent sendErr channel. It
// is a named method, not a closure, so the `go` statement in sendRecv copies
// its arguments instead of heap-allocating a capture.
func (c *Communicator) sendAsync(to, tag int, data []float32) {
	c.sendErr <- c.send(to, tag, data)
}

// sendRecv overlaps one send and one receive, as every ring step requires;
// doing them sequentially would deadlock on unbuffered transports. The
// goroutine hand-off reuses the communicator's sendErr channel — blocking
// collectives never overlap on one communicator, so at most one send is in
// flight — keeping the per-step cost allocation-free.
func (c *Communicator) sendRecv(to, tagS int, sendBuf []float32, from, tagR int, recvBuf []float32) error {
	if c.buffered {
		// Buffered transport: the send enqueues without waiting for the
		// receiver, so issuing it inline is deadlock-free and avoids the
		// goroutine (and its argument-capture allocation) entirely.
		if err := c.send(to, tagS, sendBuf); err != nil {
			return err
		}
		return c.recv(from, tagR, recvBuf)
	}
	go c.sendAsync(to, tagS, sendBuf)
	rerr := c.recv(from, tagR, recvBuf)
	serr := <-c.sendErr
	if serr != nil {
		return serr
	}
	return rerr
}

// ErrLengthMismatch is returned when ranks disagree on collective sizes.
var ErrLengthMismatch = errors.New("comm: collective buffer length mismatch")

// tag bases keep concurrent collectives from crossing wires when several run
// back to back in one training step.
const (
	tagRingRS = 1 << 16 // ring reduce-scatter
	tagRingAG = 2 << 16 // ring allgather phase
	tagRecDbl = 3 << 16
	tagBcast  = 4 << 16
	tagReduce = 5 << 16
	tagGather = 6 << 16
	tagAGV    = 7 << 16
	tagBar    = 8 << 16
)

// Float32FromIndex bit-casts a non-negative index so that it can travel in a
// float32 payload, and Float32ToIndex recovers it. Sparse exchange (Top-K /
// Gaussian-K allgather) uses these helpers.
func Float32FromIndex(i uint32) float32 { return math.Float32frombits(i) }

// Float32ToIndex recovers an index stored with Float32FromIndex.
func Float32ToIndex(f float32) uint32 { return math.Float32bits(f) }

func segBounds(n, parts, i int) (lo, hi int) {
	lo = i * n / parts
	hi = (i + 1) * n / parts
	return lo, hi
}

// AllreduceAlgorithm selects the allreduce implementation.
type AllreduceAlgorithm int

// Allreduce algorithm choices.
const (
	// AlgoAuto picks recursive doubling for short vectors (latency bound)
	// and ring for long ones (bandwidth bound), the standard MPI heuristic.
	AlgoAuto AllreduceAlgorithm = iota
	// AlgoRing forces the bandwidth-optimal ring algorithm.
	AlgoRing
	// AlgoRecursiveDoubling forces the latency-optimal algorithm.
	AlgoRecursiveDoubling
)

// autoCutover is the vector length below which recursive doubling wins.
const autoCutover = 4096

// AllreduceSum replaces v on every rank with the elementwise sum across all
// ranks. All ranks must pass equal-length vectors and the same algorithm.
// On a communicator with a two-level topology (SetTopology) the sum runs the
// hierarchical schedule; algo then selects the inter-node leader allreduce.
func (c *Communicator) AllreduceSum(v []float32, algo AllreduceAlgorithm) error {
	p := c.Size()
	if p == 1 {
		return nil
	}
	if c.hier != nil {
		return c.hierAllreduceSum(v, algo)
	}
	switch algo {
	case AlgoRing:
		return c.ringAllreduce(v)
	case AlgoRecursiveDoubling:
		return c.recDoublingAllreduce(v)
	default:
		if len(v) < autoCutover {
			return c.recDoublingAllreduce(v)
		}
		return c.ringAllreduce(v)
	}
}

// AllreduceMean is AllreduceSum followed by division by the group size —
// exactly the Allreduce(·, average) of the paper's Algorithm 1, line 5.
func (c *Communicator) AllreduceMean(v []float32, algo AllreduceAlgorithm) error {
	if err := c.AllreduceSum(v, algo); err != nil {
		return err
	}
	tensor.Scale(v, 1/float32(c.Size()))
	return nil
}

// ringAllreduce is the classic bandwidth-optimal two-phase algorithm:
// a reduce-scatter of P-1 steps followed by an allgather of P-1 steps, each
// moving n/P elements. Total traffic per rank: 2n(P-1)/P elements.
func (c *Communicator) ringAllreduce(v []float32) error {
	p, r := c.Size(), c.Rank()
	n := len(v)
	next := (r + 1) % p
	prev := (r - 1 + p) % p
	buf := c.getScratch((n+p-1)/p + 1)

	// Phase 1: reduce-scatter. After step s, rank r holds the partial sum
	// of segment (r-s) mod p.
	for s := 0; s < p-1; s++ {
		sendSeg := (r - s + p) % p
		recvSeg := (r - s - 1 + p) % p
		slo, shi := segBounds(n, p, sendSeg)
		rlo, rhi := segBounds(n, p, recvSeg)
		rb := buf[:rhi-rlo]
		if err := c.sendRecv(next, tagRingRS+s, v[slo:shi], prev, tagRingRS+s, rb); err != nil {
			return err
		}
		addInto(v[rlo:rhi], rb)
	}
	// Phase 2: allgather. Rank r owns the fully reduced segment (r+1) mod p.
	for s := 0; s < p-1; s++ {
		sendSeg := (r + 1 - s + p) % p
		recvSeg := (r - s + p) % p
		slo, shi := segBounds(n, p, sendSeg)
		rlo, rhi := segBounds(n, p, recvSeg)
		if err := c.sendRecv(next, tagRingAG+s, v[slo:shi], prev, tagRingAG+s, v[rlo:rhi]); err != nil {
			return err
		}
	}
	return nil
}

// recDoublingAllreduce implements the MPICH recursive-doubling algorithm
// with the standard fold for non-power-of-two group sizes.
func (c *Communicator) recDoublingAllreduce(v []float32) error {
	p, r := c.Size(), c.Rank()
	pow2 := 1
	for pow2*2 <= p {
		pow2 *= 2
	}
	rem := p - pow2
	buf := c.getScratch(len(v))

	// Fold: the first 2*rem ranks pair up; odd ones ship data to even ones
	// and sit out, leaving a power-of-two active set.
	newRank := -1
	switch {
	case r < 2*rem && r%2 == 1:
		if err := c.send(r-1, tagRecDbl, v); err != nil {
			return err
		}
	case r < 2*rem && r%2 == 0:
		if err := c.recv(r+1, tagRecDbl, buf); err != nil {
			return err
		}
		addInto(v, buf)
		newRank = r / 2
	default:
		newRank = r - rem
	}

	if newRank >= 0 {
		for mask := 1; mask < pow2; mask <<= 1 {
			partnerNew := newRank ^ mask
			partner := partnerNew + rem
			if partnerNew < rem {
				partner = partnerNew * 2
			}
			if err := c.sendRecv(partner, tagRecDbl+mask, v, partner, tagRecDbl+mask, buf); err != nil {
				return err
			}
			addInto(v, buf)
		}
	}

	// Unfold: even fold-ranks return the result to their odd partner.
	switch {
	case r < 2*rem && r%2 == 1:
		if err := c.recv(r-1, tagRecDbl+1<<15, v); err != nil {
			return err
		}
	case r < 2*rem && r%2 == 0:
		if err := c.send(r+1, tagRecDbl+1<<15, v); err != nil {
			return err
		}
	}
	return nil
}

// addInto is the collectives' reduction kernel: elementwise dst += src,
// SIMD-dispatched through tensor.Add (bitwise identical to the scalar loop,
// so reduction results do not depend on the build).
func addInto(dst, src []float32) {
	tensor.Add(dst, src)
}

// Allgather concatenates each rank's equal-size contribution into out,
// which must have length len(in)*Size(). Rank i's block lands at offset
// i*len(in). Ring algorithm: P-1 steps of len(in) elements. With a
// two-level topology the exchange runs the hierarchical schedule instead.
func (c *Communicator) Allgather(in, out []float32) error {
	if len(out) != len(in)*c.Size() {
		return ErrLengthMismatch
	}
	if c.hier != nil && c.Size() > 1 {
		return c.hierAllgather(in, out)
	}
	return c.flatAllgather(in, out)
}

// flatAllgather is the single-level ring allgather; Split relies on it to
// exchange colors before any hierarchy exists.
func (c *Communicator) flatAllgather(in, out []float32) error {
	p, r := c.Size(), c.Rank()
	if len(out) != len(in)*p {
		return ErrLengthMismatch
	}
	copy(out[r*len(in):(r+1)*len(in)], in)
	if p == 1 {
		return nil
	}
	next := (r + 1) % p
	prev := (r - 1 + p) % p
	for s := 0; s < p-1; s++ {
		sendBlk := (r - s + p) % p
		recvBlk := (r - s - 1 + p) % p
		sb := out[sendBlk*len(in) : (sendBlk+1)*len(in)]
		rb := out[recvBlk*len(in) : (recvBlk+1)*len(in)]
		if err := c.sendRecv(next, tagGather+s, sb, prev, tagGather+s, rb); err != nil {
			return err
		}
	}
	return nil
}

// AllgatherV gathers variable-length contributions from every rank. It first
// allgathers the lengths (one element each), then runs a ring over the
// variable blocks. Returns the concatenation in rank order plus each rank's
// length. This is the exchange primitive Gaussian-K sparsification uses
// (its selected count varies per rank) and the one the paper's §4.4 credits
// for Gaussian-K's iteration-time edge on fast networks. Each call allocates
// fresh result buffers; the hot paths use AllgatherVInto with a persistent
// scratch instead.
func (c *Communicator) AllgatherV(in []float32) (out []float32, lens []int, err error) {
	var sc AllgatherVScratch
	return c.AllgatherVInto(in, &sc)
}

// AllgatherVScratch holds the reusable buffers of one AllgatherVInto call
// site: the length-exchange buffer, the decoded lengths/offsets and the
// gathered payload. Zero value is ready; buffers grow to the high-water
// mark and are then reused, so a steady-state exchange stays off the
// allocator.
type AllgatherVScratch struct {
	lenBuf []float32
	my     [1]float32
	lens   []int
	offs   []int
	out    []float32
}

// growInts is growF32's []int twin for the scratch length/offset buffers.
func growInts(buf *[]int, m int) []int {
	if cap(*buf) < m {
		*buf = make([]int, m)
	}
	*buf = (*buf)[:m]
	return *buf
}

// AllgatherVInto is AllgatherV into caller-owned scratch: the returned
// slices alias sc's buffers and are valid until the next call with the same
// scratch. On a flat communicator the call is allocation-free in steady
// state; with a two-level topology it delegates to the (allocating)
// hierarchical schedule, so callers keep a single code path either way.
func (c *Communicator) AllgatherVInto(in []float32, sc *AllgatherVScratch) (out []float32, lens []int, err error) {
	if c.hier != nil && c.Size() > 1 {
		return c.hierAllgatherV(in)
	}
	p, r := c.Size(), c.Rank()
	lenBuf := growF32Comm(&sc.lenBuf, p)
	sc.my[0] = Float32FromIndex(uint32(len(in)))
	if err := c.Allgather(sc.my[:], lenBuf); err != nil {
		return nil, nil, err
	}
	lens = growInts(&sc.lens, p)
	offs := growInts(&sc.offs, p+1)
	offs[0] = 0
	for i := 0; i < p; i++ {
		lens[i] = int(Float32ToIndex(lenBuf[i]))
		offs[i+1] = offs[i] + lens[i]
	}
	out = growF32Comm(&sc.out, offs[p])
	copy(out[offs[r]:offs[r+1]], in)
	if p == 1 {
		return out, lens, nil
	}
	next := (r + 1) % p
	prev := (r - 1 + p) % p
	for s := 0; s < p-1; s++ {
		sendBlk := (r - s + p) % p
		recvBlk := (r - s - 1 + p) % p
		sb := out[offs[sendBlk]:offs[sendBlk+1]]
		rb := out[offs[recvBlk]:offs[recvBlk+1]]
		if err := c.sendRecv(next, tagAGV+s, sb, prev, tagAGV+s, rb); err != nil {
			return nil, nil, err
		}
	}
	return out, lens, nil
}

// growF32Comm is the comm-local cap-check-and-grow idiom (compress has its
// own twin; the packages do not import each other's internals).
func growF32Comm(buf *[]float32, m int) []float32 {
	if cap(*buf) < m {
		*buf = make([]float32, m)
	}
	*buf = (*buf)[:m]
	return *buf
}

// Broadcast distributes root's v to every rank (binomial tree, ⌈log2 P⌉
// rounds).
func (c *Communicator) Broadcast(v []float32, root int) error {
	p, r := c.Size(), c.Rank()
	if p == 1 {
		return nil
	}
	if root < 0 || root >= p {
		return fmt.Errorf("comm: broadcast root %d out of range", root)
	}
	if c.hier != nil {
		return c.hierBroadcast(v, root)
	}
	// Work in a rotated space where root is rank 0.
	vr := (r - root + p) % p
	mask := 1
	for mask < p {
		if vr < mask {
			partner := vr | mask
			if partner < p {
				if err := c.send((partner+root)%p, tagBcast+mask, v); err != nil {
					return err
				}
			}
		} else if vr < mask<<1 {
			if err := c.recv((vr-mask+root)%p, tagBcast+mask, v); err != nil {
				return err
			}
		}
		mask <<= 1
	}
	return nil
}

// Reduce sums every rank's v into root's v (binomial tree). Non-root ranks'
// buffers are left in an unspecified partially-reduced state, like MPI.
func (c *Communicator) Reduce(v []float32, root int) error {
	p, r := c.Size(), c.Rank()
	if p == 1 {
		return nil
	}
	if root < 0 || root >= p {
		return fmt.Errorf("comm: reduce root %d out of range", root)
	}
	vr := (r - root + p) % p
	buf := c.getScratch(len(v))
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			return c.send((vr-mask+root)%p, tagReduce+mask, v)
		}
		partner := vr | mask
		if partner < p {
			if err := c.recv((partner+root)%p, tagReduce+mask, buf); err != nil {
				return err
			}
			addInto(v, buf)
		}
		mask <<= 1
	}
	return nil
}

// Barrier blocks until every rank has entered it (dissemination algorithm,
// ⌈log2 P⌉ rounds of 1-element messages).
func (c *Communicator) Barrier() error {
	p, r := c.Size(), c.Rank()
	c.barOne[0], c.barBuf[0] = 1, 0
	for round, dist := 0, 1; dist < p; round, dist = round+1, dist*2 {
		to := (r + dist) % p
		from := (r - dist + p) % p
		if err := c.sendRecv(to, tagBar+round, c.barOne[:], from, tagBar+round, c.barBuf[:]); err != nil {
			return err
		}
	}
	return nil
}
