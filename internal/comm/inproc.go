package comm

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// inprocMsg carries one tagged payload between two ranks. data is a view of
// *buf (a recycled transit buffer): the receiver copies data into the
// caller's destination and returns buf to the fabric pool.
type inprocMsg struct {
	tag  int
	data []float32
	buf  *[]float32
}

// InprocFabric is an in-process point-to-point fabric: a matrix of buffered
// channels, one per ordered (src, dst) pair. It is the default transport for
// experiments — deterministic, allocation-free in steady state, and it
// exercises exactly the same collective code paths as the TCP transport.
//
// Transit buffers are pooled: Send clones the caller's data (the Transport
// contract lets the caller reuse its buffer immediately) into a buffer drawn
// from the fabric-wide pool, and Recv — which always has the caller's
// destination in hand — copies straight into that destination and recycles
// the transit buffer. After warm-up the pool's buffers have grown to the
// high-water message size and the fabric stops touching the allocator.
type InprocFabric struct {
	size  int
	chans [][]chan inprocMsg // chans[src][dst]
	match [][]pairMatch      // match[src][dst]: receive-side tag matcher
	pool  sync.Pool          // *[]float32 transit buffers
	done  chan struct{}
	once  sync.Once

	// ioTimeout, when > 0, bounds each Send/Recv; expiry returns a
	// *PeerError{Timeout: true}. Zero (the default) blocks forever and keeps
	// the steady-state path timer-free and allocation-free.
	ioTimeout time.Duration
	// dead[r] is closed by Kill(r): every operation touching rank r — its
	// own and its peers' — fails with *PeerError wrapping ErrPeerDead.
	dead []deadFlag
}

// deadFlag is one rank's kill switch.
type deadFlag struct {
	once sync.Once
	ch   chan struct{}
}

// pairMatch is the receive-side tag matcher for one ordered (src, dst) pair.
// Concurrent collectives run in disjoint tag blocks but share the pair's
// FIFO channel, so a receiver may pull a message destined for a different
// in-flight operation. Matching follows the classic MPI stash-and-wake
// shape: exactly one receiver at a time is the puller (drains the channel);
// messages for other tags are stashed in arrival order and the cond wakes
// the other receivers to re-scan. With a single outstanding operation — the
// Deterministic mode — the stash stays empty and the pull is the only hop.
type pairMatch struct {
	mu      sync.Mutex
	cond    sync.Cond
	pulling bool
	pending []inprocMsg // stashed out-of-tag messages, arrival order
}

// inprocDepth bounds in-flight messages per ordered pair. The collectives
// never have more than a couple outstanding, but sparse allgatherv interleaves
// a length exchange with the payload ring, so leave headroom.
const inprocDepth = 16

// NewInprocFabric creates a fabric for size ranks.
func NewInprocFabric(size int) *InprocFabric {
	if size <= 0 {
		panic("comm: fabric size must be positive")
	}
	f := &InprocFabric{size: size, done: make(chan struct{})}
	f.pool.New = func() any { return new([]float32) }
	f.dead = make([]deadFlag, size)
	for r := range f.dead {
		f.dead[r].ch = make(chan struct{})
	}
	f.chans = make([][]chan inprocMsg, size)
	f.match = make([][]pairMatch, size)
	for s := range f.chans {
		f.chans[s] = make([]chan inprocMsg, size)
		f.match[s] = make([]pairMatch, size)
		for d := range f.chans[s] {
			f.chans[s][d] = make(chan inprocMsg, inprocDepth)
			pm := &f.match[s][d]
			pm.cond.L = &pm.mu
		}
	}
	return f
}

// Size returns the number of ranks.
func (f *InprocFabric) Size() int { return f.size }

// Shutdown unblocks all pending and future operations with ErrFabricClosed.
func (f *InprocFabric) Shutdown() {
	f.once.Do(func() { close(f.done) })
}

// SetIOTimeout bounds every subsequent Send and Recv on the fabric; an
// expired operation returns a *PeerError with Timeout set. Call before
// handing transports out. Zero (the default) restores unbounded blocking.
func (f *InprocFabric) SetIOTimeout(d time.Duration) { f.ioTimeout = d }

// Kill marks a rank dead, modelling a process crash: the rank's own pending
// and future operations, and every peer operation addressed to it, fail with
// a *PeerError wrapping ErrPeerDead. Unlike Shutdown the rest of the fabric
// keeps working, so surviving ranks observe a peer-scoped failure rather
// than a fabric-wide teardown.
func (f *InprocFabric) Kill(rank int) {
	if rank < 0 || rank >= f.size {
		return
	}
	f.dead[rank].once.Do(func() { close(f.dead[rank].ch) })
}

// killed reports whether Kill(rank) has been called.
func (f *InprocFabric) killed(rank int) bool {
	select {
	case <-f.dead[rank].ch:
		return true
	default:
		return false
	}
}

// ErrFabricClosed is returned by transport operations after Shutdown.
var ErrFabricClosed = errors.New("comm: fabric closed")

// Transport returns the endpoint for one rank.
func (f *InprocFabric) Transport(rank int) Transport {
	if rank < 0 || rank >= f.size {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", rank, f.size))
	}
	return &inprocTransport{f: f, rank: rank}
}

// Communicators returns one ready Communicator per rank.
func (f *InprocFabric) Communicators() []*Communicator {
	cs := make([]*Communicator, f.size)
	for i := range cs {
		cs[i] = NewCommunicator(f.Transport(i))
	}
	return cs
}

type inprocTransport struct {
	f    *InprocFabric
	rank int
}

func (t *inprocTransport) Rank() int { return t.rank }
func (t *inprocTransport) Size() int { return t.f.size }

// SendIsBuffered implements BufferedTransport: sends enqueue on the
// per-pair channel (depth inprocDepth) without waiting for the receiver, so
// the collectives' sendRecv can issue them inline.
func (t *inprocTransport) SendIsBuffered() bool { return true }

func (t *inprocTransport) Send(to, tag int, data []float32) error {
	if to < 0 || to >= t.f.size {
		return fmt.Errorf("comm: send to invalid rank %d", to)
	}
	// A closed fabric must fail sends deterministically even when buffer
	// space remains (select would otherwise pick randomly among ready cases).
	select {
	case <-t.f.done:
		return ErrFabricClosed
	default:
	}
	if t.f.killed(t.rank) {
		return &PeerError{Rank: t.rank, Op: "send", Err: ErrPeerDead}
	}
	if t.f.killed(to) {
		return &PeerError{Rank: to, Op: "send", Err: ErrPeerDead}
	}
	// Copy: the caller may reuse the buffer as soon as Send returns. The
	// transit buffer comes from the fabric pool and goes back to it when
	// the matching Recv has copied into its destination.
	bp := t.f.pool.Get().(*[]float32)
	if cap(*bp) < len(data) {
		*bp = make([]float32, len(data))
	}
	cp := (*bp)[:len(data)]
	copy(cp, data)
	// The timer exists only when an I/O deadline is configured; the default
	// path keeps its nil channel (a nil select case never fires) and stays
	// off the allocator.
	var timeoutC <-chan time.Time
	if t.f.ioTimeout > 0 {
		tm := time.NewTimer(t.f.ioTimeout)
		defer tm.Stop()
		timeoutC = tm.C
	}
	select {
	case t.f.chans[t.rank][to] <- inprocMsg{tag: tag, data: cp, buf: bp}:
		return nil
	case <-t.f.done:
		t.f.pool.Put(bp)
		return ErrFabricClosed
	case <-t.f.dead[to].ch:
		t.f.pool.Put(bp)
		return &PeerError{Rank: to, Op: "send", Err: ErrPeerDead}
	case <-timeoutC:
		t.f.pool.Put(bp)
		return &PeerError{Rank: to, Op: "send", Timeout: true, Err: errSendBufferFull}
	}
}

// errSendBufferFull explains an inproc send deadline expiry: the per-pair
// channel stayed full for the whole window, i.e. the receiver stopped
// draining.
var errSendBufferFull = errors.New("comm: peer stopped draining (send buffer full)")

// deliver copies a matched message into the destination and recycles the
// transit buffer.
func (t *inprocTransport) deliver(from, tag int, m inprocMsg, data []float32) error {
	defer t.f.pool.Put(m.buf)
	if len(m.data) != len(data) {
		return fmt.Errorf("comm: length mismatch recv(%d<-%d) tag %d: got %d want %d",
			t.rank, from, tag, len(m.data), len(data))
	}
	copy(data, m.data)
	return nil
}

func (t *inprocTransport) Recv(from, tag int, data []float32) error {
	if from < 0 || from >= t.f.size {
		return fmt.Errorf("comm: recv from invalid rank %d", from)
	}
	if t.f.killed(t.rank) {
		return &PeerError{Rank: t.rank, Op: "recv", Err: ErrPeerDead}
	}
	// Messages already in flight from a now-dead peer are still delivered
	// (the data left the peer before it died); only the blocking pull below
	// observes the death. Like Send, the timer exists only under a deadline.
	var timeoutC <-chan time.Time
	if t.f.ioTimeout > 0 {
		tm := time.NewTimer(t.f.ioTimeout)
		defer tm.Stop()
		timeoutC = tm.C
	}
	pm := &t.f.match[from][t.rank]
	pm.mu.Lock()
	for {
		// First satisfy from the stash (arrival order ⇒ per-tag FIFO).
		for i := range pm.pending {
			if pm.pending[i].tag == tag {
				m := pm.pending[i]
				pm.pending = append(pm.pending[:i], pm.pending[i+1:]...)
				pm.mu.Unlock()
				return t.deliver(from, tag, m, data)
			}
		}
		if pm.pulling {
			// Someone else is draining the channel; they will stash or
			// take what arrives and wake us to re-scan.
			pm.cond.Wait()
			continue
		}
		pm.pulling = true
		pm.mu.Unlock()
		select {
		case m := <-t.f.chans[from][t.rank]:
			pm.mu.Lock()
			pm.pulling = false
			if m.tag == tag {
				pm.cond.Broadcast()
				pm.mu.Unlock()
				return t.deliver(from, tag, m, data)
			}
			pm.pending = append(pm.pending, m)
			pm.cond.Broadcast()
			// Loop: re-scan the stash (a racing receiver may have stashed
			// our tag while we pulled) or become the puller again.
		case <-t.f.done:
			pm.mu.Lock()
			pm.pulling = false
			pm.cond.Broadcast()
			pm.mu.Unlock()
			return ErrFabricClosed
		case <-t.f.dead[from].ch:
			pm.mu.Lock()
			pm.pulling = false
			pm.cond.Broadcast()
			pm.mu.Unlock()
			return &PeerError{Rank: from, Op: "recv", Err: ErrPeerDead}
		case <-t.f.dead[t.rank].ch:
			pm.mu.Lock()
			pm.pulling = false
			pm.cond.Broadcast()
			pm.mu.Unlock()
			return &PeerError{Rank: t.rank, Op: "recv", Err: ErrPeerDead}
		case <-timeoutC:
			pm.mu.Lock()
			pm.pulling = false
			pm.cond.Broadcast()
			pm.mu.Unlock()
			return &PeerError{Rank: from, Op: "recv", Timeout: true, Err: errRecvNoMessage}
		}
	}
}

// errRecvNoMessage explains an inproc recv deadline expiry: no frame from
// the peer arrived within the window.
var errRecvNoMessage = errors.New("comm: no message within deadline")

func (t *inprocTransport) Close() error { return nil }

// RunGroup is a convenience harness: it spawns one goroutine per rank over a
// fresh in-process fabric, runs body(rank's communicator), and returns the
// first error. The experiments and many tests use it as their "mpirun".
func RunGroup(size int, body func(c *Communicator) error) error {
	f := NewInprocFabric(size)
	defer f.Shutdown()
	cs := f.Communicators()
	errs := make(chan error, size)
	var wg sync.WaitGroup
	for _, c := range cs {
		wg.Add(1)
		go func(c *Communicator) {
			defer wg.Done()
			if err := body(c); err != nil {
				errs <- err
				// Unblock peers so the group can't hang — except on a
				// cooperative stop, where every rank is about to return on
				// its own and tearing down would race their last collective.
				if !errors.Is(err, ErrGroupStop) {
					f.Shutdown()
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}
