//go:build !race

package comm

// raceEnabled: see race_on_test.go.
const raceEnabled = false
