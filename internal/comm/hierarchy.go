package comm

import "fmt"

// Two-level hierarchical collectives. A flat worker group models the paper's
// testbed (every pair of ranks one hop apart); real clusters are two-tier —
// several workers per node on a fast local interconnect, nodes joined by a
// slower network. SetTopology teaches a Communicator that shape: consecutive
// runs of ranksPerNode ranks form a node, rank node*ranksPerNode is the
// node's leader, and the core collectives transparently switch to two-level
// schedules:
//
//	AllreduceSum/Mean: intra-node reduce to the leader → inter-node
//	                   allreduce among leaders → intra-node broadcast
//	Allgather(V):      intra-node gather → inter-node exchange of node
//	                   blocks among leaders → intra-node broadcast
//	Broadcast:         root → its node leader → inter-node broadcast →
//	                   intra-node broadcast
//
// The schedules move the O(n·P) flat traffic off the slow tier: each bucket
// crosses the inter-node network once per node instead of once per rank.
// Callers — including the nonblocking IAllreduceMean/IAllgather requests and
// every compression algorithm's Exchange — are unchanged; only the rank
// partition is new. The reduction ORDER differs from the flat schedule, so
// hierarchical results match flat ones to float tolerance, not bitwise; for
// a fixed topology and seed they remain fully deterministic.

// hierarchy holds the sub-communicators of a two-level topology.
type hierarchy struct {
	ranksPerNode int
	node         int           // my node index
	nodes        int           // node count
	intra        *Communicator // the ranks of my node (never nil)
	inter        *Communicator // node leaders; nil on non-leader ranks
}

// tagHier tags the root→leader forwarding hop of hierarchical broadcast.
const tagHier = 13 << 16

// SetTopology configures (or, with ranksPerNode <= 1, clears) the two-level
// topology. It is a collective call: every rank must pass the same
// ranksPerNode. Values larger than the group size are clamped (one node).
// Consecutive ranks share a node, so a launcher that places ranks
// node-major — as mpirun and the in-process fabrics do — needs no rank
// reordering.
func (c *Communicator) SetTopology(ranksPerNode int) error {
	p, r := c.Size(), c.Rank()
	c.hier = nil // splits below must run over the flat collectives
	if ranksPerNode <= 1 || p == 1 {
		return nil
	}
	if ranksPerNode > p {
		ranksPerNode = p
	}
	node := r / ranksPerNode
	intra, err := c.Split(node, r)
	if err != nil {
		return fmt.Errorf("comm: topology intra split: %w", err)
	}
	leaderColor := ColorUndefined
	if r%ranksPerNode == 0 {
		leaderColor = 0
	}
	inter, err := c.Split(leaderColor, r)
	if err != nil {
		return fmt.Errorf("comm: topology inter split: %w", err)
	}
	c.hier = &hierarchy{
		ranksPerNode: ranksPerNode,
		node:         node,
		nodes:        (p + ranksPerNode - 1) / ranksPerNode,
		intra:        intra,
		inter:        inter,
	}
	return nil
}

// Topology returns the configured ranks-per-node, or 0 when the
// communicator is flat.
func (c *Communicator) Topology() int {
	if c.hier == nil {
		return 0
	}
	return c.hier.ranksPerNode
}

// hierAllreduceSum is the two-level sum: node-local binomial reduce into the
// leader, allreduce among leaders on the inter-node tier, node-local
// broadcast of the result.
func (c *Communicator) hierAllreduceSum(v []float32, algo AllreduceAlgorithm) error {
	h := c.hier
	if err := h.intra.Reduce(v, 0); err != nil {
		return err
	}
	if h.inter != nil && h.inter.Size() > 1 {
		if err := h.inter.AllreduceSum(v, algo); err != nil {
			return err
		}
	}
	return h.intra.Broadcast(v, 0)
}

// hierAllgather gathers each node's blocks at its leader (directly into the
// leader's slice of out, which is already laid out in global rank order
// because nodes are contiguous rank ranges), exchanges node blocks among
// leaders, and broadcasts the assembled result within each node.
func (c *Communicator) hierAllgather(in, out []float32) error {
	h := c.hier
	blk := len(in)
	m := h.intra.Size()
	nodeStart := h.node * h.ranksPerNode
	nodeView := out[nodeStart*blk : (nodeStart+m)*blk]
	if h.intra.Rank() == 0 {
		if err := h.intra.Gather(in, nodeView, 0); err != nil {
			return err
		}
		if h.inter != nil && h.inter.Size() > 1 {
			if c.Size()%h.ranksPerNode == 0 {
				// Equal node sizes: leader i's block belongs at offset
				// i*m*blk, exactly where ring allgather places it.
				if err := h.inter.Allgather(nodeView, out); err != nil {
					return err
				}
			} else {
				// Ragged last node: variable-size exchange; node blocks
				// concatenate in leader order, which is global rank order.
				all, _, err := h.inter.AllgatherV(nodeView)
				if err != nil {
					return err
				}
				copy(out, all)
			}
		}
	} else if err := h.intra.Gather(in, nil, 0); err != nil {
		return err
	}
	return h.intra.Broadcast(out, 0)
}

// hierAllgatherV is the variable-length analogue: node-local allgatherv,
// leaders exchange per-rank lengths and concatenated node payloads, and the
// result (sized header first, then lengths, then data) is broadcast within
// each node. Block order is global rank order throughout because nodes are
// contiguous.
func (c *Communicator) hierAllgatherV(in []float32) (out []float32, lens []int, err error) {
	h := c.hier
	p := c.Size()
	nodeData, nodeLens, err := h.intra.AllgatherV(in)
	if err != nil {
		return nil, nil, err
	}
	if h.nodes == 1 {
		return nodeData, nodeLens, nil
	}

	var lensF []float32
	if h.inter != nil {
		myLensF := make([]float32, len(nodeLens))
		for i, l := range nodeLens {
			myLensF[i] = Float32FromIndex(uint32(l))
		}
		if lensF, _, err = h.inter.AllgatherV(myLensF); err != nil {
			return nil, nil, err
		}
		if out, _, err = h.inter.AllgatherV(nodeData); err != nil {
			return nil, nil, err
		}
	}
	// Leaders announce the total payload size, then ship lengths and data.
	hdr := []float32{0}
	if h.inter != nil {
		hdr[0] = Float32FromIndex(uint32(len(out)))
	}
	if err := h.intra.Broadcast(hdr, 0); err != nil {
		return nil, nil, err
	}
	if h.inter == nil {
		lensF = make([]float32, p)
		out = make([]float32, int(Float32ToIndex(hdr[0])))
	}
	if err := h.intra.Broadcast(lensF, 0); err != nil {
		return nil, nil, err
	}
	if err := h.intra.Broadcast(out, 0); err != nil {
		return nil, nil, err
	}
	lens = make([]int, p)
	for i := range lens {
		lens[i] = int(Float32ToIndex(lensF[i]))
	}
	return out, lens, nil
}

// hierBroadcast forwards root's data to its node leader, broadcasts among
// leaders, then within each node.
func (c *Communicator) hierBroadcast(v []float32, root int) error {
	h := c.hier
	r := c.Rank()
	rootNode := root / h.ranksPerNode
	rootLeader := rootNode * h.ranksPerNode
	if root != rootLeader {
		if r == root {
			if err := c.send(rootLeader, tagHier, v); err != nil {
				return err
			}
		}
		if r == rootLeader {
			if err := c.recv(root, tagHier, v); err != nil {
				return err
			}
		}
	}
	if h.inter != nil && h.inter.Size() > 1 {
		if err := h.inter.Broadcast(v, rootNode); err != nil {
			return err
		}
	}
	return h.intra.Broadcast(v, 0)
}
