package comm

import (
	"fmt"
	"testing"
)

// TestSetConcurrencyValidation pins the range checks.
func TestSetConcurrencyValidation(t *testing.T) {
	f := NewInprocFabric(1)
	defer f.Shutdown()
	c := f.Communicators()[0]
	if err := c.SetConcurrency(0); err == nil {
		t.Error("SetConcurrency(0) must fail")
	}
	if err := c.SetConcurrency(MaxConcurrency + 1); err == nil {
		t.Errorf("SetConcurrency(%d) must fail", MaxConcurrency+1)
	}
	if c.Concurrency() != 1 || !c.Deterministic() {
		t.Errorf("failed SetConcurrency mutated the mode: %d", c.Concurrency())
	}
	if err := c.SetConcurrency(4); err != nil {
		t.Fatal(err)
	}
	if c.Concurrency() != 4 || c.Deterministic() {
		t.Errorf("Concurrency() = %d, want 4 (non-deterministic)", c.Concurrency())
	}
}

// TestConcurrentCollectivesMatchDeterministic posts a batch of nonblocking
// collectives under every concurrency level and checks results are bitwise
// identical to the blocking reference: operations land in disjoint tag
// blocks, so the wire interleaving cannot cross wires or change operands.
func TestConcurrentCollectivesMatchDeterministic(t *testing.T) {
	const p, nBufs, n = 4, 8, 300
	want := make([][]float32, nBufs)
	err := RunGroup(p, func(c *Communicator) error {
		for b := 0; b < nBufs; b++ {
			v := testVec(c.Rank(), b, n)
			if err := c.AllreduceMean(v, AlgoAuto); err != nil {
				return err
			}
			if c.Rank() == 0 {
				want[b] = v
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, conc := range []int{1, 2, 4, MaxConcurrency} {
		err := RunGroup(p, func(c *Communicator) error {
			if err := c.SetConcurrency(conc); err != nil {
				return err
			}
			bufs := make([][]float32, nBufs)
			reqs := make([]Request, nBufs)
			for b := 0; b < nBufs; b++ {
				bufs[b] = testVec(c.Rank(), b, n)
				reqs[b] = c.IAllreduceMean(bufs[b], AlgoAuto)
			}
			if err := WaitAll(reqs); err != nil {
				return err
			}
			for b := 0; b < nBufs; b++ {
				for i, x := range bufs[b] {
					if x != want[b][i] {
						return fmt.Errorf("conc %d rank %d buf %d elem %d: %v != %v",
							conc, c.Rank(), b, i, x, want[b][i])
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// postedOp is a caller-pooled typed operation: it runs its collective on the
// context communicator Post assigned it to.
type postedOp struct {
	v   []float32
	out []float32
}

func (o *postedOp) RunOp(cc *Communicator) error {
	if o.out != nil {
		return cc.Allgather(o.v, o.out)
	}
	return cc.AllreduceSum(o.v, AlgoAuto)
}

// TestPostTypedOps mixes typed custom operations (allgathers and allreduces
// of different lengths) under concurrency 4: every rank posts the identical
// sequence, so the round-robin context assignment agrees across ranks and
// the interleaved collectives must all complete correctly.
func TestPostTypedOps(t *testing.T) {
	const p, rounds = 3, 5
	err := RunGroup(p, func(c *Communicator) error {
		if err := c.SetConcurrency(4); err != nil {
			return err
		}
		ops := make([]postedOp, 2*rounds)
		reqs := make([]Request, 0, 2*rounds)
		for round := 0; round < rounds; round++ {
			sum := []float32{float32(c.Rank() + round)}
			in := make([]float32, 4+round)
			for i := range in {
				in[i] = float32(c.Rank()*100 + i)
			}
			out := make([]float32, len(in)*p)
			ops[2*round] = postedOp{v: sum}
			ops[2*round+1] = postedOp{v: in, out: out}
			reqs = append(reqs, c.Post(&ops[2*round]), c.Post(&ops[2*round+1]))
		}
		if err := WaitAll(reqs); err != nil {
			return err
		}
		for round := 0; round < rounds; round++ {
			wantSum := float32(p*(p-1)/2 + p*round)
			if got := ops[2*round].v[0]; got != wantSum {
				return fmt.Errorf("rank %d round %d: sum %v want %v", c.Rank(), round, got, wantSum)
			}
			n := 4 + round
			out := ops[2*round+1].out
			for r := 0; r < p; r++ {
				for i := 0; i < n; i++ {
					if out[r*n+i] != float32(r*100+i) {
						return fmt.Errorf("rank %d round %d: out[%d][%d] = %v", c.Rank(), round, r, i, out[r*n+i])
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAsyncPinnedWithConcurrency: legacy closures are pinned to context 0
// and keep their strict mutual order even when typed operations are being
// distributed across contexts.
func TestAsyncPinnedWithConcurrency(t *testing.T) {
	err := RunGroup(2, func(c *Communicator) error {
		if err := c.SetConcurrency(3); err != nil {
			return err
		}
		order := make([]int, 0, 4)
		reqs := make([]Request, 0, 4)
		for i := 0; i < 4; i++ {
			i := i
			reqs = append(reqs, c.Async(func() error {
				order = append(order, i) // safe: all closures run on context 0's worker
				return nil
			}))
		}
		if err := WaitAll(reqs); err != nil {
			return err
		}
		for i, got := range order {
			if got != i {
				return fmt.Errorf("closure order %v", order)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSetConcurrencyResetsAcrossPhases: lowering the concurrency back to 1
// restores the deterministic mode for subsequent phases.
func TestSetConcurrencyResetsAcrossPhases(t *testing.T) {
	err := RunGroup(2, func(c *Communicator) error {
		for _, conc := range []int{4, 1, 2} {
			if err := c.SetConcurrency(conc); err != nil {
				return err
			}
			v := []float32{float32(c.Rank() + 1)}
			if err := c.IAllreduceSum(v, AlgoAuto).Wait(); err != nil {
				return err
			}
			if v[0] != 3 {
				return fmt.Errorf("conc %d: sum %v want 3", conc, v[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
