package comm

import (
	"errors"
	"time"
)

// Nonblocking collectives. Every Communicator owns a set of progress workers
// (lazily started, one goroutine per tag-space context, mirroring MPI
// progress threads) that execute posted operations. In the default
// Deterministic mode — concurrency 1 — a single worker runs operations
// strictly in posting order, so the execution order and the floating-point
// reduction order are identical to issuing the same operations
// synchronously. SetConcurrency(n) adds n-1 shadow communicators in disjoint
// tag-space contexts (see ctx.go): posted operations are assigned to
// contexts round-robin by posting sequence number, operations within a
// context still run in posting order, and operations in different contexts
// run concurrently — several bucket rings in flight at once. Because the
// context assignment depends only on the posting sequence, every rank routes
// the k-th posted collective to the same context and the same tag block;
// the transports' tag matchers demultiplex the interleaved wire traffic.
//
// Requests are pooled: posting draws a request from the communicator's
// freelist and the first Wait returns it, so a steady-state post/Wait cycle
// never touches the allocator. The built-in collectives post as typed
// operations (no closure); arbitrary communication work posts through the Op
// interface, whose RunOp receives the context communicator the operation was
// assigned to. The legacy closure form Async(f) still exists for
// non-collective work; closures capture the parent communicator, so they are
// always pinned to context 0 and keep their strict mutual order.
//
// Contract: all ranks must post the same sequence of operations with the
// same concurrency setting, and the owner must not issue blocking
// collectives on the communicator while posted operations are outstanding
// (Wait first). A Request belongs to one waiter: Wait is idempotent for the
// holder, but the request is recycled on the first Wait — its error remains
// readable until the communicator reuses the request for a later post.

// Request is the handle of one posted nonblocking operation.
type Request interface {
	// Wait blocks until the operation completes and returns its error.
	// Wait is idempotent until the request is recycled by a later post on
	// the same communicator; do not call Wait from multiple goroutines.
	Wait() error
}

// Op is a typed unit of asynchronous communication work. RunOp receives the
// communicator of the tag-space context the operation was assigned to and
// must issue all its collectives on it. Implementations are typically small
// caller-pooled structs — posting a *T converts to Op without allocating —
// which is what replaces the closure queue on the training hot path.
type Op interface {
	RunOp(c *Communicator) error
}

// opKind discriminates the typed operations a request can carry.
type opKind uint8

const (
	opFn opKind = iota // legacy closure, pinned to context 0
	opCustom
	opAllreduceMean
	opAllreduceSum
	opAllgather
)

type asyncReq struct {
	c    *Communicator
	done chan struct{} // 1-buffered completion token, persists across reuse

	kind opKind
	fn   func() error
	op   Op
	v    []float32
	out  []float32
	algo AllreduceAlgorithm

	err      error
	released bool
	next     *asyncReq // freelist link
}

func (r *asyncReq) Wait() error {
	if r.released {
		return r.err
	}
	<-r.done
	err := r.err
	r.released = true
	r.c.recycleReq(r)
	return err
}

// run executes the request's operation on the context communicator cc.
func (r *asyncReq) run(cc *Communicator) error {
	switch r.kind {
	case opFn:
		return r.fn()
	case opCustom:
		return r.op.RunOp(cc)
	case opAllreduceMean:
		return cc.AllreduceMean(r.v, r.algo)
	case opAllreduceSum:
		return cc.AllreduceSum(r.v, r.algo)
	case opAllgather:
		return cc.Allgather(r.v, r.out)
	}
	return nil
}

// reqQueue is one context's FIFO of posted requests. buf[head:] are pending;
// the slice is compacted when it drains, so after warm-up a post/run cycle
// reuses its capacity and never allocates. loop is the context's worker body,
// built once at queue initialization: `go q.loop()` passes the stored funcval
// straight to the runtime, whereas `go c.ctxLoop(k)` would heap-allocate a
// wrapper and argument frame on every worker restart — two allocations per
// step the pooled path must not pay.
type reqQueue struct {
	buf     []*asyncReq
	head    int
	running bool
	loop    func()
}

// initQueues builds n context queues with their worker closures. Caller
// holds asyncMu.
func (c *Communicator) initQueues(n int) {
	c.ctxQueues = make([]reqQueue, n)
	for k := range c.ctxQueues {
		k := k
		c.ctxQueues[k].loop = func() { c.ctxLoop(k) }
	}
}

// newReq draws a request from the freelist (or allocates on cold start) and
// resets it for posting. Caller fills the operation fields.
func (c *Communicator) newReq() *asyncReq {
	c.asyncMu.Lock()
	r := c.freeReqs
	if r != nil {
		c.freeReqs = r.next
	}
	c.asyncMu.Unlock()
	if r == nil {
		r = &asyncReq{c: c, done: make(chan struct{}, 1)}
	}
	r.next = nil
	r.err = nil
	r.released = false
	return r
}

// recycleReq clears the request's payload references and returns it to the
// freelist.
func (c *Communicator) recycleReq(r *asyncReq) {
	r.fn = nil
	r.op = nil
	r.v = nil
	r.out = nil
	c.asyncMu.Lock()
	r.next = c.freeReqs
	c.freeReqs = r
	c.asyncMu.Unlock()
}

// enqueue routes a request to a context queue and ensures its worker runs.
// Typed operations are distributed round-robin by posting sequence (every
// rank posts the same sequence, so every rank picks the same context for the
// k-th operation); pinned requests (legacy closures) always take context 0.
func (c *Communicator) enqueue(r *asyncReq, pinned bool) {
	c.asyncMu.Lock()
	if len(c.ctxQueues) == 0 {
		c.initQueues(1)
	}
	k := 0
	if !pinned && len(c.ctxQueues) > 1 {
		k = int(c.postSeq % uint64(len(c.ctxQueues)))
		c.postSeq++
	}
	q := &c.ctxQueues[k]
	q.buf = append(q.buf, r)
	if !q.running {
		q.running = true
		go q.loop()
	}
	c.asyncMu.Unlock()
}

// ctxLoop is context k's progress worker: it drains the context queue in
// FIFO order and parks (exits) when the queue is empty, so an idle
// communicator holds no goroutines.
func (c *Communicator) ctxLoop(k int) {
	cc := c.ctxComm(k)
	for {
		c.asyncMu.Lock()
		q := &c.ctxQueues[k]
		if q.head == len(q.buf) {
			q.buf = q.buf[:0]
			q.head = 0
			q.running = false
			c.asyncMu.Unlock()
			return
		}
		r := q.buf[q.head]
		q.buf[q.head] = nil
		q.head++
		obs := c.opObs
		c.asyncMu.Unlock()
		if obs != nil {
			t0 := time.Now()
			r.err = r.run(cc)
			obs(time.Since(t0).Seconds())
		} else {
			r.err = r.run(cc)
		}
		r.done <- struct{}{}
	}
}

// Post submits a typed operation for asynchronous execution and returns its
// Request. Operations are assigned to tag-space contexts round-robin in
// posting order; within a context they run serially, across contexts
// concurrently (with concurrency 1 — the Deterministic default — this is
// strict posting order). op.RunOp receives the assigned context
// communicator. Posting is allocation-free in steady state when op is a
// pointer to a caller-pooled struct.
func (c *Communicator) Post(op Op) Request {
	r := c.newReq()
	r.kind = opCustom
	r.op = op
	c.enqueue(r, false)
	return r
}

// Async posts f for execution on the communicator's progress worker and
// returns its Request. Closures capture the parent communicator, so they are
// pinned to context 0 regardless of the concurrency setting: posted
// functions run strictly in posting order relative to each other. New code
// on the hot path should use Post (typed, pooled, context-distributed)
// instead.
func (c *Communicator) Async(f func() error) Request {
	r := c.newReq()
	r.kind = opFn
	r.fn = f
	c.enqueue(r, true)
	return r
}

// IAllreduceMean is the nonblocking AllreduceMean: it returns immediately;
// v must not be touched until the returned Request's Wait succeeds, at which
// point v holds the across-rank mean.
func (c *Communicator) IAllreduceMean(v []float32, algo AllreduceAlgorithm) Request {
	r := c.newReq()
	r.kind = opAllreduceMean
	r.v = v
	r.algo = algo
	c.enqueue(r, false)
	return r
}

// IAllreduceSum is the nonblocking AllreduceSum.
func (c *Communicator) IAllreduceSum(v []float32, algo AllreduceAlgorithm) Request {
	r := c.newReq()
	r.kind = opAllreduceSum
	r.v = v
	r.algo = algo
	c.enqueue(r, false)
	return r
}

// IAllgather is the nonblocking Allgather: neither in nor out may be touched
// until Wait succeeds.
func (c *Communicator) IAllgather(in, out []float32) Request {
	r := c.newReq()
	r.kind = opAllgather
	r.v = in
	r.out = out
	c.enqueue(r, false)
	return r
}

// WaitAll waits on every request and returns all errors joined (nil when
// every operation succeeded) — a multi-bucket failure reports every failed
// exchange, not just the first.
func WaitAll(reqs []Request) error {
	var errs []error
	for _, r := range reqs {
		if err := r.Wait(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
