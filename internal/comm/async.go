package comm

// Nonblocking collectives. Every Communicator owns a lazily-started progress
// worker (one goroutine, mirroring an MPI progress thread) that executes
// posted operations strictly in posting order. Overlap is therefore
// communication-vs-computation: the owner goroutine keeps computing (e.g.
// gathering and encoding the next gradient bucket) while the worker drives
// the fabric. Operations never run concurrently with each other, so the
// collectives' tag space needs no per-operation contexts and the execution
// order — hence the floating-point reduction order — is identical to issuing
// the same operations synchronously.
//
// Contract: all ranks must post the same sequence of collectives, and the
// owner must not issue blocking collectives on the communicator while posted
// operations are outstanding (Wait first). Both transports (the in-process
// channel fabric and tcpnet) are supported — the worker sits above the
// Transport interface.

// Request is the handle of one posted nonblocking operation.
type Request interface {
	// Wait blocks until the operation completes and returns its error.
	// Wait is idempotent: further calls return the same error immediately.
	Wait() error
}

type asyncReq struct {
	done chan struct{}
	err  error
}

func (r *asyncReq) Wait() error {
	<-r.done
	return r.err
}

type asyncJob struct {
	f   func() error
	req *asyncReq
}

// Async posts f for execution on the communicator's progress worker and
// returns its Request. Posted functions run strictly in posting order, one
// at a time; the worker parks (exits) when the queue drains, so an idle
// communicator holds no goroutine.
func (c *Communicator) Async(f func() error) Request {
	r := &asyncReq{done: make(chan struct{})}
	c.asyncMu.Lock()
	c.asyncQueue = append(c.asyncQueue, asyncJob{f: f, req: r})
	if !c.asyncRunning {
		c.asyncRunning = true
		go c.asyncLoop()
	}
	c.asyncMu.Unlock()
	return r
}

func (c *Communicator) asyncLoop() {
	for {
		c.asyncMu.Lock()
		if len(c.asyncQueue) == 0 {
			c.asyncRunning = false
			c.asyncMu.Unlock()
			return
		}
		j := c.asyncQueue[0]
		c.asyncQueue = c.asyncQueue[1:]
		c.asyncMu.Unlock()
		j.req.err = j.f()
		close(j.req.done)
	}
}

// IAllreduceMean is the nonblocking AllreduceMean: it returns immediately;
// v must not be touched until the returned Request's Wait succeeds, at which
// point v holds the across-rank mean.
func (c *Communicator) IAllreduceMean(v []float32, algo AllreduceAlgorithm) Request {
	return c.Async(func() error { return c.AllreduceMean(v, algo) })
}

// IAllreduceSum is the nonblocking AllreduceSum.
func (c *Communicator) IAllreduceSum(v []float32, algo AllreduceAlgorithm) Request {
	return c.Async(func() error { return c.AllreduceSum(v, algo) })
}

// IAllgather is the nonblocking Allgather: neither in nor out may be touched
// until Wait succeeds.
func (c *Communicator) IAllgather(in, out []float32) Request {
	return c.Async(func() error { return c.Allgather(in, out) })
}

// WaitAll waits on every request and returns the first error.
func WaitAll(reqs []Request) error {
	var first error
	for _, r := range reqs {
		if err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
