package faultnet

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"a2sgd/internal/comm"
)

// Scenario grammar. A scenario is a whitespace-separated list of rules,
// each `name(key=value, ...)`:
//
//	delay(link=0-1, alpha=200us, beta=1ns/B, jitter=50us)
//	bw(link=*, mbps=400)                     // bandwidth cap as a beta term
//	loss(link=*, p=0.05, resend=2ms)         // loss-driven resend delay
//	dup(link=*, p=0.2)                       // legal duplicate delivery
//	reorder(link=*, p=0.3)                   // legal cross-tag reordering
//	straggler(rank=2, x3)                    // multiply delays touching rank
//	degrade(rank=2, after=4, factor=3, ramp=4) // gradual slowdown of rank's links
//	crash(rank=3, step=5)                    // one-shot rank failure
//	stall(rank=3, step=5)                    // rank goes dark, no error
//	preempt(rank=3, step=5)                  // crash that may rejoin (elastic)
//	flap(rank=1, period=40ms, duty=0.8)      // link up duty fraction of period
//	partition(groups=0-1|2-3, after=30ms, dur=25ms)
//	seed(42) deadline(500ms) retry(attempts=10, backoff=1ms, max=50ms)
//
// Links are undirected rank pairs: `0-1`, `2-*` (any link touching rank 2)
// or `*` (every link). Durations use Go syntax (200us, 1.5ms); beta is a
// per-byte duration written `1ns/B`. String() renders the canonical form and
// Parse round-trips it.

// RuleKind discriminates scenario rules.
type RuleKind int

// Scenario rule kinds.
const (
	RuleDelay RuleKind = iota
	RuleBandwidth
	RuleLoss
	RuleDup
	RuleReorder
	RuleStraggler
	RuleCrash
	RuleStall
	RuleFlap
	RulePartition
	// RulePreempt is a crash the orchestrator announced in advance: at the
	// transport level it behaves exactly like RuleCrash (the rank's transport
	// is killed, peers observe a *comm.PeerError), but the elastic supervisor
	// reads the kind as "this rank will come back" and re-admits it at the
	// next checkpoint boundary instead of shrinking permanently.
	RulePreempt
	// RuleDegrade is the gradual sibling of RuleStraggler: from 0-based step
	// After the slowdown of every link touching Rank ramps linearly from 1x
	// to Factor over Ramp steps, then holds. Stragglers model a host that is
	// simply slow; degrades model a fabric that is getting worse — the
	// realistic stimulus for drift-triggered re-planning.
	RuleDegrade
)

var ruleNames = map[RuleKind]string{
	RuleDelay: "delay", RuleBandwidth: "bw", RuleLoss: "loss", RuleDup: "dup",
	RuleReorder: "reorder", RuleStraggler: "straggler", RuleCrash: "crash",
	RuleStall: "stall", RuleFlap: "flap", RulePartition: "partition",
	RulePreempt: "preempt", RuleDegrade: "degrade",
}

// Link selects the undirected rank pairs a rule applies to; -1 is the
// wildcard on either end.
type Link struct{ A, B int }

// AnyLink matches every link.
var AnyLink = Link{A: -1, B: -1}

// Matches reports whether the (src, dst) pair falls under the selector,
// in either direction.
func (l Link) Matches(src, dst int) bool {
	one := func(a, b int) bool {
		return (l.A == -1 || l.A == a) && (l.B == -1 || l.B == b)
	}
	return one(src, dst) || one(dst, src)
}

func (l Link) String() string {
	end := func(r int) string {
		if r < 0 {
			return "*"
		}
		return strconv.Itoa(r)
	}
	if l.A < 0 && l.B < 0 {
		return "*"
	}
	return end(l.A) + "-" + end(l.B)
}

// Rule is one fault clause. Only the fields its Kind names are meaningful.
type Rule struct {
	Kind RuleKind
	Link Link // delay/bw/loss/dup/reorder
	Rank int  // straggler/crash/stall/flap
	Step int  // crash/stall: 0-based global step the fault fires at

	Alpha  time.Duration // delay: per-message latency
	Beta   float64       // delay/bw: seconds per payload byte
	Jitter time.Duration // delay: uniform [0, Jitter) addend

	P      float64       // loss/dup/reorder probability
	Resend time.Duration // loss: delay modelling the retransmit

	Factor float64 // straggler/degrade multiplier
	Ramp   int     // degrade: steps over which the factor ramps to full

	Period time.Duration // flap cycle length
	Duty   float64       // flap fraction of the period the link is UP

	After, Dur time.Duration // partition window (from mesh start)
	Groups     [][]int       // partition sides
}

// Scenario is a parsed fault schedule plus the failure-contract knobs the
// runners install on every communicator.
type Scenario struct {
	// Seed drives every per-link random stream; two runs of the same
	// scenario draw identical fault sequences.
	Seed uint64
	// Deadline is the I/O timeout installed on the underlying transport
	// (tcpnet Config.IOTimeout / InprocFabric.SetIOTimeout). Zero with
	// stall rules present defaults to 2s so a dark rank cannot hang the run.
	Deadline time.Duration
	// Retry is the comm.RetryPolicy installed on every communicator. Zero
	// with flap/partition rules present defaults to comm.DefaultRetry().
	Retry comm.RetryPolicy
	Rules []Rule

	// Backup lists ranks with a warm backup clone: the elastic supervisor
	// sets it at runtime when a spare Pool slot duplicates a straggler's
	// shard, and the mesh then exempts links touching those ranks from
	// straggler/degrade slowdowns — the clean clone's stream wins the race.
	// Runtime state, not part of the grammar; String does not render it.
	Backup []int
}

// Recoverable reports whether every rule preserves completion: a scenario
// without crash and stall rules slows training down but cannot make it fail,
// and (with retry covering the link-down windows) must finish bitwise equal
// to the fault-free run.
func (s *Scenario) Recoverable() bool {
	for _, r := range s.Rules {
		if r.Kind == RuleCrash || r.Kind == RuleStall || r.Kind == RulePreempt {
			return false
		}
	}
	return true
}

func (s *Scenario) has(k RuleKind) bool {
	for _, r := range s.Rules {
		if r.Kind == k {
			return true
		}
	}
	return false
}

// applyDefaults fills Seed/Deadline/Retry for rules that need them to
// terminate: unrecoverable scenarios need a deadline to escape a dark peer,
// and link-down windows need retry to be recoverable.
func (s *Scenario) applyDefaults() {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Deadline == 0 && (s.has(RuleCrash) || s.has(RuleStall) || s.has(RulePreempt)) {
		s.Deadline = 2 * time.Second
	}
	if s.Retry.Attempts == 0 && (s.has(RuleFlap) || s.has(RulePartition)) {
		s.Retry = comm.DefaultRetry()
	}
}

// Parse parses the -faults CLI grammar documented at the top of this file.
// An empty string yields an empty (fault-free) scenario.
func Parse(src string) (*Scenario, error) {
	sc := &Scenario{Seed: 1}
	rest := strings.TrimSpace(src)
	for rest != "" {
		open := strings.IndexByte(rest, '(')
		closeP := strings.IndexByte(rest, ')')
		if open <= 0 || closeP < open {
			return nil, fmt.Errorf("faultnet: expected rule `name(args)` at %q", rest)
		}
		name := strings.TrimSpace(rest[:open])
		args := rest[open+1 : closeP]
		rest = strings.TrimSpace(rest[closeP+1:])
		if err := sc.parseRule(name, args); err != nil {
			return nil, err
		}
	}
	sc.applyDefaults()
	return sc, nil
}

// MustParse is Parse for tests and fixed literals; it panics on error.
func MustParse(src string) *Scenario {
	sc, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return sc
}

// kvArgs splits "k=v, k2=v2, bare" into a map plus the bare tokens.
func kvArgs(args string) (map[string]string, []string, error) {
	kv := map[string]string{}
	var bare []string
	for _, part := range strings.Split(args, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			k := strings.TrimSpace(part[:eq])
			v := strings.TrimSpace(part[eq+1:])
			if _, dup := kv[k]; dup {
				return nil, nil, fmt.Errorf("faultnet: duplicate key %q", k)
			}
			kv[k] = v
		} else {
			bare = append(bare, part)
		}
	}
	return kv, bare, nil
}

func parseLink(s string) (Link, error) {
	if s == "" || s == "*" {
		return AnyLink, nil
	}
	a, b, ok := strings.Cut(s, "-")
	if !ok {
		return Link{}, fmt.Errorf("faultnet: link %q must be `a-b`, `a-*` or `*`", s)
	}
	end := func(e string) (int, error) {
		if e == "*" {
			return -1, nil
		}
		return strconv.Atoi(e)
	}
	la, err := end(a)
	if err != nil {
		return Link{}, fmt.Errorf("faultnet: link %q: %w", s, err)
	}
	lb, err := end(b)
	if err != nil {
		return Link{}, fmt.Errorf("faultnet: link %q: %w", s, err)
	}
	return Link{A: la, B: lb}, nil
}

// parseBeta parses a per-byte duration like "1ns/B" or "0.25ns/B" into
// seconds per byte.
func parseBeta(s string) (float64, error) {
	v, ok := strings.CutSuffix(s, "/B")
	if !ok {
		return 0, fmt.Errorf("faultnet: beta %q must be a per-byte duration like 1ns/B", s)
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("faultnet: beta %q: %w", s, err)
	}
	return d.Seconds(), nil
}

// parseGroups parses partition sides "0-1|2-3" (ranks joined by -, sides by |).
func parseGroups(s string) ([][]int, error) {
	sides := strings.Split(s, "|")
	if len(sides) < 2 {
		return nil, fmt.Errorf("faultnet: partition groups %q need at least two |-separated sides", s)
	}
	out := make([][]int, len(sides))
	for i, side := range sides {
		for _, rs := range strings.Split(side, "-") {
			r, err := strconv.Atoi(strings.TrimSpace(rs))
			if err != nil {
				return nil, fmt.Errorf("faultnet: partition groups %q: %w", s, err)
			}
			out[i] = append(out[i], r)
		}
		if len(out[i]) == 0 {
			return nil, fmt.Errorf("faultnet: partition groups %q has an empty side", s)
		}
	}
	return out, nil
}

type argParser struct {
	kv   map[string]string
	used map[string]bool
	err  error
}

func (a *argParser) get(key string) (string, bool) {
	a.used[key] = true
	v, ok := a.kv[key]
	return v, ok
}

func (a *argParser) dur(key string, def time.Duration) time.Duration {
	v, ok := a.get(key)
	if !ok || a.err != nil {
		return def
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		a.err = fmt.Errorf("faultnet: %s=%q: %w", key, v, err)
	}
	return d
}

func (a *argParser) float(key string, def float64) float64 {
	v, ok := a.get(key)
	if !ok || a.err != nil {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		a.err = fmt.Errorf("faultnet: %s=%q: %w", key, v, err)
	}
	return f
}

func (a *argParser) int(key string, def int) int {
	v, ok := a.get(key)
	if !ok || a.err != nil {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		a.err = fmt.Errorf("faultnet: %s=%q: %w", key, v, err)
	}
	return n
}

func (a *argParser) finish(name string) error {
	if a.err != nil {
		return a.err
	}
	for k := range a.kv {
		if !a.used[k] {
			return fmt.Errorf("faultnet: %s: unknown key %q", name, k)
		}
	}
	return nil
}

func (s *Scenario) parseRule(name, args string) error {
	kv, bare, err := kvArgs(args)
	if err != nil {
		return err
	}
	a := &argParser{kv: kv, used: map[string]bool{}}
	r := Rule{Rank: -1, Step: -1}

	link := func() {
		ls, _ := a.get("link")
		if a.err == nil {
			r.Link, a.err = parseLink(ls)
		}
	}
	needRank := func() {
		r.Rank = a.int("rank", -1)
		if a.err == nil && r.Rank < 0 {
			a.err = fmt.Errorf("faultnet: %s requires rank=N", name)
		}
	}

	switch name {
	case "seed":
		if len(bare) != 1 {
			return fmt.Errorf("faultnet: seed takes one bare value, e.g. seed(42)")
		}
		v, err := strconv.ParseUint(bare[0], 10, 64)
		if err != nil {
			return fmt.Errorf("faultnet: seed(%s): %w", bare[0], err)
		}
		s.Seed = v
		return nil
	case "deadline":
		if len(bare) != 1 {
			return fmt.Errorf("faultnet: deadline takes one bare duration, e.g. deadline(500ms)")
		}
		d, err := time.ParseDuration(bare[0])
		if err != nil {
			return fmt.Errorf("faultnet: deadline(%s): %w", bare[0], err)
		}
		s.Deadline = d
		return nil
	case "retry":
		s.Retry = comm.RetryPolicy{
			Attempts:   a.int("attempts", comm.DefaultRetry().Attempts),
			Backoff:    a.dur("backoff", comm.DefaultRetry().Backoff),
			MaxBackoff: a.dur("max", comm.DefaultRetry().MaxBackoff),
		}
		return a.finish(name)
	case "delay":
		r.Kind = RuleDelay
		link()
		r.Alpha = a.dur("alpha", 0)
		if bs, ok := a.get("beta"); ok && a.err == nil {
			r.Beta, a.err = parseBeta(bs)
		}
		r.Jitter = a.dur("jitter", 0)
		if a.err == nil && r.Alpha <= 0 && r.Beta <= 0 && r.Jitter <= 0 {
			a.err = fmt.Errorf("faultnet: delay needs at least one of alpha/beta/jitter")
		}
	case "bw":
		r.Kind = RuleBandwidth
		link()
		mbps := a.float("mbps", 0)
		if gbps := a.float("gbps", 0); gbps > 0 {
			mbps = gbps * 1000
		}
		if a.err == nil && mbps <= 0 {
			a.err = fmt.Errorf("faultnet: bw requires mbps=N or gbps=N")
		}
		r.Beta = 1 / (mbps * 1e6)
	case "loss":
		r.Kind = RuleLoss
		link()
		r.P = a.float("p", 0)
		r.Resend = a.dur("resend", time.Millisecond)
	case "dup":
		r.Kind = RuleDup
		link()
		r.P = a.float("p", 0)
	case "reorder":
		r.Kind = RuleReorder
		link()
		r.P = a.float("p", 0)
	case "straggler":
		r.Kind = RuleStraggler
		needRank()
		r.Factor = a.float("x", 0)
		for _, b := range bare { // bare x3 form
			if f, ok := strings.CutPrefix(b, "x"); ok && a.err == nil {
				r.Factor, a.err = strconv.ParseFloat(f, 64)
			}
		}
		if a.err == nil && r.Factor <= 1 {
			a.err = fmt.Errorf("faultnet: straggler requires a factor > 1 (x3 or x=3)")
		}
	case "degrade":
		r.Kind = RuleDegrade
		needRank()
		r.Step = a.int("after", 0)
		r.Factor = a.float("factor", 0)
		r.Ramp = a.int("ramp", 4)
		if a.err == nil && r.Factor <= 1 {
			a.err = fmt.Errorf("faultnet: degrade requires factor > 1")
		}
		if a.err == nil && (r.Step < 0 || r.Ramp < 0) {
			a.err = fmt.Errorf("faultnet: degrade needs after >= 0 and ramp >= 0")
		}
	case "crash", "stall", "preempt":
		r.Kind = RuleCrash
		switch name {
		case "stall":
			r.Kind = RuleStall
		case "preempt":
			r.Kind = RulePreempt
		}
		needRank()
		r.Step = a.int("step", -1)
		if a.err == nil && r.Step < 0 {
			a.err = fmt.Errorf("faultnet: %s requires step=N (0-based global step)", name)
		}
	case "flap":
		r.Kind = RuleFlap
		needRank()
		r.Period = a.dur("period", 50*time.Millisecond)
		r.Duty = a.float("duty", 0.8)
		if a.err == nil && (r.Duty <= 0 || r.Duty >= 1 || r.Period <= 0) {
			a.err = fmt.Errorf("faultnet: flap needs period>0 and duty in (0,1)")
		}
	case "partition":
		r.Kind = RulePartition
		if gs, ok := a.get("groups"); ok && a.err == nil {
			r.Groups, a.err = parseGroups(gs)
		} else if a.err == nil {
			a.err = fmt.Errorf("faultnet: partition requires groups=a-b|c-d")
		}
		r.After = a.dur("after", 0)
		r.Dur = a.dur("dur", 20*time.Millisecond)
	default:
		return fmt.Errorf("faultnet: unknown rule %q (want delay/bw/loss/dup/reorder/straggler/degrade/crash/stall/preempt/flap/partition/seed/deadline/retry)", name)
	}
	if err := a.finish(name); err != nil {
		return err
	}
	if p := r.P; p < 0 || p > 1 {
		return fmt.Errorf("faultnet: %s p=%v out of [0,1]", name, p)
	}
	s.Rules = append(s.Rules, r)
	return nil
}

// String renders the canonical scenario text; Parse(s.String()) round-trips.
func (s *Scenario) String() string {
	var parts []string
	if s.Seed != 1 {
		parts = append(parts, fmt.Sprintf("seed(%d)", s.Seed))
	}
	if s.Deadline > 0 {
		parts = append(parts, fmt.Sprintf("deadline(%s)", s.Deadline))
	}
	if s.Retry.Attempts > 0 {
		parts = append(parts, fmt.Sprintf("retry(attempts=%d, backoff=%s, max=%s)",
			s.Retry.Attempts, s.Retry.Backoff, s.Retry.MaxBackoff))
	}
	for _, r := range s.Rules {
		parts = append(parts, r.String())
	}
	return strings.Join(parts, " ")
}

func (r Rule) String() string {
	var args []string
	add := func(f string, v ...any) { args = append(args, fmt.Sprintf(f, v...)) }
	switch r.Kind {
	case RuleDelay:
		add("link=%s", r.Link)
		if r.Alpha > 0 {
			add("alpha=%s", r.Alpha)
		}
		if r.Beta > 0 {
			add("beta=%s/B", time.Duration(r.Beta*1e9*float64(time.Nanosecond)))
		}
		if r.Jitter > 0 {
			add("jitter=%s", r.Jitter)
		}
	case RuleBandwidth:
		add("link=%s", r.Link)
		add("mbps=%g", 1/(r.Beta*1e6))
	case RuleLoss:
		add("link=%s", r.Link)
		add("p=%g", r.P)
		add("resend=%s", r.Resend)
	case RuleDup, RuleReorder:
		add("link=%s", r.Link)
		add("p=%g", r.P)
	case RuleStraggler:
		add("rank=%d", r.Rank)
		add("x=%g", r.Factor)
	case RuleDegrade:
		add("rank=%d", r.Rank)
		add("after=%d", r.Step)
		add("factor=%g", r.Factor)
		add("ramp=%d", r.Ramp)
	case RuleCrash, RuleStall, RulePreempt:
		add("rank=%d", r.Rank)
		add("step=%d", r.Step)
	case RuleFlap:
		add("rank=%d", r.Rank)
		add("period=%s", r.Period)
		add("duty=%g", r.Duty)
	case RulePartition:
		var sides []string
		for _, g := range r.Groups {
			var rs []string
			for _, rk := range g {
				rs = append(rs, strconv.Itoa(rk))
			}
			sides = append(sides, strings.Join(rs, "-"))
		}
		add("groups=%s", strings.Join(sides, "|"))
		add("after=%s", r.After)
		add("dur=%s", r.Dur)
	}
	return ruleNames[r.Kind] + "(" + strings.Join(args, ", ") + ")"
}
