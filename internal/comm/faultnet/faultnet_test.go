package faultnet

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"a2sgd/internal/comm"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"delay(link=0-1, alpha=200µs, beta=1ns/B)",
		"delay(link=*, alpha=50µs, jitter=200µs)",
		"seed(42) bw(link=2-*, mbps=400)",
		"loss(link=*, p=0.05, resend=2ms) dup(link=*, p=0.2)",
		"reorder(link=0-1, p=0.3) straggler(rank=2, x=3)",
		"degrade(rank=2, after=4, factor=3, ramp=4)",
		"straggler(rank=1, x=2) degrade(rank=3, after=0, factor=8, ramp=0)",
		"deadline(500ms) crash(rank=3, step=5)",
		"deadline(400ms) stall(rank=1, step=2)",
		"retry(attempts=6, backoff=2ms, max=20ms) flap(rank=1, period=40ms, duty=0.8)",
		"partition(groups=0-1|2-3, after=30ms, dur=25ms)",
	}
	for _, src := range cases {
		sc, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		sc2, err := Parse(sc.String())
		if err != nil {
			t.Fatalf("reparse(%q → %q): %v", src, sc.String(), err)
		}
		if !reflect.DeepEqual(sc, sc2) {
			t.Errorf("round trip diverged:\n src %q\n 1st %+v\n 2nd %+v", src, sc, sc2)
		}
	}
}

func TestParseAcceptsIssueExample(t *testing.T) {
	sc, err := Parse("delay(link=0-1,alpha=200us,beta=1ns/B) straggler(rank=2,x3) crash(rank=3,step=5)")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Rules) != 3 {
		t.Fatalf("want 3 rules, got %+v", sc.Rules)
	}
	if sc.Rules[1].Factor != 3 {
		t.Errorf("bare x3 factor: got %v", sc.Rules[1].Factor)
	}
	if sc.Recoverable() {
		t.Error("crash scenario must not be recoverable")
	}
	if sc.Deadline == 0 {
		t.Error("crash scenario must default a deadline")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"delay",                               // no parens
		"wobble(link=*)",                      // unknown rule
		"delay(link=*)",                       // no delay magnitude
		"delay(link=*, alpha=xx)",             // bad duration
		"delay(link=*, beta=1ns)",             // beta without /B
		"dup(link=*, p=1.5)",                  // p out of range
		"crash(rank=1)",                       // missing step
		"straggler(rank=1)",                   // missing factor
		"degrade(rank=1)",                     // missing factor
		"degrade(rank=1, factor=1)",           // factor must exceed 1
		"degrade(rank=1, factor=3, ramp=-2)",  // negative ramp
		"degrade(factor=3)",                   // missing rank
		"partition(groups=0-1)",               // one side
		"flap(rank=0, duty=1.5)",              // duty out of range
		"delay(link=*, alpha=1ms, alpha=2ms)", // duplicate key
		"delay(link=*, alpha=1ms, bogus=2)",   // unknown key
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestLinkMatching(t *testing.T) {
	l01 := Link{A: 0, B: 1}
	if !l01.Matches(0, 1) || !l01.Matches(1, 0) {
		t.Error("link 0-1 must match both directions")
	}
	if l01.Matches(0, 2) {
		t.Error("link 0-1 must not match 0-2")
	}
	l2any := Link{A: 2, B: -1}
	if !l2any.Matches(2, 0) || !l2any.Matches(1, 2) {
		t.Error("link 2-* must match every link touching rank 2")
	}
	if l2any.Matches(0, 1) {
		t.Error("link 2-* must not match 0-1")
	}
	if !AnyLink.Matches(3, 4) {
		t.Error("link * must match everything")
	}
}

func TestSendPlanDeterministic(t *testing.T) {
	sc := MustParse("seed(7) delay(link=*, alpha=10µs, jitter=100µs) loss(link=*, p=0.3, resend=1ms) dup(link=*, p=0.3) reorder(link=*, p=0.3)")
	m1 := NewMesh(sc, 4, nil)
	m2 := NewMesh(sc, 4, nil)
	for i := 0; i < 200; i++ {
		d1, dup1, hold1 := m1.sendPlan(0, 1, 1024)
		d2, dup2, hold2 := m2.sendPlan(0, 1, 1024)
		if d1 != d2 || dup1 != dup2 || hold1 != hold2 {
			t.Fatalf("draw %d diverged: (%v %v %v) vs (%v %v %v)", i, d1, dup1, hold1, d2, dup2, hold2)
		}
	}
	// Streams must differ per link.
	d01, _, _ := m1.sendPlan(0, 1, 1024)
	d23, _, _ := m1.sendPlan(2, 3, 1024)
	if d01 == d23 {
		t.Log("per-link draws coincided once (possible but unlikely); not failing")
	}
}

// ringBody runs a few allreduces and an allgatherv and checks the values, the
// workload the fault-equivalence tests reuse.
func ringBody(steps, n int) func(c *comm.Communicator) error {
	return func(c *comm.Communicator) error {
		p, r := c.Size(), c.Rank()
		for s := 0; s < steps; s++ {
			v := make([]float32, n)
			for i := range v {
				v[i] = float32(r + s + i)
			}
			if err := c.AllreduceMean(v, comm.AlgoAuto); err != nil {
				return err
			}
			for i := range v {
				want := float32(s+i) + float32(p-1)/2
				if math.Abs(float64(v[i]-want)) > 1e-5 {
					return fmt.Errorf("rank %d step %d: v[%d]=%v want %v", r, s, i, v[i], want)
				}
			}
			in := make([]float32, r+1) // variable length per rank
			for i := range in {
				in[i] = float32(r)
			}
			out, lens, err := c.AllgatherV(in)
			if err != nil {
				return err
			}
			for i, l := range lens {
				if l != i+1 {
					return fmt.Errorf("rank %d: lens[%d]=%d", r, i, l)
				}
			}
			if len(out) != p*(p+1)/2 {
				return fmt.Errorf("rank %d: out len %d", r, len(out))
			}
		}
		return nil
	}
}

func TestRecoverableFaultsPreserveCollectives(t *testing.T) {
	scenarios := []string{
		"",
		"delay(link=*, alpha=20µs, jitter=30µs)",
		"dup(link=*, p=0.4)",
		"reorder(link=*, p=0.4)",
		"dup(link=*, p=0.3) reorder(link=*, p=0.3) loss(link=*, p=0.1, resend=100µs)",
		"straggler(rank=1, x2)",
		"degrade(rank=1, after=2, factor=3, ramp=2)",
		"flap(rank=1, period=20ms, duty=0.7)",
		"partition(groups=0-1|2-3, after=5ms, dur=10ms)",
	}
	for _, src := range scenarios {
		src := src
		t.Run(strings.SplitN(src+"(", "(", 2)[0], func(t *testing.T) {
			t.Parallel()
			sc := MustParse(src)
			if !sc.Recoverable() {
				t.Fatalf("scenario %q should be recoverable", src)
			}
			if err := RunGroup(sc, 4, ringBody(6, 512)); err != nil {
				t.Fatalf("scenario %q: %v", src, err)
			}
		})
	}
}

func TestRecoverableFaultsOverTCP(t *testing.T) {
	sc := MustParse("dup(link=*, p=0.3) reorder(link=*, p=0.3) delay(link=*, alpha=10µs)")
	if err := RunGroupTCP(sc, 3, ringBody(4, 256)); err != nil {
		t.Fatal(err)
	}
}

func TestDegradeFactorRamp(t *testing.T) {
	r := Rule{Kind: RuleDegrade, Rank: 1, Step: 4, Factor: 5, Ramp: 4}
	for _, tc := range []struct {
		step int
		want float64
	}{
		{0, 1}, {3, 1}, // before the onset
		{4, 2}, {5, 3}, {6, 4}, // linear ramp: 1 + 4*(k/4)
		{7, 5}, {20, 5}, // held at full factor
	} {
		if got := r.degradeFactor(tc.step); got != tc.want {
			t.Errorf("degradeFactor(step=%d) = %v, want %v", tc.step, got, tc.want)
		}
	}
	// Zero ramp is a step function; a negative onset means the ramp began in
	// an earlier elastic segment and may already be complete.
	r2 := Rule{Kind: RuleDegrade, Rank: 1, Step: -10, Factor: 3, Ramp: 4}
	if got := r2.degradeFactor(0); got != 3 {
		t.Errorf("rebased degrade at step 0 = %v, want full factor 3", got)
	}
	r3 := Rule{Kind: RuleDegrade, Rank: 1, Step: 2, Factor: 3, Ramp: 0}
	if got := r3.degradeFactor(2); got != 3 {
		t.Errorf("step-function degrade = %v, want 3", got)
	}
}

func TestDegradeSlowsSendsAfterOnset(t *testing.T) {
	sc := MustParse("degrade(rank=1, after=2, factor=8, ramp=0)")
	m := NewMesh(sc, 3, nil)
	m.steps[1].Store(1) // current 0-based step 0
	before, _, _ := m.sendPlan(0, 1, 1024)
	m.steps[1].Store(3) // current step 2: the degrade fires
	after, _, _ := m.sendPlan(0, 1, 1024)
	if before != 0 {
		t.Errorf("pre-onset delay %v, want none", before)
	}
	if after < 8*stragglerFloor {
		t.Errorf("post-onset delay %v, want >= 8x the straggler floor", after)
	}
	if unrelated, _, _ := m.sendPlan(0, 2, 1024); unrelated != 0 {
		t.Errorf("link not touching the degraded rank delayed by %v", unrelated)
	}
}

func TestBackupMasksSlowdown(t *testing.T) {
	sc := MustParse("straggler(rank=1, x4) degrade(rank=2, after=0, factor=4, ramp=0)")
	sc.Backup = []int{1, 2}
	m := NewMesh(sc, 3, nil)
	m.steps[1].Store(1)
	m.steps[2].Store(1)
	for _, dst := range []int{1, 2} {
		if d, _, _ := m.sendPlan(0, dst, 1024); d != 0 {
			t.Errorf("backed-up rank %d still slowed by %v", dst, d)
		}
	}
	// Without the backup the same link is slow.
	sc2 := MustParse("straggler(rank=1, x4)")
	m2 := NewMesh(sc2, 3, nil)
	if d, _, _ := m2.sendPlan(0, 1, 1024); d < 4*stragglerFloor {
		t.Errorf("un-backed straggler delay %v, want >= 4x floor", d)
	}
}

// stepBody advances the step counter then allreduces, like one training step.
func stepBody(steps, n int) func(c *comm.Communicator) error {
	return func(c *comm.Communicator) error {
		v := make([]float32, n)
		for s := 0; s < steps; s++ {
			c.AdvanceStep()
			for i := range v {
				v[i] = 1
			}
			if err := c.AllreduceMean(v, comm.AlgoAuto); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestCrashFailsFastWithPeerError(t *testing.T) {
	sc := MustParse("deadline(1s) crash(rank=1, step=2)")
	start := time.Now()
	err := RunGroup(sc, 3, stepBody(8, 64))
	if err == nil {
		t.Fatal("crash scenario completed without error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("crash took %v to surface (deadline 1s)", elapsed)
	}
	var pe *comm.PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("error chain has no *comm.PeerError: %v", err)
	}
	if !strings.Contains(err.Error(), "rank") {
		t.Fatalf("joined error does not name a rank: %v", err)
	}
}

func TestCrashOverTCPFailsFast(t *testing.T) {
	sc := MustParse("deadline(1s) crash(rank=1, step=1)")
	start := time.Now()
	err := RunGroupTCP(sc, 3, stepBody(6, 64))
	if err == nil {
		t.Fatal("TCP crash scenario completed without error")
	}
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Fatalf("TCP crash took %v to surface", elapsed)
	}
}

func TestStallFailsWithinDeadline(t *testing.T) {
	sc := MustParse("deadline(300ms) stall(rank=2, step=1)")
	start := time.Now()
	err := RunGroup(sc, 3, stepBody(6, 64))
	if err == nil {
		t.Fatal("stall scenario completed without error")
	}
	// The first blocked collective must escape within ~one deadline, plus
	// teardown slack.
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stall took %v to surface (deadline 300ms)", elapsed)
	}
	var pe *comm.PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("error chain has no *comm.PeerError: %v", err)
	}
}

func TestInactiveScenarioUsesBareFabric(t *testing.T) {
	sc := MustParse("")
	if sc.Active() {
		t.Fatal("empty scenario must be inactive")
	}
	if err := RunGroup(sc, 2, ringBody(2, 128)); err != nil {
		t.Fatal(err)
	}
}

func TestTransientErrorRetriedByCommunicator(t *testing.T) {
	// flapBase fails the first two sends per (to,tag) with a transient
	// error; the communicator's retry policy must absorb them.
	f := comm.NewInprocFabric(2)
	defer f.Shutdown()
	errs := RunPair(t, f, 2)
	if errs != nil {
		t.Fatal(errs)
	}
}

// RunPair exercises retry against a deterministic failing wrapper.
func RunPair(t *testing.T, f *comm.InprocFabric, failures int) error {
	t.Helper()
	done := make(chan error, 2)
	for r := 0; r < 2; r++ {
		go func(r int) {
			base := f.Transport(r)
			c := comm.NewCommunicator(&flakyTransport{Transport: base, failEvery: failures})
			c.SetRetry(comm.RetryPolicy{Attempts: failures + 2, Backoff: 100 * time.Microsecond})
			v := []float32{float32(r + 1)}
			if err := c.AllreduceSum(v, comm.AlgoRing); err != nil {
				done <- err
				return
			}
			if v[0] != 3 {
				done <- fmt.Errorf("rank %d: sum %v want 3", r, v[0])
				return
			}
			done <- nil
		}(r)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			return err
		}
	}
	return nil
}

// flakyTransport fails the first failEvery attempts of every send with a
// transient PeerError, then lets it through.
type flakyTransport struct {
	comm.Transport
	failEvery int
	calls     int
}

func (t *flakyTransport) Send(to, tag int, data []float32) error {
	t.calls++
	if t.calls%(t.failEvery+1) != 0 {
		return &comm.PeerError{Rank: to, Op: "send", Transient: true, Err: errLinkDown}
	}
	return t.Transport.Send(to, tag, data)
}
