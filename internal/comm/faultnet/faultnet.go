// Package faultnet injects seeded, per-link, deterministic faults into any
// comm.Transport — the inproc fabric and the tcpnet mesh alike — so the
// failure contract of the comm layer (I/O deadlines, transient-error retry,
// fail-fast joined errors) can be tested without a real degraded network.
//
// A Mesh holds the shared fault state of one rank group: per-link seeded RNG
// streams (tensor.RNG), per-rank step counters and crash/stall flags, and
// the reorder holdback machinery. Each rank wraps its base transport with
// Mesh.Transport; every Send then passes through the scenario's rules:
//
//   - delay/bw/loss rules synchronously sleep the sender (α + β·bytes +
//     jitter, bandwidth-cap β, loss-driven resend delay), multiplied for
//     ranks under a straggler rule (step function) or a degrade rule (linear
//     ramp to the factor, driven by the rank's step counter) — modelling wire
//     time as occupancy of the sending side, which is what makes the injected
//     slowdown comparable to the netsim α–β price laws. Ranks listed in
//     Scenario.Backup are exempt from both: a warm clone's clean stream wins
//     the race, so the mesh models the winner.
//   - dup rules legally duplicate a message: payloads gain a one-element
//     meta header announcing the duplicate and the receiver swallows it, so
//     collectives observe exactly-once delivery over an at-least-once link.
//   - reorder rules legally reorder: a held message is released a moment
//     later by a background goroutine while later *different-tag* messages
//     overtake it. Same-tag order is preserved (the Transport contract), and
//     the tag matchers in both base transports make cross-tag reordering
//     invisible to the collectives.
//   - flap/partition rules make sends on affected links fail with a
//     Transient *comm.PeerError while the link is down (a seeded duty cycle
//     or a wall-clock window) — injected before the base send, so the
//     communicator's retry policy can reissue them safely.
//   - crash/stall rules fire when the rank's step counter (advanced by
//     cluster.Train via comm.Communicator.AdvanceStep) reaches the rule's
//     step: a crash invokes the mesh's kill hook (inproc Kill / tcpnet
//     Close) so every rank observes a peer-scoped failure; a stall silently
//     drops the rank's sends, which only the peers' I/O deadlines can
//     detect.
//
// With no rules and no deadline the wrapper is never installed — the runners
// hand out the base transports untouched, so the zero-allocation steady
// state of the fault-free path is unaffected.
package faultnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"a2sgd/internal/comm"
	"a2sgd/internal/comm/tcpnet"
	"a2sgd/internal/tensor"
)

// holdWindow is how long a reordered message is held back before its
// background release; long enough for later sends to overtake it, short
// enough to never stall progress noticeably.
const holdWindow = 300 * time.Microsecond

// stragglerFloor is the minimum per-message delay a straggler rule
// multiplies when no delay rule priced the link.
const stragglerFloor = 20 * time.Microsecond

var errLinkDown = errors.New("faultnet: link down")

// Mesh is the shared fault state of one rank group under one scenario.
type Mesh struct {
	sc    *Scenario
	size  int
	start time.Time
	// kill is invoked once when a crash rule fires for a rank.
	kill func(rank int)
	// headered is set when any dup rule exists: every payload on every link
	// then carries a one-element meta header (see rawSend/unwrapRecv).
	headered bool

	steps   []atomic.Int64
	crashed []atomic.Bool
	stalled []atomic.Bool
	// backup marks ranks whose straggler/degrade slowdowns are masked
	// because a warm clone duplicates their shard (Scenario.Backup).
	backup []bool

	links []linkState // [src*size+dst]
	pool  sync.Pool   // *[]float32 headered-payload staging buffers
	wg    sync.WaitGroup
}

// linkState is the per-(src,dst) fault state: the seeded draw stream and the
// reorder holdback bookkeeping.
type linkState struct {
	mu   sync.Mutex
	cond sync.Cond
	rng  *tensor.RNG
	// heldTags counts in-flight held messages per tag: a same-tag send must
	// wait for the release to preserve per-tag FIFO, while different tags
	// overtake freely (that is the reorder).
	heldTags map[int]int
	// asyncErr is the sticky error of a failed background release.
	asyncErr error
}

// NewMesh builds the fault state for a size-rank group. kill, when non-nil,
// is called exactly once per crashing rank (inproc: fabric.Kill; tcpnet:
// the rank transport's Close).
func NewMesh(sc *Scenario, size int, kill func(rank int)) *Mesh {
	m := &Mesh{
		sc: sc, size: size, start: time.Now(), kill: kill,
		steps:   make([]atomic.Int64, size),
		crashed: make([]atomic.Bool, size),
		stalled: make([]atomic.Bool, size),
		backup:  make([]bool, size),
		links:   make([]linkState, size*size),
	}
	for _, r := range sc.Backup {
		if r >= 0 && r < size {
			m.backup[r] = true
		}
	}
	m.pool.New = func() any { return new([]float32) }
	for i := range m.links {
		ls := &m.links[i]
		ls.cond.L = &ls.mu
		src, dst := i/size, i%size
		// One independent, reproducible stream per ordered link.
		ls.rng = tensor.NewRNG(sc.Seed*1_000_003 + uint64(src)*8191 + uint64(dst) + 1)
		ls.heldTags = map[int]int{}
	}
	for _, r := range sc.Rules {
		if r.Kind == RuleDup {
			m.headered = true
		}
	}
	return m
}

// Stop waits for in-flight holdback releases; call after the group joins so
// no goroutine outlives the run.
func (m *Mesh) Stop() { m.wg.Wait() }

func (m *Mesh) link(src, dst int) *linkState { return &m.links[src*m.size+dst] }

// Transport wraps one rank's base transport with the mesh's fault rules.
func (m *Mesh) Transport(rank int, base comm.Transport) comm.Transport {
	return &transport{m: m, rank: rank, base: base}
}

// linkDown reports the transient link-down error of an active flap window or
// partition interval covering (src,dst), or nil.
func (m *Mesh) linkDown(src, dst int) error {
	now := time.Since(m.start)
	for i := range m.sc.Rules {
		r := &m.sc.Rules[i]
		switch r.Kind {
		case RuleFlap:
			if r.Rank == src || r.Rank == dst {
				if now%r.Period >= time.Duration(float64(r.Period)*r.Duty) {
					return &comm.PeerError{Rank: dst, Op: "send", Transient: true,
						Err: fmt.Errorf("%w (flapping rank %d)", errLinkDown, r.Rank)}
				}
			}
		case RulePartition:
			if now >= r.After && now < r.After+r.Dur && crossesPartition(r.Groups, src, dst) {
				return &comm.PeerError{Rank: dst, Op: "send", Transient: true,
					Err: fmt.Errorf("%w (partition)", errLinkDown)}
			}
		}
	}
	return nil
}

// crossesPartition reports whether src and dst sit on different sides; ranks
// not listed in any group are unaffected.
func crossesPartition(groups [][]int, src, dst int) bool {
	side := func(rank int) int {
		for i, g := range groups {
			for _, r := range g {
				if r == rank {
					return i
				}
			}
		}
		return -1
	}
	a, b := side(src), side(dst)
	return a >= 0 && b >= 0 && a != b
}

// sendPlan evaluates the probabilistic rules for one message on (src,dst)
// under the link's seeded stream: the injected delay, whether to duplicate
// and whether to hold back for reordering. Rule evaluation order is fixed,
// and draws happen only on matching links, so the k-th message on a link
// sees the same fates in every run of the scenario.
func (m *Mesh) sendPlan(src, dst, nBytes int) (d time.Duration, dup, hold bool) {
	ls := m.link(src, dst)
	ls.mu.Lock()
	defer ls.mu.Unlock()
	var sec float64
	for i := range m.sc.Rules {
		r := &m.sc.Rules[i]
		switch r.Kind {
		case RuleDelay:
			if r.Link.Matches(src, dst) {
				sec += r.Alpha.Seconds() + r.Beta*float64(nBytes)
				if r.Jitter > 0 {
					sec += r.Jitter.Seconds() * ls.rng.Float64()
				}
			}
		case RuleBandwidth:
			if r.Link.Matches(src, dst) {
				sec += r.Beta * float64(nBytes)
			}
		case RuleLoss:
			if r.Link.Matches(src, dst) && ls.rng.Float64() < r.P {
				sec += r.Resend.Seconds()
			}
		case RuleDup:
			if r.Link.Matches(src, dst) && ls.rng.Float64() < r.P {
				dup = true
			}
		case RuleReorder:
			if r.Link.Matches(src, dst) && ls.rng.Float64() < r.P {
				hold = true
			}
		}
	}
	for i := range m.sc.Rules {
		r := &m.sc.Rules[i]
		if r.Rank < 0 || (r.Rank != src && r.Rank != dst) {
			continue
		}
		if m.backup[r.Rank] {
			// A warm backup clone duplicates this rank's shard; the clean
			// clone's stream wins the race, so the slowdown is masked.
			continue
		}
		var f float64
		switch r.Kind {
		case RuleStraggler:
			f = r.Factor
		case RuleDegrade:
			f = r.degradeFactor(int(m.steps[r.Rank].Load()) - 1)
		default:
			continue
		}
		if f <= 1 {
			continue
		}
		if floor := stragglerFloor.Seconds(); sec < floor {
			sec = floor
		}
		sec *= f
	}
	if hold {
		// A held duplicate would entangle the release with the swallow
		// protocol; duplication wins, reorder skips this message.
		hold = !dup
	}
	return time.Duration(sec * float64(time.Second)), dup, hold
}

// degradeFactor is the rule's slowdown at a 0-based step: 1 before Step,
// ramping linearly to Factor over Ramp steps, then holding. A negative Step
// means the ramp began in an earlier elastic segment and may already be at
// full factor.
func (r *Rule) degradeFactor(step int) float64 {
	if step < r.Step {
		return 1
	}
	if r.Ramp <= 0 {
		return r.Factor
	}
	frac := float64(step-r.Step+1) / float64(r.Ramp)
	if frac > 1 {
		frac = 1
	}
	return 1 + (r.Factor-1)*frac
}

// transport is one rank's fault-injecting view of the base transport.
type transport struct {
	m    *Mesh
	rank int
	base comm.Transport
}

func (t *transport) Rank() int { return t.base.Rank() }
func (t *transport) Size() int { return t.base.Size() }

// Close forwards to the base transport.
func (t *transport) Close() error { return t.base.Close() }

// SendIsBuffered forwards the base capability: injected delays block the
// sender but never require the receiver's participation, and a held message
// completes its Send immediately, so the wrapper preserves buffered
// semantics.
func (t *transport) SendIsBuffered() bool {
	if bt, ok := t.base.(comm.BufferedTransport); ok {
		return bt.SendIsBuffered()
	}
	return false
}

// AdvanceStep implements comm.Stepper: it advances this rank's step counter
// and fires any crash/stall rule whose step has arrived.
func (t *transport) AdvanceStep() {
	step := int(t.m.steps[t.rank].Add(1)) - 1
	for i := range t.m.sc.Rules {
		r := &t.m.sc.Rules[i]
		if r.Rank != t.rank || r.Step < 0 || step < r.Step {
			continue
		}
		switch r.Kind {
		case RuleCrash, RulePreempt:
			// A preemption is a crash at the transport level; only the elastic
			// supervisor treats the two differently (preempted ranks rejoin).
			if !t.m.crashed[t.rank].Swap(true) && t.m.kill != nil {
				t.m.kill(t.rank)
			}
		case RuleStall:
			t.m.stalled[t.rank].Store(true)
		}
	}
}

func (t *transport) Send(to, tag int, data []float32) error {
	m := t.m
	if m.crashed[t.rank].Load() {
		return &comm.PeerError{Rank: t.rank, Op: "send", Err: comm.ErrPeerDead}
	}
	if m.stalled[t.rank].Load() {
		// A stalled rank has gone dark: its sends vanish without error, so
		// only the peers' I/O deadlines can notice.
		return nil
	}
	if m.crashed[to].Load() {
		return &comm.PeerError{Rank: to, Op: "send", Err: comm.ErrPeerDead}
	}
	if err := m.linkDown(t.rank, to); err != nil {
		return err
	}
	d, dup, hold := m.sendPlan(t.rank, to, 4*len(data))
	if d > 0 {
		time.Sleep(d)
	}
	return m.deliver(t.base, t.rank, to, tag, data, dup, hold)
}

// deliver routes one message through the holdback machinery: same-tag sends
// wait for any held predecessor (per-tag FIFO is part of the Transport
// contract), held messages return immediately and are released a moment
// later, and everything else goes straight to rawSend.
func (m *Mesh) deliver(base comm.Transport, src, to, tag int, data []float32, dup, hold bool) error {
	ls := m.link(src, to)
	ls.mu.Lock()
	if ls.asyncErr != nil {
		err := ls.asyncErr
		ls.mu.Unlock()
		return err
	}
	for ls.heldTags[tag] > 0 {
		ls.cond.Wait()
	}
	if hold {
		cp := make([]float32, len(data))
		copy(cp, data)
		ls.heldTags[tag]++
		ls.mu.Unlock()
		m.wg.Add(1)
		go m.releaseHeld(ls, base, to, tag, cp)
		return nil
	}
	ls.mu.Unlock()
	return m.rawSend(base, to, tag, data, dup)
}

// releaseHeld ships a held message after the hold window. Errors stick to
// the link and surface on its next send — the message must not be silently
// lost, or the receiver would hang without a fault to blame.
func (m *Mesh) releaseHeld(ls *linkState, base comm.Transport, to, tag int, data []float32) {
	defer m.wg.Done()
	time.Sleep(holdWindow)
	err := m.rawSend(base, to, tag, data, false)
	ls.mu.Lock()
	if ls.heldTags[tag]--; ls.heldTags[tag] == 0 {
		delete(ls.heldTags, tag)
	}
	if err != nil && ls.asyncErr == nil {
		ls.asyncErr = err
	}
	ls.cond.Broadcast()
	ls.mu.Unlock()
}

// rawSend performs the base send, prefixing the meta header and emitting the
// duplicate frame when the mesh is headered. The duplicate is sent
// back-to-back with the original, so per-tag stream order stays intact.
func (m *Mesh) rawSend(base comm.Transport, to, tag int, data []float32, dup bool) error {
	if !m.headered {
		return base.Send(to, tag, data)
	}
	bp := m.pool.Get().(*[]float32)
	defer m.pool.Put(bp)
	if cap(*bp) < len(data)+1 {
		*bp = make([]float32, len(data)+1)
	}
	buf := (*bp)[:len(data)+1]
	meta := uint32(0)
	if dup {
		meta = 1
	}
	buf[0] = comm.Float32FromIndex(meta)
	copy(buf[1:], data)
	if err := base.Send(to, tag, buf); err != nil {
		return err
	}
	if dup {
		return base.Send(to, tag, buf)
	}
	return nil
}

func (t *transport) Recv(from, tag int, data []float32) error {
	m := t.m
	if m.crashed[t.rank].Load() {
		return &comm.PeerError{Rank: t.rank, Op: "recv", Err: comm.ErrPeerDead}
	}
	if !m.headered {
		return t.base.Recv(from, tag, data)
	}
	bp := m.pool.Get().(*[]float32)
	defer m.pool.Put(bp)
	if cap(*bp) < len(data)+1 {
		*bp = make([]float32, len(data)+1)
	}
	buf := (*bp)[:len(data)+1]
	if err := t.base.Recv(from, tag, buf); err != nil {
		return err
	}
	dup := comm.Float32ToIndex(buf[0]) == 1
	copy(data, buf[1:])
	if dup {
		// Swallow the duplicate frame (same tag, sent immediately after the
		// original); its meta byte is ignored.
		return t.base.Recv(from, tag, buf)
	}
	return nil
}

// Active reports whether the scenario actually changes anything — false for
// an empty rule set with no deadline, in which case the runners skip the
// wrapper entirely and the fault-free hot path keeps its zero-allocation
// steady state.
func (s *Scenario) Active() bool {
	return s != nil && (len(s.Rules) > 0 || s.Deadline > 0)
}

// GroupRunner returns a cluster.Config.GroupRunner that runs the body under
// this scenario over the inproc fabric (tcp=false) or a loopback TCP mesh
// (tcp=true): transports are wrapped with the mesh's fault rules, the
// scenario's deadline and retry policy are installed, per-rank failures are
// joined into one error, and the first failure tears the fabric down so no
// rank can hang on a dead peer.
func GroupRunner(sc *Scenario, tcp bool) func(size int, body func(*comm.Communicator) error) error {
	return func(size int, body func(*comm.Communicator) error) error {
		if tcp {
			return RunGroupTCP(sc, size, body)
		}
		return RunGroup(sc, size, body)
	}
}

// RunGroup runs body on one goroutine per rank over a fault-injected inproc
// fabric. Per-rank errors come back joined and rank-labelled.
func RunGroup(sc *Scenario, size int, body func(c *comm.Communicator) error) error {
	if !sc.Active() {
		return comm.RunGroup(size, body)
	}
	f := comm.NewInprocFabric(size)
	defer f.Shutdown()
	if sc.Deadline > 0 {
		f.SetIOTimeout(sc.Deadline)
	}
	m := NewMesh(sc, size, f.Kill)
	defer m.Stop()
	ts := make([]comm.Transport, size)
	for r := range ts {
		ts[r] = m.Transport(r, f.Transport(r))
	}
	return runBody(sc, ts, f.Shutdown, body)
}

// RunGroupTCP is RunGroup over a loopback TCP mesh with the scenario's
// deadline as the socket I/O timeout. A crash rule closes the crashed rank's
// transport, so peers observe real connection failures.
func RunGroupTCP(sc *Scenario, size int, body func(c *comm.Communicator) error) error {
	if !sc.Active() {
		return tcpnet.RunGroup(size, body)
	}
	ts, shutdown, err := tcpnet.NewLocalMeshConfig(size, tcpnet.Config{IOTimeout: sc.Deadline})
	if err != nil {
		return err
	}
	defer shutdown()
	m := NewMesh(sc, size, func(rank int) { _ = ts[rank].Close() })
	defer m.Stop()
	wrapped := make([]comm.Transport, size)
	for r := range wrapped {
		wrapped[r] = m.Transport(r, ts[r])
	}
	return runBody(sc, wrapped, shutdown, body)
}

// runBody launches body per rank over the wrapped transports, installs the
// scenario retry policy, joins rank-labelled errors and fail-fasts the whole
// group on the first failure via teardown.
func runBody(sc *Scenario, ts []comm.Transport, teardown func(), body func(c *comm.Communicator) error) error {
	errs := make([]error, len(ts))
	var once sync.Once
	var wg sync.WaitGroup
	for r := range ts {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := comm.NewCommunicator(ts[r])
			c.SetRetry(sc.Retry)
			if err := body(c); err != nil {
				errs[r] = fmt.Errorf("rank %d: %w", r, err)
				// Unblock the peers: without this, survivors of a crashed or
				// diverged rank would sit in Recv until their deadline (or
				// forever with none configured). A cooperative stop
				// (comm.ErrGroupStop) is the exception — every rank is about
				// to return from the same boundary, and tearing down here
				// would race the stragglers' pause barrier.
				if !errors.Is(err, comm.ErrGroupStop) {
					once.Do(teardown)
				}
			}
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}
