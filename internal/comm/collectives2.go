package comm

// Additional MPI-style collectives beyond the core allreduce/allgather set:
// ReduceScatter (the first phase of ring allreduce, exposed directly),
// Gather and Scatter (rooted data movement), and AlltoAll (full personalized
// exchange). Horovod-style runtimes use these for tensor fusion and sharded
// optimizers; they round out the substrate and are exercised by the
// bucketed-fusion path in this package.

const (
	tagRedScat = 9 << 16
	tagScatter = 10 << 16
	tagGatherR = 11 << 16
	tagA2A     = 12 << 16
)

// ReduceScatter sums v across all ranks and leaves each rank holding only
// its segment of the result: rank r receives sum(v)[segBounds(r)] in
// out (which must have the length of segment r). Implemented as the
// reduce-scatter phase of the ring algorithm: P−1 steps of n/P elements.
func (c *Communicator) ReduceScatter(v []float32, out []float32) error {
	p, r := c.Size(), c.Rank()
	n := len(v)
	lo, hi := segBounds(n, p, r)
	if len(out) != hi-lo {
		return ErrLengthMismatch
	}
	if p == 1 {
		copy(out, v)
		return nil
	}
	// Work on a copy so the caller's v is not clobbered.
	work := make([]float32, n)
	copy(work, v)
	next := (r + 1) % p
	prev := (r - 1 + p) % p
	buf := make([]float32, (n+p-1)/p+1)
	for s := 0; s < p-1; s++ {
		sendSeg := (r - s + p) % p
		recvSeg := (r - s - 1 + p) % p
		slo, shi := segBounds(n, p, sendSeg)
		rlo, rhi := segBounds(n, p, recvSeg)
		rb := buf[:rhi-rlo]
		if err := c.sendRecv(next, tagRedScat+s, work[slo:shi], prev, tagRedScat+s, rb); err != nil {
			return err
		}
		for i := range rb {
			work[rlo+i] += rb[i]
		}
	}
	// After P−1 steps rank r holds the full sum of segment (r+1) mod p; we
	// want rank r to own segment r, so rotate once more.
	ownSeg := (r + 1) % p
	olo, ohi := segBounds(n, p, ownSeg)
	if ownSeg == r {
		copy(out, work[olo:ohi])
		return nil
	}
	// Send my finished segment to its owner (rank ownSeg−? ). Rank r holds
	// segment (r+1)%p which belongs to rank (r+1)%p — a single shift.
	dst := ownSeg
	src := (r - 1 + p) % p
	return c.sendRecv(dst, tagRedScat+p, work[olo:ohi], src, tagRedScat+p, out)
}

// Gather collects every rank's equal-length contribution at root: root's
// out (length len(in)·P) receives rank i's block at offset i·len(in).
// Non-root ranks may pass nil out. Flat algorithm: P−1 point-to-point
// messages into the root.
func (c *Communicator) Gather(in []float32, out []float32, root int) error {
	p, r := c.Size(), c.Rank()
	if root < 0 || root >= p {
		return ErrLengthMismatch
	}
	if r == root {
		if len(out) != len(in)*p {
			return ErrLengthMismatch
		}
		copy(out[r*len(in):(r+1)*len(in)], in)
		for src := 0; src < p; src++ {
			if src == root {
				continue
			}
			if err := c.recv(src, tagGatherR+src, out[src*len(in):(src+1)*len(in)]); err != nil {
				return err
			}
		}
		return nil
	}
	return c.send(root, tagGatherR+r, in)
}

// Scatter distributes root's blocks: rank i receives in[i·len(out) :
// (i+1)·len(out)] into out. Non-root ranks may pass nil in.
func (c *Communicator) Scatter(in []float32, out []float32, root int) error {
	p, r := c.Size(), c.Rank()
	if root < 0 || root >= p {
		return ErrLengthMismatch
	}
	if r == root {
		if len(in) != len(out)*p {
			return ErrLengthMismatch
		}
		copy(out, in[r*len(out):(r+1)*len(out)])
		for dst := 0; dst < p; dst++ {
			if dst == root {
				continue
			}
			if err := c.send(dst, tagScatter+dst, in[dst*len(out):(dst+1)*len(out)]); err != nil {
				return err
			}
		}
		return nil
	}
	return c.recv(root, tagScatter+r, out)
}

// AlltoAll performs a full personalized exchange: rank r sends
// in[i·blk : (i+1)·blk] to rank i and receives rank i's r-th block into
// out[i·blk : (i+1)·blk]. in and out must both have length blk·P.
// Pairwise-exchange algorithm: P−1 steps with partner r XOR-free rotation.
func (c *Communicator) AlltoAll(in, out []float32, blk int) error {
	p, r := c.Size(), c.Rank()
	if len(in) != blk*p || len(out) != blk*p {
		return ErrLengthMismatch
	}
	copy(out[r*blk:(r+1)*blk], in[r*blk:(r+1)*blk])
	for s := 1; s < p; s++ {
		sendTo := (r + s) % p
		recvFrom := (r - s + p) % p
		if err := c.sendRecv(
			sendTo, tagA2A+s, in[sendTo*blk:(sendTo+1)*blk],
			recvFrom, tagA2A+s, out[recvFrom*blk:(recvFrom+1)*blk],
		); err != nil {
			return err
		}
	}
	return nil
}

// FusedAllreduceMean performs Horovod-style tensor fusion: the provided
// buckets are concatenated into one flat buffer, averaged with a single
// allreduce, and scattered back. Small tensors thereby share one collective
// instead of paying per-tensor latency.
func (c *Communicator) FusedAllreduceMean(buckets [][]float32, algo AllreduceAlgorithm) error {
	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	flat := make([]float32, total)
	off := 0
	for _, b := range buckets {
		copy(flat[off:], b)
		off += len(b)
	}
	if err := c.AllreduceMean(flat, algo); err != nil {
		return err
	}
	off = 0
	for _, b := range buckets {
		copy(b, flat[off:off+len(b)])
		off += len(b)
	}
	return nil
}
