package comm

import (
	"fmt"
	"testing"
)

// TestIAllreduceMeanMatchesBlocking posts several nonblocking allreduces per
// rank and checks the results are bitwise identical to the blocking path.
func TestIAllreduceMeanMatchesBlocking(t *testing.T) {
	const p, nBufs, n = 4, 6, 500
	// Blocking reference.
	want := make([][]float32, nBufs)
	err := RunGroup(p, func(c *Communicator) error {
		for b := 0; b < nBufs; b++ {
			v := testVec(c.Rank(), b, n)
			if err := c.AllreduceMean(v, AlgoAuto); err != nil {
				return err
			}
			if c.Rank() == 0 {
				want[b] = v
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Nonblocking: post all, then wait all.
	err = RunGroup(p, func(c *Communicator) error {
		bufs := make([][]float32, nBufs)
		reqs := make([]Request, nBufs)
		for b := 0; b < nBufs; b++ {
			bufs[b] = testVec(c.Rank(), b, n)
			reqs[b] = c.IAllreduceMean(bufs[b], AlgoAuto)
		}
		if err := WaitAll(reqs); err != nil {
			return err
		}
		for b := 0; b < nBufs; b++ {
			for i, x := range bufs[b] {
				if x != want[b][i] {
					return fmt.Errorf("rank %d buf %d elem %d: %v != %v",
						c.Rank(), b, i, x, want[b][i])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func testVec(rank, buf, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rank*1000+buf*100+i%97) * 0.001
	}
	return v
}

func TestIAllgather(t *testing.T) {
	const p, n = 3, 8
	err := RunGroup(p, func(c *Communicator) error {
		in := make([]float32, n)
		for i := range in {
			in[i] = float32(c.Rank()*100 + i)
		}
		out := make([]float32, n*p)
		// Interleave with a second operation to exercise FIFO ordering.
		sum := []float32{float32(c.Rank())}
		r1 := c.IAllgather(in, out)
		r2 := c.IAllreduceSum(sum, AlgoAuto)
		if err := r1.Wait(); err != nil {
			return err
		}
		if err := r2.Wait(); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			for i := 0; i < n; i++ {
				if out[r*n+i] != float32(r*100+i) {
					return fmt.Errorf("rank %d: out[%d][%d] = %v", c.Rank(), r, i, out[r*n+i])
				}
			}
		}
		if want := float32(p * (p - 1) / 2); sum[0] != want {
			return fmt.Errorf("rank %d: sum %v want %v", c.Rank(), sum[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWaitIdempotent checks that Wait can be called repeatedly.
func TestWaitIdempotent(t *testing.T) {
	err := RunGroup(2, func(c *Communicator) error {
		v := []float32{1, 2, 3}
		req := c.IAllreduceMean(v, AlgoAuto)
		for i := 0; i < 3; i++ {
			if err := req.Wait(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAsyncErrorPropagates checks a failing posted operation surfaces its
// error through Wait on a shut-down fabric.
func TestAsyncErrorPropagates(t *testing.T) {
	f := NewInprocFabric(2)
	cs := f.Communicators()
	f.Shutdown()
	req := cs[0].IAllreduceMean(make([]float32, 16), AlgoAuto)
	if err := req.Wait(); err == nil {
		t.Fatal("expected error on closed fabric")
	}
}

// TestAsyncWorkerParks posts, waits, and posts again: the progress worker
// must restart cleanly after draining its queue.
func TestAsyncWorkerParks(t *testing.T) {
	err := RunGroup(2, func(c *Communicator) error {
		for round := 0; round < 3; round++ {
			v := []float32{float32(c.Rank() + round)}
			if err := c.IAllreduceSum(v, AlgoAuto).Wait(); err != nil {
				return err
			}
			if want := float32(1 + 2*round); v[0] != want {
				return fmt.Errorf("round %d: %v want %v", round, v[0], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
