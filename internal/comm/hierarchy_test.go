package comm

import (
	"math"
	"testing"
)

// hierVec builds rank r's deterministic test vector.
func hierVec(rank, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(math.Sin(float64(rank*n+i))) * float32(rank+1)
	}
	return v
}

// hierMean computes the exact across-rank mean in float64.
func hierMean(p, n int) []float32 {
	out := make([]float32, n)
	for i := 0; i < n; i++ {
		var s float64
		for r := 0; r < p; r++ {
			s += float64(hierVec(r, n)[i])
		}
		out[i] = float32(s / float64(p))
	}
	return out
}

func TestSplitGroups(t *testing.T) {
	const p = 6
	err := RunGroup(p, func(c *Communicator) error {
		// Even/odd split, keys reversing the rank order inside each group.
		color := c.Rank() % 2
		g, err := c.Split(color, p-c.Rank())
		if err != nil {
			return err
		}
		if g.Size() != p/2 {
			t.Errorf("rank %d: group size %d, want %d", c.Rank(), g.Size(), p/2)
		}
		// Keys reverse the order: global rank 4 (key 2) is group rank 0 of
		// the even group, rank 0 (key 6) is its last.
		wantRank := (p - 1 - c.Rank()) / 2
		if g.Rank() != wantRank {
			t.Errorf("rank %d: group rank %d, want %d", c.Rank(), g.Rank(), wantRank)
		}
		// The group is a real communicator: sum group members' global ranks.
		v := []float32{float32(c.Rank())}
		if err := g.AllreduceSum(v, AlgoAuto); err != nil {
			return err
		}
		want := float32(0 + 2 + 4)
		if color == 1 {
			want = 1 + 3 + 5
		}
		if v[0] != want {
			t.Errorf("rank %d: group sum %v, want %v", c.Rank(), v[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	err := RunGroup(4, func(c *Communicator) error {
		color := ColorUndefined
		if c.Rank()%2 == 0 {
			color = 0
		}
		g, err := c.Split(color, c.Rank())
		if err != nil {
			return err
		}
		if color == ColorUndefined && g != nil {
			t.Errorf("rank %d: expected nil group", c.Rank())
		}
		if color == 0 && (g == nil || g.Size() != 2) {
			t.Errorf("rank %d: bad leader group %+v", c.Rank(), g)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHierarchicalAllreduceMeanMatchesFlat(t *testing.T) {
	const n = 1000
	for _, tc := range []struct{ p, rpn int }{
		{4, 2}, {8, 2}, {8, 4}, {6, 4}, {7, 3}, {5, 5}, {9, 2},
	} {
		want := hierMean(tc.p, n)
		err := RunGroup(tc.p, func(c *Communicator) error {
			if err := c.SetTopology(tc.rpn); err != nil {
				return err
			}
			v := hierVec(c.Rank(), n)
			if err := c.AllreduceMean(v, AlgoAuto); err != nil {
				return err
			}
			for i := range v {
				if d := math.Abs(float64(v[i] - want[i])); d > 1e-5 {
					t.Errorf("p=%d rpn=%d rank %d: mean[%d]=%v want %v (|Δ|=%g)",
						tc.p, tc.rpn, c.Rank(), i, v[i], want[i], d)
					break
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d rpn=%d: %v", tc.p, tc.rpn, err)
		}
	}
}

func TestHierarchicalAllreduceDeterministic(t *testing.T) {
	const p, rpn, n = 6, 2, 512
	run := func() [][]float32 {
		out := make([][]float32, p)
		err := RunGroup(p, func(c *Communicator) error {
			if err := c.SetTopology(rpn); err != nil {
				return err
			}
			v := hierVec(c.Rank(), n)
			if err := c.AllreduceMean(v, AlgoRing); err != nil {
				return err
			}
			out[c.Rank()] = v
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for r := 0; r < p; r++ {
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("rank %d elem %d: %v != %v (hierarchical allreduce not deterministic)",
					r, i, a[r][i], b[r][i])
			}
		}
	}
	// All ranks must also agree bitwise with each other.
	for r := 1; r < p; r++ {
		for i := range a[0] {
			if a[r][i] != a[0][i] {
				t.Fatalf("rank %d disagrees with rank 0 at elem %d", r, i)
			}
		}
	}
}

func TestHierarchicalAllgatherMatchesFlat(t *testing.T) {
	const blk = 37
	for _, tc := range []struct{ p, rpn int }{
		{4, 2}, {8, 4}, {6, 4}, {7, 3},
	} {
		err := RunGroup(tc.p, func(c *Communicator) error {
			if err := c.SetTopology(tc.rpn); err != nil {
				return err
			}
			in := hierVec(c.Rank(), blk)
			out := make([]float32, blk*tc.p)
			if err := c.Allgather(in, out); err != nil {
				return err
			}
			for r := 0; r < tc.p; r++ {
				want := hierVec(r, blk)
				for i := 0; i < blk; i++ {
					if out[r*blk+i] != want[i] {
						t.Errorf("p=%d rpn=%d rank %d: block %d elem %d = %v, want %v",
							tc.p, tc.rpn, c.Rank(), r, i, out[r*blk+i], want[i])
						return nil
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d rpn=%d: %v", tc.p, tc.rpn, err)
		}
	}
}

func TestHierarchicalAllgatherVMatchesFlat(t *testing.T) {
	for _, tc := range []struct{ p, rpn int }{
		{4, 2}, {8, 4}, {6, 4}, {7, 3},
	} {
		err := RunGroup(tc.p, func(c *Communicator) error {
			if err := c.SetTopology(tc.rpn); err != nil {
				return err
			}
			// Rank r contributes r+1 elements (variable lengths).
			in := hierVec(c.Rank(), c.Rank()+1)
			out, lens, err := c.AllgatherV(in)
			if err != nil {
				return err
			}
			off := 0
			for r := 0; r < tc.p; r++ {
				if lens[r] != r+1 {
					t.Errorf("p=%d rpn=%d rank %d: lens[%d]=%d, want %d",
						tc.p, tc.rpn, c.Rank(), r, lens[r], r+1)
					return nil
				}
				want := hierVec(r, r+1)
				for i := range want {
					if out[off+i] != want[i] {
						t.Errorf("p=%d rpn=%d rank %d: block %d elem %d = %v, want %v",
							tc.p, tc.rpn, c.Rank(), r, i, out[off+i], want[i])
						return nil
					}
				}
				off += lens[r]
			}
			if off != len(out) {
				t.Errorf("p=%d rpn=%d: total %d != len(out) %d", tc.p, tc.rpn, off, len(out))
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d rpn=%d: %v", tc.p, tc.rpn, err)
		}
	}
}

func TestHierarchicalBroadcast(t *testing.T) {
	const n = 64
	for _, root := range []int{0, 1, 2, 5} {
		err := RunGroup(6, func(c *Communicator) error {
			if err := c.SetTopology(2); err != nil {
				return err
			}
			v := make([]float32, n)
			if c.Rank() == root {
				copy(v, hierVec(root, n))
			}
			if err := c.Broadcast(v, root); err != nil {
				return err
			}
			want := hierVec(root, n)
			for i := range v {
				if v[i] != want[i] {
					t.Errorf("root=%d rank %d: elem %d = %v, want %v", root, c.Rank(), i, v[i], want[i])
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("root=%d: %v", root, err)
		}
	}
}

func TestHierarchicalNonblockingPipeline(t *testing.T) {
	// The overlapped step loop posts collectives through Async; the
	// hierarchical schedules must compose with the progress worker.
	const p, rpn, n = 6, 3, 256
	want0 := hierMean(p, n)
	err := RunGroup(p, func(c *Communicator) error {
		if err := c.SetTopology(rpn); err != nil {
			return err
		}
		a := hierVec(c.Rank(), n)
		b := hierVec(c.Rank()+p, n)
		r1 := c.IAllreduceMean(a, AlgoAuto)
		out := make([]float32, n/4*p)
		r2 := c.IAllgather(b[:n/4], out)
		if err := WaitAll([]Request{r1, r2}); err != nil {
			return err
		}
		for i := range a {
			if d := math.Abs(float64(a[i] - want0[i])); d > 1e-5 {
				t.Errorf("rank %d: mean[%d]=%v want %v", c.Rank(), i, a[i], want0[i])
				break
			}
		}
		for r := 0; r < p; r++ {
			want := hierVec(r+p, n)
			for i := 0; i < n/4; i++ {
				if out[r*(n/4)+i] != want[i] {
					t.Errorf("rank %d: gathered block %d differs", c.Rank(), r)
					break
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetTopologyClampAndClear(t *testing.T) {
	err := RunGroup(4, func(c *Communicator) error {
		if err := c.SetTopology(16); err != nil { // clamped to one node
			return err
		}
		if got := c.Topology(); got != 4 {
			t.Errorf("topology after clamp: %d, want 4", got)
		}
		v := []float32{float32(c.Rank())}
		if err := c.AllreduceMean(v, AlgoAuto); err != nil {
			return err
		}
		if v[0] != 1.5 {
			t.Errorf("single-node mean %v, want 1.5", v[0])
		}
		if err := c.SetTopology(0); err != nil {
			return err
		}
		if got := c.Topology(); got != 0 {
			t.Errorf("topology after clear: %d, want 0", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
