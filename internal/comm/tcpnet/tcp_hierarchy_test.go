package tcpnet

import (
	"math"
	"testing"

	"a2sgd/internal/comm"
	"a2sgd/internal/tensor"
)

// TestTCPHierarchicalAllreduceMean checks that the two-level allreduce-mean
// over real sockets matches the exact float64 mean within float tolerance —
// the same contract the in-process fabric is held to.
func TestTCPHierarchicalAllreduceMean(t *testing.T) {
	const n = 1500
	for _, tc := range []struct{ p, rpn int }{
		{4, 2}, {6, 3}, {5, 2},
	} {
		ins := make([][]float32, tc.p)
		want := make([]float64, n)
		for r := 0; r < tc.p; r++ {
			rng := tensor.NewRNG(uint64(300 + r))
			v := make([]float32, n)
			rng.NormVec(v, 0, 1)
			ins[r] = v
			for i := range v {
				want[i] += float64(v[i])
			}
		}
		for i := range want {
			want[i] /= float64(tc.p)
		}
		err := runTCPGroup(t, tc.p, func(c *comm.Communicator) error {
			if err := c.SetTopology(tc.rpn); err != nil {
				return err
			}
			v := make([]float32, n)
			copy(v, ins[c.Rank()])
			if err := c.AllreduceMean(v, comm.AlgoAuto); err != nil {
				return err
			}
			for i := range v {
				if d := math.Abs(float64(v[i]) - want[i]); d > 1e-5 {
					t.Errorf("p=%d rpn=%d rank %d: mean[%d]=%v want %v (|Δ|=%g)",
						tc.p, tc.rpn, c.Rank(), i, v[i], want[i], d)
					break
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d rpn=%d: %v", tc.p, tc.rpn, err)
		}
	}
}

// TestTCPHierarchicalAllgatherV checks the two-level variable-length gather
// over real sockets: every rank must see every block in global rank order.
func TestTCPHierarchicalAllgatherV(t *testing.T) {
	const p, rpn = 6, 2
	err := runTCPGroup(t, p, func(c *comm.Communicator) error {
		if err := c.SetTopology(rpn); err != nil {
			return err
		}
		in := make([]float32, c.Rank()+2)
		for i := range in {
			in[i] = float32(c.Rank()*100 + i)
		}
		out, lens, err := c.AllgatherV(in)
		if err != nil {
			return err
		}
		off := 0
		for r := 0; r < p; r++ {
			if lens[r] != r+2 {
				t.Errorf("rank %d: lens[%d]=%d want %d", c.Rank(), r, lens[r], r+2)
				return nil
			}
			for i := 0; i < lens[r]; i++ {
				if out[off+i] != float32(r*100+i) {
					t.Errorf("rank %d: block %d elem %d = %v want %v",
						c.Rank(), r, i, out[off+i], float32(r*100+i))
					return nil
				}
			}
			off += lens[r]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
