package tcpnet

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"a2sgd/internal/comm"
	"a2sgd/internal/tensor"
)

// runTCPGroup mirrors comm.RunGroup over real sockets.
func runTCPGroup(t *testing.T, size int, body func(c *comm.Communicator) error) error {
	t.Helper()
	cs, shutdown, err := NewLocalGroup(size)
	if err != nil {
		t.Fatalf("NewLocalGroup(%d): %v", size, err)
	}
	defer shutdown()
	errs := make(chan error, size)
	var wg sync.WaitGroup
	for _, c := range cs {
		wg.Add(1)
		go func(c *comm.Communicator) {
			defer wg.Done()
			if err := body(c); err != nil {
				errs <- err
				shutdown()
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

func TestTCPAllreduceMatchesInproc(t *testing.T) {
	for _, p := range []int{2, 3, 4, 5} {
		n := 2000
		ins := make([][]float32, p)
		want := make([]float32, n)
		for r := 0; r < p; r++ {
			rng := tensor.NewRNG(uint64(100 + r))
			v := make([]float32, n)
			rng.NormVec(v, 0, 1)
			ins[r] = v
			for i := range want {
				want[i] += v[i]
			}
		}
		// Reference result through the in-process fabric.
		inprocOut := make([][]float32, p)
		var mu sync.Mutex
		if err := comm.RunGroup(p, func(c *comm.Communicator) error {
			v := append([]float32(nil), ins[c.Rank()]...)
			if err := c.AllreduceSum(v, comm.AlgoRing); err != nil {
				return err
			}
			mu.Lock()
			inprocOut[c.Rank()] = v
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// Same collective over TCP must produce bit-identical results
		// (same algorithm, same reduction order).
		err := runTCPGroup(t, p, func(c *comm.Communicator) error {
			v := append([]float32(nil), ins[c.Rank()]...)
			if err := c.AllreduceSum(v, comm.AlgoRing); err != nil {
				return err
			}
			ref := inprocOut[c.Rank()]
			for i := range v {
				if v[i] != ref[i] {
					return fmt.Errorf("rank %d elem %d: tcp %v vs inproc %v", c.Rank(), i, v[i], ref[i])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestTCPAllCollectives(t *testing.T) {
	p := 4
	err := runTCPGroup(t, p, func(c *comm.Communicator) error {
		// Allreduce (both algorithms).
		v := []float32{float32(c.Rank()), 1}
		if err := c.AllreduceSum(v, comm.AlgoRecursiveDoubling); err != nil {
			return err
		}
		if v[0] != 6 || v[1] != 4 {
			return fmt.Errorf("recdbl allreduce got %v", v)
		}
		// Allgather.
		out := make([]float32, p)
		if err := c.Allgather([]float32{float32(c.Rank() * 10)}, out); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			if out[r] != float32(r*10) {
				return fmt.Errorf("allgather got %v", out)
			}
		}
		// AllgatherV.
		in := make([]float32, c.Rank())
		gv, lens, err := c.AllgatherV(in)
		if err != nil {
			return err
		}
		if len(gv) != 0+1+2+3 || lens[3] != 3 {
			return fmt.Errorf("allgatherv got len %d lens %v", len(gv), lens)
		}
		// Broadcast.
		b := []float32{0}
		if c.Rank() == 2 {
			b[0] = 42
		}
		if err := c.Broadcast(b, 2); err != nil {
			return err
		}
		if b[0] != 42 {
			return fmt.Errorf("broadcast got %v", b[0])
		}
		// Reduce.
		rv := []float32{1}
		if err := c.Reduce(rv, 0); err != nil {
			return err
		}
		if c.Rank() == 0 && rv[0] != float32(p) {
			return fmt.Errorf("reduce got %v", rv[0])
		}
		// Barrier.
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPBitExactPayload(t *testing.T) {
	// Index bit-casting must survive the wire: NaN payloads carry index bits.
	err := runTCPGroup(t, 2, func(c *comm.Communicator) error {
		idx := uint32(0x7fc00123) // a NaN pattern if interpreted as float
		if c.Rank() == 0 {
			out := make([]float32, 2)
			return c.Allgather([]float32{comm.Float32FromIndex(idx)}, out)
		}
		out := make([]float32, 2)
		if err := c.Allgather([]float32{comm.Float32FromIndex(idx)}, out); err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			if comm.Float32ToIndex(out[i]) != idx {
				return fmt.Errorf("bit pattern corrupted: %x", comm.Float32ToIndex(out[i]))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPWorkerDeathSurfacesAsError(t *testing.T) {
	// Failure injection: one worker closes its transport mid-collective;
	// its peer must get an error, not hang.
	cs, shutdown, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	done := make(chan error, 1)
	go func() {
		v := make([]float32, 100000)
		done <- cs[0].AllreduceSum(v, comm.AlgoRing)
	}()
	// Rank 1 "dies" without participating.
	_ = cs[1].Close()
	if err := <-done; err == nil {
		t.Fatal("expected error after peer death, got nil")
	}
}

func TestTCPInvalidPeer(t *testing.T) {
	cs, shutdown, err := NewLocalGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	_ = cs
	tr := &Transport{rank: 0, size: 2}
	if err := tr.Send(0, 0, nil); err == nil {
		t.Error("self-send should error")
	}
	if err := tr.Send(5, 0, nil); err == nil {
		t.Error("out-of-range peer should error")
	}
	if err := tr.Recv(-1, 0, nil); err == nil {
		t.Error("negative peer should error")
	}
}

func TestTCPTrafficCounting(t *testing.T) {
	err := runTCPGroup(t, 2, func(c *comm.Communicator) error {
		v := make([]float32, 512)
		if err := c.AllreduceSum(v, comm.AlgoRecursiveDoubling); err != nil {
			return err
		}
		tr := c.Traffic()
		if tr.BytesSent != 512*4 { // one round for P=2
			return fmt.Errorf("sent %d bytes, want %d", tr.BytesSent, 512*4)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadFullShortReads(t *testing.T) {
	r := &chunkReader{data: []byte{1, 2, 3, 4, 5}}
	buf := make([]byte, 5)
	n, err := readFull(r, buf)
	if err != nil || n != 5 {
		t.Fatalf("readFull: n=%d err=%v", n, err)
	}
	for i := range buf {
		if buf[i] != byte(i+1) {
			t.Fatalf("buf[%d]=%d", i, buf[i])
		}
	}
}

type chunkReader struct {
	data []byte
	pos  int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if c.pos >= len(c.data) {
		return 0, fmt.Errorf("EOF")
	}
	p[0] = c.data[c.pos] // one byte at a time
	c.pos++
	return 1, nil
}

func TestFloat32NaNBitsPreserved(t *testing.T) {
	// Direct check that encode/decode in Send/Recv preserves NaN payload bits.
	f := math.Float32frombits(0x7fc00456)
	bits := math.Float32bits(f)
	if bits != 0x7fc00456 {
		t.Skip("platform canonicalizes NaN in float32 round trip")
	}
}

func TestRunGroupHelper(t *testing.T) {
	err := RunGroup(3, func(c *comm.Communicator) error {
		v := []float32{1}
		if err := c.AllreduceSum(v, comm.AlgoAuto); err != nil {
			return err
		}
		if v[0] != 3 {
			return fmt.Errorf("sum %v", v[0])
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunGroupHelperPropagatesError(t *testing.T) {
	sentinel := fmt.Errorf("worker failure")
	err := RunGroup(2, func(c *comm.Communicator) error {
		if c.Rank() == 1 {
			return sentinel
		}
		// Rank 0 blocks in a collective; shutdown must release it with an
		// error rather than hang.
		return c.Barrier()
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

// TestNonblockingCollectivesOverTCP runs the nonblocking allreduce/allgather
// path over real loopback sockets: the progress worker sits above the
// Transport interface, so the same pipeline must work on tcpnet unchanged.
func TestNonblockingCollectivesOverTCP(t *testing.T) {
	const p, n = 3, 300
	err := RunGroup(p, func(c *comm.Communicator) error {
		v := make([]float32, n)
		for i := range v {
			v[i] = float32(c.Rank()*n + i)
		}
		in := []float32{float32(c.Rank() + 1)}
		out := make([]float32, p)
		r1 := c.IAllreduceMean(v, comm.AlgoAuto)
		r2 := c.IAllgather(in, out)
		if err := r1.Wait(); err != nil {
			return err
		}
		if err := r2.Wait(); err != nil {
			return err
		}
		for i := range v {
			want := float32(0)
			for r := 0; r < p; r++ {
				want += float32(r*n + i)
			}
			want /= p
			if v[i] != want {
				return fmt.Errorf("rank %d: v[%d]=%v want %v", c.Rank(), i, v[i], want)
			}
		}
		for r := 0; r < p; r++ {
			if out[r] != float32(r+1) {
				return fmt.Errorf("rank %d: out[%d]=%v", c.Rank(), r, out[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
