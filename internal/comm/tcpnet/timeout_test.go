package tcpnet

import (
	"errors"
	"testing"
	"time"

	"a2sgd/internal/comm"
)

// TestRecvTimeoutIsTypedAndNonSticky: a Recv that expires waiting for a frame
// header returns a typed, timeout-flagged *comm.PeerError, and — because no
// bytes moved — the stream stays usable: a later matching Send is received
// intact.
func TestRecvTimeoutIsTypedAndNonSticky(t *testing.T) {
	ts, shutdown, err := NewLocalMeshConfig(2, Config{IOTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	start := time.Now()
	err = ts[1].Recv(0, 7, make([]float32, 4))
	if err == nil {
		t.Fatal("Recv with no sender returned nil")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Recv took %v to expire (deadline 100ms)", elapsed)
	}
	var pe *comm.PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("Recv timeout is not a *comm.PeerError: %v", err)
	}
	if pe.Rank != 0 || pe.Op != "recv" || !pe.Timeout {
		t.Fatalf("PeerError fields: %+v, want Rank=0 Op=recv Timeout=true", pe)
	}

	// Clean header expiry must not poison the stream.
	want := []float32{1, 2, 3, 4}
	if err := ts[0].Send(1, 7, want); err != nil {
		t.Fatal(err)
	}
	got := make([]float32, 4)
	if err := ts[1].Recv(0, 7, got); err != nil {
		t.Fatalf("Recv after clean timeout: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("payload after timeout: %v, want %v", got, want)
		}
	}
}

// TestRecvFromClosedPeerFailsFast: a peer that closes its transport makes
// pending receives fail promptly instead of blocking until a (possibly
// absent) deadline.
func TestRecvFromClosedPeerFailsFast(t *testing.T) {
	ts, shutdown, err := NewLocalMeshConfig(2, Config{IOTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	done := make(chan error, 1)
	go func() {
		done <- ts[1].Recv(0, 3, make([]float32, 8))
	}()
	time.Sleep(10 * time.Millisecond)
	ts[0].Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv from closed peer returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv from closed peer still blocked after 5s")
	}
}

// TestZeroTimeoutPreservesBlockingBehavior: the default Config keeps the
// historical no-deadline semantics — a Recv outlives a delay far beyond any
// configured timeout and still completes.
func TestZeroTimeoutPreservesBlockingBehavior(t *testing.T) {
	ts, shutdown, err := NewLocalMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	done := make(chan error, 1)
	got := make([]float32, 2)
	go func() {
		done <- ts[1].Recv(0, 1, got)
	}()
	time.Sleep(300 * time.Millisecond) // longer than the other tests' deadlines
	if err := ts[0].Send(1, 1, []float32{5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 || got[1] != 6 {
		t.Fatalf("payload: %v", got)
	}
}

// TestGroupTimeoutSurfacesFromCollective: the deadline threads through the
// communicator layer — a rank that never joins a collective makes its peers'
// collective fail with a typed timeout instead of deadlocking the group.
func TestGroupTimeoutSurfacesFromCollective(t *testing.T) {
	cs, shutdown, err := NewLocalGroupConfig(2, Config{IOTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	// Rank 1 never participates; rank 0's allreduce must expire.
	start := time.Now()
	err = cs[0].AllreduceSum(make([]float32, 64), comm.AlgoRing)
	if err == nil {
		t.Fatal("collective with an absent peer returned nil")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("collective took %v to expire (deadline 150ms)", elapsed)
	}
	var pe *comm.PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("collective timeout is not a *comm.PeerError: %v", err)
	}
	if !pe.Timeout {
		t.Fatalf("PeerError not flagged as timeout: %+v", pe)
	}
}
