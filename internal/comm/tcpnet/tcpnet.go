// Package tcpnet implements the comm.Transport interface over real TCP
// sockets. It exists to prove that the collective algorithms in
// a2sgd/internal/comm run unchanged over an actual network stack — the role
// the 100 Gbps InfiniBand fabric plays in the paper's testbed — and to host
// the failure-injection tests (a dead worker surfaces as a transport error,
// not a hang).
//
// Topology: full mesh. Every rank opens one listener; rank i dials every
// rank j > i and identifies itself with a 4-byte handshake. Messages are
// framed as [uint32 tag][uint32 nElems][nElems × float32 little-endian].
//
// The framing is zero-copy in steady state: on little-endian builds the
// float32 payload's backing memory IS the wire representation
// (tensor.F32LEBytes), so Send hands the kernel an iovec of {header,
// payload} via net.Buffers (one writev, no staging copy) and Recv reads the
// socket directly into the caller's destination buffer. The safe fallback
// (big-endian targets or -tags purego) converts through per-peer wire
// buffers that are pooled and sized by the frame header, so either path
// stays off the allocator after warm-up.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"a2sgd/internal/comm"
	"a2sgd/internal/tensor"
)

// Config carries the optional transport knobs.
type Config struct {
	// IOTimeout, when > 0, bounds every socket operation — the handshake
	// dial/accept/identify steps and each steady-state Send and Recv frame.
	// Expiry surfaces as a *comm.PeerError{Timeout: true} naming the peer
	// rank and operation. A Recv deadline that expires before any header
	// byte arrived leaves the stream intact (the error is not sticky);
	// expiry mid-frame corrupts the stream and fails all later operations
	// on that peer. Zero (the default) preserves the historical behavior:
	// block forever, a dead peer hangs the rank.
	IOTimeout time.Duration
}

// peerState is the per-peer wire machinery: one lock per direction plus the
// reusable framing buffers of the zero-allocation hot path.
//
// The read side is a tag matcher: concurrent collectives run in disjoint tag
// blocks but share the peer's byte stream, so the receiver that drains the
// next frame (the puller — rhdr/rwire are exclusively its scratch) may find
// a frame for a different in-flight operation. Such frames are stashed in
// pooled buffers in arrival order and rcond wakes the other receivers to
// re-scan. In Deterministic mode only one operation is outstanding, the
// stash stays empty and the pull is the only hop.
type peerState struct {
	wmu    sync.Mutex  // write lock
	hdr    [8]byte     // outgoing frame header scratch
	iov    net.Buffers // {header, payload} iovec view consumed by writev
	iovArr [2][]byte   // backing storage iov is rebuilt from each Send
	wire   []byte      // fallback: staged little-endian payload

	werr error // sticky write error (under wmu); a partial frame corrupts the stream

	rmu     sync.Mutex  // guards the matcher state below
	rcond   sync.Cond   // wakes waiting receivers after a stash/err/puller exit
	pulling bool        // a receiver is draining the stream
	rerr    error       // sticky stream error; fails all subsequent Recvs
	pend    []pendFrame // stashed out-of-tag frames, arrival order
	rhdr    [8]byte     // incoming frame header scratch (puller-owned)
	rwire   []byte      // fallback: staged receive buffer (puller-owned)
}

// pendFrame is one stashed frame: data is a view of *buf, a transit buffer
// drawn from the transport pool and recycled when the matching Recv copies
// it out.
type pendFrame struct {
	tag  int
	data []float32
	buf  *[]float32
}

// Transport is a TCP-backed comm.Transport endpoint.
type Transport struct {
	rank, size int
	listener   net.Listener
	ioTimeout  time.Duration

	mu    sync.Mutex // guards conns/readers during setup and Close
	conns []net.Conn
	peers []peerState
	rbuf  []*bufio.Reader
	rpool sync.Pool // *[]float32 transit buffers for stashed frames
}

var _ comm.Transport = (*Transport)(nil)

// Rank returns this endpoint's rank.
func (t *Transport) Rank() int { return t.rank }

// Size returns the group size.
func (t *Transport) Size() int { return t.size }

// Addr returns the listen address of this endpoint.
func (t *Transport) Addr() string { return t.listener.Addr().String() }

// NewLocalGroup builds a fully connected TCP group of the given size on the
// loopback interface and returns one Communicator per rank plus a shutdown
// function. It is the single-process analogue of an mpirun over TCP.
func NewLocalGroup(size int) ([]*comm.Communicator, func(), error) {
	return NewLocalGroupConfig(size, Config{})
}

// NewLocalGroupConfig is NewLocalGroup with transport configuration.
func NewLocalGroupConfig(size int, cfg Config) ([]*comm.Communicator, func(), error) {
	ts, shutdown, err := NewLocalMeshConfig(size, cfg)
	if err != nil {
		return nil, nil, err
	}
	cs := make([]*comm.Communicator, size)
	for r, t := range ts {
		cs[r] = comm.NewCommunicator(t)
	}
	return cs, shutdown, nil
}

// NewLocalMesh builds the fully connected loopback mesh and returns the raw
// transports — the layer the hot-path benchmarks drive directly to measure
// framed send/receive without collective logic on top.
func NewLocalMesh(size int) ([]*Transport, func(), error) {
	return NewLocalMeshConfig(size, Config{})
}

// NewLocalMeshConfig is NewLocalMesh with transport configuration.
func NewLocalMeshConfig(size int, cfg Config) ([]*Transport, func(), error) {
	ts := make([]*Transport, size)
	for r := 0; r < size; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, fmt.Errorf("tcpnet: listen rank %d: %w", r, err)
		}
		ts[r] = &Transport{
			rank: r, size: size, listener: ln,
			ioTimeout: cfg.IOTimeout,
			conns:     make([]net.Conn, size),
			peers:     make([]peerState, size),
			rbuf:      make([]*bufio.Reader, size),
		}
		ts[r].rpool.New = func() any { return new([]float32) }
		for p := range ts[r].peers {
			ps := &ts[r].peers[p]
			ps.rcond.L = &ps.rmu
		}
	}
	addrs := make([]string, size)
	for r, t := range ts {
		addrs[r] = t.Addr()
	}

	// Handshake protocol: rank j's accept goroutine expects exactly j inbound
	// connections (one from every lower rank); rank i's dial goroutine opens
	// one connection to every higher rank and identifies itself with a 4-byte
	// little-endian rank header as its first bytes. Each of the size-1 accept
	// goroutines and size dial goroutines sends at most one error before
	// returning, so a 2*size-buffered channel can never block a sender.
	var wg sync.WaitGroup
	errc := make(chan error, 2*size)
	// Accept loop per rank: expect `rank` inbound connections (from lower ranks).
	for r := 1; r < size; r++ {
		wg.Add(1)
		go func(t *Transport) {
			defer wg.Done()
			for i := 0; i < t.rank; i++ {
				if t.ioTimeout > 0 {
					if tl, ok := t.listener.(*net.TCPListener); ok {
						_ = tl.SetDeadline(time.Now().Add(t.ioTimeout))
					}
				}
				conn, err := t.listener.Accept()
				if err != nil {
					errc <- handshakeErr(-1, err)
					return
				}
				if t.ioTimeout > 0 {
					_ = conn.SetReadDeadline(time.Now().Add(t.ioTimeout))
				}
				var hdr [4]byte
				if _, err := readFull(conn, hdr[:]); err != nil {
					errc <- handshakeErr(-1, err)
					return
				}
				_ = conn.SetReadDeadline(time.Time{})
				peer := int(binary.LittleEndian.Uint32(hdr[:]))
				if peer < 0 || peer >= t.size {
					errc <- fmt.Errorf("tcpnet: bad handshake rank %d", peer)
					return
				}
				t.setConn(peer, conn)
			}
		}(ts[r])
	}
	// Dial from each rank to all higher ranks.
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(t *Transport) {
			defer wg.Done()
			for peer := t.rank + 1; peer < size; peer++ {
				var conn net.Conn
				var err error
				if t.ioTimeout > 0 {
					conn, err = net.DialTimeout("tcp", addrs[peer], t.ioTimeout)
				} else {
					conn, err = net.Dial("tcp", addrs[peer])
				}
				if err != nil {
					errc <- handshakeErr(peer, err)
					return
				}
				if t.ioTimeout > 0 {
					_ = conn.SetWriteDeadline(time.Now().Add(t.ioTimeout))
				}
				var hdr [4]byte
				binary.LittleEndian.PutUint32(hdr[:], uint32(t.rank))
				if _, err := conn.Write(hdr[:]); err != nil {
					errc <- handshakeErr(peer, err)
					return
				}
				_ = conn.SetWriteDeadline(time.Time{})
				t.setConn(peer, conn)
			}
		}(ts[r])
	}
	wg.Wait()
	select {
	case err := <-errc:
		for _, t := range ts {
			_ = t.Close()
		}
		return nil, nil, err
	default:
	}

	shutdown := func() {
		for _, t := range ts {
			_ = t.Close()
		}
	}
	return ts, shutdown, nil
}

func (t *Transport) setConn(peer int, conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	t.mu.Lock()
	t.conns[peer] = conn
	t.rbuf[peer] = bufio.NewReaderSize(conn, 1<<16)
	t.mu.Unlock()
}

func (t *Transport) conn(peer int) (net.Conn, *bufio.Reader, error) {
	if peer < 0 || peer >= t.size || peer == t.rank {
		return nil, nil, fmt.Errorf("tcpnet: invalid peer %d", peer)
	}
	t.mu.Lock()
	c, r := t.conns[peer], t.rbuf[peer]
	t.mu.Unlock()
	if c == nil {
		return nil, nil, fmt.Errorf("tcpnet: no connection to peer %d", peer)
	}
	return c, r, nil
}

// Send implements comm.Transport. On zero-copy builds the payload's backing
// memory is the wire format, so one writev ships {header, payload} without
// staging; the fallback converts into the peer's reusable wire buffer. Both
// paths are allocation-free in steady state.
func (t *Transport) Send(to, tag int, data []float32) error {
	conn, _, err := t.conn(to)
	if err != nil {
		return err
	}
	ps := &t.peers[to]
	ps.wmu.Lock()
	defer ps.wmu.Unlock()
	if ps.werr != nil {
		return ps.werr
	}
	binary.LittleEndian.PutUint32(ps.hdr[0:], uint32(tag))
	binary.LittleEndian.PutUint32(ps.hdr[4:], uint32(len(data)))
	var payload []byte
	if tensor.BitsZeroCopy() {
		payload = tensor.F32LEBytes(data)
	} else {
		if cap(ps.wire) < 4*len(data) {
			ps.wire = make([]byte, 4*len(data))
		}
		payload = ps.wire[:4*len(data)]
		tensor.PutF32LE(payload, data)
	}
	// net.Buffers.WriteTo is a single writev on *net.TCPConn; it consumes
	// the iov view, which is rebuilt from the persistent backing array on
	// every Send — nothing here touches the allocator.
	ps.iovArr[0], ps.iovArr[1] = ps.hdr[:], payload
	ps.iov = ps.iovArr[:]
	if t.ioTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(t.ioTimeout))
	}
	if _, err := ps.iov.WriteTo(conn); err != nil {
		// The frame may have left partially — the outgoing stream position
		// is unknown either way, so every write error is sticky.
		werr := error(fmt.Errorf("tcpnet: send to %d: %w", to, err))
		if isTimeout(err) {
			werr = &comm.PeerError{Rank: to, Op: "send", Timeout: true, Err: err}
		}
		ps.werr = werr
		return werr
	}
	return nil
}

// isTimeout reports whether err is an I/O deadline expiry.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// handshakeErr wraps a mesh-setup failure as a typed peer error. peer is -1
// on the accept side, where the dialer's identity is not yet known.
func handshakeErr(peer int, err error) error {
	return &comm.PeerError{Rank: peer, Op: "handshake", Timeout: isTimeout(err), Err: err}
}

// readPayload reads one n-element frame payload from the socket into dst:
// straight into dst's memory on zero-copy builds, staged through the peer's
// receive buffer otherwise. Caller must be the puller.
func (t *Transport) readPayload(r *bufio.Reader, ps *peerState, dst []float32) error {
	if tensor.BitsZeroCopy() {
		_, err := readFull(r, tensor.F32LEBytes(dst))
		return err
	}
	if cap(ps.rwire) < 4*len(dst) {
		ps.rwire = make([]byte, 4*len(dst))
	}
	buf := ps.rwire[:4*len(dst)]
	if _, err := readFull(r, buf); err != nil {
		return err
	}
	tensor.GetF32LE(dst, buf)
	return nil
}

// Recv implements comm.Transport. Frames arriving for the expected tag are
// read from the socket straight into the destination buffer's memory on
// zero-copy builds (staged through a per-peer receive buffer otherwise);
// frames for other in-flight tags are stashed in pooled transit buffers
// until their receiver claims them.
func (t *Transport) Recv(from, tag int, data []float32) error {
	conn, r, err := t.conn(from)
	if err != nil {
		return err
	}
	ps := &t.peers[from]
	ps.rmu.Lock()
	for {
		// First satisfy from the stash (arrival order ⇒ per-tag FIFO).
		for i := range ps.pend {
			if ps.pend[i].tag == tag {
				m := ps.pend[i]
				ps.pend = append(ps.pend[:i], ps.pend[i+1:]...)
				ps.rmu.Unlock()
				defer t.rpool.Put(m.buf)
				if len(m.data) != len(data) {
					return fmt.Errorf("tcpnet: length mismatch from %d tag %d: got %d want %d",
						from, tag, len(m.data), len(data))
				}
				copy(data, m.data)
				return nil
			}
		}
		if ps.rerr != nil {
			err := ps.rerr
			ps.rmu.Unlock()
			return err
		}
		if ps.pulling {
			// Another receiver is draining the stream; it will stash or
			// take the next frame and wake us to re-scan.
			ps.rcond.Wait()
			continue
		}
		ps.pulling = true
		ps.rmu.Unlock()

		if t.ioTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(t.ioTimeout))
		}
		if n0, err := readFull(r, ps.rhdr[:]); err != nil {
			if n0 == 0 && isTimeout(err) {
				// Deadline expired before any header byte arrived: the
				// stream is intact, so the error names the slow peer but is
				// NOT sticky — a later Recv (or a retried one) still works.
				perr := &comm.PeerError{Rank: from, Op: "recv", Timeout: true, Err: err}
				ps.rmu.Lock()
				ps.pulling = false
				ps.rcond.Broadcast()
				ps.rmu.Unlock()
				return perr
			}
			// A dead stream fails every receiver on this peer, now and later.
			err = fmt.Errorf("tcpnet: recv from %d: %w", from, err)
			if isTimeout(err) {
				err = &comm.PeerError{Rank: from, Op: "recv", Timeout: true, Err: err}
			}
			ps.rmu.Lock()
			ps.pulling = false
			ps.rerr = err
			ps.rcond.Broadcast()
			ps.rmu.Unlock()
			return err
		}
		gotTag := int(binary.LittleEndian.Uint32(ps.rhdr[0:]))
		n := int(binary.LittleEndian.Uint32(ps.rhdr[4:]))
		if gotTag == tag {
			if n != len(data) {
				ps.rmu.Lock()
				ps.pulling = false
				ps.rcond.Broadcast()
				ps.rmu.Unlock()
				return fmt.Errorf("tcpnet: length mismatch from %d tag %d: got %d want %d", from, tag, n, len(data))
			}
			if t.ioTimeout > 0 {
				_ = conn.SetReadDeadline(time.Now().Add(t.ioTimeout))
			}
			err := t.readPayload(r, ps, data)
			ps.rmu.Lock()
			ps.pulling = false
			if err != nil {
				// Mid-frame failure: the stream position is lost, sticky.
				err = fmt.Errorf("tcpnet: recv payload from %d: %w", from, err)
				if isTimeout(err) {
					err = &comm.PeerError{Rank: from, Op: "recv", Timeout: true, Err: err}
				}
				ps.rerr = err
			}
			ps.rcond.Broadcast()
			ps.rmu.Unlock()
			return err
		}
		// Out-of-tag frame: stash it in a pooled transit buffer.
		bp := t.rpool.Get().(*[]float32)
		if cap(*bp) < n {
			*bp = make([]float32, n)
		}
		stash := (*bp)[:n]
		if t.ioTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(t.ioTimeout))
		}
		if err := t.readPayload(r, ps, stash); err != nil {
			t.rpool.Put(bp)
			err = fmt.Errorf("tcpnet: recv payload from %d: %w", from, err)
			if isTimeout(err) {
				err = &comm.PeerError{Rank: from, Op: "recv", Timeout: true, Err: err}
			}
			ps.rmu.Lock()
			ps.pulling = false
			ps.rerr = err
			ps.rcond.Broadcast()
			ps.rmu.Unlock()
			return err
		}
		ps.rmu.Lock()
		ps.pulling = false
		ps.pend = append(ps.pend, pendFrame{tag: gotTag, data: stash, buf: bp})
		ps.rcond.Broadcast()
		// Loop: re-scan the stash or become the puller again.
	}
}

// Close shuts the listener and all peer connections; pending Recvs fail.
func (t *Transport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var first error
	if t.listener != nil {
		first = t.listener.Close()
		t.listener = nil
	}
	for i, c := range t.conns {
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
			t.conns[i] = nil
		}
	}
	return first
}

type reader interface{ Read([]byte) (int, error) }

func readFull(r reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// RunGroup is the TCP analogue of comm.RunGroup: it builds a loopback mesh
// of the given size, runs body on one goroutine per rank, and tears the
// sockets down afterwards. The training runtime accepts it as a GroupRunner
// to run whole experiments over a real network stack.
func RunGroup(size int, body func(c *comm.Communicator) error) error {
	return RunGroupConfig(size, Config{}, body)
}

// RunGroupConfig is RunGroup with transport configuration (I/O deadlines).
func RunGroupConfig(size int, cfg Config, body func(c *comm.Communicator) error) error {
	cs, shutdown, err := NewLocalGroupConfig(size, cfg)
	if err != nil {
		return err
	}
	defer shutdown()
	errs := make(chan error, size)
	var wg sync.WaitGroup
	for _, c := range cs {
		wg.Add(1)
		go func(c *comm.Communicator) {
			defer wg.Done()
			if err := body(c); err != nil {
				errs <- err
				// Unblock peers — except on a cooperative stop, where every
				// rank returns on its own and teardown would race their
				// last collective.
				if !errors.Is(err, comm.ErrGroupStop) {
					shutdown()
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}
