package comm

import (
	"errors"
	"fmt"
	"time"
)

// Failure contract. Transports report peer-scoped failures as *PeerError so
// callers can tell WHO failed and WHETHER retrying can help:
//
//   - Timeout: the operation expired against a configured I/O deadline
//     (tcpnet Config.IOTimeout, InprocFabric.SetIOTimeout) without touching
//     the stream. The peer may be slow, stalled or dead.
//   - Transient: the fault was injected or detected BEFORE the operation had
//     any effect on the stream, so reissuing the exact same operation is
//     safe and may succeed (a flapping link, a partition window). Transports
//     must never mark an error transient after bytes have moved — a partial
//     frame is a sticky stream corruption, not a retryable blip.
//
// The collectives retry transient errors automatically under the
// communicator's RetryPolicy (SetRetry) with exponential backoff; everything
// else fails fast up through Wait/WaitAll to the caller.

// ErrPeerDead marks operations addressed to (or issued by) a rank that has
// crashed or been killed.
var ErrPeerDead = errors.New("comm: peer dead")

// ErrGroupStop marks a cooperative, group-wide stop: every rank returns an
// error wrapping it from the same synchronization point (e.g. a training
// pause at a checkpoint boundary). Group runners must join the remaining
// ranks instead of fail-fast tearing the fabric down — the first rank out of
// the final collective would otherwise close the fabric under its peers'
// still-draining barrier messages.
var ErrGroupStop = errors.New("comm: cooperative group stop")

// PeerError is a failure scoped to one peer link operation.
type PeerError struct {
	// Rank is the peer whose link failed (-1 when unknown, e.g. during the
	// mesh handshake before identities are established).
	Rank int
	// Op names the failed operation: "send", "recv" or "handshake".
	Op string
	// Timeout reports expiry of a configured I/O deadline.
	Timeout bool
	// Transient reports that the operation had no stream effect and may be
	// retried verbatim.
	Transient bool
	// Err is the underlying cause.
	Err error
}

func (e *PeerError) Error() string {
	attrs := ""
	if e.Timeout {
		attrs += " timeout"
	}
	if e.Transient {
		attrs += " transient"
	}
	if e.Err != nil {
		return fmt.Sprintf("comm: peer %d %s%s: %v", e.Rank, e.Op, attrs, e.Err)
	}
	return fmt.Sprintf("comm: peer %d %s%s failed", e.Rank, e.Op, attrs)
}

func (e *PeerError) Unwrap() error { return e.Err }

// IsTransient reports whether err carries a retryable *PeerError anywhere in
// its chain.
func IsTransient(err error) bool {
	var pe *PeerError
	return errors.As(err, &pe) && pe.Transient
}

// RetryPolicy bounds the automatic resend of transient peer failures.
// The zero value disables retry (one attempt, fail fast).
type RetryPolicy struct {
	// Attempts is the total number of tries (1 = no retry; 0 behaves as 1).
	Attempts int
	// Backoff is the sleep before the first retry; it doubles per retry.
	Backoff time.Duration
	// MaxBackoff caps the doubled sleep (0 = uncapped).
	MaxBackoff time.Duration
}

// DefaultRetry is a policy sized for the fault scenarios faultnet injects:
// ~10 tries backing off 1 ms → 50 ms covers a multi-tens-of-milliseconds
// link-down window (flap duty cycles, partition intervals) without retrying
// forever.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{Attempts: 10, Backoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond}
}

// Enabled reports whether the policy allows any retry at all.
func (p RetryPolicy) Enabled() bool { return p.Attempts > 1 }

// sleep blocks for the backoff of the given 0-based retry attempt.
func (p RetryPolicy) sleep(attempt int) {
	d := p.Backoff
	if d <= 0 {
		d = time.Millisecond
	}
	for i := 0; i < attempt; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	time.Sleep(d)
}

// SetRetry installs the retry policy for transient peer failures on this
// communicator and every communicator derived from it so far (Split groups,
// SetConcurrency contexts, hierarchy tiers); communicators derived later
// inherit it at creation. Call it at setup time, before overlapping work,
// like Split and SetTopology.
func (c *Communicator) SetRetry(p RetryPolicy) {
	c.retry = p
	for _, ch := range c.children {
		ch.SetRetry(p)
	}
}

// Retry returns the installed retry policy.
func (c *Communicator) Retry() RetryPolicy { return c.retry }

// Stepper is the optional capability of transports that track the training
// step counter for step-scoped fault scenarios (faultnet's crash/stall
// rules). The training loop calls Communicator.AdvanceStep once at the top
// of every step.
type Stepper interface {
	AdvanceStep()
}

// AdvanceStep notifies the transport that a new training step is beginning.
// On transports without the Stepper capability it is a no-op, so callers may
// invoke it unconditionally.
func (c *Communicator) AdvanceStep() {
	if s, ok := c.t.(Stepper); ok {
		s.AdvanceStep()
	}
}
