package comm

import "fmt"

// Tag-space contexts: the machinery that lets several collectives run
// concurrently on one communicator without crossing wires. Each context k>0
// is a shadow Communicator over the same transport whose every tag is
// lifted by k*ctxTagShift, extending the flat tag-base scheme of comm.go
// (tagRingRS = 1<<16 …) and the per-group shift of group.go (1<<21 per
// Split color) by one more level. The tag budget, low to high:
//
//	bits  0..15  per-step sub-tags of one collective
//	bits 16..20  collective kind (tagRingRS … tagHier)
//	bits 21..27  Split color + 1 (group communicators, hierarchy tiers)
//	bits 28..31  tag-space context (this file)
//
// tcpnet frames carry the tag as a uint32, so contexts are capped at 8 and
// the whole lifted tag stays within 32 bits for any sane group size.
// Context 0 is the parent communicator itself.

// ctxTagShift spaces each context's tag block above group tag space.
const ctxTagShift = 1 << 28

// MaxConcurrency bounds SetConcurrency: 8 contexts exhaust the tag bits
// above the per-color group space.
const MaxConcurrency = 8

// ctxTransport lifts every tag by a context offset. It forwards the
// BufferedTransport capability: a context send is exactly a parent send on a
// shifted tag.
type ctxTransport struct {
	t   Transport
	off int
}

func (x *ctxTransport) Rank() int { return x.t.Rank() }
func (x *ctxTransport) Size() int { return x.t.Size() }

func (x *ctxTransport) Send(to, tag int, data []float32) error {
	return x.t.Send(to, tag+x.off, data)
}

func (x *ctxTransport) Recv(from, tag int, data []float32) error {
	return x.t.Recv(from, tag+x.off, data)
}

// Close is a no-op: the parent owns the underlying transport.
func (x *ctxTransport) Close() error { return nil }

func (x *ctxTransport) SendIsBuffered() bool {
	if bt, ok := x.t.(BufferedTransport); ok {
		return bt.SendIsBuffered()
	}
	return false
}

// GlobalRank forwards to the parent transport: a context relabels tags, not
// ranks.
func (x *ctxTransport) GlobalRank(local int) int {
	if m, ok := x.t.(RankMapper); ok {
		return m.GlobalRank(local)
	}
	return local
}

// SetConcurrency sets the number of tag-space contexts available to the
// nonblocking operations: 1 (the default) is the Deterministic mode — a
// single progress worker executing posted operations strictly in posting
// order, bitwise-identical to the serial path — and n>1 lets up to n posted
// operations proceed concurrently in disjoint tag blocks.
//
// All ranks must call SetConcurrency with the same n at the same point in
// their posting sequence, with no nonblocking operations outstanding. On a
// flat communicator the call is purely local; on one with a two-level
// topology (SetTopology) it is a collective, because each shadow context
// replays the topology splits in its own tag space. Shadow communicators
// are registered as children, so Traffic/ResetTraffic keep aggregating all
// contexts.
func (c *Communicator) SetConcurrency(n int) error {
	if n < 1 || n > MaxConcurrency {
		return fmt.Errorf("comm: concurrency %d out of range [1,%d]", n, MaxConcurrency)
	}
	c.asyncMu.Lock()
	for k := range c.ctxQueues {
		q := &c.ctxQueues[k]
		if q.running || q.head != len(q.buf) {
			c.asyncMu.Unlock()
			return fmt.Errorf("comm: SetConcurrency with operations outstanding in context %d", k)
		}
	}
	c.asyncMu.Unlock()

	ctxComms := make([]*Communicator, n)
	ctxComms[0] = c
	for k := 1; k < n; k++ {
		sc := NewCommunicator(&ctxTransport{t: c.t, off: k * ctxTagShift})
		sc.retry = c.retry
		sc.sendObs = c.sendObs
		if c.hier != nil {
			if err := sc.SetTopology(c.hier.ranksPerNode); err != nil {
				return fmt.Errorf("comm: context %d topology: %w", k, err)
			}
		}
		c.children = append(c.children, sc)
		ctxComms[k] = sc
	}

	c.asyncMu.Lock()
	c.ctxComms = ctxComms
	c.initQueues(n)
	c.postSeq = 0
	c.asyncMu.Unlock()
	return nil
}

// Concurrency returns the number of tag-space contexts (1 = Deterministic
// mode).
func (c *Communicator) Concurrency() int {
	c.asyncMu.Lock()
	defer c.asyncMu.Unlock()
	if len(c.ctxComms) == 0 {
		return 1
	}
	return len(c.ctxComms)
}

// Deterministic reports whether nonblocking operations execute strictly in
// posting order (concurrency 1), preserving the serial path's bitwise
// reduction order.
func (c *Communicator) Deterministic() bool { return c.Concurrency() == 1 }

// ctxComm returns the communicator of context k.
func (c *Communicator) ctxComm(k int) *Communicator {
	if k == 0 {
		return c
	}
	c.asyncMu.Lock()
	defer c.asyncMu.Unlock()
	return c.ctxComms[k]
}
