//go:build race

package comm

// raceEnabled reports that the race detector is active: its instrumentation
// allocates on channel and synchronization operations, so the
// zero-allocation assertions are skipped (they run in the non-race CI lane).
const raceEnabled = true
