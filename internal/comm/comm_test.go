package comm

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"a2sgd/internal/tensor"
)

var groupSizes = []int{1, 2, 3, 4, 5, 7, 8, 16}

// makeInputs builds deterministic per-rank vectors and their elementwise sum.
func makeInputs(p, n int, seed uint64) (ins [][]float32, sum []float32) {
	ins = make([][]float32, p)
	sum = make([]float32, n)
	for r := 0; r < p; r++ {
		rng := tensor.NewRNG(seed + uint64(r)*1000)
		v := make([]float32, n)
		rng.NormVec(v, 0, 1)
		ins[r] = v
		for i := range sum {
			sum[i] += v[i]
		}
	}
	return ins, sum
}

func checkClose(t *testing.T, got, want []float32, tol float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		d := math.Abs(float64(got[i] - want[i]))
		if d > tol && d > tol*math.Abs(float64(want[i])) {
			t.Fatalf("%s: [%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestAllreduceSumAllAlgos(t *testing.T) {
	for _, p := range groupSizes {
		for _, n := range []int{1, 2, 3, 17, 1000, 5000} {
			for _, algo := range []AllreduceAlgorithm{AlgoAuto, AlgoRing, AlgoRecursiveDoubling} {
				ins, want := makeInputs(p, n, 42)
				var mu sync.Mutex
				got := make([][]float32, p)
				err := RunGroup(p, func(c *Communicator) error {
					v := append([]float32(nil), ins[c.Rank()]...)
					if err := c.AllreduceSum(v, algo); err != nil {
						return err
					}
					mu.Lock()
					got[c.Rank()] = v
					mu.Unlock()
					return nil
				})
				if err != nil {
					t.Fatalf("p=%d n=%d algo=%d: %v", p, n, algo, err)
				}
				for r := 0; r < p; r++ {
					checkClose(t, got[r], want, 1e-4, fmt.Sprintf("p=%d n=%d algo=%d rank=%d", p, n, algo, r))
				}
			}
		}
	}
}

func TestAllreduceMean(t *testing.T) {
	p, n := 4, 100
	ins, sum := makeInputs(p, n, 9)
	want := make([]float32, n)
	for i := range want {
		want[i] = sum[i] / float32(p)
	}
	got := make([][]float32, p)
	var mu sync.Mutex
	err := RunGroup(p, func(c *Communicator) error {
		v := append([]float32(nil), ins[c.Rank()]...)
		if err := c.AllreduceMean(v, AlgoAuto); err != nil {
			return err
		}
		mu.Lock()
		got[c.Rank()] = v
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		checkClose(t, got[r], want, 1e-5, "mean")
	}
}

// Property-based: allreduce(sum) equals the sequential sum for random sizes.
func TestAllreduceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		p := 1 + rng.Intn(8)
		n := 1 + rng.Intn(300)
		ins, want := makeInputs(p, n, seed)
		ok := true
		var mu sync.Mutex
		err := RunGroup(p, func(c *Communicator) error {
			v := append([]float32(nil), ins[c.Rank()]...)
			if err := c.AllreduceSum(v, AlgoAuto); err != nil {
				return err
			}
			for i := range v {
				if math.Abs(float64(v[i]-want[i])) > 1e-3 {
					mu.Lock()
					ok = false
					mu.Unlock()
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range groupSizes {
		n := 13
		ins, _ := makeInputs(p, n, 5)
		want := make([]float32, 0, n*p)
		for r := 0; r < p; r++ {
			want = append(want, ins[r]...)
		}
		got := make([][]float32, p)
		var mu sync.Mutex
		err := RunGroup(p, func(c *Communicator) error {
			out := make([]float32, n*p)
			if err := c.Allgather(ins[c.Rank()], out); err != nil {
				return err
			}
			mu.Lock()
			got[c.Rank()] = out
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for r := 0; r < p; r++ {
			checkClose(t, got[r], want, 0, fmt.Sprintf("allgather p=%d r=%d", p, r))
		}
	}
}

func TestAllgatherLengthMismatch(t *testing.T) {
	err := RunGroup(2, func(c *Communicator) error {
		return c.Allgather(make([]float32, 3), make([]float32, 5))
	})
	if err != ErrLengthMismatch {
		t.Fatalf("got %v, want ErrLengthMismatch", err)
	}
}

func TestAllgatherV(t *testing.T) {
	for _, p := range groupSizes {
		// Rank r contributes r+1 elements valued float32(r)+idx/10.
		want := []float32{}
		wantLens := make([]int, p)
		for r := 0; r < p; r++ {
			wantLens[r] = r + 1
			for i := 0; i <= r; i++ {
				want = append(want, float32(r)+float32(i)/10)
			}
		}
		got := make([][]float32, p)
		var mu sync.Mutex
		err := RunGroup(p, func(c *Communicator) error {
			r := c.Rank()
			in := make([]float32, r+1)
			for i := range in {
				in[i] = float32(r) + float32(i)/10
			}
			out, lens, err := c.AllgatherV(in)
			if err != nil {
				return err
			}
			for i, l := range lens {
				if l != wantLens[i] {
					return fmt.Errorf("lens[%d]=%d want %d", i, l, wantLens[i])
				}
			}
			mu.Lock()
			got[r] = out
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for r := 0; r < p; r++ {
			checkClose(t, got[r], want, 0, fmt.Sprintf("allgatherv p=%d r=%d", p, r))
		}
	}
}

func TestAllgatherVZeroLengthContribution(t *testing.T) {
	// Some ranks contribute nothing (possible for Gaussian-K on a quiet layer).
	p := 4
	err := RunGroup(p, func(c *Communicator) error {
		var in []float32
		if c.Rank()%2 == 0 {
			in = []float32{float32(c.Rank())}
		}
		out, lens, err := c.AllgatherV(in)
		if err != nil {
			return err
		}
		if len(out) != 2 {
			return fmt.Errorf("out len %d want 2", len(out))
		}
		if lens[1] != 0 || lens[3] != 0 {
			return fmt.Errorf("odd ranks should contribute 0: %v", lens)
		}
		if out[0] != 0 || out[1] != 2 {
			return fmt.Errorf("out = %v", out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcast(t *testing.T) {
	for _, p := range groupSizes {
		for root := 0; root < p; root += max(1, p/3) {
			err := RunGroup(p, func(c *Communicator) error {
				v := make([]float32, 64)
				if c.Rank() == root {
					for i := range v {
						v[i] = float32(i) + 0.5
					}
				}
				if err := c.Broadcast(v, root); err != nil {
					return err
				}
				for i := range v {
					if v[i] != float32(i)+0.5 {
						return fmt.Errorf("rank %d: v[%d]=%v", c.Rank(), i, v[i])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestBroadcastBadRoot(t *testing.T) {
	err := RunGroup(2, func(c *Communicator) error {
		return c.Broadcast(make([]float32, 1), 5)
	})
	if err == nil {
		t.Fatal("expected error for out-of-range root")
	}
}

func TestReduce(t *testing.T) {
	for _, p := range groupSizes {
		ins, want := makeInputs(p, 37, 77)
		for root := 0; root < p; root += max(1, p/2) {
			var rootGot []float32
			var mu sync.Mutex
			err := RunGroup(p, func(c *Communicator) error {
				v := append([]float32(nil), ins[c.Rank()]...)
				if err := c.Reduce(v, root); err != nil {
					return err
				}
				if c.Rank() == root {
					mu.Lock()
					rootGot = v
					mu.Unlock()
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
			checkClose(t, rootGot, want, 1e-4, fmt.Sprintf("reduce p=%d root=%d", p, root))
		}
	}
}

func TestBarrier(t *testing.T) {
	for _, p := range groupSizes {
		var counter sync.Map
		err := RunGroup(p, func(c *Communicator) error {
			counter.Store(c.Rank(), true)
			if err := c.Barrier(); err != nil {
				return err
			}
			// After the barrier every rank must have checked in.
			for r := 0; r < p; r++ {
				if _, ok := counter.Load(r); !ok {
					return fmt.Errorf("rank %d passed barrier before rank %d arrived", c.Rank(), r)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestTrafficAccounting(t *testing.T) {
	p, n := 4, 1024
	traffic := make([]Traffic, p)
	var mu sync.Mutex
	err := RunGroup(p, func(c *Communicator) error {
		v := make([]float32, n)
		if err := c.AllreduceSum(v, AlgoRing); err != nil {
			return err
		}
		mu.Lock()
		traffic[c.Rank()] = c.Traffic()
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ring allreduce sends 2(P-1)/P * n elements per rank (4 bytes each).
	wantBytes := int64(2 * (p - 1) * (n / p) * 4)
	for r, tr := range traffic {
		if tr.BytesSent != wantBytes {
			t.Errorf("rank %d sent %d bytes, want %d", r, tr.BytesSent, wantBytes)
		}
		if tr.BytesRecv != wantBytes {
			t.Errorf("rank %d recv %d bytes, want %d", r, tr.BytesRecv, wantBytes)
		}
		if tr.MsgsSent != int64(2*(p-1)) {
			t.Errorf("rank %d sent %d msgs, want %d", r, tr.MsgsSent, 2*(p-1))
		}
	}
}

func TestResetTraffic(t *testing.T) {
	f := NewInprocFabric(1)
	defer f.Shutdown()
	c := f.Communicators()[0]
	c.bytesSent.Store(10)
	c.ResetTraffic()
	if tr := c.Traffic(); tr.BytesSent != 0 {
		t.Error("ResetTraffic did not clear counters")
	}
}

func TestA2SGDTwoScalarTraffic(t *testing.T) {
	// The paper's headline: A2SGD exchanges exactly two scalars (64 bits)
	// per worker per iteration regardless of model size. Verify the
	// recursive-doubling allreduce of a 2-vector moves only log2(P) small
	// messages.
	p := 8
	var mu sync.Mutex
	sent := make([]int64, p)
	err := RunGroup(p, func(c *Communicator) error {
		v := []float32{1, 2}
		if err := c.AllreduceMean(v, AlgoRecursiveDoubling); err != nil {
			return err
		}
		mu.Lock()
		sent[c.Rank()] = c.Traffic().BytesSent
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, b := range sent {
		// log2(8)=3 rounds × 8 bytes.
		if b != 24 {
			t.Errorf("rank %d sent %d bytes, want 24", r, b)
		}
	}
}

func TestIndexBitcastRoundTrip(t *testing.T) {
	for _, i := range []uint32{0, 1, 12345, 1 << 30, math.MaxUint32} {
		if got := Float32ToIndex(Float32FromIndex(i)); got != i {
			t.Errorf("round trip %d -> %d", i, got)
		}
	}
}

func TestShutdownUnblocks(t *testing.T) {
	f := NewInprocFabric(2)
	tp := f.Transport(0)
	done := make(chan error, 1)
	go func() {
		done <- tp.Recv(1, 0, make([]float32, 1))
	}()
	f.Shutdown()
	if err := <-done; err != ErrFabricClosed {
		t.Fatalf("got %v, want ErrFabricClosed", err)
	}
	if err := tp.Send(1, 0, nil); err != ErrFabricClosed {
		t.Fatalf("send after shutdown: got %v", err)
	}
}

func TestInvalidRankErrors(t *testing.T) {
	f := NewInprocFabric(2)
	defer f.Shutdown()
	tp := f.Transport(0)
	if err := tp.Send(7, 0, nil); err == nil {
		t.Error("send to invalid rank should error")
	}
	if err := tp.Recv(-1, 0, nil); err == nil {
		t.Error("recv from invalid rank should error")
	}
}

func TestRunGroupPropagatesError(t *testing.T) {
	sentinel := fmt.Errorf("boom")
	err := RunGroup(3, func(c *Communicator) error {
		if c.Rank() == 1 {
			return sentinel
		}
		// Other ranks block in a collective; Shutdown must release them.
		return c.Barrier()
	})
	if err == nil {
		t.Fatal("expected an error")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestGroupStopSkipsFailFastTeardown pins the cooperative-stop contract: a
// rank returning an error that wraps ErrGroupStop must NOT fail-fast tear the
// fabric down, because its peers may still be draining the last collective.
// Rank 1 contributes to a reduce (buffered send) and stops immediately; rank
// 0 collects the contribution well after rank 1 has returned — with a
// fail-fast teardown the queued message would be destroyed and the recv would
// fail with ErrFabricClosed.
func TestGroupStopSkipsFailFastTeardown(t *testing.T) {
	var rank0Err error
	err := RunGroup(2, func(c *Communicator) error {
		v := []float32{1}
		if c.Rank() == 1 {
			if err := c.Reduce(v, 0); err != nil {
				return err
			}
			return fmt.Errorf("pausing: %w", ErrGroupStop)
		}
		time.Sleep(50 * time.Millisecond)
		if err := c.Reduce(v, 0); err != nil {
			rank0Err = fmt.Errorf("reduce after peer stopped: %w", err)
			return rank0Err
		}
		return nil
	})
	if rank0Err != nil {
		t.Fatal(rank0Err)
	}
	if !errors.Is(err, ErrGroupStop) {
		t.Fatalf("group error = %v, want ErrGroupStop", err)
	}
}
