// Package comm implements the collective-communication substrate the paper
// relies on (Horovod/MPI in the original evaluation): point-to-point
// transports and the classic collective algorithms built on top of them —
// ring and recursive-doubling allreduce, ring allgather (including the
// variable-size allgatherv that sparse gradient exchange needs), binomial
// broadcast and reduce, reduce-scatter, gather/scatter, all-to-all, and a
// barrier.
//
// # Transports
//
// Two transports implement the same Transport interface: an in-process
// channel fabric (this package; deterministic and fast, the default for
// experiments) and a real TCP loopback fabric (package
// a2sgd/internal/comm/tcpnet) used to validate that the collectives run
// unchanged over an actual network stack. Collectives are written once
// against the Transport interface, so a run on either fabric performs the
// same message sequence.
//
// # Nonblocking operations and concurrency modes
//
// Every Communicator owns lazily-started progress workers (one goroutine per
// tag-space context, mirroring MPI progress threads) that execute posted
// operations: Post (a typed Op), Async (a legacy closure, pinned to context
// 0), IAllreduceMean, IAllreduceSum and IAllgather return a Request whose
// Wait blocks until completion. In the default Deterministic mode —
// SetConcurrency(1) — a single worker runs operations strictly in posting
// order, so the floating-point reduction order — and therefore the numerical
// result — is identical to issuing the same operations synchronously; the
// training runtime exploits this to overlap bucket i's collective with
// bucket i+1's gather+encode while staying bitwise deterministic.
// SetConcurrency(n>1) adds n-1 shadow communicators in disjoint tag-space
// contexts (the top four tag bits): posted operations are distributed to
// contexts round-robin by posting sequence — deterministically, so every
// rank routes the k-th post to the same tag block — and operations in
// different contexts proceed concurrently on the wire. Each collective's
// arithmetic is unchanged (its operands and reduction order are private to
// its context), so concurrent runs still reproduce the serial results
// bitwise; only the wire interleaving differs.
//
// Contract: all ranks post the same operation sequence under the same
// concurrency setting; no blocking collectives while posts are outstanding
// (Wait first). Requests are pooled — posting draws from a freelist and the
// first Wait recycles the request, so a Request belongs to one waiter and
// its error is readable only until the communicator reuses the request for
// a later post. A steady-state post/Wait cycle touches the allocator zero
// times (see the AllocsPerRun tests). AllgatherVInto gathers through a
// caller-owned AllgatherVScratch so concurrent sparse exchanges reuse their
// buckets' buffers instead of contending on communicator-owned scratch.
//
// # Group communicators and two-level topologies
//
// Split partitions a communicator's ranks into disjoint sub-groups,
// MPI_Comm_split-style; each group is a full Communicator over the parent's
// fabric with translated ranks and a private tag space. SetTopology builds
// on two Splits to teach a communicator a two-level (intra-node +
// inter-node) cluster shape: consecutive runs of ranksPerNode ranks form a
// node, and AllreduceSum/AllreduceMean, Allgather, AllgatherV and Broadcast
// transparently switch to hierarchical schedules (node-local reduce or
// gather, an exchange among node leaders, node-local broadcast). The
// schedules cross the slow inter-node tier once per node instead of once
// per rank; callers — including the nonblocking requests and every
// compression algorithm — are unchanged. Hierarchical results match flat
// ones to float tolerance (the reduction order differs) and are fully
// deterministic for a fixed seed and topology.
//
// # Memory discipline
//
// The collectives are allocation-free in steady state: each Communicator
// owns one reduction scratch buffer grown to its high-water size (blocking
// collectives never overlap on a communicator), sendRecv reuses a
// persistent error channel and skips its helper goroutine entirely on
// transports that implement BufferedTransport, and the inproc fabric
// recycles transit buffers through a pool — Send clones into a pooled
// buffer, Recv copies into the caller-provided destination and returns the
// buffer. AllocsPerRun tests pin a warm AllreduceMean at zero allocations;
// see ARCHITECTURE.md "Memory discipline & hot path".
//
// # Failure contract: deadlines, retry, typed errors
//
// Transport failures surface as *PeerError values carrying the peer rank, the
// operation ("send"/"recv"), a Timeout flag, and two delivery promises: a
// Transient error had no stream effect — no bytes moved, so retrying the same
// call verbatim is safe — while a non-transient error may have left a partial
// frame on the wire and poisons the stream (tcpnet latches it and fails every
// later operation on that link). Deadlines are opt-in: tcpnet's
// Config.IOTimeout arms a per-operation I/O deadline (zero keeps the
// historical blocking semantics), and a Recv that expires cleanly while
// waiting for a frame header is non-sticky — the stream stays usable.
// SetRetry installs a bounded exponential-backoff RetryPolicy around the
// communicator's point-to-point calls; only transient errors are retried, and
// the healthy path pays a single branch (zero allocations — the AllocsPerRun
// tests cover the retry-wrapped path too). WaitAll drains every outstanding
// request even after the first failure — no goroutine or pooled request is
// leaked — and returns the joined errors, so a failed step tears down
// fail-fast with every rank's view preserved. The cluster runtime wraps such
// failures step-scoped ("cluster: step 7 sync: rank 2: ..."), and the
// faultnet package (a2sgd/internal/comm/faultnet) exercises this whole
// contract with deterministic injected faults.
//
// # Traffic accounting
//
// Every Communicator keeps per-rank traffic counters (payload bytes sent and
// received, message counts), aggregated over any group communicators it
// spawned; the benchmark harness feeds those counters into the α–β network
// model (package a2sgd/internal/netsim) to reproduce the paper's
// iteration-time figures.
package comm
