package comm

import (
	"runtime/debug"
	"testing"

	"a2sgd/internal/health"
)

// allreduceAllocs measures rank 0's steady-state allocations per
// AllreduceMean on a warm two-rank inproc fabric. Rank 1 mirrors every
// collective from its own goroutine until the fabric shuts down; its
// allocations land in the same global counter, so a nonzero result on either
// side fails. GC is paused so a collection can't empty the transit-buffer
// pool mid-measurement.
func allreduceAllocs(t *testing.T, algo AllreduceAlgorithm, n int) float64 {
	t.Helper()
	f := NewInprocFabric(2)
	defer f.Shutdown()
	cs := f.Communicators()
	v0 := make([]float32, n)
	v1 := make([]float32, n)
	peerDone := make(chan struct{})
	go func() {
		defer close(peerDone)
		for {
			if err := cs[1].AllreduceMean(v1, algo); err != nil {
				return // ErrFabricClosed at teardown
			}
		}
	}()
	// Warm-up: grow the communicator scratch and the fabric's transit pool.
	for i := 0; i < 3; i++ {
		if err := cs[0].AllreduceMean(v0, algo); err != nil {
			t.Fatal(err)
		}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(20, func() {
		if err := cs[0].AllreduceMean(v0, algo); err != nil {
			t.Fatal(err)
		}
	})
	f.Shutdown()
	<-peerDone
	return allocs
}

// TestAllreduceMeanZeroAllocSteadyState pins the collective half of the
// zero-allocation contract: on the inproc fabric a warm AllreduceMean —
// ring or recursive doubling, latency- or bandwidth-sized — never touches
// the allocator (communicator-owned reduction scratch, pooled transit
// buffers, no per-step goroutine captures).
// stepOp is the pooled exchange op of the overlap-step alloc test.
type stepOp struct {
	v []float32
}

func (o *stepOp) RunOp(cc *Communicator) error { return cc.AllreduceMean(o.v, AlgoRing) }

// overlapStepAllocs measures rank 0's steady-state allocations for one full
// overlap step — post every bucket's typed exchange through the pooled
// request queue, then WaitAll — on a warm two-rank fabric at the given
// concurrency.
func overlapStepAllocs(t *testing.T, concurrency, buckets, n int, setup func(c *Communicator, rank int)) float64 {
	t.Helper()
	f := NewInprocFabric(2)
	defer f.Shutdown()
	cs := f.Communicators()
	step := func(c *Communicator, ops []stepOp, reqs []Request) ([]Request, error) {
		reqs = reqs[:0]
		for b := range ops {
			reqs = append(reqs, c.Post(&ops[b]))
		}
		return reqs, WaitAll(reqs)
	}
	newState := func(rank int) []stepOp {
		ops := make([]stepOp, buckets)
		for b := range ops {
			ops[b] = stepOp{v: make([]float32, n)}
		}
		return ops
	}
	for rank, c := range cs {
		if err := c.SetConcurrency(concurrency); err != nil {
			t.Fatal(err)
		}
		if setup != nil {
			setup(c, rank)
		}
	}
	peerDone := make(chan struct{})
	go func() {
		defer close(peerDone)
		ops := newState(1)
		reqs := make([]Request, 0, buckets)
		for {
			var err error
			if reqs, err = step(cs[1], ops, reqs); err != nil {
				return // ErrFabricClosed at teardown
			}
		}
	}()
	ops := newState(0)
	reqs := make([]Request, 0, buckets)
	// Warm-up: grow the request freelist, context queues, communicator
	// scratch and the fabric's transit pool.
	for i := 0; i < 5; i++ {
		var err error
		if reqs, err = step(cs[0], ops, reqs); err != nil {
			t.Fatal(err)
		}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(20, func() {
		var err error
		if reqs, err = step(cs[0], ops, reqs); err != nil {
			t.Fatal(err)
		}
	})
	f.Shutdown()
	<-peerDone
	return allocs
}

// TestOverlapStepZeroAllocSteadyState pins the typed exchange queue's half
// of the zero-allocation contract: a warm full overlap step — every bucket
// posted as a pooled typed operation, then WaitAll — never touches the
// allocator, in the deterministic mode and with concurrent contexts alike.
// (The closure-queue path this replaced cost ~5 allocations per posted
// bucket: the closure capture, the boxed request, and the queue churn.)
func TestOverlapStepZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	for _, tc := range []struct {
		name        string
		concurrency int
	}{
		{"deterministic", 1},
		{"concurrent-4", 4},
	} {
		if a := overlapStepAllocs(t, tc.concurrency, 8, 1<<12, nil); a != 0 {
			t.Errorf("%s: %.2f allocs per steady-state overlap step, want 0", tc.name, a)
		}
	}
}

// TestOverlapStepZeroAllocWithObservers pins the health-beacon half of the
// contract: installing send and op observers (real health.Recorder method
// values, as cluster.Train does) must not add a single allocation to the
// steady-state overlap step — the recorders write into preallocated rings
// and the send path's time stamps live on the stack.
func TestOverlapStepZeroAllocWithObservers(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	mon := health.NewMonitor(2, health.Options{})
	setup := func(c *Communicator, rank int) {
		rec := mon.Recorder(rank)
		c.SetSendObserver(rec.ObserveSend)
		c.SetOpObserver(rec.ObserveOp)
	}
	for _, tc := range []struct {
		name        string
		concurrency int
	}{
		{"deterministic", 1},
		{"concurrent-4", 4},
	} {
		if a := overlapStepAllocs(t, tc.concurrency, 8, 1<<12, setup); a != 0 {
			t.Errorf("%s: %.2f allocs per steady-state overlap step with observers, want 0", tc.name, a)
		}
	}
}

func TestAllreduceMeanZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	for _, tc := range []struct {
		name string
		algo AllreduceAlgorithm
		n    int
	}{
		{"ring-64k", AlgoRing, 1 << 16},
		{"recdbl-64k", AlgoRecursiveDoubling, 1 << 16},
		{"recdbl-2", AlgoRecursiveDoubling, 2}, // a2sgd's two-scalar exchange
	} {
		if a := allreduceAllocs(t, tc.algo, tc.n); a != 0 {
			t.Errorf("%s: %.2f allocs per steady-state AllreduceMean, want 0", tc.name, a)
		}
	}
}
