package comm

import (
	"runtime/debug"
	"testing"
)

// allreduceAllocs measures rank 0's steady-state allocations per
// AllreduceMean on a warm two-rank inproc fabric. Rank 1 mirrors every
// collective from its own goroutine until the fabric shuts down; its
// allocations land in the same global counter, so a nonzero result on either
// side fails. GC is paused so a collection can't empty the transit-buffer
// pool mid-measurement.
func allreduceAllocs(t *testing.T, algo AllreduceAlgorithm, n int) float64 {
	t.Helper()
	f := NewInprocFabric(2)
	defer f.Shutdown()
	cs := f.Communicators()
	v0 := make([]float32, n)
	v1 := make([]float32, n)
	peerDone := make(chan struct{})
	go func() {
		defer close(peerDone)
		for {
			if err := cs[1].AllreduceMean(v1, algo); err != nil {
				return // ErrFabricClosed at teardown
			}
		}
	}()
	// Warm-up: grow the communicator scratch and the fabric's transit pool.
	for i := 0; i < 3; i++ {
		if err := cs[0].AllreduceMean(v0, algo); err != nil {
			t.Fatal(err)
		}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(20, func() {
		if err := cs[0].AllreduceMean(v0, algo); err != nil {
			t.Fatal(err)
		}
	})
	f.Shutdown()
	<-peerDone
	return allocs
}

// TestAllreduceMeanZeroAllocSteadyState pins the collective half of the
// zero-allocation contract: on the inproc fabric a warm AllreduceMean —
// ring or recursive doubling, latency- or bandwidth-sized — never touches
// the allocator (communicator-owned reduction scratch, pooled transit
// buffers, no per-step goroutine captures).
func TestAllreduceMeanZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	for _, tc := range []struct {
		name string
		algo AllreduceAlgorithm
		n    int
	}{
		{"ring-64k", AlgoRing, 1 << 16},
		{"recdbl-64k", AlgoRecursiveDoubling, 1 << 16},
		{"recdbl-2", AlgoRecursiveDoubling, 2}, // a2sgd's two-scalar exchange
	} {
		if a := allreduceAllocs(t, tc.algo, tc.n); a != 0 {
			t.Errorf("%s: %.2f allocs per steady-state AllreduceMean, want 0", tc.name, a)
		}
	}
}
