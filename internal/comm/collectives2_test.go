package comm

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestReduceScatter(t *testing.T) {
	for _, p := range groupSizes {
		for _, n := range []int{1, 7, 64, 1000} {
			if n < p {
				continue
			}
			ins, want := makeInputs(p, n, 21)
			err := RunGroup(p, func(c *Communicator) error {
				lo, hi := segBounds(n, p, c.Rank())
				out := make([]float32, hi-lo)
				if err := c.ReduceScatter(ins[c.Rank()], out); err != nil {
					return err
				}
				for i := range out {
					d := math.Abs(float64(out[i] - want[lo+i]))
					if d > 1e-4 {
						return fmt.Errorf("rank %d seg[%d]: %v want %v", c.Rank(), i, out[i], want[lo+i])
					}
				}
				// The input must not be clobbered.
				for i, v := range ins[c.Rank()] {
					if v != ins[c.Rank()][i] {
						return fmt.Errorf("input clobbered")
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
		}
	}
}

func TestReduceScatterLengthMismatch(t *testing.T) {
	err := RunGroup(2, func(c *Communicator) error {
		return c.ReduceScatter(make([]float32, 10), make([]float32, 3))
	})
	if err != ErrLengthMismatch {
		t.Fatalf("got %v", err)
	}
}

func TestGatherScatter(t *testing.T) {
	for _, p := range groupSizes {
		for root := 0; root < p; root += max(1, p-1) {
			blk := 5
			err := RunGroup(p, func(c *Communicator) error {
				r := c.Rank()
				in := make([]float32, blk)
				for i := range in {
					in[i] = float32(r*100 + i)
				}
				var out []float32
				if r == root {
					out = make([]float32, blk*p)
				}
				if err := c.Gather(in, out, root); err != nil {
					return err
				}
				if r == root {
					for src := 0; src < p; src++ {
						for i := 0; i < blk; i++ {
							if out[src*blk+i] != float32(src*100+i) {
								return fmt.Errorf("gather[%d][%d] = %v", src, i, out[src*blk+i])
							}
						}
					}
				}
				// Scatter the gathered data back out: every rank must
				// recover its original contribution.
				back := make([]float32, blk)
				var src []float32
				if r == root {
					src = out
				}
				if err := c.Scatter(src, back, root); err != nil {
					return err
				}
				for i := range back {
					if back[i] != in[i] {
						return fmt.Errorf("scatter back[%d] = %v want %v", i, back[i], in[i])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestGatherScatterValidation(t *testing.T) {
	err := RunGroup(2, func(c *Communicator) error {
		if c.Rank() == 0 {
			if e := c.Gather(make([]float32, 2), make([]float32, 3), 0); e != ErrLengthMismatch {
				return fmt.Errorf("gather: %v", e)
			}
			if e := c.Scatter(make([]float32, 3), make([]float32, 2), 0); e != ErrLengthMismatch {
				return fmt.Errorf("scatter: %v", e)
			}
			if e := c.Gather(nil, nil, 9); e != ErrLengthMismatch {
				return fmt.Errorf("bad root: %v", e)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoAll(t *testing.T) {
	for _, p := range groupSizes {
		blk := 3
		err := RunGroup(p, func(c *Communicator) error {
			r := c.Rank()
			in := make([]float32, blk*p)
			for dst := 0; dst < p; dst++ {
				for i := 0; i < blk; i++ {
					// Value encodes (sender, receiver, index).
					in[dst*blk+i] = float32(r*10000 + dst*100 + i)
				}
			}
			out := make([]float32, blk*p)
			if err := c.AlltoAll(in, out, blk); err != nil {
				return err
			}
			for src := 0; src < p; src++ {
				for i := 0; i < blk; i++ {
					want := float32(src*10000 + r*100 + i)
					if out[src*blk+i] != want {
						return fmt.Errorf("rank %d out[%d][%d] = %v want %v", r, src, i, out[src*blk+i], want)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAlltoAllLengthMismatch(t *testing.T) {
	err := RunGroup(2, func(c *Communicator) error {
		return c.AlltoAll(make([]float32, 4), make([]float32, 5), 2)
	})
	if err != ErrLengthMismatch {
		t.Fatalf("got %v", err)
	}
}

func TestFusedAllreduceMean(t *testing.T) {
	p := 4
	// Three buckets of different sizes per rank; fusion must average each.
	sizes := []int{3, 7, 1}
	var mu sync.Mutex
	got := make([][][]float32, p)
	err := RunGroup(p, func(c *Communicator) error {
		r := c.Rank()
		buckets := make([][]float32, len(sizes))
		for b, sz := range sizes {
			buckets[b] = make([]float32, sz)
			for i := range buckets[b] {
				buckets[b][i] = float32(r + b*10 + i)
			}
		}
		if err := c.FusedAllreduceMean(buckets, AlgoAuto); err != nil {
			return err
		}
		mu.Lock()
		got[r] = buckets
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Expected mean of float32(r + b*10 + i) over r=0..3 is 1.5 + b*10 + i.
	for r := 0; r < p; r++ {
		for b, sz := range sizes {
			for i := 0; i < sz; i++ {
				want := 1.5 + float32(b*10+i)
				if math.Abs(float64(got[r][b][i]-want)) > 1e-5 {
					t.Fatalf("rank %d bucket %d[%d] = %v want %v", r, b, i, got[r][b][i], want)
				}
			}
		}
	}
}

// ReduceScatter then Allgather must equal Allreduce — the classic identity
// the ring algorithm is built on.
func TestReduceScatterAllgatherIdentity(t *testing.T) {
	p, n := 4, 100
	ins, want := makeInputs(p, n, 33)
	err := RunGroup(p, func(c *Communicator) error {
		lo, hi := segBounds(n, p, c.Rank())
		seg := make([]float32, hi-lo)
		if err := c.ReduceScatter(ins[c.Rank()], seg); err != nil {
			return err
		}
		// Segments are equal-size here (n divisible by p) so plain
		// Allgather reassembles the full vector.
		full := make([]float32, n)
		if err := c.Allgather(seg, full); err != nil {
			return err
		}
		for i := range full {
			if math.Abs(float64(full[i]-want[i])) > 1e-4 {
				return fmt.Errorf("elem %d: %v want %v", i, full[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
