package comm

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// freeReqCount walks the communicator's request freelist.
func freeReqCount(c *Communicator) int {
	c.asyncMu.Lock()
	defer c.asyncMu.Unlock()
	n := 0
	for r := c.freeReqs; r != nil; r = r.next {
		n++
	}
	return n
}

// waitGoroutines polls until the goroutine count drops back to at most
// baseline (the runtime needs a moment to retire exiting goroutines).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at baseline", n, baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWaitAllFailureLeaksNothing is the failure-path leak audit: when a peer
// dies mid-step, every posted request must still complete with an error (no
// hang), WaitAll must surface a joined *PeerError, every pooled request must
// return to the freelist, and every progress-worker goroutine must park.
func TestWaitAllFailureLeaksNothing(t *testing.T) {
	for _, concurrency := range []int{0, 4} {
		baseline := runtime.NumGoroutine()
		f := NewInprocFabric(2)
		cs := f.Communicators()
		if concurrency > 1 {
			for _, c := range cs {
				if err := c.SetConcurrency(concurrency); err != nil {
					t.Fatal(err)
				}
			}
		}
		const posts = 8
		// One healthy warm-up step on both ranks, so the freelist and queues
		// are at steady state before the failure.
		warm := make(chan error, 1)
		go func() {
			var reqs []Request
			for i := 0; i < posts; i++ {
				reqs = append(reqs, cs[1].IAllreduceSum(make([]float32, 32), AlgoRing))
			}
			warm <- WaitAll(reqs)
		}()
		var reqs []Request
		for i := 0; i < posts; i++ {
			reqs = append(reqs, cs[0].IAllreduceSum(make([]float32, 32), AlgoRing))
		}
		if err := WaitAll(reqs); err != nil {
			t.Fatal(err)
		}
		if err := <-warm; err != nil {
			t.Fatal(err)
		}
		free := freeReqCount(cs[0])

		// Kill rank 1 and post a full step from rank 0: every exchange must
		// fail fast with a typed peer error instead of blocking.
		f.Kill(1)
		reqs = reqs[:0]
		for i := 0; i < posts; i++ {
			reqs = append(reqs, cs[0].IAllreduceSum(make([]float32, 32), AlgoRing))
		}
		err := WaitAll(reqs)
		if err == nil {
			t.Fatal("WaitAll against a dead peer returned nil")
		}
		var pe *PeerError
		if !errors.As(err, &pe) {
			t.Fatalf("WaitAll error is not a *PeerError chain: %v", err)
		}
		if pe.Rank != 1 {
			t.Fatalf("PeerError blames rank %d, want 1", pe.Rank)
		}

		// Every request went back to the pool — the failure path recycles
		// exactly like the success path.
		if got := freeReqCount(cs[0]); got != free {
			t.Fatalf("freelist after failed WaitAll: %d requests, want %d", got, free)
		}
		f.Shutdown()
		waitGoroutines(t, baseline)
	}
}

// TestFailedStepThenShutdownParksWorkers covers the cluster teardown order:
// a failed WaitAll, then fabric shutdown while other ranks may still be
// mid-collective. Nothing may hang and no goroutine may survive.
func TestFailedStepThenShutdownParksWorkers(t *testing.T) {
	baseline := runtime.NumGoroutine()
	f := NewInprocFabric(3)
	cs := f.Communicators()
	// Rank 2 blocks in a collective that will never complete (rank 1 dies);
	// the shutdown below must release it.
	blocked := make(chan error, 1)
	go func() {
		blocked <- cs[2].AllreduceSum(make([]float32, 64), AlgoRing)
	}()
	time.Sleep(2 * time.Millisecond)
	f.Kill(1)
	req := cs[0].IAllreduceSum(make([]float32, 64), AlgoRing)
	if err := req.Wait(); err == nil {
		t.Fatal("exchange against a dead peer returned nil")
	}
	f.Shutdown()
	if err := <-blocked; err == nil {
		t.Fatal("blocked rank's collective returned nil after shutdown")
	}
	waitGoroutines(t, baseline)
}

// TestRetryDoesNotAllocateOnSuccess pins the fault-path half of the
// zero-allocation contract: the bounded-retry wrappers around Transport
// Send/Recv must stay off the allocator when the transport is healthy.
func TestRetryDoesNotAllocateOnSuccess(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	f := NewInprocFabric(2)
	defer f.Shutdown()
	cs := f.Communicators()
	for _, c := range cs {
		c.SetRetry(DefaultRetry())
	}
	v0, v1 := make([]float32, 256), make([]float32, 256)
	peerDone := make(chan struct{})
	go func() {
		defer close(peerDone)
		for {
			if err := cs[1].AllreduceMean(v1, AlgoRing); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		if err := cs[0].AllreduceMean(v0, AlgoRing); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := cs[0].AllreduceMean(v0, AlgoRing); err != nil {
			t.Fatal(err)
		}
	})
	f.Shutdown()
	<-peerDone
	if allocs > 0 {
		t.Fatalf("retry-wrapped allreduce allocates %.1f/op on the healthy path, want 0", allocs)
	}
}
