package comm

import (
	"fmt"
	"sort"
)

// Group communicators. Split partitions an existing communicator's ranks
// into disjoint sub-groups, MPI_Comm_split-style; each group is a full
// Communicator (all collectives, traffic counters, nonblocking requests)
// whose transport forwards to the parent's fabric with rank translation and
// a group-private tag space. The two-level hierarchical collectives
// (hierarchy.go) are built on exactly two Splits: one per node and one over
// the node leaders.

// groupTagShift spaces each group's tags above the parent's. The flat
// collectives use tag bases up to tagHier (13<<16) plus sub-tag offsets that
// stay below 1<<17, so 1<<21 per color leaves no overlap.
const groupTagShift = 1 << 21

// groupTransport adapts a parent communicator's transport to a subset of its
// ranks: group rank i maps to parent rank ranks[i], and every tag is lifted
// into a per-color tag space so group traffic can never be mistaken for
// parent traffic on a shared (src, dst) pair.
type groupTransport struct {
	parent Transport
	ranks  []int // group rank -> parent rank
	rank   int   // my group rank
	tagOff int
}

func (t *groupTransport) Rank() int { return t.rank }
func (t *groupTransport) Size() int { return len(t.ranks) }

func (t *groupTransport) Send(to, tag int, data []float32) error {
	if to < 0 || to >= len(t.ranks) {
		return fmt.Errorf("comm: group send to invalid rank %d", to)
	}
	return t.parent.Send(t.ranks[to], tag+t.tagOff, data)
}

func (t *groupTransport) Recv(from, tag int, data []float32) error {
	if from < 0 || from >= len(t.ranks) {
		return fmt.Errorf("comm: group recv from invalid rank %d", from)
	}
	return t.parent.Recv(t.ranks[from], tag+t.tagOff, data)
}

// Close is a no-op: the parent owns the underlying transport.
func (t *groupTransport) Close() error { return nil }

// SendIsBuffered forwards the parent transport's capability: a group send is
// exactly a parent send on a remapped (rank, tag), so it buffers iff the
// parent does.
func (t *groupTransport) SendIsBuffered() bool {
	if bt, ok := t.parent.(BufferedTransport); ok {
		return bt.SendIsBuffered()
	}
	return false
}

// GlobalRank maps a group rank to the parent's label and keeps translating
// up the chain, so a hierarchy tier's beacons name physical workers.
func (t *groupTransport) GlobalRank(local int) int {
	if local < 0 || local >= len(t.ranks) {
		return local
	}
	r := t.ranks[local]
	if m, ok := t.parent.(RankMapper); ok {
		return m.GlobalRank(r)
	}
	return r
}

// ColorUndefined excludes the calling rank from every group, like
// MPI_UNDEFINED: Split still participates in the collective exchange but
// returns a nil communicator.
const ColorUndefined = -1

// Split partitions the communicator into disjoint sub-communicators. It is a
// collective call: every rank passes one color (>= 0, or ColorUndefined to
// opt out) and a key; ranks sharing a color form a group whose ranks are
// ordered by (key, parent rank). Returns the caller's group communicator, or
// nil for ColorUndefined.
//
// Group communicators share the parent's fabric but keep their own traffic
// counters; the parent's Traffic/ResetTraffic aggregate over its groups.
// Split is a setup-time collective — call it from the rank's owner goroutine
// before overlapping work, like the other blocking collectives.
func (c *Communicator) Split(color, key int) (*Communicator, error) {
	if color < ColorUndefined {
		return nil, fmt.Errorf("comm: split color %d out of range", color)
	}
	if key < 0 {
		return nil, fmt.Errorf("comm: split key %d must be non-negative", key)
	}
	p := c.Size()
	// Exchange (color, key) pairs so every rank can derive every group.
	mine := []float32{Float32FromIndex(uint32(color + 1)), Float32FromIndex(uint32(key))}
	all := make([]float32, 2*p)
	if err := c.flatAllgather(mine, all); err != nil {
		return nil, err
	}
	if color == ColorUndefined {
		return nil, nil
	}
	type member struct{ key, rank int }
	var members []member
	for r := 0; r < p; r++ {
		if int(Float32ToIndex(all[2*r]))-1 == color {
			members = append(members, member{key: int(Float32ToIndex(all[2*r+1])), rank: r})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].rank < members[j].rank
	})
	ranks := make([]int, len(members))
	myRank := -1
	for i, m := range members {
		ranks[i] = m.rank
		if m.rank == c.Rank() {
			myRank = i
		}
	}
	g := NewCommunicator(&groupTransport{
		parent: c.t,
		ranks:  ranks,
		rank:   myRank,
		tagOff: (color + 1) * groupTagShift,
	})
	g.retry = c.retry
	g.sendObs = c.sendObs
	c.children = append(c.children, g)
	return g, nil
}
