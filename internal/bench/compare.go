package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Regression gate for the hot-path trajectory file. BENCH_hotpath.json
// accumulates one entry per PR; CompareHotPath diffs a fresh HotPath run
// against the newest entry so CI can refuse a change that slows a
// steady-state operation past tolerance — or allocates where the last entry
// did not.

// HotPathEntry is one labelled run in BENCH_hotpath.json's trajectory.
type HotPathEntry struct {
	Label  string         `json:"label"`
	Report *HotPathReport `json:"report"`
}

// HotPathFile is the on-disk shape of BENCH_hotpath.json.
type HotPathFile struct {
	Benchmark string         `json:"benchmark"`
	UnitNote  string         `json:"unit_note"`
	Entries   []HotPathEntry `json:"entries"`
}

// LoadHotPathBaseline reads a BENCH_hotpath.json trajectory file and returns
// its newest entry — the baseline a fresh run is compared against.
func LoadHotPathBaseline(path string) (*HotPathEntry, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f HotPathFile
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if len(f.Entries) == 0 {
		return nil, fmt.Errorf("bench: %s has no entries", path)
	}
	return &f.Entries[len(f.Entries)-1], nil
}

// CompareHotPath prints a per-benchmark regression table of cur against the
// baseline entry and returns how many points regressed. A point regresses
// when its ns/op exceeds the baseline by more than tolPct percent, or when
// its allocs/op grew at all — the zero-allocation contract has no tolerance.
// Points present on only one side are listed as new/gone and never count as
// regressions, so adding a benchmark does not break the gate.
func CompareHotPath(w io.Writer, cur *HotPathReport, base *HotPathEntry, tolPct float64) int {
	baseByName := make(map[string]HotPathPoint, len(base.Report.Points))
	for _, p := range base.Report.Points {
		baseByName[p.Name] = p
	}
	fmt.Fprintf(w, "Hot path vs baseline %q (tolerance %.1f%% on ns/op, 0 on allocs/op)\n",
		base.Label, tolPct)
	regressions := 0
	seen := make(map[string]bool, len(cur.Points))
	rows := make([][]string, 0, len(cur.Points)+len(base.Report.Points))
	for _, p := range cur.Points {
		seen[p.Name] = true
		bp, ok := baseByName[p.Name]
		if !ok {
			rows = append(rows, []string{p.Name, "-", fmt.Sprintf("%.0f", p.NsPerOp),
				"-", "-", fmt.Sprintf("%d", p.AllocsPerOp), "new"})
			continue
		}
		delta := 0.0
		if bp.NsPerOp > 0 {
			delta = (p.NsPerOp - bp.NsPerOp) / bp.NsPerOp * 100
		}
		verdict := "ok"
		if delta > tolPct {
			verdict = "REGRESSION(time)"
			regressions++
		}
		if p.AllocsPerOp > bp.AllocsPerOp {
			if verdict == "ok" {
				verdict = "REGRESSION(allocs)"
			} else {
				verdict += "+allocs"
			}
			regressions++
		}
		rows = append(rows, []string{
			p.Name, fmt.Sprintf("%.0f", bp.NsPerOp), fmt.Sprintf("%.0f", p.NsPerOp),
			fmt.Sprintf("%+.1f%%", delta),
			fmt.Sprintf("%d", bp.AllocsPerOp), fmt.Sprintf("%d", p.AllocsPerOp), verdict,
		})
	}
	for _, bp := range base.Report.Points {
		if !seen[bp.Name] {
			rows = append(rows, []string{bp.Name, fmt.Sprintf("%.0f", bp.NsPerOp), "-",
				"-", fmt.Sprintf("%d", bp.AllocsPerOp), "-", "gone"})
		}
	}
	table(w, []string{"op", "base ns/op", "cur ns/op", "Δ", "base allocs", "cur allocs", "verdict"}, rows)
	if regressions > 0 {
		fmt.Fprintf(w, "%d regression(s) beyond tolerance\n", regressions)
	} else {
		fmt.Fprintln(w, "no regressions beyond tolerance")
	}
	return regressions
}
