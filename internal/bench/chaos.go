package bench

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"time"

	"a2sgd/internal/cluster"
	"a2sgd/internal/comm/faultnet"
	"a2sgd/internal/compress"
	"a2sgd/internal/netsim"
)

// ChaosConfig bounds the fault-injection harness runs.
type ChaosConfig struct {
	// Family, Workers, Epochs, Steps configure each training run (defaults
	// fnn3 / 4 / 1 / 4). Workers below 4 are raised to 4 — the partition and
	// hierarchy scenarios need two groups of two.
	Family                 string
	Workers, Epochs, Steps int
	// Seed fixes both the training run and every fault scenario's RNG.
	Seed uint64
	// TCP runs the faulted groups over loopback TCP instead of the
	// in-process fabric.
	TCP bool
}

// ChaosCase is one scenario of the chaos matrix.
type ChaosCase struct {
	Name     string `json:"name"`
	Scenario string `json:"scenario"`
	// Recoverable scenarios must complete with the exact checkpoint of the
	// fault-free run; unrecoverable ones must fail within the deadline.
	Recoverable bool    `json:"recoverable"`
	Err         string  `json:"err,omitempty"`
	WallSec     float64 `json:"wall_sec"`
	// BitwiseEqual reports whether the final checkpoint matched the
	// fault-free baseline byte for byte (recoverable scenarios only).
	BitwiseEqual bool `json:"bitwise_equal,omitempty"`
	// PredictedSlowdownSec / MeasuredSlowdownSec compare the run's extra
	// wall time under injected α–β delay against the netsim price law for
	// the same α–β parameters (delay scenarios only; report-only — the
	// measured value carries scheduler noise).
	PredictedSlowdownSec float64 `json:"predicted_slowdown_sec,omitempty"`
	MeasuredSlowdownSec  float64 `json:"measured_slowdown_sec,omitempty"`
	// Pass is the per-case verdict: completion + bitwise equality for
	// recoverable scenarios, a timely typed failure for unrecoverable ones.
	Pass bool `json:"pass"`
}

// ChaosReport aggregates one chaos-matrix run.
type ChaosReport struct {
	Workers         int         `json:"workers"`
	BaselineWallSec float64     `json:"baseline_wall_sec"`
	Cases           []ChaosCase `json:"cases"`
	Failures        int         `json:"failures"`
}

func (c *ChaosConfig) defaults() ChaosConfig {
	cfg := *c
	if cfg.Family == "" {
		cfg.Family = "fnn3"
	}
	if cfg.Workers < 4 {
		cfg.Workers = 4
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 11
	}
	return cfg
}

// chaosRun trains the harness's representative configuration — the a2sgd
// algorithm on the bucketed overlap pipeline — under one fault scenario
// ("" = fault-free) and returns the checkpoint bytes and the wall time.
func chaosRun(cfg ChaosConfig, scenario string, topology int, overlap bool) (*cluster.Result, []byte, time.Duration, error) {
	var ckpt bytes.Buffer
	cc := cluster.Config{
		Workers: cfg.Workers, Family: cfg.Family,
		Epochs: cfg.Epochs, StepsPerEpoch: cfg.Steps,
		Seed: cfg.Seed, BucketBytes: 8192, Overlap: overlap,
		Topology:   topology,
		Checkpoint: &ckpt,
		NewBucketAlgorithm: func(rank int, info compress.BucketInfo) compress.Algorithm {
			return newAlgo("a2sgd", info.Params, compress.BucketSeed(cfg.Seed, rank, info.Index))
		},
	}
	if scenario != "" {
		sc, err := faultnet.Parse(scenario)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("bench: chaos scenario %q: %w", scenario, err)
		}
		cc.GroupRunner = faultnet.GroupRunner(sc, cfg.TCP)
	}
	start := time.Now()
	res, err := cluster.Train(cc)
	return res, ckpt.Bytes(), time.Since(start), err
}

// chaosScenario is one row of the seeded scenario matrix.
type chaosScenario struct {
	name     string
	scenario string
	topology int // 0 = flat
	// predict prices the scenario's per-run slowdown on the netsim law that
	// models the injected α–β parameters, from the fault-free baseline's
	// recorded per-bucket payloads (nil = no prediction).
	predict func(base *cluster.Result, steps, p int) float64
}

// predictSlowdown prices one run's communication on the given network model:
// steps × the serial per-bucket sync of the run's recorded payloads, plus the
// setup-broadcast and final dense-allreduce epilogues — each priced under its
// own collective's law (the broadcast is a ⌈log2 p⌉-round tree, not an
// allreduce, and the dense allreduce follows the runtime's length cutover).
// The faulted inproc fabric's only cost IS the injected α–β sleep, so this is
// the whole wall-clock slowdown the scenario should add to a fault-free run.
func predictSlowdown(pr netsim.Pricer, base *cluster.Result, steps, p int) float64 {
	kinds := base.BucketExchangeKinds
	var perStep float64
	for b, bb := range base.BucketPayloadBytes {
		k := base.ExchangeKind
		if b < len(kinds) {
			k = kinds[b]
		}
		perStep += pr.SyncTime(k, bb, p)
	}
	dense := int64(4 * base.NumParams)
	epilogue := pr.BroadcastTime(dense, p) + pr.SyncTime(netsim.ExchangeAllreduce, dense, p)
	return float64(steps)*perStep + epilogue
}

// chaosMatrix builds the seeded scenario matrix. Every scenario string gets
// the harness seed prepended so the per-link fault RNG streams are fixed.
func chaosMatrix(cfg ChaosConfig) []chaosScenario {
	// The injected α–β delay scenarios mirror these fabric parameters; the
	// prediction prices the same collectives the run performs under the
	// matching netsim law (flat Fabric for a uniform delay, TwoTier with a
	// free intra tier for a leader-link-only delay).
	delayed := netsim.Fabric{Name: "injected", Alpha: 300e-6, Beta: 4e-9}
	predictFlat := func(base *cluster.Result, steps, p int) float64 {
		return predictSlowdown(delayed, base, steps, p)
	}
	crossNode := netsim.TwoTier{
		Name:  "injected-inter",
		Inter: netsim.Fabric{Name: "injected", Alpha: 200e-6, Beta: 2e-9},
		// Intra stays zero: only the leader link is faulted.
		RanksPerNode: 2,
	}
	predictTwoTier := func(base *cluster.Result, steps, p int) float64 {
		return predictSlowdown(crossNode, base, steps, p)
	}
	return []chaosScenario{
		{name: "delay-ab", scenario: "delay(link=*, alpha=300us, beta=4ns/B)", predict: predictFlat},
		{name: "jitter", scenario: "delay(link=*, alpha=50us, jitter=100us)"},
		{name: "bandwidth", scenario: "bw(link=*, mbps=250)"},
		{name: "dup", scenario: "dup(link=*, p=0.3)"},
		{name: "reorder", scenario: "reorder(link=*, p=0.3)"},
		{name: "loss", scenario: "loss(link=*, p=0.1, resend=500us)"},
		{name: "straggler", scenario: "straggler(rank=1, x2)"},
		{name: "flap-retry", scenario: "flap(rank=1, period=30ms, duty=0.7)"},
		{name: "partition-retry", scenario: "partition(groups=0-1|2-3, after=10ms, dur=15ms)"},
		{name: "hier-inter-delay", scenario: "delay(link=0-2, alpha=200us, beta=2ns/B)", topology: 2, predict: predictTwoTier},
		{name: "crash", scenario: "deadline(500ms) crash(rank=3, step=2)"},
		{name: "stall", scenario: "deadline(400ms) stall(rank=2, step=2)"},
	}
}

// Chaos runs the seeded chaos matrix: every recoverable scenario must train
// to a checkpoint bitwise identical to the fault-free baseline (fault
// injection perturbs timing, never arithmetic), every unrecoverable scenario
// must surface a step-scoped error within its deadline instead of hanging,
// and the α–β delay scenarios report measured against netsim-predicted
// slowdown. A non-nil error means the harness itself could not run; matrix
// verdicts land in the report (Failures counts the cases that missed their
// contract).
func Chaos(w io.Writer, c ChaosConfig) (*ChaosReport, error) {
	cfg := c.defaults()
	rep := &ChaosReport{Workers: cfg.Workers}

	// Fault-free baselines: one per topology the matrix uses. The overlap
	// pipeline is deterministic, so a single baseline run per topology pins
	// the reference checkpoint.
	type baseline struct {
		res  *cluster.Result
		ckpt []byte
		wall time.Duration
	}
	baselines := map[int]baseline{}
	for _, topo := range []int{0, 2} {
		res, ckpt, wall, err := chaosRun(cfg, "", topo, true)
		if err != nil {
			return nil, fmt.Errorf("bench: chaos baseline (topology=%d): %w", topo, err)
		}
		if len(ckpt) == 0 {
			return nil, fmt.Errorf("bench: chaos baseline produced an empty checkpoint")
		}
		baselines[topo] = baseline{res: res, ckpt: ckpt, wall: wall}
	}
	rep.BaselineWallSec = baselines[0].wall.Seconds()

	for _, s := range chaosMatrix(cfg) {
		sc := faultnet.MustParse(fmt.Sprintf("seed(%d) %s", cfg.Seed, s.scenario))
		cse := ChaosCase{Name: s.name, Scenario: sc.String(), Recoverable: sc.Recoverable()}
		_, ckpt, wall, err := chaosRun(cfg, cse.Scenario, s.topology, true)
		cse.WallSec = wall.Seconds()
		base := baselines[s.topology]
		if err != nil {
			cse.Err = err.Error()
		}
		if cse.Recoverable {
			cse.BitwiseEqual = err == nil && bytes.Equal(ckpt, base.ckpt)
			cse.Pass = cse.BitwiseEqual
			if s.predict != nil {
				cse.PredictedSlowdownSec = s.predict(base.res, cfg.Epochs*cfg.Steps, cfg.Workers)
				cse.MeasuredSlowdownSec = (wall - base.wall).Seconds()
			}
		} else {
			// Unrecoverable: a typed failure, and promptly. The bound allows
			// one deadline per in-flight collective phase plus teardown.
			limit := base.wall + 5*sc.Deadline + 2*time.Second
			cse.Pass = err != nil && wall <= limit
		}
		if !cse.Pass {
			rep.Failures++
		}
		rep.Cases = append(rep.Cases, cse)
	}

	if w != nil {
		fmt.Fprintf(w, "chaos matrix: %d workers, %d×%d steps, seed %d, baseline %.1f ms\n",
			cfg.Workers, cfg.Epochs, cfg.Steps, cfg.Seed, rep.BaselineWallSec*1000)
		rows := make([][]string, 0, len(rep.Cases))
		for _, cse := range rep.Cases {
			verdict := "PASS"
			if !cse.Pass {
				verdict = "FAIL"
			}
			kind := "recoverable"
			detail := fmt.Sprintf("bitwise=%v", cse.BitwiseEqual)
			if !cse.Recoverable {
				kind = "unrecoverable"
				detail = "failed fast"
				if cse.Err == "" {
					detail = "no error!"
				}
			}
			if cse.PredictedSlowdownSec > 0 {
				detail += fmt.Sprintf(" Δpred=%.1fms Δmeas=%.1fms",
					cse.PredictedSlowdownSec*1000, cse.MeasuredSlowdownSec*1000)
			}
			rows = append(rows, []string{
				cse.Name, kind, fmt.Sprintf("%.1f", cse.WallSec*1000), detail, verdict,
			})
		}
		table(w, []string{"scenario", "kind", "wall ms", "detail", "verdict"}, rows)
		for _, cse := range rep.Cases {
			if !cse.Pass {
				fmt.Fprintf(w, "FAIL %s (%s): err=%s\n", cse.Name, cse.Scenario, cse.Err)
			}
		}
	}
	if rep.Failures > 0 {
		names := make([]string, 0, rep.Failures)
		for _, cse := range rep.Cases {
			if !cse.Pass {
				names = append(names, cse.Name)
			}
		}
		return rep, fmt.Errorf("bench: chaos: %d scenario(s) missed their contract: %s",
			rep.Failures, strings.Join(names, ", "))
	}
	return rep, nil
}
