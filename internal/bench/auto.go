package bench

import (
	"fmt"
	"io"

	"a2sgd/internal/cluster"
	"a2sgd/internal/models"
	"a2sgd/internal/netsim"
	"a2sgd/internal/nn"
	"a2sgd/internal/plan"
)

// AutoSweepConfig bounds the auto-planner comparison.
type AutoSweepConfig struct {
	// Families lists the models to plan for (default vgg16 + lstm, the two
	// the paper's iteration-time analysis leans on).
	Families []string
	// Workers is the data-parallel width every plan is priced at (default 8).
	Workers int
	// ParamScale divides the paper's parameter counts for the modelled
	// comparison (like the fig4/fig5 -scale knob): the reduced models' layer
	// layout is scaled up to paperN/ParamScale elements, which is where the
	// bucket-size axis starts to matter. <= 0 prices the reduced models
	// as-is.
	ParamScale int
	// Pricers lists the network models to plan against (default the paper's
	// flat IB100 and the NVLink+TCP10G two-tier pair at node width 4).
	Pricers []netsim.Pricer
	// Specs is the candidate list for both the auto policy and the
	// hand-tuned uniform grid (default the evaluated five).
	Specs []string
	// Budgets is the hand-tuned uniform bucket-byte grid the auto plan is
	// compared against (default {0, 2KiB, 8KiB, 32KiB, 128KiB}).
	Budgets []int
	// TrainFamily, when non-empty and Epochs > 0, additionally runs the
	// auto-planned schedule for that family (reduced scale, in-process
	// fabric) to anchor a real convergence metric next to the model.
	TrainFamily   string
	Epochs, Steps int
	// Seed fixes the training anchor (default 17).
	Seed uint64
}

// AutoPoint is one (family, fabric) comparison: the planned schedule
// against the best hand-tuned uniform configuration on the same grid.
type AutoPoint struct {
	Family string
	Fabric string
	// Params is the parameter count the plan was priced at.
	Params int
	// Buckets, Topology and Composition describe the planned schedule.
	Buckets     int
	Topology    int
	Composition string
	// AutoSec is the planned schedule's modelled pipelined makespan;
	// BestSec the best uniform configuration's, reached with BestSpec at
	// BestBudget bucket bytes (0 = whole model).
	AutoSec    float64
	BestSpec   string
	BestBudget int
	BestSec    float64
	// Speedup is BestSec / AutoSec (>= 1 by construction: the uniform grid
	// is inside the planner's search space).
	Speedup float64
}

// AutoTrainPoint anchors one planned schedule in a real training run.
type AutoTrainPoint struct {
	Family      string
	Fabric      string
	Buckets     int
	Topology    int
	Composition string
	Policy      string
	FinalMetric float64
	AvgStepSec  float64
}

// AutoReport bundles the sweep's modelled comparisons and training anchors.
type AutoReport struct {
	Points   []AutoPoint
	Training []AutoTrainPoint
}

func (c *AutoSweepConfig) defaults() AutoSweepConfig {
	cfg := *c
	if len(cfg.Families) == 0 {
		cfg.Families = []string{"vgg16", "lstm"}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if len(cfg.Pricers) == 0 {
		cfg.Pricers = []netsim.Pricer{netsim.IB100(), netsim.TwoTierTCP10G(4)}
	}
	if len(cfg.Specs) == 0 {
		cfg.Specs = EvalAlgos
	}
	if len(cfg.Budgets) == 0 {
		cfg.Budgets = []int{0, 2 << 10, 8 << 10, 32 << 10, 128 << 10}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 17
	}
	return cfg
}

// familySegments returns a family's parameter segments: the reduced model's
// layer layout, optionally scaled so the total approaches the paper's
// parameter count divided by paramScale (each tensor grows proportionally;
// layer structure and ordering are preserved).
func familySegments(family string, paramScale int) ([]nn.Segment, int, error) {
	m, err := models.New(models.Config{Family: family, Seed: 1, Reduced: true})
	if err != nil {
		return nil, 0, err
	}
	segs := m.ParamSegments()
	n := m.NumParams()
	if paramScale <= 0 {
		return segs, n, nil
	}
	paperN, err := models.PaperParamCount(family)
	if err != nil {
		return nil, 0, err
	}
	target := paperN / paramScale
	if target <= n {
		return segs, n, nil
	}
	factor := float64(target) / float64(n)
	scaled := make([]nn.Segment, len(segs))
	off := 0
	for i, s := range segs {
		l := int(float64(s.Len) * factor)
		if s.Len > 0 && l < 1 {
			l = 1
		}
		scaled[i] = nn.Segment{Name: s.Name, Off: off, Len: l}
		off += l
	}
	return scaled, off, nil
}

// AutoSweep closes the planner's loop in a report: for every family ×
// fabric it builds the auto schedule (plan.Build) and prices the full
// hand-tuned uniform grid (spec × bucket budget at the fabric's given
// topology), printing both side by side. With a TrainFamily it also runs
// the planned schedule end to end so the derived configuration's
// convergence is measured, not assumed.
func AutoSweep(w io.Writer, c AutoSweepConfig) (*AutoReport, error) {
	cfg := c.defaults()
	report := &AutoReport{}
	for _, fam := range cfg.Families {
		segs, n, err := familySegments(fam, cfg.ParamScale)
		if err != nil {
			return nil, err
		}
		for _, pr := range cfg.Pricers {
			sched, err := plan.Build(segs, plan.Options{
				Workers: cfg.Workers, Pricer: pr, Candidates: cfg.Specs,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: auto plan %s on %s: %w", fam, pr.Label(), err)
			}
			point := AutoPoint{
				Family: fam, Fabric: pr.Label(), Params: n,
				Buckets: sched.NumBuckets(), Topology: sched.Topology,
				Composition: sched.Composition(), AutoSec: sched.PipelinedSyncSec,
			}
			for _, spec := range cfg.Specs {
				for _, bb := range cfg.Budgets {
					price, err := plan.PriceUniform(segs, spec, bb, plan.Options{Workers: cfg.Workers, Pricer: pr})
					if err != nil {
						return nil, fmt.Errorf("bench: uniform %s@%dB on %s: %w", spec, bb, pr.Label(), err)
					}
					if point.BestSpec == "" || price.Pipelined < point.BestSec {
						point.BestSpec, point.BestBudget, point.BestSec = spec, bb, price.Pipelined
					}
				}
			}
			if point.AutoSec > 0 {
				point.Speedup = point.BestSec / point.AutoSec
			}
			report.Points = append(report.Points, point)
		}
	}

	if cfg.TrainFamily != "" && cfg.Epochs > 0 {
		for _, pr := range cfg.Pricers {
			segs, _, err := familySegments(cfg.TrainFamily, 0) // train at reduced scale
			if err != nil {
				return nil, err
			}
			sched, err := plan.Build(segs, plan.Options{
				Workers: cfg.Workers, Pricer: pr, Candidates: cfg.Specs,
			})
			if err != nil {
				return nil, err
			}
			res, err := cluster.Train(cluster.Config{
				Workers: cfg.Workers, Family: cfg.TrainFamily,
				Epochs: cfg.Epochs, StepsPerEpoch: cfg.Steps,
				Seed: cfg.Seed, Schedule: sched,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: auto-planned run %s on %s: %w", cfg.TrainFamily, pr.Label(), err)
			}
			report.Training = append(report.Training, AutoTrainPoint{
				Family: cfg.TrainFamily, Fabric: pr.Label(),
				Buckets: res.Buckets, Topology: res.Topology,
				Composition: sched.Composition(), Policy: res.Policy,
				FinalMetric: res.FinalMetric(), AvgStepSec: res.AvgStepSec,
			})
		}
	}

	if w != nil {
		rows := make([][]string, 0, len(report.Points))
		for _, p := range report.Points {
			bb := "whole"
			if p.BestBudget > 0 {
				bb = fmt.Sprintf("%dB", p.BestBudget)
			}
			rows = append(rows, []string{
				p.Family, p.Fabric, fmt.Sprintf("%d", p.Params),
				fmt.Sprintf("%d", p.Buckets), fmt.Sprintf("%d", p.Topology), p.Composition,
				fmt.Sprintf("%.2f", p.AutoSec*1e6),
				fmt.Sprintf("%s@%s", p.BestSpec, bb),
				fmt.Sprintf("%.2f", p.BestSec*1e6),
				fmt.Sprintf("%.2fx", p.Speedup),
			})
		}
		fmt.Fprintf(w, "auto-planner sweep — %d workers (modelled pipelined sync, µs/step)\n", cfg.Workers)
		table(w, []string{
			"family", "fabric", "params", "k", "rpn", "auto composition",
			"auto", "best uniform", "uniform", "speedup",
		}, rows)
		if len(report.Training) > 0 {
			fmt.Fprintf(w, "\nauto-planned training anchor — %s, %d workers, %d epochs\n",
				cfg.TrainFamily, cfg.Workers, cfg.Epochs)
			trows := make([][]string, 0, len(report.Training))
			for _, t := range report.Training {
				trows = append(trows, []string{
					t.Fabric, fmt.Sprintf("%d", t.Buckets), fmt.Sprintf("%d", t.Topology),
					t.Composition,
					fmt.Sprintf("%.4f", t.FinalMetric),
					fmt.Sprintf("%.1f", t.AvgStepSec*1e6),
				})
			}
			table(w, []string{"fabric", "k", "rpn", "composition", "metric", "step-µs"}, trows)
		}
	}
	return report, nil
}
