package bench

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"time"

	"a2sgd/internal/cluster"
	"a2sgd/internal/comm/faultnet"
	"a2sgd/internal/compress"
	"a2sgd/internal/elastic"
)

// ElasticConfig bounds the elastic-recovery harness runs.
type ElasticConfig struct {
	// Family, Workers, Epochs, Steps configure each run (defaults fnn3 /
	// 4 / 2 / 5). Workers below 3 are raised to 4 so a crash leaves a
	// non-trivial survivor group.
	Family                 string
	Workers, Epochs, Steps int
	// Seed fixes the training run and every fault scenario's RNG.
	Seed uint64
	// CheckpointEvery paces the snapshot boundaries (default Steps).
	CheckpointEvery int
	// TCP runs the worker groups over loopback TCP.
	TCP bool
}

// ElasticCase is one scenario of the elastic matrix.
type ElasticCase struct {
	Name     string `json:"name"`
	Scenario string `json:"scenario,omitempty"`
	// Events is the membership-epoch history the supervisor recorded.
	Events   []string `json:"events"`
	Restarts int      `json:"restarts"`
	// FinalWorld is the world size of the last membership epoch.
	FinalWorld int     `json:"final_world"`
	WallSec    float64 `json:"wall_sec"`
	// BitwiseEqual reports whether the elastic run's final checkpoint
	// matched its reference run — an uninterrupted fixed-world resume from
	// the same resharded snapshot — byte for byte.
	BitwiseEqual bool   `json:"bitwise_equal"`
	Err          string `json:"err,omitempty"`
	Pass         bool   `json:"pass"`
}

// ElasticReport aggregates one elastic-matrix run.
type ElasticReport struct {
	Workers         int           `json:"workers"`
	CheckpointEvery int           `json:"checkpoint_every"`
	Cases           []ElasticCase `json:"cases"`
	Failures        int           `json:"failures"`
}

func (c *ElasticConfig) defaults() ElasticConfig {
	cfg := *c
	if cfg.Family == "" {
		cfg.Family = "fnn3"
	}
	if cfg.Workers < 3 {
		cfg.Workers = 4
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 2
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 11
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = cfg.Steps
	}
	return cfg
}

// elasticBase builds the representative training configuration the harness
// supervises: the a2sgd algorithm on the bucketed overlap pipeline, with
// periodic checkpointing and the final model checkpointed into ckpt.
func elasticBase(cfg ElasticConfig, ckpt *bytes.Buffer) cluster.Config {
	return cluster.Config{
		Workers: cfg.Workers, Family: cfg.Family,
		Epochs: cfg.Epochs, StepsPerEpoch: cfg.Steps,
		Seed: cfg.Seed, BucketBytes: 8192, Overlap: true,
		CheckpointEvery: cfg.CheckpointEvery,
		Checkpoint:      ckpt,
		NewBucketAlgorithm: func(rank int, info compress.BucketInfo) compress.Algorithm {
			return newAlgo("a2sgd", info.Params, compress.BucketSeed(cfg.Seed, rank, info.Index))
		},
	}
}

// runElastic supervises one elastic run under the given scenario ("" =
// fault-free), collecting every boundary snapshot by global step.
func runElastic(cfg ElasticConfig, scenario string, drain <-chan struct{}) (*elastic.RunResult, []byte, map[int]*cluster.RunState, time.Duration, error) {
	var ckpt bytes.Buffer
	snaps := map[int]*cluster.RunState{}
	job := &elastic.Job{
		Config: elasticBase(cfg, &ckpt),
		TCP:    cfg.TCP,
		Drain:  drain,
		SnapshotSink: func(rs *cluster.RunState) error {
			snaps[rs.Step] = rs
			return nil
		},
	}
	if scenario != "" {
		job.Scenario = faultnet.MustParse(scenario)
	}
	start := time.Now()
	rr, err := job.Run()
	return rr, ckpt.Bytes(), snaps, time.Since(start), err
}

// refResume replays the rest of the run from rs at rs.World workers with no
// faults and returns the final checkpoint: the fixed-world reference an
// elastic recovery must match bitwise.
func refResume(cfg ElasticConfig, rs *cluster.RunState) ([]byte, error) {
	var ckpt bytes.Buffer
	cc := elasticBase(cfg, &ckpt)
	cc.Workers = rs.World
	cc.Resume = rs
	if _, err := cluster.Train(cc); err != nil {
		return nil, err
	}
	return ckpt.Bytes(), nil
}

func eventStrings(rr *elastic.RunResult) (out []string) {
	for _, e := range rr.Events {
		out = append(out, fmt.Sprintf("%s@%d/w%d", e.Reason, e.Step, e.World))
	}
	return out
}

// ElasticChaos runs the elastic-recovery matrix: a crash must shrink the
// world and converge to the exact trajectory of an uninterrupted run at the
// shrunk world size resumed from the same resharded snapshot; a preemption
// must shrink and then re-admit the rank at the next checkpoint boundary,
// again bitwise against the fixed-world reference of its last transition; a
// drain must pause with a snapshot that resumes to the fault-free result.
// A non-nil error means the harness itself could not run; matrix verdicts
// land in the report (Failures counts the cases that missed their contract).
func ElasticChaos(w io.Writer, c ElasticConfig) (*ElasticReport, error) {
	cfg := c.defaults()
	rep := &ElasticReport{Workers: cfg.Workers, CheckpointEvery: cfg.CheckpointEvery}
	ck := cfg.CheckpointEvery

	// Fault-free baseline pins the uninterrupted checkpoint for the drain
	// case (the crash/preempt references resume at a different world size,
	// so they are recomputed per case from the captured snapshots).
	_, baseCkpt, _, _, err := runElastic(cfg, "", nil)
	if err != nil {
		return nil, fmt.Errorf("bench: elastic baseline: %w", err)
	}
	if len(baseCkpt) == 0 {
		return nil, fmt.Errorf("bench: elastic baseline produced an empty checkpoint")
	}

	finish := func(cse ElasticCase) {
		if !cse.Pass {
			rep.Failures++
		}
		rep.Cases = append(rep.Cases, cse)
	}
	finalWorld := func(rr *elastic.RunResult) int {
		return rr.Events[len(rr.Events)-1].World
	}

	// crash-shrink: rank W-1 dies one step after the first checkpoint
	// boundary (a crash ON a boundary races the snapshot barrier against the
	// kill); the supervisor reshards the boundary snapshot across W-1
	// survivors and the shrunk run must match a fixed-(W-1)-world resume of
	// that snapshot.
	{
		scenario := fmt.Sprintf("seed(%d) deadline(5s) crash(rank=%d, step=%d)", cfg.Seed, cfg.Workers-1, ck+1)
		cse := ElasticCase{Name: "crash-shrink", Scenario: scenario}
		rr, ckpt, snaps, wall, err := runElastic(cfg, scenario, nil)
		cse.WallSec = wall.Seconds()
		if err != nil {
			cse.Err = err.Error()
		} else {
			cse.Events = eventStrings(rr)
			cse.Restarts = rr.Restarts
			cse.FinalWorld = finalWorld(rr)
			if snap := snaps[ck]; snap != nil && snap.World == cfg.Workers {
				shrunk, rerr := elastic.Reshard(snap, cfg.Workers-1)
				if rerr == nil {
					if ref, rerr := refResume(cfg, shrunk); rerr == nil {
						cse.BitwiseEqual = bytes.Equal(ckpt, ref)
					}
				}
			}
			cse.Pass = cse.Restarts == 1 && cse.FinalWorld == cfg.Workers-1 && cse.BitwiseEqual
		}
		finish(cse)
	}

	// preempt-rejoin: rank 1 is preempted mid-interval; the shrunk segment
	// stops at the next boundary, the rank rejoins there, and the final
	// full-world tail must match a fixed-world resume of the grown snapshot.
	{
		scenario := fmt.Sprintf("seed(%d) deadline(5s) preempt(rank=1, step=%d)", cfg.Seed, ck-2)
		cse := ElasticCase{Name: "preempt-rejoin", Scenario: scenario}
		rr, ckpt, snaps, wall, err := runElastic(cfg, scenario, nil)
		cse.WallSec = wall.Seconds()
		if err != nil {
			cse.Err = err.Error()
		} else {
			cse.Events = eventStrings(rr)
			cse.Restarts = rr.Restarts
			cse.FinalWorld = finalWorld(rr)
			rejoined := len(rr.Events) >= 3 && strings.HasPrefix(rr.Events[1].Reason, "preempt") &&
				rr.Events[2].Reason == "rejoin"
			if snap := snaps[rr.Events[len(rr.Events)-1].Step]; rejoined && snap != nil {
				grown, rerr := elastic.Reshard(snap, cfg.Workers)
				if rerr == nil {
					if ref, rerr := refResume(cfg, grown); rerr == nil {
						cse.BitwiseEqual = bytes.Equal(ckpt, ref)
					}
				}
			}
			cse.Pass = rejoined && cse.FinalWorld == cfg.Workers && cse.BitwiseEqual
		}
		finish(cse)
	}

	// drain-resume: a pre-closed drain pauses the run at the first boundary
	// with a snapshot; resuming it fault-free must land on the exact
	// uninterrupted checkpoint.
	{
		cse := ElasticCase{Name: "drain-resume"}
		drain := make(chan struct{})
		close(drain)
		start := time.Now()
		rr, _, _, _, err := runElastic(cfg, "", drain)
		if err != nil {
			cse.Err = err.Error()
		} else {
			cse.Events = eventStrings(rr)
			cse.FinalWorld = finalWorld(rr)
			if rr.Paused && rr.Snapshot != nil {
				if ref, rerr := refResume(cfg, rr.Snapshot); rerr == nil {
					cse.BitwiseEqual = bytes.Equal(ref, baseCkpt)
				}
				cse.Pass = cse.BitwiseEqual
			}
		}
		cse.WallSec = time.Since(start).Seconds()
		finish(cse)
	}

	if w != nil {
		fmt.Fprintf(w, "elastic matrix: %d workers, %d×%d steps, checkpoint every %d, seed %d\n",
			cfg.Workers, cfg.Epochs, cfg.Steps, ck, cfg.Seed)
		rows := make([][]string, 0, len(rep.Cases))
		for _, cse := range rep.Cases {
			verdict := "PASS"
			if !cse.Pass {
				verdict = "FAIL"
			}
			rows = append(rows, []string{
				cse.Name,
				fmt.Sprintf("%d", cse.Restarts),
				fmt.Sprintf("%d", cse.FinalWorld),
				fmt.Sprintf("%.1f", cse.WallSec*1000),
				fmt.Sprintf("bitwise=%v", cse.BitwiseEqual),
				strings.Join(cse.Events, " "),
				verdict,
			})
		}
		table(w, []string{"scenario", "restarts", "world", "wall ms", "detail", "epochs", "verdict"}, rows)
		for _, cse := range rep.Cases {
			if !cse.Pass && cse.Err != "" {
				fmt.Fprintf(w, "FAIL %s: err=%s\n", cse.Name, cse.Err)
			}
		}
	}
	if rep.Failures > 0 {
		names := make([]string, 0, rep.Failures)
		for _, cse := range rep.Cases {
			if !cse.Pass {
				names = append(names, cse.Name)
			}
		}
		return rep, fmt.Errorf("bench: elastic: %d scenario(s) missed their contract: %s",
			rep.Failures, strings.Join(names, ", "))
	}
	return rep, nil
}
