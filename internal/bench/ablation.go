package bench

import (
	"fmt"
	"io"

	"a2sgd/internal/cluster"
	"a2sgd/internal/compress"
	"a2sgd/internal/core"
)

// AblationResult is one variant's convergence and traffic outcome.
type AblationResult struct {
	Variant      string
	FinalMetric  float64
	PayloadB     int64
	BytesPerStep float64
}

// Ablation runs the design-choice comparisons DESIGN.md §6 calls out as a
// single convergence experiment on FNN-3: full A2SGD against its
// error-feedback-off, one-mean and allgather-exchange variants, the
// Periodic round-reduction composition, dense SGD as the reference, and the
// related-work extensions (Rand-K, TernGrad, DGC, Elias-coded QSGD).
func Ablation(w io.Writer, workers, epochs int) ([]AblationResult, error) {
	if workers <= 0 {
		workers = 4
	}
	if epochs <= 0 {
		epochs = 8
	}
	variants := []struct {
		name  string
		build func(rank, n int) compress.Algorithm
	}{
		{"dense", func(rank, n int) compress.Algorithm {
			return compress.NewDense(compress.DefaultOptions(n))
		}},
		{"a2sgd", func(rank, n int) compress.Algorithm {
			return core.New(n)
		}},
		{"a2sgd-noef", func(rank, n int) compress.Algorithm {
			return core.New(n, core.WithoutErrorFeedback())
		}},
		{"a2sgd-onemean", func(rank, n int) compress.Algorithm {
			return core.New(n, core.WithOneMean())
		}},
		{"a2sgd-allgather", func(rank, n int) compress.Algorithm {
			return core.New(n, core.WithAllgather())
		}},
		{"a2sgd-every4", func(rank, n int) compress.Algorithm {
			return compress.NewPeriodic(core.New(n), 4)
		}},
		{"dgc", func(rank, n int) compress.Algorithm {
			o := compress.DefaultOptions(n)
			o.Density = 0.05
			o.Seed = uint64(rank + 1)
			return compress.NewDGC(o)
		}},
		{"randk", func(rank, n int) compress.Algorithm {
			o := compress.DefaultOptions(n)
			o.Density = 0.05
			o.Seed = uint64(rank + 1)
			return compress.NewRandK(o)
		}},
		{"terngrad", func(rank, n int) compress.Algorithm {
			o := compress.DefaultOptions(n)
			o.Seed = uint64(rank + 1)
			return compress.NewTernGrad(o)
		}},
		{"qsgd-elias", func(rank, n int) compress.Algorithm {
			o := compress.DefaultOptions(n)
			o.Seed = uint64(rank + 1)
			return compress.NewQSGDElias(o)
		}},
	}
	var out []AblationResult
	var rows [][]string
	for _, v := range variants {
		res, err := cluster.Train(cluster.Config{
			Workers: workers, Family: "fnn3",
			NewAlgorithm:   v.build,
			Epochs:         epochs,
			StepsPerEpoch:  12,
			BatchPerWorker: 8,
			Seed:           7,
			Momentum:       0.9,
			LRScale:        0.5,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.name, err)
		}
		r := AblationResult{
			Variant:      v.name,
			FinalMetric:  res.FinalMetric(),
			PayloadB:     res.PayloadBytes,
			BytesPerStep: res.BytesPerWorkerPerStep,
		}
		out = append(out, r)
		rows = append(rows, []string{
			v.name,
			fmt.Sprintf("%.4f", r.FinalMetric),
			fmt.Sprintf("%d", r.PayloadB),
			fmt.Sprintf("%.0f", r.BytesPerStep),
		})
	}
	fmt.Fprintf(w, "\nAblations (FNN-3, %d workers, %d epochs): design choices of DESIGN.md §6\n", workers, epochs)
	table(w, []string{"variant", "final top-1 acc", "payload B/worker", "measured B/step"}, rows)
	return out, nil
}
