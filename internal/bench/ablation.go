package bench

import (
	"fmt"
	"io"

	"a2sgd/internal/cluster"
	"a2sgd/internal/compress"
)

// AblationResult is one variant's convergence and traffic outcome.
type AblationResult struct {
	Variant      string
	FinalMetric  float64
	PayloadB     int64
	BytesPerStep float64
}

// AblationSpecs derives the ablation variant list from the registry instead
// of a hardcoded table: every registered leaf algorithm (Wraps == 0) with
// its default parameters — so the A2SGD ablation variants that
// self-register from internal/core, and any third-party registration, join
// the sweep automatically — plus the periodic round-reduction composition
// the paper's conclusion names. "dense" leads as the reference; the rest
// follow in registry (sorted-name) order.
func AblationSpecs() []string {
	specs := []string{"dense"}
	for _, name := range compress.Registered() {
		if name == "dense" {
			continue
		}
		if b, ok := compress.LookupBuilder(name); !ok || b.Wraps > 0 {
			continue // wrappers need an inner spec; the composition below covers them
		}
		specs = append(specs, name)
	}
	return append(specs, "periodic(a2sgd, interval=4)")
}

// Ablation runs the design-choice comparisons DESIGN.md §6 calls out as a
// single convergence experiment on FNN-3: dense SGD as the reference, every
// registered algorithm variant (A2SGD and its error-feedback-off, one-mean
// and allgather-exchange ablations, the related-work extensions), and the
// Periodic composition. Sparsifiers run at density 0.05 so their selections
// stay visible at the reduced fnn3 scale (the spec-level override the
// registry schema gates).
func Ablation(w io.Writer, workers, epochs int) ([]AblationResult, error) {
	if workers <= 0 {
		workers = 4
	}
	if epochs <= 0 {
		epochs = 8
	}
	var out []AblationResult
	var rows [][]string
	for _, variant := range AblationSpecs() {
		spec := specWithDensity(variant, 0.05)
		res, err := cluster.Train(cluster.Config{
			Workers: workers, Family: "fnn3",
			NewAlgorithm: func(rank, n int) compress.Algorithm {
				return newAlgo(spec, n, uint64(rank+1))
			},
			Epochs:         epochs,
			StepsPerEpoch:  12,
			BatchPerWorker: 8,
			Seed:           7,
			Momentum:       0.9,
			LRScale:        0.5,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", variant, err)
		}
		r := AblationResult{
			Variant:      variant,
			FinalMetric:  res.FinalMetric(),
			PayloadB:     res.PayloadBytes,
			BytesPerStep: res.BytesPerWorkerPerStep,
		}
		out = append(out, r)
		rows = append(rows, []string{
			variant,
			fmt.Sprintf("%.4f", r.FinalMetric),
			fmt.Sprintf("%d", r.PayloadB),
			fmt.Sprintf("%.0f", r.BytesPerStep),
		})
	}
	fmt.Fprintf(w, "\nAblations (FNN-3, %d workers, %d epochs): every registered variant (DESIGN.md §6)\n", workers, epochs)
	table(w, []string{"variant", "final top-1 acc", "payload B/worker", "measured B/step"}, rows)
	return out, nil
}
