package bench

import (
	"fmt"
	"io"

	"a2sgd/internal/cluster"
	"a2sgd/internal/compress"
	"a2sgd/internal/stats"
)

// Figure1Result holds the gradient-distribution captures for one model.
type Figure1Result struct {
	Family     string
	Iters      []int
	Histograms []*stats.Histogram
	// PeakFracs[i] is the largest single-bin mass at capture i — the
	// quantitative form of "values converge to the center around zero".
	PeakFracs []float64
}

// Figure1 trains FNN-3 and ResNet-20 on one worker and captures the
// gradient-value histogram at increasing iteration counts, reproducing the
// distribution progression of the paper's Figure 1.
func Figure1(w io.Writer, epochs, stepsPerEpoch int, render bool) ([]Figure1Result, error) {
	if epochs <= 0 {
		epochs = 6
	}
	if stepsPerEpoch <= 0 {
		stepsPerEpoch = 20
	}
	total := epochs * stepsPerEpoch
	iters := []int{0, total / 4, total / 2, total - 1}

	var out []Figure1Result
	for _, fam := range []string{"fnn3", "resnet20"} {
		res, err := cluster.Train(cluster.Config{
			Workers: 1, Family: fam,
			NewAlgorithm: func(rank, n int) compress.Algorithm {
				return compress.NewDense(compress.DefaultOptions(n))
			},
			Epochs: epochs, StepsPerEpoch: stepsPerEpoch,
			BatchPerWorker: 32, Seed: 11, Momentum: 0.9,
			HistIters: iters,
		})
		if err != nil {
			return nil, err
		}
		r := Figure1Result{Family: fam, Iters: iters, Histograms: res.Histograms}
		for _, h := range res.Histograms {
			r.PeakFracs = append(r.PeakFracs, h.PeakFrac())
		}
		out = append(out, r)

		fmt.Fprintf(w, "\nFigure 1 (%s): gradient distribution progression\n", fam)
		var rows [][]string
		for i, h := range res.Histograms {
			rows = append(rows, []string{
				fmt.Sprintf("%d", iters[i]),
				fmt.Sprintf("%.4f", h.PeakFrac()),
				fmt.Sprintf("%.5f", centerMass(h, 0.02)),
			})
		}
		table(w, []string{"iteration", "peak-bin frac", "mass in |g|<0.02"}, rows)
		if render && len(res.Histograms) > 0 {
			fmt.Fprintf(w, "\nfinal-iteration histogram (%s):\n%s", fam,
				res.Histograms[len(res.Histograms)-1].Render(60))
		}
	}
	return out, nil
}

// centerMass returns the fraction of values with |x| < eps.
func centerMass(h *stats.Histogram, eps float64) float64 {
	var m float64
	for i := range h.Counts {
		c := h.BinCenter(i)
		if c > -eps && c < eps {
			m += h.Frac(i)
		}
	}
	return m
}
