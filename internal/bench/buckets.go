package bench

import (
	"fmt"
	"io"

	"a2sgd/internal/cluster"
	"a2sgd/internal/compress"
	"a2sgd/internal/netsim"
)

// BucketSweepConfig bounds the bucket-size ablation runs.
type BucketSweepConfig struct {
	// Family, Workers, Epochs, Steps configure each training run (defaults
	// fnn3 / 4 / 2 / 8).
	Family                 string
	Workers, Epochs, Steps int
	// BucketBytes lists the bucket budgets to sweep; 0 is the whole-model
	// single bucket. Default {0, 2048, 8192, 32768}.
	BucketBytes []int
	// Fabric prices the modelled iteration times.
	Fabric netsim.Fabric
	// Algorithms defaults to the paper's five-method evaluation set.
	Algorithms []string
}

// BucketPoint is one (algorithm, bucket budget) cell of the sweep.
type BucketPoint struct {
	Algorithm   string
	BucketBytes int
	Buckets     int
	// Measured wall-clock per step on the in-process fabric.
	StepSecSync, StepSecOverlap float64
	// Modelled iteration prices on the configured fabric: the per-bucket
	// serial law and the overlap pipeline law. HiddenSyncSec is their gap —
	// the synchronization time the pipeline hides behind encode.
	ModelSerialSec, ModelOverlapSec float64
	HiddenSyncSec                   float64
}

func (c *BucketSweepConfig) defaults() BucketSweepConfig {
	cfg := *c
	if cfg.Family == "" {
		cfg.Family = "fnn3"
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 2
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 8
	}
	if len(cfg.BucketBytes) == 0 {
		cfg.BucketBytes = []int{0, 2048, 8192, 32768}
	}
	if cfg.Fabric.Name == "" {
		cfg.Fabric = netsim.IB100()
	}
	if len(cfg.Algorithms) == 0 {
		cfg.Algorithms = EvalAlgos
	}
	return cfg
}

// BucketSweep runs the bucket-size × algorithm ablation: every evaluated
// algorithm is trained with each bucket budget, synchronously and with the
// overlapped pipeline, reporting measured step time plus the serial and
// overlap-aware modelled iteration prices — the new axis the paper's
// Figures 4–5 iteration-time analysis extends along.
func BucketSweep(w io.Writer, c BucketSweepConfig) ([]BucketPoint, error) {
	cfg := c.defaults()
	var points []BucketPoint
	for _, algo := range cfg.Algorithms {
		for _, bb := range cfg.BucketBytes {
			run := func(overlap bool) (*cluster.Result, error) {
				return cluster.Train(cluster.Config{
					Workers: cfg.Workers, Family: cfg.Family,
					Epochs: cfg.Epochs, StepsPerEpoch: cfg.Steps,
					Seed: 11, BucketBytes: bb, Overlap: overlap,
					NewBucketAlgorithm: func(rank int, info compress.BucketInfo) compress.Algorithm {
						return newAlgo(algo, info.Params, uint64(rank+1)+uint64(info.Index)*1_000_003)
					},
				})
			}
			sync, err := run(false)
			if err != nil {
				return nil, fmt.Errorf("bench: %s bucket=%dB sync: %w", algo, bb, err)
			}
			over, err := run(true)
			if err != nil {
				return nil, fmt.Errorf("bench: %s bucket=%dB overlap: %w", algo, bb, err)
			}
			serial := over.ModeledIterSecSerial(cfg.Fabric)
			pipelined := over.ModeledIterSecOverlap(cfg.Fabric)
			points = append(points, BucketPoint{
				Algorithm:   algo,
				BucketBytes: bb,
				Buckets:     over.Buckets,
				StepSecSync: sync.AvgStepSec, StepSecOverlap: over.AvgStepSec,
				ModelSerialSec: serial, ModelOverlapSec: pipelined,
				HiddenSyncSec: serial - pipelined,
			})
		}
	}
	if w != nil {
		rows := make([][]string, 0, len(points))
		for _, p := range points {
			bb := "whole"
			if p.BucketBytes > 0 {
				bb = fmt.Sprintf("%dB", p.BucketBytes)
			}
			rows = append(rows, []string{
				p.Algorithm, bb, fmt.Sprintf("%d", p.Buckets),
				fmt.Sprintf("%.1f", p.StepSecSync*1e6),
				fmt.Sprintf("%.1f", p.StepSecOverlap*1e6),
				fmt.Sprintf("%.2f", p.ModelSerialSec*1e6),
				fmt.Sprintf("%.2f", p.ModelOverlapSec*1e6),
				fmt.Sprintf("%.2f", p.HiddenSyncSec*1e6),
			})
		}
		fmt.Fprintf(w, "bucket sweep — %s, %d workers, fabric %s (µs/iter)\n",
			cfg.Family, cfg.Workers, cfg.Fabric.Name)
		table(w, []string{
			"algorithm", "bucket", "k",
			"step-sync", "step-overlap", "model-serial", "model-overlap", "hidden-sync",
		}, rows)
	}
	return points, nil
}
