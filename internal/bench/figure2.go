package bench

import (
	"fmt"
	"io"
	"time"

	"a2sgd/internal/tensor"
)

// Figure2Point is one (algorithm, n) compute-time measurement.
type Figure2Point struct {
	Algo    string
	N       int
	Seconds float64
}

// Figure2Algos are the four methods whose local compute the paper's
// Figure 2 compares (dense has no compression step).
var Figure2Algos = []string{"topk", "qsgd", "gaussiank", "a2sgd"}

// Figure2 measures the local compression time (the Encode phase only — no
// communication) on random Gaussian gradients of increasing size,
// reproducing the paper's Figure 2 sweep up to 100 M parameters.
func Figure2(w io.Writer, sizes []int, reps int) ([]Figure2Point, error) {
	if len(sizes) == 0 {
		sizes = []int{1_000_000, 5_000_000, 10_000_000, 25_000_000, 50_000_000, 100_000_000}
	}
	if reps <= 0 {
		reps = 2
	}
	var points []Figure2Point
	rows := make([][]string, 0, len(sizes))
	for _, n := range sizes {
		g := make([]float32, n)
		tensor.NewRNG(uint64(n)).NormVec(g, 0, 0.05)
		row := []string{fmt.Sprintf("%d", n)}
		for _, name := range Figure2Algos {
			alg := newAlgo(name, n, 3)
			// Warm-up run excluded from timing (first TopK call allocates
			// the residual buffers, etc.).
			alg.Encode(g)
			t0 := time.Now()
			for r := 0; r < reps; r++ {
				alg.Encode(g)
			}
			sec := time.Since(t0).Seconds() / float64(reps)
			points = append(points, Figure2Point{Algo: name, N: n, Seconds: sec})
			row = append(row, fmt.Sprintf("%.4f", sec))
		}
		rows = append(rows, row)
	}
	fmt.Fprintln(w, "Figure 2: compression compute time (seconds) vs #parameters")
	header := append([]string{"n"}, Figure2Algos...)
	table(w, header, rows)
	fmt.Fprintln(w)
	csvOut(w, header, rows)
	return points, nil
}
