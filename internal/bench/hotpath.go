package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"

	"a2sgd/internal/cluster"
	"a2sgd/internal/comm"
	"a2sgd/internal/comm/tcpnet"
	"a2sgd/internal/compress"
	"a2sgd/internal/tensor"
)

// HotPathPoint is one steady-state hot-path measurement: the per-operation
// wall time, allocation count and allocated bytes of a warmed instance.
// Allocs/op is the headline — the zero-allocation contract (ARCHITECTURE.md
// "Memory discipline & hot path") pins it to 0 for the encode and inproc
// collective rows.
type HotPathPoint struct {
	Name        string  `json:"name"`
	N           int     `json:"n"` // elements per operation
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

// HotPathReport aggregates one run of the hot-path suite — the payload of
// BENCH_hotpath.json, the perf-trajectory file regenerated per PR by
// `a2sgdbench -experiment hotpath -json`.
type HotPathReport struct {
	GOMAXPROCS  int            `json:"gomaxprocs"`
	ZeroCopyNet bool           `json:"zero_copy_net"` // tensor.BitsZeroCopy on this build
	Points      []HotPathPoint `json:"points"`
	// OverlapEfficiency is how much of the hideable synchronization time the
	// overlapped step actually hides: (tSerial − tOverlap) / (tSerial −
	// tEncodeOnly), where tSerial is the blocking encode+exchange step,
	// tOverlap the best overlapped variant of the concurrency sweep, and
	// tEncodeOnly the pure local encode (the floor no overlap can beat).
	// 1.0 = the exchange is completely hidden behind posting; 0 = overlap
	// bought nothing.
	OverlapEfficiency float64 `json:"overlap_efficiency,omitempty"`
	// DirectBuckets and TotalBuckets record the vgg16 multi-tensor plan
	// probe: with strided gradient views every bucket — including those
	// spanning parameter-tensor boundaries — encodes from and reconstructs
	// into the layers' live storage, so the two counts must be equal.
	DirectBuckets int `json:"direct_buckets,omitempty"`
	TotalBuckets  int `json:"total_buckets,omitempty"`
}

// hotPathN is the vgg16-scale bucket the suite measures: 1 M float32
// elements = 4 MiB, the raw size of a large convolutional layer's bucket.
const hotPathN = 1 << 20

// bucketOp is the pooled typed exchange operation of the step sweep — the
// same shape the cluster runtime posts through comm.Post, so the benchmark
// pays exactly the training loop's posting cost (zero allocations).
type bucketOp struct {
	bk *compress.Bucketed
	b  int
	p  compress.Payload
	g  []float32
}

func (o *bucketOp) RunOp(c *comm.Communicator) error {
	return o.bk.ExchangeBucket(o.b, o.p, o.g, c)
}

// HotPath measures the steady-state hot path: warmed-instance Encode/Decode
// for the paper's compression set, the inproc allreduce, the tcpnet framed
// send/receive of a 4 MiB bucket, and one full bucketed synchronization step.
// Every measurement excludes the warm-up call that grows instance scratch, so
// allocs/op reports the steady state the training loop lives in.
func HotPath(w io.Writer) (*HotPathReport, error) {
	rep := &HotPathReport{GOMAXPROCS: runtime.GOMAXPROCS(0), ZeroCopyNet: tensor.BitsZeroCopy()}
	g := make([]float32, hotPathN)
	tensor.NewRNG(11).NormVec(g, 0, 0.05)

	add := func(name string, n int, bytesMoved int64, r testing.BenchmarkResult) {
		p := HotPathPoint{
			Name: name, N: n,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if bytesMoved > 0 && r.NsPerOp() > 0 {
			p.MBPerSec = float64(bytesMoved) / 1e6 * 1e9 / float64(r.NsPerOp())
		}
		rep.Points = append(rep.Points, p)
	}

	// Encode on a warm instance, per algorithm (Figure 2's quantity, now with
	// the allocation count alongside), plus qsgd-elias — its batched
	// Elias-gamma bit-writer is a hot-path kernel in its own right.
	encodeAlgos := append(append([]string(nil), Figure2Algos...), "qsgd-elias")
	for _, name := range encodeAlgos {
		alg := newAlgo(name, hotPathN, 3)
		alg.Encode(g) // warm-up: grows the instance scratch once
		add("encode/"+name, hotPathN, 4*hotPathN, testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alg.Encode(g)
			}
		}))
	}

	// QSGD decode of one packed stream into a warm destination.
	{
		o := compress.DefaultOptions(hotPathN)
		o.Seed = 3
		q := compress.NewQSGD(o)
		p := q.Encode(g)
		stream := append([]float32(nil), p.Data...) // retained copy (payload contract)
		dst := make([]float32, hotPathN)
		q.Decode(stream, dst)
		add("decode/qsgd", hotPathN, 4*hotPathN, testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q.Decode(stream, dst)
			}
		}))
	}

	// Inproc ring allreduce, 4 ranks in lockstep on one persistent fabric.
	add("allreduce/inproc-ring-4", hotPathN, 4*hotPathN, testing.Benchmark(func(b *testing.B) {
		const workers = 4
		f := comm.NewInprocFabric(workers)
		cs := f.Communicators()
		vs := make([][]float32, workers)
		for r := range vs {
			vs[r] = make([]float32, hotPathN)
		}
		warmAndRun := func(iters int) error {
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for r := 0; r < workers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						if err := cs[r].AllreduceMean(vs[r], comm.AlgoRing); err != nil {
							errs <- err
							return
						}
					}
				}(r)
			}
			wg.Wait()
			select {
			case err := <-errs:
				return err
			default:
				return nil
			}
		}
		if err := warmAndRun(1); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		if err := warmAndRun(b.N); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		f.Shutdown()
	}))

	// tcpnet framed transfer of one 4 MiB bucket: rank 0 streams to rank 1.
	var meshErr error
	add("tcpnet/sendrecv-4MiB", hotPathN, 2*4*hotPathN, testing.Benchmark(func(b *testing.B) {
		ts, shutdown, err := tcpnet.NewLocalMesh(2)
		if err != nil {
			meshErr = err
			b.Skip(err)
		}
		defer shutdown()
		src := make([]float32, hotPathN)
		copy(src, g)
		dst := make([]float32, hotPathN)
		run := func(iters int) error {
			done := make(chan error, 1)
			go func() {
				for i := 0; i < iters; i++ {
					if err := ts[1].Recv(0, 7, dst); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
			for i := 0; i < iters; i++ {
				if err := ts[0].Send(1, 7, src); err != nil {
					return err
				}
			}
			return <-done
		}
		if err := run(1); err != nil { // warm-up: grows the wire scratch
			meshErr = err
			b.Skip(err)
		}
		b.ResetTimer()
		if err := run(b.N); err != nil {
			meshErr = err
			b.Skip(err)
		}
	}))
	if meshErr != nil {
		return nil, fmt.Errorf("bench: hotpath tcpnet: %w", meshErr)
	}

	// One full bucketed synchronization step: 4 workers, the 4 MiB gradient in
	// 4 buckets — the shape of the training runtime's step loop — measured as
	// a concurrency sweep. "serial" blocks on each bucket's exchange before
	// encoding the next; "encode-only" is the pure local encode (the floor no
	// overlap can beat); the overlapped variants post every bucket as a typed
	// pooled operation and WaitAll, at concurrency 1 (the deterministic mode;
	// keeps the historical step/bucketed-a2sgd-4x4 name so the perf trajectory
	// stays comparable) and at 4 tag-space contexts. The sweep's best
	// overlapped time against the serial and encode-only anchors yields
	// OverlapEfficiency.
	stepBench := func(mode string, concurrency int) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			const workers, buckets = 4, 4
			f := comm.NewInprocFabric(workers)
			cs := f.Communicators()
			bounds := make([]int, buckets+1)
			for i := range bounds {
				bounds[i] = i * hotPathN / buckets
			}
			algs := make([]*compress.Bucketed, workers)
			grads := make([][]float32, workers)
			ops := make([][]bucketOp, workers)
			reqBufs := make([][]comm.Request, workers)
			for r := 0; r < workers; r++ {
				rr := r
				algs[r] = compress.NewBucketed(bounds, func(bk, n int) compress.Algorithm {
					o := compress.DefaultOptions(n)
					o.Seed = compress.BucketSeed(5, rr, bk)
					a, err := compress.Build(&compress.Spec{Name: "a2sgd"}, o)
					if err != nil {
						panic(err)
					}
					return a
				})
				grads[r] = make([]float32, hotPathN)
				copy(grads[r], g)
				ops[r] = make([]bucketOp, buckets)
				reqBufs[r] = make([]comm.Request, 0, buckets)
				if concurrency > 1 {
					if err := cs[r].SetConcurrency(concurrency); err != nil {
						b.Fatal(err)
					}
				}
			}
			step := func(r int) error {
				bk := algs[r]
				switch mode {
				case "encode":
					for i := 0; i < buckets; i++ {
						bk.EncodeBucket(i, bk.BucketSlice(i, grads[r]))
					}
					return nil
				case "serial":
					for i := 0; i < buckets; i++ {
						gb := bk.BucketSlice(i, grads[r])
						p := bk.EncodeBucket(i, gb)
						if err := bk.ExchangeBucket(i, p, gb, cs[r]); err != nil {
							return err
						}
					}
					return nil
				default: // overlap: typed pooled posts, then one WaitAll
					reqs := reqBufs[r][:0]
					for i := 0; i < buckets; i++ {
						gb := bk.BucketSlice(i, grads[r])
						ops[r][i] = bucketOp{bk: bk, b: i, p: bk.EncodeBucket(i, gb), g: gb}
						reqs = append(reqs, cs[r].Post(&ops[r][i]))
					}
					reqBufs[r] = reqs
					return comm.WaitAll(reqs)
				}
			}
			// run spawns the per-rank step loops gated on a start barrier, so
			// the measured pass can reset the timer (and the allocation
			// counter) after the goroutine spawns: what's counted is the
			// steps, not the harness.
			run := func(iters int, started func()) error {
				var wg sync.WaitGroup
				errs := make(chan error, workers)
				start := make(chan struct{})
				for r := 0; r < workers; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						<-start
						for i := 0; i < iters; i++ {
							if err := step(r); err != nil {
								errs <- err
								return
							}
						}
					}(r)
				}
				started()
				close(start)
				wg.Wait()
				select {
				case err := <-errs:
					return err
				default:
					return nil
				}
			}
			if err := run(1, func() {}); err != nil {
				b.Fatal(err)
			}
			err := run(b.N, b.ResetTimer)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			f.Shutdown()
		})
	}
	rSerial := stepBench("serial", 1)
	rEncode := stepBench("encode", 1)
	rCtx1 := stepBench("overlap", 1)
	rCtx4 := stepBench("overlap", 4)
	add("step/serial-4x4", hotPathN, 4*hotPathN, rSerial)
	add("step/encode-only-4x4", hotPathN, 4*hotPathN, rEncode)
	add("step/bucketed-a2sgd-4x4", hotPathN, 4*hotPathN, rCtx1)
	add("step/overlap-ctx4-4x4", hotPathN, 4*hotPathN, rCtx4)
	tSerial, tEncode := float64(rSerial.NsPerOp()), float64(rEncode.NsPerOp())
	tOverlap := float64(rCtx1.NsPerOp())
	if t4 := float64(rCtx4.NsPerOp()); t4 < tOverlap {
		tOverlap = t4
	}
	if hideable := tSerial - tEncode; hideable > 0 {
		rep.OverlapEfficiency = (tSerial - tOverlap) / hideable
	}

	// Direct-bucket probe: a short vgg16 run whose bucket plan packs several
	// parameter tensors per bucket. The strided-view pipeline must report
	// every bucket as direct (exchanged in place, no gather/scatter copy).
	{
		res, err := cluster.Train(cluster.Config{
			Workers: 2, Family: "vgg16",
			NewAlgorithm: func(rank, n int) compress.Algorithm {
				o := compress.DefaultOptions(n)
				o.Seed = 5
				a, err := compress.Build(&compress.Spec{Name: "a2sgd"}, o)
				if err != nil {
					panic(err)
				}
				return a
			},
			BucketBytes: 8192, Overlap: true,
			Epochs: 1, StepsPerEpoch: 2, BatchPerWorker: 2,
			Seed: 5, EvalBatch: 8,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: hotpath vgg16 direct-bucket probe: %w", err)
		}
		rep.DirectBuckets, rep.TotalBuckets = res.DirectBuckets, res.Buckets
		if res.DirectBuckets != res.Buckets {
			return nil, fmt.Errorf("bench: vgg16 plan exchanged %d of %d buckets in place, want all",
				res.DirectBuckets, res.Buckets)
		}
	}

	fmt.Fprintf(w, "Hot path steady state (n = %d elements, GOMAXPROCS = %d, zero-copy net = %v)\n",
		hotPathN, rep.GOMAXPROCS, rep.ZeroCopyNet)
	rows := make([][]string, 0, len(rep.Points))
	for _, p := range rep.Points {
		mb := ""
		if p.MBPerSec > 0 {
			mb = fmt.Sprintf("%.0f", p.MBPerSec)
		}
		rows = append(rows, []string{
			p.Name, fmt.Sprintf("%.0f", p.NsPerOp), fmt.Sprintf("%d", p.AllocsPerOp),
			fmt.Sprintf("%d", p.BytesPerOp), mb,
		})
	}
	table(w, []string{"op", "ns/op", "allocs/op", "B/op", "MB/s"}, rows)
	if rep.OverlapEfficiency != 0 {
		fmt.Fprintf(w, "overlap efficiency: %.2f (share of hideable exchange time the overlapped step hides)\n",
			rep.OverlapEfficiency)
	}
	fmt.Fprintf(w, "vgg16 direct buckets: %d/%d exchanged in place\n", rep.DirectBuckets, rep.TotalBuckets)
	return rep, nil
}
