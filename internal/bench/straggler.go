package bench

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"time"

	"a2sgd/internal/comm/faultnet"
	"a2sgd/internal/elastic"
	"a2sgd/internal/netsim"
	"a2sgd/internal/plan"
)

// StragglerConfig bounds the straggler-tolerance harness runs.
type StragglerConfig struct {
	// Family, Workers, Epochs, Steps configure each run (defaults fnn3 /
	// 4 / 2 / 10). Workers below 3 are raised to 4 so localization has
	// enough link diversity.
	Family                 string
	Workers, Epochs, Steps int
	// Seed fixes the training run and every fault scenario's RNG.
	Seed uint64
	// CheckpointEvery paces the health-evaluation boundaries (default 2).
	CheckpointEvery int
	// Rank is the straggling worker, Factor its link slowdown (defaults
	// 2 and 8).
	Rank   int
	Factor int
	// BackupSlots is the spare-worker pool for the recovery case
	// (default 1).
	BackupSlots int
	// MinSpeedup is the wall-clock ratio the backup case must reach over
	// the unmitigated straggler run (default 2).
	MinSpeedup float64
	// TCP runs the worker groups over loopback TCP.
	TCP bool
}

// StragglerCase is one scenario of the straggler matrix.
type StragglerCase struct {
	Name     string `json:"name"`
	Scenario string `json:"scenario,omitempty"`
	// Events is the escalation-ladder history the supervisor recorded.
	Events  []string `json:"events"`
	Backups int      `json:"backups,omitempty"`
	WallSec float64  `json:"wall_sec"`
	// BitwiseEqual reports whether the run's final checkpoint matched the
	// fault-free baseline byte for byte (slowdowns must never change math).
	BitwiseEqual bool `json:"bitwise_equal"`
	// Speedup is the unmitigated-straggler wall clock over this run's
	// (backup case only).
	Speedup float64 `json:"speedup,omitempty"`
	// StaleSec/ReplannedSec price the pre-drift and replanned schedules on
	// the measured fabric (drift case only).
	StaleSec     float64 `json:"stale_sec,omitempty"`
	ReplannedSec float64 `json:"replanned_sec,omitempty"`
	Err          string  `json:"err,omitempty"`
	Pass         bool    `json:"pass"`
}

// StragglerReport aggregates one straggler-matrix run.
type StragglerReport struct {
	Workers     int             `json:"workers"`
	Rank        int             `json:"rank"`
	Factor      int             `json:"factor"`
	BackupSlots int             `json:"backup_slots"`
	Cases       []StragglerCase `json:"cases"`
	Failures    int             `json:"failures"`
}

func (c *StragglerConfig) defaults() StragglerConfig {
	cfg := *c
	if cfg.Family == "" {
		cfg.Family = "fnn3"
	}
	if cfg.Workers < 3 {
		cfg.Workers = 4
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 2
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 11
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 2
	}
	if cfg.Rank <= 0 || cfg.Rank >= cfg.Workers {
		cfg.Rank = 2
	}
	if cfg.Factor <= 1 {
		cfg.Factor = 8
	}
	if cfg.BackupSlots <= 0 {
		cfg.BackupSlots = 1
	}
	if cfg.MinSpeedup <= 0 {
		cfg.MinSpeedup = 2
	}
	return cfg
}

// runStraggler supervises one run of the harness configuration under the
// given job shape, returning the supervisor result, the final checkpoint and
// the wall clock.
func runStraggler(cfg StragglerConfig, mutate func(*elastic.Job)) (*elastic.RunResult, []byte, time.Duration, error) {
	var ckpt bytes.Buffer
	ecfg := ElasticConfig{
		Family: cfg.Family, Workers: cfg.Workers, Epochs: cfg.Epochs,
		Steps: cfg.Steps, Seed: cfg.Seed, CheckpointEvery: cfg.CheckpointEvery,
	}
	cc := elasticBase(ecfg, &ckpt)
	// Halve the bucket budget: more messages per step makes the straggler's
	// per-message floor dominate the slow phase, which is what the backup
	// promotion is supposed to win back.
	cc.BucketBytes = 4096
	job := &elastic.Job{Config: cc, TCP: cfg.TCP}
	if mutate != nil {
		mutate(job)
	}
	start := time.Now()
	rr, err := job.Run()
	return rr, ckpt.Bytes(), time.Since(start), err
}

// Straggler runs the straggler-tolerance matrix: an unmitigated straggler
// must slow the run without changing a single bit of the result; promoting a
// backup worker must win back at least MinSpeedup of the lost wall clock,
// again bitwise against the fault-free baseline; and a degraded fabric must
// drift the measured α–β estimates far enough from the planning model to
// trigger a measured-fabric replan whose schedule prices no worse than the
// stale one on the fabric the run actually saw. A non-nil error means the
// harness itself could not run; matrix verdicts land in the report.
func Straggler(w io.Writer, c StragglerConfig) (*StragglerReport, error) {
	cfg := c.defaults()
	rep := &StragglerReport{Workers: cfg.Workers, Rank: cfg.Rank, Factor: cfg.Factor, BackupSlots: cfg.BackupSlots}
	scenario := fmt.Sprintf("seed(%d) deadline(10s) straggler(rank=%d, x%d)", cfg.Seed, cfg.Rank, cfg.Factor)

	finish := func(cse StragglerCase) {
		if !cse.Pass {
			rep.Failures++
		}
		rep.Cases = append(rep.Cases, cse)
	}

	// fault-free: the bitwise reference and the wall-clock floor.
	base := StragglerCase{Name: "fault-free"}
	_, baseCkpt, baseWall, err := runStraggler(cfg, nil)
	if err != nil {
		return nil, fmt.Errorf("bench: straggler baseline: %w", err)
	}
	if len(baseCkpt) == 0 {
		return nil, fmt.Errorf("bench: straggler baseline produced an empty checkpoint")
	}
	base.WallSec = baseWall.Seconds()
	base.BitwiseEqual, base.Pass = true, true
	finish(base)

	// straggler-unmitigated: the full slowdown, bit-for-bit the same model.
	slow := StragglerCase{Name: "straggler-unmitigated", Scenario: scenario}
	_, slowCkpt, slowWall, err := runStraggler(cfg, func(j *elastic.Job) {
		j.Scenario = faultnet.MustParse(scenario)
	})
	if err != nil {
		slow.Err = err.Error()
	} else {
		slow.WallSec = slowWall.Seconds()
		slow.BitwiseEqual = bytes.Equal(slowCkpt, baseCkpt)
		slow.Pass = slow.BitwiseEqual && slowWall > baseWall
	}
	finish(slow)

	// straggler-backup: the ladder must climb degrade → backup (never
	// evict), mask the slow links, and recover ≥ MinSpeedup of the wall
	// clock with an identical final model.
	bk := StragglerCase{Name: "straggler-backup", Scenario: scenario}
	rr, bkCkpt, bkWall, err := runStraggler(cfg, func(j *elastic.Job) {
		j.Scenario = faultnet.MustParse(scenario)
		j.BackupSlots = cfg.BackupSlots
	})
	if err != nil {
		bk.Err = err.Error()
	} else {
		bk.Events = eventStrings(rr)
		bk.Backups = rr.Backups
		bk.WallSec = bkWall.Seconds()
		bk.BitwiseEqual = bytes.Equal(bkCkpt, baseCkpt)
		if bkWall > 0 {
			bk.Speedup = slowWall.Seconds() / bkWall.Seconds()
		}
		degraded, backed, evicted := false, false, false
		for _, e := range rr.Events {
			switch e.Reason {
			case fmt.Sprintf("degrade(rank=%d)", cfg.Rank):
				degraded = true
			case fmt.Sprintf("backup(rank=%d)", cfg.Rank):
				backed = true
			case fmt.Sprintf("evict(rank=%d)", cfg.Rank):
				evicted = true
			}
		}
		bk.Pass = degraded && backed && !evicted && rr.Backups == cfg.BackupSlots &&
			bk.BitwiseEqual && bk.Speedup >= cfg.MinSpeedup
	}
	finish(bk)

	// degrade-replan: plan a schedule on the fabric a healthy probe run
	// measures, then degrade the straggler's links; the supervisor must see
	// the measured α–β drift from that model and replan on the fabric it
	// actually observed, and the fresh schedule must price no worse than
	// the stale one there.
	dr := StragglerCase{Name: "degrade-replan"}
	if cse, err := stragglerDrift(cfg, scenario); err != nil {
		dr.Err = err.Error()
	} else {
		dr = cse
	}
	finish(dr)

	if w != nil {
		fmt.Fprintf(w, "straggler matrix: %d workers, rank %d x%d, %d backup slot(s), checkpoint every %d, seed %d\n",
			cfg.Workers, cfg.Rank, cfg.Factor, cfg.BackupSlots, cfg.CheckpointEvery, cfg.Seed)
		rows := make([][]string, 0, len(rep.Cases))
		for _, cse := range rep.Cases {
			verdict := "PASS"
			if !cse.Pass {
				verdict = "FAIL"
			}
			detail := fmt.Sprintf("bitwise=%v", cse.BitwiseEqual)
			if cse.Speedup > 0 {
				detail += fmt.Sprintf(" speedup=%.1fx", cse.Speedup)
			}
			if cse.ReplannedSec > 0 {
				detail = fmt.Sprintf("stale=%.3gs replanned=%.3gs", cse.StaleSec, cse.ReplannedSec)
			}
			rows = append(rows, []string{
				cse.Name,
				fmt.Sprintf("%.1f", cse.WallSec*1000),
				detail,
				strings.Join(cse.Events, " "),
				verdict,
			})
		}
		table(w, []string{"scenario", "wall ms", "detail", "ladder", "verdict"}, rows)
		for _, cse := range rep.Cases {
			if !cse.Pass && cse.Err != "" {
				fmt.Fprintf(w, "FAIL %s: err=%s\n", cse.Name, cse.Err)
			}
		}
	}
	if rep.Failures > 0 {
		names := make([]string, 0, rep.Failures)
		for _, cse := range rep.Cases {
			if !cse.Pass {
				names = append(names, cse.Name)
			}
		}
		return rep, fmt.Errorf("bench: straggler: %d scenario(s) missed their contract: %s",
			rep.Failures, strings.Join(names, ", "))
	}
	return rep, nil
}

// stragglerDrift runs the drift leg of the matrix. The schedule-driven
// configuration replaces the hand-tuned bucket knobs so a replan can swap
// the schedule mid-run; BackupSlots keeps the degraded rank in the world so
// the stale and fresh schedules price at the same worker count.
func stragglerDrift(cfg StragglerConfig, _ string) (StragglerCase, error) {
	cse := StragglerCase{Name: "degrade-replan"}
	segs, _, err := familySegments(cfg.Family, 0)
	if err != nil {
		return cse, err
	}

	scheduleJob := func(sched *plan.Schedule, mutate func(*elastic.Job)) (*elastic.RunResult, time.Duration, error) {
		var ckpt bytes.Buffer
		ecfg := ElasticConfig{
			Family: cfg.Family, Workers: cfg.Workers, Epochs: cfg.Epochs,
			Steps: cfg.Steps, Seed: cfg.Seed, CheckpointEvery: cfg.CheckpointEvery,
		}
		cc := elasticBase(ecfg, &ckpt)
		cc.BucketBytes, cc.Overlap, cc.NewBucketAlgorithm = 0, false, nil
		cc.Schedule = sched
		job := &elastic.Job{Config: cc, TCP: cfg.TCP}
		if mutate != nil {
			mutate(job)
		}
		start := time.Now()
		rr, err := job.Run()
		return rr, time.Since(start), err
	}

	// Probe pass: measure the healthy fabric the planner should model.
	modelSched, err := plan.Build(segs, plan.Options{Workers: cfg.Workers, Pricer: netsim.IB100()})
	if err != nil {
		return cse, err
	}
	probe, _, err := scheduleJob(modelSched, func(j *elastic.Job) { j.Health = true })
	if err != nil {
		return cse, fmt.Errorf("probe run: %w", err)
	}
	if probe.Measured == nil {
		return cse, fmt.Errorf("probe run measured no fabric")
	}
	model := *probe.Measured

	// Stale schedule: planned on the healthy measurement.
	stale, err := plan.Build(segs, plan.Options{Workers: cfg.Workers, Pricer: model})
	if err != nil {
		return cse, err
	}

	scenario := fmt.Sprintf("seed(%d) deadline(10s) degrade(rank=%d, after=0, factor=%d, ramp=0)",
		cfg.Seed, cfg.Rank, cfg.Factor)
	cse.Scenario = scenario
	var replanned *plan.Schedule
	var replanFabric netsim.Fabric
	rr, wall, err := scheduleJob(stale, func(j *elastic.Job) {
		j.Scenario = faultnet.MustParse(scenario)
		j.BackupSlots = cfg.BackupSlots
		j.DriftReplan = true
		j.DriftModel = model
		j.ReplanMeasured = func(world int, measured netsim.Fabric) (*plan.Schedule, error) {
			sched, err := plan.Build(segs, plan.Options{Workers: world, Pricer: measured})
			if err != nil {
				return nil, err
			}
			if replanned == nil {
				replanned, replanFabric = sched, measured
			}
			return sched, nil
		}
	})
	if err != nil {
		return cse, err
	}
	cse.Events = eventStrings(rr)
	cse.Backups = rr.Backups
	cse.WallSec = wall.Seconds()
	replanEvent := false
	for _, e := range rr.Events {
		if strings.HasPrefix(e.Reason, "replan(") {
			replanEvent = true
		}
	}
	if !replanEvent || replanned == nil {
		return cse, fmt.Errorf("degraded fabric never triggered a replan (events %v)", cse.Events)
	}
	stalePrice, err := plan.Reprice(stale, segs, replanFabric)
	if err != nil {
		return cse, err
	}
	newPrice, err := plan.Reprice(replanned, segs, replanFabric)
	if err != nil {
		return cse, err
	}
	cse.StaleSec, cse.ReplannedSec = stalePrice.Pipelined, newPrice.Pipelined
	cse.Pass = newPrice.Pipelined <= stalePrice.Pipelined
	return cse, nil
}
