// Package bench regenerates every table and figure of the paper's
// evaluation section:
//
//	Figure 1  — gradient-distribution progression (FNN-3, ResNet-20)
//	Figure 2  — compression compute time vs parameter count
//	Figure 3  — convergence accuracy/perplexity per algorithm (+ Figs 6–8,
//	            which are the same experiment at 2/4/16 workers)
//	Figure 4  — average iteration time vs worker count
//	Figure 5  — total training time vs worker count
//	Table 1   — experimental setup
//	Table 2   — synchronization complexities and scaling efficiency
//
// Runners return structured results for tests and render aligned-text
// tables (plus CSV) for humans. EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"fmt"
	"io"
	"strings"

	"a2sgd/internal/compress"
	"a2sgd/internal/models"
	"a2sgd/internal/netsim"
)

// EvalAlgos is the paper's five-method evaluation set, legend order
// (derived from the shared registry's evaluated list).
var EvalAlgos = compress.Evaluated()

// newAlgo builds an algorithm spec for an n-parameter model with the
// paper's default hyperparameters. Any registered spec works, so sweeps can
// take full specs ("qsgd(levels=8)") as well as bare names.
func newAlgo(spec string, n int, seed uint64) compress.Algorithm {
	return newAlgoDensity(spec, n, seed, 0)
}

// newAlgoDensity is newAlgo with a sparsifier-density override (0 keeps the
// paper default of 0.001).
func newAlgoDensity(spec string, n int, seed uint64, density float64) compress.Algorithm {
	o := compress.DefaultOptions(n)
	o.Seed = seed
	if density > 0 {
		o.Density = density
	}
	a, err := compress.ParseBuild(spec, o)
	if err != nil {
		panic("bench: " + err.Error())
	}
	return a
}

// table renders rows as an aligned text table.
func table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// csvOut renders rows as CSV (for plotting).
func csvOut(w io.Writer, header []string, rows [][]string) {
	fmt.Fprintln(w, strings.Join(header, ","))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}

// Table1 prints the experimental-setup table (paper Table 1) with this
// repository's reduced-scale counterparts alongside.
func Table1(w io.Writer) error {
	type row struct {
		model, dataset, batch, lr, policy string
	}
	meta := map[string]row{
		"fnn3":     {"FNN-3", "MNIST → synthetic Gaussian clusters", "128", "0.01", "LS(1x)+GW+PD"},
		"vgg16":    {"VGG-16", "CIFAR10 → synthetic textures", "128", "0.1", "LS(1.5x)+GW+PD+LARS"},
		"resnet20": {"ResNet-20", "CIFAR10 → synthetic textures", "128", "0.1", "LS(1x)+GW+PD"},
		"lstm":     {"LSTM-PTB", "PTB → synthetic Zipf-Markov stream", "128", "22", "PD"},
	}
	var rows [][]string
	for _, fam := range models.Families() {
		m := meta[fam]
		paperN, err := models.PaperParamCount(fam)
		if err != nil {
			return err
		}
		reduced, err := models.New(models.Config{Family: fam, Seed: 1, Reduced: true})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			m.model, m.dataset, fmt.Sprintf("%d", paperN),
			fmt.Sprintf("%d", reduced.NumParams()), m.batch, m.lr, m.policy,
		})
	}
	fmt.Fprintln(w, "Table 1: Experimental Setup (paper #Parameters vs this repo's reduced trainable scale)")
	table(w, []string{"Model", "Dataset", "#Params(paper)", "#Params(reduced)", "Batch", "LR", "Policy"}, rows)
	return nil
}

// fabricOrDefault returns IB100 when f is zero-valued.
func fabricOrDefault(f netsim.Fabric) netsim.Fabric {
	if f.Alpha == 0 && f.Beta == 0 {
		return netsim.IB100()
	}
	return f
}
