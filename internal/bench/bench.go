// Package bench regenerates every table and figure of the paper's
// evaluation section:
//
//	Figure 1  — gradient-distribution progression (FNN-3, ResNet-20)
//	Figure 2  — compression compute time vs parameter count
//	Figure 3  — convergence accuracy/perplexity per algorithm (+ Figs 6–8,
//	            which are the same experiment at 2/4/16 workers)
//	Figure 4  — average iteration time vs worker count
//	Figure 5  — total training time vs worker count
//	Table 1   — experimental setup
//	Table 2   — synchronization complexities and scaling efficiency
//
// Runners return structured results for tests and render aligned-text
// tables (plus CSV) for humans. EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"a2sgd/internal/compress"
	_ "a2sgd/internal/core" // registers a2sgd and its ablation variants
	"a2sgd/internal/models"
	"a2sgd/internal/netsim"
)

// EvalAlgos is the paper's five-method evaluation set, legend order
// (derived from the shared registry's evaluated list).
var EvalAlgos = compress.Evaluated()

// newAlgo builds an algorithm spec for an n-parameter model with the
// paper's default hyperparameters, straight through the registry. Any
// registered spec works, so sweeps can take full specs ("qsgd(levels=8)")
// as well as bare names.
func newAlgo(spec string, n int, seed uint64) compress.Algorithm {
	o := compress.DefaultOptions(n)
	o.Seed = seed
	a, err := compress.ParseBuild(spec, o)
	if err != nil {
		panic("bench: " + err.Error())
	}
	return a
}

// specWithDensity lowers a sparsifier-density override onto a spec string,
// in the grammar itself: the parameter is attached wherever an algorithm in
// the spec tree — the root or a wrapped inner spec — declares "density" in
// its registered schema and does not already carry one (an explicit
// density= always wins). Non-sparsifiers pass through untouched, so one
// override can apply to a mixed algorithm list, and wrappers forward it to
// their inner algorithms ("periodic(topk, interval=2)" trains topk at the
// override), matching how the deleted Options.Density plumbing behaved.
func specWithDensity(spec string, density float64) string {
	if density <= 0 {
		return spec
	}
	s, err := compress.Parse(spec)
	if err != nil {
		panic("bench: " + err.Error())
	}
	applyDensity(s, strconv.FormatFloat(density, 'g', -1, 64))
	return s.String()
}

// applyDensity walks a spec tree, attaching density= to every algorithm
// whose schema accepts it (unknown names pass through for ParseBuild's
// usage-listing error). Positional bare-name arguments are inner algorithm
// specs; they are promoted to nested specs only when the override applies.
func applyDensity(s *compress.Spec, density string) {
	if b, ok := compress.LookupBuilder(s.Name); ok {
		for _, p := range b.Params {
			if p.Name == "density" {
				s.SetKeyed("density", density)
			}
		}
	}
	for i := range s.Args {
		a := &s.Args[i]
		if a.Key != "" {
			continue
		}
		if a.Value.Spec != nil {
			applyDensity(a.Value.Spec, density)
			continue
		}
		inner, err := a.Value.AsSpec()
		if err != nil {
			continue
		}
		if _, ok := compress.LookupBuilder(inner.Name); !ok {
			continue
		}
		applyDensity(inner, density)
		if len(inner.Args) > 0 {
			a.Value = compress.Value{Spec: inner}
		}
	}
}

// table renders rows as an aligned text table.
func table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// csvOut renders rows as CSV (for plotting).
func csvOut(w io.Writer, header []string, rows [][]string) {
	fmt.Fprintln(w, strings.Join(header, ","))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}

// Table1 prints the experimental-setup table (paper Table 1) with this
// repository's reduced-scale counterparts alongside.
func Table1(w io.Writer) error {
	type row struct {
		model, dataset, batch, lr, policy string
	}
	meta := map[string]row{
		"fnn3":     {"FNN-3", "MNIST → synthetic Gaussian clusters", "128", "0.01", "LS(1x)+GW+PD"},
		"vgg16":    {"VGG-16", "CIFAR10 → synthetic textures", "128", "0.1", "LS(1.5x)+GW+PD+LARS"},
		"resnet20": {"ResNet-20", "CIFAR10 → synthetic textures", "128", "0.1", "LS(1x)+GW+PD"},
		"lstm":     {"LSTM-PTB", "PTB → synthetic Zipf-Markov stream", "128", "22", "PD"},
	}
	var rows [][]string
	for _, fam := range models.Families() {
		m := meta[fam]
		paperN, err := models.PaperParamCount(fam)
		if err != nil {
			return err
		}
		reduced, err := models.New(models.Config{Family: fam, Seed: 1, Reduced: true})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			m.model, m.dataset, fmt.Sprintf("%d", paperN),
			fmt.Sprintf("%d", reduced.NumParams()), m.batch, m.lr, m.policy,
		})
	}
	fmt.Fprintln(w, "Table 1: Experimental Setup (paper #Parameters vs this repo's reduced trainable scale)")
	table(w, []string{"Model", "Dataset", "#Params(paper)", "#Params(reduced)", "Batch", "LR", "Policy"}, rows)
	return nil
}

// fabricOrDefault returns IB100 when f is zero-valued.
func fabricOrDefault(f netsim.Fabric) netsim.Fabric {
	if f.Alpha == 0 && f.Beta == 0 {
		return netsim.IB100()
	}
	return f
}
