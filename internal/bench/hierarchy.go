package bench

import (
	"fmt"
	"io"

	"a2sgd/internal/cluster"
	"a2sgd/internal/compress"
	"a2sgd/internal/netsim"
)

// HierarchySweepConfig bounds the hierarchical-topology ablation runs.
type HierarchySweepConfig struct {
	// Family, Workers, Epochs, Steps configure each training run (defaults
	// fnn3 / 8 / 2 / 8).
	Family                 string
	Workers, Epochs, Steps int
	// RanksPerNode lists the node widths to sweep; 1 is the flat baseline.
	// Default {1, 2, Workers/2}.
	RanksPerNode []int
	// BucketBytes lists the bucket budgets crossed with each topology
	// (0 = whole model). Default {0, 8192}.
	BucketBytes []int
	// Intra and Inter parameterize the two-tier price law (defaults
	// NVLink-class and the paper's IB100).
	Intra, Inter netsim.Fabric
	// Algorithms defaults to the paper's five-method evaluation set.
	Algorithms []string
}

// HierarchyPoint is one (algorithm, ranks-per-node, bucket budget) cell.
type HierarchyPoint struct {
	Algorithm string
	// RanksPerNode is the node width the cell actually ran with (requested
	// widths clamp to the worker count; duplicates are skipped). 1 = flat.
	RanksPerNode int
	BucketBytes  int
	Buckets      int
	// StepSec is the measured wall-clock per overlapped step on the
	// in-process fabric.
	StepSec float64
	// ModelFlatSec prices the run's full iteration as if every link were
	// the slow inter-node tier (the paper's flat assumption);
	// ModelHierSec prices the two-level schedule on the two-tier law. Their
	// gap is what the hierarchy saves per iteration.
	ModelFlatSec, ModelHierSec float64
	// SyncFlatSec and SyncHierSec isolate the modelled synchronization time
	// (per-bucket collectives, no compute/encode) under the flat and
	// two-tier price laws — the pure network effect of the topology.
	SyncFlatSec, SyncHierSec float64
	// FinalMetric demonstrates convergence equivalence across topologies.
	FinalMetric float64
}

func (c *HierarchySweepConfig) defaults() HierarchySweepConfig {
	cfg := *c
	if cfg.Family == "" {
		cfg.Family = "fnn3"
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 2
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 8
	}
	if len(cfg.RanksPerNode) == 0 {
		cfg.RanksPerNode = []int{1, 2}
		if cfg.Workers/2 > 2 {
			cfg.RanksPerNode = append(cfg.RanksPerNode, cfg.Workers/2)
		}
	}
	if len(cfg.BucketBytes) == 0 {
		cfg.BucketBytes = []int{0, 8192}
	}
	if cfg.Intra.Name == "" {
		cfg.Intra = netsim.NVLinkLocal()
	}
	if cfg.Inter.Name == "" {
		cfg.Inter = netsim.IB100()
	}
	if len(cfg.Algorithms) == 0 {
		cfg.Algorithms = EvalAlgos
	}
	return cfg
}

// HierarchySweep runs the ranks-per-node × algorithm × bucket-size ablation:
// every evaluated algorithm trains with each topology width over the
// overlapped bucket pipeline, and each run's synchronization is priced twice
// — on the flat slow fabric (every link inter-node, the paper's assumption)
// and on the two-tier law matching the run's topology. The flat-vs-
// hierarchical gap extends the paper's Figures 4–5 fabric analysis along a
// topology axis the paper never measured.
func HierarchySweep(w io.Writer, c HierarchySweepConfig) ([]HierarchyPoint, error) {
	cfg := c.defaults()
	var points []HierarchyPoint
	seen := map[[2]int]bool{} // (effective rpn, bucket) cells already run per algorithm
	for _, algo := range cfg.Algorithms {
		for k := range seen {
			delete(seen, k)
		}
		for _, rpn := range cfg.RanksPerNode {
			for _, bb := range cfg.BucketBytes {
				// Widths beyond the worker count clamp to one node; skip the
				// duplicate cells so every reported row names a topology that
				// actually ran.
				eff := rpn
				if eff < 1 {
					eff = 1
				}
				if eff > cfg.Workers {
					eff = cfg.Workers
				}
				if seen[[2]int{eff, bb}] {
					if w != nil {
						fmt.Fprintf(w, "hierarchy sweep: ranks/node %d clamps to %d for %d workers — skipping duplicate cell\n",
							rpn, eff, cfg.Workers)
					}
					continue
				}
				seen[[2]int{eff, bb}] = true
				topo := 0
				if eff > 1 {
					topo = eff
				}
				res, err := cluster.Train(cluster.Config{
					Workers: cfg.Workers, Family: cfg.Family,
					Epochs: cfg.Epochs, StepsPerEpoch: cfg.Steps,
					Seed: 11, BucketBytes: bb, Overlap: true, Topology: topo,
					NewBucketAlgorithm: func(rank int, info compress.BucketInfo) compress.Algorithm {
						return newAlgo(algo, info.Params, uint64(rank+1)+uint64(info.Index)*1_000_003)
					},
				})
				if err != nil {
					return nil, fmt.Errorf("bench: %s rpn=%d bucket=%dB: %w", algo, eff, bb, err)
				}
				two := netsim.TwoTier{
					Name:  cfg.Intra.Name + "+" + cfg.Inter.Name,
					Intra: cfg.Intra, Inter: cfg.Inter, RanksPerNode: eff,
				}
				var syncFlat, syncHier float64
				for _, pb := range res.BucketPayloadBytes {
					syncFlat += cfg.Inter.SyncTime(res.ExchangeKind, pb, res.Workers)
					syncHier += two.SyncTime(res.ExchangeKind, pb, res.Workers)
				}
				points = append(points, HierarchyPoint{
					Algorithm:    algo,
					RanksPerNode: eff,
					BucketBytes:  bb,
					Buckets:      res.Buckets,
					StepSec:      res.AvgStepSec,
					ModelFlatSec: res.ModeledIterSecOverlap(cfg.Inter),
					ModelHierSec: res.ModeledIterSecOverlap(two),
					SyncFlatSec:  syncFlat,
					SyncHierSec:  syncHier,
					FinalMetric:  res.FinalMetric(),
				})
			}
		}
	}
	if w != nil {
		rows := make([][]string, 0, len(points))
		for _, p := range points {
			bb := "whole"
			if p.BucketBytes > 0 {
				bb = fmt.Sprintf("%dB", p.BucketBytes)
			}
			speedup := 1.0
			if p.SyncHierSec > 0 {
				speedup = p.SyncFlatSec / p.SyncHierSec
			}
			rows = append(rows, []string{
				p.Algorithm, fmt.Sprintf("%d", p.RanksPerNode), bb,
				fmt.Sprintf("%d", p.Buckets),
				fmt.Sprintf("%.1f", p.StepSec*1e6),
				fmt.Sprintf("%.2f", p.SyncFlatSec*1e6),
				fmt.Sprintf("%.2f", p.SyncHierSec*1e6),
				fmt.Sprintf("%.2fx", speedup),
				fmt.Sprintf("%.2f", p.ModelHierSec*1e6),
				fmt.Sprintf("%.4f", p.FinalMetric),
			})
		}
		fmt.Fprintf(w, "hierarchy sweep — %s, %d workers, intra %s / inter %s (µs/iter)\n",
			cfg.Family, cfg.Workers, cfg.Intra.Name, cfg.Inter.Name)
		table(w, []string{
			"algorithm", "ranks/node", "bucket", "k",
			"step-meas", "sync-flat", "sync-hier", "sync-gain", "iter-hier", "metric",
		}, rows)
	}
	return points, nil
}
