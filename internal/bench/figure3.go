package bench

import (
	"fmt"
	"io"

	"a2sgd/internal/cluster"
	"a2sgd/internal/compress"
	"a2sgd/internal/models"
)

// Figure3Series is one convergence curve: a model × algorithm × worker-count
// cell of the paper's Figures 3 and 6–8.
type Figure3Series struct {
	Family    string
	Algo      string
	Workers   int
	Metric    models.Metric
	PerEpoch  []float64 // accuracy (↑) or perplexity (↓) per epoch
	FinalLoss float64
}

// Figure3Config bounds the convergence sweep.
type Figure3Config struct {
	Families []string // default: all four
	Algos    []string // default: the five evaluated methods
	Workers  []int    // default: {8} (Fig 3); {2,4,16} adds Figs 6–8
	Epochs   int      // default 8
	Steps    int      // default 12 steps/epoch
	Batch    int      // default 8 per worker
	Seed     uint64   // default 7
	// Density is the sparsifier selection fraction. The paper's 0.001
	// yields k in the tens of thousands on its 14–66 M-parameter models;
	// on the reduced CPU-trainable models (3–27 k parameters) the same
	// fraction would select single-digit k and starve Top-K/Gaussian-K.
	// The default 0.05 keeps k at a comparable effective magnitude.
	Density float64
	// LRScale multiplies the Table-1 schedules. The paper's linear-scaled
	// rates are tuned for its full-size models and datasets; the reduced
	// models tolerate less. Default 0.5 (the LSTM policy additionally
	// carries its own 0.25 calibration inside the runtime).
	LRScale float64
}

func (c Figure3Config) withDefaults() Figure3Config {
	if len(c.Families) == 0 {
		c.Families = models.Families()
	}
	if len(c.Algos) == 0 {
		c.Algos = EvalAlgos
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{8}
	}
	if c.Epochs <= 0 {
		c.Epochs = 8
	}
	if c.Steps <= 0 {
		c.Steps = 12
	}
	if c.Batch <= 0 {
		c.Batch = 8
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.Density == 0 {
		c.Density = 0.05
	}
	if c.LRScale == 0 {
		c.LRScale = 0.5
	}
	return c
}

// Figure3 runs the convergence comparison and prints one table per
// (family, workers) pair with a column per algorithm, mirroring the paper's
// accuracy/perplexity-vs-epoch panels.
func Figure3(w io.Writer, cfg Figure3Config) ([]Figure3Series, error) {
	cfg = cfg.withDefaults()
	var out []Figure3Series
	for _, p := range cfg.Workers {
		for _, fam := range cfg.Families {
			series := make([]Figure3Series, 0, len(cfg.Algos))
			for _, algo := range cfg.Algos {
				// The density override lowers onto the spec itself (the
				// registry's schema decides whether the root accepts it).
				spec := specWithDensity(algo, cfg.Density)
				res, err := cluster.Train(cluster.Config{
					Workers: p, Family: fam,
					NewAlgorithm: func(rank, n int) compress.Algorithm {
						return newAlgo(spec, n, cfg.Seed*31+uint64(rank)+1)
					},
					Epochs: cfg.Epochs, StepsPerEpoch: cfg.Steps,
					BatchPerWorker: cfg.Batch, Seed: cfg.Seed, Momentum: 0.9,
					LRScale: cfg.LRScale,
				})
				if err != nil {
					return nil, fmt.Errorf("figure3 %s/%s/p%d: %w", fam, algo, p, err)
				}
				s := Figure3Series{Family: fam, Algo: algo, Workers: p, Metric: res.Metric}
				for _, e := range res.Epochs {
					s.PerEpoch = append(s.PerEpoch, e.Metric)
				}
				if len(res.Epochs) > 0 {
					s.FinalLoss = res.Epochs[len(res.Epochs)-1].Loss
				}
				series = append(series, s)
				out = append(out, s)
			}
			metricName := "top-1 accuracy"
			if series[0].Metric == models.MetricPerplexity {
				metricName = "perplexity"
			}
			fmt.Fprintf(w, "\nFigure 3 (%s, %d workers): %s per epoch\n", fam, p, metricName)
			header := []string{"epoch"}
			for _, s := range series {
				header = append(header, s.Algo)
			}
			var rows [][]string
			for e := 0; e < cfg.Epochs; e++ {
				row := []string{fmt.Sprintf("%d", e)}
				for _, s := range series {
					if e < len(s.PerEpoch) {
						row = append(row, fmt.Sprintf("%.4f", s.PerEpoch[e]))
					} else {
						row = append(row, "-")
					}
				}
				rows = append(rows, row)
			}
			table(w, header, rows)
		}
	}
	return out, nil
}
