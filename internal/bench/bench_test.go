package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"a2sgd/internal/models"
	"a2sgd/internal/netsim"
)

func TestTable1ListsAllFamilies(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, s := range []string{"FNN-3", "VGG-16", "ResNet-20", "LSTM-PTB", "199210", "66034000"} {
		if !strings.Contains(out, s) {
			t.Errorf("Table 1 missing %q:\n%s", s, out)
		}
	}
}

func TestFigure1GradientConcentration(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure1(&buf, 4, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("expected 2 models, got %d", len(res))
	}
	for _, r := range res {
		if len(r.Histograms) != 4 {
			t.Fatalf("%s: %d captures", r.Family, len(r.Histograms))
		}
		// The paper's qualitative claim: the distribution is centered near
		// zero and concentrates as training progresses. Check that the
		// final capture's peak mass is at least the first's (weak
		// monotonicity to keep the test robust to short runs).
		first, last := r.PeakFracs[0], r.PeakFracs[len(r.PeakFracs)-1]
		if last < first*0.8 {
			t.Errorf("%s: peak fraction fell %v -> %v", r.Family, first, last)
		}
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Error("missing output header")
	}
}

func TestFigure2OrderingAtScale(t *testing.T) {
	var buf bytes.Buffer
	pts, err := Figure2(&buf, []int{2_000_000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sec := map[string]float64{}
	for _, p := range pts {
		sec[p.Algo] = p.Seconds
	}
	// The paper's Figure 2 ordering: A2SGD cheapest (single pass, no
	// selection), Top-K and QSGD the most expensive.
	if !(sec["a2sgd"] < sec["topk"]) {
		t.Errorf("a2sgd (%v) should beat topk (%v)", sec["a2sgd"], sec["topk"])
	}
	if !(sec["a2sgd"] < sec["qsgd"]) {
		t.Errorf("a2sgd (%v) should beat qsgd (%v)", sec["a2sgd"], sec["qsgd"])
	}
	if !(sec["gaussiank"] < sec["topk"]) {
		t.Errorf("gaussiank (%v) should beat topk (%v)", sec["gaussiank"], sec["topk"])
	}
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Error("missing output header")
	}
}

func TestFigure3ConvergenceOrdering(t *testing.T) {
	var buf bytes.Buffer
	series, err := Figure3(&buf, Figure3Config{
		Families: []string{"fnn3"},
		Algos:    []string{"dense", "a2sgd", "topk"},
		Workers:  []int{4},
		Epochs:   6, Steps: 10, Batch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := map[string]float64{}
	for _, s := range series {
		final[s.Algo] = s.PerEpoch[len(s.PerEpoch)-1]
	}
	// A2SGD must land close to dense (the paper's convergence claim).
	if final["a2sgd"] < final["dense"]-0.15 {
		t.Errorf("a2sgd %.3f far below dense %.3f", final["a2sgd"], final["dense"])
	}
	// All methods must clear chance (0.1 for 10 classes).
	for a, v := range final {
		if v < 0.2 {
			t.Errorf("%s final accuracy %.3f barely above chance", a, v)
		}
	}
}

func TestIterModelAndFigure45(t *testing.T) {
	// paramScale 100 keeps the measurement fast while preserving ordering.
	m, err := NewIterModel(netsim.IB100(), 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range models.Families() {
		if m.N[fam] < 1000 {
			t.Errorf("%s: n=%d", fam, m.N[fam])
		}
		// A2SGD's iteration must beat dense for every family at 16 workers
		// (communication dominates at paper scale).
		if !(m.IterSec(fam, "a2sgd", 16) <= m.IterSec(fam, "dense", 16)) {
			t.Errorf("%s: a2sgd iter %.5f > dense %.5f", fam,
				m.IterSec(fam, "a2sgd", 16), m.IterSec(fam, "dense", 16))
		}
	}
	var buf bytes.Buffer
	cells4 := Figure4(&buf, m, nil)
	if len(cells4) != 4*5*4 {
		t.Errorf("figure4 cells: %d", len(cells4))
	}
	cells5 := Figure5(&buf, m, nil)
	if len(cells5) != 4*5*4 {
		t.Errorf("figure5 cells: %d", len(cells5))
	}
	// Figure 5's data-parallel speedup: total time falls with more workers
	// for A2SGD on every family.
	tot := map[string]map[int]float64{}
	for _, c := range cells5 {
		if c.Algo == "a2sgd" {
			if tot[c.Family] == nil {
				tot[c.Family] = map[int]float64{}
			}
			tot[c.Family][c.Workers] = c.TotalSec
		}
	}
	for fam, byP := range tot {
		if !(byP[16] < byP[2]) {
			t.Errorf("%s: total time did not fall with workers: %v", fam, byP)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "Figure 5") {
		t.Error("missing headers")
	}
}

func TestTable2ScalingEfficiency(t *testing.T) {
	m, err := NewIterModel(netsim.IB100(), 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	eff := Table2(&buf, m)
	// Dense at 8 workers vs itself at 2 workers must show speedup > 1.
	for fam, e := range eff["dense"] {
		if e <= 1 {
			t.Errorf("dense scaling eff for %s = %v, want > 1", fam, e)
		}
	}
	// A2SGD must scale at least as well as dense on the big models — the
	// Table 2 shape (6.37× vs 2.34× for LSTM).
	if eff["a2sgd"]["lstm"] < eff["dense"]["lstm"] {
		t.Errorf("a2sgd lstm eff %v < dense %v", eff["a2sgd"]["lstm"], eff["dense"]["lstm"])
	}
	out := buf.String()
	for _, s := range []string{"O(n + k log n)", "64", "32n"} {
		if !strings.Contains(out, s) {
			t.Errorf("Table 2 missing %q", s)
		}
	}
}

func TestMixedSweepComparesPolicies(t *testing.T) {
	cfg := MixedSweepConfig{
		Workers: 2, Epochs: 1, Steps: 4,
		BucketBytes: []int{8192},
		Policies: []string{
			"uniform(dense)",
			"mixed(big=a2sgd, small=dense, threshold=8KiB)",
		},
	}
	var buf bytes.Buffer
	points, err := MixedSweep(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	uni, mix := points[0], points[1]
	if mix.Policy != "mixed(big=a2sgd, small=dense, threshold=8KiB)" {
		t.Errorf("policy name %q", mix.Policy)
	}
	if !strings.Contains(mix.Composition, "a2sgd") || !strings.Contains(mix.Composition, "dense") {
		t.Errorf("mixed composition %q", mix.Composition)
	}
	// Compressing the big buckets must cut the per-worker payload.
	if mix.PayloadBytes >= uni.PayloadBytes {
		t.Errorf("mixed payload %d not below uniform dense %d", mix.PayloadBytes, uni.PayloadBytes)
	}
	for _, p := range points {
		if p.ModelOverlapSec > p.ModelSerialSec {
			t.Errorf("%s: overlap law %v exceeds serial %v", p.Policy, p.ModelOverlapSec, p.ModelSerialSec)
		}
		if p.ModelSerialSec <= 0 {
			t.Errorf("%s: non-positive modelled time", p.Policy)
		}
	}
	if !strings.Contains(buf.String(), "model-overlap") {
		t.Error("missing table header")
	}
	// Deterministic per seed: a second sweep reproduces the metrics.
	again, err := MixedSweep(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if points[i].FinalMetric != again[i].FinalMetric {
			t.Errorf("%s: metric %v vs %v across reruns", points[i].Policy, points[i].FinalMetric, again[i].FinalMetric)
		}
	}
}

func TestNewAlgoUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newAlgo("nope", 10, 1)
}

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	table(&buf, []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	out := buf.String()
	if !strings.Contains(out, "---") || !strings.Contains(out, "333") {
		t.Errorf("table output:\n%s", out)
	}
	buf.Reset()
	csvOut(&buf, []string{"x", "y"}, [][]string{{"1", "2"}})
	if buf.String() != "x,y\n1,2\n" {
		t.Errorf("csv output: %q", buf.String())
	}
}

func TestAblationRunner(t *testing.T) {
	var buf bytes.Buffer
	res, err := Ablation(&buf, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationResult{}
	for _, r := range res {
		byName[r.Variant] = r
	}
	// The paper's design rationale, quantitatively:
	// full A2SGD must beat the no-error-feedback and one-mean ablations.
	if byName["a2sgd"].FinalMetric < byName["a2sgd-noef"].FinalMetric-0.05 {
		t.Errorf("a2sgd %.3f should not trail noef %.3f",
			byName["a2sgd"].FinalMetric, byName["a2sgd-noef"].FinalMetric)
	}
	// Allgather variant must match the allreduce variant's convergence.
	if d := byName["a2sgd"].FinalMetric - byName["a2sgd-allgather"].FinalMetric; d > 0.1 || d < -0.1 {
		t.Errorf("allgather variant diverged: %.3f vs %.3f",
			byName["a2sgd-allgather"].FinalMetric, byName["a2sgd"].FinalMetric)
	}
	// Periodic must cut measured traffic ~4x below plain a2sgd.
	if byName["a2sgd-every4"].BytesPerStep > byName["a2sgd"].BytesPerStep/2 {
		t.Errorf("periodic traffic %.0f not reduced vs %.0f",
			byName["a2sgd-every4"].BytesPerStep, byName["a2sgd"].BytesPerStep)
	}
	if !strings.Contains(buf.String(), "Ablations") {
		t.Error("missing header")
	}
}

func TestBucketSweepQuick(t *testing.T) {
	points, err := BucketSweep(io.Discard, BucketSweepConfig{
		Workers: 2, Epochs: 1, Steps: 4,
		BucketBytes: []int{0, 8192},
		Algorithms:  []string{"dense", "a2sgd"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points %d, want 4", len(points))
	}
	for _, p := range points {
		if p.BucketBytes == 0 && p.Buckets != 1 {
			t.Errorf("%s: whole-model run has %d buckets", p.Algorithm, p.Buckets)
		}
		if p.BucketBytes == 8192 && p.Buckets < 4 {
			t.Errorf("%s: 8KiB budget gave %d buckets, want >=4", p.Algorithm, p.Buckets)
		}
		if p.ModelOverlapSec > p.ModelSerialSec {
			t.Errorf("%s/%dB: overlap price %.3e exceeds serial %.3e",
				p.Algorithm, p.BucketBytes, p.ModelOverlapSec, p.ModelSerialSec)
		}
		if p.HiddenSyncSec < 0 {
			t.Errorf("%s/%dB: negative hidden sync %.3e", p.Algorithm, p.BucketBytes, p.HiddenSyncSec)
		}
		if p.StepSecSync <= 0 || p.StepSecOverlap <= 0 {
			t.Errorf("%s/%dB: non-positive step times %+v", p.Algorithm, p.BucketBytes, p)
		}
	}
	// The paper's algorithm must hide sync behind encode for some budget.
	hidden := false
	for _, p := range points {
		if p.Algorithm == "a2sgd" && p.Buckets > 1 && p.HiddenSyncSec > 0 {
			hidden = true
		}
	}
	if !hidden {
		t.Error("a2sgd with >1 bucket hides no sync time")
	}
}

func TestHierarchySweepQuick(t *testing.T) {
	points, err := HierarchySweep(io.Discard, HierarchySweepConfig{
		Workers: 4, Epochs: 1, Steps: 4,
		RanksPerNode: []int{1, 2},
		BucketBytes:  []int{0},
		Algorithms:   []string{"dense", "a2sgd"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points %d, want 4", len(points))
	}
	byAlgo := map[string]map[int]HierarchyPoint{}
	for _, p := range points {
		if p.SyncFlatSec <= 0 || p.SyncHierSec <= 0 {
			t.Errorf("%s rpn=%d: non-positive sync prices %+v", p.Algorithm, p.RanksPerNode, p)
		}
		if byAlgo[p.Algorithm] == nil {
			byAlgo[p.Algorithm] = map[int]HierarchyPoint{}
		}
		byAlgo[p.Algorithm][p.RanksPerNode] = p
	}
	for algo, byRPN := range byAlgo {
		flat, hier := byRPN[1], byRPN[2]
		// rpn=1 must degenerate: the two-tier law prices it as flat.
		if flat.SyncHierSec != flat.SyncFlatSec {
			t.Errorf("%s: rpn=1 two-tier sync %.3e != flat sync %.3e",
				algo, flat.SyncHierSec, flat.SyncFlatSec)
		}
		// Wider nodes must not cost more under the two-tier law.
		if hier.SyncHierSec > hier.SyncFlatSec {
			t.Errorf("%s: rpn=2 two-tier sync %.3e exceeds flat %.3e",
				algo, hier.SyncHierSec, hier.SyncFlatSec)
		}
		// Hierarchical runs converge equivalently to flat ones.
		if d := flat.FinalMetric - hier.FinalMetric; d > 0.05 || d < -0.05 {
			t.Errorf("%s: flat metric %v vs hierarchical %v", algo, flat.FinalMetric, hier.FinalMetric)
		}
	}
}

func TestSpecWithDensityLowersThroughWrappers(t *testing.T) {
	cases := map[string]string{
		"topk":                        "topk(density=0.05)",
		"topk(density=0.01)":          "topk(density=0.01)", // explicit wins
		"dense":                       "dense",
		"a2sgd":                       "a2sgd",
		"periodic(topk, interval=2)":  "periodic(topk(density=0.05), interval=2)",
		"periodic(a2sgd, interval=4)": "periodic(a2sgd, interval=4)",
	}
	for in, want := range cases {
		if got := specWithDensity(in, 0.05); got != want {
			t.Errorf("specWithDensity(%q) = %q, want %q", in, got, want)
		}
	}
	if got := specWithDensity("topk", 0); got != "topk" {
		t.Errorf("zero override changed spec: %q", got)
	}
}

func TestElasticChaosMatrix(t *testing.T) {
	var buf bytes.Buffer
	rep, err := ElasticChaos(&buf, ElasticConfig{Seed: 11})
	if err != nil {
		t.Fatalf("ElasticChaos: %v\n%s", err, buf.String())
	}
	if len(rep.Cases) != 3 || rep.Failures != 0 {
		t.Fatalf("expected 3 passing cases, got %d with %d failures\n%s",
			len(rep.Cases), rep.Failures, buf.String())
	}
	for _, cse := range rep.Cases {
		if !cse.BitwiseEqual {
			t.Errorf("%s: elastic trajectory diverged from its fixed-world reference", cse.Name)
		}
	}
}
