package bench

import (
	"fmt"
	"io"

	"a2sgd/internal/cluster"
	"a2sgd/internal/compress"
	"a2sgd/internal/netsim"
)

// MixedSweepConfig bounds the per-bucket policy comparison runs.
type MixedSweepConfig struct {
	// Family, Workers, Epochs, Steps configure each training run (defaults
	// fnn3 / 4 / 2 / 8).
	Family                 string
	Workers, Epochs, Steps int
	// BucketBytes lists the bucket budgets to sweep (the partition the
	// policies act on). Default {4096, 16384}.
	BucketBytes []int
	// Policies lists the per-bucket policy specs to compare. Default:
	// uniform dense, uniform a2sgd, and the ROADMAP's mixed scenario
	// (big buckets A2SGD-compressed, small buckets dense).
	Policies []string
	// Fabric prices the modelled iteration times.
	Fabric netsim.Fabric
	// Seed fixes each run (default 17).
	Seed uint64
}

// MixedPoint is one (policy, bucket budget) cell of the sweep.
type MixedPoint struct {
	Policy      string // canonical policy name
	BucketBytes int
	Buckets     int
	// Composition is the bucketed algorithm name, showing which specs the
	// policy actually assigned ("a2sgd|dense+bucketed[5]").
	Composition string
	// PayloadBytes is the analytic per-worker payload per step.
	PayloadBytes int64
	// FinalMetric is the last epoch's held-out metric (determinism anchor).
	FinalMetric float64
	// Modelled iteration prices on the configured fabric, accounting each
	// bucket under its own exchange kind: serial and overlap-pipelined.
	ModelSerialSec, ModelOverlapSec float64
}

func (c *MixedSweepConfig) defaults() MixedSweepConfig {
	cfg := *c
	if cfg.Family == "" {
		cfg.Family = "fnn3"
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 2
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 8
	}
	if len(cfg.BucketBytes) == 0 {
		cfg.BucketBytes = []int{4096, 16384}
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []string{
			"uniform(dense)",
			"uniform(a2sgd)",
			"mixed(big=a2sgd, small=dense, threshold=8KiB)",
		}
	}
	if cfg.Fabric.Name == "" {
		cfg.Fabric = netsim.IB100()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 17
	}
	return cfg
}

// MixedSweep runs the per-bucket policy comparison the registry+policy API
// unlocks: every policy trains on every bucket partition, and the modelled
// sync time prices each bucket under its own collective (dense buckets
// allreduce the raw gradient, A2SGD buckets allreduce two scalars), showing
// where a mixed policy lands between the two uniform extremes.
func MixedSweep(w io.Writer, c MixedSweepConfig) ([]MixedPoint, error) {
	cfg := c.defaults()
	var points []MixedPoint
	for _, policySrc := range cfg.Policies {
		pol, err := compress.ParsePolicy(policySrc)
		if err != nil {
			return nil, fmt.Errorf("bench: policy %q: %w", policySrc, err)
		}
		for _, bb := range cfg.BucketBytes {
			res, err := cluster.Train(cluster.Config{
				Workers: cfg.Workers, Family: cfg.Family,
				Epochs: cfg.Epochs, StepsPerEpoch: cfg.Steps,
				Seed: cfg.Seed, BucketBytes: bb, Overlap: true,
				NewBucketAlgorithm: func(rank int, info compress.BucketInfo) compress.Algorithm {
					o := compress.DefaultOptions(info.Params)
					o.Seed = cfg.Seed*31 + uint64(rank) + 1 + uint64(info.Index)*1_000_003
					a, err := compress.Build(pol.SpecFor(info), o)
					if err != nil {
						panic("bench: " + err.Error())
					}
					return a
				},
			})
			if err != nil {
				return nil, fmt.Errorf("bench: policy %q bucket=%dB: %w", pol.Name(), bb, err)
			}
			res.Policy = pol.Name()
			points = append(points, MixedPoint{
				Policy:          pol.Name(),
				BucketBytes:     bb,
				Buckets:         res.Buckets,
				Composition:     res.Algorithm,
				PayloadBytes:    res.PayloadBytes,
				FinalMetric:     res.FinalMetric(),
				ModelSerialSec:  res.ModeledIterSecSerial(cfg.Fabric),
				ModelOverlapSec: res.ModeledIterSecOverlap(cfg.Fabric),
			})
		}
	}
	if w != nil {
		rows := make([][]string, 0, len(points))
		for _, p := range points {
			rows = append(rows, []string{
				p.Policy, fmt.Sprintf("%dB", p.BucketBytes), fmt.Sprintf("%d", p.Buckets),
				p.Composition,
				fmt.Sprintf("%d", p.PayloadBytes),
				fmt.Sprintf("%.4f", p.FinalMetric),
				fmt.Sprintf("%.2f", p.ModelSerialSec*1e6),
				fmt.Sprintf("%.2f", p.ModelOverlapSec*1e6),
			})
		}
		fmt.Fprintf(w, "mixed-policy sweep — %s, %d workers, fabric %s (µs/iter)\n",
			cfg.Family, cfg.Workers, cfg.Fabric.Name)
		table(w, []string{
			"policy", "bucket", "k", "composition",
			"payload/worker", "metric", "model-serial", "model-overlap",
		}, rows)
	}
	return points, nil
}
