package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"a2sgd/internal/models"
	"a2sgd/internal/netsim"
	"a2sgd/internal/tensor"
)

// IterModel prices one training iteration at paper scale for every
// (family, algorithm, worker-count) cell: measured compression compute on a
// full-size gradient vector, plus α–β-modelled synchronization, plus a fixed
// per-family forward/backward cost that is identical across algorithms (the
// paper's GPUs are not reproducible; the constant cancels in every
// algorithm-vs-algorithm comparison).
type IterModel struct {
	Fabric netsim.Fabric
	// ParamScale divides the paper's parameter counts (1 = full scale;
	// tests use larger divisors to stay fast).
	ParamScale int
	// EncodeSpeedup calibrates the measured CPU compression time to the
	// paper's GPU substrate. The compression kernels (means, threshold
	// selection, quantization) are memory-bandwidth bound: a V100 streams
	// ~900 GB/s while this machine's cores stream ~15–20 GB/s, so the
	// default of 50 maps one to the other. The factor is identical for all
	// algorithms, so every algorithm-vs-algorithm ordering is measured, not
	// assumed; only the compute↔network balance is calibrated. Set to 1 to
	// price iterations on this machine's raw CPU speed instead
	// (EXPERIMENTS.md shows both).
	EncodeSpeedup float64

	// ComputeBase is the synthetic fwd/bwd seconds per family.
	ComputeBase map[string]float64
	// EncodeSec[family][algo] is the measured compression time.
	EncodeSec map[string]map[string]float64
	// Payload[family][algo] is the per-worker payload in bytes.
	Payload map[string]map[string]int64
	// Kind[algo] is the exchange collective.
	Kind map[string]netsim.ExchangeKind
	// N[family] is the (possibly scaled) parameter count used.
	N map[string]int
}

// defaultComputeBase approximates per-iteration forward/backward time,
// loosely proportional to model cost on the paper's V100s. Identical for
// all algorithms, so it never changes orderings — only baselines them.
var defaultComputeBase = map[string]float64{
	"fnn3":     0.004,
	"resnet20": 0.012,
	"vgg16":    0.045,
	"lstm":     0.085,
}

// NewIterModel measures the per-algorithm compression time at (scaled)
// paper-size parameter counts and assembles the pricing model.
func NewIterModel(fabric netsim.Fabric, paramScale int, algos []string) (*IterModel, error) {
	if paramScale <= 0 {
		paramScale = 1
	}
	if len(algos) == 0 {
		algos = EvalAlgos
	}
	m := &IterModel{
		Fabric:        fabricOrDefault(fabric),
		ParamScale:    paramScale,
		EncodeSpeedup: 50,
		ComputeBase:   defaultComputeBase,
		EncodeSec:     map[string]map[string]float64{},
		Payload:       map[string]map[string]int64{},
		Kind:          map[string]netsim.ExchangeKind{},
		N:             map[string]int{},
	}
	for _, fam := range models.Families() {
		paperN, err := models.PaperParamCount(fam)
		if err != nil {
			return nil, err
		}
		n := paperN / paramScale
		if n < 1000 {
			n = 1000
		}
		m.N[fam] = n
		g := make([]float32, n)
		tensor.NewRNG(uint64(n)).NormVec(g, 0, 0.05)
		m.EncodeSec[fam] = map[string]float64{}
		m.Payload[fam] = map[string]int64{}
		for _, algo := range algos {
			a := newAlgo(algo, n, 5)
			a.Encode(g) // warm-up: buffer allocation
			// Minimum of three timed runs: a single sample is vulnerable to
			// scheduler noise, especially at small scaled sizes.
			best := math.Inf(1)
			for rep := 0; rep < 3; rep++ {
				t0 := time.Now()
				a.Encode(g)
				if sec := time.Since(t0).Seconds(); sec < best {
					best = sec
				}
			}
			m.EncodeSec[fam][algo] = best
			m.Payload[fam][algo] = a.PayloadBytes(n)
			m.Kind[algo] = a.ExchangeKind()
		}
	}
	return m, nil
}

// IterSec prices one iteration for (family, algo) at p workers.
func (m *IterModel) IterSec(family, algo string, p int) float64 {
	comm := m.Fabric.SyncTime(m.Kind[algo], m.Payload[family][algo], p)
	speed := m.EncodeSpeedup
	if speed <= 0 {
		speed = 1
	}
	return m.ComputeBase[family] + m.EncodeSec[family][algo]/speed + comm
}

// Throughput returns modelled samples/second with batch 128 per worker.
func (m *IterModel) Throughput(family, algo string, p int) float64 {
	return float64(128*p) / m.IterSec(family, algo, p)
}

// paperIters is the approximate total iteration count of each paper run:
// epochs × (dataset size / global batch).
var paperIters = map[string]int{
	"fnn3":     30 * 469,  // 30 epochs × 60000/128
	"vgg16":    150 * 391, // 150 epochs × 50000/128
	"resnet20": 150 * 391,
	"lstm":     100 * 207, // 100 epochs × ≈929k tokens/(128·35)
}

// Figure4Cell is one (family, algo, workers) average-iteration-time value.
type Figure4Cell struct {
	Family  string
	Algo    string
	Workers int
	IterSec float64
}

// Figure4 prints average iteration time versus worker count for every model
// and algorithm (paper Figure 4).
func Figure4(w io.Writer, m *IterModel, workerCounts []int) []Figure4Cell {
	if len(workerCounts) == 0 {
		workerCounts = []int{2, 4, 8, 16}
	}
	var cells []Figure4Cell
	for _, fam := range models.Families() {
		fmt.Fprintf(w, "\nFigure 4 (%s, n=%d): average iteration time (ms) on %s\n",
			fam, m.N[fam], m.Fabric.Name)
		header := []string{"workers"}
		for _, a := range EvalAlgos {
			header = append(header, a)
		}
		var rows [][]string
		for _, p := range workerCounts {
			row := []string{fmt.Sprintf("%d", p)}
			for _, algo := range EvalAlgos {
				it := m.IterSec(fam, algo, p)
				cells = append(cells, Figure4Cell{Family: fam, Algo: algo, Workers: p, IterSec: it})
				row = append(row, fmt.Sprintf("%.3f", it*1000))
			}
			rows = append(rows, row)
		}
		table(w, header, rows)
	}
	return cells
}

// Figure5Cell is one (family, algo, workers) total-training-time value.
type Figure5Cell struct {
	Family   string
	Algo     string
	Workers  int
	TotalSec float64
}

// Figure5 prints total training time versus worker count (paper Figure 5):
// the Figure 4 iteration time multiplied by the paper's iteration budget,
// divided across workers (data parallelism shrinks the per-worker epoch).
func Figure5(w io.Writer, m *IterModel, workerCounts []int) []Figure5Cell {
	if len(workerCounts) == 0 {
		workerCounts = []int{2, 4, 8, 16}
	}
	var cells []Figure5Cell
	for _, fam := range models.Families() {
		fmt.Fprintf(w, "\nFigure 5 (%s): total training time (s) on %s\n", fam, m.Fabric.Name)
		header := []string{"workers"}
		for _, a := range EvalAlgos {
			header = append(header, a)
		}
		var rows [][]string
		for _, p := range workerCounts {
			row := []string{fmt.Sprintf("%d", p)}
			for _, algo := range EvalAlgos {
				iters := float64(paperIters[fam]) / float64(p)
				tot := m.IterSec(fam, algo, p) * iters
				cells = append(cells, Figure5Cell{Family: fam, Algo: algo, Workers: p, TotalSec: tot})
				row = append(row, fmt.Sprintf("%.1f", tot))
			}
			rows = append(rows, row)
		}
		table(w, header, rows)
	}
	return cells
}

// Table2 prints the synchronization-complexity comparison (paper Table 2):
// analytic computation complexity, analytic and concrete communication
// volume, and the modelled scaling efficiency at 8 workers normalized to
// dense SGD at 2 workers.
func Table2(w io.Writer, m *IterModel) map[string]map[string]float64 {
	complexity := map[string]string{
		"dense":     "O(1)",
		"qsgd":      "O(n) here; O(n^2) in the paper's numpy baseline",
		"topk":      "O(n + k log n)",
		"gaussiank": "O(n)",
		"a2sgd":     "O(n)",
	}
	commBits := map[string]string{
		"dense":     "32n",
		"qsgd":      "4n+32 here (paper: 2.8n+32)",
		"topk":      "32k values (+32k indices on the wire)",
		"gaussiank": "32k values (+32k indices on the wire)",
		"a2sgd":     "64",
	}
	eff := map[string]map[string]float64{}
	var rows [][]string
	for _, algo := range EvalAlgos {
		effs := make([]string, 0, 4)
		eff[algo] = map[string]float64{}
		for _, fam := range models.Families() {
			e := m.Throughput(fam, algo, 8) / m.Throughput(fam, "dense", 2)
			eff[algo][fam] = e
			effs = append(effs, fmt.Sprintf("%.2f", e))
		}
		lstmBytes := m.Payload["lstm"][algo]
		rows = append(rows, []string{
			algo, complexity[algo], commBits[algo],
			fmt.Sprintf("%d", lstmBytes),
			fmt.Sprintf("(%s / %s / %s / %s)", effs[0], effs[1], effs[2], effs[3]),
		})
	}
	fmt.Fprintf(w, "\nTable 2: gradient synchronization complexities and scaling efficiency\n")
	fmt.Fprintf(w, "(scaling efficiency = modelled throughput at 8 workers / dense at 2 workers; FNN/VGG/ResNet/LSTM)\n")
	table(w, []string{"Algorithm", "Computation", "Comm (bits)", "LSTM bytes/worker", "Scaling eff (8w)"}, rows)
	return eff
}
