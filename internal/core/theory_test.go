package core

import (
	"testing"

	"a2sgd/internal/compress"
)

func quadSpec() QuadraticSpec {
	return QuadraticSpec{
		Dim: 64, Workers: 4, Steps: 400,
		Eta0: 0.8, NoiseStd: 0.5, Seed: 13,
	}
}

// Theorem 1: under Assumptions 1–3 (satisfied by construction here), A2SGD
// converges toward w* — the Lyapunov distance h_t must contract by orders
// of magnitude, matching the dense baseline.
func TestTheorem1QuadraticConvergence(t *testing.T) {
	spec := quadSpec()
	a2, err := RunQuadratic(spec, func(rank int) compress.Algorithm {
		return New(spec.Dim)
	})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := RunQuadratic(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a2.FinalDist > a2.InitialDist*0.01 {
		t.Errorf("A2SGD did not contract: h0=%v hT=%v", a2.InitialDist, a2.FinalDist)
	}
	// A2SGD must land within an order of magnitude of dense SGD (their
	// noise floors differ only through the mean-correction term).
	if a2.FinalDist > dense.FinalDist*10+0.5 {
		t.Errorf("A2SGD hT=%v vs dense hT=%v", a2.FinalDist, dense.FinalDist)
	}
}

// The trajectory must trend downward (allowing stochastic wiggle): compare
// means of the first and last quarters.
func TestTheorem1MonotoneTrend(t *testing.T) {
	spec := quadSpec()
	res, err := RunQuadratic(spec, func(rank int) compress.Algorithm {
		return New(spec.Dim)
	})
	if err != nil {
		t.Fatal(err)
	}
	q := len(res.Dist) / 4
	var early, late float64
	for i := 0; i < q; i++ {
		early += res.Dist[i]
		late += res.Dist[len(res.Dist)-1-i]
	}
	if !(late < early*0.1) {
		t.Errorf("no clear contraction: early avg %v late avg %v", early/float64(q), late/float64(q))
	}
}

// Ablation: without error feedback the enc-only update destroys coordinate
// information; convergence must be visibly worse than full A2SGD.
func TestTheorem1ErrorFeedbackMatters(t *testing.T) {
	spec := quadSpec()
	full, err := RunQuadratic(spec, func(rank int) compress.Algorithm {
		return New(spec.Dim)
	})
	if err != nil {
		t.Fatal(err)
	}
	noEF, err := RunQuadratic(spec, func(rank int) compress.Algorithm {
		return New(spec.Dim, WithoutErrorFeedback())
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(full.FinalDist < noEF.FinalDist) {
		t.Errorf("EF should help: with=%v without=%v", full.FinalDist, noEF.FinalDist)
	}
}

// Assumption 3: the observed update-norm ratio must be bounded by a modest
// constant for gradients of the quadratic problem.
func TestAssumption3GradientBound(t *testing.T) {
	spec := quadSpec()
	spec.Steps = 100
	ratio, err := GradientBoundEstimate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 0 {
		t.Fatalf("ratio %v", ratio)
	}
	// ‖g+∇µ‖² ≈ ‖w−w*‖² + n·σ² + mean-shift terms; with n=64, σ=0.5 the
	// ratio must stay well under a loose constant.
	if ratio > 200 {
		t.Errorf("gradient bound ratio %v suspiciously large", ratio)
	}
}

func TestRunQuadraticValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid spec")
		}
	}()
	_, _ = RunQuadratic(QuadraticSpec{}, nil)
}
