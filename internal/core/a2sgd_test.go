package core

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"a2sgd/internal/comm"
	"a2sgd/internal/compress"
	"a2sgd/internal/tensor"
)

func randGrad(seed uint64, n int) []float32 {
	rng := tensor.NewRNG(seed)
	g := make([]float32, n)
	rng.NormVec(g, 0.02, 0.3)
	return g
}

func TestMeasureMatchesDefinition(t *testing.T) {
	g := []float32{2, -1, 4, -3, 0}
	s := Measure(g)
	// µ+ = (2+4+0)/3 = 2, µ− = (1+3)/2 = 2, nPos = 3.
	if s.NPos != 3 || math.Abs(float64(s.MuPos)-2) > 1e-6 || math.Abs(float64(s.MuNeg)-2) > 1e-6 {
		t.Fatalf("Measure = %+v", s)
	}
}

// Paper invariant (Eq. 2): mean of enc(g) on the non-negative side is µ+
// and on the negative side is −µ−; both means are non-negative.
func TestEncInvariants(t *testing.T) {
	g := randGrad(1, 10000)
	s := Measure(g)
	if s.MuPos < 0 || s.MuNeg < 0 {
		t.Fatal("absolute means must be non-negative")
	}
	enc := make([]float32, len(g))
	Enc(enc, g, s)
	for i, x := range g {
		want := s.MuPos
		if x < 0 {
			want = -s.MuNeg
		}
		if enc[i] != want {
			t.Fatalf("enc[%d] = %v want %v", i, enc[i], want)
		}
	}
}

// Paper invariant (Alg. 1 line 4): the error vector sums to ~0 on each sign
// class, i.e. enc preserves the per-class mass: Σ_pos ε = Σ_pos g − n+·µ+ = 0.
func TestErrorVectorZeroMeanPerClass(t *testing.T) {
	g := randGrad(2, 50000)
	s := Measure(g)
	var sumPos, sumNeg float64
	for _, x := range g {
		if x >= 0 {
			sumPos += float64(x) - float64(s.MuPos)
		} else {
			sumNeg += float64(x) + float64(s.MuNeg)
		}
	}
	if math.Abs(sumPos) > 1e-2 || math.Abs(sumNeg) > 1e-2 {
		t.Errorf("error mass not zero: pos %v neg %v", sumPos, sumNeg)
	}
}

// Single worker: the global means equal the local means, so the
// reconstruction must return exactly the original gradient (ε + enc = g).
// This is the variance-retention property of §3.
func TestSingleWorkerIdentity(t *testing.T) {
	for _, mode := range []Mode{Faithful, Fused} {
		g := randGrad(3, 4096)
		orig := append([]float32(nil), g...)
		a := New(len(g), WithMode(mode))
		err := comm.RunGroup(1, func(c *comm.Communicator) error {
			_, err := compress.Sync(a, g, c)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range g {
			if math.Abs(float64(g[i]-orig[i])) > 1e-6 {
				t.Fatalf("mode %d: reconstruction differs at %d: %v vs %v", mode, i, g[i], orig[i])
			}
		}
	}
}

// Faithful and Fused modes must agree to rounding for any worker count.
func TestModesEquivalent(t *testing.T) {
	p, n := 4, 2000
	grads := make([][]float32, p)
	for r := range grads {
		grads[r] = randGrad(uint64(10+r), n)
	}
	results := map[Mode][][]float32{}
	for _, mode := range []Mode{Faithful, Fused} {
		out := make([][]float32, p)
		var mu sync.Mutex
		err := comm.RunGroup(p, func(c *comm.Communicator) error {
			g := append([]float32(nil), grads[c.Rank()]...)
			a := New(n, WithMode(mode))
			if _, err := compress.Sync(a, g, c); err != nil {
				return err
			}
			mu.Lock()
			out[c.Rank()] = g
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		results[mode] = out
	}
	for r := 0; r < p; r++ {
		for i := 0; i < n; i++ {
			a, b := results[Faithful][r][i], results[Fused][r][i]
			if math.Abs(float64(a-b)) > 1e-5 {
				t.Fatalf("rank %d elem %d: faithful %v vs fused %v", r, i, a, b)
			}
		}
	}
}

// The synchronized gradient equals g + ∇µ where ∇µ applies the difference
// between global and local means per sign class (Theorem 1's update form).
func TestUpdateEqualsGPlusDeltaMu(t *testing.T) {
	p, n := 3, 500
	grads := make([][]float32, p)
	for r := range grads {
		grads[r] = randGrad(uint64(20+r), n)
	}
	// Expected global means.
	var gp, gn float64
	for _, g := range grads {
		s := Measure(g)
		gp += float64(s.MuPos) / float64(p)
		gn += float64(s.MuNeg) / float64(p)
	}
	out := make([][]float32, p)
	var mu sync.Mutex
	err := comm.RunGroup(p, func(c *comm.Communicator) error {
		g := append([]float32(nil), grads[c.Rank()]...)
		a := New(n)
		if _, err := compress.Sync(a, g, c); err != nil {
			return err
		}
		mu.Lock()
		out[c.Rank()] = g
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		s := Measure(grads[r])
		for i, x := range grads[r] {
			var want float64
			if x >= 0 {
				want = float64(x) + gp - float64(s.MuPos)
			} else {
				want = float64(x) - (gn - float64(s.MuNeg))
			}
			if math.Abs(float64(out[r][i])-want) > 1e-4 {
				t.Fatalf("rank %d elem %d: got %v want %v", r, i, out[r][i], want)
			}
		}
	}
}

// When all workers hold identical gradients the algorithm must be exact:
// global means == local means, so the output equals the input (which also
// equals the dense average).
func TestIdenticalWorkersExact(t *testing.T) {
	p, n := 8, 1024
	base := randGrad(33, n)
	err := comm.RunGroup(p, func(c *comm.Communicator) error {
		g := append([]float32(nil), base...)
		a := New(n)
		if _, err := compress.Sync(a, g, c); err != nil {
			return err
		}
		for i := range g {
			if math.Abs(float64(g[i]-base[i])) > 1e-6 {
				t.Errorf("rank %d differs at %d", c.Rank(), i)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Variance retention: Var(g') == Var(g) exactly, because g' differs from g
// only by per-class constant shifts... within each sign class. Check the
// per-class variances are preserved.
func TestVarianceRetention(t *testing.T) {
	p, n := 4, 20000
	grads := make([][]float32, p)
	for r := range grads {
		grads[r] = randGrad(uint64(40+r), n)
	}
	out := make([][]float32, p)
	var mu sync.Mutex
	err := comm.RunGroup(p, func(c *comm.Communicator) error {
		g := append([]float32(nil), grads[c.Rank()]...)
		a := New(n)
		if _, err := compress.Sync(a, g, c); err != nil {
			return err
		}
		mu.Lock()
		out[c.Rank()] = g
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	classVar := func(v, ref []float32, wantPos bool) float64 {
		var sum, sq float64
		cnt := 0
		for i, x := range ref {
			if (x >= 0) == wantPos {
				sum += float64(v[i])
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		mean := sum / float64(cnt)
		for i, x := range ref {
			if (x >= 0) == wantPos {
				d := float64(v[i]) - mean
				sq += d * d
			}
		}
		return sq / float64(cnt)
	}
	for r := 0; r < p; r++ {
		for _, pos := range []bool{true, false} {
			vIn := classVar(grads[r], grads[r], pos)
			vOut := classVar(out[r], grads[r], pos)
			if math.Abs(vIn-vOut) > 1e-4*vIn+1e-8 {
				t.Errorf("rank %d pos=%v: variance %v -> %v", r, pos, vIn, vOut)
			}
		}
	}
}

// Property-based: single-worker identity for arbitrary gradients.
func TestSingleWorkerIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(500)
		g := make([]float32, n)
		rng.NormVec(g, float32(rng.Float64()-0.5), float32(rng.Float64()*2+0.01))
		orig := append([]float32(nil), g...)
		a := New(n)
		err := comm.RunGroup(1, func(c *comm.Communicator) error {
			_, e := compress.Sync(a, g, c)
			return e
		})
		if err != nil {
			return false
		}
		for i := range g {
			if math.Abs(float64(g[i]-orig[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the payload is always exactly two values / 64 bits no matter the
// gradient length — the O(1) claim itself.
func TestO1PayloadProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(100000)
		g := make([]float32, n)
		rng.NormVec(g, 0, 1)
		a := New(n)
		pl := a.Encode(g)
		return len(pl.Data) == 2 && pl.Bits == 64 && a.PayloadBytes(n) == 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNoEFAblation(t *testing.T) {
	// Without error feedback the reconstruction is the pure enc vector:
	// two distinct values only.
	n := 1000
	g := randGrad(50, n)
	a := New(n, WithoutErrorFeedback())
	if a.Name() != "a2sgd-noef" {
		t.Error("name")
	}
	err := comm.RunGroup(1, func(c *comm.Communicator) error {
		_, e := compress.Sync(a, g, c)
		return e
	})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float32]bool{}
	for _, v := range g {
		distinct[v] = true
	}
	if len(distinct) > 2 {
		t.Errorf("enc-only output has %d distinct values, want ≤ 2", len(distinct))
	}
}

func TestOneMeanAblation(t *testing.T) {
	n := 1000
	g := randGrad(51, n)
	mean := float32(tensor.Sum(g) / float64(n))
	a := New(n, WithOneMean(), WithoutErrorFeedback())
	if a.Name() != "a2sgd-onemean" {
		t.Error("name")
	}
	err := comm.RunGroup(1, func(c *comm.Communicator) error {
		_, e := compress.Sync(a, g, c)
		return e
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range g {
		if math.Abs(float64(v-mean)) > 1e-5 {
			t.Fatalf("one-mean output[%d] = %v, want %v", i, v, mean)
		}
	}
}

func TestOneMeanWithEFIdentity(t *testing.T) {
	// One mean + error feedback on a single worker is still the identity.
	n := 512
	g := randGrad(52, n)
	orig := append([]float32(nil), g...)
	a := New(n, WithOneMean())
	err := comm.RunGroup(1, func(c *comm.Communicator) error {
		_, e := compress.Sync(a, g, c)
		return e
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g {
		if math.Abs(float64(g[i]-orig[i])) > 1e-5 {
			t.Fatalf("identity violated at %d", i)
		}
	}
}

func TestStatsAccessorAndReset(t *testing.T) {
	a := New(4)
	a.Encode([]float32{1, -1, 3, -3})
	s := a.Stats()
	if s.MuPos != 2 || s.MuNeg != 2 || s.NPos != 2 {
		t.Errorf("Stats = %+v", s)
	}
	a.Reset()
	for _, v := range a.errorVec {
		if v != 0 {
			t.Fatal("Reset did not zero error vector")
		}
	}
}

func TestNewPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestEncLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Enc(make([]float32, 3), make([]float32, 4), Stats{})
}

func TestGradientLengthChangeReallocates(t *testing.T) {
	a := New(4)
	a.Encode(make([]float32, 4))
	// A longer gradient must not crash Faithful mode.
	g := randGrad(60, 8)
	orig := append([]float32(nil), g...)
	err := comm.RunGroup(1, func(c *comm.Communicator) error {
		_, e := compress.Sync(a, g, c)
		return e
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g {
		if math.Abs(float64(g[i]-orig[i])) > 1e-5 {
			t.Fatal("identity violated after length change")
		}
	}
}
