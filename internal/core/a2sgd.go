// Package core implements A2SGD — two-level gradient averaging — the
// contribution of "O(1) Communication for Distributed SGD through Two-Level
// Gradient Averaging" (Bhattacharya, Yu, Chowdhury; CLUSTER 2021).
//
// Per iteration, each worker reduces its n-element gradient to two scalars —
// the absolute mean of the non-negative entries (µ+) and the absolute mean
// of the negative entries (µ−) — allreduce-averages just those two values
// (64 bits per worker, O(1) communication), and reconstructs its update from
// the global means plus a locally retained error vector:
//
//	µ+  = E[v_i | v_i ≥ 0]            µ− = E[|v_i| | v_i < 0]
//	enc(g) = pos(g)·µ+ − neg(g)·µ−                      (Eq. 2)
//	ε  = g − enc(g)                                     (Alg. 1 line 4)
//	(µ̄+, µ̄−) = Allreduce((µ+, µ−), average)             (Alg. 1 line 5)
//	g' = ε + pos(g)·µ̄+ − neg(g)·µ̄−                      (Alg. 1 line 6)
//
// Because ε is re-applied in the same iteration, the update is exactly
// g + ∇µ with ∇µ = µ̄ − enc(g): the per-coordinate variance of the gradient
// is retained (no variance blow-up), which is what Theorem 1's convergence
// proof relies on.
package core

import (
	"a2sgd/internal/comm"
	"a2sgd/internal/compress"
	"a2sgd/internal/netsim"
	"a2sgd/internal/tensor"
)

// Stats holds the two-level statistics of one gradient.
type Stats struct {
	// MuPos is the absolute mean of the non-negative entries (0 if none).
	MuPos float32
	// MuNeg is the absolute mean of the negative entries (0 if none).
	MuNeg float32
	// NPos is the count of non-negative entries.
	NPos int
}

// Measure computes the two-level statistics of g in one parallel pass —
// the O(n) computation the paper's Table 2 lists for A2SGD.
func Measure(g []float32) Stats {
	mp, mn, np := tensor.ParSignedMeans(g)
	return Stats{MuPos: mp, MuNeg: mn, NPos: np}
}

// Enc applies the paper's enc operator (Eq. 2) in place of dst:
// dst[i] = µ+ where g[i] ≥ 0, −µ− where g[i] < 0. g and dst may alias.
func Enc(dst, g []float32, s Stats) {
	if len(dst) != len(g) {
		panic("core: Enc length mismatch")
	}
	for i, x := range g {
		if x >= 0 {
			dst[i] = s.MuPos
		} else {
			dst[i] = -s.MuNeg
		}
	}
}

// Mode selects between the two mathematically identical implementations.
type Mode int

// Implementation modes.
const (
	// Faithful materializes the error vector ε exactly as Algorithm 1 is
	// written: ε = g − enc(g), then g' = ε + pos·µ̄+ − neg·µ̄−. Costs one
	// n-element buffer and two passes.
	Faithful Mode = iota
	// Fused folds the algebra into one pass without an error buffer:
	// g' = g + pos·(µ̄+ − µ+) − neg·(µ̄− − µ−). Bit-for-bit reordering of
	// the same float operations is not guaranteed, but the results agree
	// to rounding; the equivalence test pins the tolerance.
	Fused
)

// A2SGD is the two-level gradient averaging algorithm. It implements
// compress.Algorithm so the distributed runtime treats it uniformly with
// the baselines. One instance per worker.
type A2SGD struct {
	mode      Mode
	algo      comm.AllreduceAlgorithm
	ef        bool // error feedback on (the paper's algorithm) or off (ablation)
	oneMean   bool // ablation: collapse to a single signed mean
	allgather bool // §4.4 future work: allgather-based mean exchange
	errorVec  []float32
	stats     Stats

	// Reusable scratch (zero-allocation steady state): payload backs the
	// two-scalar Encode result (the returned Payload aliases it — valid
	// until the next Encode on this instance), mu is Exchange's working
	// copy of the means, and gatherBuf holds the allgathered (µ+, µ−)
	// pairs of the WithAllgather exchange.
	payload   [2]float32
	mu        [2]float32
	gatherBuf []float32
	fv        tensor.VecView // flat-call adapter view
}

// Option configures an A2SGD instance.
type Option func(*A2SGD)

// WithMode selects Faithful (default) or Fused execution.
func WithMode(m Mode) Option { return func(a *A2SGD) { a.mode = m } }

// WithAllreduce selects the scalar allreduce algorithm.
func WithAllreduce(alg comm.AllreduceAlgorithm) Option {
	return func(a *A2SGD) { a.algo = alg }
}

// WithoutErrorFeedback disables the local error vector (ablation §6 of
// DESIGN.md): the update becomes enc-only, g' = pos·µ̄+ − neg·µ̄−. The paper
// predicts this distorts gradients and slows convergence.
func WithoutErrorFeedback() Option { return func(a *A2SGD) { a.ef = false } }

// WithOneMean collapses the two-level scheme to a single mean of all
// entries (ablation): the paper argues this "over-simplification" is why
// two signed means are needed.
func WithOneMean() Option { return func(a *A2SGD) { a.oneMean = true } }

// WithAllgather switches the two-scalar exchange from Allreduce to an
// Allgather of every worker's (µ+, µ−) pair followed by local averaging —
// the optimization the paper's §4.4 announces as planned future work after
// observing Gaussian-K's Allgather advantage on fast networks. The result
// is numerically identical; only the collective differs.
func WithAllgather() Option { return func(a *A2SGD) { a.allgather = true } }

// New builds an A2SGD synchronizer for n-parameter gradients.
func New(n int, opts ...Option) *A2SGD {
	if n <= 0 {
		panic("core: non-positive parameter count")
	}
	a := &A2SGD{mode: Faithful, algo: comm.AlgoRecursiveDoubling, ef: true}
	for _, o := range opts {
		o(a)
	}
	if a.mode == Faithful {
		a.errorVec = make([]float32, n)
	}
	return a
}

// NewFromOptions adapts the shared compress.Options (used by the registry).
func NewFromOptions(o compress.Options) *A2SGD {
	return New(o.N, WithAllreduce(o.Allreduce))
}

// Name implements compress.Algorithm.
func (a *A2SGD) Name() string {
	switch {
	case a.oneMean:
		return "a2sgd-onemean"
	case !a.ef:
		return "a2sgd-noef"
	case a.allgather:
		return "a2sgd-allgather"
	default:
		return "a2sgd"
	}
}

// Stats returns the statistics captured by the last Encode.
func (a *A2SGD) Stats() Stats { return a.stats }

// Encode computes the two local means (Alg. 1 line 3) and, in Faithful
// mode, materializes the error vector (line 4). The payload is exactly two
// float32 values — 64 bits — backed by instance scratch (valid until the
// next Encode on this instance).
func (a *A2SGD) Encode(g []float32) compress.Payload {
	return a.EncodeView(a.fv.Reset1(g))
}

// EncodeView implements compress.Algorithm over a strided gradient view:
// the signed means reduce across the segments in flattened order, and the
// error vector (one flat buffer, indexed by the flattened offset) is
// materialized segment by segment.
func (a *A2SGD) EncodeView(v *tensor.VecView) compress.Payload {
	mp, mn, np := v.ParSignedMeans()
	s := Stats{MuPos: mp, MuNeg: mn, NPos: np}
	if a.oneMean {
		// Single signed mean over all entries. Encoding it as µ+ = m and
		// µ− = −m makes pos·µ+ − neg·µ− equal m at every coordinate, so
		// the downstream reconstruction code is shared with the two-level
		// scheme.
		m := float32(v.Sum() / float64(v.Len()))
		s = Stats{MuPos: m, MuNeg: -m, NPos: v.Len()}
	}
	a.stats = s
	if a.mode == Faithful && a.ef {
		if len(a.errorVec) != v.Len() {
			a.errorVec = make([]float32, v.Len())
		}
		// ε = g − enc(g)
		offs := v.Offsets()
		for si, seg := range v.Segments() {
			ev := a.errorVec[offs[si]:]
			for i, x := range seg {
				if x >= 0 {
					ev[i] = x - s.MuPos
				} else {
					ev[i] = x + s.MuNeg
				}
			}
		}
	}
	a.payload[0], a.payload[1] = s.MuPos, s.MuNeg
	return compress.Payload{Data: a.payload[:], Bits: 64}
}

// Exchange allreduce-averages the two means (Alg. 1 line 5) and rebuilds
// the synchronized gradient in g (line 6).
func (a *A2SGD) Exchange(p compress.Payload, g []float32, c *comm.Communicator) error {
	return a.ExchangeView(p, a.fv.Reset1(g), c)
}

// ExchangeView implements compress.Algorithm: the two-scalar collective is
// unchanged, and the reconstruction loops write directly into the view's
// segments (per-element arithmetic, bitwise identical to the flat loops).
func (a *A2SGD) ExchangeView(p compress.Payload, v *tensor.VecView, c *comm.Communicator) error {
	a.mu[0], a.mu[1] = p.Data[0], p.Data[1]
	mu := a.mu[:]
	if a.allgather {
		// The gather buffer lives on the instance like errorVec: its size
		// depends only on the group width, so after the first step the
		// allgather exchange runs without touching the allocator.
		if cap(a.gatherBuf) < 2*c.Size() {
			a.gatherBuf = make([]float32, 2*c.Size())
		}
		all := a.gatherBuf[:2*c.Size()]
		if err := c.Allgather(mu, all); err != nil {
			return err
		}
		var sp, sn float64
		for r := 0; r < c.Size(); r++ {
			sp += float64(all[2*r])
			sn += float64(all[2*r+1])
		}
		mu[0] = float32(sp / float64(c.Size()))
		mu[1] = float32(sn / float64(c.Size()))
	} else if err := c.AllreduceMean(mu, a.algo); err != nil {
		return err
	}
	gPos, gNeg := mu[0], mu[1]
	segs, offs := v.Segments(), v.Offsets()
	switch {
	case !a.ef:
		// Ablation: enc-only reconstruction.
		for _, seg := range segs {
			for i, x := range seg {
				if x >= 0 {
					seg[i] = gPos
				} else {
					seg[i] = -gNeg
				}
			}
		}
	case a.mode == Faithful:
		// g' = ε + pos·µ̄+ − neg·µ̄−
		for si, seg := range segs {
			ev := a.errorVec[offs[si]:]
			for i, x := range seg {
				if x >= 0 {
					seg[i] = ev[i] + gPos
				} else {
					seg[i] = ev[i] - gNeg
				}
			}
		}
	default: // Fused
		dPos := gPos - a.stats.MuPos
		dNeg := gNeg - a.stats.MuNeg
		for _, seg := range segs {
			for i, x := range seg {
				if x >= 0 {
					seg[i] = x + dPos
				} else {
					seg[i] = x - dNeg
				}
			}
		}
	}
	return nil
}

// ExchangeKind implements compress.Algorithm.
func (a *A2SGD) ExchangeKind() netsim.ExchangeKind {
	if a.allgather {
		return netsim.ExchangeAllgather
	}
	return netsim.ExchangeAllreduce
}

// PayloadBytes implements compress.Algorithm: 64 bits, independent of n —
// the O(1) headline of the paper.
func (a *A2SGD) PayloadBytes(n int) int64 { return 8 }

// Reset implements compress.Algorithm. A2SGD applies its error vector in
// the same iteration, so there is no carried state to clear; the buffer is
// zeroed anyway for hygiene.
func (a *A2SGD) Reset() {
	if a.errorVec != nil {
		tensor.Zero(a.errorVec)
	}
}

var _ compress.Algorithm = (*A2SGD)(nil)
