package core

import "a2sgd/internal/compress"

// A2SGD and its ablation variants self-register into the shared algorithm
// registry, so any binary that links this package can spell them in specs
// ("a2sgd", "periodic(a2sgd, interval=4)", "mixed(big=a2sgd, ...)").
func init() {
	register := func(name, summary string, opts ...Option) {
		compress.Register(name, compress.Builder{
			Summary: summary,
			Build: func(o compress.Options, _ compress.BuildArgs) (compress.Algorithm, error) {
				return New(o.N, append([]Option{WithAllreduce(o.Allreduce)}, opts...)...), nil
			},
		})
	}
	register("a2sgd", "two-level gradient averaging, O(1) communication (the paper)")
	register("a2sgd-fused", "A2SGD with the fused single-pass update", WithMode(Fused))
	register("a2sgd-noef", "A2SGD ablation: error feedback disabled", WithoutErrorFeedback())
	register("a2sgd-onemean", "A2SGD ablation: single signed mean", WithOneMean())
	register("a2sgd-allgather", "A2SGD with the allgather mean exchange (§4.4)", WithAllgather())
}
