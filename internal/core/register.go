package core

import (
	"a2sgd/internal/compress"
	"a2sgd/internal/netsim"
)

// A2SGD and its ablation variants self-register into the shared algorithm
// registry, so any binary that links this package can spell them in specs
// ("a2sgd", "periodic(a2sgd, interval=4)", "mixed(big=a2sgd, ...)"). Every
// variant also registers its cost model: one parallel measuring pass over
// the gradient (~2 ns/element on a CPU core), and the paper's O(1) payload —
// the two signed means, 8 bytes regardless of length.
func init() {
	register := func(name, summary string, kind netsim.ExchangeKind, opts ...Option) {
		compress.Register(name, compress.Builder{
			Summary: summary,
			Build: func(o compress.Options, _ compress.BuildArgs) (compress.Algorithm, error) {
				return New(o.N, append([]Option{WithAllreduce(o.Allreduce)}, opts...)...), nil
			},
			Cost: func(compress.Options, compress.BuildArgs, []compress.CostModel) compress.CostModel {
				return compress.CostModel{EncSecPerElem: 2e-9, FixedBytes: 8, Kind: kind}
			},
		})
	}
	register("a2sgd", "two-level gradient averaging, O(1) communication (the paper)", netsim.ExchangeAllreduce)
	register("a2sgd-fused", "A2SGD with the fused single-pass update", netsim.ExchangeAllreduce, WithMode(Fused))
	register("a2sgd-noef", "A2SGD ablation: error feedback disabled", netsim.ExchangeAllreduce, WithoutErrorFeedback())
	register("a2sgd-onemean", "A2SGD ablation: single signed mean", netsim.ExchangeAllreduce, WithOneMean())
	register("a2sgd-allgather", "A2SGD with the allgather mean exchange (§4.4)", netsim.ExchangeAllgather, WithAllgather())
}
