package core

import (
	"math"
	"sync"
	"testing"

	"a2sgd/internal/comm"
	"a2sgd/internal/tensor"
)

// splitSegs cuts g into deterministic pseudo-random segments (the compress
// package has its own twin; both sweep boundaries across kernel widths).
func splitSegs(seed uint64, g []float32) [][]float32 {
	rng := tensor.NewRNG(seed)
	var segs [][]float32
	lo := 0
	for lo < len(g) {
		w := 1 + rng.Intn(1+len(g)/3)
		if rng.Intn(3) == 0 {
			w = 1 + rng.Intn(9)
		}
		if lo+w > len(g) {
			w = len(g) - lo
		}
		segs = append(segs, g[lo:lo+w])
		lo += w
	}
	return segs
}

// TestA2SGDViewMatchesFlatBitwise: every A2SGD variant synchronizes a
// strided view bit-identically to the flat vector — encode payload,
// exchanged means, and reconstructed gradient.
func TestA2SGDViewMatchesFlatBitwise(t *testing.T) {
	const p, n = 3, 4000
	grads := make([][]float32, p)
	for r := range grads {
		rng := tensor.NewRNG(uint64(50 + r))
		grads[r] = make([]float32, n)
		rng.NormVec(grads[r], 0, 0.1)
	}
	variants := map[string]func() *A2SGD{
		"faithful":  func() *A2SGD { return New(n) },
		"fused":     func() *A2SGD { return New(n, WithMode(Fused)) },
		"noef":      func() *A2SGD { return New(n, WithoutErrorFeedback()) },
		"onemean":   func() *A2SGD { return New(n, WithOneMean()) },
		"allgather": func() *A2SGD { return New(n, WithAllgather()) },
	}
	for name, build := range variants {
		run := func(useView bool) [][]float32 {
			out := make([][]float32, p)
			var mu sync.Mutex
			err := comm.RunGroup(p, func(c *comm.Communicator) error {
				a := build()
				g := append([]float32(nil), grads[c.Rank()]...)
				res := make([]float32, n)
				if useView {
					v := tensor.NewVecView(splitSegs(uint64(13+c.Rank()), g)...)
					pl := a.EncodeView(v)
					if err := a.ExchangeView(pl, v, c); err != nil {
						return err
					}
					v.CopyTo(res)
				} else {
					pl := a.Encode(g)
					if err := a.Exchange(pl, g, c); err != nil {
						return err
					}
					copy(res, g)
				}
				mu.Lock()
				out[c.Rank()] = res
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		flat := run(false)
		viewed := run(true)
		for r := 0; r < p; r++ {
			for i := range flat[r] {
				if math.Float32bits(flat[r][i]) != math.Float32bits(viewed[r][i]) {
					t.Fatalf("%s rank %d [%d]: view %v != flat %v", name, r, i, viewed[r][i], flat[r][i])
				}
			}
		}
	}
}
