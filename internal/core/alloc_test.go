package core

import (
	"runtime/debug"
	"testing"

	"a2sgd/internal/tensor"
)

// TestEncodeZeroAllocSteadyState: A2SGD's Encode — two-level means plus the
// Faithful error vector — runs allocation-free on a warm instance, with the
// two-scalar payload backed by instance scratch (the Payload contract in
// compress.go).
func TestEncodeZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	const n = 1 << 18
	g := make([]float32, n)
	tensor.NewRNG(17).NormVec(g, 0, 0.05)
	for _, mode := range []Mode{Faithful, Fused} {
		a := New(n, WithMode(mode))
		a.Encode(g)
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		if allocs := testing.AllocsPerRun(10, func() { a.Encode(g) }); allocs != 0 {
			t.Errorf("mode %v: %.1f allocs per steady-state Encode, want 0", mode, allocs)
		}
	}
}
