package core

import (
	"math"
	"sync"
	"testing"

	"a2sgd/internal/comm"
	"a2sgd/internal/compress"
	"a2sgd/internal/netsim"
)

// The §4.4 future-work variant: allgather-based mean exchange must produce
// results equal to the allreduce version (it is the same average computed
// locally) for every worker count.
func TestAllgatherVariantMatchesAllreduce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		n := 600
		grads := make([][]float32, p)
		for r := range grads {
			grads[r] = randGrad(uint64(70+r), n)
		}
		run := func(opts ...Option) [][]float32 {
			out := make([][]float32, p)
			var mu sync.Mutex
			err := comm.RunGroup(p, func(c *comm.Communicator) error {
				g := append([]float32(nil), grads[c.Rank()]...)
				a := New(n, opts...)
				if _, err := compress.Sync(a, g, c); err != nil {
					return err
				}
				mu.Lock()
				out[c.Rank()] = g
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		viaReduce := run()
		viaGather := run(WithAllgather())
		for r := 0; r < p; r++ {
			for i := 0; i < n; i++ {
				d := math.Abs(float64(viaReduce[r][i] - viaGather[r][i]))
				if d > 1e-5 {
					t.Fatalf("p=%d rank %d elem %d: allreduce %v vs allgather %v",
						p, r, i, viaReduce[r][i], viaGather[r][i])
				}
			}
		}
	}
}

func TestAllgatherVariantMetadata(t *testing.T) {
	a := New(100, WithAllgather())
	if a.Name() != "a2sgd-allgather" {
		t.Errorf("name %q", a.Name())
	}
	if a.ExchangeKind() != netsim.ExchangeAllgather {
		t.Error("exchange kind")
	}
	if a.PayloadBytes(100) != 8 {
		t.Error("payload stays O(1)")
	}
}

func TestAllgatherVariantTraffic(t *testing.T) {
	// Allgather of 2 floats over 4 ranks (ring): 3 steps × 8 bytes.
	p := 4
	var sent int64
	var mu sync.Mutex
	err := comm.RunGroup(p, func(c *comm.Communicator) error {
		a := New(64, WithAllgather())
		g := randGrad(uint64(c.Rank()+1), 64)
		if _, err := compress.Sync(a, g, c); err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			sent = c.Traffic().BytesSent
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sent != 3*8 {
		t.Errorf("sent %d bytes, want 24 (ring allgather of one 8-byte pair)", sent)
	}
}
