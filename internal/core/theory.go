package core

import (
	"math"

	"a2sgd/internal/comm"
	"a2sgd/internal/compress"
	"a2sgd/internal/tensor"
)

// This file provides the empirical counterpart of the paper's §3.2
// convergence analysis: a distributed stochastic quadratic problem on which
// Theorem 1's conditions hold by construction, so that tests can verify
// P(lim w_t = w*) = 1 behaviour for A2SGD directly.
//
// The objective is C(w) = ½‖w − w*‖², which satisfies Assumption 1 (single
// minimum, gradient points at w*). Worker p observes the stochastic
// gradient g = (w − w*) + ξ with bounded noise ξ, satisfying the gradient
// bound of Assumption 3. The learning-rate sequence η_t = η0/(1+t) satisfies
// Assumption 2 (Ση = ∞, Ση² < ∞).

// QuadraticSpec describes the synthetic convex problem.
type QuadraticSpec struct {
	// Dim is the parameter dimension n.
	Dim int
	// Workers is the data-parallel width.
	Workers int
	// Steps is the iteration budget T.
	Steps int
	// Eta0 is the initial learning rate (η_t = Eta0/(1+t)).
	Eta0 float64
	// NoiseStd is the per-worker gradient noise σ.
	NoiseStd float32
	// Seed fixes w*, w0 and the noise streams.
	Seed uint64
}

// QuadraticResult reports the optimization trajectory.
type QuadraticResult struct {
	// InitialDist and FinalDist are h_0 and h_T — the squared distances
	// ‖w − w*‖² of the paper's Lyapunov analysis (Eq. 5), worker-averaged.
	InitialDist, FinalDist float64
	// Dist[t] is the worker-averaged h_t per step.
	Dist []float64
}

// RunQuadratic optimizes the quadratic with the given synchronization
// algorithm (nil factory = dense baseline) and returns the h_t trajectory.
// Tests use it to validate Theorem 1: for A2SGD the trajectory must contract
// toward zero like dense SGD's.
func RunQuadratic(spec QuadraticSpec, newAlg func(rank int) compress.Algorithm) (*QuadraticResult, error) {
	if spec.Dim <= 0 || spec.Workers <= 0 || spec.Steps <= 0 {
		panic("core: invalid QuadraticSpec")
	}
	if newAlg == nil {
		newAlg = func(rank int) compress.Algorithm {
			return compress.NewDense(compress.DefaultOptions(spec.Dim))
		}
	}
	wStar := make([]float32, spec.Dim)
	w0 := make([]float32, spec.Dim)
	r := tensor.NewRNG(spec.Seed)
	r.NormVec(wStar, 0, 1)
	r.NormVec(w0, 0, 3)

	res := &QuadraticResult{Dist: make([]float64, spec.Steps)}
	distSums := make([]float64, spec.Steps)

	err := comm.RunGroup(spec.Workers, func(c *comm.Communicator) error {
		rank := c.Rank()
		alg := newAlg(rank)
		noise := tensor.NewRNG(spec.Seed*977 + uint64(rank) + 1)
		w := append([]float32(nil), w0...)
		g := make([]float32, spec.Dim)
		local := make([]float64, spec.Steps)
		for t := 0; t < spec.Steps; t++ {
			// Stochastic gradient of ½‖w−w*‖²: (w − w*) + ξ.
			for i := range g {
				g[i] = w[i] - wStar[i] + spec.NoiseStd*noise.Norm()
			}
			if _, err := compress.Sync(alg, g, c); err != nil {
				return err
			}
			eta := spec.Eta0 / float64(1+t)
			for i := range w {
				w[i] -= float32(eta) * g[i]
			}
			var h float64
			for i := range w {
				d := float64(w[i] - wStar[i])
				h += d * d
			}
			local[t] = h
		}
		// Reduce h_t across workers (average) onto rank 0.
		hv := make([]float32, spec.Steps)
		for t, h := range local {
			hv[t] = float32(h)
		}
		if err := c.Reduce(hv, 0); err != nil {
			return err
		}
		if rank == 0 {
			for t := range distSums {
				distSums[t] = float64(hv[t]) / float64(spec.Workers)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	copy(res.Dist, distSums)
	var h0 float64
	for i := range w0 {
		d := float64(w0[i] - wStar[i])
		h0 += d * d
	}
	res.InitialDist = h0
	res.FinalDist = distSums[spec.Steps-1]
	return res, nil
}

// GradientBoundEstimate empirically checks Assumption 3 on a sample of
// A2SGD updates: it returns the largest observed ratio
// ‖g + ∇µ‖² / (1 + ‖w − w*‖²), which must be bounded (the constant
// max(A, B) of Eq. 8) for the convergence theorem to apply.
func GradientBoundEstimate(spec QuadraticSpec) (float64, error) {
	wStar := make([]float32, spec.Dim)
	r := tensor.NewRNG(spec.Seed)
	r.NormVec(wStar, 0, 1)
	maxRatio := 0.0
	err := comm.RunGroup(spec.Workers, func(c *comm.Communicator) error {
		noise := tensor.NewRNG(spec.Seed*31 + uint64(c.Rank()))
		a := New(spec.Dim)
		w := make([]float32, spec.Dim)
		g := make([]float32, spec.Dim)
		localMax := 0.0
		for t := 0; t < spec.Steps; t++ {
			noise.NormVec(w, 0, float32(1+t%5))
			var h float64
			for i := range g {
				g[i] = w[i] - wStar[i] + spec.NoiseStd*noise.Norm()
				d := float64(w[i] - wStar[i])
				h += d * d
			}
			if _, err := compress.Sync(a, g, c); err != nil {
				return err
			}
			// After Sync, g holds g + ∇µ (the Theorem 1 update direction).
			norm := tensor.Norm2(g)
			ratio := norm * norm / (1 + h)
			if ratio > localMax {
				localMax = ratio
			}
		}
		v := []float32{float32(localMax)}
		if err := c.Reduce(v, 0); err != nil {
			return err
		}
		if c.Rank() == 0 {
			maxRatio = math.Max(maxRatio, float64(v[0]))
		}
		return nil
	})
	return maxRatio, err
}
