package elastic

import "sync"

// Pool is a counting semaphore over worker slots, shared by the concurrent
// jobs of a gateway: a job acquires one slot per rank for the duration of
// each training segment, so the total number of in-process ranks stays
// bounded no matter how many jobs are queued.
type Pool struct {
	mu    sync.Mutex
	cond  *sync.Cond
	slots int
	used  int
}

// NewPool builds a pool of the given capacity (minimum 1).
func NewPool(slots int) *Pool {
	if slots < 1 {
		slots = 1
	}
	p := &Pool{slots: slots}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Cap returns the pool's capacity.
func (p *Pool) Cap() int { return p.slots }

// Acquire blocks until n slots are free and claims them, returning the count
// actually claimed. Requests wider than the pool are clamped to its capacity,
// so an oversized job serializes against the whole pool instead of
// deadlocking.
func (p *Pool) Acquire(n int) int {
	if n < 1 {
		n = 1
	}
	if n > p.slots {
		n = p.slots
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.slots-p.used < n {
		p.cond.Wait()
	}
	p.used += n
	return n
}

// Release returns n slots claimed by Acquire.
func (p *Pool) Release(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.used -= n
	if p.used < 0 {
		p.used = 0
	}
	p.cond.Broadcast()
}
