package elastic

import (
	"fmt"

	"a2sgd/internal/cluster"
	"a2sgd/internal/compress"
	"a2sgd/internal/tensor"
)

// Reshard deterministically maps a snapshot captured at rs.World ranks onto
// world ranks. It never mutates its input (worker entries it does not modify
// are shared, entries it folds into are deep-copied first), so the same
// snapshot can be resharded repeatedly — and two independent reshards of the
// same snapshot are identical, which is what makes an elastic rescale
// reproducible: the supervisor's continuation and a fresh run launched from
// the same resharded snapshot follow the same trajectory.
//
// Shrinking drops the highest ranks. A dropped rank's weights are redundant
// (replicas hold the same parameters up to A2SGD's bounded drift), but its
// per-bucket algorithm state carries accumulated gradient mass — error
// feedback residuals, DGC momentum — that would otherwise be lost, so every
// element-aligned state vector of dropped rank r folds (elementwise add) into
// survivor r mod world. Opaque word blobs (quantizer RNG streams, periodic
// step counters) stay with their survivors untouched.
//
// Growing admits joiners: rank r clones the weights, model state, optimizer
// momentum and loss accumulator of peer r mod rs.World, starts a fresh,
// canonically seeded sample stream (the same derivation cluster.Train uses at
// init), and begins with empty algorithm state.
func Reshard(rs *cluster.RunState, world int) (*cluster.RunState, error) {
	if rs == nil {
		return nil, fmt.Errorf("elastic: reshard of a nil snapshot")
	}
	if world < 1 {
		return nil, fmt.Errorf("elastic: reshard to world %d (want >= 1)", world)
	}
	if len(rs.Workers) != rs.World {
		return nil, fmt.Errorf("elastic: snapshot world %d != %d worker entries", rs.World, len(rs.Workers))
	}
	if world == rs.World {
		return rs, nil
	}
	out := *rs
	out.World = world
	out.Workers = make([]*cluster.WorkerState, world)

	if world < rs.World {
		copy(out.Workers, rs.Workers[:world])
		cloned := make([]bool, world)
		for r := world; r < rs.World; r++ {
			src := rs.Workers[r]
			if src == nil || len(src.Buckets) == 0 {
				continue
			}
			dst := r % world
			if !cloned[dst] {
				out.Workers[dst] = cloneWorker(out.Workers[dst])
				cloned[dst] = true
			}
			foldStates(out.Workers[dst].Buckets, src.Buckets)
		}
		return &out, nil
	}

	copy(out.Workers, rs.Workers)
	for r := rs.World; r < world; r++ {
		src := rs.Workers[r%rs.World]
		out.Workers[r] = &cluster.WorkerState{
			Rank:       r,
			Params:     clone32(src.Params),
			ModelState: clone32(src.ModelState),
			Velocity:   clone32(src.Velocity),
			LossSum:    src.LossSum,
			SampleRNG:  tensor.NewRNG(rs.Seed*1000 + uint64(r) + 1).State(),
		}
	}
	return &out, nil
}

// Evict removes one specific rank from a snapshot, unlike Reshard's
// shrink, which always drops the highest ranks. Survivors above the evicted
// rank shift down by one label (a shallow copy with an updated Rank — their
// state is shared with the input); the evicted rank's per-bucket algorithm
// state folds into survivor `rank mod (world-1)`, mirroring Reshard's policy,
// so no accumulated error-feedback mass is lost. Pure and deterministic: two
// evictions of the same rank from the same snapshot are identical.
func Evict(rs *cluster.RunState, rank int) (*cluster.RunState, error) {
	if rs == nil {
		return nil, fmt.Errorf("elastic: evict from a nil snapshot")
	}
	if len(rs.Workers) != rs.World {
		return nil, fmt.Errorf("elastic: snapshot world %d != %d worker entries", rs.World, len(rs.Workers))
	}
	if rank < 0 || rank >= rs.World {
		return nil, fmt.Errorf("elastic: evict rank %d outside world %d", rank, rs.World)
	}
	if rs.World < 2 {
		return nil, fmt.Errorf("elastic: cannot evict the last rank")
	}
	world := rs.World - 1
	out := *rs
	out.World = world
	out.Workers = make([]*cluster.WorkerState, world)
	for r := 0; r < world; r++ {
		src := r
		if r >= rank {
			src = r + 1
		}
		ws := rs.Workers[src]
		if src != r && ws != nil {
			cp := *ws
			cp.Rank = r
			ws = &cp
		}
		out.Workers[r] = ws
	}
	evicted := rs.Workers[rank]
	if evicted != nil && len(evicted.Buckets) > 0 {
		dst := rank % world
		out.Workers[dst] = cloneWorker(out.Workers[dst])
		out.Workers[dst].Rank = dst
		foldStates(out.Workers[dst].Buckets, evicted.Buckets)
	}
	return &out, nil
}

// foldStates adds src's element-aligned state vectors into dst bucket by
// bucket. Buckets whose algorithm differs (or vectors whose lengths mismatch)
// are skipped — there is no meaningful fold across algorithms.
func foldStates(dst, src []compress.State) {
	for b := 0; b < len(dst) && b < len(src); b++ {
		if dst[b].Alg != src[b].Alg {
			continue
		}
		for key, sv := range src[b].Vecs {
			dv, ok := dst[b].Vecs[key]
			if !ok {
				if dst[b].Vecs == nil {
					dst[b].Vecs = map[string][]float32{}
				}
				dst[b].Vecs[key] = clone32(sv)
				continue
			}
			if len(dv) != len(sv) {
				continue
			}
			for i := range dv {
				dv[i] += sv[i]
			}
		}
	}
}

func clone32(v []float32) []float32 {
	if v == nil {
		return nil
	}
	return append([]float32(nil), v...)
}

func cloneWorker(ws *cluster.WorkerState) *cluster.WorkerState {
	cp := &cluster.WorkerState{
		Rank:       ws.Rank,
		Params:     clone32(ws.Params),
		ModelState: clone32(ws.ModelState),
		Velocity:   clone32(ws.Velocity),
		SampleRNG:  ws.SampleRNG,
		LossSum:    ws.LossSum,
		Buckets:    make([]compress.State, len(ws.Buckets)),
	}
	for b, s := range ws.Buckets {
		cp.Buckets[b] = cloneState(s)
	}
	return cp
}

func cloneState(s compress.State) compress.State {
	cp := compress.State{Alg: s.Alg}
	if s.Vecs != nil {
		cp.Vecs = make(map[string][]float32, len(s.Vecs))
		for k, v := range s.Vecs {
			cp.Vecs[k] = clone32(v)
		}
	}
	if s.Words != nil {
		cp.Words = make(map[string][]uint64, len(s.Words))
		for k, w := range s.Words {
			cp.Words[k] = append([]uint64(nil), w...)
		}
	}
	return cp
}
