package elastic

import (
	"bytes"
	"testing"

	"a2sgd/internal/cluster"
	"a2sgd/internal/comm/faultnet"
	"a2sgd/internal/health"
	"a2sgd/internal/netsim"
	"a2sgd/internal/plan"
)

// reasons extracts the event reason strings.
func reasons(rr *RunResult) []string {
	out := make([]string, len(rr.Events))
	for i, e := range rr.Events {
		out[i] = e.Reason
	}
	return out
}

func indexOf(xs []string, want string) int {
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	return -1
}

// runLadderBackup runs a 4-rank straggler job with one backup slot and
// asserts the ladder engaged (degrade → backup, no evict) and the final
// checkpoint is bitwise-identical to the fault-free reference.
func runLadderBackup(t *testing.T, mutate func(*cluster.Config), tcp bool) {
	t.Helper()
	ref := testConfig("fnn3", "a2sgd", 4)
	ref.CheckpointEvery = 2
	if mutate != nil {
		mutate(&ref)
	}
	var refCkpt bytes.Buffer
	ref.Checkpoint = &refCkpt
	if _, err := cluster.Train(ref); err != nil {
		t.Fatalf("fault-free reference: %v", err)
	}

	cfg := testConfig("fnn3", "a2sgd", 4)
	cfg.CheckpointEvery = 2
	if mutate != nil {
		mutate(&cfg)
	}
	var ckpt bytes.Buffer
	cfg.Checkpoint = &ckpt
	job := &Job{
		Config:      cfg,
		Scenario:    faultnet.MustParse("straggler(rank=2, x8)"),
		TCP:         tcp,
		BackupSlots: 1,
	}
	rr, err := job.Run()
	if err != nil {
		t.Fatalf("straggler job: %v", err)
	}
	if rr.Result == nil || rr.Paused {
		t.Fatal("straggler job did not complete")
	}
	rs := reasons(rr)
	di, bi := indexOf(rs, "degrade(rank=2)"), indexOf(rs, "backup(rank=2)")
	if di < 0 || bi < 0 || bi < di {
		t.Fatalf("ladder did not climb degrade → backup: events %v", rs)
	}
	if indexOf(rs, "evict(rank=2)") >= 0 {
		t.Fatalf("backed-up rank was evicted: events %v", rs)
	}
	if rr.Backups != 1 {
		t.Fatalf("Backups = %d, want 1", rr.Backups)
	}
	if !bytes.Equal(ckpt.Bytes(), refCkpt.Bytes()) {
		t.Fatal("backup-recovered run is not bitwise-identical to the fault-free reference")
	}
}

func TestBackupRecoveryBitwiseInproc(t *testing.T) {
	runLadderBackup(t, nil, false)
}

func TestBackupRecoveryBitwiseTCP(t *testing.T) {
	runLadderBackup(t, nil, true)
}

func TestBackupRecoveryBitwiseHierarchical(t *testing.T) {
	runLadderBackup(t, func(c *cluster.Config) { c.Topology = 2 }, false)
}

// TestDegradedRankSoftDegradesBeforeEviction: with no backup slots, a
// degraded-but-alive rank must still pass through the soft-degrade stage —
// the first boundary that classifies it degraded never evicts directly.
func TestDegradedRankSoftDegradesBeforeEviction(t *testing.T) {
	cfg := testConfig("fnn3", "a2sgd", 4)
	cfg.CheckpointEvery = 2
	job := &Job{
		Config:   cfg,
		Scenario: faultnet.MustParse("straggler(rank=2, x8)"),
		Health:   true, // ladder on, zero backup slots
	}
	rr, err := job.Run()
	if err != nil {
		t.Fatalf("straggler job: %v", err)
	}
	if rr.Result == nil {
		t.Fatal("job did not complete")
	}
	rs := reasons(rr)
	di, ei := indexOf(rs, "degrade(rank=2)"), indexOf(rs, "evict(rank=2)")
	if di < 0 {
		t.Fatalf("straggler never soft-degraded: events %v", rs)
	}
	if ei >= 0 && ei < di {
		t.Fatalf("rank evicted before soft-degrade: events %v", rs)
	}
	if ei >= 0 {
		// The eviction shrinks the world and renumbers ranks; the run must
		// still finish on the survivors.
		if rr.Result.Workers != 3 {
			t.Fatalf("post-eviction run finished at %d workers, want 3", rr.Result.Workers)
		}
	}
}

// TestDriftReplanNoOpWhenCalibrated: with the drift model set to the fabric
// the monitor itself measures on a fault-free run, a second run must not
// trigger a replan — same estimator, same machine, drift ≈ 1.
func TestDriftReplanNoOpWhenCalibrated(t *testing.T) {
	probeCfg := testConfig("fnn3", "a2sgd", 4)
	probeCfg.CheckpointEvery = 2
	probe := &Job{Config: probeCfg, Health: true}
	prr, err := probe.Run()
	if err != nil {
		t.Fatalf("probe run: %v", err)
	}
	if prr.Measured == nil {
		t.Fatal("probe run produced no measured fabric")
	}

	cfg := testConfig("fnn3", "a2sgd", 4)
	cfg.CheckpointEvery = 2
	replans := 0
	job := &Job{
		Config:         cfg,
		DriftReplan:    true,
		DriftModel:     *prr.Measured,
		DriftThreshold: 3,
		ReplanMeasured: func(world int, measured netsim.Fabric) (*plan.Schedule, error) {
			replans++
			return nil, nil
		},
	}
	rr, err := job.Run()
	if err != nil {
		t.Fatalf("calibrated run: %v", err)
	}
	if rr.Result == nil {
		t.Fatal("calibrated run did not complete")
	}
	if replans != 0 {
		t.Fatalf("ReplanMeasured called %d times on a calibrated fabric", replans)
	}
	for _, r := range reasons(rr) {
		if len(r) >= 6 && r[:6] == "replan" {
			t.Fatalf("drift replan fired without drift: events %v", reasons(rr))
		}
	}
}

// TestRestartBudgetResetsAfterCleanBoundaries: two well-separated crashes
// exceed a budget of one unless ResetBudgetAfter refills it between them.
func TestRestartBudgetResetsAfterCleanBoundaries(t *testing.T) {
	scenario := "deadline(5s) crash(rank=3, step=3) crash(rank=2, step=7)"

	strict := &Job{
		Config:      testConfig("fnn3", "a2sgd", 4),
		Scenario:    faultnet.MustParse(scenario),
		MaxRestarts: 1,
	}
	strict.Config.CheckpointEvery = 2
	if _, err := strict.Run(); err == nil {
		t.Fatal("budget of 1 survived two crashes without ResetBudgetAfter")
	}

	lenient := &Job{
		Config:           testConfig("fnn3", "a2sgd", 4),
		Scenario:         faultnet.MustParse(scenario),
		MaxRestarts:      1,
		ResetBudgetAfter: 1,
	}
	lenient.Config.CheckpointEvery = 2
	rr, err := lenient.Run()
	if err != nil {
		t.Fatalf("budget did not reset across clean boundaries: %v", err)
	}
	if rr.Result == nil {
		t.Fatal("lenient run did not complete")
	}
	if rr.Restarts != 2 {
		t.Fatalf("lifetime Restarts = %d, want 2 (reset must not hide history)", rr.Restarts)
	}
}

// TestEvictTargetedReshard pins Evict's label shifting and state folding.
func TestEvictTargetedReshard(t *testing.T) {
	cfg := testConfig("fnn3", "dgc(density=0.05)", 4)
	cfg.CheckpointEvery = 4
	_, _, snaps := captureRun(t, cfg)
	snap := snaps[4]
	if snap == nil {
		t.Fatal("missing step-4 snapshot")
	}
	out, err := Evict(snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.World != 3 || len(out.Workers) != 3 {
		t.Fatalf("evicted world %d/%d workers", out.World, len(out.Workers))
	}
	for r, ws := range out.Workers {
		if ws.Rank != r {
			t.Errorf("worker %d carries rank label %d", r, ws.Rank)
		}
	}
	// Survivors keep their identity: old rank 0 stays, old ranks 2,3 shift.
	if &out.Workers[0].Params[0] != &snap.Workers[0].Params[0] {
		t.Error("unshifted survivor was deep-copied")
	}
	// Error-feedback mass is conserved: the evicted rank's vectors fold into
	// survivor rank mod world, so the per-bucket elementwise sums across
	// ranks are invariant.
	for b := range snap.Workers[0].Buckets {
		for key := range snap.Workers[0].Buckets[b].Vecs {
			want := vecMass(snap.Workers, b, key)
			got := vecMass(out.Workers, b, key)
			if diff := want - got; diff > 1e-3 || diff < -1e-3 {
				t.Errorf("bucket %d %q mass not preserved: %g -> %g", b, key, want, got)
			}
		}
	}
	// Determinism: a second eviction is identical.
	out2, err := Evict(snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustSnapshotBytes(t, out), mustSnapshotBytes(t, out2)) {
		t.Error("two evictions of the same snapshot diverge")
	}
	// Guard rails.
	if _, err := Evict(snap, 7); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := Evict(nil, 0); err == nil {
		t.Error("nil snapshot accepted")
	}
}

func mustSnapshotBytes(t *testing.T, rs *cluster.RunState) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, rs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestHealthMonitorWorldValidation: cluster.Train rejects a monitor sized to
// a different world.
func TestHealthMonitorWorldValidation(t *testing.T) {
	cfg := testConfig("fnn3", "a2sgd", 2)
	cfg.Health = health.NewMonitor(3, health.Options{})
	if _, err := cluster.Train(cfg); err == nil {
		t.Fatal("mismatched health monitor world accepted")
	}
}
