package elastic

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"a2sgd/internal/cluster"
	"a2sgd/internal/compress"
)

// Snapshot file format "A2SV" version 1 (little endian):
//
//	u32 magic "A2SV" | u32 version
//	str family | u64 seed | u32 epochs | u32 stepsPerEpoch | u32 step
//	u32 world | u32 numParams
//	u32 nBounds | nBounds × u32
//	u32 nHistory | nHistory × (u32 epoch, f64 loss, f64 evalLoss, f64 metric, f64 lr)
//	u32 nWorkers | per worker:
//	    u32 rank | f32s params | f32s modelState | f32s velocity
//	    4 × u64 rng | f64 lossSum
//	    u32 nBuckets | per bucket:
//	        str alg
//	        u32 nVecs  | nVecs  × (str key, f32s values)   -- keys sorted
//	        u32 nWords | nWords × (str key, u32 n, n × u64) -- keys sorted
//	u32 crc32(IEEE) of everything above
//
// str is u32 length + raw bytes; f32s is u32 length + IEEE-754 bits. Map keys
// are written sorted so identical states serialize to identical bytes (the
// basis of the bitwise round-trip tests). The trailing CRC covers the entire
// stream, so truncation and corruption both fail loudly at read time.
const (
	snapMagic   uint32 = 0x41325356 // "A2SV"
	snapVersion uint32 = 1
)

// Sanity bounds applied while reading, so a corrupt length field fails with
// a typed error instead of an enormous allocation.
const (
	maxSnapStr   = 1 << 16
	maxSnapCount = 1 << 24
	maxSnapElems = 1 << 30
)

var snapTable = crc32.MakeTable(crc32.IEEE)

// snapWriter accumulates the stream CRC alongside the buffered writes.
type snapWriter struct {
	w   *bufio.Writer
	crc uint32
	err error
	buf [8]byte
}

func (sw *snapWriter) bytes(p []byte) {
	if sw.err != nil {
		return
	}
	sw.crc = crc32.Update(sw.crc, snapTable, p)
	_, sw.err = sw.w.Write(p)
}

func (sw *snapWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(sw.buf[:4], v)
	sw.bytes(sw.buf[:4])
}

func (sw *snapWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(sw.buf[:8], v)
	sw.bytes(sw.buf[:8])
}

func (sw *snapWriter) f64(v float64) { sw.u64(math.Float64bits(v)) }

func (sw *snapWriter) str(s string) {
	sw.u32(uint32(len(s)))
	sw.bytes([]byte(s))
}

func (sw *snapWriter) f32s(v []float32) {
	sw.u32(uint32(len(v)))
	var chunk [4096]byte
	for len(v) > 0 {
		n := len(v)
		if n > len(chunk)/4 {
			n = len(chunk) / 4
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(chunk[4*i:], math.Float32bits(v[i]))
		}
		sw.bytes(chunk[:4*n])
		v = v[n:]
	}
}

// snapReader mirrors snapWriter, accumulating the CRC of everything read.
type snapReader struct {
	r   *bufio.Reader
	crc uint32
	err error
	buf [8]byte
}

func (sr *snapReader) fail(format string, args ...any) {
	if sr.err == nil {
		sr.err = fmt.Errorf("elastic: "+format, args...)
	}
}

func (sr *snapReader) bytes(p []byte) {
	if sr.err != nil {
		return
	}
	if _, err := io.ReadFull(sr.r, p); err != nil {
		sr.fail("truncated snapshot: %v", err)
		return
	}
	sr.crc = crc32.Update(sr.crc, snapTable, p)
}

func (sr *snapReader) u32() uint32 {
	sr.bytes(sr.buf[:4])
	if sr.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(sr.buf[:4])
}

func (sr *snapReader) u64() uint64 {
	sr.bytes(sr.buf[:8])
	if sr.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(sr.buf[:8])
}

func (sr *snapReader) f64() float64 { return math.Float64frombits(sr.u64()) }

// count reads a u32 length field and bounds-checks it.
func (sr *snapReader) count(max int, what string) int {
	n := int(sr.u32())
	if sr.err != nil {
		return 0
	}
	if n < 0 || n > max {
		sr.fail("snapshot %s count %d out of range [0, %d]", what, n, max)
		return 0
	}
	return n
}

func (sr *snapReader) str() string {
	n := sr.count(maxSnapStr, "string")
	if sr.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	sr.bytes(b)
	return string(b)
}

func (sr *snapReader) f32s() []float32 {
	n := sr.count(maxSnapElems, "vector")
	if sr.err != nil || n == 0 {
		return nil
	}
	v := make([]float32, n)
	var chunk [4096]byte
	for i := 0; i < n; {
		m := n - i
		if m > len(chunk)/4 {
			m = len(chunk) / 4
		}
		sr.bytes(chunk[:4*m])
		if sr.err != nil {
			return nil
		}
		for j := 0; j < m; j++ {
			v[i+j] = math.Float32frombits(binary.LittleEndian.Uint32(chunk[4*j:]))
		}
		i += m
	}
	return v
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeState(sw *snapWriter, s compress.State) {
	sw.str(s.Alg)
	sw.u32(uint32(len(s.Vecs)))
	for _, k := range sortedKeys(s.Vecs) {
		sw.str(k)
		sw.f32s(s.Vecs[k])
	}
	sw.u32(uint32(len(s.Words)))
	for _, k := range sortedKeys(s.Words) {
		sw.str(k)
		w := s.Words[k]
		sw.u32(uint32(len(w)))
		for _, x := range w {
			sw.u64(x)
		}
	}
}

func readState(sr *snapReader) compress.State {
	var s compress.State
	s.Alg = sr.str()
	if nv := sr.count(maxSnapCount, "state vec"); nv > 0 {
		s.Vecs = make(map[string][]float32, nv)
		for i := 0; i < nv && sr.err == nil; i++ {
			k := sr.str()
			s.Vecs[k] = sr.f32s()
		}
	}
	if nw := sr.count(maxSnapCount, "state word"); nw > 0 {
		s.Words = make(map[string][]uint64, nw)
		for i := 0; i < nw && sr.err == nil; i++ {
			k := sr.str()
			n := sr.count(maxSnapElems, "state word blob")
			var w []uint64
			if n > 0 {
				w = make([]uint64, n)
			}
			for j := 0; j < n && sr.err == nil; j++ {
				w[j] = sr.u64()
			}
			s.Words[k] = w
		}
	}
	return s
}

// WriteSnapshot serializes a full-state training snapshot in the versioned
// A2SV format with a trailing CRC. Identical snapshots serialize to identical
// bytes.
func WriteSnapshot(w io.Writer, rs *cluster.RunState) error {
	if rs == nil {
		return fmt.Errorf("elastic: nil snapshot")
	}
	sw := &snapWriter{w: bufio.NewWriter(w)}
	sw.u32(snapMagic)
	sw.u32(snapVersion)
	sw.str(rs.Family)
	sw.u64(rs.Seed)
	sw.u32(uint32(rs.Epochs))
	sw.u32(uint32(rs.StepsPerEpoch))
	sw.u32(uint32(rs.Step))
	sw.u32(uint32(rs.World))
	sw.u32(uint32(rs.NumParams))
	sw.u32(uint32(len(rs.Bounds)))
	for _, b := range rs.Bounds {
		sw.u32(uint32(b))
	}
	sw.u32(uint32(len(rs.History)))
	for _, h := range rs.History {
		sw.u32(uint32(h.Epoch))
		sw.f64(h.Loss)
		sw.f64(h.EvalLoss)
		sw.f64(h.Metric)
		sw.f64(h.LR)
	}
	sw.u32(uint32(len(rs.Workers)))
	for _, ws := range rs.Workers {
		if ws == nil {
			return fmt.Errorf("elastic: snapshot has a nil worker entry")
		}
		sw.u32(uint32(ws.Rank))
		sw.f32s(ws.Params)
		sw.f32s(ws.ModelState)
		sw.f32s(ws.Velocity)
		for _, x := range ws.SampleRNG {
			sw.u64(x)
		}
		sw.f64(ws.LossSum)
		sw.u32(uint32(len(ws.Buckets)))
		for _, s := range ws.Buckets {
			writeState(sw, s)
		}
	}
	// The CRC trailer is written raw — it covers everything before it.
	crc := sw.crc
	if sw.err == nil {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], crc)
		_, sw.err = sw.w.Write(buf[:])
	}
	if sw.err != nil {
		return fmt.Errorf("elastic: write snapshot: %w", sw.err)
	}
	return sw.w.Flush()
}

// ReadSnapshot parses an A2SV snapshot, validating the magic, version and
// trailing CRC.
func ReadSnapshot(r io.Reader) (*cluster.RunState, error) {
	sr := &snapReader{r: bufio.NewReader(r)}
	if m := sr.u32(); sr.err == nil && m != snapMagic {
		return nil, fmt.Errorf("elastic: bad snapshot magic %#x (want %#x)", m, snapMagic)
	}
	if v := sr.u32(); sr.err == nil && v != snapVersion {
		return nil, fmt.Errorf("elastic: unsupported snapshot version %d (want %d)", v, snapVersion)
	}
	rs := &cluster.RunState{}
	rs.Family = sr.str()
	rs.Seed = sr.u64()
	rs.Epochs = int(sr.u32())
	rs.StepsPerEpoch = int(sr.u32())
	rs.Step = int(sr.u32())
	rs.World = int(sr.u32())
	rs.NumParams = int(sr.u32())
	if nb := sr.count(maxSnapCount, "bounds"); nb > 0 {
		rs.Bounds = make([]int, nb)
		for i := range rs.Bounds {
			rs.Bounds[i] = int(sr.u32())
		}
	}
	if nh := sr.count(maxSnapCount, "history"); nh > 0 {
		rs.History = make([]cluster.EpochStats, nh)
		for i := range rs.History {
			rs.History[i] = cluster.EpochStats{
				Epoch: int(sr.u32()), Loss: sr.f64(),
				EvalLoss: sr.f64(), Metric: sr.f64(), LR: sr.f64(),
			}
		}
	}
	nw := sr.count(maxSnapCount, "worker")
	rs.Workers = make([]*cluster.WorkerState, 0, nw)
	for i := 0; i < nw && sr.err == nil; i++ {
		ws := &cluster.WorkerState{}
		ws.Rank = int(sr.u32())
		ws.Params = sr.f32s()
		ws.ModelState = sr.f32s()
		ws.Velocity = sr.f32s()
		for j := range ws.SampleRNG {
			ws.SampleRNG[j] = sr.u64()
		}
		ws.LossSum = sr.f64()
		if nbk := sr.count(maxSnapCount, "bucket"); nbk > 0 {
			ws.Buckets = make([]compress.State, nbk)
			for b := 0; b < nbk && sr.err == nil; b++ {
				ws.Buckets[b] = readState(sr)
			}
		}
		rs.Workers = append(rs.Workers, ws)
	}
	if sr.err != nil {
		return nil, sr.err
	}
	// The stored CRC is read raw (it is not part of its own coverage).
	want := sr.crc
	var buf [4]byte
	if _, err := io.ReadFull(sr.r, buf[:]); err != nil {
		return nil, fmt.Errorf("elastic: truncated snapshot: missing CRC trailer: %w", err)
	}
	if got := binary.LittleEndian.Uint32(buf[:]); got != want {
		return nil, fmt.Errorf("elastic: snapshot CRC mismatch: stored %#x, computed %#x", got, want)
	}
	if rs.World != len(rs.Workers) {
		return nil, fmt.Errorf("elastic: snapshot world %d != %d worker entries", rs.World, len(rs.Workers))
	}
	return rs, nil
}

// WriteSnapshotFile atomically persists a snapshot: it writes to a temporary
// sibling and renames it into place, so a crash mid-write never clobbers the
// previous good snapshot.
func WriteSnapshotFile(path string, rs *cluster.RunState) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteSnapshot(f, rs); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadSnapshotFile loads a snapshot persisted by WriteSnapshotFile.
func ReadSnapshotFile(path string) (*cluster.RunState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
