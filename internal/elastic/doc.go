// Package elastic is the elastic training service: it supervises a
// cluster.Train run across membership changes — worker crashes, announced
// preemptions, and rejoins — by stitching together a sequence of fixed-world
// training segments connected through full-state snapshots.
//
// # Membership epochs
//
// The live worker set is versioned by a membership epoch. Each epoch runs as
// one cluster.Train call at a fixed world size (cluster.Membership pins the
// view); any change to the live set ends the epoch and starts the next one:
//
//	start ──► epoch 0 (world N)
//	   │ crash/preempt detected (peer error mid-segment)
//	   ▼
//	epoch k+1 (world N−1): resume from the last snapshot, re-plan, retrain
//	   │ preempted rank returns (StopStep pause at the next boundary)
//	   ▼
//	epoch k+2 (world N): reshard the boundary snapshot up, resume
//	   │ run completes, or Drain closes (SIGTERM)
//	   ▼
//	done / paused-with-snapshot
//
// Departures are detected when a segment fails with a *comm.PeerError; the
// supervisor attributes the failure to the earliest unconsumed crash/stall/
// preempt rule of its fault scenario, shrinks the world by one, reshards the
// last snapshot and resumes. A preempt rule additionally schedules a rejoin:
// the shrunk segment runs with StopStep at the next checkpoint boundary, and
// when it pauses there the world grows back and training continues at the
// restored width. Joiners are only ever admitted at step boundaries, so every
// epoch transition happens on a bitwise-defined state.
//
// # Snapshots
//
// A snapshot (cluster.RunState) is a versioned, CRC-checked capture of
// everything a run needs to continue exactly: model parameters, non-learnable
// model state (batch-norm statistics), optimizer momentum, per-rank sampling
// RNG streams, the step counter, epoch history, and each bucket's compression
// algorithm state (error feedback, DGC momentum, quantizer RNGs).
// WriteSnapshot/ReadSnapshot serialize it (format "A2SV" v1); Reshard maps it
// deterministically onto a different world size — survivors keep their state,
// dropped ranks fold their element-aligned error vectors into survivors so no
// accumulated gradient mass is lost, and joiners clone a peer's weights with
// a canonically seeded fresh sample stream.
//
// Restoring a snapshot at the same world size and bucket plan reproduces the
// uninterrupted run bitwise. After a reshard the continuation is still fully
// deterministic: an elastic run that crashes, restores and rescales follows
// exactly the trajectory of an uninterrupted run launched from the same
// resharded snapshot.
//
// # Re-planning
//
// Job.Replan, when set, is called at every epoch transition with the new
// world size and supplies the synchronization schedule (typically plan.Build,
// which is pure: unchanged membership yields a bitwise-identical plan).
//
// # The job gateway
//
// cmd/a2sgdserve runs N elastic jobs concurrently over a shared Pool of
// worker slots. On SIGTERM it closes each job's Drain channel; the jobs
// pause at their next checkpoint boundary, persist their snapshots, and the
// gateway exits. Restarting with -resume picks every job up from its
// snapshot file.
package elastic
