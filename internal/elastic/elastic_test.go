package elastic

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"a2sgd/internal/cluster"
	"a2sgd/internal/comm/faultnet"
	"a2sgd/internal/compress"
	_ "a2sgd/internal/core" // registers a2sgd
	"a2sgd/internal/models"
	"a2sgd/internal/netsim"
	"a2sgd/internal/plan"
)

// testConfig builds a small bucketed run of the given spec.
func testConfig(family, spec string, workers int) cluster.Config {
	const seed = 7
	return cluster.Config{
		Workers: workers, Family: family,
		Epochs: 2, StepsPerEpoch: 5, BatchPerWorker: 4,
		Seed: seed, BucketBytes: 4096, Momentum: 0.9,
		NewBucketAlgorithm: func(rank int, info compress.BucketInfo) compress.Algorithm {
			o := compress.DefaultOptions(info.Params)
			o.Seed = compress.BucketSeed(seed, rank, info.Index)
			a, err := compress.ParseBuild(spec, o)
			if err != nil {
				panic(err)
			}
			return a
		},
	}
}

// captureRun trains cfg while recording every delivered snapshot by step and
// the final checkpoint bytes.
func captureRun(t *testing.T, cfg cluster.Config) (*cluster.Result, []byte, map[int]*cluster.RunState) {
	t.Helper()
	var ckpt bytes.Buffer
	snaps := map[int]*cluster.RunState{}
	cfg.Checkpoint = &ckpt
	cfg.SnapshotSink = func(rs *cluster.RunState) error {
		snaps[rs.Step] = rs
		return nil
	}
	res, err := cluster.Train(cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return res, ckpt.Bytes(), snaps
}

// resumeRun trains cfg from a snapshot and returns the final checkpoint.
func resumeRun(t *testing.T, cfg cluster.Config, rs *cluster.RunState) (*cluster.Result, []byte) {
	t.Helper()
	var ckpt bytes.Buffer
	cfg.Checkpoint = &ckpt
	cfg.Resume = rs
	res, err := cluster.Train(cfg)
	if err != nil {
		t.Fatalf("resume Train: %v", err)
	}
	return res, ckpt.Bytes()
}

// encodeDecode round-trips a snapshot through the A2SV serialization.
func encodeDecode(t *testing.T, rs *cluster.RunState) *cluster.RunState {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, rs); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	return got
}

func TestSnapshotSerializationRoundTrip(t *testing.T) {
	rs := &cluster.RunState{
		Family: "fnn3", Seed: 42, Epochs: 3, StepsPerEpoch: 7, Step: 14,
		World: 2, NumParams: 5, Bounds: []int{0, 3, 5},
		History: []cluster.EpochStats{{Epoch: 0, Loss: 1.5, EvalLoss: 1.25, Metric: 0.5, LR: 0.01}},
		Workers: []*cluster.WorkerState{
			{
				Rank: 0, Params: []float32{1, 2, 3, 4, 5}, ModelState: []float32{0.5, 0.25},
				Velocity: []float32{0, -1, 2, -3, 4}, SampleRNG: [4]uint64{1, 2, 3, 4}, LossSum: 2.5,
				Buckets: []compress.State{
					{Alg: "topk", Vecs: map[string][]float32{"ef": {0.1, 0.2, 0.3}}},
					{Alg: "randk", Vecs: map[string][]float32{"ef": {0.4, 0.5}},
						Words: map[string][]uint64{"rng": {9, 8, 7, 6}}},
				},
			},
			{
				Rank: 1, Params: []float32{5, 4, 3, 2, 1},
				SampleRNG: [4]uint64{5, 6, 7, 8},
				Buckets:   []compress.State{{}, {Alg: "randk"}},
			},
		},
	}
	got := encodeDecode(t, rs)
	if !reflect.DeepEqual(rs, got) {
		t.Fatalf("round-trip mismatch:\nwant %+v\ngot  %+v", rs, got)
	}

	// Identical snapshots serialize to identical bytes (sorted map keys).
	var a, b bytes.Buffer
	if err := WriteSnapshot(&a, rs); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialization is not canonical: equal snapshots produced different bytes")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	rs := &cluster.RunState{
		Family: "fnn3", Seed: 1, Epochs: 1, StepsPerEpoch: 1, World: 1, NumParams: 2,
		Workers: []*cluster.WorkerState{{Params: []float32{1, 2}}},
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, rs); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := ReadSnapshot(bytes.NewReader(flipped)); err == nil {
		t.Fatal("corrupted snapshot read back without error")
	}
	if _, err := ReadSnapshot(bytes.NewReader(good[:len(good)-2])); err == nil {
		t.Fatal("truncated snapshot read back without error")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF // magic
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), good...)
	bad[4] = 99 // version
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Fatal("unknown version accepted")
	}
}

// TestRestoreBitwise resumes mid-run from a serialized snapshot and requires
// the final checkpoint to match the uninterrupted run byte for byte — per
// model family and per stateful compressor (error feedback, DGC momentum,
// RandK's RNG stream, periodic's interval counter, A2SGD itself).
func TestRestoreBitwise(t *testing.T) {
	cases := []struct {
		name, family, spec string
	}{
		{"a2sgd-fnn3", "fnn3", "a2sgd"},
		{"topk-ef", "fnn3", "topk(density=0.05)"},
		{"randk-rng", "fnn3", "randk(density=0.05)"},
		{"dgc-momentum", "fnn3", "dgc(density=0.05)"},
		{"periodic-interval", "fnn3", "periodic(topk(density=0.05), interval=2)"},
		{"qsgd-rng", "fnn3", "qsgd(levels=4)"},
		{"vgg16-batchnorm", "vgg16", "a2sgd"},
		{"lstm", "lstm", "a2sgd"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(tc.family, tc.spec, 2)
			if tc.family != "fnn3" {
				// Keep the heavier families quick.
				cfg.Epochs, cfg.StepsPerEpoch, cfg.BatchPerWorker = 1, 4, 2
			}
			cfg.CheckpointEvery = 3
			_, baseline, snaps := captureRun(t, cfg)
			snap := snaps[3]
			if snap == nil {
				t.Fatalf("no snapshot at step 3 (have %v)", stepsOf(snaps))
			}
			cfg.CheckpointEvery = 0
			cfg.SnapshotSink = nil
			// Resume through the serialized form, so the test also proves the
			// A2SV encoding preserves full fidelity.
			_, resumed := resumeRun(t, cfg, encodeDecode(t, snap))
			if !bytes.Equal(baseline, resumed) {
				t.Fatalf("resumed checkpoint differs from uninterrupted run (%d vs %d bytes)",
					len(resumed), len(baseline))
			}
		})
	}
}

func stepsOf(snaps map[int]*cluster.RunState) []int {
	var s []int
	for k := range snaps {
		s = append(s, k)
	}
	return s
}

func TestReshardIdentityAndDeterminism(t *testing.T) {
	cfg := testConfig("fnn3", "dgc(density=0.05)", 4)
	cfg.CheckpointEvery = 5
	_, _, snaps := captureRun(t, cfg)
	snap := snaps[5]
	if snap == nil {
		t.Fatal("no snapshot at step 5")
	}

	same, err := Reshard(snap, 4)
	if err != nil {
		t.Fatal(err)
	}
	if same != snap {
		t.Fatal("equal-world reshard should be the identity")
	}

	for _, world := range []int{2, 3, 6, 8} {
		a, err := Reshard(snap, world)
		if err != nil {
			t.Fatalf("Reshard(%d): %v", world, err)
		}
		b, err := Reshard(snap, world)
		if err != nil {
			t.Fatalf("Reshard(%d) again: %v", world, err)
		}
		if a.World != world || len(a.Workers) != world {
			t.Fatalf("Reshard(%d) produced world %d with %d workers", world, a.World, len(a.Workers))
		}
		var ba, bb bytes.Buffer
		if err := WriteSnapshot(&ba, a); err != nil {
			t.Fatal(err)
		}
		if err := WriteSnapshot(&bb, b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
			t.Fatalf("Reshard(%d) is not deterministic", world)
		}
	}

	// Shrinking must preserve accumulated error mass: the elementwise sum of
	// every per-bucket state vector across ranks is invariant.
	shrunk, err := Reshard(snap, 2)
	if err != nil {
		t.Fatal(err)
	}
	for b := range snap.Workers[0].Buckets {
		for key := range snap.Workers[0].Buckets[b].Vecs {
			want := vecMass(snap.Workers, b, key)
			got := vecMass(shrunk.Workers, b, key)
			if diff := want - got; diff > 1e-3 || diff < -1e-3 {
				t.Fatalf("bucket %d %q mass not preserved: %g -> %g", b, key, want, got)
			}
		}
	}

	// The input snapshot must be untouched by the fold.
	var before, after bytes.Buffer
	if err := WriteSnapshot(&before, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Reshard(snap, 1); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&after, snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("Reshard mutated its input snapshot")
	}
}

func vecMass(ws []*cluster.WorkerState, b int, key string) float64 {
	var sum float64
	for _, w := range ws {
		if b >= len(w.Buckets) {
			continue
		}
		for _, x := range w.Buckets[b].Vecs[key] {
			sum += float64(x)
		}
	}
	return sum
}

// TestReshardedResumeDeterministic reshards one snapshot up and down and
// requires the resumed runs to be reproducible run to run.
func TestReshardedResumeDeterministic(t *testing.T) {
	cfg := testConfig("fnn3", "topk(density=0.05)", 4)
	cfg.CheckpointEvery = 5
	_, _, snaps := captureRun(t, cfg)
	snap := snaps[5]
	if snap == nil {
		t.Fatal("no snapshot at step 5")
	}
	for _, world := range []int{3, 6} {
		rs, err := Reshard(snap, world)
		if err != nil {
			t.Fatal(err)
		}
		cfg2 := testConfig("fnn3", "topk(density=0.05)", world)
		resA, ckptA := resumeRun(t, cfg2, rs)
		resB, ckptB := resumeRun(t, cfg2, rs)
		if !bytes.Equal(ckptA, ckptB) {
			t.Fatalf("world %d: resharded resume is not deterministic", world)
		}
		if !reflect.DeepEqual(resA.Epochs, resB.Epochs) {
			t.Fatalf("world %d: loss trajectories differ across identical resumes", world)
		}
	}
}

// TestElasticCrashMatchesReshardedRun is the acceptance scenario: a seeded
// crash(rank=3, step=5) under the elastic supervisor must resume from the
// last snapshot, re-plan at N−1 ranks, and produce exactly the checkpoint of
// an uninterrupted (N−1)-rank run launched from the same resharded snapshot.
//
// The checkpoint boundary (step 4) is kept strictly before the crash step:
// when they coincide, the crashing rank can exit the snapshot barrier and
// kill the fabric while other ranks are still inside it, so whether the
// boundary snapshot lands is a scheduling race. With one full step between
// boundary and crash, the crashing rank's step-4 collectives cannot complete
// until every rank has left the barrier, so the snapshot is deterministic.
func TestElasticCrashMatchesReshardedRun(t *testing.T) {
	cfg := testConfig("fnn3", "dgc(density=0.05)", 4)
	cfg.CheckpointEvery = 4
	var elasticCkpt bytes.Buffer
	cfg.Checkpoint = &elasticCkpt

	snaps := map[string]*cluster.RunState{}
	job := &Job{
		Config:   cfg,
		Scenario: faultnet.MustParse("deadline(5s) crash(rank=3, step=5)"),
		SnapshotSink: func(rs *cluster.RunState) error {
			snaps[fmt.Sprintf("w%d.s%d", rs.World, rs.Step)] = rs
			return nil
		},
	}
	rr, err := job.Run()
	if err != nil {
		t.Fatalf("elastic run: %v", err)
	}
	if rr.Result == nil || rr.Paused {
		t.Fatal("elastic run did not complete")
	}
	if rr.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", rr.Restarts)
	}
	if got := rr.Result.MembershipEpoch; got != 1 {
		t.Fatalf("final membership epoch = %d, want 1", got)
	}
	if len(rr.Events) != 2 || rr.Events[1].Reason != "crash(rank=3)" || rr.Events[1].World != 3 {
		t.Fatalf("events = %+v", rr.Events)
	}

	// Reference: reshard the step-4 snapshot to 3 ranks ourselves and run the
	// remainder uninterrupted.
	snap := snaps["w4.s4"]
	if snap == nil {
		t.Fatalf("missing world-4 step-4 snapshot (have %v)", keysOf(snaps))
	}
	rs3, err := Reshard(snap, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref := testConfig("fnn3", "dgc(density=0.05)", 3)
	refRes, refCkpt := resumeRun(t, ref, rs3)

	if !bytes.Equal(elasticCkpt.Bytes(), refCkpt) {
		t.Fatal("elastic continuation does not match the uninterrupted 3-rank run from the same snapshot")
	}
	if !reflect.DeepEqual(rr.Result.Epochs, refRes.Epochs) {
		t.Fatalf("loss trajectories differ:\nelastic %+v\nref     %+v", rr.Result.Epochs, refRes.Epochs)
	}
}

func keysOf(m map[string]*cluster.RunState) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// TestElasticPreemptRejoins shrinks on the preemption, pauses at the next
// checkpoint boundary, and grows back to full width.
func TestElasticPreemptRejoins(t *testing.T) {
	cfg := testConfig("fnn3", "a2sgd", 4)
	cfg.CheckpointEvery = 5
	job := &Job{
		Config:   cfg,
		Scenario: faultnet.MustParse("deadline(5s) preempt(rank=2, step=3)"),
	}
	rr, err := job.Run()
	if err != nil {
		t.Fatalf("elastic run: %v", err)
	}
	if rr.Result == nil {
		t.Fatal("run did not complete")
	}
	wantReasons := []string{"start", "preempt(rank=2)", "rejoin"}
	if len(rr.Events) != len(wantReasons) {
		t.Fatalf("events = %+v", rr.Events)
	}
	for i, w := range wantReasons {
		if rr.Events[i].Reason != w {
			t.Fatalf("event %d = %+v, want reason %q", i, rr.Events[i], w)
		}
	}
	if rr.Events[1].World != 3 || rr.Events[2].World != 4 {
		t.Fatalf("world trajectory wrong: %+v", rr.Events)
	}
	if rr.Events[2].Step != 5 {
		t.Fatalf("rejoin at step %d, want checkpoint boundary 5", rr.Events[2].Step)
	}
	if rr.Result.MembershipEpoch != 2 {
		t.Fatalf("final membership epoch = %d, want 2", rr.Result.MembershipEpoch)
	}
}

// TestElasticDrainPausesWithSnapshot: a closed Drain channel stops the job at
// the next checkpoint boundary with a resumable snapshot, and resuming a new
// job from it completes the run.
func TestElasticDrainPausesWithSnapshot(t *testing.T) {
	cfg := testConfig("fnn3", "a2sgd", 2)
	cfg.CheckpointEvery = 5
	drain := make(chan struct{})
	close(drain)
	job := &Job{Config: cfg, Drain: drain}
	rr, err := job.Run()
	if err != nil {
		t.Fatalf("drained run: %v", err)
	}
	if !rr.Paused || rr.Snapshot == nil {
		t.Fatalf("expected a paused run with a snapshot, got %+v", rr)
	}
	if rr.Snapshot.Step != 5 {
		t.Fatalf("paused at step %d, want 5", rr.Snapshot.Step)
	}

	resumed := &Job{Config: cfg}
	resumed.Config.Resume = rr.Snapshot
	rr2, err := resumed.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if rr2.Result == nil || rr2.Paused {
		t.Fatal("resumed run did not complete")
	}
}

// TestPoolBoundsConcurrency runs two 2-rank jobs over a 2-slot pool; both
// must complete (the pool serializes them rather than deadlocking).
func TestPoolBoundsConcurrency(t *testing.T) {
	pool := NewPool(2)
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(seed uint64) {
			cfg := testConfig("fnn3", "a2sgd", 2)
			cfg.Seed = seed
			cfg.NewBucketAlgorithm = func(rank int, info compress.BucketInfo) compress.Algorithm {
				o := compress.DefaultOptions(info.Params)
				o.Seed = compress.BucketSeed(seed, rank, info.Index)
				a, err := compress.ParseBuild("a2sgd", o)
				if err != nil {
					panic(err)
				}
				return a
			}
			job := &Job{Config: cfg, Pool: pool}
			_, err := job.Run()
			done <- err
		}(uint64(11 + i))
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("pooled job: %v", err)
		}
	}
	if pool.Cap() != 2 {
		t.Fatalf("pool capacity changed: %d", pool.Cap())
	}
}

// TestPoolClampsOversizedJobs: a job wider than the pool still runs.
func TestPoolClampsOversizedJobs(t *testing.T) {
	pool := NewPool(1)
	cfg := testConfig("fnn3", "a2sgd", 2)
	job := &Job{Config: cfg, Pool: pool}
	if _, err := job.Run(); err != nil {
		t.Fatalf("oversized pooled job: %v", err)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	cfg := testConfig("fnn3", "a2sgd", 2)
	cfg.CheckpointEvery = 5
	_, _, snaps := captureRun(t, cfg)
	snap := snaps[5]
	if snap == nil {
		t.Fatal("no snapshot at step 5")
	}
	path := t.TempDir() + "/job.snap"
	if err := WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatal("file round-trip mismatch")
	}
}

// TestReplanPerEpoch drives the Replan hook through both of its contracts:
// with membership unchanged the replanned run is bitwise identical to a run
// on the statically built schedule (plan.Build is pure), and a crash re-plans
// exactly once more, at the shrunk world.
func TestReplanPerEpoch(t *testing.T) {
	m, err := models.New(models.Config{Family: "fnn3", Seed: 7, Reduced: true})
	if err != nil {
		t.Fatal(err)
	}
	segs := m.ParamSegments()
	build := func(world int) (*plan.Schedule, error) {
		return plan.Build(segs, plan.Options{Workers: world, Pricer: netsim.IB100()})
	}

	// A schedule-driven config: bucket boundaries and overlap come from the
	// schedule, and the per-bucket algorithm builds the scheduled spec. cur
	// tracks the epoch's schedule so rescheduled segments build the right
	// specs.
	var mu sync.Mutex
	var cur *plan.Schedule
	schedConfig := func(workers int) cluster.Config {
		const seed = 7
		return cluster.Config{
			Workers: workers, Family: "fnn3",
			Epochs: 2, StepsPerEpoch: 5, BatchPerWorker: 4,
			Seed: seed, Momentum: 0.9,
			NewBucketAlgorithm: func(rank int, info compress.BucketInfo) compress.Algorithm {
				mu.Lock()
				s := cur
				mu.Unlock()
				o := compress.DefaultOptions(info.Params)
				o.Seed = compress.BucketSeed(seed, rank, info.Index)
				a, err := compress.Build(s.Specs[info.Index], o)
				if err != nil {
					panic(err)
				}
				return a
			},
		}
	}

	// Reference: a plain fixed-schedule run at world 4.
	static, err := build(4)
	if err != nil {
		t.Fatalf("plan.Build: %v", err)
	}
	cur = static
	ref := schedConfig(4)
	ref.Schedule = static
	_, refCkpt, _ := captureRun(t, ref)

	// Elastic fault-free run replanning per epoch: one epoch, same bytes.
	var worlds []int
	replan := func(world int) (*plan.Schedule, error) {
		s, err := build(world)
		if err == nil {
			mu.Lock()
			worlds = append(worlds, world)
			cur = s
			mu.Unlock()
		}
		return s, err
	}
	var ckpt bytes.Buffer
	cfg := schedConfig(4)
	cfg.Checkpoint = &ckpt
	job := &Job{Config: cfg, Replan: replan}
	rr, err := job.Run()
	if err != nil {
		t.Fatalf("fault-free replan run: %v", err)
	}
	if len(rr.Events) != 1 || !reflect.DeepEqual(worlds, []int{4}) {
		t.Fatalf("fault-free run: events %+v, replanned worlds %v", rr.Events, worlds)
	}
	if !bytes.Equal(ckpt.Bytes(), refCkpt) {
		t.Fatal("replanned run diverged from the statically scheduled run with membership unchanged")
	}

	// Crash one step past the first boundary (crashing ON a boundary races
	// the snapshot barrier against the kill): the second epoch replans at
	// world 3.
	worlds = nil
	var ckpt2 bytes.Buffer
	cfg2 := schedConfig(4)
	cfg2.Checkpoint = &ckpt2
	cfg2.CheckpointEvery = 5
	job2 := &Job{
		Config:   cfg2,
		Scenario: faultnet.MustParse("deadline(5s) crash(rank=3, step=6)"),
		Replan:   replan,
	}
	rr2, err := job2.Run()
	if err != nil {
		t.Fatalf("crash replan run: %v", err)
	}
	if rr2.Restarts != 1 || !reflect.DeepEqual(worlds, []int{4, 3}) {
		t.Fatalf("crash run: restarts %d, replanned worlds %v", rr2.Restarts, worlds)
	}
	if len(ckpt2.Bytes()) == 0 {
		t.Fatal("crash run produced no final checkpoint")
	}
}
