package elastic

import (
	"errors"
	"fmt"
	"sync"

	"a2sgd/internal/cluster"
	"a2sgd/internal/comm"
	"a2sgd/internal/comm/faultnet"
	"a2sgd/internal/plan"
)

// membership pins one epoch's world view for a cluster.Train segment.
type membership struct{ world, epoch int }

func (m membership) WorldSize() int { return m.world }
func (m membership) Epoch() int     { return m.epoch }

// Event records one membership-epoch transition of an elastic run.
type Event struct {
	// Epoch is the membership epoch the transition started.
	Epoch int
	// Step is the global step boundary the epoch resumed from.
	Step int
	// World is the epoch's live worker count.
	World int
	// Reason explains the transition: "start", "crash(rank=N)",
	// "preempt(rank=N)", "rejoin", "drain".
	Reason string
}

// Job supervises one elastic training run: a sequence of fixed-world
// cluster.Train segments connected through snapshots, with the world size
// adjusted across segments as ranks crash, get preempted, and rejoin.
type Job struct {
	// Config is the base training configuration. Workers is the initial world
	// size; Resume, when non-nil, restarts the job from a persisted snapshot
	// (the snapshot's world wins over Workers). CheckpointEvery bounds the
	// work lost to a failure and paces the rejoin boundaries.
	Config cluster.Config
	// Scenario injects the job's deterministic faults. The supervisor also
	// reads it to attribute mid-segment failures: a segment failing with a
	// peer error consumes the scenario's earliest unconsumed crash, stall or
	// preempt rule. Nil runs fault-free.
	Scenario *faultnet.Scenario
	// TCP runs the worker groups over loopback TCP instead of the in-process
	// fabric.
	TCP bool
	// Replan, when non-nil, supplies the synchronization schedule for every
	// membership epoch at its world size (typically plan.Build, which is pure:
	// unchanged membership replans to a bitwise-identical schedule). Nil keeps
	// Config's own algorithm knobs across rescales.
	Replan func(world int) (*plan.Schedule, error)
	// MaxRestarts bounds recovery attempts (default 8); a run that keeps
	// failing past the bound surfaces its last error.
	MaxRestarts int
	// Pool, when non-nil, gates each segment on world free worker slots, so
	// concurrent jobs share a bounded amount of parallelism.
	Pool *Pool
	// Drain, when non-nil, requests a graceful pause: once closed, the job
	// stops at its next checkpoint boundary with a final snapshot.
	Drain <-chan struct{}
	// SnapshotSink, when non-nil, additionally receives every snapshot the
	// run delivers (the gateway persists them to disk here). The supervisor
	// always retains the latest snapshot itself.
	SnapshotSink func(*cluster.RunState) error
}

// RunResult is the outcome of an elastic run.
type RunResult struct {
	// Result is the final segment's rank-0 view; nil when the run was paused
	// by Drain before completing.
	Result *cluster.Result
	// Paused reports a graceful drain stop; Snapshot is then the resume point.
	Paused bool
	// Snapshot is the latest snapshot the run delivered.
	Snapshot *cluster.RunState
	// Events is the membership-epoch history, starting with "start".
	Events []Event
	// Restarts counts the failure recoveries performed.
	Restarts int
}

// segmentScenario derives the fault scenario for a segment starting at global
// step segStart: consumed rules are dropped, and step-scoped rules are
// rebased to the segment's mesh (each cluster.Train call counts steps from
// its own start, while rule steps are written in global steps).
func (j *Job) segmentScenario(segStart int, consumed []bool) *faultnet.Scenario {
	if j.Scenario == nil {
		return &faultnet.Scenario{Seed: 1}
	}
	sc := *j.Scenario
	sc.Rules = nil
	for i, r := range j.Scenario.Rules {
		if consumed[i] {
			continue
		}
		if r.Step >= 0 {
			if r.Step < segStart {
				continue
			}
			r.Step -= segStart
		}
		sc.Rules = append(sc.Rules, r)
	}
	return &sc
}

// nextFault returns the index of the earliest unconsumed rank-failure rule
// (crash, stall or preempt) that can have fired in a segment starting at
// segStart, or -1.
func (j *Job) nextFault(segStart int, consumed []bool) int {
	best := -1
	if j.Scenario == nil {
		return best
	}
	for i, r := range j.Scenario.Rules {
		if consumed[i] || r.Step < segStart {
			continue
		}
		switch r.Kind {
		case faultnet.RuleCrash, faultnet.RuleStall, faultnet.RulePreempt:
			if best < 0 || r.Step < j.Scenario.Rules[best].Step {
				best = i
			}
		}
	}
	return best
}

// nextBoundary returns the first snapshot boundary strictly after step — the
// next CheckpointEvery multiple, or the very next step when periodic
// checkpointing is off — or 0 when no boundary precedes the end of the run.
func nextBoundary(step, every, total int) int {
	b := step + 1
	if every > 0 {
		b = (step/every + 1) * every
	}
	if b >= total {
		return 0
	}
	return b
}

func drained(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// Run drives the job to completion (or to a drain pause): it runs one
// cluster.Train segment per membership epoch, snapshots at boundaries,
// shrinks the world when a rank fails, schedules a rejoin boundary for
// preempted ranks, reshards the latest snapshot across every transition and
// re-plans the schedule when Replan is set.
func (j *Job) Run() (*RunResult, error) {
	base := j.Config
	if base.Workers <= 0 {
		base.Workers = 1
	}
	epochsN, stepsN := base.Epochs, base.StepsPerEpoch
	if epochsN <= 0 {
		epochsN = 1
	}
	if stepsN <= 0 {
		stepsN = 10
	}
	totalSteps := epochsN * stepsN
	maxRestarts := j.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 8
	}
	var rules []faultnet.Rule
	if j.Scenario != nil {
		rules = j.Scenario.Rules
	}
	consumed := make([]bool, len(rules))

	latest := base.Resume
	world := base.Workers
	startStep := 0
	if latest != nil {
		world = latest.World
		startStep = latest.Step
	}
	epoch := 0
	pendingRejoin := 0
	rr := &RunResult{Events: []Event{{Epoch: 0, Step: startStep, World: world, Reason: "start"}}}

	// latest is written by rank 0's sink goroutine during a segment and read
	// by the supervisor after the segment joins; the mutex makes the handoff
	// race-free under external sinks that outlive the group join.
	var mu sync.Mutex
	for {
		segStart := 0
		if latest != nil {
			segStart = latest.Step
		}
		seg := base
		seg.Workers = world
		seg.Membership = membership{world: world, epoch: epoch}
		seg.Resume = latest
		seg.Drain = j.Drain
		seg.StopStep = 0
		seg.SnapshotSink = func(rs *cluster.RunState) error {
			mu.Lock()
			latest = rs
			mu.Unlock()
			if j.SnapshotSink != nil {
				return j.SnapshotSink(rs)
			}
			return nil
		}
		if pendingRejoin > 0 {
			if stop := nextBoundary(segStart, seg.CheckpointEvery, totalSteps); stop > 0 {
				seg.StopStep = stop
			} else {
				// No boundary left before the run ends: the preempted ranks
				// cannot rejoin, the shrunk world finishes the run.
				pendingRejoin = 0
			}
		}
		if j.Replan != nil {
			sched, err := j.Replan(world)
			if err != nil {
				return rr, fmt.Errorf("elastic: replan at world %d: %w", world, err)
			}
			seg.Schedule = sched
		}
		seg.GroupRunner = faultnet.GroupRunner(j.segmentScenario(segStart, consumed), j.TCP)

		var slots int
		if j.Pool != nil {
			slots = j.Pool.Acquire(world)
		}
		res, err := cluster.Train(seg)
		if j.Pool != nil {
			j.Pool.Release(slots)
		}
		mu.Lock()
		snap := latest
		mu.Unlock()

		if err == nil {
			rr.Result = res
			rr.Snapshot = snap
			return rr, nil
		}
		if errors.Is(err, cluster.ErrPaused) {
			if drained(j.Drain) {
				rr.Paused = true
				rr.Snapshot = snap
				rr.Events = append(rr.Events, Event{Epoch: epoch, Step: snap.Step, World: world, Reason: "drain"})
				return rr, nil
			}
			if pendingRejoin > 0 {
				world += pendingRejoin
				pendingRejoin = 0
				epoch++
				latest, err = Reshard(snap, world)
				if err != nil {
					return rr, err
				}
				rr.Events = append(rr.Events, Event{Epoch: epoch, Step: snap.Step, World: world, Reason: "rejoin"})
				continue
			}
			return rr, err // paused with no pending transition: surface it
		}
		// Mid-segment failure. Only peer-scoped transport failures are
		// membership events; anything else (divergence, a planning bug) is not
		// recoverable by rescaling.
		var pe *comm.PeerError
		ri := j.nextFault(segStart, consumed)
		if !errors.As(err, &pe) || ri < 0 || rr.Restarts >= maxRestarts || snap == nil {
			return rr, err
		}
		rr.Restarts++
		consumed[ri] = true
		r := rules[ri]
		if world-1 < 1 {
			return rr, fmt.Errorf("elastic: rank %d failed with no survivors left: %w", r.Rank, err)
		}
		world--
		epoch++
		reason := fmt.Sprintf("crash(rank=%d)", r.Rank)
		if r.Kind == faultnet.RulePreempt {
			pendingRejoin++
			reason = fmt.Sprintf("preempt(rank=%d)", r.Rank)
		}
		latest, err = Reshard(snap, world)
		if err != nil {
			return rr, err
		}
		rr.Events = append(rr.Events, Event{Epoch: epoch, Step: snap.Step, World: world, Reason: reason})
	}
}
