package elastic

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"a2sgd/internal/cluster"
	"a2sgd/internal/comm"
	"a2sgd/internal/comm/faultnet"
	"a2sgd/internal/health"
	"a2sgd/internal/netsim"
	"a2sgd/internal/plan"
)

// membership pins one epoch's world view for a cluster.Train segment.
type membership struct{ world, epoch int }

func (m membership) WorldSize() int { return m.world }
func (m membership) Epoch() int     { return m.epoch }

// Event records one membership-epoch transition of an elastic run.
type Event struct {
	// Epoch is the membership epoch the transition started.
	Epoch int
	// Step is the global step boundary the epoch resumed from.
	Step int
	// World is the epoch's live worker count.
	World int
	// Reason explains the transition: "start", "crash(rank=N)",
	// "preempt(rank=N)", "rejoin", "drain", and the escalation-ladder
	// stages "degrade(rank=N)" (soft-degrade), "backup(rank=N)" (warm
	// clone on a spare slot), "evict(rank=N)" (targeted removal) and
	// "replan(drift=X.Xx)" (measured fabric diverged from the model).
	Reason string
}

// LadderStage is one rank's position on the escalation ladder the health
// monitor drives: every boundary a rank is still classified Degraded it
// climbs one stage.
type LadderStage int

// Escalation ladder stages, in order.
const (
	// StageHealthy: no action. Transient transport errors are already
	// retried below this ladder by comm.SetRetry.
	StageHealthy LadderStage = iota
	// StageSoft: soft-degrade — the group's effective concurrency shrinks to
	// the deterministic single context (bitwise-identical arithmetic, less
	// outstanding load on the slow rank's links) and the scenario deadline is
	// extended once.
	StageSoft
	// StageBackup: a spare Pool slot duplicates the rank's shard; the first
	// finisher wins with a deterministic rank-ordered tie-break, so the
	// recovered run stays bitwise-identical to the fault-free reference.
	StageBackup
	// StageEvicted: the rank is removed by a targeted membership-epoch
	// reshard (Evict) and the world shrinks by one.
	StageEvicted
)

func (s LadderStage) String() string {
	switch s {
	case StageSoft:
		return "soft-degrade"
	case StageBackup:
		return "backup"
	case StageEvicted:
		return "evicted"
	}
	return "healthy"
}

// Job supervises one elastic training run: a sequence of fixed-world
// cluster.Train segments connected through snapshots, with the world size
// adjusted across segments as ranks crash, get preempted, and rejoin.
type Job struct {
	// Config is the base training configuration. Workers is the initial world
	// size; Resume, when non-nil, restarts the job from a persisted snapshot
	// (the snapshot's world wins over Workers). CheckpointEvery bounds the
	// work lost to a failure and paces the rejoin boundaries.
	Config cluster.Config
	// Scenario injects the job's deterministic faults. The supervisor also
	// reads it to attribute mid-segment failures: a segment failing with a
	// peer error consumes the scenario's earliest unconsumed crash, stall or
	// preempt rule. Nil runs fault-free.
	Scenario *faultnet.Scenario
	// TCP runs the worker groups over loopback TCP instead of the in-process
	// fabric.
	TCP bool
	// Replan, when non-nil, supplies the synchronization schedule for every
	// membership epoch at its world size (typically plan.Build, which is pure:
	// unchanged membership replans to a bitwise-identical schedule). Nil keeps
	// Config's own algorithm knobs across rescales.
	Replan func(world int) (*plan.Schedule, error)
	// MaxRestarts bounds recovery attempts (default 8); a run that keeps
	// failing past the bound surfaces its last error.
	MaxRestarts int
	// ResetBudgetAfter, when > 0, refills the restart budget after this many
	// consecutive snapshot boundaries pass without a failure, so a
	// long-running job is not killed by MaxRestarts counting unrelated
	// sporadic faults across its whole lifetime. RunResult.Restarts still
	// reports the lifetime total.
	ResetBudgetAfter int
	// Pool, when non-nil, gates each segment on world free worker slots —
	// plus one slot per active backup clone, so the duplicated hardware is
	// accounted — and concurrent jobs share a bounded amount of parallelism.
	Pool *Pool
	// Drain, when non-nil, requests a graceful pause: once closed, the job
	// stops at its next checkpoint boundary with a final snapshot.
	Drain <-chan struct{}
	// SnapshotSink, when non-nil, additionally receives every snapshot the
	// run delivers (the gateway persists them to disk here). The supervisor
	// always retains the latest snapshot itself.
	SnapshotSink func(*cluster.RunState) error

	// Health enables the per-segment health monitor and the escalation
	// ladder even with no backup slots or drift re-planning configured.
	// When any of Health/BackupSlots/DriftReplan is on, the supervisor paces
	// segments to checkpoint boundaries (StopStep) so it can evaluate the
	// monitor between them; pause/resume is bitwise, so pacing never changes
	// the trained state.
	Health bool
	// HealthOptions tunes the monitor; the zero value uses health defaults.
	HealthOptions health.Options
	// BackupSlots bounds the number of concurrently backed-up ranks (0
	// disables the backup stage: persistent stragglers go straight from
	// soft-degrade to eviction).
	BackupSlots int
	// DriftReplan re-plans the schedule on the measured fabric when the
	// monitor's α–β estimates drift from DriftModel past DriftThreshold.
	DriftReplan bool
	// DriftModel is the fabric the planner priced the original schedule on
	// (zero value: netsim.IB100()).
	DriftModel netsim.Fabric
	// DriftThreshold is the worst-direction health.Drift ratio that triggers
	// a replan (default 2).
	DriftThreshold float64
	// ReplanMeasured, when non-nil, supplies the schedule after a drift
	// trigger, receiving the measured fabric (typically plan.Build with
	// Options.Pricer set to it). Nil leaves Replan (or Config) in charge even
	// after a drift event.
	ReplanMeasured func(world int, measured netsim.Fabric) (*plan.Schedule, error)
}

// RunResult is the outcome of an elastic run.
type RunResult struct {
	// Result is the final segment's rank-0 view; nil when the run was paused
	// by Drain before completing.
	Result *cluster.Result
	// Paused reports a graceful drain stop; Snapshot is then the resume point.
	Paused bool
	// Snapshot is the latest snapshot the run delivered.
	Snapshot *cluster.RunState
	// Events is the membership-epoch history, starting with "start".
	Events []Event
	// Restarts counts the failure recoveries performed over the job's
	// lifetime (never reset by ResetBudgetAfter).
	Restarts int
	// Backups counts the backup-worker activations.
	Backups int
	// Measured is the last measured fabric the health monitor produced, when
	// any segment gathered enough link samples.
	Measured *netsim.Fabric
}

// segmentScenario derives the fault scenario for a segment starting at global
// step segStart: consumed rules are dropped, step-scoped rules are rebased to
// the segment's mesh (each cluster.Train call counts steps from its own
// start, while rule steps are written in global steps), the active backup
// ranks are installed, and the deadline is stretched by deadlineScale when a
// soft-degraded rank earned its one extension. Degrade rules rebase even when
// their ramp began before the segment (a negative After keeps the ramp's
// phase), unlike one-shot step rules, which are dropped once passed.
func (j *Job) segmentScenario(rules []faultnet.Rule, segStart int, consumed []bool, backups []int, deadlineScale float64) *faultnet.Scenario {
	sc := faultnet.Scenario{Seed: 1}
	if j.Scenario != nil {
		sc = *j.Scenario
	}
	sc.Rules = nil
	for i, r := range rules {
		if consumed[i] {
			continue
		}
		if r.Kind == faultnet.RuleDegrade {
			r.Step -= segStart
		} else if r.Step >= 0 {
			if r.Step < segStart {
				continue
			}
			r.Step -= segStart
		}
		sc.Rules = append(sc.Rules, r)
	}
	sc.Backup = append([]int(nil), backups...)
	if deadlineScale > 1 && sc.Deadline > 0 {
		sc.Deadline = time.Duration(float64(sc.Deadline) * deadlineScale)
	}
	return &sc
}

// nextFault returns the index of the earliest unconsumed rank-failure rule
// (crash, stall or preempt) that can have fired in a segment starting at
// segStart, or -1.
func nextFault(rules []faultnet.Rule, segStart int, consumed []bool) int {
	best := -1
	for i, r := range rules {
		if consumed[i] || r.Step < segStart {
			continue
		}
		switch r.Kind {
		case faultnet.RuleCrash, faultnet.RuleStall, faultnet.RulePreempt:
			if best < 0 || r.Step < rules[best].Step {
				best = i
			}
		}
	}
	return best
}

// nextBoundary returns the first snapshot boundary strictly after step — the
// next CheckpointEvery multiple, or the very next step when periodic
// checkpointing is off — or 0 when no boundary precedes the end of the run.
func nextBoundary(step, every, total int) int {
	b := step + 1
	if every > 0 {
		b = (step/every + 1) * every
	}
	if b >= total {
		return 0
	}
	return b
}

func drained(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// Run drives the job to completion (or to a drain pause): it runs one
// cluster.Train segment per membership epoch, snapshots at boundaries,
// shrinks the world when a rank fails, schedules a rejoin boundary for
// preempted ranks, reshards the latest snapshot across every transition and
// re-plans the schedule when Replan is set.
//
// With the health monitor on (Health, BackupSlots or DriftReplan), every
// checkpoint boundary additionally evaluates the escalation ladder: a rank
// the monitor classifies Degraded climbs healthy → soft-degrade → backup →
// evicted, one stage per boundary it stays degraded — so a degraded-but-alive
// rank always passes through soft-degrade before any eviction — and the
// measured fabric is compared against DriftModel to trigger a measured-fabric
// replan.
func (j *Job) Run() (*RunResult, error) {
	base := j.Config
	if base.Workers <= 0 {
		base.Workers = 1
	}
	epochsN, stepsN := base.Epochs, base.StepsPerEpoch
	if epochsN <= 0 {
		epochsN = 1
	}
	if stepsN <= 0 {
		stepsN = 10
	}
	totalSteps := epochsN * stepsN
	maxRestarts := j.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 8
	}
	driftModel := j.DriftModel
	if driftModel == (netsim.Fabric{}) {
		driftModel = netsim.IB100()
	}
	driftThreshold := j.DriftThreshold
	if driftThreshold <= 1 {
		driftThreshold = 2
	}
	// Rules are copied so a targeted eviction can renumber the surviving
	// ranks' rules without mutating the caller's scenario.
	var rules []faultnet.Rule
	if j.Scenario != nil {
		rules = append([]faultnet.Rule(nil), j.Scenario.Rules...)
	}
	consumed := make([]bool, len(rules))

	latest := base.Resume
	world := base.Workers
	startStep := 0
	if latest != nil {
		world = latest.World
		startStep = latest.Step
	}
	epoch := 0
	pendingRejoin := 0
	rr := &RunResult{Events: []Event{{Epoch: 0, Step: startStep, World: world, Reason: "start"}}}

	healthOn := j.Health || j.BackupSlots > 0 || j.DriftReplan
	ladder := make([]LadderStage, world)
	var backups []int
	deadlineScale := 1.0
	var measured *netsim.Fabric
	drifted := false
	// budgetUsed is the spent share of the restart budget; cleanSince counts
	// consecutive snapshot deliveries with no failure in between, the
	// ResetBudgetAfter refill signal.
	budgetUsed, cleanSince := 0, 0

	// latest is written by rank 0's sink goroutine during a segment and read
	// by the supervisor after the segment joins; the mutex makes the handoff
	// race-free under external sinks that outlive the group join.
	var mu sync.Mutex
	for {
		segStart := 0
		if latest != nil {
			segStart = latest.Step
		}
		seg := base
		seg.Workers = world
		seg.Membership = membership{world: world, epoch: epoch}
		seg.Resume = latest
		seg.Drain = j.Drain
		seg.StopStep = 0
		seg.SnapshotSink = func(rs *cluster.RunState) error {
			mu.Lock()
			latest = rs
			cleanSince++
			mu.Unlock()
			if j.SnapshotSink != nil {
				return j.SnapshotSink(rs)
			}
			return nil
		}
		if pendingRejoin > 0 {
			if stop := nextBoundary(segStart, seg.CheckpointEvery, totalSteps); stop > 0 {
				seg.StopStep = stop
			} else {
				// No boundary left before the run ends: the preempted ranks
				// cannot rejoin, the shrunk world finishes the run.
				pendingRejoin = 0
			}
		}
		var mon *health.Monitor
		if healthOn {
			mon = health.NewMonitor(world, j.HealthOptions)
			seg.Health = mon
			// Pace the segment to the next boundary so the ladder and drift
			// checks get a look between segments. The final stretch (no
			// boundary left) runs to completion.
			if seg.StopStep == 0 {
				if stop := nextBoundary(segStart, seg.CheckpointEvery, totalSteps); stop > 0 {
					seg.StopStep = stop
				}
			}
			for _, st := range ladder {
				if st == StageSoft && seg.Concurrency > 1 {
					// Soft-degrade: drop to the deterministic single context.
					// Concurrency never changes the arithmetic, so the run
					// stays bitwise — it only sheds concurrent load from the
					// straggler's links.
					seg.Concurrency = 1
				}
			}
		}
		if drifted && j.ReplanMeasured != nil && measured != nil {
			sched, err := j.ReplanMeasured(world, *measured)
			if err != nil {
				return rr, fmt.Errorf("elastic: measured replan at world %d: %w", world, err)
			}
			seg.Schedule = sched
		} else if j.Replan != nil {
			sched, err := j.Replan(world)
			if err != nil {
				return rr, fmt.Errorf("elastic: replan at world %d: %w", world, err)
			}
			seg.Schedule = sched
		}
		seg.GroupRunner = faultnet.GroupRunner(j.segmentScenario(rules, segStart, consumed, backups, deadlineScale), j.TCP)

		var slots int
		if j.Pool != nil {
			slots = j.Pool.Acquire(world + len(backups))
		}
		res, err := cluster.Train(seg)
		if j.Pool != nil {
			j.Pool.Release(slots)
		}
		mu.Lock()
		snap := latest
		mu.Unlock()

		if err == nil {
			rr.Result = res
			rr.Snapshot = snap
			return rr, nil
		}
		if errors.Is(err, cluster.ErrPaused) {
			if drained(j.Drain) {
				rr.Paused = true
				rr.Snapshot = snap
				rr.Events = append(rr.Events, Event{Epoch: epoch, Step: snap.Step, World: world, Reason: "drain"})
				return rr, nil
			}
			if pendingRejoin > 0 {
				world += pendingRejoin
				pendingRejoin = 0
				epoch++
				latest, err = Reshard(snap, world)
				if err != nil {
					return rr, err
				}
				rr.Events = append(rr.Events, Event{Epoch: epoch, Step: snap.Step, World: world, Reason: "rejoin"})
				// The world changed: every ladder label is stale.
				ladder = make([]LadderStage, world)
				backups = backups[:0]
				continue
			}
			if mon != nil && seg.StopStep > 0 {
				if world, latest, err = j.evaluateHealth(mon, snap, rr, rules, consumed, world, &epoch,
					ladder, &backups, &deadlineScale, &measured, &drifted, driftModel, driftThreshold); err != nil {
					return rr, err
				}
				if len(ladder) != world {
					ladder = make([]LadderStage, world)
				}
				continue
			}
			return rr, err // paused with no pending transition: surface it
		}
		// Mid-segment failure. Only peer-scoped transport failures are
		// membership events; anything else (divergence, a planning bug) is not
		// recoverable by rescaling.
		var pe *comm.PeerError
		ri := nextFault(rules, segStart, consumed)
		mu.Lock()
		clean := cleanSince
		cleanSince = 0
		mu.Unlock()
		if j.ResetBudgetAfter > 0 && clean >= j.ResetBudgetAfter {
			budgetUsed = 0
		}
		if !errors.As(err, &pe) || ri < 0 || budgetUsed >= maxRestarts || snap == nil {
			return rr, err
		}
		rr.Restarts++
		budgetUsed++
		consumed[ri] = true
		r := rules[ri]
		if world-1 < 1 {
			return rr, fmt.Errorf("elastic: rank %d failed with no survivors left: %w", r.Rank, err)
		}
		world--
		epoch++
		reason := fmt.Sprintf("crash(rank=%d)", r.Rank)
		if r.Kind == faultnet.RulePreempt {
			pendingRejoin++
			reason = fmt.Sprintf("preempt(rank=%d)", r.Rank)
		}
		latest, err = Reshard(snap, world)
		if err != nil {
			return rr, err
		}
		rr.Events = append(rr.Events, Event{Epoch: epoch, Step: snap.Step, World: world, Reason: reason})
		ladder = make([]LadderStage, world)
		backups = backups[:0]
	}
}

// evaluateHealth runs one boundary's ladder and drift pass: Degraded ranks
// climb a stage (soft-degrade → backup → evict), the measured fabric is
// refreshed and compared against the model. Returns the possibly-shrunk
// world and the snapshot to resume from.
func (j *Job) evaluateHealth(mon *health.Monitor, snap *cluster.RunState, rr *RunResult,
	rules []faultnet.Rule, consumed []bool, world int, epoch *int,
	ladder []LadderStage, backups *[]int, deadlineScale *float64,
	measured **netsim.Fabric, drifted *bool, driftModel netsim.Fabric, driftThreshold float64,
) (int, *cluster.RunState, error) {
	latest := snap
	evict := func(rank int) error {
		if world-1 < 1 {
			return fmt.Errorf("elastic: cannot evict rank %d with no survivors left", rank)
		}
		// The rank's slowdown leaves with it; renumber surviving ranks' rules
		// past the gap so they keep targeting the same physical workers.
		for i := range rules {
			if consumed[i] || rules[i].Rank < 0 {
				continue
			}
			if rules[i].Rank == rank {
				consumed[i] = true
			} else if rules[i].Rank > rank {
				rules[i].Rank--
			}
		}
		var err error
		latest, err = Evict(latest, rank)
		if err != nil {
			return err
		}
		world--
		*epoch++
		// Backup labels shift with the eviction too.
		kept := (*backups)[:0]
		for _, b := range *backups {
			if b == rank {
				continue
			}
			if b > rank {
				b--
			}
			kept = append(kept, b)
		}
		*backups = kept
		ladder[rank] = StageEvicted
		rr.Events = append(rr.Events, Event{Epoch: *epoch, Step: snap.Step, World: world, Reason: fmt.Sprintf("evict(rank=%d)", rank)})
		return nil
	}
	for _, cl := range mon.Classify() {
		if cl.State != health.Degraded || cl.Rank >= len(ladder) || ladder[cl.Rank] == StageEvicted {
			continue
		}
		switch ladder[cl.Rank] {
		case StageHealthy:
			ladder[cl.Rank] = StageSoft
			if *deadlineScale == 1 {
				*deadlineScale = 2 // the one deadline extension
			}
			rr.Events = append(rr.Events, Event{Epoch: *epoch, Step: snap.Step, World: world, Reason: fmt.Sprintf("degrade(rank=%d)", cl.Rank)})
		case StageSoft:
			if len(*backups) < j.BackupSlots {
				ladder[cl.Rank] = StageBackup
				*backups = append(*backups, cl.Rank)
				rr.Backups++
				rr.Events = append(rr.Events, Event{Epoch: *epoch, Step: snap.Step, World: world, Reason: fmt.Sprintf("backup(rank=%d)", cl.Rank)})
			} else if err := evict(cl.Rank); err != nil {
				return world, latest, err
			}
		case StageBackup:
			if err := evict(cl.Rank); err != nil {
				return world, latest, err
			}
		}
	}
	if f, ok := mon.MeasuredFabric("measured"); ok {
		*measured = &f
		rr.Measured = &f
	}
	if j.DriftReplan && !*drifted && *measured != nil {
		if d := health.Drift(**measured, driftModel); d > driftThreshold {
			*drifted = true
			rr.Events = append(rr.Events, Event{Epoch: *epoch, Step: snap.Step, World: world, Reason: fmt.Sprintf("replan(drift=%.1fx)", d)})
		}
	}
	return world, latest, nil
}
