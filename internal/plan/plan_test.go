package plan

import (
	"reflect"
	"testing"

	"a2sgd/internal/compress"
	_ "a2sgd/internal/core" // registers a2sgd for spec parsing
	"a2sgd/internal/models"
	"a2sgd/internal/netsim"
	"a2sgd/internal/nn"
)

func familySegs(t *testing.T, family string) []nn.Segment {
	t.Helper()
	m, err := models.New(models.Config{Family: family, Seed: 1, Reduced: true})
	if err != nil {
		t.Fatal(err)
	}
	return m.ParamSegments()
}

func TestBuildDeterministic(t *testing.T) {
	segs := familySegs(t, "vgg16")
	o := Options{Workers: 8, Pricer: netsim.TwoTierTCP10G(4)}
	a, err := Build(segs, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(segs, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("planning twice diverged:\n%+v\n%+v", a, b)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("planned schedule invalid: %v", err)
	}
	if a.Overlap != true || a.Workers != 8 || a.PricedOn == "" {
		t.Errorf("schedule metadata %+v", a)
	}
}

// TestAutoNotWorseThanUniform is the planner's core guarantee (ISSUE 4
// acceptance): on both the paper's IB100 and the two-tier TCP pair, for the
// vgg16- and lstm-style models, the planned schedule's modelled pipelined
// time is <= every hand-tuned uniform configuration (spec × bucket budget)
// over the planner's own grid and a conventional hand grid.
func TestAutoNotWorseThanUniform(t *testing.T) {
	handBudgets := []int{0, 2048, 8192, 32768, 131072}
	for _, family := range []string{"vgg16", "lstm"} {
		segs := familySegs(t, family)
		for _, pr := range []netsim.Pricer{netsim.IB100(), netsim.TwoTierTCP10G(4)} {
			sched, err := Build(segs, Options{Workers: 8, Pricer: pr})
			if err != nil {
				t.Fatal(err)
			}
			budgets := append(append([]int{}, handBudgets...), DefaultBudgets(pr, 8)...)
			for _, spec := range compress.Evaluated() {
				for _, bb := range budgets {
					price, err := PriceUniform(segs, spec, bb, Options{Workers: 8, Pricer: pr})
					if err != nil {
						t.Fatal(err)
					}
					if sched.PipelinedSyncSec > price.Pipelined+1e-15 {
						t.Errorf("%s on %s: auto %.3e slower than uniform %s@%dB %.3e",
							family, pr.Label(), sched.PipelinedSyncSec, spec, bb, price.Pipelined)
					}
				}
			}
		}
	}
}

func TestBuildTopologyChoice(t *testing.T) {
	segs := familySegs(t, "fnn3")
	// Flat fabric: no topology.
	flat, err := Build(segs, Options{Workers: 8, Pricer: netsim.IB100()})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Topology != 0 {
		t.Errorf("flat fabric chose topology %d", flat.Topology)
	}
	// A pair with a huge intra/inter gap and 8 workers on 4-slot nodes must
	// use the hierarchy: the flat alternative routes everything over TCP.
	two, err := Build(segs, Options{Workers: 8, Pricer: netsim.TwoTierTCP10G(4)})
	if err != nil {
		t.Fatal(err)
	}
	if two.Topology < 2 {
		t.Errorf("two-tier pair chose topology %d, want >= 2", two.Topology)
	}
	if two.Topology > 4 {
		t.Errorf("topology %d exceeds the pair's 4-slot nodes", two.Topology)
	}
	// Pinned width is respected.
	pinned, err := Build(segs, Options{Workers: 8, Pricer: netsim.TwoTierTCP10G(4), RanksPerNode: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Topology != 2 {
		t.Errorf("pinned width ignored: topology %d", pinned.Topology)
	}
}

func TestBuildPinnedBudgetAndCandidates(t *testing.T) {
	segs := familySegs(t, "fnn3")
	sched, err := Build(segs, Options{
		Workers: 4, Pricer: netsim.TCP10G(),
		Candidates:    []string{"a2sgd"},
		BucketBudgets: []int{8192},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sched.SpecStrings() {
		if s != "a2sgd" {
			t.Errorf("pinned candidate ignored: %v", sched.SpecStrings())
		}
	}
	// fnn3's 9178 params at 8 KiB = 2048-elem buckets: more than one bucket
	// (tail refinement may split further, never merge).
	if sched.NumBuckets() < 4 {
		t.Errorf("8KiB budget produced %d buckets", sched.NumBuckets())
	}
	if sched.Policy != "auto(a2sgd)" {
		t.Errorf("policy %q", sched.Policy)
	}
}

func TestBuildRejectsBadOptions(t *testing.T) {
	segs := familySegs(t, "fnn3")
	if _, err := Build(segs, Options{Pricer: netsim.IB100()}); err == nil {
		t.Error("expected Workers error")
	}
	if _, err := Build(segs, Options{Workers: 4}); err == nil {
		t.Error("expected Pricer error")
	}
	if _, err := Build(segs, Options{Workers: 4, Pricer: netsim.IB100(), Candidates: []string{"nope"}}); err == nil {
		t.Error("expected unknown-candidate error")
	}
	if _, err := Build(nil, Options{Workers: 4, Pricer: netsim.IB100()}); err == nil {
		t.Error("expected empty-model error")
	}
}

func TestLowerMatchesLegacyPlanning(t *testing.T) {
	segs := familySegs(t, "fnn3")
	pol, err := compress.ParsePolicy("mixed(big=a2sgd, small=dense, threshold=4KiB)")
	if err != nil {
		t.Fatal(err)
	}
	sched := Lower(segs, pol, 8192, 2, true, 4)
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	want := nn.PlanBuckets(segs, 8192)
	if !reflect.DeepEqual(sched.Bounds, want.Bounds()) {
		t.Errorf("lowered bounds %v, want %v", sched.Bounds, want.Bounds())
	}
	if sched.Topology != 2 || !sched.Overlap || sched.Workers != 4 {
		t.Errorf("lowered metadata %+v", sched)
	}
	if sched.Policy != pol.Name() {
		t.Errorf("lowered policy %q", sched.Policy)
	}
	// Per-bucket specs match the policy's own choices.
	for b, bk := range want.Buckets {
		wantSpec := "dense"
		if 4*bk.Len >= 4096 {
			wantSpec = "a2sgd"
		}
		if got := sched.Specs[b].String(); got != wantSpec {
			t.Errorf("bucket %d (%dB): spec %s, want %s", b, 4*bk.Len, got, wantSpec)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	good := &Schedule{Bounds: []int{0, 4, 8}, Specs: []*compress.Spec{{Name: "dense"}, {Name: "dense"}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []*Schedule{
		nil,
		{Bounds: []int{0}},
		{Bounds: []int{1, 4}, Specs: []*compress.Spec{{Name: "dense"}}},
		{Bounds: []int{0, 4, 4}, Specs: []*compress.Spec{{Name: "dense"}, {Name: "dense"}}},
		{Bounds: []int{0, 4}, Specs: nil},
		{Bounds: []int{0, 4}, Specs: []*compress.Spec{{Name: "nope"}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("schedule %+v validated", bad)
		}
	}
}

func TestCompositionSummarizes(t *testing.T) {
	s := &Schedule{
		Bounds: []int{0, 1, 2, 3},
		Specs:  []*compress.Spec{{Name: "a2sgd"}, {Name: "a2sgd"}, {Name: "dense"}},
	}
	if got := s.Composition(); got != "a2sgd×2 | dense×1" {
		t.Errorf("composition %q", got)
	}
}
