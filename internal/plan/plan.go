package plan

import (
	"fmt"
	"strings"

	"a2sgd/internal/compress"
	"a2sgd/internal/netsim"
	"a2sgd/internal/nn"
)

// Schedule is a complete, priced synchronization plan for one training
// configuration: where the gradient is cut into buckets, which algorithm
// spec synchronizes each bucket, and which topology the collectives run on.
// cluster.Config and a2sgd.TrainConfig accept one in place of the hand-tuned
// BucketBytes/Policy/Topology knobs.
type Schedule struct {
	// Workers is the data-parallel width the schedule was planned for.
	Workers int
	// Bounds are the cumulative bucket offsets over the flattened parameter
	// vector (len = buckets+1, Bounds[0] = 0), aligned to segment
	// boundaries — nn.PlanFromBounds reconstructs the full plan.
	Bounds []int
	// Specs holds each bucket's algorithm spec, parallel to the buckets.
	Specs []*compress.Spec
	// Topology is the two-level hierarchy width in ranks per node the
	// collectives should run with (0 or 1 = flat), chosen as the cheapest
	// width when the pricer is a fabric pair.
	Topology int
	// Overlap pipelines each bucket's collective behind the next bucket's
	// gather+encode (the price below assumes whatever this says).
	Overlap bool
	// Policy is the canonical policy string that produced Specs — the auto
	// policy's spec for planned schedules, the source policy for lowered
	// legacy configurations.
	Policy string
	// PricedOn labels the network model the schedule was priced on (empty
	// for lowered legacy schedules, which are never priced).
	PricedOn string
	// PipelinedSyncSec and SerialSyncSec are the modelled per-step
	// encode+synchronization makespans of this schedule on that model.
	PipelinedSyncSec, SerialSyncSec float64
}

// NumBuckets returns the bucket count.
func (s *Schedule) NumBuckets() int { return len(s.Bounds) - 1 }

// SpecStrings renders the per-bucket specs canonically.
func (s *Schedule) SpecStrings() []string {
	out := make([]string, len(s.Specs))
	for i, sp := range s.Specs {
		out[i] = sp.String()
	}
	return out
}

// Composition summarizes the spec assignment: distinct spec strings in
// first-use order, each with its bucket count ("a2sgd×6 | dense×2").
func (s *Schedule) Composition() string {
	counts := map[string]int{}
	var order []string
	for _, sp := range s.Specs {
		name := sp.String()
		if counts[name] == 0 {
			order = append(order, name)
		}
		counts[name]++
	}
	parts := make([]string, len(order))
	for i, name := range order {
		parts[i] = fmt.Sprintf("%s×%d", name, counts[name])
	}
	return strings.Join(parts, " | ")
}

// Validate checks the schedule's internal consistency.
func (s *Schedule) Validate() error {
	if s == nil {
		return fmt.Errorf("plan: nil schedule")
	}
	if len(s.Bounds) < 2 || s.Bounds[0] != 0 {
		return fmt.Errorf("plan: schedule bounds %v must start at 0 and delimit at least one bucket", s.Bounds)
	}
	for i := 1; i < len(s.Bounds); i++ {
		if s.Bounds[i] <= s.Bounds[i-1] {
			return fmt.Errorf("plan: schedule bounds %v must be strictly increasing", s.Bounds)
		}
	}
	if len(s.Specs) != s.NumBuckets() {
		return fmt.Errorf("plan: %d specs for %d buckets", len(s.Specs), s.NumBuckets())
	}
	for _, sp := range s.Specs {
		if err := compress.CheckSpec(sp); err != nil {
			return err
		}
	}
	return nil
}

// Options configures Build.
type Options struct {
	// Workers is the data-parallel width (required, >= 1).
	Workers int
	// Pricer is the network model the plan is priced on (required). A
	// netsim.TwoTier additionally opens the ranks-per-node search: the
	// planner evaluates every candidate width of the same fabric pair and
	// the flat inter-node fabric, and Schedule.Topology records the winner.
	Pricer netsim.Pricer
	// Candidates are the algorithm specs the per-bucket choice draws from,
	// in priority order (ties keep the earlier). Empty defaults to the
	// paper's evaluated five.
	Candidates []string
	// BucketBudgets are the uniform bucket byte budgets to evaluate (0 =
	// whole model). Empty defaults to DefaultBudgets(Pricer, Workers).
	BucketBudgets []int
	// RanksPerNode are the candidate hierarchy widths when Pricer is a
	// TwoTier (1 = flat). Empty defaults to 1 and every power of two up to
	// Workers. Ignored for flat fabrics.
	RanksPerNode []int
	// Serial plans for the non-overlapped loop: schedules are ranked by
	// their serial price and Schedule.Overlap is false. The default plans
	// for the overlap pipeline.
	Serial bool
}

// DefaultBudgets returns the uniform bucket-budget ladder Build evaluates: a
// fixed power-of-two ladder from 1 KiB to 256 KiB plus the whole-model
// single bucket, extended with the pricer's amortized bucket sizes (the
// payload at which the priced tier's latency share drops to 50%, 10% and
// 2%). The ladder is deterministic: fixed entries first, amortized sizes
// appended in decreasing-latency-share order, duplicates dropped.
func DefaultBudgets(pr netsim.Pricer, workers int) []int {
	budgets := []int{0, 1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}
	sizer, ok := pr.(netsim.BucketSizer)
	if !ok {
		return budgets
	}
	seen := map[int]bool{}
	for _, b := range budgets {
		seen[b] = true
	}
	for _, frac := range []float64{0.5, 0.1, 0.02} {
		b := sizer.AmortizedBucketBytes(workers, frac)
		if b > 16<<20 { // beyond any reduced-scale model: the whole-model entry covers it
			continue
		}
		if bi := int(b); !seen[bi] {
			seen[bi] = true
			budgets = append(budgets, bi)
		}
	}
	return budgets
}

// candidate is one parsed spec with its priced-cost accessors.
type candidate struct {
	spec *compress.Spec
}

// bucketCost is one (bucket, candidate) cell of the pricing table.
type bucketCost struct {
	encSec float64
	bytes  int64
	kind   netsim.ExchangeKind
}

// costTable prices every candidate on every bucket of a plan. Cost models
// are affine in the bucket length, so cells for repeated lengths are cached.
func costTable(cands []candidate, plan nn.BucketPlan) ([][]bucketCost, error) {
	type key struct {
		cand int
		n    int
	}
	cache := map[key]bucketCost{}
	table := make([][]bucketCost, len(plan.Buckets))
	for b, bk := range plan.Buckets {
		row := make([]bucketCost, len(cands))
		for c, cand := range cands {
			k := key{c, bk.Len}
			cell, ok := cache[k]
			if !ok {
				cm, err := compress.SpecCost(cand.spec, compress.DefaultOptions(bk.Len))
				if err != nil {
					return nil, err
				}
				cell = bucketCost{encSec: cm.EncSec(bk.Len), bytes: cm.PayloadBytes(bk.Len), kind: cm.Kind}
				cache[k] = cell
			}
			row[c] = cell
		}
		table[b] = row
	}
	return table, nil
}

// assignment is one complete per-bucket spec choice with its price inputs.
type assignment struct {
	choice []int // candidate index per bucket
	kinds  []netsim.ExchangeKind
	encSec []float64
	bytes  []int64
}

// newAssignment materializes the price-law inputs for a choice vector.
func newAssignment(choice []int, table [][]bucketCost) assignment {
	a := assignment{
		choice: choice,
		kinds:  make([]netsim.ExchangeKind, len(choice)),
		encSec: make([]float64, len(choice)),
		bytes:  make([]int64, len(choice)),
	}
	for b, c := range choice {
		cell := table[b][c]
		a.kinds[b], a.encSec[b], a.bytes[b] = cell.kind, cell.encSec, cell.bytes
	}
	return a
}

// assignments enumerates the spec assignments Build prices for one plan:
// every uniform assignment (all buckets on candidate c) plus the per-bucket
// greedy one (each bucket takes the candidate minimizing its own standalone
// encode + collective cost). Including the uniforms guarantees the planned
// schedule is never modelled slower than the best uniform configuration.
func assignments(table [][]bucketCost, pr netsim.Pricer, workers int) []assignment {
	nb, nc := len(table), len(table[0])
	out := make([]assignment, 0, nc+1)
	for c := 0; c < nc; c++ {
		choice := make([]int, nb)
		for b := range choice {
			choice[b] = c
		}
		out = append(out, newAssignment(choice, table))
	}
	greedy := make([]int, nb)
	for b := range table {
		best, bestCost := 0, 0.0
		for c, cell := range table[b] {
			cost := cell.encSec + pr.SyncTime(cell.kind, cell.bytes, workers)
			if c == 0 || cost < bestCost {
				best, bestCost = c, cost
			}
		}
		greedy[b] = best
	}
	out = append(out, newAssignment(greedy, table))
	return out
}

// scored is one fully-priced (topology, partition, assignment) candidate.
type scored struct {
	plan     nn.BucketPlan
	assign   assignment
	topology int
	pricer   netsim.Pricer
	price    netsim.SchedulePrice
}

// rank returns the price the planner minimizes.
func (s scored) rank(serial bool) float64 {
	if serial {
		return s.price.Serial
	}
	return s.price.Pipelined
}

// Build plans the cheapest modelled schedule for a model's segments: it
// sweeps candidate topologies (for two-tier pricers), uniform bucket-budget
// ladders sized against the priced tier, a tail-refinement pass that
// re-splits the final (pipeline-exposed) bucket, and the per-bucket spec
// assignments of the auto policy, pricing every combination with
// netsim.PriceSchedule and keeping the first-seen minimum. The search is a
// pure function of its inputs — planning twice yields identical schedules.
func Build(segs []nn.Segment, o Options) (*Schedule, error) {
	if o.Workers < 1 {
		return nil, fmt.Errorf("plan: Workers must be >= 1 (got %d)", o.Workers)
	}
	if o.Pricer == nil {
		return nil, fmt.Errorf("plan: a netsim.Pricer is required")
	}
	candSrcs := o.Candidates
	if len(candSrcs) == 0 {
		candSrcs = compress.Evaluated()
	}
	cands := make([]candidate, 0, len(candSrcs))
	for _, src := range candSrcs {
		sp, err := compress.Parse(src)
		if err != nil {
			return nil, err
		}
		if err := compress.CheckSpec(sp); err != nil {
			return nil, err
		}
		if _, err := compress.Build(sp, compress.DefaultOptions(4)); err != nil {
			return nil, err
		}
		cands = append(cands, candidate{spec: sp})
	}

	var best *scored
	consider := func(s scored) {
		if best == nil || s.rank(o.Serial) < best.rank(o.Serial) {
			best = &s
		}
	}
	evaluate := func(p nn.BucketPlan, pr netsim.Pricer, topology int) error {
		if len(p.Buckets) == 0 {
			return fmt.Errorf("plan: model has no parameters")
		}
		table, err := costTable(cands, p)
		if err != nil {
			return err
		}
		for _, a := range assignments(table, pr, o.Workers) {
			price := netsim.PriceSchedule(pr, a.kinds, a.encSec, a.bytes, o.Workers)
			consider(scored{plan: p, assign: a, topology: topology, pricer: pr, price: price})
		}
		return nil
	}

	for _, tp := range topologyCandidates(o) {
		budgets := o.BucketBudgets
		if len(budgets) == 0 {
			budgets = DefaultBudgets(tp.pricer, o.Workers)
		}
		for _, bb := range budgets {
			if err := evaluate(nn.PlanBuckets(segs, bb), tp.pricer, tp.topology); err != nil {
				return nil, err
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("plan: nothing to evaluate")
	}

	// Tail refinement: the last bucket's collective is the one the pipeline
	// can never hide, so re-splitting it into smaller buckets (which also
	// lets the auto policy finish on a dense, low-latency tail) can undercut
	// every uniform budget. Evaluate halving ladders of the winner's final
	// bucket and keep any strict improvement.
	base := *best
	lastLen := base.plan.Buckets[len(base.plan.Buckets)-1].Len
	for _, div := range []int{2, 4, 8} {
		tailBudget := 4 * lastLen / div
		if tailBudget < 256 {
			break
		}
		refined, ok := splitTail(segs, base.plan, tailBudget)
		if !ok {
			continue
		}
		if err := evaluate(refined, base.pricer, base.topology); err != nil {
			return nil, err
		}
	}

	specs := make([]*compress.Spec, len(best.assign.choice))
	for b, c := range best.assign.choice {
		specs[b] = cands[c].spec
	}
	names := make([]string, len(cands))
	for i, c := range cands {
		names[i] = c.spec.String()
	}
	return &Schedule{
		Workers:          o.Workers,
		Bounds:           best.plan.Bounds(),
		Specs:            specs,
		Topology:         best.topology,
		Overlap:          !o.Serial,
		Policy:           "auto(" + strings.Join(names, ", ") + ")",
		PricedOn:         best.pricer.Label(),
		PipelinedSyncSec: best.price.Pipelined,
		SerialSyncSec:    best.price.Serial,
	}, nil
}

// topologyCandidate pairs a pricer with the Topology value it implies.
type topologyCandidate struct {
	pricer   netsim.Pricer
	topology int
}

// topologyCandidates enumerates the pricer/topology pairs to sweep: just the
// given pricer for flat fabrics; for a TwoTier fabric pair, the flat
// inter-node fabric (width 1) and the pair at every candidate width. The
// default width ladder is capped by the pair's RanksPerNode — that is the
// hardware node width; packing more ranks onto a node than it has slots is
// not a plannable choice (pass RanksPerNode explicitly to override).
func topologyCandidates(o Options) []topologyCandidate {
	tt, ok := o.Pricer.(netsim.TwoTier)
	if !ok {
		return []topologyCandidate{{pricer: o.Pricer}}
	}
	widths := o.RanksPerNode
	if len(widths) == 0 {
		max := tt.RanksPerNode
		if max < 1 || max > o.Workers {
			max = o.Workers
		}
		for w := 1; w <= max; w *= 2 {
			widths = append(widths, w)
		}
	}
	var out []topologyCandidate
	seen := map[int]bool{}
	for _, w := range widths {
		if w < 1 {
			w = 1
		}
		if w > o.Workers {
			w = o.Workers
		}
		if seen[w] {
			continue
		}
		seen[w] = true
		if w == 1 {
			out = append(out, topologyCandidate{pricer: tt.Inter})
			continue
		}
		two := tt
		two.RanksPerNode = w
		out = append(out, topologyCandidate{pricer: two, topology: w})
	}
	return out
}

// splitTail re-plans the final bucket of a plan against a smaller byte
// budget, splicing the refined tail onto the unchanged prefix. Returns
// ok=false when the tail cannot be split further (single segment, or the
// budget does not change the partition).
func splitTail(segs []nn.Segment, p nn.BucketPlan, tailBudget int) (nn.BucketPlan, bool) {
	last := p.Buckets[len(p.Buckets)-1]
	if len(last.Segments) < 2 {
		return nn.BucketPlan{}, false
	}
	// Rebase the tail's segments to offset 0 so PlanBuckets accepts them.
	tail := make([]nn.Segment, len(last.Segments))
	for i, s := range last.Segments {
		s.Off -= last.Off
		tail[i] = s
	}
	sub := nn.PlanBuckets(tail, tailBudget)
	if len(sub.Buckets) < 2 {
		return nn.BucketPlan{}, false
	}
	bounds := p.Bounds()
	newBounds := append([]int{}, bounds[:len(bounds)-1]...)
	for _, bk := range sub.Buckets[1:] {
		newBounds = append(newBounds, last.Off+bk.Off)
	}
	newBounds = append(newBounds, p.N)
	refined, err := nn.PlanFromBounds(segs, newBounds)
	if err != nil {
		return nn.BucketPlan{}, false
	}
	return refined, true
}

// Lower converts a hand-tuned configuration into the trivial schedule it
// denotes: PlanBuckets boundaries at the fixed budget, the policy's spec for
// every bucket, the given topology and overlap flags, and no pricing.
// Running the lowered schedule is bitwise-identical to running the legacy
// knobs directly — same bounds, same specs, and (through
// compress.BucketSeed) the same per-bucket compression seeds.
func Lower(segs []nn.Segment, pol compress.Policy, bucketBytes, topology int, overlap bool, workers int) *Schedule {
	p := nn.PlanBuckets(segs, bucketBytes)
	specs := make([]*compress.Spec, len(p.Buckets))
	for b, bk := range p.Buckets {
		layers := make([]string, len(bk.Segments))
		for i, sg := range bk.Segments {
			layers[i] = sg.Name
		}
		specs[b] = pol.SpecFor(compress.BucketInfo{
			Index: b, Params: bk.Len, Bytes: int64(4 * bk.Len), Layers: layers,
		})
	}
	return &Schedule{
		Workers:  workers,
		Bounds:   p.Bounds(),
		Specs:    specs,
		Topology: topology,
		Overlap:  overlap,
		Policy:   pol.Name(),
	}
}

// PriceUniform prices the hand-tuned uniform configuration — one spec, one
// bucket budget — on o.Pricer without planning anything, so sweeps can put
// auto-planned schedules side by side with the grid they beat. Only Workers,
// Pricer and Serial are read from o.
func PriceUniform(segs []nn.Segment, spec string, bucketBytes int, o Options) (netsim.SchedulePrice, error) {
	if o.Workers < 1 || o.Pricer == nil {
		return netsim.SchedulePrice{}, fmt.Errorf("plan: PriceUniform needs Workers and a Pricer")
	}
	sp, err := compress.Parse(spec)
	if err != nil {
		return netsim.SchedulePrice{}, err
	}
	p := nn.PlanBuckets(segs, bucketBytes)
	table, err := costTable([]candidate{{spec: sp}}, p)
	if err != nil {
		return netsim.SchedulePrice{}, err
	}
	a := newAssignment(make([]int, len(p.Buckets)), table)
	return netsim.PriceSchedule(o.Pricer, a.kinds, a.encSec, a.bytes, o.Workers), nil
}

// Reprice prices an existing schedule on a (possibly different) pricer
// without re-planning, so a stale schedule can be compared against what
// Build would choose on a measured fabric: Build minimizes over its search
// space, so on the same pricer a fresh schedule never prices worse than a
// stale one — Reprice quantifies by how much.
func Reprice(s *Schedule, segs []nn.Segment, pr netsim.Pricer) (netsim.SchedulePrice, error) {
	if pr == nil {
		return netsim.SchedulePrice{}, fmt.Errorf("plan: Reprice needs a pricer")
	}
	if err := s.Validate(); err != nil {
		return netsim.SchedulePrice{}, err
	}
	if s.Workers < 1 {
		return netsim.SchedulePrice{}, fmt.Errorf("plan: schedule has no worker count to price at")
	}
	p, err := nn.PlanFromBounds(segs, s.Bounds)
	if err != nil {
		return netsim.SchedulePrice{}, err
	}
	nb := s.NumBuckets()
	kinds := make([]netsim.ExchangeKind, nb)
	encSec := make([]float64, nb)
	bytes := make([]int64, nb)
	for b, bk := range p.Buckets {
		cm, err := compress.SpecCost(s.Specs[b], compress.DefaultOptions(bk.Len))
		if err != nil {
			return netsim.SchedulePrice{}, err
		}
		kinds[b], encSec[b], bytes[b] = cm.Kind, cm.EncSec(bk.Len), cm.PayloadBytes(bk.Len)
	}
	return netsim.PriceSchedule(pr, kinds, encSec, bytes, s.Workers), nil
}
