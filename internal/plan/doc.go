// Package plan closes the loop between the cost model and the training
// runtime: it turns netsim's α–β price laws from a reporting tool into the
// thing that chooses the configuration. Build takes a model's parameter
// segments, a netsim.Pricer, a worker count and the compress registry's
// per-spec cost models, and emits a complete Schedule — bucket boundaries
// sized so the priced tier's per-collective latency is amortized, a
// per-bucket algorithm spec chosen by minimizing the modelled pipelined
// makespan (the auto policy), and, for a two-tier fabric pair, the cheapest
// ranks-per-node width.
//
// The search is deterministic and exhaustive over a bounded candidate set:
// every candidate topology × bucket-budget ladder × spec assignment
// (each uniform assignment plus the per-bucket greedy one) is priced with
// netsim.PriceSchedule, and the cheapest pipelined makespan wins, ties
// keeping the earliest candidate. Because the uniform assignments are in
// the candidate set, an auto-planned schedule is never modelled slower than
// the best hand-tuned uniform configuration over the same grid.
//
// Lower converts a legacy hand-tuned configuration (BucketBytes + Policy +
// Topology) into the trivial Schedule it denotes, without pricing anything;
// running the lowered schedule is bitwise-identical to running the flat
// configuration (same bounds, same specs, same per-bucket seeds).
//
// Dataflow:
//
//	nn.ParamSegments ──┐
//	netsim.Pricer ─────┼─▶ plan.Build ─▶ plan.Schedule ─▶ cluster.Config.Schedule
//	compress.SpecCost ─┘                      │
//	                                          └─▶ bounds · per-bucket specs ·
//	                                              topology · modelled price
package plan
