package nn

import (
	"fmt"
	"math"

	"a2sgd/internal/tensor"
)

// Shape describes a (channels, height, width) activation volume flattened
// row-major into each matrix row.
type Shape struct {
	C, H, W int
}

// Size returns C·H·W.
func (s Shape) Size() int { return s.C * s.H * s.W }

// Conv2D is a 2-D convolution implemented with im2col + matrix multiply —
// the textbook GPU-style lowering. Stride and zero-padding are configurable;
// the VGG/ResNet builders use 3×3, stride 1, pad 1.
type Conv2D struct {
	In          Shape
	OutC        int
	KH, KW      int
	Stride, Pad int

	W, B   []float32 // W is (OutC, In.C·KH·KW) row-major
	GW, GB []float32

	x    *tensor.Mat // cached input
	cols []*tensor.Mat
}

// NewConv2D builds a convolution layer with He initialization.
func NewConv2D(rng *tensor.RNG, in Shape, outC, k, stride, pad int) *Conv2D {
	c := &Conv2D{In: in, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad}
	fanIn := in.C * k * k
	c.W = make([]float32, outC*fanIn)
	c.B = make([]float32, outC)
	c.GW = make([]float32, len(c.W))
	c.GB = make([]float32, outC)
	InitHe(rng, c.W, fanIn)
	return c
}

// OutShape returns the output volume shape.
func (c *Conv2D) OutShape() Shape {
	oh := (c.In.H+2*c.Pad-c.KH)/c.Stride + 1
	ow := (c.In.W+2*c.Pad-c.KW)/c.Stride + 1
	return Shape{C: c.OutC, H: oh, W: ow}
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%dx%dx%d→%d,k%d,s%d)", c.In.C, c.In.H, c.In.W, c.OutC, c.KH, c.Stride)
}

// Params implements Layer.
func (c *Conv2D) Params() []Param {
	return []Param{{Name: c.Name() + ".W", W: c.W, G: c.GW}, {Name: c.Name() + ".b", W: c.B, G: c.GB}}
}

// im2col lowers one sample (flattened C×H×W) into a (C·KH·KW, oh·ow) matrix.
func (c *Conv2D) im2col(sample []float32) *tensor.Mat {
	out := c.OutShape()
	rows := c.In.C * c.KH * c.KW
	cols := tensor.NewMat(rows, out.H*out.W)
	for ch := 0; ch < c.In.C; ch++ {
		chBase := ch * c.In.H * c.In.W
		for ky := 0; ky < c.KH; ky++ {
			for kx := 0; kx < c.KW; kx++ {
				row := (ch*c.KH+ky)*c.KW + kx
				dst := cols.Row(row)
				i := 0
				for oy := 0; oy < out.H; oy++ {
					iy := oy*c.Stride + ky - c.Pad
					for ox := 0; ox < out.W; ox++ {
						ix := ox*c.Stride + kx - c.Pad
						if iy >= 0 && iy < c.In.H && ix >= 0 && ix < c.In.W {
							dst[i] = sample[chBase+iy*c.In.W+ix]
						}
						i++
					}
				}
			}
		}
	}
	return cols
}

// col2im scatters a (C·KH·KW, oh·ow) gradient back onto one input sample.
func (c *Conv2D) col2im(cols *tensor.Mat, sample []float32) {
	out := c.OutShape()
	for ch := 0; ch < c.In.C; ch++ {
		chBase := ch * c.In.H * c.In.W
		for ky := 0; ky < c.KH; ky++ {
			for kx := 0; kx < c.KW; kx++ {
				row := (ch*c.KH+ky)*c.KW + kx
				src := cols.Row(row)
				i := 0
				for oy := 0; oy < out.H; oy++ {
					iy := oy*c.Stride + ky - c.Pad
					for ox := 0; ox < out.W; ox++ {
						ix := ox*c.Stride + kx - c.Pad
						if iy >= 0 && iy < c.In.H && ix >= 0 && ix < c.In.W {
							sample[chBase+iy*c.In.W+ix] += src[i]
						}
						i++
					}
				}
			}
		}
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.Cols != c.In.Size() {
		panic(fmt.Sprintf("nn: %s got %d features, want %d", c.Name(), x.Cols, c.In.Size()))
	}
	out := c.OutShape()
	res := tensor.NewMat(x.Rows, out.Size())
	wm := tensor.MatFrom(c.OutC, c.In.C*c.KH*c.KW, c.W)
	if train {
		c.x = x
		c.cols = make([]*tensor.Mat, x.Rows)
	}
	tensor.ParallelFor(x.Rows, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			cols := c.im2col(x.Row(s))
			if train {
				c.cols[s] = cols
			}
			o := tensor.MatFrom(c.OutC, out.H*out.W, res.Row(s))
			tensor.MatMul(o, wm, cols)
			for oc := 0; oc < c.OutC; oc++ {
				b := c.B[oc]
				orow := o.Row(oc)
				for i := range orow {
					orow[i] += b
				}
			}
		}
	})
	return res
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Mat) *tensor.Mat {
	out := c.OutShape()
	dx := tensor.NewMat(c.x.Rows, c.In.Size())
	wm := tensor.MatFrom(c.OutC, c.In.C*c.KH*c.KW, c.W)
	gw := tensor.MatFrom(c.OutC, c.In.C*c.KH*c.KW, c.GW)
	scratch := tensor.NewMat(c.OutC, c.In.C*c.KH*c.KW)
	for s := 0; s < c.x.Rows; s++ {
		do := tensor.MatFrom(c.OutC, out.H*out.W, dout.Row(s))
		// dW += do × colsᵀ
		tensor.MatMulABT(scratch, do, c.cols[s])
		tensor.Add(gw.Data, scratch.Data)
		// db += row sums of do
		for oc := 0; oc < c.OutC; oc++ {
			c.GB[oc] += float32(tensor.Sum(do.Row(oc)))
		}
		// dcols = Wᵀ × do, then scatter.
		dcols := tensor.NewMat(c.In.C*c.KH*c.KW, out.H*out.W)
		tensor.MatMulATB(dcols, wm, do)
		c.col2im(dcols, dx.Row(s))
	}
	c.cols = nil // release the cached lowering
	return dx
}

// MaxPool2D is a k×k max pool with stride k (non-overlapping).
type MaxPool2D struct {
	In   Shape
	K    int
	argm []int32
}

// NewMaxPool2D builds the pooling layer; In.H and In.W must be divisible by k.
func NewMaxPool2D(in Shape, k int) *MaxPool2D {
	if in.H%k != 0 || in.W%k != 0 {
		panic(fmt.Sprintf("nn: maxpool %d does not divide %dx%d", k, in.H, in.W))
	}
	return &MaxPool2D{In: in, K: k}
}

// OutShape returns the pooled volume shape.
func (m *MaxPool2D) OutShape() Shape {
	return Shape{C: m.In.C, H: m.In.H / m.K, W: m.In.W / m.K}
}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return fmt.Sprintf("MaxPool2D(k%d)", m.K) }

// Params implements Layer.
func (m *MaxPool2D) Params() []Param { return nil }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	out := m.OutShape()
	res := tensor.NewMat(x.Rows, out.Size())
	if train {
		m.argm = make([]int32, x.Rows*out.Size())
	}
	for s := 0; s < x.Rows; s++ {
		in := x.Row(s)
		dst := res.Row(s)
		for ch := 0; ch < m.In.C; ch++ {
			chIn := ch * m.In.H * m.In.W
			chOut := ch * out.H * out.W
			for oy := 0; oy < out.H; oy++ {
				for ox := 0; ox < out.W; ox++ {
					best := float32(math.Inf(-1))
					bi := 0
					for ky := 0; ky < m.K; ky++ {
						for kx := 0; kx < m.K; kx++ {
							idx := chIn + (oy*m.K+ky)*m.In.W + ox*m.K + kx
							if in[idx] > best {
								best = in[idx]
								bi = idx
							}
						}
					}
					o := chOut + oy*out.W + ox
					dst[o] = best
					if train {
						m.argm[s*out.Size()+o] = int32(bi)
					}
				}
			}
		}
	}
	return res
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(dout *tensor.Mat) *tensor.Mat {
	out := m.OutShape()
	dx := tensor.NewMat(dout.Rows, m.In.Size())
	for s := 0; s < dout.Rows; s++ {
		src := dout.Row(s)
		dst := dx.Row(s)
		for o, v := range src {
			dst[m.argm[s*out.Size()+o]] += v
		}
	}
	return dx
}

// GlobalAvgPool averages each channel over its spatial extent, producing C
// features per sample (ResNet's final pooling).
type GlobalAvgPool struct {
	In Shape
}

// NewGlobalAvgPool builds the layer.
func NewGlobalAvgPool(in Shape) *GlobalAvgPool { return &GlobalAvgPool{In: in} }

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return "GlobalAvgPool" }

// Params implements Layer.
func (g *GlobalAvgPool) Params() []Param { return nil }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	hw := g.In.H * g.In.W
	res := tensor.NewMat(x.Rows, g.In.C)
	for s := 0; s < x.Rows; s++ {
		in := x.Row(s)
		for ch := 0; ch < g.In.C; ch++ {
			res.Set(s, ch, float32(tensor.Sum(in[ch*hw:(ch+1)*hw])/float64(hw)))
		}
	}
	return res
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(dout *tensor.Mat) *tensor.Mat {
	hw := g.In.H * g.In.W
	dx := tensor.NewMat(dout.Rows, g.In.Size())
	inv := 1 / float32(hw)
	for s := 0; s < dout.Rows; s++ {
		dst := dx.Row(s)
		for ch := 0; ch < g.In.C; ch++ {
			v := dout.At(s, ch) * inv
			seg := dst[ch*hw : (ch+1)*hw]
			for i := range seg {
				seg[i] = v
			}
		}
	}
	return dx
}

// BatchNorm2D normalizes each channel over (batch, H, W) with learnable
// scale γ and shift β, keeping running statistics for evaluation.
type BatchNorm2D struct {
	In       Shape
	Eps      float32
	Momentum float32

	Gamma, Beta     []float32
	GGamma, GBeta   []float32
	RunMean, RunVar []float32

	// backward caches
	xhat   []float32
	invStd []float32
	rows   int
}

// NewBatchNorm2D builds a batch-norm layer over C channels.
func NewBatchNorm2D(in Shape) *BatchNorm2D {
	b := &BatchNorm2D{
		In: in, Eps: 1e-5, Momentum: 0.9,
		Gamma: make([]float32, in.C), Beta: make([]float32, in.C),
		GGamma: make([]float32, in.C), GBeta: make([]float32, in.C),
		RunMean: make([]float32, in.C), RunVar: make([]float32, in.C),
	}
	for i := range b.Gamma {
		b.Gamma[i] = 1
		b.RunVar[i] = 1
	}
	return b
}

// Name implements Layer.
func (b *BatchNorm2D) Name() string { return fmt.Sprintf("BatchNorm2D(%d)", b.In.C) }

// Params implements Layer.
func (b *BatchNorm2D) Params() []Param {
	return []Param{
		{Name: b.Name() + ".gamma", W: b.Gamma, G: b.GGamma},
		{Name: b.Name() + ".beta", W: b.Beta, G: b.GBeta},
	}
}

// StateLen implements Stateful: the running mean and variance per channel.
func (b *BatchNorm2D) StateLen() int { return 2 * b.In.C }

// GatherState implements Stateful.
func (b *BatchNorm2D) GatherState(dst []float32) {
	copy(dst[:b.In.C], b.RunMean)
	copy(dst[b.In.C:], b.RunVar)
}

// ScatterState implements Stateful.
func (b *BatchNorm2D) ScatterState(src []float32) {
	copy(b.RunMean, src[:b.In.C])
	copy(b.RunVar, src[b.In.C:])
}

// Forward implements Layer.
func (b *BatchNorm2D) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	hw := b.In.H * b.In.W
	res := tensor.NewMat(x.Rows, x.Cols)
	if !train {
		for s := 0; s < x.Rows; s++ {
			in, out := x.Row(s), res.Row(s)
			for ch := 0; ch < b.In.C; ch++ {
				inv := 1 / float32(math.Sqrt(float64(b.RunVar[ch]+b.Eps)))
				g, be, mu := b.Gamma[ch], b.Beta[ch], b.RunMean[ch]
				for i := ch * hw; i < (ch+1)*hw; i++ {
					out[i] = g*(in[i]-mu)*inv + be
				}
			}
		}
		return res
	}
	n := float64(x.Rows * hw)
	b.rows = x.Rows
	if len(b.xhat) != len(x.Data) {
		b.xhat = make([]float32, len(x.Data))
	}
	if len(b.invStd) != b.In.C {
		b.invStd = make([]float32, b.In.C)
	}
	for ch := 0; ch < b.In.C; ch++ {
		var sum, sq float64
		for s := 0; s < x.Rows; s++ {
			in := x.Row(s)
			for i := ch * hw; i < (ch+1)*hw; i++ {
				v := float64(in[i])
				sum += v
				sq += v * v
			}
		}
		mean := sum / n
		variance := sq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		inv := float32(1 / math.Sqrt(variance+float64(b.Eps)))
		b.invStd[ch] = inv
		b.RunMean[ch] = b.Momentum*b.RunMean[ch] + (1-b.Momentum)*float32(mean)
		b.RunVar[ch] = b.Momentum*b.RunVar[ch] + (1-b.Momentum)*float32(variance)
		g, be := b.Gamma[ch], b.Beta[ch]
		for s := 0; s < x.Rows; s++ {
			in, out := x.Row(s), res.Row(s)
			base := s * x.Cols
			for i := ch * hw; i < (ch+1)*hw; i++ {
				xh := (in[i] - float32(mean)) * inv
				b.xhat[base+i] = xh
				out[i] = g*xh + be
			}
		}
	}
	return res
}

// Backward implements Layer (standard batch-norm backward per channel).
func (b *BatchNorm2D) Backward(dout *tensor.Mat) *tensor.Mat {
	hw := b.In.H * b.In.W
	n := float32(b.rows * hw)
	dx := tensor.NewMat(dout.Rows, dout.Cols)
	for ch := 0; ch < b.In.C; ch++ {
		var sumDy, sumDyXhat float64
		for s := 0; s < dout.Rows; s++ {
			do := dout.Row(s)
			base := s * dout.Cols
			for i := ch * hw; i < (ch+1)*hw; i++ {
				dy := float64(do[i])
				sumDy += dy
				sumDyXhat += dy * float64(b.xhat[base+i])
			}
		}
		b.GBeta[ch] += float32(sumDy)
		b.GGamma[ch] += float32(sumDyXhat)
		g := b.Gamma[ch]
		inv := b.invStd[ch]
		for s := 0; s < dout.Rows; s++ {
			do, dxr := dout.Row(s), dx.Row(s)
			base := s * dout.Cols
			for i := ch * hw; i < (ch+1)*hw; i++ {
				xh := b.xhat[base+i]
				dxr[i] = g * inv / n * (n*do[i] - float32(sumDy) - xh*float32(sumDyXhat))
			}
		}
	}
	return dx
}
