// Package nn is a from-scratch neural-network framework with reverse-mode
// backpropagation: fully connected, convolutional, batch-norm, pooling,
// dropout, embedding and LSTM layers plus a softmax cross-entropy loss.
// It plays the role PyTorch plays in the paper — producing real gradients
// from real training so that the distributed synchronization experiments
// operate on genuine gradient distributions (Figure 1), not synthetic noise.
//
// # Data layout
//
// A batch is a tensor.Mat with one sample per row. Image tensors are
// flattened row-major as C×H×W per row; convolutional layers carry the
// (C, H, W) shape metadata themselves.
//
// # Parameter segments and bucket planning
//
// A model's learnable tensors flatten into one contiguous parameter/gradient
// vector. ParamSegments exposes the per-layer extents of that vector, and
// PlanBuckets partitions it — at layer granularity, never splitting a tensor
// — into buckets of a byte budget. The bucket plan is the scheduling unit of
// the distributed runtime's overlapped gradient pipeline (and of its
// two-level hierarchical collectives): see a2sgd/internal/cluster.
//
// Checkpointing (SaveParams/LoadParams) round-trips the flattened parameter
// vector in a self-describing binary format.
package nn
