package nn

import (
	"bytes"
	"testing"

	"a2sgd/internal/tensor"
)

// FuzzCheckpointLoad: LoadParams consumes files from disk, so arbitrary
// bytes must produce an error or a clean load — never a panic or OOM.
func FuzzCheckpointLoad(f *testing.F) {
	net := NewNetwork(NewLinear(tensor.NewRNG(1), 3, 2))
	var buf bytes.Buffer
	if err := SaveParams(&buf, net.Params()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("A2CK"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), buf.Bytes()...)
	if len(corrupt) > 12 {
		corrupt[12] ^= 0xff
	}
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		target := NewNetwork(NewLinear(tensor.NewRNG(1), 3, 2))
		_, _ = LoadParams(bytes.NewReader(data), target.Params())
	})
}
