package nn

import (
	"fmt"
	"math"

	"a2sgd/internal/tensor"
)

// Linear is a fully connected layer: out = x·Wᵀ + b with W of shape
// (outF, inF) — the building block of FNN-3 and every classifier head.
type Linear struct {
	InF, OutF int
	W, B      []float32
	GW, GB    []float32
	x         *tensor.Mat // cached input for backward
}

// NewLinear builds a Linear layer with He initialization.
func NewLinear(rng *tensor.RNG, inF, outF int) *Linear {
	l := &Linear{
		InF: inF, OutF: outF,
		W: make([]float32, inF*outF), B: make([]float32, outF),
		GW: make([]float32, inF*outF), GB: make([]float32, outF),
	}
	InitHe(rng, l.W, inF)
	return l
}

// Name implements Layer.
func (l *Linear) Name() string { return fmt.Sprintf("Linear(%d→%d)", l.InF, l.OutF) }

// Params implements Layer.
func (l *Linear) Params() []Param {
	return []Param{{Name: l.Name() + ".W", W: l.W, G: l.GW}, {Name: l.Name() + ".b", W: l.B, G: l.GB}}
}

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if x.Cols != l.InF {
		panic(fmt.Sprintf("nn: %s got %d features", l.Name(), x.Cols))
	}
	if train {
		l.x = x
	}
	out := tensor.NewMat(x.Rows, l.OutF)
	wm := tensor.MatFrom(l.OutF, l.InF, l.W)
	tensor.MatMulABT(out, x, wm)
	tensor.AddRowVec(out, l.B)
	return out
}

// Backward implements Layer: dW += doutᵀ·x, db += Σ dout, dx = dout·W.
func (l *Linear) Backward(dout *tensor.Mat) *tensor.Mat {
	gw := tensor.MatFrom(l.OutF, l.InF, l.GW)
	tensor.MatMulATB(gw, dout, l.x)
	tensor.ColSums(l.GB, dout)
	dx := tensor.NewMat(dout.Rows, l.InF)
	wm := tensor.MatFrom(l.OutF, l.InF, l.W)
	tensor.MatMul(dx, dout, wm)
	return dx
}

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// NewReLU builds a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "ReLU" }

// Params implements Layer.
func (r *ReLU) Params() []Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	out := tensor.NewMat(x.Rows, x.Cols)
	if train {
		if len(r.mask) != len(x.Data) {
			r.mask = make([]bool, len(x.Data))
		}
		for i, v := range x.Data {
			if v > 0 {
				out.Data[i] = v
				r.mask[i] = true
			} else {
				r.mask[i] = false
			}
		}
		return out
	}
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Mat) *tensor.Mat {
	dx := tensor.NewMat(dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		if r.mask[i] {
			dx.Data[i] = v
		}
	}
	return dx
}

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	out *tensor.Mat
}

// NewTanh builds a Tanh layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "Tanh" }

// Params implements Layer.
func (t *Tanh) Params() []Param { return nil }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	out := tensor.NewMat(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = float32(math.Tanh(float64(v)))
	}
	if train {
		t.out = out
	}
	return out
}

// Backward implements Layer: dx = dout · (1 − tanh²).
func (t *Tanh) Backward(dout *tensor.Mat) *tensor.Mat {
	dx := tensor.NewMat(dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		y := t.out.Data[i]
		dx.Data[i] = v * (1 - y*y)
	}
	return dx
}

// Dropout zeroes activations with probability P during training and scales
// the survivors by 1/(1−P) (inverted dropout).
type Dropout struct {
	P    float32
	rng  *tensor.RNG
	mask []float32
}

// NewDropout builds a dropout layer; p must be in [0, 1).
func NewDropout(rng *tensor.RNG, p float32) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout p must be in [0,1)")
	}
	return &Dropout{P: p, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("Dropout(%.2f)", d.P) }

// Params implements Layer.
func (d *Dropout) Params() []Param { return nil }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	if !train || d.P == 0 {
		return x
	}
	out := tensor.NewMat(x.Rows, x.Cols)
	if len(d.mask) != len(x.Data) {
		d.mask = make([]float32, len(x.Data))
	}
	scale := 1 / (1 - d.P)
	for i, v := range x.Data {
		if d.rng.Float32() >= d.P {
			d.mask[i] = scale
			out.Data[i] = v * scale
		} else {
			d.mask[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(dout *tensor.Mat) *tensor.Mat {
	if d.P == 0 {
		return dout
	}
	dx := tensor.NewMat(dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		dx.Data[i] = v * d.mask[i]
	}
	return dx
}

// Residual wraps an inner stack and adds its (possibly transformed) input
// to its output — the shortcut connection of ResNet. With a nil projection
// the shortcut is the identity and input/output shapes must match; with a
// projection stack (e.g. a 1×1 strided convolution plus batch norm, as in
// ResNet's stage transitions) the projection's output shape must match the
// inner stack's.
type Residual struct {
	Inner []Layer
	Proj  []Layer // nil = identity shortcut
	label string
}

// NewResidual builds an identity-shortcut residual block.
func NewResidual(label string, inner ...Layer) *Residual {
	return &Residual{Inner: inner, label: label}
}

// NewProjResidual builds a residual block whose shortcut applies proj —
// the downsampling block at ResNet stage boundaries.
func NewProjResidual(label string, proj []Layer, inner ...Layer) *Residual {
	return &Residual{Inner: inner, Proj: proj, label: label}
}

// Name implements Layer.
func (r *Residual) Name() string { return "Residual(" + r.label + ")" }

// Params implements Layer.
func (r *Residual) Params() []Param {
	var ps []Param
	for _, l := range r.Inner {
		ps = append(ps, l.Params()...)
	}
	for _, l := range r.Proj {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// StateLen implements Stateful: the nested batch-norm layers' state, inner
// stack first, then the projection (matching Params order).
func (r *Residual) StateLen() int {
	total := 0
	for _, l := range append(append([]Layer(nil), r.Inner...), r.Proj...) {
		if s, ok := l.(Stateful); ok {
			total += s.StateLen()
		}
	}
	return total
}

// GatherState implements Stateful.
func (r *Residual) GatherState(dst []float32) {
	off := 0
	for _, l := range append(append([]Layer(nil), r.Inner...), r.Proj...) {
		if s, ok := l.(Stateful); ok {
			s.GatherState(dst[off : off+s.StateLen()])
			off += s.StateLen()
		}
	}
}

// ScatterState implements Stateful.
func (r *Residual) ScatterState(src []float32) {
	off := 0
	for _, l := range append(append([]Layer(nil), r.Inner...), r.Proj...) {
		if s, ok := l.(Stateful); ok {
			s.ScatterState(src[off : off+s.StateLen()])
			off += s.StateLen()
		}
	}
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	y := x
	for _, l := range r.Inner {
		y = l.Forward(y, train)
	}
	s := x
	for _, l := range r.Proj {
		s = l.Forward(s, train)
	}
	if y.Rows != s.Rows || y.Cols != s.Cols {
		panic(fmt.Sprintf("nn: %s shape mismatch %dx%d vs %dx%d",
			r.Name(), y.Rows, y.Cols, s.Rows, s.Cols))
	}
	out := tensor.NewMat(y.Rows, y.Cols)
	for i := range out.Data {
		out.Data[i] = s.Data[i] + y.Data[i]
	}
	return out
}

// Backward implements Layer: gradient flows through both paths and sums.
func (r *Residual) Backward(dout *tensor.Mat) *tensor.Mat {
	d := dout
	for i := len(r.Inner) - 1; i >= 0; i-- {
		d = r.Inner[i].Backward(d)
	}
	ds := dout
	for i := len(r.Proj) - 1; i >= 0; i-- {
		ds = r.Proj[i].Backward(ds)
	}
	dx := tensor.NewMat(d.Rows, d.Cols)
	for i := range dx.Data {
		dx.Data[i] = ds.Data[i] + d.Data[i]
	}
	return dx
}
