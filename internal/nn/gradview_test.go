package nn

import (
	"math"
	"testing"

	"a2sgd/internal/tensor"
)

// gradViewNet builds a small multi-tensor network with distinct gradient
// values at every flattened offset.
func gradViewNet() *Network {
	rng := tensor.NewRNG(3)
	net := NewNetwork(
		NewLinear(rng, 7, 5), NewReLU(),
		NewLinear(rng, 5, 4), NewReLU(),
		NewLinear(rng, 4, 3),
	)
	i := 0
	for _, p := range net.Params() {
		for j := range p.G {
			p.G[j] = float32(i)
			i++
		}
	}
	return net
}

// TestGradViewMatchesGatherGrads: a view over any flattened range reads (and
// writes) exactly the elements GatherGrads/ScatterGrads address, including
// ranges that span parameter-tensor boundaries.
func TestGradViewMatchesGatherGrads(t *testing.T) {
	net := gradViewNet()
	n := net.NumParams()
	flat := make([]float32, n)
	net.GatherGrads(flat)
	off := net.ParamOffsets()
	if off[len(off)-1] != n {
		t.Fatalf("ParamOffsets total %d != NumParams %d", off[len(off)-1], n)
	}
	var dst tensor.VecView
	ranges := [][2]int{{0, n}, {0, 1}, {n - 1, n}, {3, n - 3}}
	// Every boundary-straddling window.
	for _, o := range off[1 : len(off)-1] {
		ranges = append(ranges, [2]int{o - 2, o + 2}, [2]int{o, o + 1})
	}
	for _, r := range ranges {
		lo, hi := r[0], r[1]
		v := net.GradView(lo, hi, &dst)
		if v.Len() != hi-lo {
			t.Fatalf("GradView(%d,%d).Len() = %d", lo, hi, v.Len())
		}
		got := make([]float32, v.Len())
		v.CopyTo(got)
		for i, x := range got {
			if x != flat[lo+i] {
				t.Fatalf("GradView(%d,%d)[%d] = %v, want %v", lo, hi, i, x, flat[lo+i])
			}
		}
	}
	// Writes through the view land in live storage.
	v := net.GradView(2, n-2, &dst)
	v.Zero()
	net.GatherGrads(flat)
	for i, x := range flat {
		want := float32(0)
		if i < 2 || i >= n-2 {
			want = float32(i)
		}
		if x != want {
			t.Fatalf("after view Zero, flat[%d] = %v, want %v", i, x, want)
		}
	}
}

// TestLSTMBackwardInterleavedBitwise: BackwardInterleaved accumulates
// exactly the gradients Backward does, and reports readiness with strictly
// decreasing offsets — the output projection first, then each layer top-down,
// ending with a guaranteed 0.
func TestLSTMBackwardInterleavedBitwise(t *testing.T) {
	tokens := [][]int{{1, 5, 2, 7, 3}, {4, 0, 6, 2, 5}}
	build := func() *LSTMLM { return NewDeepLSTMLM(tensor.NewRNG(11), 8, 6, 5, 2) }

	ref := build()
	ref.Forward(tokens, true)
	ref.Backward()

	m := build()
	m.Forward(tokens, true)
	var offsets []int
	m.BackwardInterleaved(func(lo int) { offsets = append(offsets, lo) })

	rp, mp := ref.Params(), m.Params()
	for i := range rp {
		for j := range rp[i].G {
			if math.Float32bits(rp[i].G[j]) != math.Float32bits(mp[i].G[j]) {
				t.Fatalf("param %s grad [%d]: interleaved %v != plain %v",
					rp[i].Name, j, mp[i].G[j], rp[i].G[j])
			}
		}
	}

	if len(offsets) == 0 || offsets[len(offsets)-1] != 0 {
		t.Fatalf("offsets %v must end with 0", offsets)
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] >= offsets[i-1] {
			t.Fatalf("offsets %v not strictly decreasing", offsets)
		}
	}
	// First report is the output projection; one report per layer follows
	// (layer 0's is the final 0, covering the embedding too).
	po := m.ParamOffsets()
	want := []int{po[1+3*m.Layers]}
	for l := m.Layers - 1; l >= 1; l-- {
		want = append(want, po[1+3*l])
	}
	want = append(want, 0)
	if len(offsets) != len(want) {
		t.Fatalf("offsets %v, want %v", offsets, want)
	}
	for i := range want {
		if offsets[i] != want[i] {
			t.Fatalf("offsets %v, want %v", offsets, want)
		}
	}
}
