package nn

import (
	"fmt"
	"math"

	"a2sgd/internal/tensor"
)

// Param is one learnable tensor: the weight slice and its gradient
// accumulator, which always have identical length.
type Param struct {
	Name string
	W    []float32
	G    []float32
}

// Layer is a differentiable module.
type Layer interface {
	// Forward computes the layer output for a batch (rows = samples).
	// train toggles training-time behaviour (dropout, batch-norm stats).
	// The layer may retain references to x and its own activations for
	// Backward; callers must not mutate x until Backward completes.
	Forward(x *tensor.Mat, train bool) *tensor.Mat
	// Backward takes dL/dout and returns dL/dx, accumulating dL/dW into
	// the layer's gradient slices. Must follow a Forward with train=true.
	Backward(dout *tensor.Mat) *tensor.Mat
	// Params returns the learnable tensors (possibly none).
	Params() []Param
	// Name identifies the layer in summaries.
	Name() string
}

// Stateful is implemented by layers that carry non-learnable state a
// checkpoint must capture to resume a run bitwise — batch-norm running
// statistics being the canonical case. The state is exposed as a flat
// float32 vector so it composes with the positional parameter serialization
// (layer names are not unique, so name-keyed capture would collide).
type Stateful interface {
	// StateLen returns the flattened state element count.
	StateLen() int
	// GatherState copies the state into dst (len == StateLen()).
	GatherState(dst []float32)
	// ScatterState restores state captured by GatherState.
	ScatterState(src []float32)
}

// Network is a sequential container of layers with the flattened-vector
// views the distributed runtime needs.
type Network struct {
	Layers []Layer

	// Flattened views, built on first use and cached — the training step
	// calls Params/GatherGrads/ScatterGrads every iteration, and rebuilding
	// the slice each time is an avoidable steady-state allocation. Layers
	// must not be mutated after the first flattened-view call.
	params   []Param
	layerOff []int // flattened start offset of each layer's params
	paramOff []int // flattened start offset of each param (+1 total entry)
	nParams  int
	gradView tensor.VecView // all gradient tensors, in flattened order
}

// NewNetwork builds a sequential network.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// buildCache flattens the layer parameters once.
func (n *Network) buildCache() {
	n.layerOff = make([]int, len(n.Layers))
	ps := make([]Param, 0, len(n.Layers))
	off := 0
	for i, l := range n.Layers {
		n.layerOff[i] = off
		lp := l.Params()
		ps = append(ps, lp...)
		for _, p := range lp {
			off += len(p.W)
		}
	}
	n.params = ps
	n.paramOff = ParamOffsets(ps)
	n.nParams = off
	GradViewOf(ps, &n.gradView)
}

// ParamOffsets returns the flattened start offset of each parameter in ps,
// plus one trailing entry holding the total length — the prefix-offset table
// that lets range lookups binary-search instead of rescanning the parameter
// list.
func ParamOffsets(ps []Param) []int {
	off := make([]int, len(ps)+1)
	for i, p := range ps {
		off[i+1] = off[i] + len(p.W)
	}
	return off
}

// GradViewOf resets dst to a strided view over every gradient tensor of ps
// in flattened order and returns dst. Sub-range views are then cheap
// SliceView calls on the result.
func GradViewOf(ps []Param, dst *tensor.VecView) *tensor.VecView {
	segs := make([][]float32, len(ps))
	for i, p := range ps {
		segs[i] = p.G
	}
	return dst.Reset(segs)
}

// Forward runs all layers in order.
func (n *Network) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs all layers in reverse.
func (n *Network) Backward(dout *tensor.Mat) *tensor.Mat {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dout = n.Layers[i].Backward(dout)
	}
	return dout
}

// Params returns every learnable tensor in layer order. The slice is cached;
// callers must not modify it.
func (n *Network) Params() []Param {
	if n.params == nil {
		n.buildCache()
	}
	return n.params
}

// NumParams returns the total learnable parameter count.
func (n *Network) NumParams() int {
	if n.params == nil {
		n.buildCache()
	}
	return n.nParams
}

// ZeroGrads clears every gradient accumulator.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		tensor.Zero(p.G)
	}
}

// GatherGrads copies all gradients into dst (len == NumParams()) in layer
// order — the flattened gradient vector of the paper's Algorithm 1.
func (n *Network) GatherGrads(dst []float32) {
	off := 0
	for _, p := range n.Params() {
		copy(dst[off:off+len(p.G)], p.G)
		off += len(p.G)
	}
	if off != len(dst) {
		panic(fmt.Sprintf("nn: GatherGrads length %d != %d", len(dst), off))
	}
}

// GatherGradsRange copies the flattened-gradient elements [lo, hi) into
// dst[lo:hi] (dst has NumParams length). The bucketed pipeline uses it to
// gather one bucket's gradients while an earlier bucket is synchronizing.
func (n *Network) GatherGradsRange(dst []float32, lo, hi int) {
	GatherRange(n.Params(), dst, lo, hi)
}

// GatherRange copies the flattened-gradient elements [lo, hi) of a parameter
// list into dst[lo:hi] — the per-bucket slice of the GatherGrads layout.
func GatherRange(ps []Param, dst []float32, lo, hi int) {
	off := 0
	for _, p := range ps {
		if off >= hi {
			return
		}
		end := off + len(p.G)
		if end > lo {
			s, e := max(off, lo), min(end, hi)
			copy(dst[s:e], p.G[s-off:e-off])
		}
		off = end
	}
}

// BackwardInterleaved is Backward with gradient-readiness reporting: after
// layer i's backward completes, the flattened gradient elements
// [off_i, NumParams()) are final — no earlier layer's backward touches them —
// and onReady(off_i) is invoked. onReady is called with strictly decreasing
// offsets (layers without parameters report nothing new and are skipped) and
// a final onReady(0) is guaranteed, so a caller that launches the bucket
// exchange for each newly final range sees every gradient element become
// ready exactly once, deepest layers first, while shallower layers are still
// back-propagating.
func (n *Network) BackwardInterleaved(dout *tensor.Mat, onReady func(lo int)) *tensor.Mat {
	if n.params == nil {
		n.buildCache()
	}
	last := n.nParams
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dout = n.Layers[i].Backward(dout)
		if off := n.layerOff[i]; off < last {
			last = off
			onReady(off)
		}
	}
	if last != 0 {
		onReady(0)
	}
	return dout
}

// GradView writes into dst a view of the live gradient storage backing the
// flattened elements [lo, hi) — spanning as many parameter tensors as the
// range covers, sub-slicing the boundary tensors — and returns dst. The
// bucketed pipeline encodes from and reconstructs into these views directly,
// so no bucket pays a gather copy before encode or a scatter copy after
// decode, regardless of where its boundaries fall.
func (n *Network) GradView(lo, hi int, dst *tensor.VecView) *tensor.VecView {
	if n.params == nil {
		n.buildCache()
	}
	return n.gradView.SliceView(lo, hi, dst)
}

// ParamOffsets returns the cached prefix-offset table of the flattened
// parameter vector (len(Params())+1 entries; the last equals NumParams()).
// Callers must not modify it.
func (n *Network) ParamOffsets() []int {
	if n.params == nil {
		n.buildCache()
	}
	return n.paramOff
}

// ScatterGrads writes the flattened gradient vector back into the layers.
func (n *Network) ScatterGrads(src []float32) {
	off := 0
	for _, p := range n.Params() {
		copy(p.G, src[off:off+len(p.G)])
		off += len(p.G)
	}
	if off != len(src) {
		panic(fmt.Sprintf("nn: ScatterGrads length %d != %d", len(src), off))
	}
}

// ScatterGradsRange writes the flattened-gradient elements [lo, hi) of
// src[lo:hi] back into the layers — the per-bucket inverse of
// GatherGradsRange, which lets the pipeline skip re-scattering buckets that
// were exchanged in place.
func (n *Network) ScatterGradsRange(src []float32, lo, hi int) {
	ScatterRange(n.Params(), src, lo, hi)
}

// ScatterRange copies src[lo:hi] into the gradient slices of a parameter
// list at the flattened offsets [lo, hi) — the inverse of GatherRange.
func ScatterRange(ps []Param, src []float32, lo, hi int) {
	off := 0
	for _, p := range ps {
		if off >= hi {
			return
		}
		end := off + len(p.G)
		if end > lo {
			s, e := max(off, lo), min(end, hi)
			copy(p.G[s-off:e-off], src[s:e])
		}
		off = end
	}
}

// GatherParams copies all weights into dst.
func (n *Network) GatherParams(dst []float32) {
	off := 0
	for _, p := range n.Params() {
		copy(dst[off:off+len(p.W)], p.W)
		off += len(p.W)
	}
}

// ScatterParams writes flattened weights back (initial model broadcast).
func (n *Network) ScatterParams(src []float32) {
	off := 0
	for _, p := range n.Params() {
		copy(p.W, src[off:off+len(p.W)])
		off += len(p.W)
	}
}

// StateLen returns the total flattened non-learnable state length across all
// Stateful layers, in layer order.
func (n *Network) StateLen() int {
	total := 0
	for _, l := range n.Layers {
		if s, ok := l.(Stateful); ok {
			total += s.StateLen()
		}
	}
	return total
}

// GatherState copies every Stateful layer's state into dst (len ==
// StateLen()) in layer order.
func (n *Network) GatherState(dst []float32) {
	off := 0
	for _, l := range n.Layers {
		if s, ok := l.(Stateful); ok {
			s.GatherState(dst[off : off+s.StateLen()])
			off += s.StateLen()
		}
	}
	if off != len(dst) {
		panic(fmt.Sprintf("nn: GatherState length %d != %d", len(dst), off))
	}
}

// ScatterState restores layer state captured by GatherState.
func (n *Network) ScatterState(src []float32) {
	off := 0
	for _, l := range n.Layers {
		if s, ok := l.(Stateful); ok {
			s.ScatterState(src[off : off+s.StateLen()])
			off += s.StateLen()
		}
	}
	if off != len(src) {
		panic(fmt.Sprintf("nn: ScatterState length %d != %d", len(src), off))
	}
}

// Summary returns a one-line-per-layer description.
func (n *Network) Summary() string {
	s := ""
	for _, l := range n.Layers {
		np := 0
		for _, p := range l.Params() {
			np += len(p.W)
		}
		s += fmt.Sprintf("%-24s %10d params\n", l.Name(), np)
	}
	s += fmt.Sprintf("%-24s %10d params\n", "TOTAL", n.NumParams())
	return s
}

// ---- initializers ----

// InitHe fills w with He-normal values for fan-in (ReLU networks).
func InitHe(rng *tensor.RNG, w []float32, fanIn int) {
	std := float32(math.Sqrt(2 / float64(fanIn)))
	rng.NormVec(w, 0, std)
}

// InitXavier fills w with Glorot-normal values (tanh/sigmoid networks).
func InitXavier(rng *tensor.RNG, w []float32, fanIn, fanOut int) {
	std := float32(math.Sqrt(2 / float64(fanIn+fanOut)))
	rng.NormVec(w, 0, std)
}

// InitUniform fills w with U(−b, b).
func InitUniform(rng *tensor.RNG, w []float32, b float32) {
	rng.UniformVec(w, -b, b)
}
