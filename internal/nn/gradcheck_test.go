package nn

import (
	"math"
	"testing"

	"a2sgd/internal/tensor"
)

// fdCheckLayer verifies a layer's analytic gradients against central finite
// differences. The scalar loss is L = Σ out·R for a fixed random readout R,
// so dL/dout = R exactly. Checks both parameter gradients and dL/dx.
func fdCheckLayer(t *testing.T, build func() Layer, rows, cols int, seed uint64, tol float64) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	x := tensor.NewMat(rows, cols)
	rng.NormVec(x.Data, 0, 1)

	l := build()
	out := l.Forward(x, true)
	r := tensor.NewMat(out.Rows, out.Cols)
	tensor.NewRNG(seed+1).NormVec(r.Data, 0, 1)
	dx := l.Backward(r)

	loss := func(lay Layer, in *tensor.Mat) float64 {
		o := lay.Forward(in, false)
		return tensor.Dot(o.Data, r.Data)
	}

	const eps = 1e-2
	// Parameter gradients.
	for _, p := range l.Params() {
		checkEvery := 1
		if len(p.W) > 64 {
			checkEvery = len(p.W) / 48
		}
		for i := 0; i < len(p.W); i += checkEvery {
			old := p.W[i]
			p.W[i] = old + eps
			lp := loss(l, x)
			p.W[i] = old - eps
			lm := loss(l, x)
			p.W[i] = old
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(p.G[i])
			if !gradClose(numeric, analytic, tol) {
				t.Errorf("%s %s[%d]: numeric %v vs analytic %v", l.Name(), p.Name, i, numeric, analytic)
				return
			}
		}
	}
	// Input gradients.
	checkEvery := 1
	if len(x.Data) > 64 {
		checkEvery = len(x.Data) / 48
	}
	for i := 0; i < len(x.Data); i += checkEvery {
		old := x.Data[i]
		x.Data[i] = old + eps
		lp := loss(build(), x) // fresh layer: same init via identical seed inside build
		x.Data[i] = old - eps
		lm := loss(build(), x)
		x.Data[i] = old
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(dx.Data[i])
		if !gradClose(numeric, analytic, tol) {
			t.Errorf("%s dx[%d]: numeric %v vs analytic %v", l.Name(), i, numeric, analytic)
			return
		}
	}
}

func gradClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestLinearGradients(t *testing.T) {
	fdCheckLayer(t, func() Layer { return NewLinear(tensor.NewRNG(7), 6, 4) }, 3, 6, 11, 2e-2)
}

func TestReLUGradients(t *testing.T) {
	fdCheckLayer(t, func() Layer { return NewReLU() }, 4, 10, 13, 2e-2)
}

func TestTanhGradients(t *testing.T) {
	fdCheckLayer(t, func() Layer { return NewTanh() }, 4, 10, 17, 2e-2)
}

func TestConv2DGradients(t *testing.T) {
	in := Shape{C: 2, H: 5, W: 5}
	fdCheckLayer(t, func() Layer {
		return NewConv2D(tensor.NewRNG(7), in, 3, 3, 1, 1)
	}, 2, in.Size(), 19, 3e-2)
}

func TestConv2DStride2Gradients(t *testing.T) {
	in := Shape{C: 2, H: 6, W: 6}
	fdCheckLayer(t, func() Layer {
		return NewConv2D(tensor.NewRNG(9), in, 2, 3, 2, 1)
	}, 2, in.Size(), 23, 3e-2)
}

func TestMaxPoolGradients(t *testing.T) {
	// Max-pool is piecewise linear with kinks at argmax ties, so finite
	// differences need well-separated inputs: use a scaled permutation.
	in := Shape{C: 2, H: 4, W: 4}
	rows := 2
	x := tensor.NewMat(rows, in.Size())
	perm := tensor.NewRNG(29).Perm(len(x.Data))
	for i, p := range perm {
		x.Data[i] = float32(p) * 0.5 * float32(1-2*(p%2)) // distinct, mixed signs
	}
	l := NewMaxPool2D(in, 2)
	out := l.Forward(x, true)
	r := tensor.NewMat(out.Rows, out.Cols)
	tensor.NewRNG(30).NormVec(r.Data, 0, 1)
	dx := l.Backward(r)
	const eps = 1e-2
	for i := range x.Data {
		old := x.Data[i]
		x.Data[i] = old + eps
		lp := tensor.Dot(NewMaxPool2D(in, 2).Forward(x, false).Data, r.Data)
		x.Data[i] = old - eps
		lm := tensor.Dot(NewMaxPool2D(in, 2).Forward(x, false).Data, r.Data)
		x.Data[i] = old
		numeric := (lp - lm) / (2 * eps)
		if !gradClose(numeric, float64(dx.Data[i]), 2e-2) {
			t.Fatalf("dx[%d]: numeric %v vs analytic %v", i, numeric, dx.Data[i])
		}
	}
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	in := Shape{C: 3, H: 4, W: 4}
	fdCheckLayer(t, func() Layer { return NewGlobalAvgPool(in) }, 2, in.Size(), 31, 2e-2)
}

func TestResidualGradients(t *testing.T) {
	in := Shape{C: 2, H: 4, W: 4}
	fdCheckLayer(t, func() Layer {
		rng := tensor.NewRNG(5)
		return NewResidual("t",
			NewConv2D(rng, in, 2, 3, 1, 1),
			NewReLU(),
		)
	}, 2, in.Size(), 37, 3e-2)
}

// BatchNorm needs its own check because eval-mode Forward (used by the FD
// loss) and train-mode statistics differ; verify backward against a
// train-mode FD instead.
func TestBatchNormGradients(t *testing.T) {
	in := Shape{C: 2, H: 3, W: 3}
	rng := tensor.NewRNG(41)
	x := tensor.NewMat(4, in.Size())
	rng.NormVec(x.Data, 0.5, 2)

	build := func() *BatchNorm2D { return NewBatchNorm2D(in) }
	b := build()
	out := b.Forward(x, true)
	r := tensor.NewMat(out.Rows, out.Cols)
	tensor.NewRNG(42).NormVec(r.Data, 0, 1)
	dx := b.Backward(r)

	lossTrain := func(bb *BatchNorm2D, in *tensor.Mat) float64 {
		o := bb.Forward(in, true)
		return tensor.Dot(o.Data, r.Data)
	}
	const eps = 1e-2
	// Gamma/beta grads.
	for pi, p := range b.Params() {
		for i := range p.W {
			bb := build()
			bb.Params()[pi].W[i] += eps
			lp := lossTrain(bb, x)
			bb = build()
			bb.Params()[pi].W[i] -= eps
			lm := lossTrain(bb, x)
			numeric := (lp - lm) / (2 * eps)
			if !gradClose(numeric, float64(p.G[i]), 3e-2) {
				t.Fatalf("%s[%d]: numeric %v vs analytic %v", p.Name, i, numeric, p.G[i])
			}
		}
	}
	// Input grads (sampled).
	for i := 0; i < len(x.Data); i += 7 {
		old := x.Data[i]
		x.Data[i] = old + eps
		lp := lossTrain(build(), x)
		x.Data[i] = old - eps
		lm := lossTrain(build(), x)
		x.Data[i] = old
		numeric := (lp - lm) / (2 * eps)
		if !gradClose(numeric, float64(dx.Data[i]), 5e-2) {
			t.Fatalf("dx[%d]: numeric %v vs analytic %v", i, numeric, dx.Data[i])
		}
	}
}

func TestSoftmaxCEGradients(t *testing.T) {
	rng := tensor.NewRNG(43)
	logits := tensor.NewMat(3, 5)
	rng.NormVec(logits.Data, 0, 2)
	labels := []int{1, 4, 0}
	_, d := SoftmaxCE(logits, labels)
	const eps = 1e-3
	for i := range logits.Data {
		old := logits.Data[i]
		logits.Data[i] = old + eps
		lp, _ := SoftmaxCE(logits, labels)
		logits.Data[i] = old - eps
		lm, _ := SoftmaxCE(logits, labels)
		logits.Data[i] = old
		numeric := (lp - lm) / (2 * eps)
		if !gradClose(numeric, float64(d.Data[i]), 1e-2) {
			t.Fatalf("dlogits[%d]: numeric %v vs analytic %v", i, numeric, d.Data[i])
		}
	}
}

func TestLSTMLMGradients(t *testing.T) {
	// Tiny model; FD over a sampled subset of every parameter tensor.
	build := func() *LSTMLM { return NewLSTMLM(tensor.NewRNG(3), 7, 4, 5) }
	m := build()
	tokens := [][]int{{1, 3, 5, 2}, {0, 6, 4, 1}}
	m.Forward(tokens, true)
	m.Backward()

	const eps = 1e-2
	for pi, p := range m.Params() {
		step := 1
		if len(p.W) > 30 {
			step = len(p.W) / 24
		}
		for i := 0; i < len(p.W); i += step {
			mp := build()
			mp.Params()[pi].W[i] += eps
			lp := mp.Forward(tokens, false)
			mm := build()
			mm.Params()[pi].W[i] -= eps
			lm := mm.Forward(tokens, false)
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(p.G[i])
			if !gradClose(numeric, analytic, 4e-2) {
				t.Fatalf("%s[%d]: numeric %v vs analytic %v", p.Name, i, numeric, analytic)
			}
		}
	}
}

func TestDeepLSTMLMGradients(t *testing.T) {
	// Two stacked layers; FD over a sampled subset of every tensor.
	build := func() *LSTMLM { return NewDeepLSTMLM(tensor.NewRNG(5), 6, 3, 4, 2) }
	m := build()
	tokens := [][]int{{1, 3, 5, 2}, {0, 2, 4, 1}}
	m.Forward(tokens, true)
	m.Backward()

	const eps = 1e-2
	for pi, p := range m.Params() {
		step := 1
		if len(p.W) > 30 {
			step = len(p.W) / 20
		}
		for i := 0; i < len(p.W); i += step {
			mp := build()
			mp.Params()[pi].W[i] += eps
			lp := mp.Forward(tokens, false)
			mm := build()
			mm.Params()[pi].W[i] -= eps
			lm := mm.Forward(tokens, false)
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(p.G[i])
			if !gradClose(numeric, analytic, 4e-2) {
				t.Fatalf("%s[%d]: numeric %v vs analytic %v", p.Name, i, numeric, analytic)
			}
		}
	}
}

func TestDeepLSTMLayerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 layers")
		}
	}()
	NewDeepLSTMLM(tensor.NewRNG(1), 8, 4, 4, 0)
}

func TestProjResidualGradients(t *testing.T) {
	// Downsampling residual block: stride-2 inner convs with a 1×1 stride-2
	// projection shortcut (the ResNet stage boundary).
	in := Shape{C: 2, H: 4, W: 4}
	fdCheckLayer(t, func() Layer {
		rng := tensor.NewRNG(11)
		c1 := NewConv2D(rng, in, 3, 3, 2, 1)
		pc := NewConv2D(rng, in, 3, 1, 2, 0)
		return NewProjResidual("t", []Layer{pc}, c1, NewReLU())
	}, 2, in.Size(), 41, 3e-2)
}

func TestAvgPoolGradients(t *testing.T) {
	in := Shape{C: 2, H: 4, W: 4}
	fdCheckLayer(t, func() Layer { return NewAvgPool2D(in, 2) }, 2, in.Size(), 47, 2e-2)
}

func TestSigmoidGradients(t *testing.T) {
	fdCheckLayer(t, func() Layer { return NewSigmoid() }, 3, 8, 53, 2e-2)
}

func TestAvgPoolKnownValues(t *testing.T) {
	in := Shape{C: 1, H: 2, W: 2}
	a := NewAvgPool2D(in, 2)
	x := tensor.MatFrom(1, 4, []float32{1, 2, 3, 4})
	out := a.Forward(x, false)
	if out.Cols != 1 || out.Data[0] != 2.5 {
		t.Fatalf("avg = %v", out.Data)
	}
	if a.OutShape() != (Shape{C: 1, H: 1, W: 1}) {
		t.Error("out shape")
	}
}

func TestAvgPoolIndivisiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAvgPool2D(Shape{C: 1, H: 3, W: 4}, 2)
}
