package nn

import (
	"testing"

	"a2sgd/internal/tensor"
)

func segsFromLens(lens ...int) []Segment {
	var segs []Segment
	off := 0
	for i, l := range lens {
		segs = append(segs, Segment{Name: string(rune('a' + i)), Off: off, Len: l})
		off += l
	}
	return segs
}

func checkTiling(t *testing.T, p BucketPlan) {
	t.Helper()
	off := 0
	for i, b := range p.Buckets {
		if b.Off != off {
			t.Fatalf("bucket %d off %d, want %d", i, b.Off, off)
		}
		segLen := 0
		for _, s := range b.Segments {
			segLen += s.Len
		}
		if segLen != b.Len {
			t.Fatalf("bucket %d len %d != segment sum %d", i, b.Len, segLen)
		}
		off += b.Len
	}
	if off != p.N {
		t.Fatalf("buckets cover %d, want %d", off, p.N)
	}
	bounds := p.Bounds()
	if len(bounds) != len(p.Buckets)+1 || bounds[len(bounds)-1] != p.N {
		t.Fatalf("bad bounds %v", bounds)
	}
}

func TestPlanBucketsSingleBucketWhenBudgetZero(t *testing.T) {
	p := PlanBuckets(segsFromLens(10, 20, 30), 0)
	checkTiling(t, p)
	if p.NumBuckets() != 1 || p.Buckets[0].Len != 60 {
		t.Fatalf("want one 60-element bucket, got %+v", p.Buckets)
	}
}

func TestPlanBucketsBudgetLargerThanModel(t *testing.T) {
	// A bucket budget larger than the whole model yields a single bucket.
	p := PlanBuckets(segsFromLens(10, 20, 30), 1<<30)
	checkTiling(t, p)
	if p.NumBuckets() != 1 {
		t.Fatalf("want 1 bucket, got %d", p.NumBuckets())
	}
}

func TestPlanBucketsLayerGranularity(t *testing.T) {
	// 40-byte budget = 10 elements: segments of 4+4 fit one bucket; the
	// 8-element segment opens its own.
	p := PlanBuckets(segsFromLens(4, 4, 8, 2), 40)
	checkTiling(t, p)
	if p.NumBuckets() != 2 {
		t.Fatalf("want 2 buckets, got %+v", p.Buckets)
	}
	if p.Buckets[0].Len != 8 || p.Buckets[1].Len != 10 {
		t.Fatalf("bucket lens %d/%d, want 8/10", p.Buckets[0].Len, p.Buckets[1].Len)
	}
}

func TestPlanBucketsOversizedSegmentGetsOwnBucket(t *testing.T) {
	// A tensor larger than the budget must not be split: it gets a bucket
	// exceeding the budget.
	p := PlanBuckets(segsFromLens(2, 100, 2), 16)
	checkTiling(t, p)
	if p.NumBuckets() != 3 {
		t.Fatalf("want 3 buckets, got %+v", p.Buckets)
	}
	if p.Buckets[1].Len != 100 {
		t.Fatalf("oversized bucket len %d, want 100", p.Buckets[1].Len)
	}
}

func TestPlanBucketsOneParamLayers(t *testing.T) {
	// Many 1-parameter layers (biases, norm scales) pack densely.
	lens := make([]int, 17)
	for i := range lens {
		lens[i] = 1
	}
	p := PlanBuckets(segsFromLens(lens...), 16) // 4 elements per bucket
	checkTiling(t, p)
	if p.NumBuckets() != 5 {
		t.Fatalf("want 5 buckets (4+4+4+4+1), got %d", p.NumBuckets())
	}
}

func TestPlanBucketsZeroLengthSegments(t *testing.T) {
	// Zero-length segments (parameterless layers) attach to the current
	// bucket and never open a new one — including a zero-length tail.
	p := PlanBuckets(segsFromLens(4, 0, 4, 0, 0), 32)
	checkTiling(t, p)
	if p.NumBuckets() != 1 {
		t.Fatalf("want 1 bucket, got %+v", p.Buckets)
	}
	if got := len(p.Buckets[0].Segments); got != 5 {
		t.Fatalf("bucket carries %d segments, want 5", got)
	}
}

func TestPlanBucketsEmptyModel(t *testing.T) {
	p := PlanBuckets(nil, 1024)
	if p.N != 0 || p.NumBuckets() != 0 {
		t.Fatalf("empty plan %+v", p)
	}
	if b := p.Bounds(); len(b) != 1 || b[0] != 0 {
		t.Fatalf("empty bounds %v", b)
	}
}

func TestParamSegmentsMatchGatherLayout(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := NewNetwork(
		NewLinear(rng, 6, 5), NewReLU(),
		NewLinear(rng, 5, 3),
	)
	segs := net.ParamSegments()
	n := net.NumParams()
	total := 0
	for i, s := range segs {
		if s.Off != total {
			t.Fatalf("segment %d off %d, want %d", i, s.Off, total)
		}
		total += s.Len
	}
	if total != n {
		t.Fatalf("segments cover %d, want %d", total, n)
	}
	// GatherGradsRange over any [lo, hi) must agree with full GatherGrads.
	for _, p := range net.Params() {
		for i := range p.G {
			p.G[i] = rng.Float32()
		}
	}
	full := make([]float32, n)
	net.GatherGrads(full)
	for _, span := range [][2]int{{0, n}, {3, 7}, {0, 1}, {n - 1, n}, {5, 5}} {
		part := make([]float32, n)
		net.GatherGradsRange(part, span[0], span[1])
		for i := span[0]; i < span[1]; i++ {
			if part[i] != full[i] {
				t.Fatalf("range %v: element %d = %v, want %v", span, i, part[i], full[i])
			}
		}
	}
}

func TestPlanBucketsSizedVariableBudgets(t *testing.T) {
	// Per-bucket budgets: bucket 0 gets 16 bytes (4 elems), later buckets
	// repeat the last entry (8 bytes = 2 elems).
	p := PlanBucketsSized(segsFromLens(4, 2, 2, 2), []int{16, 8})
	checkTiling(t, p)
	if p.NumBuckets() != 4 {
		t.Fatalf("want 4 buckets, got %+v", p.Buckets)
	}
	for i, want := range []int{4, 2, 2, 2} {
		if p.Buckets[i].Len != want {
			t.Fatalf("bucket lens %+v", p.Buckets)
		}
	}
	// A wider head budget packs the first two segments together.
	p = PlanBucketsSized(segsFromLens(4, 2, 2, 2), []int{24, 8})
	checkTiling(t, p)
	if p.NumBuckets() != 3 || p.Buckets[0].Len != 6 {
		t.Fatalf("want 3 buckets with a 6-elem head, got %+v", p.Buckets)
	}
}

func TestPlanBucketsSizedMatchesPlanBuckets(t *testing.T) {
	segs := segsFromLens(10, 0, 6, 7, 1, 30, 2)
	for _, bb := range []int{0, -1, 8, 24, 40, 1 << 20} {
		a, b := PlanBuckets(segs, bb), PlanBucketsSized(segs, []int{bb})
		if len(a.Buckets) != len(b.Buckets) {
			t.Fatalf("budget %d: %d vs %d buckets", bb, len(a.Buckets), len(b.Buckets))
		}
	}
	// An unbounded later budget absorbs the rest.
	p := PlanBucketsSized(segs, []int{24, 0})
	checkTiling(t, p)
	if p.NumBuckets() != 2 {
		t.Fatalf("want 2 buckets, got %+v", p.Buckets)
	}
}

func TestPlanFromBoundsRoundTrip(t *testing.T) {
	segs := segsFromLens(4, 0, 4, 3, 0, 9, 1, 0)
	for _, bb := range []int{0, 16, 28, 1 << 20} {
		want := PlanBuckets(segs, bb)
		got, err := PlanFromBounds(segs, want.Bounds())
		if err != nil {
			t.Fatalf("budget %d: %v", bb, err)
		}
		if len(got.Buckets) != len(want.Buckets) || got.N != want.N {
			t.Fatalf("budget %d: plan %+v, want %+v", bb, got, want)
		}
		for i := range want.Buckets {
			w, g := want.Buckets[i], got.Buckets[i]
			if w.Off != g.Off || w.Len != g.Len || len(w.Segments) != len(g.Segments) {
				t.Fatalf("budget %d bucket %d: %+v vs %+v", bb, i, g, w)
			}
			for j := range w.Segments {
				if w.Segments[j] != g.Segments[j] {
					t.Fatalf("budget %d bucket %d segment %d differs", bb, i, j)
				}
			}
		}
	}
}

func TestPlanFromBoundsRejectsBadBounds(t *testing.T) {
	segs := segsFromLens(4, 4, 4)
	for _, bounds := range [][]int{
		nil,           // empty
		{0},           // too short
		{0, 4, 4, 12}, // not strictly increasing
		{0, 6, 12},    // splits the middle segment
		{4, 8, 12},    // does not start at 0
		{0, 4, 8},     // does not reach n
	} {
		if _, err := PlanFromBounds(segs, bounds); err == nil {
			t.Errorf("bounds %v: expected error", bounds)
		}
	}
	// The single whole-vector bucket is valid.
	if _, err := PlanFromBounds(segs, []int{0, 12}); err != nil {
		t.Errorf("whole-vector bounds: %v", err)
	}
}
