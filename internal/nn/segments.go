package nn

import "fmt"

// Segment locates one learnable tensor inside the flattened parameter
// vector: the half-open range [Off, Off+Len). Segments are reported in
// layer order, matching GatherGrads/ScatterGrads layout exactly, so a
// bucketing scheme can partition the flattened vector at layer granularity.
type Segment struct {
	// Name is the owning tensor's name (layer + tensor role).
	Name string
	// Off is the segment's offset in the flattened vector.
	Off int
	// Len is the tensor's element count.
	Len int
}

// SegmentsOf computes the flattened-vector segment boundaries of a parameter
// list — the inverse index of the GatherGrads layout.
func SegmentsOf(ps []Param) []Segment {
	segs := make([]Segment, 0, len(ps))
	off := 0
	for _, p := range ps {
		segs = append(segs, Segment{Name: p.Name, Off: off, Len: len(p.W)})
		off += len(p.W)
	}
	return segs
}

// ParamSegments returns the per-tensor segment boundaries of the network's
// flattened parameter vector, in layer order.
func (n *Network) ParamSegments() []Segment { return SegmentsOf(n.Params()) }

// Bucket is one contiguous partition of the flattened parameter vector,
// covering whole segments only (a tensor is never split across buckets).
type Bucket struct {
	// Off and Len delimit the bucket's slice of the flattened vector.
	Off, Len int
	// Segments are the tensors the bucket covers, in layer order.
	Segments []Segment
}

// BucketPlan partitions an n-element flattened parameter vector into
// contiguous buckets at layer granularity. Buckets are in layer order and
// tile [0, N) exactly.
type BucketPlan struct {
	// N is the total parameter count the plan covers.
	N int
	// Buckets are the partitions, in flattened-vector order.
	Buckets []Bucket
}

// NumBuckets returns the bucket count (at least 1 for a non-empty model).
func (p BucketPlan) NumBuckets() int { return len(p.Buckets) }

// PlanBuckets packs segments greedily into buckets of at most bucketBytes
// bytes (float32 elements, 4 bytes each), in layer order. A segment larger
// than the budget gets a bucket of its own — tensors are never split, so a
// bucket may exceed the budget when a single layer does. bucketBytes <= 0
// requests a single bucket covering the whole vector (the synchronous
// whole-model path). Zero-length segments attach to the current bucket and
// never open a new one.
func PlanBuckets(segs []Segment, bucketBytes int) BucketPlan {
	return PlanBucketsSized(segs, []int{bucketBytes})
}

// segTotal verifies that segments tile [0, n) contiguously and returns n.
func segTotal(segs []Segment) int {
	n := 0
	for i, s := range segs {
		if s.Off != n {
			panic(fmt.Sprintf("nn: segment %d (%s) offset %d, want %d — segments must tile the vector",
				i, s.Name, s.Off, n))
		}
		n += s.Len
	}
	return n
}

// PlanBucketsSized is the variable-size generalization of PlanBuckets:
// bucket i is packed against budgetsBytes[i], with the last entry repeating
// for every later bucket (so a one-element slice reproduces PlanBuckets
// exactly). A non-positive budget makes that bucket unbounded — it absorbs
// every remaining segment. The planner uses this to emit schedules whose
// bucket sizes vary along the vector (e.g. a dense, finely-split tail whose
// exposed synchronization is cheap, behind large amortizing buckets).
func PlanBucketsSized(segs []Segment, budgetsBytes []int) BucketPlan {
	n := segTotal(segs)
	plan := BucketPlan{N: n}
	if len(segs) == 0 {
		return plan
	}
	if len(budgetsBytes) == 0 {
		budgetsBytes = []int{0}
	}
	budget := func(bucket int) int { // elements allowed in this bucket
		bb := budgetsBytes[len(budgetsBytes)-1]
		if bucket < len(budgetsBytes) {
			bb = budgetsBytes[bucket]
		}
		if bb <= 0 {
			return n // unbounded
		}
		return bb / 4
	}
	cur := Bucket{Off: 0}
	for _, s := range segs {
		if cur.Len > 0 && s.Len > 0 && cur.Len+s.Len > budget(len(plan.Buckets)) {
			plan.Buckets = append(plan.Buckets, cur)
			cur = Bucket{Off: s.Off}
		}
		cur.Segments = append(cur.Segments, s)
		cur.Len += s.Len
	}
	plan.Buckets = append(plan.Buckets, cur)
	return plan
}

// PlanFromBounds reconstructs the bucket plan a set of cumulative offsets
// describes — the inverse of BucketPlan.Bounds, used when a pre-planned
// schedule (whose boundaries were chosen against a priced fabric) is handed
// to a worker that only knows its own segment list. Bounds must start at 0,
// be strictly increasing, end at the segments' total length, and fall on
// segment boundaries (tensors are never split). Zero-length segments attach
// to the bucket preceding them, matching PlanBuckets, so
// PlanFromBounds(segs, PlanBuckets(segs, b).Bounds()) reproduces the
// original plan exactly.
func PlanFromBounds(segs []Segment, bounds []int) (BucketPlan, error) {
	n := segTotal(segs)
	if len(bounds) < 2 || bounds[0] != 0 || bounds[len(bounds)-1] != n {
		return BucketPlan{}, fmt.Errorf("nn: bounds %v must run from 0 to the %d-element vector", bounds, n)
	}
	k := len(bounds) - 1
	plan := BucketPlan{N: n, Buckets: make([]Bucket, k)}
	for b := 0; b < k; b++ {
		if bounds[b+1] <= bounds[b] {
			return BucketPlan{}, fmt.Errorf("nn: bounds %v must be strictly increasing", bounds)
		}
		plan.Buckets[b] = Bucket{Off: bounds[b], Len: bounds[b+1] - bounds[b]}
	}
	bi := 0
	for _, s := range segs {
		for s.Len > 0 && s.Off >= bounds[bi+1] {
			bi++
		}
		if s.Len > 0 && s.Off+s.Len > bounds[bi+1] {
			return BucketPlan{}, fmt.Errorf("nn: bound %d splits segment %s [%d,%d) — bounds must fall on segment boundaries",
				bounds[bi+1], s.Name, s.Off, s.Off+s.Len)
		}
		plan.Buckets[bi].Segments = append(plan.Buckets[bi].Segments, s)
	}
	return plan, nil
}

// Bounds returns the len(Buckets)+1 cumulative offsets delimiting the
// buckets: Bounds()[i] is bucket i's Off and Bounds()[last] is N.
func (p BucketPlan) Bounds() []int {
	b := make([]int, len(p.Buckets)+1)
	for i, bk := range p.Buckets {
		b[i] = bk.Off
	}
	b[len(p.Buckets)] = p.N
	return b
}
