package nn

import (
	"math"

	"a2sgd/internal/tensor"
)

// SoftmaxCE computes the mean softmax cross-entropy loss over a batch of
// logits (rows = samples, cols = classes) with integer labels, and the
// gradient dL/dlogits in the same shape. Numerically stabilized by the
// per-row max shift.
func SoftmaxCE(logits *tensor.Mat, labels []int) (loss float64, dlogits *tensor.Mat) {
	if len(labels) != logits.Rows {
		panic("nn: SoftmaxCE label count mismatch")
	}
	d := tensor.NewMat(logits.Rows, logits.Cols)
	invB := 1 / float32(logits.Rows)
	for s := 0; s < logits.Rows; s++ {
		row := logits.Row(s)
		m := row[0]
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - m))
		}
		logSum := math.Log(sum)
		lbl := labels[s]
		if lbl < 0 || lbl >= logits.Cols {
			panic("nn: SoftmaxCE label out of range")
		}
		loss += -(float64(row[lbl]-m) - logSum)
		dst := d.Row(s)
		for c, v := range row {
			p := float32(math.Exp(float64(v-m)) / sum)
			if c == lbl {
				p -= 1
			}
			dst[c] = p * invB
		}
	}
	loss /= float64(logits.Rows)
	return loss, d
}

// Accuracy returns the top-1 accuracy of logits against labels.
func Accuracy(logits *tensor.Mat, labels []int) float64 {
	if logits.Rows == 0 {
		return 0
	}
	correct := 0
	for s := 0; s < logits.Rows; s++ {
		if tensor.MaxIdx(logits.Row(s)) == labels[s] {
			correct++
		}
	}
	return float64(correct) / float64(logits.Rows)
}

// Perplexity converts a mean cross-entropy (nats per token) into the
// perplexity score the paper reports for LSTM-PTB.
func Perplexity(meanCE float64) float64 { return math.Exp(meanCE) }
