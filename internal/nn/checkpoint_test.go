package nn

import (
	"bytes"
	"strings"
	"testing"

	"a2sgd/internal/tensor"
)

func ckNet(seed uint64) *Network {
	rng := tensor.NewRNG(seed)
	return NewNetwork(NewLinear(rng, 4, 3), NewReLU(), NewLinear(rng, 3, 2))
}

func TestCheckpointRoundTrip(t *testing.T) {
	src := ckNet(1)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := ckNet(99) // different init
	loaded, err := LoadParams(&buf, dst.Params())
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(src.Params()) {
		t.Fatalf("loaded %d tensors, want %d", len(loaded), len(src.Params()))
	}
	ws := make([]float32, src.NumParams())
	wd := make([]float32, dst.NumParams())
	src.GatherParams(ws)
	dst.GatherParams(wd)
	for i := range ws {
		if ws[i] != wd[i] {
			t.Fatalf("weights differ at %d after load", i)
		}
	}
}

func TestCheckpointLSTM(t *testing.T) {
	src := NewDeepLSTMLM(tensor.NewRNG(3), 10, 4, 6, 2)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := NewDeepLSTMLM(tensor.NewRNG(77), 10, 4, 6, 2)
	if _, err := LoadParams(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	toks := [][]int{{1, 2, 3, 4}}
	if a, b := src.Forward(toks, false), dst.Forward(toks, false); a != b {
		t.Fatalf("loss differs after restore: %v vs %v", a, b)
	}
}

func TestCheckpointBadMagic(t *testing.T) {
	_, err := LoadParams(strings.NewReader("NOPE----"), nil)
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	src := ckNet(5)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[20] ^= 0xff // flip bits mid-stream
	_, err := LoadParams(bytes.NewReader(data), ckNet(5).Params())
	if err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestCheckpointTruncationDetected(t *testing.T) {
	src := ckNet(6)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadParams(bytes.NewReader(data), ckNet(6).Params()); err == nil {
		t.Fatal("truncation not detected")
	}
}

func TestCheckpointShapeMismatch(t *testing.T) {
	src := ckNet(7)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	// Model with different widths: same layer names? Linear(4→3) vs (4→5)
	// produce different names, so the mismatch is "no matching parameter".
	rng := tensor.NewRNG(8)
	other := NewNetwork(NewLinear(rng, 4, 5), NewReLU(), NewLinear(rng, 5, 2))
	if _, err := LoadParams(&buf, other.Params()); err == nil {
		t.Fatal("shape/name mismatch not detected")
	}
}

func TestCheckpointUnknownVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(ckMagic)
	_ = writeU32(&buf, 999)
	_ = writeU32(&buf, 0)
	if _, err := LoadParams(bytes.NewReader(buf.Bytes()), nil); err == nil {
		t.Fatal("version check missing")
	}
}
