package nn

import (
	"fmt"
	"math"

	"a2sgd/internal/tensor"
)

// LSTMLM is a word-level multi-layer LSTM language model: embedding → one
// or more stacked LSTM layers unrolled over the sequence → vocabulary
// projection, trained with softmax cross-entropy on next-token prediction.
// It is the architecture family of the paper's LSTM-PTB workload: with
// vocab 10,000, embedding/hidden 1500 and two layers the parameter count is
// 66.0 M — the paper's Table 1 entry (see models.TestPaperScaleLSTMCount).
//
// Because the recurrent weights are shared across timesteps, the model
// manages its own backpropagation-through-time rather than implementing the
// feed-forward Layer interface.
type LSTMLM struct {
	Vocab, Embed, Hidden, Layers int

	// Parameters. Gate layout within the 4H dimension: [i f g o].
	E      []float32   // (Vocab, Embed) embedding
	Wx     [][]float32 // per layer: (4H, in) with in = Embed (l=0) or Hidden
	Wh     [][]float32 // per layer: (4H, Hidden)
	B      [][]float32 // per layer: (4H)
	Wy, By []float32   // (Vocab, Hidden), (Vocab) output projection

	GE, GWy, GBy []float32
	GWx, GWh, GB [][]float32

	// Flattened-parameter cache, built on first use: the distributed step
	// asks for the parameter list and offset table every iteration, and
	// BackwardInterleaved reports readiness in terms of the offsets.
	params   []Param
	paramOff []int

	// caches for BPTT, indexed [layer][t]
	tokens  [][]int
	xs      [][]*tensor.Mat // layer inputs per t: (B, in)
	hs, cs  [][]*tensor.Mat // states per t (index t+1; index 0 is zeros)
	gates   [][]*tensor.Mat // post-activation gate values per t: (B, 4H)
	tanhC   [][]*tensor.Mat // tanh(c_t) per t
	dlogits []*tensor.Mat   // per t
}

// NewLSTMLM builds a single-layer model with Xavier initialization.
func NewLSTMLM(rng *tensor.RNG, vocab, embed, hidden int) *LSTMLM {
	return NewDeepLSTMLM(rng, vocab, embed, hidden, 1)
}

// NewDeepLSTMLM builds a stacked model with the given layer count.
func NewDeepLSTMLM(rng *tensor.RNG, vocab, embed, hidden, layers int) *LSTMLM {
	if layers < 1 {
		panic("nn: LSTM needs at least one layer")
	}
	m := &LSTMLM{Vocab: vocab, Embed: embed, Hidden: hidden, Layers: layers}
	h4 := 4 * hidden
	m.E = make([]float32, vocab*embed)
	m.Wy = make([]float32, vocab*hidden)
	m.By = make([]float32, vocab)
	m.GE = make([]float32, len(m.E))
	m.GWy = make([]float32, len(m.Wy))
	m.GBy = make([]float32, len(m.By))
	InitUniform(rng, m.E, 0.1)
	InitXavier(rng, m.Wy, hidden, vocab)
	for l := 0; l < layers; l++ {
		in := embed
		if l > 0 {
			in = hidden
		}
		wx := make([]float32, h4*in)
		wh := make([]float32, h4*hidden)
		b := make([]float32, h4)
		InitXavier(rng, wx, in, h4)
		InitXavier(rng, wh, hidden, h4)
		// Forget-gate bias starts at 1 — the standard trick for gradient flow.
		for i := hidden; i < 2*hidden; i++ {
			b[i] = 1
		}
		m.Wx = append(m.Wx, wx)
		m.Wh = append(m.Wh, wh)
		m.B = append(m.B, b)
		m.GWx = append(m.GWx, make([]float32, len(wx)))
		m.GWh = append(m.GWh, make([]float32, len(wh)))
		m.GB = append(m.GB, make([]float32, len(b)))
	}
	return m
}

// buildCache flattens the parameter list and its prefix-offset table once.
// Parameter order: E, then (Wx, Wh, b) per layer, then Wy, By — so the
// offset of layer l's first tensor is paramOff[1+3l] and the output
// projection starts at paramOff[1+3*Layers].
func (m *LSTMLM) buildCache() {
	ps := []Param{{Name: "lstm.E", W: m.E, G: m.GE}}
	for l := 0; l < m.Layers; l++ {
		ps = append(ps,
			Param{Name: fmt.Sprintf("lstm.%d.Wx", l), W: m.Wx[l], G: m.GWx[l]},
			Param{Name: fmt.Sprintf("lstm.%d.Wh", l), W: m.Wh[l], G: m.GWh[l]},
			Param{Name: fmt.Sprintf("lstm.%d.b", l), W: m.B[l], G: m.GB[l]},
		)
	}
	ps = append(ps,
		Param{Name: "lstm.Wy", W: m.Wy, G: m.GWy},
		Param{Name: "lstm.by", W: m.By, G: m.GBy},
	)
	m.params = ps
	m.paramOff = ParamOffsets(ps)
}

// Params returns the learnable tensors. The slice is cached; callers must
// not modify it.
func (m *LSTMLM) Params() []Param {
	if m.params == nil {
		m.buildCache()
	}
	return m.params
}

// ParamOffsets returns the cached prefix-offset table of the flattened
// parameter vector (one trailing entry = NumParams()).
func (m *LSTMLM) ParamOffsets() []int {
	if m.params == nil {
		m.buildCache()
	}
	return m.paramOff
}

// NumParams returns the learnable parameter count.
func (m *LSTMLM) NumParams() int {
	off := m.ParamOffsets()
	return off[len(off)-1]
}

func sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// layerIn returns layer l's input width.
func (m *LSTMLM) layerIn(l int) int {
	if l == 0 {
		return m.Embed
	}
	return m.Hidden
}

// cellForward runs one LSTM layer for one timestep: given input x, previous
// h and c, it returns (gates, newH, newC, tanhC). gates holds the
// post-activation [i f g o] values.
func (m *LSTMLM) cellForward(l int, x, h, c *tensor.Mat) (z, newH, newC, tc *tensor.Mat) {
	B := x.Rows
	H := m.Hidden
	wx := tensor.MatFrom(4*H, m.layerIn(l), m.Wx[l])
	wh := tensor.MatFrom(4*H, H, m.Wh[l])
	z = tensor.NewMat(B, 4*H)
	tensor.MatMulABT(z, x, wx)
	zh := tensor.NewMat(B, 4*H)
	tensor.MatMulABT(zh, h, wh)
	tensor.Add(z.Data, zh.Data)
	tensor.AddRowVec(z, m.B[l])
	newH = tensor.NewMat(B, H)
	newC = tensor.NewMat(B, H)
	tc = tensor.NewMat(B, H)
	for b := 0; b < B; b++ {
		zr := z.Row(b)
		cPrev := c.Row(b)
		hr, cr, tr := newH.Row(b), newC.Row(b), tc.Row(b)
		for j := 0; j < H; j++ {
			ig := sigmoid(zr[j])
			fg := sigmoid(zr[H+j])
			gg := float32(math.Tanh(float64(zr[2*H+j])))
			og := sigmoid(zr[3*H+j])
			zr[j], zr[H+j], zr[2*H+j], zr[3*H+j] = ig, fg, gg, og
			cr[j] = fg*cPrev[j] + ig*gg
			tr[j] = float32(math.Tanh(float64(cr[j])))
			hr[j] = og * tr[j]
		}
	}
	return z, newH, newC, tc
}

// Forward runs the model over tokens[b][t], predicting tokens[b][t+1] for
// t < T−1, and returns the mean cross-entropy per predicted token. When
// train is true the activations are cached for Backward.
func (m *LSTMLM) Forward(tokens [][]int, train bool) float64 {
	B := len(tokens)
	if B == 0 {
		return 0
	}
	T := len(tokens[0]) - 1 // predictions
	if T < 1 {
		panic("nn: LSTMLM needs sequences of length ≥ 2")
	}
	H := m.Hidden
	wy := tensor.MatFrom(m.Vocab, H, m.Wy)

	if train {
		m.tokens = tokens
		m.xs = make([][]*tensor.Mat, m.Layers)
		m.hs = make([][]*tensor.Mat, m.Layers)
		m.cs = make([][]*tensor.Mat, m.Layers)
		m.gates = make([][]*tensor.Mat, m.Layers)
		m.tanhC = make([][]*tensor.Mat, m.Layers)
		m.dlogits = make([]*tensor.Mat, T)
		for l := 0; l < m.Layers; l++ {
			m.xs[l] = make([]*tensor.Mat, T)
			m.hs[l] = make([]*tensor.Mat, T+1)
			m.cs[l] = make([]*tensor.Mat, T+1)
			m.gates[l] = make([]*tensor.Mat, T)
			m.tanhC[l] = make([]*tensor.Mat, T)
			m.hs[l][0] = tensor.NewMat(B, H)
			m.cs[l][0] = tensor.NewMat(B, H)
		}
	}
	h := make([]*tensor.Mat, m.Layers)
	c := make([]*tensor.Mat, m.Layers)
	for l := range h {
		h[l] = tensor.NewMat(B, H)
		c[l] = tensor.NewMat(B, H)
	}

	var totalCE float64
	for t := 0; t < T; t++ {
		// Embed tokens at position t.
		x := tensor.NewMat(B, m.Embed)
		for b := 0; b < B; b++ {
			tok := tokens[b][t]
			if tok < 0 || tok >= m.Vocab {
				panic(fmt.Sprintf("nn: token %d out of vocab %d", tok, m.Vocab))
			}
			copy(x.Row(b), m.E[tok*m.Embed:(tok+1)*m.Embed])
		}
		// Stack of LSTM layers.
		in := x
		for l := 0; l < m.Layers; l++ {
			z, newH, newC, tc := m.cellForward(l, in, h[l], c[l])
			if train {
				m.xs[l][t] = in
				m.gates[l][t] = z
				m.tanhC[l][t] = tc
				m.hs[l][t+1] = newH
				m.cs[l][t+1] = newC
			}
			h[l], c[l] = newH, newC
			in = newH
		}
		// Output logits and loss against the next token.
		logits := tensor.NewMat(B, m.Vocab)
		tensor.MatMulABT(logits, in, wy)
		tensor.AddRowVec(logits, m.By)
		labels := make([]int, B)
		for b := 0; b < B; b++ {
			labels[b] = tokens[b][t+1]
		}
		ce, dlog := SoftmaxCE(logits, labels)
		totalCE += ce
		if train {
			m.dlogits[t] = dlog
		}
	}
	return totalCE / float64(T)
}

// Backward runs truncated BPTT over the cached sequence, accumulating
// parameter gradients. The loss is the mean CE per token, matching Forward.
func (m *LSTMLM) Backward() { m.BackwardInterleaved(nil) }

// BackwardInterleaved is Backward with gradient-readiness reporting. BPTT
// accumulates every parameter's gradient across all timesteps, so nothing is
// final until the loop reaches t = 0 — but *within* that last timestep the
// stack unwinds top-down, finalizing tensors in reverse flattened order:
// the output projection (Wy, By) right after its t = 0 accumulation, then
// each layer's (Wx, Wh, b) from the top layer down, and the embedding last
// (its gradient is written by layer 0's input backprop). onReady is invoked
// with strictly decreasing offsets lo such that the flattened gradient
// elements [lo, NumParams()) are final, ending with a guaranteed
// onReady(0). nil onReady skips the reporting (plain Backward).
func (m *LSTMLM) BackwardInterleaved(onReady func(lo int)) {
	if m.params == nil {
		m.buildCache()
	}
	B := len(m.tokens)
	T := len(m.dlogits)
	H := m.Hidden
	wy := tensor.MatFrom(m.Vocab, H, m.Wy)
	gwy := tensor.MatFrom(m.Vocab, H, m.GWy)
	scratchWy := tensor.NewMat(m.Vocab, H)

	// Per-layer carried state gradients.
	dh := make([]*tensor.Mat, m.Layers)
	dc := make([]*tensor.Mat, m.Layers)
	for l := range dh {
		dh[l] = tensor.NewMat(B, H)
		dc[l] = tensor.NewMat(B, H)
	}
	invT := float32(1.0 / float64(T))

	for t := T - 1; t >= 0; t-- {
		dlog := m.dlogits[t]
		// Scale: Forward averaged CE over T steps.
		tensor.Scale(dlog.Data, invT)
		top := m.Layers - 1
		tensor.MatMulATB(scratchWy, dlog, m.hs[top][t+1])
		tensor.Add(gwy.Data, scratchWy.Data)
		for b := 0; b < B; b++ {
			row := dlog.Row(b)
			for v, g := range row {
				m.GBy[v] += g
			}
		}
		dhOut := tensor.NewMat(B, H)
		tensor.MatMul(dhOut, dlog, wy)
		tensor.Add(dh[top].Data, dhOut.Data)
		if t == 0 && onReady != nil {
			// No later write touches GWy/GBy: the projection span is final.
			onReady(m.paramOff[1+3*m.Layers])
		}

		// Backward through the stack, top to bottom; dx of layer l feeds
		// dh of layer l−1 (same timestep).
		for l := top; l >= 0; l-- {
			in := m.layerIn(l)
			wx := tensor.MatFrom(4*H, in, m.Wx[l])
			wh := tensor.MatFrom(4*H, H, m.Wh[l])
			dz := tensor.NewMat(B, 4*H)
			newDh := tensor.NewMat(B, H)
			newDc := tensor.NewMat(B, H)
			for b := 0; b < B; b++ {
				zr := m.gates[l][t].Row(b) // [i f g o] post-activation
				tr := m.tanhC[l][t].Row(b)
				cPrev := m.cs[l][t].Row(b)
				dhr, dcr := dh[l].Row(b), dc[l].Row(b)
				dzr := dz.Row(b)
				ndc := newDc.Row(b)
				for j := 0; j < H; j++ {
					ig, fg, gg, og := zr[j], zr[H+j], zr[2*H+j], zr[3*H+j]
					dcTot := dcr[j] + dhr[j]*og*(1-tr[j]*tr[j])
					dzr[3*H+j] = dhr[j] * tr[j] * og * (1 - og) // do
					dzr[j] = dcTot * gg * ig * (1 - ig)         // di
					dzr[H+j] = dcTot * cPrev[j] * fg * (1 - fg) // df
					dzr[2*H+j] = dcTot * ig * (1 - gg*gg)       // dg
					ndc[j] = dcTot * fg
				}
			}
			// Parameter grads.
			scratchWx := tensor.NewMat(4*H, in)
			tensor.MatMulATB(scratchWx, dz, m.xs[l][t])
			tensor.Add(m.GWx[l], scratchWx.Data)
			scratchWh := tensor.NewMat(4*H, H)
			tensor.MatMulATB(scratchWh, dz, m.hs[l][t])
			tensor.Add(m.GWh[l], scratchWh.Data)
			tensor.ColSums(m.GB[l], dz)
			// dx: to the embedding (l=0) or to the layer below's dh.
			dx := tensor.NewMat(B, in)
			tensor.MatMul(dx, dz, wx)
			if l == 0 {
				for b := 0; b < B; b++ {
					tok := m.tokens[b][t]
					tensor.Add(m.GE[tok*m.Embed:(tok+1)*m.Embed], dx.Row(b))
				}
			} else {
				tensor.Add(dh[l-1].Data, dx.Data)
			}
			// dh_{t-1}, dc_{t-1} for this layer.
			tensor.MatMul(newDh, dz, wh)
			dh[l], dc[l] = newDh, newDc
			if t == 0 && onReady != nil {
				if l == 0 {
					// Layer 0's input backprop wrote the last embedding
					// gradients, so the whole vector is final.
					onReady(0)
				} else {
					onReady(m.paramOff[1+3*l])
				}
			}
		}
	}
	// Release caches.
	m.xs, m.hs, m.cs, m.gates, m.tanhC, m.dlogits, m.tokens = nil, nil, nil, nil, nil, nil, nil
}
