package nn

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Checkpoint format: a small binary container for flattened model weights.
//
//	magic "A2CK" | version u32 | tensor count u32 |
//	per tensor: name length u32, name bytes, element count u32, f32 data |
//	crc32 (IEEE) of everything before it
//
// The format stores tensors by name so a checkpoint survives refactors that
// keep layer names stable, and the CRC turns truncated or corrupted files
// into clean errors instead of silently wrong weights.

const ckMagic = "A2CK"
const ckVersion = 1

// SaveParams writes every parameter tensor of the provided set to w.
func SaveParams(w io.Writer, params []Param) error {
	cw := &crcWriter{w: w}
	if _, err := cw.Write([]byte(ckMagic)); err != nil {
		return err
	}
	if err := writeU32(cw, ckVersion); err != nil {
		return err
	}
	if err := writeU32(cw, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeU32(cw, uint32(len(p.Name))); err != nil {
			return err
		}
		if _, err := cw.Write([]byte(p.Name)); err != nil {
			return err
		}
		if err := writeU32(cw, uint32(len(p.W))); err != nil {
			return err
		}
		buf := make([]byte, 4*len(p.W))
		for i, v := range p.W {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := cw.Write(buf); err != nil {
			return err
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.sum)
	_, err := w.Write(tail[:])
	return err
}

// LoadParams reads a checkpoint and copies each stored tensor into the
// parameter with the matching name. Every stored tensor must find a match
// with an identical element count; parameters absent from the checkpoint
// are left untouched and reported.
func LoadParams(r io.Reader, params []Param) (loaded []string, err error) {
	cr := &crcReader{r: r}
	head := make([]byte, 4)
	if _, err := io.ReadFull(cr, head); err != nil {
		return nil, fmt.Errorf("nn: checkpoint header: %w", err)
	}
	if string(head) != ckMagic {
		return nil, fmt.Errorf("nn: not a checkpoint (magic %q)", head)
	}
	ver, err := readU32(cr)
	if err != nil {
		return nil, err
	}
	if ver != ckVersion {
		return nil, fmt.Errorf("nn: unsupported checkpoint version %d", ver)
	}
	count, err := readU32(cr)
	if err != nil {
		return nil, err
	}
	byName := map[string]Param{}
	for _, p := range params {
		byName[p.Name] = p
	}
	for i := uint32(0); i < count; i++ {
		nameLen, err := readU32(cr)
		if err != nil {
			return nil, err
		}
		if nameLen > 1<<16 {
			return nil, fmt.Errorf("nn: corrupt checkpoint: name length %d", nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(cr, nameBuf); err != nil {
			return nil, err
		}
		name := string(nameBuf)
		elems, err := readU32(cr)
		if err != nil {
			return nil, err
		}
		// Validate against the model BEFORE allocating: a corrupted header
		// could otherwise demand a multi-gigabyte buffer.
		p, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("nn: checkpoint tensor %q has no matching parameter", name)
		}
		if len(p.W) != int(elems) {
			return nil, fmt.Errorf("nn: tensor %q has %d elements, model expects %d", name, elems, len(p.W))
		}
		buf := make([]byte, 4*elems)
		if _, err := io.ReadFull(cr, buf); err != nil {
			return nil, fmt.Errorf("nn: checkpoint tensor %q: %w", name, err)
		}
		for j := range p.W {
			p.W[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		loaded = append(loaded, name)
	}
	want := cr.sum
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("nn: checkpoint checksum missing: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("nn: checkpoint checksum mismatch (file %08x, computed %08x)", got, want)
	}
	return loaded, nil
}

type crcWriter struct {
	w   io.Writer
	sum uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	sum uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p[:n])
	return n, err
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}
