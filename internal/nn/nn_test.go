package nn

import (
	"math"
	"strings"
	"testing"

	"a2sgd/internal/tensor"
)

func TestNetworkPlumbing(t *testing.T) {
	rng := tensor.NewRNG(1)
	net := NewNetwork(
		NewLinear(rng, 4, 3), NewReLU(),
		NewLinear(rng, 3, 2),
	)
	wantParams := 4*3 + 3 + 3*2 + 2
	if net.NumParams() != wantParams {
		t.Fatalf("NumParams = %d, want %d", net.NumParams(), wantParams)
	}
	// Gather → perturb → scatter round trip.
	w := make([]float32, wantParams)
	net.GatherParams(w)
	for i := range w {
		w[i] = float32(i)
	}
	net.ScatterParams(w)
	w2 := make([]float32, wantParams)
	net.GatherParams(w2)
	for i := range w2 {
		if w2[i] != float32(i) {
			t.Fatal("param round trip")
		}
	}
	// Gradient plumbing with length validation.
	g := make([]float32, wantParams)
	net.ScatterGrads(g)
	net.GatherGrads(g)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("GatherGrads with wrong length should panic")
			}
		}()
		net.GatherGrads(make([]float32, wantParams+1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ScatterGrads with wrong length should panic")
			}
		}()
		net.ScatterGrads(make([]float32, wantParams-1))
	}()
	// Summary mentions every layer and the total.
	s := net.Summary()
	for _, frag := range []string{"Linear(4→3)", "ReLU", "Linear(3→2)", "TOTAL"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary missing %q:\n%s", frag, s)
		}
	}
}

func TestNetworkForwardBackwardShape(t *testing.T) {
	rng := tensor.NewRNG(2)
	net := NewNetwork(NewLinear(rng, 5, 4), NewTanh(), NewLinear(rng, 4, 3))
	x := tensor.NewMat(7, 5)
	rng.NormVec(x.Data, 0, 1)
	out := net.Forward(x, true)
	if out.Rows != 7 || out.Cols != 3 {
		t.Fatalf("forward shape %dx%d", out.Rows, out.Cols)
	}
	dout := tensor.NewMat(7, 3)
	rng.NormVec(dout.Data, 0, 1)
	dx := net.Backward(dout)
	if dx.Rows != 7 || dx.Cols != 5 {
		t.Fatalf("backward shape %dx%d", dx.Rows, dx.Cols)
	}
	net.ZeroGrads()
	for _, p := range net.Params() {
		for _, v := range p.G {
			if v != 0 {
				t.Fatal("ZeroGrads failed")
			}
		}
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := tensor.NewRNG(3)
	d := NewDropout(rng, 0.5)
	x := tensor.NewMat(4, 100)
	tensor.Fill(x.Data, 1)
	// Eval: identity (same object).
	if out := d.Forward(x, false); out != x {
		t.Error("eval-mode dropout must be identity")
	}
	// Train: ~half zeroed, survivors scaled by 2.
	out := d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected value %v", v)
		}
	}
	if zeros < 100 || zeros > 300 {
		t.Errorf("dropped %d of 400", zeros)
	}
	// Backward applies the same mask.
	dout := tensor.NewMat(4, 100)
	tensor.Fill(dout.Data, 1)
	dx := d.Backward(dout)
	for i, v := range dx.Data {
		if (out.Data[i] == 0) != (v == 0) {
			t.Fatal("backward mask mismatch")
		}
		if v != 0 && v != 2 {
			t.Fatalf("backward scale %v", v)
		}
	}
	// p=0 is identity in both directions.
	d0 := NewDropout(rng, 0)
	if d0.Forward(x, true) != x || d0.Backward(dout) != dout {
		t.Error("p=0 must be pass-through")
	}
	// Invalid p panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("p=1 should panic")
			}
		}()
		NewDropout(rng, 1)
	}()
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	in := Shape{C: 1, H: 2, W: 2}
	b := NewBatchNorm2D(in)
	rng := tensor.NewRNG(5)
	// Train on shifted data so the running stats move.
	for i := 0; i < 50; i++ {
		x := tensor.NewMat(8, in.Size())
		rng.NormVec(x.Data, 5, 2)
		b.Forward(x, true)
	}
	if math.Abs(float64(b.RunMean[0])-5) > 0.5 {
		t.Errorf("running mean %v, want ≈5", b.RunMean[0])
	}
	if math.Abs(float64(b.RunVar[0])-4) > 1.0 {
		t.Errorf("running var %v, want ≈4", b.RunVar[0])
	}
	// Eval normalizes with the running stats: a batch at the training
	// distribution maps to ≈ N(0,1).
	x := tensor.NewMat(64, in.Size())
	rng.NormVec(x.Data, 5, 2)
	out := b.Forward(x, false)
	var sum, sq float64
	for _, v := range out.Data {
		sum += float64(v)
		sq += float64(v) * float64(v)
	}
	n := float64(len(out.Data))
	mean := sum / n
	if math.Abs(mean) > 0.2 {
		t.Errorf("eval mean %v", mean)
	}
	if v := sq/n - mean*mean; math.Abs(v-1) > 0.3 {
		t.Errorf("eval var %v", v)
	}
}

func TestResidualShapeMismatchPanics(t *testing.T) {
	rng := tensor.NewRNG(7)
	r := NewResidual("bad", NewLinear(rng, 4, 3)) // 4 → 3 cannot shortcut
	x := tensor.NewMat(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Forward(x, true)
}

func TestSoftmaxCEValidation(t *testing.T) {
	logits := tensor.NewMat(2, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("label count mismatch should panic")
			}
		}()
		SoftmaxCE(logits, []int{0})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("label out of range should panic")
			}
		}()
		SoftmaxCE(logits, []int{0, 5})
	}()
	// Uniform logits → loss = ln(3).
	loss, _ := SoftmaxCE(logits, []int{0, 1})
	if math.Abs(loss-math.Log(3)) > 1e-6 {
		t.Errorf("uniform loss %v, want ln 3", loss)
	}
}

func TestSoftmaxCEStability(t *testing.T) {
	// Huge logits must not overflow.
	logits := tensor.MatFrom(1, 3, []float32{1e4, 1e4 - 5, -1e4})
	loss, d := SoftmaxCE(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss %v", loss)
	}
	if tensor.HasNaNOrInf(d.Data) {
		t.Fatal("gradient has NaN/Inf")
	}
}

func TestAccuracyAndPerplexity(t *testing.T) {
	logits := tensor.MatFrom(3, 2, []float32{1, 0, 0, 1, 2, 1})
	if got := Accuracy(logits, []int{0, 1, 0}); got != 1 {
		t.Errorf("accuracy %v", got)
	}
	if got := Accuracy(logits, []int{1, 0, 1}); got != 0 {
		t.Errorf("accuracy %v", got)
	}
	if Accuracy(tensor.NewMat(0, 2), nil) != 0 {
		t.Error("empty accuracy")
	}
	if math.Abs(Perplexity(math.Log(50))-50) > 1e-9 {
		t.Error("perplexity")
	}
}

func TestLinearShapeValidation(t *testing.T) {
	l := NewLinear(tensor.NewRNG(1), 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input width should panic")
		}
	}()
	l.Forward(tensor.NewMat(1, 5), false)
}

func TestConv2DShapeValidation(t *testing.T) {
	c := NewConv2D(tensor.NewRNG(1), Shape{C: 1, H: 4, W: 4}, 2, 3, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input size should panic")
		}
	}()
	c.Forward(tensor.NewMat(1, 17), false)
}

func TestMaxPoolIndivisiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMaxPool2D(Shape{C: 1, H: 5, W: 4}, 2)
}

func TestLSTMLMValidation(t *testing.T) {
	m := NewLSTMLM(tensor.NewRNG(1), 8, 4, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("short sequence should panic")
			}
		}()
		m.Forward([][]int{{1}}, false)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-vocab token should panic")
			}
		}()
		m.Forward([][]int{{1, 99}}, false)
	}()
	if m.Forward(nil, false) != 0 {
		t.Error("empty batch loss should be 0")
	}
}

func TestInitializers(t *testing.T) {
	rng := tensor.NewRNG(9)
	w := make([]float32, 10000)
	InitHe(rng, w, 100)
	var sq float64
	for _, v := range w {
		sq += float64(v) * float64(v)
	}
	std := math.Sqrt(sq / float64(len(w)))
	if math.Abs(std-math.Sqrt(2.0/100)) > 0.01 {
		t.Errorf("He std %v", std)
	}
	InitXavier(rng, w, 50, 50)
	sq = 0
	for _, v := range w {
		sq += float64(v) * float64(v)
	}
	std = math.Sqrt(sq / float64(len(w)))
	if math.Abs(std-math.Sqrt(2.0/100)) > 0.01 {
		t.Errorf("Xavier std %v", std)
	}
	InitUniform(rng, w, 0.5)
	for _, v := range w {
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}

func TestConvOutShape(t *testing.T) {
	c := NewConv2D(tensor.NewRNG(1), Shape{C: 3, H: 32, W: 32}, 16, 3, 1, 1)
	if got := c.OutShape(); got != (Shape{C: 16, H: 32, W: 32}) {
		t.Errorf("same-pad conv shape %+v", got)
	}
	c2 := NewConv2D(tensor.NewRNG(1), Shape{C: 3, H: 32, W: 32}, 16, 3, 2, 1)
	if got := c2.OutShape(); got != (Shape{C: 16, H: 16, W: 16}) {
		t.Errorf("strided conv shape %+v", got)
	}
	if (Shape{C: 2, H: 3, W: 4}).Size() != 24 {
		t.Error("shape size")
	}
}

// A known convolution: identity 1×1 kernel must reproduce the input.
func TestConv2DIdentityKernel(t *testing.T) {
	in := Shape{C: 1, H: 3, W: 3}
	c := NewConv2D(tensor.NewRNG(1), in, 1, 1, 1, 0)
	c.W[0] = 1
	c.B[0] = 0
	x := tensor.NewMat(1, 9)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	out := c.Forward(x, false)
	for i := range x.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatalf("identity conv differs at %d: %v", i, out.Data[i])
		}
	}
}

// A known 3×3 sum kernel on a constant image: interior outputs = 9, corners
// = 4 (zero padding).
func TestConv2DSumKernel(t *testing.T) {
	in := Shape{C: 1, H: 3, W: 3}
	c := NewConv2D(tensor.NewRNG(1), in, 1, 3, 1, 1)
	for i := range c.W {
		c.W[i] = 1
	}
	c.B[0] = 0
	x := tensor.NewMat(1, 9)
	tensor.Fill(x.Data, 1)
	out := c.Forward(x, false)
	want := []float32{4, 6, 4, 6, 9, 6, 4, 6, 4}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("sum conv [%d] = %v want %v", i, out.Data[i], want[i])
		}
	}
}
