package nn

import (
	"fmt"
	"math"

	"a2sgd/internal/tensor"
)

// AvgPool2D is a k×k average pool with stride k (non-overlapping) — the
// pooling variant some VGG deployments use in place of max pooling.
type AvgPool2D struct {
	In Shape
	K  int
}

// NewAvgPool2D builds the layer; In.H and In.W must be divisible by k.
func NewAvgPool2D(in Shape, k int) *AvgPool2D {
	if in.H%k != 0 || in.W%k != 0 {
		panic(fmt.Sprintf("nn: avgpool %d does not divide %dx%d", k, in.H, in.W))
	}
	return &AvgPool2D{In: in, K: k}
}

// OutShape returns the pooled volume shape.
func (a *AvgPool2D) OutShape() Shape {
	return Shape{C: a.In.C, H: a.In.H / a.K, W: a.In.W / a.K}
}

// Name implements Layer.
func (a *AvgPool2D) Name() string { return fmt.Sprintf("AvgPool2D(k%d)", a.K) }

// Params implements Layer.
func (a *AvgPool2D) Params() []Param { return nil }

// Forward implements Layer.
func (a *AvgPool2D) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	out := a.OutShape()
	res := tensor.NewMat(x.Rows, out.Size())
	inv := 1 / float32(a.K*a.K)
	for s := 0; s < x.Rows; s++ {
		in := x.Row(s)
		dst := res.Row(s)
		for ch := 0; ch < a.In.C; ch++ {
			chIn := ch * a.In.H * a.In.W
			chOut := ch * out.H * out.W
			for oy := 0; oy < out.H; oy++ {
				for ox := 0; ox < out.W; ox++ {
					var sum float32
					for ky := 0; ky < a.K; ky++ {
						for kx := 0; kx < a.K; kx++ {
							sum += in[chIn+(oy*a.K+ky)*a.In.W+ox*a.K+kx]
						}
					}
					dst[chOut+oy*out.W+ox] = sum * inv
				}
			}
		}
	}
	return res
}

// Backward implements Layer: the gradient spreads uniformly over the window.
func (a *AvgPool2D) Backward(dout *tensor.Mat) *tensor.Mat {
	out := a.OutShape()
	dx := tensor.NewMat(dout.Rows, a.In.Size())
	inv := 1 / float32(a.K*a.K)
	for s := 0; s < dout.Rows; s++ {
		src := dout.Row(s)
		dst := dx.Row(s)
		for ch := 0; ch < a.In.C; ch++ {
			chIn := ch * a.In.H * a.In.W
			chOut := ch * out.H * out.W
			for oy := 0; oy < out.H; oy++ {
				for ox := 0; ox < out.W; ox++ {
					g := src[chOut+oy*out.W+ox] * inv
					for ky := 0; ky < a.K; ky++ {
						for kx := 0; kx < a.K; kx++ {
							dst[chIn+(oy*a.K+ky)*a.In.W+ox*a.K+kx] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// Sigmoid is the logistic activation layer.
type Sigmoid struct {
	out *tensor.Mat
}

// NewSigmoid builds a Sigmoid layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "Sigmoid" }

// Params implements Layer.
func (s *Sigmoid) Params() []Param { return nil }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	out := tensor.NewMat(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	if train {
		s.out = out
	}
	return out
}

// Backward implements Layer: dx = dout · y(1−y).
func (s *Sigmoid) Backward(dout *tensor.Mat) *tensor.Mat {
	dx := tensor.NewMat(dout.Rows, dout.Cols)
	for i, v := range dout.Data {
		y := s.out.Data[i]
		dx.Data[i] = v * y * (1 - y)
	}
	return dx
}
