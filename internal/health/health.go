package health

import (
	"sort"
	"sync"
	"time"

	"a2sgd/internal/netsim"
)

// Options tunes the monitor's windows and classification gates. The zero
// value selects the defaults.
type Options struct {
	// StepWindow is the per-rank ring size for step beacons (default 32).
	StepWindow int
	// LinkWindow is the per-directed-link ring size for send samples
	// (default 32).
	LinkWindow int
	// DegradeFactor is the ratio gate: a link is slow only if its α exceeds
	// the global median α by this factor (default 1.6).
	DegradeFactor float64
	// MADGate is the robust outlier gate: a slow link's α must also exceed
	// the global median by this many median absolute deviations (default 4).
	MADGate float64
	// MinGap is an absolute floor on the α excess of a slow link, so
	// sub-microsecond scheduler noise on a fast fabric can never trip the
	// ratio gates (default 5µs).
	MinGap time.Duration
	// MinLinkSamples is the sample count a link needs before its estimate
	// participates in classification (default 4).
	MinLinkSamples int
	// MinSteps is the step-beacon count the fastest rank must reach before a
	// silent rank can be declared dead (default 2).
	MinSteps int
}

func (o Options) withDefaults() Options {
	if o.StepWindow <= 0 {
		o.StepWindow = 32
	}
	if o.LinkWindow <= 0 {
		o.LinkWindow = 32
	}
	if o.DegradeFactor <= 1 {
		o.DegradeFactor = 1.6
	}
	if o.MADGate <= 0 {
		o.MADGate = 4
	}
	if o.MinGap <= 0 {
		o.MinGap = 5 * time.Microsecond
	}
	if o.MinLinkSamples <= 0 {
		o.MinLinkSamples = 4
	}
	if o.MinSteps <= 0 {
		o.MinSteps = 2
	}
	return o
}

// State classifies one rank's health.
type State int

// Rank health states.
const (
	// Healthy ranks keep pace with the group.
	Healthy State = iota
	// Degraded ranks are alive but slow: the rank is the unique common
	// endpoint of the group's slow links.
	Degraded
	// Dead ranks stopped reporting step beacons while the group progressed.
	Dead
)

func (s State) String() string {
	switch s {
	case Degraded:
		return "degraded"
	case Dead:
		return "dead"
	}
	return "healthy"
}

// rankWindow is one rank's step-beacon rings.
type rankWindow struct {
	mu             sync.Mutex
	enc, syn, step []float64
	n              int
	op             []float64
	opN            int
}

// linkWindow is one directed link's send-sample rings (payload bytes and
// observed wall seconds per send, as timed by the sender).
type linkWindow struct {
	mu    sync.Mutex
	bytes []float64
	sec   []float64
	n     int
}

// Monitor collects one worker group's timing beacons and classifies its
// ranks. All state is preallocated at construction: the recorders write into
// fixed rings under per-window mutexes, so the instrumented training step
// stays allocation-free. One Monitor serves exactly one fixed-world training
// segment; elastic supervisors build a fresh one per membership epoch.
type Monitor struct {
	world int
	opts  Options
	ranks []rankWindow
	links []linkWindow // [src*world+dst], sender-side samples
	recs  []Recorder
}

// NewMonitor builds a monitor for a world-rank group.
func NewMonitor(world int, opts Options) *Monitor {
	if world < 1 {
		world = 1
	}
	o := opts.withDefaults()
	m := &Monitor{
		world: world,
		opts:  o,
		ranks: make([]rankWindow, world),
		links: make([]linkWindow, world*world),
		recs:  make([]Recorder, world),
	}
	for r := range m.ranks {
		w := &m.ranks[r]
		w.enc = make([]float64, o.StepWindow)
		w.syn = make([]float64, o.StepWindow)
		w.step = make([]float64, o.StepWindow)
		w.op = make([]float64, o.StepWindow)
		m.recs[r] = Recorder{m: m, rank: r}
	}
	for i := range m.links {
		lw := &m.links[i]
		lw.bytes = make([]float64, o.LinkWindow)
		lw.sec = make([]float64, o.LinkWindow)
	}
	return m
}

// World returns the rank count the monitor was built for.
func (m *Monitor) World() int { return m.world }

// Recorder returns rank's preallocated beacon recorder. The returned pointer
// is stable, so method values built from it once at setup never allocate
// again.
func (m *Monitor) Recorder(rank int) *Recorder {
	if rank < 0 || rank >= m.world {
		return nil
	}
	return &m.recs[rank]
}

// Recorder is one rank's write handle into the monitor: ring writes under a
// short mutex, no allocation, safe for the rank's worker goroutine and its
// progress workers concurrently.
type Recorder struct {
	m    *Monitor
	rank int
}

// RecordStep records one training step's encode, post-to-WaitAll sync and
// total wall seconds.
func (r *Recorder) RecordStep(encSec, syncSec, stepSec float64) {
	w := &r.m.ranks[r.rank]
	w.mu.Lock()
	i := w.n % len(w.step)
	w.enc[i], w.syn[i], w.step[i] = encSec, syncSec, stepSec
	w.n++
	w.mu.Unlock()
}

// ObserveOp records the wall seconds of one posted nonblocking operation
// (a per-bucket exchange on the comm progress workers).
func (r *Recorder) ObserveOp(sec float64) {
	w := &r.m.ranks[r.rank]
	w.mu.Lock()
	i := w.opN % len(w.op)
	w.op[i] = sec
	w.opN++
	w.mu.Unlock()
}

// ObserveSend records one point-to-point send: nBytes of payload to global
// rank `to` took sec wall seconds on the sending side. Out-of-range and
// self sends are dropped.
func (r *Recorder) ObserveSend(to, nBytes int, sec float64) {
	m := r.m
	if to < 0 || to >= m.world || to == r.rank {
		return
	}
	lw := &m.links[r.rank*m.world+to]
	lw.mu.Lock()
	i := lw.n % len(lw.bytes)
	lw.bytes[i] = float64(nBytes)
	lw.sec[i] = sec
	lw.n++
	lw.mu.Unlock()
}

// Class is one rank's classification.
type Class struct {
	Rank  int
	State State
	// Steps is the number of step beacons the rank recorded.
	Steps int
	// StepMedianSec and OpMedianSec are the rank's median step and
	// per-operation wall times over the window.
	StepMedianSec float64
	OpMedianSec   float64
	// SlowLinks counts the slow links touching this rank; Ratio is the worst
	// slow link's α over the group median α (0 when none).
	SlowLinks int
	Ratio     float64
}

// linkEstimate is one directed link's robust α–β fit.
type linkEstimate struct {
	src, dst    int
	alpha, beta float64
	samples     int
}

// median sorts xs in place and returns its median (0 for empty input).
func median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sort.Float64s(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// fitAlphaBeta is a Theil–Sen α–β fit over (bytes, sec) samples: β is the
// median of pairwise slopes across distinct payload sizes, α the median
// residual, both clamped non-negative. Medians make the fit robust to the
// occasional send that blocked on an unready receiver.
func fitAlphaBeta(bytes, sec []float64) (alpha, beta float64) {
	var slopes []float64
	for i := 0; i < len(sec); i++ {
		for j := i + 1; j < len(sec); j++ {
			if db := bytes[j] - bytes[i]; db != 0 {
				slopes = append(slopes, (sec[j]-sec[i])/db)
			}
		}
	}
	if len(slopes) > 0 {
		beta = median(slopes)
		if beta < 0 {
			beta = 0
		}
	}
	res := make([]float64, len(sec))
	for i := range sec {
		res[i] = sec[i] - beta*bytes[i]
	}
	alpha = median(res)
	if alpha < 0 {
		alpha = 0
	}
	return alpha, beta
}

// linkEstimates fits every directed link with at least MinLinkSamples
// samples. Called off the hot path; it snapshots each ring under its mutex.
func (m *Monitor) linkEstimates() []linkEstimate {
	out := make([]linkEstimate, 0, m.world*(m.world-1))
	for s := 0; s < m.world; s++ {
		for d := 0; d < m.world; d++ {
			if s == d {
				continue
			}
			lw := &m.links[s*m.world+d]
			lw.mu.Lock()
			n := lw.n
			if n > len(lw.bytes) {
				n = len(lw.bytes)
			}
			if n < m.opts.MinLinkSamples {
				lw.mu.Unlock()
				continue
			}
			b := append([]float64(nil), lw.bytes[:n]...)
			t := append([]float64(nil), lw.sec[:n]...)
			lw.mu.Unlock()
			a, bt := fitAlphaBeta(b, t)
			out = append(out, linkEstimate{src: s, dst: d, alpha: a, beta: bt, samples: n})
		}
	}
	return out
}

// Classify evaluates the group. The straggler-localization logic leans on how
// a slow host manifests at the transport: occupancy of every link touching it
// (sends both to and from the rank slow down), while the synchronous
// collectives spread the resulting stall evenly across every rank's step
// time. Per-rank wall clocks therefore cannot name the culprit — per-link α
// outliers can. A rank is Degraded when it is the unique common endpoint of
// the slow-link set: at least two slow links touch it and strictly more than
// touch any other rank (a two-rank world cannot be localized this way — both
// endpoints tie). A rank is Dead when it recorded no step beacons while the
// fastest rank recorded at least MinSteps.
func (m *Monitor) Classify() []Class {
	o := m.opts
	out := make([]Class, m.world)
	steps := make([]int, m.world)
	maxSteps := 0
	for r := 0; r < m.world; r++ {
		w := &m.ranks[r]
		w.mu.Lock()
		n := w.n
		if n > len(w.step) {
			n = len(w.step)
		}
		st := append([]float64(nil), w.step[:n]...)
		opN := w.opN
		if opN > len(w.op) {
			opN = len(w.op)
		}
		ops := append([]float64(nil), w.op[:opN]...)
		steps[r] = w.n
		w.mu.Unlock()
		out[r] = Class{Rank: r, Steps: steps[r], StepMedianSec: median(st), OpMedianSec: median(ops)}
		if steps[r] > maxSteps {
			maxSteps = steps[r]
		}
	}

	ests := m.linkEstimates()
	alphas := make([]float64, len(ests))
	for i, e := range ests {
		alphas[i] = e.alpha
	}
	// Baseline: the lower quartile of per-link αs, not the median — one
	// straggler contaminates 2/world of all directed links (half of them at
	// world 4), so the median can sit inside the slow cluster while the
	// lower quartile stays in the fast one. The spread gate is a MAD over
	// the lower half only (the fast cluster's own noise scale) for the same
	// reason.
	sorted := append([]float64(nil), alphas...)
	sort.Float64s(sorted)
	var gm, mad float64
	if n := len(sorted); n > 0 {
		gm = sorted[(n-1)/4]
		lower := sorted[:(n+1)/2]
		devs := make([]float64, len(lower))
		for i, a := range lower {
			if a > gm {
				devs[i] = a - gm
			} else {
				devs[i] = gm - a
			}
		}
		mad = median(devs)
	}
	slow := func(a float64) bool {
		return a > o.DegradeFactor*gm && a-gm > o.MADGate*mad && a-gm > o.MinGap.Seconds()
	}
	for _, e := range ests {
		if !slow(e.alpha) {
			continue
		}
		ratio := e.alpha / gm
		if gm <= 0 {
			ratio = 0
		}
		for _, r := range [2]int{e.src, e.dst} {
			out[r].SlowLinks++
			if ratio > out[r].Ratio {
				out[r].Ratio = ratio
			}
		}
	}

	// Unique common endpoint: the single rank touched by strictly the most
	// slow links, with at least two of them.
	best, second := -1, 0
	for r := range out {
		switch {
		case best < 0 || out[r].SlowLinks > out[best].SlowLinks:
			if best >= 0 && out[best].SlowLinks > second {
				second = out[best].SlowLinks
			}
			best = r
		case out[r].SlowLinks > second:
			second = out[r].SlowLinks
		}
	}
	if best >= 0 && out[best].SlowLinks >= 2 && out[best].SlowLinks > second {
		out[best].State = Degraded
	}
	for r := range out {
		if maxSteps >= o.MinSteps && steps[r] == 0 {
			out[r].State = Dead
		}
	}
	return out
}

// MeasuredFabric condenses the link estimates into a flat α–β fabric the
// planner can price on. Synchronous collectives are bound by their slowest
// link, so the estimate takes the worst per-link α and β rather than a mean.
// ok is false until at least one link has enough samples.
func (m *Monitor) MeasuredFabric(name string) (f netsim.Fabric, ok bool) {
	var maxA, maxB float64
	for _, e := range m.linkEstimates() {
		ok = true
		if e.alpha > maxA {
			maxA = e.alpha
		}
		if e.beta > maxB {
			maxB = e.beta
		}
	}
	if !ok {
		return netsim.Fabric{}, false
	}
	return netsim.Measured(name, maxA, maxB), true
}

// DriftRefBytes is the bandwidth-regime reference message size Drift
// compares fabrics at: large enough that β matters, small enough that α is
// not lost — the typical compressed-bucket payload.
const DriftRefBytes = 8192

// Drift returns a conservative ≥1 divergence figure between the measured and
// modelled fabric, with 1 meaning the measurements match the model. It is
// the minimum of two worst-direction cost ratios: the pure-latency regime
// (α alone, a zero-byte message) and the bandwidth regime (a DriftRefBytes
// point-to-point message). A real fabric shift — a degraded NIC, a congested
// switch — multiplies whole send times and so moves both regimes together,
// while noise in the per-byte β fit alone (short runs fit β from few samples
// and can clamp it to zero) only moves the large-message figure. Taking the
// minimum keeps β noise from faking drift without hiding genuine whole-link
// slowdowns.
func Drift(measured, model netsim.Fabric) float64 {
	lat := ratioAt(measured, model, 0)
	bw := ratioAt(measured, model, DriftRefBytes)
	if lat < bw {
		return lat
	}
	return bw
}

func ratioAt(measured, model netsim.Fabric, bytes int64) float64 {
	a := measured.PointToPoint(bytes)
	b := model.PointToPoint(bytes)
	if a <= 0 || b <= 0 {
		return 1
	}
	if a > b {
		return a / b
	}
	return b / a
}
