package health

import (
	"testing"
	"time"

	"a2sgd/internal/netsim"
)

// fill feeds every directed link of a world-w monitor four distinct-size
// samples priced at alpha + beta*bytes, with links touching each rank in
// slowRanks priced at slowAlpha instead.
func fill(m *Monitor, w int, alpha, beta, slowAlpha float64, slowRanks ...int) {
	slow := map[int]bool{}
	for _, r := range slowRanks {
		slow[r] = true
	}
	for s := 0; s < w; s++ {
		rec := m.Recorder(s)
		for d := 0; d < w; d++ {
			if s == d {
				continue
			}
			a := alpha
			if slow[s] || slow[d] {
				a = slowAlpha
			}
			for _, n := range []int{1000, 2000, 4000, 8000} {
				rec.ObserveSend(d, n, a+beta*float64(n))
			}
		}
	}
}

func TestClassifyLocalizesDegradedRank(t *testing.T) {
	const w = 4
	m := NewMonitor(w, Options{})
	fill(m, w, 2e-6, 1e-9, 400e-6, 2)
	for r := 0; r < w; r++ {
		for i := 0; i < 3; i++ {
			m.Recorder(r).RecordStep(1e-4, 2e-4, 1e-3)
		}
	}
	cls := m.Classify()
	for r, cl := range cls {
		want := Healthy
		if r == 2 {
			want = Degraded
		}
		if cl.State != want {
			t.Errorf("rank %d: state %v, want %v (slow links %d, ratio %.1f)", r, cl.State, want, cl.SlowLinks, cl.Ratio)
		}
	}
	if cls[2].SlowLinks < 2 {
		t.Errorf("degraded rank saw %d slow links, want >= 2", cls[2].SlowLinks)
	}
	if cls[2].Ratio < 10 {
		t.Errorf("degraded rank ratio %.1f, want a large outlier", cls[2].Ratio)
	}
}

func TestClassifyHealthyWhenUniform(t *testing.T) {
	const w = 4
	m := NewMonitor(w, Options{})
	fill(m, w, 2e-6, 1e-9, 2e-6)
	for _, cl := range m.Classify() {
		if cl.State != Healthy {
			t.Errorf("rank %d: state %v on a uniform fabric", cl.Rank, cl.State)
		}
	}
}

func TestClassifyNoiseBelowMinGapIsHealthy(t *testing.T) {
	// A 3x α outlier that is still tiny in absolute terms (sub-µs) must not
	// trip the ladder: MinGap floors the required excess.
	const w = 4
	m := NewMonitor(w, Options{})
	fill(m, w, 100e-9, 1e-12, 300e-9, 1)
	for _, cl := range m.Classify() {
		if cl.State != Healthy {
			t.Errorf("rank %d: state %v from sub-MinGap noise", cl.Rank, cl.State)
		}
	}
}

func TestClassifyDeadRank(t *testing.T) {
	const w = 3
	m := NewMonitor(w, Options{})
	for r := 0; r < w; r++ {
		if r == 1 {
			continue
		}
		for i := 0; i < 4; i++ {
			m.Recorder(r).RecordStep(1e-4, 2e-4, 1e-3)
		}
	}
	cls := m.Classify()
	if cls[1].State != Dead {
		t.Errorf("silent rank state %v, want Dead", cls[1].State)
	}
	if cls[0].State != Healthy || cls[2].State != Healthy {
		t.Errorf("progressing ranks classified %v/%v, want Healthy", cls[0].State, cls[2].State)
	}
}

func TestMeasuredFabricTakesWorstLink(t *testing.T) {
	const w = 3
	m := NewMonitor(w, Options{})
	if _, ok := m.MeasuredFabric("m"); ok {
		t.Fatal("MeasuredFabric ok with no samples")
	}
	fill(m, w, 5e-6, 2e-9, 500e-6, 1)
	f, ok := m.MeasuredFabric("m")
	if !ok {
		t.Fatal("MeasuredFabric not ok after sampling")
	}
	if f.Name != "m" {
		t.Errorf("name %q", f.Name)
	}
	// Worst link α is the degraded one; β is shared.
	if f.Alpha < 400e-6 || f.Alpha > 600e-6 {
		t.Errorf("alpha %.3g, want ~500µs (worst link)", f.Alpha)
	}
	if f.Beta < 1e-9 || f.Beta > 4e-9 {
		t.Errorf("beta %.3g, want ~2e-9", f.Beta)
	}
}

func TestDrift(t *testing.T) {
	model := netsim.IB100()
	if d := Drift(model, model); d != 1 {
		t.Errorf("self drift %.3f, want 1", d)
	}
	slow := netsim.Measured("slow", model.Alpha*10, model.Beta*10)
	if d := Drift(slow, model); d < 9 || d > 11 {
		t.Errorf("10x drift measured as %.2f", d)
	}
	// Symmetric: a faster-than-modelled fabric drifts by the same ratio.
	if a, b := Drift(slow, model), Drift(model, slow); a != b {
		t.Errorf("drift not symmetric: %.3f vs %.3f", a, b)
	}
	if d := Drift(netsim.Fabric{}, model); d != 1 {
		t.Errorf("zero-fabric drift %.3f, want neutral 1", d)
	}
	// β-fit noise alone (short runs can clamp the per-byte slope to zero)
	// must not fake drift: with α intact, the latency-regime ratio stays
	// near 1 and the conservative minimum keeps the figure small.
	noisy := netsim.Measured("noisy", model.Alpha, 0)
	if d := Drift(noisy, model); d != 1 {
		t.Errorf("β-only noise measured as %.2f drift, want 1", d)
	}
}

func TestRecorderZeroAlloc(t *testing.T) {
	m := NewMonitor(4, Options{})
	rec := m.Recorder(1)
	send := rec.ObserveSend
	op := rec.ObserveOp
	step := rec.RecordStep
	if n := testing.AllocsPerRun(100, func() {
		send(2, 4096, 1e-5)
		op(2e-5)
		step(1e-4, 2e-4, 1e-3)
	}); n != 0 {
		t.Errorf("recorder beacons allocate %.1f per call, want 0", n)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.StepWindow != 32 || o.LinkWindow != 32 || o.MinLinkSamples != 4 || o.MinSteps != 2 {
		t.Errorf("defaults %+v", o)
	}
	if o.DegradeFactor != 1.6 || o.MADGate != 4 || o.MinGap != 5*time.Microsecond {
		t.Errorf("gate defaults %+v", o)
	}
}
