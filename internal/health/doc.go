// Package health turns the timing the runtime already produces into rank
// health classifications and measured network fabrics.
//
// A Monitor holds preallocated per-rank and per-directed-link sample rings.
// Each rank's Recorder writes three kinds of beacons, all piggybacked on
// work the runtime does anyway, all allocation-free:
//
//   - RecordStep(enc, sync, step): per-training-step encode, post-to-WaitAll
//     sync, and total wall seconds (cluster worker loop).
//   - ObserveOp(sec): wall time of one posted nonblocking collective
//     (comm progress workers, via Communicator.SetOpObserver).
//   - ObserveSend(to, bytes, sec): sender-side wall time of one
//     point-to-point payload (comm send path, via
//     Communicator.SetSendObserver; group/context communicators translate
//     their local peer labels to global ranks first).
//
// Classify fits each directed link with a robust Theil–Sen α–β estimate
// (median pairwise slopes, median residual) and flags links whose α is an
// outlier past ratio, MAD and absolute-gap gates against a lower-quartile
// baseline (one straggler slows up to half the links, so the median is not a
// safe baseline). Because a slow host slows every
// link touching it while synchronous collectives smear the stall across all
// ranks' step clocks, the straggler is localized as the unique common
// endpoint of the slow-link set — not by per-rank wall time. Ranks that stop
// producing step beacons while the group progresses are Dead.
//
// MeasuredFabric condenses the link fits into a netsim.Fabric (worst-link α
// and β, matching the slowest-link bound of synchronous collectives) that
// plan.Build can price on directly; Drift compares such a measured fabric
// against the planner's model in both the latency and bandwidth regimes
// (taking the conservative minimum, so β-fit noise alone cannot fake drift)
// and lets elastic.Job trigger re-planning when the real network diverges
// from the priced one.
package health
