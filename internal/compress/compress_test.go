package compress

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"a2sgd/internal/comm"
	"a2sgd/internal/netsim"
	"a2sgd/internal/tensor"
)

func randGrad(seed uint64, n int) []float32 {
	rng := tensor.NewRNG(seed)
	g := make([]float32, n)
	rng.NormVec(g, 0, 0.1)
	return g
}

// runSync runs one Encode+Exchange round for p workers with per-worker
// gradients and returns each worker's synchronized result.
func runSync(t *testing.T, p int, build func(rank int) Algorithm, grads [][]float32) [][]float32 {
	t.Helper()
	out := make([][]float32, p)
	var mu sync.Mutex
	err := comm.RunGroup(p, func(c *comm.Communicator) error {
		a := build(c.Rank())
		g := append([]float32(nil), grads[c.Rank()]...)
		if _, err := Sync(a, g, c); err != nil {
			return err
		}
		mu.Lock()
		out[c.Rank()] = g
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func denseAverage(grads [][]float32) []float32 {
	n := len(grads[0])
	avg := make([]float32, n)
	for _, g := range grads {
		for i := range avg {
			avg[i] += g[i]
		}
	}
	for i := range avg {
		avg[i] /= float32(len(grads))
	}
	return avg
}

func TestDenseSyncEqualsAverage(t *testing.T) {
	p, n := 4, 500
	grads := make([][]float32, p)
	for r := range grads {
		grads[r] = randGrad(uint64(r+1), n)
	}
	want := denseAverage(grads)
	out := runSync(t, p, func(int) Algorithm { return NewDense(DefaultOptions(n)) }, grads)
	for r := 0; r < p; r++ {
		for i := range want {
			if math.Abs(float64(out[r][i]-want[i])) > 1e-5 {
				t.Fatalf("rank %d [%d]: %v want %v", r, i, out[r][i], want[i])
			}
		}
	}
}

func TestDenseMetadata(t *testing.T) {
	d := NewDense(DefaultOptions(100))
	if d.Name() != "dense" {
		t.Error("name")
	}
	if d.PayloadBytes(100) != 400 {
		t.Error("payload bytes")
	}
	if d.ExchangeKind() != netsim.ExchangeAllreduce {
		t.Error("kind")
	}
	p := d.Encode(make([]float32, 10))
	if p.Bits != 320 {
		t.Errorf("bits = %d", p.Bits)
	}
	d.Reset() // no-op, must not panic
}

func TestOptionsK(t *testing.T) {
	o := DefaultOptions(10000)
	if o.K() != 10 {
		t.Errorf("K = %d, want 10 (0.1%% of 10000)", o.K())
	}
	o.Density = 0
	if o.K() != 1 {
		t.Errorf("K floor = %d, want 1", o.K())
	}
	o.Density = 10
	if o.K() != o.N {
		t.Errorf("K cap = %d, want N", o.K())
	}
}

func TestOptionsValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for N<=0")
		}
	}()
	NewDense(Options{N: 0})
}

// ---- Top-K ----

func TestTopKSelectionMatchesSort(t *testing.T) {
	for _, n := range []int{1, 5, 100, 1000} {
		for _, k := range []int{1, 3, n / 2, n} {
			if k < 1 || k > n {
				continue
			}
			v := randGrad(uint64(n*k), n)
			got := topKIndices(v, k)
			if len(got) != k {
				t.Fatalf("n=%d k=%d: got %d indices", n, k, len(got))
			}
			// Reference: sort indices by |v| descending.
			ref := make([]int, n)
			for i := range ref {
				ref[i] = i
			}
			sort.Slice(ref, func(a, b int) bool {
				return math.Abs(float64(v[ref[a]])) > math.Abs(float64(v[ref[b]]))
			})
			// The selected set must have the same magnitude multiset as
			// the top k of the sorted reference (ties may swap indices).
			gotMags := make([]float64, k)
			wantMags := make([]float64, k)
			for i := 0; i < k; i++ {
				gotMags[i] = math.Abs(float64(v[got[i]]))
				wantMags[i] = math.Abs(float64(v[ref[i]]))
			}
			sort.Float64s(gotMags)
			sort.Float64s(wantMags)
			for i := range gotMags {
				if gotMags[i] != wantMags[i] {
					t.Fatalf("n=%d k=%d: magnitude multiset differs at %d: %v vs %v",
						n, k, i, gotMags[i], wantMags[i])
				}
			}
			// No duplicate indices.
			seen := map[int32]bool{}
			for _, ix := range got {
				if seen[ix] {
					t.Fatalf("duplicate index %d", ix)
				}
				seen[ix] = true
			}
		}
	}
}

// Property: top-k indices always cover the single largest element.
func TestTopKProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 2 + rng.Intn(200)
		k := 1 + rng.Intn(n)
		v := make([]float32, n)
		rng.NormVec(v, 0, 1)
		got := topKIndices(v, k)
		// Find argmax |v|.
		best := 0
		for i := 1; i < n; i++ {
			if math.Abs(float64(v[i])) > math.Abs(float64(v[best])) {
				best = i
			}
		}
		for _, ix := range got {
			if int(ix) == best {
				return true
			}
		}
		// Allow a tie on magnitude.
		bm := math.Abs(float64(v[best]))
		for _, ix := range got {
			if math.Abs(float64(v[ix])) == bm {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTopKErrorFeedbackAccumulates(t *testing.T) {
	// With k=1 only the largest entry ships each step; a small entry must
	// accumulate in the residual and eventually be transmitted.
	n := 4
	tk := NewTopK(Options{N: n, Density: 1.0 / float64(n)})
	if tk.K() != 1 {
		t.Fatalf("K = %d", tk.K())
	}
	g := []float32{1.0, 0.4, 0, 0}
	// Step 1: ships index 0, residual keeps 0.4 at index 1.
	p := tk.Encode(g)
	if ix := comm.Float32ToIndex(p.Data[0]); ix != 0 {
		t.Fatalf("step1 selected %d", ix)
	}
	if tk.ef.residual[1] != 0.4 {
		t.Fatalf("residual[1] = %v", tk.ef.residual[1])
	}
	// Step 2 with the same gradient: residual+g at index 1 is 0.8 < 1.0 at
	// index 0... index 0's residual is 0 so acc0 = 1.0 again. Ship 0 again,
	// residual[1] = 0.8.
	tk.Encode(g)
	if math.Abs(float64(tk.ef.residual[1])-0.8) > 1e-6 {
		t.Fatalf("residual[1] after step2 = %v", tk.ef.residual[1])
	}
	// Step 3 with zero gradient: acc = residual, index 1 (1.2? no: 0.8) is
	// now the largest since index 0 residual is 0.
	p = tk.Encode(make([]float32, n))
	if ix := comm.Float32ToIndex(p.Data[0]); ix != 1 {
		t.Fatalf("step3 selected %d, want deferred index 1", ix)
	}
	tk.Reset()
	for _, r := range tk.ef.residual {
		if r != 0 {
			t.Fatal("Reset did not clear residual")
		}
	}
}

func TestTopKSyncAveragesSelections(t *testing.T) {
	p, n := 2, 10
	// Worker 0 has a spike at 2, worker 1 at 7.
	g0 := make([]float32, n)
	g1 := make([]float32, n)
	g0[2] = 1.0
	g1[7] = -2.0
	out := runSync(t, p, func(int) Algorithm {
		return NewTopK(Options{N: n, Density: 0.1})
	}, [][]float32{g0, g1})
	for r := 0; r < p; r++ {
		for i, v := range out[r] {
			var want float32
			switch i {
			case 2:
				want = 0.5 // 1.0 from one of two workers
			case 7:
				want = -1.0
			}
			if math.Abs(float64(v-want)) > 1e-6 {
				t.Fatalf("rank %d out[%d] = %v want %v", r, i, v, want)
			}
		}
	}
}

func TestTopKGradientLengthChangePanics(t *testing.T) {
	tk := NewTopK(Options{N: 10, Density: 0.5})
	tk.Encode(make([]float32, 10))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length change")
		}
	}()
	tk.Encode(make([]float32, 11))
}

// ---- Gaussian-K ----

func TestGaussianKSelectsApproxK(t *testing.T) {
	n := 50000
	o := Options{N: n, Density: 0.01}
	gk := NewGaussianK(o)
	g := randGrad(3, n)
	p := gk.Encode(g)
	sel := len(p.Data) / 2
	k := o.K()
	if sel < k/3 || sel > k*3 {
		t.Errorf("selected %d, want within 3x of k=%d", sel, k)
	}
	if gk.Name() != "gaussiank" {
		t.Error("name")
	}
	if gk.ExchangeKind() != netsim.ExchangeAllgatherV {
		t.Error("kind")
	}
	if gk.PayloadBytes(n) != int64(4*k) {
		t.Error("payload bytes")
	}
}

func TestGaussianKSelectsLargest(t *testing.T) {
	// The entries above the threshold must include the largest-magnitude one.
	n := 10000
	gk := NewGaussianK(Options{N: n, Density: 0.001})
	g := randGrad(5, n)
	g[1234] = 50 // enormous spike
	p := gk.Encode(g)
	found := false
	for i := 0; i < len(p.Data); i += 2 {
		if comm.Float32ToIndex(p.Data[i]) == 1234 {
			found = true
		}
	}
	if !found {
		t.Error("spike not selected")
	}
}

func TestGaussianKDegenerateConstantGradient(t *testing.T) {
	// σ = 0: the fallback must transmit exactly one entry, not zero.
	n := 100
	gk := NewGaussianK(Options{N: n, Density: 0.01})
	g := make([]float32, n)
	tensor.Fill(g, 0.5)
	p := gk.Encode(g)
	if len(p.Data) != 2 {
		t.Fatalf("selected %d entries for constant gradient, want 1", len(p.Data)/2)
	}
}

func TestGaussianKErrorFeedback(t *testing.T) {
	n := 1000
	gk := NewGaussianK(Options{N: n, Density: 0.01})
	g := randGrad(9, n)
	gk.Encode(g)
	// Residual plus transmitted must reconstruct the accumulated gradient:
	// after the first step acc == g.
	recon := append([]float32(nil), gk.ef.residual...)
	p := gk.Encode(make([]float32, n)) // second step with zero grad: acc == residual
	for i := 0; i < len(p.Data); i += 2 {
		ix := comm.Float32ToIndex(p.Data[i])
		recon[ix] = p.Data[i+1] // transmitted values come from acc
	}
	for i := range recon {
		want := float64(recon[i])
		got := float64(gk.ef.residual[i]) + 0
		if gk.ef.residual[i] != 0 {
			got = float64(gk.ef.residual[i])
		}
		_ = want
		_ = got
	}
	// Simpler invariant: residual(after) + transmitted == residual(before).
	var sumBefore, sumAfter, sumTx float64
	for _, v := range recon {
		sumBefore += float64(v)
	}
	for _, v := range gk.ef.residual {
		sumAfter += float64(v)
	}
	for i := 1; i < len(p.Data); i += 2 {
		sumTx += float64(p.Data[i])
	}
	if math.Abs(sumBefore-(sumAfter+sumTx)) > 1e-3 {
		t.Errorf("EF mass not conserved: before %v after %v tx %v", sumBefore, sumAfter, sumTx)
	}
}

// ---- Rand-K ----

func TestRandKSelectsDistinctK(t *testing.T) {
	n := 1000
	o := Options{N: n, Density: 0.05, Seed: 7}
	rk := NewRandK(o)
	g := randGrad(11, n)
	p := rk.Encode(g)
	if len(p.Data) != 2*o.K() {
		t.Fatalf("payload pairs %d want %d", len(p.Data)/2, o.K())
	}
	seen := map[uint32]bool{}
	for i := 0; i < len(p.Data); i += 2 {
		ix := comm.Float32ToIndex(p.Data[i])
		if seen[ix] {
			t.Fatalf("duplicate index %d", ix)
		}
		seen[ix] = true
		if int(ix) >= n {
			t.Fatalf("index out of range: %d", ix)
		}
	}
	if rk.Name() != "randk" {
		t.Error("name")
	}
}

func TestRandKErrorFeedbackConservesMass(t *testing.T) {
	n := 200
	rk := NewRandK(Options{N: n, Density: 0.1, Seed: 3})
	g := randGrad(13, n)
	p := rk.Encode(g)
	var total, tx, res float64
	for _, v := range g {
		total += float64(v)
	}
	for i := 1; i < len(p.Data); i += 2 {
		tx += float64(p.Data[i])
	}
	for _, v := range rk.ef.residual {
		res += float64(v)
	}
	if math.Abs(total-(tx+res)) > 1e-3 {
		t.Errorf("mass: total %v != tx %v + residual %v", total, tx, res)
	}
}

// ---- sparse exchange plumbing ----

func TestSparseExchangeIgnoresCorruptIndices(t *testing.T) {
	// Defensive: an out-of-range index must not crash the reconstruction.
	p := Payload{Data: []float32{comm.Float32FromIndex(1 << 30), 1.5}}
	g := make([]float32, 4)
	err := comm.RunGroup(1, func(c *comm.Communicator) error {
		var sc comm.AllgatherVScratch
		return sparseExchange(p, g, c, &sc)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g {
		if v != 0 {
			t.Error("corrupt index should be dropped")
		}
	}
}
