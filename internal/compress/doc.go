// Package compress defines the gradient-synchronization algorithm interface
// shared by every method the paper evaluates, implements the baselines —
// dense SGD, Top-K and Gaussian-K sparsification (with error feedback and
// allgather exchange), QSGD quantization (with real bit-packing), plus the
// Rand-K, DGC and TernGrad extensions discussed in the paper's related
// work — and hosts the algorithm registry, the spec grammar and the
// per-bucket policy layer that the public façade exposes.
//
// The paper's own contribution, two-level gradient averaging (A2SGD), lives
// in package a2sgd/internal/core, implements the same interface and
// self-registers into the registry here.
//
// # Encode / Exchange
//
// Every algorithm is split into two phases, mirroring how the paper
// accounts computation (Figure 2) separately from communication
// (Figures 4–5):
//
//   - Encode: the purely local computation on the gradient — selection,
//     quantization, or mean extraction — including error-feedback updates.
//   - Exchange: the collective communication that turns per-worker payloads
//     into the globally synchronized gradient.
//
// Exchange receives a comm.Communicator and calls its collectives
// (AllreduceMean, Allgather, AllgatherV); it is therefore agnostic to the
// transport (in-process channels or TCP) and to the topology — on a
// communicator configured with comm.SetTopology the same Exchange runs the
// two-level hierarchical schedule unchanged.
//
// # Payload ownership
//
// Encode is allocation-free in steady state: selection heaps, quantization
// word buffers and payload slices live on the algorithm instance and are
// recycled across calls. Consequently a Payload's Data aliases instance
// scratch and is valid only until the next Encode on the same instance —
// callers that need a payload to survive longer copy Data explicitly, and
// distinct instances (e.g. Bucketed's per-bucket algorithms) never share
// scratch. See ARCHITECTURE.md "Memory discipline & hot path".
//
// # The spec grammar
//
// Algorithms are named and parameterized by a small spec grammar:
//
//	spec  := name [ '(' args ')' ]
//	args  := arg { ',' arg }
//	arg   := [ name '=' ] value
//	value := spec | scalar
//
// Names and scalars are runs of letters, digits and the characters
// ._+- ; whitespace is insignificant. Keyed arguments are typed parameters
// validated against the registered schema (int, float, byte size, string);
// positional arguments are inner algorithm specs for wrappers. Examples:
//
//	dense
//	topk(density=0.01)
//	qsgd(levels=8)
//	periodic(qsgd(levels=8), interval=4)
//
// Byte sizes accept B / KiB / MiB / GiB (binary) and KB / MB / GB
// (decimal) suffixes: "64KiB" is 65536.
//
// Parse turns a string into a Spec; Spec.String renders the canonical form
// (a round trip is the identity); CheckSpec validates a tree against the
// registry without constructing; Build constructs the algorithm, with spec
// parameters overriding the Options defaults.
//
// # The registry
//
// Register(name, Builder) adds an algorithm: its one-line summary, its
// parameter schema ([]ParamSpec), its wrapper arity (Wraps) and its
// constructor. This package registers the baselines and the periodic
// wrapper in an init function; package core registers a2sgd and its
// ablation variants the same way; third-party compressors follow the same
// path and immediately become spellable in specs, policies, the CLIs and
// the bench sweeps. Unknown-name errors list every registered signature
// (Usage), so the error message is the API's documentation of record.
//
// # Policies
//
// A Policy chooses a spec per gradient bucket from the bucket's metadata
// (BucketInfo: index, element count, raw bytes, covered layer names).
// Policies use the same grammar with algorithm specs as argument values:
//
//	uniform(a2sgd)
//	mixed(big=a2sgd, small=dense, threshold=64KiB)
//	bylayer(.b=dense, default=a2sgd)
//	auto(dense, topk(density=0.01), a2sgd)
//
// uniform applies one spec everywhere; mixed splits on a raw-byte-size
// threshold (big buckets get the compressed spec, the tiny tail stays
// dense); bylayer tries its pattern rules in declaration order against the
// bucket's layer names (substring match) and falls back to the required
// default; auto picks the candidate with the cheapest modelled
// encode+collective cost per bucket (every registered algorithm carries a
// CostModel next to its Builder; the training façade routes auto through
// the full a2sgd/internal/plan planner, which also derives bucket
// boundaries and topology from the same price). A bare algorithm spec is
// accepted wherever a policy is expected and means uniform(spec). Policies
// are pure functions of BucketInfo and validate every referenced spec at
// construction, so policy-driven runs are deterministic per seed and
// cannot fail mid-training.
//
// # Composition
//
// Bucketed composes per-bucket instances over a contiguous partition of
// the gradient (the unit of the training runtime's overlapped pipeline) —
// under a mixing policy its buckets run different algorithms, and
// ExchangeKinds reports each bucket's collective for the netsim price
// laws. Periodic wraps any algorithm with round reduction (synchronize
// every k-th step). Both implement Algorithm themselves, so compositions
// nest.
package compress
