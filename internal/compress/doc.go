// Package compress defines the gradient-synchronization algorithm interface
// shared by every method the paper evaluates, and implements the baselines:
// dense SGD, Top-K and Gaussian-K sparsification (with error feedback and
// allgather exchange), QSGD quantization (with real bit-packing), plus the
// Rand-K, DGC and TernGrad extensions discussed in the paper's related
// work.
//
// The paper's own contribution, two-level gradient averaging (A2SGD), lives
// in package a2sgd/internal/core and implements the same interface.
//
// # Encode / Exchange
//
// Every algorithm is split into two phases, mirroring how the paper
// accounts computation (Figure 2) separately from communication
// (Figures 4–5):
//
//   - Encode: the purely local computation on the gradient — selection,
//     quantization, or mean extraction — including error-feedback updates.
//   - Exchange: the collective communication that turns per-worker payloads
//     into the globally synchronized gradient.
//
// Exchange receives a comm.Communicator and calls its collectives
// (AllreduceMean, Allgather, AllgatherV); it is therefore agnostic to the
// transport (in-process channels or TCP) and to the topology — on a
// communicator configured with comm.SetTopology the same Exchange runs the
// two-level hierarchical schedule unchanged.
//
// # Composition
//
// Bucketed composes per-bucket instances of one algorithm over a contiguous
// partition of the gradient (the unit of the training runtime's overlapped
// pipeline), and Periodic wraps any algorithm with round reduction
// (synchronize every k-th step). Both implement Algorithm themselves, so
// compositions nest.
package compress
