package compress

import (
	"a2sgd/internal/comm"
	"a2sgd/internal/netsim"
	"a2sgd/internal/tensor"
)

// DGC implements the core of Deep Gradient Compression (Lin et al., the
// paper's reference [37]): Top-K sparsification with *momentum correction*.
// Plain error feedback accumulates raw gradients in the residual, which
// stalls momentum-SGD; DGC instead accumulates a locally-updated momentum
// and transmits the largest entries of the accumulated velocity, applying
// momentum-factor masking (both buffers are cleared at transmitted
// coordinates). Gradient clipping — the other DGC ingredient — is omitted:
// the training runtime already guards against non-finite gradients.
type DGC struct {
	k        int
	momentum float32
	u        []float32 // momentum accumulator
	v        []float32 // velocity accumulator
	sc       sparseScratch
}

// NewDGC builds a DGC compressor with momentum 0.9 (Lin et al.'s setting).
func NewDGC(o Options) *DGC {
	o.validate()
	return &DGC{
		k:        o.K(),
		momentum: 0.9,
		u:        make([]float32, o.N),
		v:        make([]float32, o.N),
		sc:       newSparseScratch(o.N, o.K()),
	}
}

// Name implements Algorithm.
func (d *DGC) Name() string { return "dgc" }

// K exposes the selection count.
func (d *DGC) K() int { return d.k }

// Encode folds g into the momentum and velocity buffers, selects the top-k
// velocity entries, and clears them in both buffers (momentum factor
// masking). The returned payload aliases instance scratch (valid until the
// next Encode).
func (d *DGC) Encode(g []float32) Payload {
	return d.EncodeView(d.sc.fv.Reset1(g))
}

// EncodeView implements Algorithm: the momentum/velocity fold reads the
// view's segments element-for-element in flattened order (the accumulators
// stay flat, indexed by the flattened offset); selection is unchanged.
func (d *DGC) EncodeView(view *tensor.VecView) Payload {
	if view.Len() != len(d.u) {
		panic("compress: gradient length changed between steps")
	}
	offs := view.Offsets()
	for si, seg := range view.Segments() {
		u, vel := d.u[offs[si]:], d.v[offs[si]:]
		for i, x := range seg {
			u[i] = d.momentum*u[i] + x
			vel[i] += u[i]
		}
	}
	d.sc.topK(d.v, d.k)
	d.sc.valuesAt(d.v)
	for _, ix := range d.sc.idx {
		d.v[ix] = 0
		d.u[ix] = 0
	}
	return d.sc.payload()
}

// Exchange implements Algorithm via the sparse allgather.
func (d *DGC) Exchange(p Payload, g []float32, c *comm.Communicator) error {
	return sparseExchange(p, g, c, &d.sc.agv)
}

// ExchangeView implements Algorithm, scatter-adding into the view.
func (d *DGC) ExchangeView(p Payload, v *tensor.VecView, c *comm.Communicator) error {
	return sparseExchangeView(p, v, c, &d.sc.agv)
}

// ExchangeKind implements Algorithm.
func (d *DGC) ExchangeKind() netsim.ExchangeKind { return netsim.ExchangeAllgatherV }

// PayloadBytes implements Algorithm: 32k bits (value accounting).
func (d *DGC) PayloadBytes(n int) int64 { return int64(4 * d.k) }

// Reset implements Algorithm.
func (d *DGC) Reset() {
	for i := range d.u {
		d.u[i] = 0
		d.v[i] = 0
	}
}

// SaveState implements StateSaver: both accumulators, element-aligned.
func (d *DGC) SaveState() State {
	var s State
	s.setVec("dgc.u", d.u)
	s.setVec("dgc.v", d.v)
	return s
}

// LoadState implements StateLoader.
func (d *DGC) LoadState(s State) {
	s.vec("dgc.u", d.u)
	s.vec("dgc.v", d.v)
}
