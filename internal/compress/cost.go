package compress

import (
	"fmt"
	"strings"

	"a2sgd/internal/netsim"
)

// CostModel estimates one algorithm spec's planning-relevant costs without
// building it: the local compression time and wire payload as affine
// functions of the bucket element count, plus the dominant collective. The
// registry carries a CostModel alongside every Builder (Builder.Cost) so the
// planner (a2sgd/internal/plan) and the auto policy can price a candidate
// spec on any bucket of any fabric in O(1).
//
// The encode estimates are CPU orders of magnitude calibrated against the
// Figure-2 measurements; only their relative weight against the α–β network
// price matters to planning decisions, and the payload accounting matches
// each Algorithm's PayloadBytes exactly so modelled prices agree with the
// Result.ModeledIterSec* helpers.
type CostModel struct {
	// EncSecPerElem is the estimated local compression time per gradient
	// element, in seconds.
	EncSecPerElem float64
	// BytesPerElem is the analytic per-worker payload per element.
	BytesPerElem float64
	// FixedBytes is the length-independent payload part (A2SGD's O(1) pair
	// of scalar means, a quantizer's norm word).
	FixedBytes int64
	// Kind is the collective that dominates the exchange.
	Kind netsim.ExchangeKind
}

// PayloadBytes evaluates the payload model for an n-element bucket.
func (m CostModel) PayloadBytes(n int) int64 {
	return int64(m.BytesPerElem*float64(n)) + m.FixedBytes
}

// EncSec evaluates the encode-time model for an n-element bucket.
func (m CostModel) EncSec(n int) float64 {
	return m.EncSecPerElem * float64(n)
}

// defaultEncSecPerElem is the fallback encode estimate for algorithms
// registered without a Cost hook — one streaming pass over the gradient.
const defaultEncSecPerElem = 3e-9

// SpecCost resolves the cost model of a validated spec tree. Registered Cost
// hooks are evaluated with the spec's typed parameters (Options supplies the
// defaults, exactly as in Build); an algorithm registered without a Cost
// hook is built once at o.N and its PayloadBytes/ExchangeKind are sampled to
// derive the affine payload model, with defaultEncSecPerElem standing in for
// the encode time — so third-party registrations are plannable out of the
// box, just less precisely.
func SpecCost(s *Spec, o Options) (CostModel, error) {
	if o.N <= 0 {
		return CostModel{}, fmt.Errorf("compress: SpecCost(%s): Options.N must be positive", s)
	}
	b, ok := LookupBuilder(s.Name)
	if !ok {
		return CostModel{}, unknownError(s.Name)
	}
	innerSpecs, values, err := checkArgs(s, b)
	if err != nil {
		return CostModel{}, err
	}
	inner := make([]CostModel, 0, len(innerSpecs))
	for _, sp := range innerSpecs {
		cm, err := SpecCost(sp, o)
		if err != nil {
			return CostModel{}, err
		}
		inner = append(inner, cm)
	}
	if b.Cost != nil {
		return b.Cost(o, BuildArgs{values: values}, inner), nil
	}
	return sampledCost(s, o)
}

// sampledCost derives a cost model by building the algorithm and sampling
// its analytic payload at two sizes (payloads are affine in n for every
// implemented algorithm).
func sampledCost(s *Spec, o Options) (CostModel, error) {
	a, err := Build(s, o)
	if err != nil {
		return CostModel{}, err
	}
	n1, n2 := o.N, 2*o.N
	b1, b2 := a.PayloadBytes(n1), a.PayloadBytes(n2)
	perElem := float64(b2-b1) / float64(n2-n1)
	return CostModel{
		EncSecPerElem: defaultEncSecPerElem,
		BytesPerElem:  perElem,
		FixedBytes:    b1 - int64(perElem*float64(n1)),
		Kind:          a.ExchangeKind(),
	}, nil
}

// BucketSeed derives the canonical per-bucket compression seed the runtime
// uses when it constructs algorithms from specs: bucket 0 keeps the
// historical per-rank seed (so single-bucket runs reproduce pre-bucketing
// results exactly) and later buckets decorrelate their stochastic streams.
// The façade's legacy policy path and the schedule path share this one
// formula, which is what makes a lowered schedule bitwise-identical to the
// flat config it came from.
func BucketSeed(seed uint64, rank, bucket int) uint64 {
	return seed*31 + uint64(rank) + 1 + uint64(bucket)*1_000_003
}

// ---- auto policy ----

// AutoPolicy picks each bucket's spec from a candidate list by minimizing
// the modelled per-bucket cost — encode time plus the priced collective —
// on a fixed pricing context (pricer + worker count). It is a pure function
// of BucketInfo for a fixed context, so auto-policy runs stay deterministic.
//
// Parsed from a spec string ("auto", "auto(dense, a2sgd, topk(density=0.01))")
// the policy carries the default context (the paper's IB100 at
// defaultAutoWorkers); the planner re-derives the choice with the real
// pricer, worker count and the full pipeline recurrence, which is why
// a2sgd.Train routes auto policies through plan.Build instead of calling
// SpecFor directly.
type AutoPolicy struct {
	candidates []*Spec
	pricer     netsim.Pricer
	workers    int
}

// defaultAutoWorkers is the worker count the parsed (unplanned) auto policy
// prices buckets at.
const defaultAutoWorkers = 8

// NewAutoPolicy builds an auto policy over the candidate specs, validated
// and priced on the given context. A nil/empty candidate list defaults to
// the paper's evaluated five; a nil pricer defaults to IB100.
func NewAutoPolicy(candidates []*Spec, pricer netsim.Pricer, workers int) (*AutoPolicy, error) {
	if len(candidates) == 0 {
		for _, name := range Evaluated() {
			candidates = append(candidates, &Spec{Name: name})
		}
	}
	for _, s := range candidates {
		if err := validateSpec(s); err != nil {
			return nil, fmt.Errorf("compress: auto: %w", err)
		}
		if _, err := SpecCost(s, DefaultOptions(4)); err != nil {
			return nil, fmt.Errorf("compress: auto: %w", err)
		}
	}
	if pricer == nil {
		pricer = netsim.IB100()
	}
	if workers < 2 {
		workers = defaultAutoWorkers
	}
	return &AutoPolicy{candidates: candidates, pricer: pricer, workers: workers}, nil
}

// Candidates returns the candidate specs, in priority order (ties in the
// modelled cost keep the earlier candidate).
func (a *AutoPolicy) Candidates() []*Spec { return a.candidates }

// Name implements Policy with the canonical spec string.
func (a *AutoPolicy) Name() string {
	parts := make([]string, len(a.candidates))
	for i, s := range a.candidates {
		parts[i] = s.String()
	}
	return "auto(" + strings.Join(parts, ", ") + ")"
}

// SpecFor implements Policy: the candidate with the smallest modelled
// encode + collective cost for this bucket on the policy's context.
func (a *AutoPolicy) SpecFor(b BucketInfo) *Spec {
	if b.Params <= 0 {
		return a.candidates[0]
	}
	best, bestCost := a.candidates[0], 0.0
	for i, s := range a.candidates {
		cm, err := SpecCost(s, DefaultOptions(b.Params))
		if err != nil {
			continue // candidates were validated at construction
		}
		cost := cm.EncSec(b.Params) + a.pricer.SyncTime(cm.Kind, cm.PayloadBytes(b.Params), a.workers)
		if i == 0 || cost < bestCost {
			best, bestCost = s, cost
		}
	}
	return best
}

// Specs implements Policy.
func (a *AutoPolicy) Specs() []*Spec { return a.candidates }

// autoUsage is the signature the CLI help and unknown-policy errors print.
const autoUsage = "auto(spec, spec, ...)"

func init() {
	RegisterPolicy("auto", autoUsage, func(args []Arg) (Policy, error) {
		var cands []*Spec
		for _, arg := range args {
			if arg.Key != "" {
				return nil, fmt.Errorf("compress: auto takes candidate specs only — want %s", autoUsage)
			}
			s, err := specArg("auto", arg)
			if err != nil {
				return nil, err
			}
			cands = append(cands, s)
		}
		return NewAutoPolicy(cands, nil, 0)
	})
}
