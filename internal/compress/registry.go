package compress

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ParamKind types a spec parameter. Scalars are validated against their kind
// when the spec is checked, before any algorithm is constructed.
type ParamKind int

// Parameter kinds.
const (
	// ParamInt is a base-10 integer ("4").
	ParamInt ParamKind = iota
	// ParamFloat is a decimal number ("0.01").
	ParamFloat
	// ParamBytes is a byte size ("65536", "64KiB", "1.5MiB").
	ParamBytes
	// ParamString is free text (one grammar atom).
	ParamString
)

// String names the kind for signatures and error messages.
func (k ParamKind) String() string {
	switch k {
	case ParamInt:
		return "int"
	case ParamFloat:
		return "float"
	case ParamBytes:
		return "bytes"
	default:
		return "string"
	}
}

// ParamSpec declares one accepted keyed parameter of a registered algorithm.
type ParamSpec struct {
	// Name is the parameter key as written in specs.
	Name string
	// Kind is the scalar type the value must parse as.
	Kind ParamKind
	// Doc is a one-line description for usage listings.
	Doc string
}

// BuildArgs carries a spec's validated arguments into a Builder.Build call.
type BuildArgs struct {
	// Inner holds the already-built inner algorithms of a wrapper spec
	// (len == Builder.Wraps).
	Inner []Algorithm
	// values maps parameter name → parsed value (int64 / float64 / string),
	// validated against the declared ParamSpec kinds.
	values map[string]any
}

// Int returns the named int parameter, or def when the spec omitted it.
func (a BuildArgs) Int(name string, def int) int {
	if v, ok := a.values[name]; ok {
		return int(v.(int64))
	}
	return def
}

// Float returns the named float parameter, or def when omitted.
func (a BuildArgs) Float(name string, def float64) float64 {
	if v, ok := a.values[name]; ok {
		return v.(float64)
	}
	return def
}

// Bytes returns the named byte-size parameter, or def when omitted.
func (a BuildArgs) Bytes(name string, def int64) int64 {
	if v, ok := a.values[name]; ok {
		return v.(int64)
	}
	return def
}

// Str returns the named string parameter, or def when omitted.
func (a BuildArgs) Str(name, def string) string {
	if v, ok := a.values[name]; ok {
		return v.(string)
	}
	return def
}

// Builder registers one algorithm: its parameter schema and constructor.
// Third-party compressors plug into the spec grammar, the CLIs and the
// policy layer by registering a Builder under a new name.
type Builder struct {
	// Summary is a one-line description for usage listings.
	Summary string
	// Params declares the accepted keyed parameters. Unknown keys are
	// rejected at spec-check time with the accepted list in the error.
	Params []ParamSpec
	// Wraps is the number of inner algorithm specs the name takes as
	// leading positional arguments: 0 for leaf algorithms, 1 for wrappers
	// like periodic. Inner algorithms are built first (with the same
	// Options) and handed to Build via BuildArgs.Inner.
	Wraps int
	// Build constructs the algorithm. Options carries the runtime-owned
	// tunables (N, Seed, Allreduce, and the legacy Density/QuantLevels
	// defaults); spec parameters arrive in args and take precedence. Build
	// may reject out-of-range values.
	Build func(o Options, args BuildArgs) (Algorithm, error)
	// Cost, when non-nil, estimates the algorithm's planning costs (encode
	// time, payload, collective) for the given parameters without building
	// anything — what SpecCost, the auto policy and the plan package price
	// candidate specs with. args carries the typed spec parameters only
	// (args.Inner is nil); inner holds the already-resolved cost models of
	// wrapped specs, one per Wraps. Nil falls back to building the
	// algorithm once and sampling its PayloadBytes/ExchangeKind.
	Cost func(o Options, args BuildArgs, inner []CostModel) CostModel
}

var registry = struct {
	sync.RWMutex
	m map[string]Builder
}{m: map[string]Builder{}}

// Register adds an algorithm under the given spec name. It panics on an
// empty or duplicate name, a name that is not a grammar atom, or a nil
// Build — registration is init-time wiring, not runtime input.
func Register(name string, b Builder) {
	if !isAtom(name) {
		panic(fmt.Sprintf("compress: invalid algorithm name %q", name))
	}
	if b.Build == nil {
		panic(fmt.Sprintf("compress: Register(%q): nil Build", name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("compress: algorithm %q registered twice", name))
	}
	registry.m[name] = b
}

// LookupBuilder returns the registered builder for name.
func LookupBuilder(name string) (Builder, bool) {
	registry.RLock()
	defer registry.RUnlock()
	b, ok := registry.m[name]
	return b, ok
}

// Registered lists all registered algorithm names, sorted.
func Registered() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Evaluated lists the five methods of the paper's evaluation in
// figure-legend order — the default set for sweeps and CLIs.
func Evaluated() []string {
	return []string{"dense", "topk", "qsgd", "gaussiank", "a2sgd"}
}

// Signature renders one algorithm's spec signature, e.g.
// "topk(density=float)" or "periodic(inner, interval=int)".
func Signature(name string) string {
	b, ok := LookupBuilder(name)
	if !ok {
		return name
	}
	var parts []string
	for i := 0; i < b.Wraps; i++ {
		parts = append(parts, "inner")
	}
	for _, p := range b.Params {
		parts = append(parts, p.Name+"="+p.Kind.String())
	}
	if len(parts) == 0 {
		return name
	}
	return name + "(" + strings.Join(parts, ", ") + ")"
}

// Usage lists every registered algorithm's signature, sorted by name —
// what unknown-spec errors and CLI flag help print.
func Usage() []string {
	names := Registered()
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = Signature(n)
	}
	return out
}

// unknownError reports an unregistered name, listing every registered
// signature so the caller can see both the names and their parameters.
func unknownError(name string) error {
	return fmt.Errorf("compress: unknown algorithm %q — registered specs: %s",
		name, strings.Join(Usage(), ", "))
}

// checkArgs validates a spec's arguments against the registered schema and
// parses the keyed scalars. Returns the positional inner specs and the
// typed parameter values.
func checkArgs(s *Spec, b Builder) (inner []*Spec, values map[string]any, err error) {
	values = map[string]any{}
	for _, a := range s.Args {
		if a.Key == "" {
			sp, err := a.Value.AsSpec()
			if err != nil {
				return nil, nil, fmt.Errorf("compress: %s: %w", s.Name, err)
			}
			inner = append(inner, sp)
			continue
		}
		var ps *ParamSpec
		for i := range b.Params {
			if b.Params[i].Name == a.Key {
				ps = &b.Params[i]
				break
			}
		}
		if ps == nil {
			accepted := "accepts no parameters"
			if len(b.Params) > 0 || b.Wraps > 0 {
				accepted = "accepts " + Signature(s.Name)
			}
			return nil, nil, fmt.Errorf("compress: %s: unknown parameter %q (%s)", s.Name, a.Key, accepted)
		}
		if a.Value.Spec != nil {
			return nil, nil, fmt.Errorf("compress: %s: parameter %q wants a %s, got spec %s",
				s.Name, a.Key, ps.Kind, a.Value.Spec)
		}
		switch ps.Kind {
		case ParamInt:
			v, err := strconv.ParseInt(a.Value.Text, 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("compress: %s: parameter %s=%q is not an int", s.Name, a.Key, a.Value.Text)
			}
			values[a.Key] = v
		case ParamFloat:
			v, err := strconv.ParseFloat(a.Value.Text, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("compress: %s: parameter %s=%q is not a float", s.Name, a.Key, a.Value.Text)
			}
			values[a.Key] = v
		case ParamBytes:
			v, err := ParseByteSize(a.Value.Text)
			if err != nil {
				return nil, nil, fmt.Errorf("compress: %s: parameter %s=%q is not a byte size", s.Name, a.Key, a.Value.Text)
			}
			values[a.Key] = v
		default:
			values[a.Key] = a.Value.Text
		}
	}
	if len(inner) != b.Wraps {
		return nil, nil, fmt.Errorf("compress: %s takes %d inner algorithm(s), got %d — want %s",
			s.Name, b.Wraps, len(inner), Signature(s.Name))
	}
	return inner, values, nil
}

// CheckSpec validates a spec tree against the registry — names, parameter
// keys, scalar kinds and wrapper arity — without constructing anything.
func CheckSpec(s *Spec) error {
	b, ok := LookupBuilder(s.Name)
	if !ok {
		return unknownError(s.Name)
	}
	inner, _, err := checkArgs(s, b)
	if err != nil {
		return err
	}
	for _, sp := range inner {
		if err := CheckSpec(sp); err != nil {
			return err
		}
	}
	return nil
}

// Build constructs the algorithm a spec tree describes. Inner (wrapped)
// algorithms are built first, with the same Options; spec parameters
// override the corresponding Options defaults.
func Build(s *Spec, o Options) (Algorithm, error) {
	if o.N <= 0 {
		return nil, fmt.Errorf("compress: Build(%s): Options.N must be positive", s)
	}
	b, ok := LookupBuilder(s.Name)
	if !ok {
		return nil, unknownError(s.Name)
	}
	innerSpecs, values, err := checkArgs(s, b)
	if err != nil {
		return nil, err
	}
	args := BuildArgs{values: values}
	for _, sp := range innerSpecs {
		in, err := Build(sp, o)
		if err != nil {
			return nil, err
		}
		args.Inner = append(args.Inner, in)
	}
	a, err := b.Build(o, args)
	if err != nil {
		return nil, fmt.Errorf("compress: %s: %w", s, err)
	}
	return a, nil
}

// ParseBuild parses a spec string and builds it — the one-call path the
// façade and CLIs use.
func ParseBuild(src string, o Options) (Algorithm, error) {
	s, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Build(s, o)
}
