package compress

import (
	"a2sgd/internal/comm"
	"a2sgd/internal/netsim"
	"a2sgd/internal/stats"
	"a2sgd/internal/tensor"
)

// sparsePayload packs k (index, value) pairs as interleaved float32 words:
// [idx0 val0 idx1 val1 ...] with indices bit-cast. Actual wire size is 64k
// bits; the paper's Table 2 accounts only the 32k value bits, which
// PayloadBytes mirrors (documented in EXPERIMENTS.md).
func sparsePayload(idx []int32, val []float32) Payload {
	data := make([]float32, 0, 2*len(idx))
	for i, ix := range idx {
		data = append(data, comm.Float32FromIndex(uint32(ix)), val[i])
	}
	return Payload{Data: data, Bits: int64(32 * len(idx))}
}

// sparseExchange allgathers every worker's (index, value) pairs and
// reconstructs the worker-averaged dense gradient in g. This is the
// Allgather exchange path the paper credits for Gaussian-K's iteration-time
// advantage on fast networks (§4.4).
func sparseExchange(p Payload, g []float32, c *comm.Communicator) error {
	all, _, err := c.AllgatherV(p.Data)
	if err != nil {
		return err
	}
	tensor.Zero(g)
	inv := 1 / float32(c.Size())
	for i := 0; i+1 < len(all); i += 2 {
		ix := int(comm.Float32ToIndex(all[i]))
		if ix >= 0 && ix < len(g) {
			g[ix] += all[i+1] * inv
		}
	}
	return nil
}

// errorFeedback is the residual memory shared by the sparsifiers: the
// un-transmitted part of each gradient is accumulated and re-injected the
// next step, the standard memory-compensation of Stich et al. (the paper's
// reference [27]).
type errorFeedback struct {
	residual []float32
	acc      []float32 // scratch: residual + g
}

func newErrorFeedback(n int) errorFeedback {
	return errorFeedback{residual: make([]float32, n), acc: make([]float32, n)}
}

// accumulate forms acc = residual + g and returns it.
func (e *errorFeedback) accumulate(g []float32) []float32 {
	if len(g) != len(e.residual) {
		panic("compress: gradient length changed between steps")
	}
	for i, r := range e.residual {
		e.acc[i] = r + g[i]
	}
	return e.acc
}

// retain records the new residual: acc minus what was transmitted.
// transmitted is given by the selected indices into acc.
func (e *errorFeedback) retain(acc []float32, selected []int32) {
	copy(e.residual, acc)
	for _, ix := range selected {
		e.residual[ix] = 0
	}
}

func (e *errorFeedback) reset() {
	tensor.Zero(e.residual)
}

// ---- Top-K ----

// TopK transmits the k largest-magnitude entries of the error-compensated
// gradient. Selection uses a max-heap built in O(n) followed by k pops of
// O(log n) — the O(n + k log n) computation the paper's Table 2 lists.
type TopK struct {
	k  int
	ef errorFeedback
}

// NewTopK builds a Top-K sparsifier from the options (k = Density·N).
func NewTopK(o Options) *TopK {
	o.validate()
	return &TopK{k: o.K(), ef: newErrorFeedback(o.N)}
}

// Name implements Algorithm.
func (t *TopK) Name() string { return "topk" }

// K exposes the selection count (for reports).
func (t *TopK) K() int { return t.k }

// Encode selects the top-k entries of residual+g by magnitude.
func (t *TopK) Encode(g []float32) Payload {
	acc := t.ef.accumulate(g)
	idx := topKIndices(acc, t.k)
	val := make([]float32, len(idx))
	for i, ix := range idx {
		val[i] = acc[ix]
	}
	t.ef.retain(acc, idx)
	return sparsePayload(idx, val)
}

// Exchange implements Algorithm via the sparse allgather.
func (t *TopK) Exchange(p Payload, g []float32, c *comm.Communicator) error {
	return sparseExchange(p, g, c)
}

// ExchangeKind implements Algorithm.
func (t *TopK) ExchangeKind() netsim.ExchangeKind { return netsim.ExchangeAllgather }

// PayloadBytes implements Algorithm: 32k bits (paper accounting).
func (t *TopK) PayloadBytes(n int) int64 { return int64(4 * t.k) }

// Reset implements Algorithm.
func (t *TopK) Reset() { t.ef.reset() }

// topKIndices returns the indices of the k largest |v| entries using an
// index max-heap: O(n) heapify + O(k log n) extraction.
func topKIndices(v []float32, k int) []int32 {
	n := len(v)
	if k >= n {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	abs := func(i int32) float32 {
		x := v[i]
		if x < 0 {
			return -x
		}
		return x
	}
	heap := make([]int32, n)
	for i := range heap {
		heap[i] = int32(i)
	}
	siftDown := func(lo, hi int) {
		root := lo
		for {
			child := 2*root + 1
			if child >= hi {
				break
			}
			if child+1 < hi && abs(heap[child+1]) > abs(heap[child]) {
				child++
			}
			if abs(heap[child]) <= abs(heap[root]) {
				break
			}
			heap[root], heap[child] = heap[child], heap[root]
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(i, n)
	}
	out := make([]int32, 0, k)
	hi := n
	for len(out) < k {
		out = append(out, heap[0])
		hi--
		heap[0] = heap[hi]
		siftDown(0, hi)
	}
	return out
}

// ---- Gaussian-K ----

// GaussianK (Shi et al., the paper's reference [25]) avoids Top-K's heap by
// assuming gradient values are Gaussian: it fits N(µ, σ²) in one pass and
// derives a magnitude threshold whose expected exceedance count is k, then
// transmits every entry above the threshold. The selected count varies
// around k, which is why the exchange is an AllgatherV.
type GaussianK struct {
	k  int
	n  int
	ef errorFeedback
}

// NewGaussianK builds a Gaussian-K sparsifier from the options.
func NewGaussianK(o Options) *GaussianK {
	o.validate()
	return &GaussianK{k: o.K(), n: o.N, ef: newErrorFeedback(o.N)}
}

// Name implements Algorithm.
func (gk *GaussianK) Name() string { return "gaussiank" }

// Encode estimates the Gaussian threshold and selects entries above it.
func (gk *GaussianK) Encode(g []float32) Payload {
	acc := gk.ef.accumulate(g)
	fit := stats.FitGaussian(acc)
	tau := fit.TailThreshold(float64(gk.k) / float64(gk.n))
	var idx []int32
	var val []float32
	for i, x := range acc {
		d := float64(x) - fit.Mu
		if d < 0 {
			d = -d
		}
		if d > tau {
			idx = append(idx, int32(i))
			val = append(val, x)
		}
	}
	// Degenerate safety net: a constant gradient has σ=0 and selects
	// nothing; fall back to transmitting the single largest entry so the
	// method always makes progress.
	if len(idx) == 0 && len(acc) > 0 {
		best := int32(0)
		for i := 1; i < len(acc); i++ {
			a, b := acc[i], acc[best]
			if a < 0 {
				a = -a
			}
			if b < 0 {
				b = -b
			}
			if a > b {
				best = int32(i)
			}
		}
		idx = []int32{best}
		val = []float32{acc[best]}
	}
	gk.ef.retain(acc, idx)
	return sparsePayload(idx, val)
}

// Exchange implements Algorithm via the sparse allgather.
func (gk *GaussianK) Exchange(p Payload, g []float32, c *comm.Communicator) error {
	return sparseExchange(p, g, c)
}

// ExchangeKind implements Algorithm.
func (gk *GaussianK) ExchangeKind() netsim.ExchangeKind { return netsim.ExchangeAllgather }

// PayloadBytes implements Algorithm: 32k bits expected (paper accounting).
func (gk *GaussianK) PayloadBytes(n int) int64 { return int64(4 * gk.k) }

// Reset implements Algorithm.
func (gk *GaussianK) Reset() { gk.ef.reset() }

// ---- Rand-K ----

// RandK transmits k uniformly random coordinates with error feedback
// (Stich et al., the paper's reference [27]). It is the cheapest sparsifier
// computationally — O(k) selection — but converges slower for a fixed k.
type RandK struct {
	k   int
	n   int
	ef  errorFeedback
	rng *tensor.RNG
}

// NewRandK builds a Rand-K sparsifier from the options.
func NewRandK(o Options) *RandK {
	o.validate()
	return &RandK{k: o.K(), n: o.N, ef: newErrorFeedback(o.N), rng: tensor.NewRNG(o.Seed)}
}

// Name implements Algorithm.
func (r *RandK) Name() string { return "randk" }

// Encode samples k distinct coordinates (Floyd's algorithm).
func (r *RandK) Encode(g []float32) Payload {
	acc := r.ef.accumulate(g)
	seen := make(map[int32]struct{}, r.k)
	idx := make([]int32, 0, r.k)
	for j := r.n - r.k; j < r.n; j++ {
		t := int32(r.rng.Intn(j + 1))
		if _, dup := seen[t]; dup {
			t = int32(j)
		}
		seen[t] = struct{}{}
		idx = append(idx, t)
	}
	val := make([]float32, len(idx))
	for i, ix := range idx {
		val[i] = acc[ix]
	}
	r.ef.retain(acc, idx)
	return sparsePayload(idx, val)
}

// Exchange implements Algorithm via the sparse allgather.
func (r *RandK) Exchange(p Payload, g []float32, c *comm.Communicator) error {
	return sparseExchange(p, g, c)
}

// ExchangeKind implements Algorithm.
func (r *RandK) ExchangeKind() netsim.ExchangeKind { return netsim.ExchangeAllgather }

// PayloadBytes implements Algorithm.
func (r *RandK) PayloadBytes(n int) int64 { return int64(4 * r.k) }

// Reset implements Algorithm.
func (r *RandK) Reset() { r.ef.reset() }
