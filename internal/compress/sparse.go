package compress

import (
	"a2sgd/internal/comm"
	"a2sgd/internal/netsim"
	"a2sgd/internal/stats"
	"a2sgd/internal/tensor"
)

// sparseScratch owns the reusable buffers of the sparsifying algorithms: the
// selection heap, the (index, value) pair of the current selection and the
// packed payload words. All of it is recycled across Encode calls on one
// instance — the zero-allocation steady state the hot-path benchmarks pin —
// which is why a sparse Payload is only valid until the next Encode on the
// same instance (see the Payload contract in compress.go).
type sparseScratch struct {
	heap []int32                // top-k index heap, sized to the bucket length
	abs  []float32              // |v| precomputed for the heap's comparisons
	idx  []int32                // selected indices of the current Encode
	val  []float32              // selected values of the current Encode
	data []float32              // packed interleaved payload of the current Encode
	agv  comm.AllgatherVScratch // allgatherv buffers of the Exchange side
	fv   tensor.VecView         // flat-call adapter view
}

// selectionSlack is the pre-sizing headroom above the nominal k: Gaussian-K's
// selected count varies around k (the threshold targets k only in
// expectation), so sizing exactly to k made the first few Encodes grow the
// idx/val/data buffers. A quarter of k plus a constant floor absorbs the
// fluctuation so even the first Encode stays off the allocator.
func selectionSlack(k int) int { return k + k/4 + 16 }

// newSparseScratch pre-sizes the selection buffers with slack above k so
// even the first Encode on an instance allocates only if the selection far
// outgrows k (Top-K and Rand-K never grow; Gaussian-K fluctuates within the
// slack in practice).
func newSparseScratch(n, k int) sparseScratch {
	s := selectionSlack(k)
	return sparseScratch{
		heap: make([]int32, n),
		abs:  make([]float32, n),
		idx:  make([]int32, 0, s),
		val:  make([]float32, 0, s),
		data: make([]float32, 0, 2*s),
	}
}

// payload packs the current selection (s.idx, s.val) as interleaved float32
// words: [idx0 val0 idx1 val1 ...] with indices bit-cast. Actual wire size is
// 64k bits; the paper's Table 2 accounts only the 32k value bits, which
// PayloadBytes mirrors (documented in EXPERIMENTS.md). The returned Data
// aliases s.data — valid until the next Encode on the owning instance.
func (s *sparseScratch) payload() Payload {
	d := growF32(&s.data, 2*len(s.idx))
	for i, ix := range s.idx {
		d[2*i] = comm.Float32FromIndex(uint32(ix))
		d[2*i+1] = s.val[i]
	}
	return Payload{Data: d, Bits: int64(32 * len(s.idx))}
}

// valuesAt fills s.val with v[ix] for every selected index.
func (s *sparseScratch) valuesAt(v []float32) {
	val := growF32(&s.val, len(s.idx))
	for i, ix := range s.idx {
		val[i] = v[ix]
	}
}

// topK selects the indices of the k largest |v| entries into s.idx using an
// index max-heap built in O(n) followed by k pops of O(log n) — the
// O(n + k log n) computation the paper's Table 2 lists. The magnitudes are
// precomputed once into the abs scratch with the vector kernel so the
// O(n log n)-ish comparison volume reads a flat array instead of re-deriving
// |v[i]| per compare. The heap storage and the result slice live on the
// scratch and are recycled across calls.
func (s *sparseScratch) topK(v []float32, k int) {
	n := len(v)
	if cap(s.idx) < k {
		s.idx = make([]int32, 0, selectionSlack(k))
	}
	if k >= n {
		s.idx = s.idx[:n]
		for i := range s.idx {
			s.idx[i] = int32(i)
		}
		return
	}
	if cap(s.abs) < n {
		s.abs = make([]float32, n)
	}
	av := s.abs[:n]
	tensor.AbsInto(av, v)
	abs := func(i int32) float32 { return av[i] }
	if cap(s.heap) < n {
		s.heap = make([]int32, n)
	}
	heap := s.heap[:n]
	for i := range heap {
		heap[i] = int32(i)
	}
	siftDown := func(lo, hi int) {
		root := lo
		for {
			child := 2*root + 1
			if child >= hi {
				break
			}
			if child+1 < hi && abs(heap[child+1]) > abs(heap[child]) {
				child++
			}
			if abs(heap[child]) <= abs(heap[root]) {
				break
			}
			heap[root], heap[child] = heap[child], heap[root]
			root = child
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(i, n)
	}
	out := s.idx[:0]
	hi := n
	for len(out) < k {
		out = append(out, heap[0])
		hi--
		heap[0] = heap[hi]
		siftDown(0, hi)
	}
	s.idx = out
}

// topKIndices is the standalone form of sparseScratch.topK: it returns the
// indices of the k largest |v| entries in a fresh slice. Tests and one-shot
// callers use it; the steady-state hot path goes through the scratch.
func topKIndices(v []float32, k int) []int32 {
	var sc sparseScratch
	sc.topK(v, k)
	return sc.idx
}

// sparseExchange allgathers every worker's (index, value) pairs and
// reconstructs the worker-averaged dense gradient in g. This is the
// Allgather exchange path the paper credits for Gaussian-K's iteration-time
// advantage on fast networks (§4.4).
func sparseExchange(p Payload, g []float32, c *comm.Communicator, sc *comm.AllgatherVScratch) error {
	all, _, err := c.AllgatherVInto(p.Data, sc)
	if err != nil {
		return err
	}
	tensor.Zero(g)
	inv := 1 / float32(c.Size())
	for i := 0; i+1 < len(all); i += 2 {
		ix := int(comm.Float32ToIndex(all[i]))
		if ix >= 0 && ix < len(g) {
			g[ix] += all[i+1] * inv
		}
	}
	return nil
}

// sparseExchangeView is sparseExchange reconstructing directly into a
// strided view: zero the segments, then scatter-add each gathered
// (index, value) pair through the view's offset table. The adds land in the
// same order as the flat loop, so the result is bitwise identical.
func sparseExchangeView(p Payload, v *tensor.VecView, c *comm.Communicator, sc *comm.AllgatherVScratch) error {
	if g := v.Contiguous(); g != nil || v.Len() == 0 {
		return sparseExchange(p, g, c, sc)
	}
	all, _, err := c.AllgatherVInto(p.Data, sc)
	if err != nil {
		return err
	}
	v.Zero()
	inv := 1 / float32(c.Size())
	n := v.Len()
	for i := 0; i+1 < len(all); i += 2 {
		ix := int(comm.Float32ToIndex(all[i]))
		if ix >= 0 && ix < n {
			v.AddAt(ix, all[i+1]*inv)
		}
	}
	return nil
}

// errorFeedback is the residual memory shared by the sparsifiers: the
// un-transmitted part of each gradient is accumulated and re-injected the
// next step, the standard memory-compensation of Stich et al. (the paper's
// reference [27]).
type errorFeedback struct {
	residual []float32
	acc      []float32 // scratch: residual + g
}

func newErrorFeedback(n int) errorFeedback {
	return errorFeedback{residual: make([]float32, n), acc: make([]float32, n)}
}

// accumulate forms acc = residual + g and returns it.
func (e *errorFeedback) accumulate(g []float32) []float32 {
	if len(g) != len(e.residual) {
		panic("compress: gradient length changed between steps")
	}
	for i, r := range e.residual {
		e.acc[i] = r + g[i]
	}
	return e.acc
}

// accumulateView is accumulate over a strided view: acc = residual, then
// acc += v segment-by-segment with the per-lane vector add — element-for-
// element the same r + g[i] sum, so bitwise identical to accumulate on the
// flat vector.
func (e *errorFeedback) accumulateView(v *tensor.VecView) []float32 {
	if v.Len() != len(e.residual) {
		panic("compress: gradient length changed between steps")
	}
	copy(e.acc, e.residual)
	v.AddInto(e.acc)
	return e.acc
}

// retain records the new residual: acc minus what was transmitted.
// transmitted is given by the selected indices into acc.
func (e *errorFeedback) retain(acc []float32, selected []int32) {
	copy(e.residual, acc)
	for _, ix := range selected {
		e.residual[ix] = 0
	}
}

func (e *errorFeedback) reset() {
	tensor.Zero(e.residual)
}

// ---- Top-K ----

// TopK transmits the k largest-magnitude entries of the error-compensated
// gradient. Selection uses a max-heap built in O(n) followed by k pops of
// O(log n) — the O(n + k log n) computation the paper's Table 2 lists.
type TopK struct {
	k  int
	ef errorFeedback
	sc sparseScratch
}

// NewTopK builds a Top-K sparsifier from the options (k = Density·N).
func NewTopK(o Options) *TopK {
	o.validate()
	return &TopK{k: o.K(), ef: newErrorFeedback(o.N), sc: newSparseScratch(o.N, o.K())}
}

// Name implements Algorithm.
func (t *TopK) Name() string { return "topk" }

// K exposes the selection count (for reports).
func (t *TopK) K() int { return t.k }

// Encode selects the top-k entries of residual+g by magnitude. The returned
// payload aliases instance scratch (valid until the next Encode).
func (t *TopK) Encode(g []float32) Payload {
	return t.EncodeView(t.sc.fv.Reset1(g))
}

// EncodeView implements Algorithm: the error-compensated gradient is
// accumulated from the view's segments; selection runs on the contiguous
// accumulator as usual.
func (t *TopK) EncodeView(v *tensor.VecView) Payload {
	acc := t.ef.accumulateView(v)
	t.sc.topK(acc, t.k)
	t.sc.valuesAt(acc)
	t.ef.retain(acc, t.sc.idx)
	return t.sc.payload()
}

// Exchange implements Algorithm via the sparse allgather.
func (t *TopK) Exchange(p Payload, g []float32, c *comm.Communicator) error {
	return sparseExchange(p, g, c, &t.sc.agv)
}

// ExchangeView implements Algorithm, scatter-adding into the view.
func (t *TopK) ExchangeView(p Payload, v *tensor.VecView, c *comm.Communicator) error {
	return sparseExchangeView(p, v, c, &t.sc.agv)
}

// ExchangeKind implements Algorithm: AllgatherV (the selected count is fixed
// but the exchange primitive — and so its extra length round — is the same
// variable-length allgather Gaussian-K uses).
func (t *TopK) ExchangeKind() netsim.ExchangeKind { return netsim.ExchangeAllgatherV }

// PayloadBytes implements Algorithm: 32k bits (paper accounting).
func (t *TopK) PayloadBytes(n int) int64 { return int64(4 * t.k) }

// Reset implements Algorithm.
func (t *TopK) Reset() { t.ef.reset() }

// SaveState implements StateSaver: the error-feedback residual.
func (t *TopK) SaveState() State {
	var s State
	s.setVec("ef", t.ef.residual)
	return s
}

// LoadState implements StateLoader.
func (t *TopK) LoadState(s State) { s.vec("ef", t.ef.residual) }

// ---- Gaussian-K ----

// GaussianK (Shi et al., the paper's reference [25]) avoids Top-K's heap by
// assuming gradient values are Gaussian: it fits N(µ, σ²) in one pass and
// derives a magnitude threshold whose expected exceedance count is k, then
// transmits every entry above the threshold. The selected count varies
// around k, which is why the exchange is an AllgatherV.
type GaussianK struct {
	k      int
	n      int
	ef     errorFeedback
	sc     sparseScratch
	selblk []int32 // per-block selection output of GaussTailSelect
}

// gaussSelBlock is the chunk size of the vectorized threshold scan: large
// enough to amortize the kernel call, small enough that the int32 index
// block stays cache-resident.
const gaussSelBlock = 4096

// NewGaussianK builds a Gaussian-K sparsifier from the options.
func NewGaussianK(o Options) *GaussianK {
	o.validate()
	return &GaussianK{
		k: o.K(), n: o.N, ef: newErrorFeedback(o.N),
		sc:     newSparseScratch(0, o.K()),
		selblk: make([]int32, gaussSelBlock),
	}
}

// Name implements Algorithm.
func (gk *GaussianK) Name() string { return "gaussiank" }

// Encode estimates the Gaussian threshold and selects entries above it. The
// returned payload aliases instance scratch (valid until the next Encode).
func (gk *GaussianK) Encode(g []float32) Payload {
	return gk.EncodeView(gk.sc.fv.Reset1(g))
}

// EncodeView implements Algorithm. The threshold scan runs in gaussSelBlock
// chunks through the vectorized tail selector; its float64 |x−µ| > τ
// predicate is element-for-element the scalar one, so the selection — and
// with it the residual and the payload — is bitwise unchanged.
func (gk *GaussianK) EncodeView(v *tensor.VecView) Payload {
	acc := gk.ef.accumulateView(v)
	fit := stats.FitGaussian(acc)
	tau := fit.TailThreshold(float64(gk.k) / float64(gk.n))
	idx, val := gk.sc.idx[:0], gk.sc.val[:0]
	for lo := 0; lo < len(acc); lo += gaussSelBlock {
		hi := lo + gaussSelBlock
		if hi > len(acc) {
			hi = len(acc)
		}
		nsel := tensor.GaussTailSelect(gk.selblk, acc[lo:hi], int32(lo), fit.Mu, tau)
		for _, ix := range gk.selblk[:nsel] {
			idx = append(idx, ix)
			val = append(val, acc[ix])
		}
	}
	// Degenerate safety net: a constant gradient has σ=0 and selects
	// nothing; fall back to transmitting the single largest entry so the
	// method always makes progress.
	if len(idx) == 0 && len(acc) > 0 {
		best := int32(0)
		for i := 1; i < len(acc); i++ {
			a, b := acc[i], acc[best]
			if a < 0 {
				a = -a
			}
			if b < 0 {
				b = -b
			}
			if a > b {
				best = int32(i)
			}
		}
		idx = append(idx, best)
		val = append(val, acc[best])
	}
	gk.sc.idx, gk.sc.val = idx, val
	gk.ef.retain(acc, idx)
	return gk.sc.payload()
}

// Exchange implements Algorithm via the sparse allgather.
func (gk *GaussianK) Exchange(p Payload, g []float32, c *comm.Communicator) error {
	return sparseExchange(p, g, c, &gk.sc.agv)
}

// ExchangeView implements Algorithm, scatter-adding into the view.
func (gk *GaussianK) ExchangeView(p Payload, v *tensor.VecView, c *comm.Communicator) error {
	return sparseExchangeView(p, v, c, &gk.sc.agv)
}

// ExchangeKind implements Algorithm.
func (gk *GaussianK) ExchangeKind() netsim.ExchangeKind { return netsim.ExchangeAllgatherV }

// PayloadBytes implements Algorithm: 32k bits expected (paper accounting).
func (gk *GaussianK) PayloadBytes(n int) int64 { return int64(4 * gk.k) }

// Reset implements Algorithm.
func (gk *GaussianK) Reset() { gk.ef.reset() }

// SaveState implements StateSaver: the error-feedback residual.
func (gk *GaussianK) SaveState() State {
	var s State
	s.setVec("ef", gk.ef.residual)
	return s
}

// LoadState implements StateLoader.
func (gk *GaussianK) LoadState(s State) { s.vec("ef", gk.ef.residual) }

// ---- Rand-K ----

// RandK transmits k uniformly random coordinates with error feedback
// (Stich et al., the paper's reference [27]). It is the cheapest sparsifier
// computationally — O(k) selection — but converges slower for a fixed k.
type RandK struct {
	k    int
	n    int
	ef   errorFeedback
	sc   sparseScratch
	seen map[int32]struct{}
	rng  *tensor.RNG
}

// NewRandK builds a Rand-K sparsifier from the options.
func NewRandK(o Options) *RandK {
	o.validate()
	return &RandK{
		k: o.K(), n: o.N, ef: newErrorFeedback(o.N),
		sc:   newSparseScratch(0, o.K()),
		seen: make(map[int32]struct{}, o.K()),
		rng:  tensor.NewRNG(o.Seed),
	}
}

// Name implements Algorithm.
func (r *RandK) Name() string { return "randk" }

// Encode samples k distinct coordinates (Floyd's algorithm). The returned
// payload aliases instance scratch (valid until the next Encode).
func (r *RandK) Encode(g []float32) Payload {
	return r.EncodeView(r.sc.fv.Reset1(g))
}

// EncodeView implements Algorithm: accumulation reads the view's segments;
// sampling is over flattened coordinates and unchanged.
func (r *RandK) EncodeView(v *tensor.VecView) Payload {
	acc := r.ef.accumulateView(v)
	clear(r.seen)
	idx := r.sc.idx[:0]
	for j := r.n - r.k; j < r.n; j++ {
		t := int32(r.rng.Intn(j + 1))
		if _, dup := r.seen[t]; dup {
			t = int32(j)
		}
		r.seen[t] = struct{}{}
		idx = append(idx, t)
	}
	r.sc.idx = idx
	r.sc.valuesAt(acc)
	r.ef.retain(acc, idx)
	return r.sc.payload()
}

// Exchange implements Algorithm via the sparse allgather.
func (r *RandK) Exchange(p Payload, g []float32, c *comm.Communicator) error {
	return sparseExchange(p, g, c, &r.sc.agv)
}

// ExchangeView implements Algorithm, scatter-adding into the view.
func (r *RandK) ExchangeView(p Payload, v *tensor.VecView, c *comm.Communicator) error {
	return sparseExchangeView(p, v, c, &r.sc.agv)
}

// ExchangeKind implements Algorithm.
func (r *RandK) ExchangeKind() netsim.ExchangeKind { return netsim.ExchangeAllgatherV }

// PayloadBytes implements Algorithm.
func (r *RandK) PayloadBytes(n int) int64 { return int64(4 * r.k) }

// Reset implements Algorithm.
func (r *RandK) Reset() { r.ef.reset() }

// SaveState implements StateSaver: the residual plus the coordinate-sampling
// RNG position.
func (r *RandK) SaveState() State {
	var s State
	s.setVec("ef", r.ef.residual)
	st := r.rng.State()
	s.setWords("rng", st[:])
	return s
}

// LoadState implements StateLoader.
func (r *RandK) LoadState(s State) {
	s.vec("ef", r.ef.residual)
	if w := s.words("rng"); len(w) == 4 {
		r.rng.SetState([4]uint64{w[0], w[1], w[2], w[3]})
	}
}
