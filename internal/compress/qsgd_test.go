package compress

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"a2sgd/internal/comm"
	"a2sgd/internal/netsim"
	"a2sgd/internal/tensor"
)

func TestQSGDRoundTripBounds(t *testing.T) {
	// Every decoded value must be one of the s+1 levels of ‖g‖₂ with the
	// original sign, and |decoded − original| ≤ ‖g‖₂/s.
	n := 1000
	o := DefaultOptions(n)
	o.Seed = 21
	q := NewQSGD(o)
	g := randGrad(17, n)
	norm := tensor.Norm2(g)
	p := q.Encode(g)
	dec := make([]float32, n)
	q.Decode(p.Data, dec)
	step := norm / float64(q.Levels())
	for i := range g {
		d := math.Abs(float64(dec[i]) - float64(g[i]))
		if d > step+1e-6 {
			t.Fatalf("elem %d: |%v - %v| = %v > level step %v", i, dec[i], g[i], d, step)
		}
		if dec[i] != 0 && (dec[i] > 0) != (g[i] >= 0) {
			t.Fatalf("elem %d: sign flipped: %v vs %v", i, dec[i], g[i])
		}
		// Must be an exact multiple of norm/s.
		lv := math.Abs(float64(dec[i])) / step
		if math.Abs(lv-math.Round(lv)) > 1e-4 {
			t.Fatalf("elem %d: %v is not a quantization level", i, dec[i])
		}
	}
}

func TestQSGDUnbiased(t *testing.T) {
	// E[decode(encode(g))] == g: average many stochastic encodings.
	n := 64
	g := randGrad(23, n)
	o := DefaultOptions(n)
	mean := make([]float64, n)
	const trials = 3000
	for tr := 0; tr < trials; tr++ {
		o.Seed = uint64(1000 + tr)
		q := NewQSGD(o)
		p := q.Encode(g)
		dec := make([]float32, n)
		q.Decode(p.Data, dec)
		for i := range mean {
			mean[i] += float64(dec[i]) / trials
		}
	}
	norm := tensor.Norm2(g)
	for i := range g {
		// Standard error of the quantizer is ~norm/s per draw.
		tol := 4 * norm / float64(o.QuantLevels) / math.Sqrt(trials)
		if math.Abs(mean[i]-float64(g[i])) > tol+1e-4 {
			t.Fatalf("elem %d: E[q] = %v, want %v (tol %v)", i, mean[i], g[i], tol)
		}
	}
}

func TestQSGDZeroVector(t *testing.T) {
	q := NewQSGD(DefaultOptions(16))
	g := make([]float32, 16)
	p := q.Encode(g)
	dec := make([]float32, 16)
	tensor.Fill(dec, 9)
	q.Decode(p.Data, dec)
	for i, v := range dec {
		if v != 0 {
			t.Fatalf("zero vector decoded to %v at %d", v, i)
		}
	}
}

func TestQSGDBitsAccounting(t *testing.T) {
	// s = 4 → 3 level bits + 1 sign = 4 bits per element + 32 for the norm.
	n := 1000
	q := NewQSGD(DefaultOptions(n))
	p := q.Encode(make([]float32, n))
	if p.Bits != int64(4*n+32) {
		t.Errorf("bits = %d, want %d", p.Bits, 4*n+32)
	}
	if q.PayloadBytes(n) != int64((4*n+32+7)/8) {
		t.Errorf("payload bytes = %d", q.PayloadBytes(n))
	}
	// Packed words: ceil(4000/32) = 125 plus the norm word.
	if len(p.Data) != 126 {
		t.Errorf("packed words = %d, want 126", len(p.Data))
	}
	if q.ExchangeKind() != netsim.ExchangeAllreduce {
		t.Error("kind")
	}
	if q.Name() != "qsgd" {
		t.Error("name")
	}
}

func TestQSGDLevelsClamp(t *testing.T) {
	q := NewQSGD(Options{N: 10, QuantLevels: 0, Seed: 1})
	if q.Levels() != 1 {
		t.Errorf("levels clamped to %d, want 1", q.Levels())
	}
}

// Property: round trip of arbitrary gradients never produces NaN/Inf and
// respects the level-step error bound.
func TestQSGDProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(300)
		g := make([]float32, n)
		rng.NormVec(g, 0, float32(rng.Float64()*10))
		o := DefaultOptions(n)
		o.Seed = seed
		q := NewQSGD(o)
		p := q.Encode(g)
		dec := make([]float32, n)
		q.Decode(p.Data, dec)
		if tensor.HasNaNOrInf(dec) {
			return false
		}
		step := tensor.Norm2(g)/float64(q.Levels()) + 1e-6
		for i := range g {
			if math.Abs(float64(dec[i]-g[i])) > step {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQSGDSyncApproximatesAverage(t *testing.T) {
	p, n := 4, 2000
	grads := make([][]float32, p)
	for r := range grads {
		grads[r] = randGrad(uint64(30+r), n)
	}
	want := denseAverage(grads)
	out := runSync(t, p, func(rank int) Algorithm {
		o := DefaultOptions(n)
		o.Seed = uint64(rank + 1)
		return NewQSGD(o)
	}, grads)
	// Per-element quantization error is ≤ ‖g_w‖/s per worker; averaging p
	// independent workers shrinks the RMS by ~1/√p. Use the largest worker
	// norm for a safe analytic bound.
	var rms, maxNorm float64
	for _, g := range grads {
		if nn := tensor.Norm2(g); nn > maxNorm {
			maxNorm = nn
		}
	}
	for i := range want {
		d := float64(out[0][i] - want[i])
		rms += d * d
	}
	rms = math.Sqrt(rms / float64(n))
	bound := maxNorm / 4 / math.Sqrt(float64(p))
	if rms > bound {
		t.Errorf("rms error %v exceeds bound %v", rms, bound)
	}
	// All ranks must agree exactly (same gathered data).
	for r := 1; r < p; r++ {
		for i := range out[0] {
			if out[r][i] != out[0][i] {
				t.Fatalf("ranks disagree at %d", i)
			}
		}
	}
}

// ---- TernGrad ----

func TestTernGradRoundTripLevels(t *testing.T) {
	n := 500
	o := DefaultOptions(n)
	o.Seed = 77
	tg := NewTernGrad(o)
	g := randGrad(31, n)
	scale := tensor.AbsMax(g)
	p := tg.Encode(g)
	if p.Bits != int64(2*n+32) {
		t.Errorf("bits = %d", p.Bits)
	}
	// Decode through Exchange with a single worker (identity averaging).
	out := append([]float32(nil), g...)
	var got []float32
	var mu sync.Mutex
	err := comm.RunGroup(1, func(c *comm.Communicator) error {
		if err := tg.Exchange(p, out, c); err != nil {
			return err
		}
		mu.Lock()
		got = append([]float32(nil), out...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		av := math.Abs(float64(v))
		if av != 0 && math.Abs(av-float64(scale)) > 1e-5 {
			t.Fatalf("elem %d: %v is not in {0, ±%v}", i, v, scale)
		}
		if v != 0 && (v > 0) != (g[i] >= 0) {
			t.Fatalf("elem %d: sign flipped", i)
		}
	}
	if tg.Name() != "terngrad" {
		t.Error("name")
	}
	if tg.PayloadBytes(100) != int64((200+32+7)/8) {
		t.Error("payload bytes")
	}
	tg.Reset()
}

func TestTernGradUnbiased(t *testing.T) {
	n := 32
	g := randGrad(41, n)
	mean := make([]float64, n)
	const trials = 4000
	for tr := 0; tr < trials; tr++ {
		o := DefaultOptions(n)
		o.Seed = uint64(tr + 1)
		tg := NewTernGrad(o)
		p := tg.Encode(g)
		out := append([]float32(nil), g...)
		if err := comm.RunGroup(1, func(c *comm.Communicator) error {
			return tg.Exchange(p, out, c)
		}); err != nil {
			t.Fatal(err)
		}
		for i := range mean {
			mean[i] += float64(out[i]) / trials
		}
	}
	scale := float64(tensor.AbsMax(g))
	for i := range g {
		tol := 4 * scale / math.Sqrt(trials)
		if math.Abs(mean[i]-float64(g[i])) > tol+1e-4 {
			t.Fatalf("elem %d: E[tern] = %v, want %v", i, mean[i], g[i])
		}
	}
}
