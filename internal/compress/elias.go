package compress

import (
	"fmt"
	"math"
	"math/bits"

	"a2sgd/internal/comm"
	"a2sgd/internal/netsim"
	"a2sgd/internal/tensor"
)

// bitWriter packs an MSB-first bit stream into uint32 words. reset keeps the
// word capacity, so a writer owned by an algorithm instance is recycled
// across Encode calls without reallocating.
type bitWriter struct {
	words []uint32
	nbits uint64
}

// reset rewinds the writer for a new stream, retaining capacity.
func (w *bitWriter) reset() {
	w.words = w.words[:0]
	w.nbits = 0
}

func (w *bitWriter) writeBit(b uint32) {
	word := int(w.nbits / 32)
	for word >= len(w.words) {
		w.words = append(w.words, 0)
	}
	if b != 0 {
		w.words[word] |= 1 << (31 - uint(w.nbits%32))
	}
	w.nbits++
}

// writeBits emits the low `width` bits of v, MSB first.
func (w *bitWriter) writeBits(v uint32, width uint) {
	for i := int(width) - 1; i >= 0; i-- {
		w.writeBit((v >> uint(i)) & 1)
	}
}

// bitReader reads an MSB-first bit stream from uint32 words.
type bitReader struct {
	words []uint32
	pos   uint64
}

func (r *bitReader) readBit() uint32 {
	word := int(r.pos / 32)
	if word >= len(r.words) {
		return 0 // padding past the end decodes as zeros
	}
	b := (r.words[word] >> (31 - uint(r.pos%32))) & 1
	r.pos++
	return b
}

func (r *bitReader) readBits(width uint) uint32 {
	var v uint32
	for i := uint(0); i < width; i++ {
		v = v<<1 | r.readBit()
	}
	return v
}

// eliasGammaWrite encodes a positive integer x with Elias-gamma coding:
// ⌊log2 x⌋ zero bits, then the ⌊log2 x⌋+1 bits of x itself.
func eliasGammaWrite(w *bitWriter, x uint32) {
	if x == 0 {
		panic("compress: Elias gamma is defined for positive integers")
	}
	n := uint(31 - leadingZeros32(x)) // ⌊log2 x⌋
	for i := uint(0); i < n; i++ {
		w.writeBit(0)
	}
	w.writeBits(x, n+1)
}

// eliasGammaRead decodes one Elias-gamma integer.
func eliasGammaRead(r *bitReader) uint32 {
	n := uint(0)
	for r.readBit() == 0 {
		n++
		if n > 32 {
			return 1 // corrupt stream: fail safe to the smallest code
		}
	}
	// The leading 1 has been consumed; read the remaining n bits.
	return 1<<n | r.readBits(n)
}

func leadingZeros32(x uint32) int {
	n := 0
	if x == 0 {
		return 32
	}
	for x&0x80000000 == 0 {
		x <<= 1
		n++
	}
	return n
}

// QSGDElias is QSGD with the entropy coding the original paper analyses:
// each quantization level is Elias-gamma coded (levels concentrate near
// zero for Gaussian-like gradients, so the expected code length is short —
// this is where QSGD's "2.8n + 32 bits" figure comes from, derived for
// s = √n). Per element the stream holds gamma(level+1), then a sign bit for
// non-zero levels. The payload is variable length, so the exchange is an
// AllgatherV.
type QSGDElias struct {
	q *QSGD
	// Reusable scratch: the entropy-coded word stream and its bit-cast
	// payload (which the returned Payload aliases — valid until the next
	// Encode), the word view of the stream being decoded, and the decoded
	// chunk of Exchange. dirty is the high-water count of words the batched
	// packer may have left non-zero (it OR-stores, so the stream region
	// must be re-zeroed before the next Encode). Per-block field and
	// variate scratch is shared with the wrapped quantizer.
	words        []uint32
	dirty        int
	maxFieldBits uint // worst-case coded bits per element, from s
	data         []float32
	decodeWords  []uint32
	buf          []float32
	fv           tensor.VecView // flat-call adapter view
}

// NewQSGDElias builds the Elias-coded quantizer (levels = QuantLevels).
func NewQSGDElias(o Options) *QSGDElias {
	q := NewQSGD(o)
	// The batched writer emits gamma(level+1) in one two-word store, which
	// caps the code at 31 bits (level+1 < 2^15). The paper's s is 4; any
	// realistic level count is orders of magnitude below the cap.
	if q.s+1 >= 1<<15 {
		panic(fmt.Sprintf("compress: qsgd-elias supports at most %d levels, got %d", 1<<15-2, q.s))
	}
	return &QSGDElias{q: q, maxFieldBits: 2 * uint(bits.Len32(uint32(q.s+1)))}
}

// Name implements Algorithm.
func (e *QSGDElias) Name() string { return "qsgd-elias" }

// Levels exposes the quantization parameter s.
func (e *QSGDElias) Levels() int { return e.q.Levels() }

// Encode quantizes g and entropy-codes the stream. Payload layout, bit-cast
// into float32 words: word 0 = ‖g‖₂, word 1 = element count, words 2.. =
// the MSB-first bit stream. The returned payload aliases instance scratch
// (valid until the next Encode).
func (e *QSGDElias) Encode(g []float32) Payload {
	return e.EncodeView(e.fv.Reset1(g))
}

// EncodeView implements Algorithm. Quantization runs through the shared
// blocked kernel (the same levels, in the same RNG order, as the wrapped
// QSGD), and each block's fields are entropy-coded in one call to the
// batched Elias-gamma+sign writer instead of bit-by-bit — the wire bytes
// are unchanged from the historical per-bit writer.
func (e *QSGDElias) EncodeView(v *tensor.VecView) Payload {
	n := v.Len()
	norm := float32(v.Norm2())
	// Worst case every element codes at maxFieldBits, plus the two header
	// words and one spare word for the packer's unconditional straddle
	// store.
	maxWords := 2 + int((uint64(n)*uint64(e.maxFieldBits)+31)/32) + 1
	words := growU32(&e.words, maxWords)
	if hi := min(e.dirty, len(words)); hi > 0 {
		clear(words[:hi])
	}
	words[0] = math.Float32bits(norm)
	words[1] = math.Float32bits(comm.Float32FromIndex(uint32(n)))
	bitPos := uint64(0)
	if norm > 0 {
		si := 0
		for lo := 0; lo < n; lo += quantBlock {
			m := min(quantBlock, n-lo)
			rnd := growF64(&e.q.rnd, m)
			e.q.rng.Float64Vec(rnd)
			fields := growU32(&e.q.fields, m)
			quantizeViewBlock(fields, v, &si, lo, rnd, norm, e.q.s)
			bitPos = tensor.EliasGammaSignPack(words[2:], fields, bitPos)
		}
	}
	nw := 2 + int((bitPos+31)/32)
	if nw > e.dirty {
		e.dirty = nw
	}
	return Payload{Data: wordsPayload(words[:nw], &e.data), Bits: int64(bitPos) + 64}
}

// Decode expands one coded stream into dst.
func (e *QSGDElias) Decode(data []float32, dst []float32) {
	norm := data[0]
	n := int(comm.Float32ToIndex(data[1]))
	if n > len(dst) {
		n = len(dst)
	}
	tensor.Zero(dst)
	if norm == 0 {
		return
	}
	words := payloadWords(data[2:], &e.decodeWords)
	r := bitReader{words: words}
	s := float32(e.q.s)
	for i := 0; i < n; i++ {
		level := eliasGammaRead(&r) - 1
		if level == 0 {
			continue
		}
		v := norm * float32(level) / s
		if r.readBit() == 1 {
			v = -v
		}
		dst[i] = v
	}
}

// Exchange gathers every worker's variable-length stream and averages the
// decoded gradients into g.
func (e *QSGDElias) Exchange(p Payload, g []float32, c *comm.Communicator) error {
	return e.ExchangeView(p, e.fv.Reset1(g), c)
}

// ExchangeView implements Algorithm: each worker's stream decodes into
// contiguous scratch and averages into the view's segments per-lane.
func (e *QSGDElias) ExchangeView(p Payload, v *tensor.VecView, c *comm.Communicator) error {
	all, lens, err := c.AllgatherV(p.Data)
	if err != nil {
		return err
	}
	buf := growF32(&e.buf, v.Len())
	v.Zero()
	inv := 1 / float32(c.Size())
	off := 0
	for _, l := range lens {
		e.Decode(all[off:off+l], buf)
		v.AXPY(inv, buf)
		off += l
	}
	return nil
}

// ExchangeKind implements Algorithm.
func (e *QSGDElias) ExchangeKind() netsim.ExchangeKind { return netsim.ExchangeAllgather }

// PayloadBytes implements Algorithm. The expected code length depends on
// the gradient distribution; for Gaussian-like gradients with the paper's
// s = 4 almost every level is 0 (one bit each), so ~n/8 bytes is a safe
// planning figure; the paper's 2.8n-bit bound (for s = √n) is the
// worst-case analytic envelope we report here.
func (e *QSGDElias) PayloadBytes(n int) int64 {
	return (int64(math.Ceil(2.8*float64(n))) + 32 + 7) / 8
}

// Reset implements Algorithm.
func (e *QSGDElias) Reset() {}

// SaveState implements StateSaver: the wrapped quantizer's RNG stream.
func (e *QSGDElias) SaveState() State { return e.q.SaveState() }

// LoadState implements StateLoader.
func (e *QSGDElias) LoadState(s State) { e.q.LoadState(s) }
