package compress

import (
	"math"

	"a2sgd/internal/comm"
	"a2sgd/internal/netsim"
	"a2sgd/internal/tensor"
)

// QSGD implements the quantization scheme of Alistarh et al. (the paper's
// reference [21]): each gradient entry is stochastically rounded to one of
// s+1 magnitude levels of ‖g‖₂, giving an unbiased low-precision encoding.
//
// The encoding here is a real bit-packed stream — one sign bit plus
// ⌈log2(s+1)⌉ level bits per entry, preceded by the 32-bit norm — so the
// payload the collectives move is the genuinely compressed representation.
// With the paper's s = 4 that is 4n + 32 bits, close to the 2.8n + 32 the
// paper quotes for QSGD's Elias-coded stream (the small constant-factor gap
// is documented in EXPERIMENTS.md). The paper's measured QSGD baseline used
// a numpy implementation with O(n²) behaviour; this implementation is O(n),
// so our Figure 2 shows QSGD expensive but not quadratic — the ordering of
// the four algorithms is preserved.
type QSGD struct {
	s       int
	bitsPer uint // sign + level bits per element
	rng     *tensor.RNG

	// Reusable scratch (zero-allocation steady state): the packed word
	// buffer and the bit-cast payload of the current Encode, the word view
	// of the stream being decoded, the allgathered streams and the decoded
	// chunk of Exchange, plus per-block field and stochastic-rounding
	// buffers for the quantization kernel. The Encode payload aliases the
	// packed words — valid until the next Encode on this instance.
	words       []uint32
	data        []float32
	decodeWords []uint32
	gatherBuf   []float32
	decodeBuf   []float32
	fields      []uint32
	rnd         []float64
	fv          tensor.VecView // flat-call adapter view
}

// NewQSGD builds a QSGD quantizer from the options (levels = QuantLevels).
func NewQSGD(o Options) *QSGD {
	o.validate()
	s := o.QuantLevels
	if s < 1 {
		s = 1
	}
	levelBits := uint(1)
	for (1 << levelBits) < s+1 {
		levelBits++
	}
	return &QSGD{s: s, bitsPer: 1 + levelBits, rng: tensor.NewRNG(o.Seed)}
}

// Name implements Algorithm.
func (q *QSGD) Name() string { return "qsgd" }

// Levels exposes the quantization parameter s.
func (q *QSGD) Levels() int { return q.s }

// encodedWords returns the number of packed uint32 words for n elements
// (excluding the leading norm word).
func (q *QSGD) encodedWords(n int) int {
	bits := uint64(n) * uint64(q.bitsPer)
	return int((bits + 31) / 32)
}

// growU32 returns a length-m uint32 scratch slice backed by *buf.
func growU32(buf *[]uint32, m int) []uint32 {
	if cap(*buf) < m {
		*buf = make([]uint32, m)
	}
	*buf = (*buf)[:m]
	return *buf
}

// growF32 is growU32's float32 twin: the one place the scratch-recycling
// cap-check-and-grow idiom lives. Contents beyond the previous length are
// unspecified; callers overwrite every element.
func growF32(buf *[]float32, m int) []float32 {
	if cap(*buf) < m {
		*buf = make([]float32, m)
	}
	*buf = (*buf)[:m]
	return *buf
}

// growF64 completes the family for the stochastic-rounding variate buffer.
func growF64(buf *[]float64, m int) []float64 {
	if cap(*buf) < m {
		*buf = make([]float64, m)
	}
	*buf = (*buf)[:m]
	return *buf
}

// quantBlock is the block size for the quantize+pack loop: one block of
// fields and variates stays cache-resident, and 4096 fields at any bit
// width end exactly on a word boundary so blocks pack independently.
const quantBlock = 4096

// quantizeViewBlock quantizes the flattened span [lo, lo+len(fields)) of v
// into fields, splitting the kernel call at segment boundaries. rnd holds
// the block's pre-generated stochastic variates (parallel to fields). *si is
// the segment cursor, resumed across blocks — blocks advance monotonically.
// The blocks stay global (not per-segment) so the packed stream's block
// starts remain word-aligned regardless of where tensor boundaries fall,
// and the kernel is elementwise, so the stream is bitwise identical to
// quantizing the flat vector.
func quantizeViewBlock(fields []uint32, v *tensor.VecView, si *int, lo int, rnd []float64, norm float32, levels int) {
	segs, offs := v.Segments(), v.Offsets()
	done := 0
	for done < len(fields) {
		for offs[*si]+len(segs[*si]) <= lo+done {
			*si++
		}
		seg := segs[*si]
		segLo := lo + done - offs[*si]
		m := min(len(fields)-done, len(seg)-segLo)
		tensor.QuantizeFields(fields[done:done+m], seg[segLo:segLo+m], rnd[done:done+m], norm, levels)
		done += m
	}
}

// wordsPayload publishes packed words as a float32 collective payload.
// On builds with zero-copy word views the payload aliases words directly;
// otherwise it is converted into *data (instance scratch).
func wordsPayload(words []uint32, data *[]float32) []float32 {
	if tensor.WordsZeroCopy() {
		return tensor.F32FromU32(words)
	}
	out := growF32(data, len(words))
	for i, w := range words {
		out[i] = math.Float32frombits(w)
	}
	return out
}

// payloadWords is the inverse: a uint32 view of a received stream, copied
// through *scratch only on builds without zero-copy views.
func payloadWords(data []float32, scratch *[]uint32) []uint32 {
	if tensor.WordsZeroCopy() {
		return tensor.U32FromF32(data)
	}
	words := growU32(scratch, len(data))
	for i, f := range data {
		words[i] = math.Float32bits(f)
	}
	return words
}

// Encode quantizes g into the packed stream. Format, bit-cast into the
// float32 payload: word 0 = ‖g‖₂ (float), words 1.. = packed fields, LSB
// first within each word: [sign:1][level:bitsPer-1] per element. The
// returned payload aliases instance scratch (valid until the next Encode).
func (q *QSGD) Encode(g []float32) Payload {
	return q.EncodeView(q.fv.Reset1(g))
}

// EncodeView implements Algorithm over a strided view. The blocked loop
// runs over the flattened index space, so the stream — norm, RNG order,
// packed fields — is bitwise identical to encoding the flat vector.
func (q *QSGD) EncodeView(v *tensor.VecView) Payload {
	n := v.Len()
	norm := float32(v.Norm2())
	words := growU32(&q.words, 1+q.encodedWords(n))
	clear(words)
	words[0] = math.Float32bits(norm)
	if norm > 0 {
		// Stochastic rounding through the shared kernel (SIMD on amd64):
		// scaled = |x|/norm * s, level is floor(scaled) promoted with
		// probability frac(scaled). Blocked so fields and variates stay
		// cache-resident; the variates are pre-generated per block, which
		// consumes the RNG in exactly the scalar order.
		bitPos := uint64(0)
		si := 0
		for lo := 0; lo < n; lo += quantBlock {
			m := min(quantBlock, n-lo)
			rnd := growF64(&q.rnd, m)
			q.rng.Float64Vec(rnd)
			fields := growU32(&q.fields, m)
			quantizeViewBlock(fields, v, &si, lo, rnd, norm, q.s)
			bitPos = tensor.PackFields(words[1:], fields, q.bitsPer, bitPos)
		}
	}
	return Payload{Data: wordsPayload(words, &q.data), Bits: int64(n)*int64(q.bitsPer) + 32}
}

// Decode expands one packed stream into dst (adding is done by the caller).
func (q *QSGD) Decode(data []float32, dst []float32) {
	words := payloadWords(data, &q.decodeWords)
	norm := math.Float32frombits(words[0])
	if norm == 0 {
		tensor.Zero(dst)
		return
	}
	mask := uint32(1<<q.bitsPer) - 1
	bitPos := uint64(0)
	for i := range dst {
		w := 1 + bitPos/32
		off := uint(bitPos % 32)
		field := words[w] >> off
		if off+uint(q.bitsPer) > 32 && int(w+1) < len(words) {
			field |= words[w+1] << (32 - off)
		}
		field &= mask
		sign := field & 1
		level := field >> 1
		v := norm * float32(level) / float32(q.s)
		if sign == 1 {
			v = -v
		}
		dst[i] = v
		bitPos += uint64(q.bitsPer)
	}
}

// Exchange allgathers every worker's packed stream (equal sizes), decodes
// each and averages into g. Dequantize-then-reduce matches how QSGD composes
// with allreduce-style synchronization in practice: quantized streams are
// not reducible in their packed form.
func (q *QSGD) Exchange(p Payload, g []float32, c *comm.Communicator) error {
	return q.ExchangeView(p, q.fv.Reset1(g), c)
}

// ExchangeView implements Algorithm: each worker's stream is decoded into
// contiguous scratch and averaged into the view's segments with the
// per-lane AXPY — bitwise identical to the flat reconstruction.
func (q *QSGD) ExchangeView(p Payload, v *tensor.VecView, c *comm.Communicator) error {
	n := v.Len()
	all := growF32(&q.gatherBuf, len(p.Data)*c.Size())
	if err := c.Allgather(p.Data, all); err != nil {
		return err
	}
	buf := growF32(&q.decodeBuf, n)
	v.Zero()
	inv := 1 / float32(c.Size())
	for r := 0; r < c.Size(); r++ {
		q.Decode(all[r*len(p.Data):(r+1)*len(p.Data)], buf)
		v.AXPY(inv, buf)
	}
	return nil
}

// ExchangeKind implements Algorithm. The paper groups QSGD with the
// allreduce-style methods in its Table 2 traffic accounting (2.8n+32 bits
// per worker), so the α–β model treats its stream as an allreduce payload.
func (q *QSGD) ExchangeKind() netsim.ExchangeKind { return netsim.ExchangeAllreduce }

// PayloadBytes implements Algorithm: (bitsPer·n + 32)/8.
func (q *QSGD) PayloadBytes(n int) int64 {
	return (int64(n)*int64(q.bitsPer) + 32 + 7) / 8
}

// Reset implements Algorithm (QSGD is unbiased; no residual state).
func (q *QSGD) Reset() {}

// SaveState implements StateSaver: the stochastic-rounding RNG position.
func (q *QSGD) SaveState() State {
	var s State
	st := q.rng.State()
	s.setWords("rng", st[:])
	return s
}

// LoadState implements StateLoader.
func (q *QSGD) LoadState(s State) {
	if w := s.words("rng"); len(w) == 4 {
		q.rng.SetState([4]uint64{w[0], w[1], w[2], w[3]})
	}
}

// ---- TernGrad ----

// TernGrad (Wen et al., the paper's reference [20]) quantizes each entry to
// {-1, 0, +1} scaled by max|g| with stochastic rounding — the 3-level corner
// of the quantization family. Included as an extension algorithm.
type TernGrad struct {
	rng *tensor.RNG
	// Reusable scratch: packed words + bit-cast payload of the current
	// Encode (the payload aliases the words — valid until the next
	// Encode), the allgathered streams and the decoded chunk of Exchange,
	// and per-block kernel buffers.
	words     []uint32
	data      []float32
	gatherBuf []float32
	buf       []float32
	fields    []uint32
	rnd       []float64
	fv        tensor.VecView // flat-call adapter view
}

// NewTernGrad builds a TernGrad quantizer.
func NewTernGrad(o Options) *TernGrad {
	o.validate()
	return &TernGrad{rng: tensor.NewRNG(o.Seed)}
}

// Name implements Algorithm.
func (t *TernGrad) Name() string { return "terngrad" }

// Encode packs each entry into 2 bits: [sign:1][nonzero:1], preceded by the
// 32-bit scale max|g|. The returned payload aliases instance scratch (valid
// until the next Encode).
func (t *TernGrad) Encode(g []float32) Payload {
	return t.EncodeView(t.fv.Reset1(g))
}

// EncodeView implements Algorithm over a strided view (same bitwise-flat
// blocked structure as QSGD's).
func (t *TernGrad) EncodeView(v *tensor.VecView) Payload {
	n := v.Len()
	scale := v.AbsMax()
	words := growU32(&t.words, 1+(n*2+31)/32)
	clear(words)
	words[0] = math.Float32bits(scale)
	if scale > 0 {
		// TernGrad is the levels=1 corner of the stochastic level
		// quantization family: level ∈ {0,1} with P(1) = |x|/scale, so it
		// shares the QSGD kernel (SIMD on amd64) and block structure.
		bitPos := uint64(0)
		si := 0
		for lo := 0; lo < n; lo += quantBlock {
			m := min(quantBlock, n-lo)
			rnd := growF64(&t.rnd, m)
			t.rng.Float64Vec(rnd)
			fields := growU32(&t.fields, m)
			quantizeViewBlock(fields, v, &si, lo, rnd, scale, 1)
			bitPos = tensor.PackFields(words[1:], fields, 2, bitPos)
		}
	}
	return Payload{Bits: int64(2*n) + 32, Data: wordsPayload(words, &t.data)}
}

// Exchange allgathers and averages the ternary streams.
func (t *TernGrad) Exchange(p Payload, g []float32, c *comm.Communicator) error {
	return t.ExchangeView(p, t.fv.Reset1(g), c)
}

// ExchangeView implements Algorithm (decode into scratch, per-lane AXPY
// into the view's segments).
func (t *TernGrad) ExchangeView(p Payload, v *tensor.VecView, c *comm.Communicator) error {
	n := v.Len()
	all := growF32(&t.gatherBuf, len(p.Data)*c.Size())
	if err := c.Allgather(p.Data, all); err != nil {
		return err
	}
	buf := growF32(&t.buf, n)
	v.Zero()
	inv := 1 / float32(c.Size())
	for r := 0; r < c.Size(); r++ {
		chunk := all[r*len(p.Data) : (r+1)*len(p.Data)]
		scale := math.Float32frombits(math.Float32bits(chunk[0]))
		for i := 0; i < n; i++ {
			w := math.Float32bits(chunk[1+2*i/32])
			field := (w >> (uint(2*i) % 32)) & 3
			if field&2 != 0 {
				v := scale
				if field&1 != 0 {
					v = -v
				}
				buf[i] = v
			} else {
				buf[i] = 0
			}
		}
		v.AXPY(inv, buf)
	}
	return nil
}

// ExchangeKind implements Algorithm.
func (t *TernGrad) ExchangeKind() netsim.ExchangeKind { return netsim.ExchangeAllreduce }

// PayloadBytes implements Algorithm: (2n + 32)/8.
func (t *TernGrad) PayloadBytes(n int) int64 { return (int64(2*n) + 32 + 7) / 8 }

// Reset implements Algorithm.
func (t *TernGrad) Reset() {}

// SaveState implements StateSaver: the stochastic-rounding RNG position.
func (t *TernGrad) SaveState() State {
	var s State
	st := t.rng.State()
	s.setWords("rng", st[:])
	return s
}

// LoadState implements StateLoader.
func (t *TernGrad) LoadState(s State) {
	if w := s.words("rng"); len(w) == 4 {
		t.rng.SetState([4]uint64{w[0], w[1], w[2], w[3]})
	}
}
