package compress

import (
	"math"
	"testing"
)

// wordsEqual compares payload words by bit pattern: the float32 stream
// carries bit-cast integers, some of which happen to be NaN patterns where
// float equality is always false.
func wordsEqual(a, b []float32) (int, bool) {
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

// The Payload ownership contract (compress.go): Encode's result aliases
// instance scratch and is valid until the next Encode on that instance;
// callers that retain a payload copy it. These tests pin the three ways the
// contract could break: a retained copy going stale, two instances sharing
// scratch (Bucketed must never hand out aliasing payloads), and history-
// dependent scratch corruption (a recycled buffer leaking a previous step's
// bits into a later payload).

// aliasAlgos is every builtin leaf algorithm with a non-trivial payload.
var aliasAlgos = []string{"topk", "gaussiank", "randk", "dgc", "qsgd", "qsgd-elias", "terngrad"}

func buildNamed(t *testing.T, name string, n int, seed uint64) Algorithm {
	t.Helper()
	o := DefaultOptions(n)
	o.Seed = seed
	a, err := Build(&Spec{Name: name}, o)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestPayloadCopySurvivesNextEncode: a caller that copies a payload (the
// documented retention path) gets data that later Encodes on the same
// instance cannot corrupt, and that still decodes correctly even after the
// instance's scratch has been recycled. QSGD is the decode witness: its
// retained stream must decode to the same dense vector before and after two
// further Encodes reuse the word scratch.
func TestPayloadCopySurvivesNextEncode(t *testing.T) {
	const n = 4096
	for _, name := range aliasAlgos {
		alg := buildNamed(t, name, n, 5)
		g1 := randGrad(101, n)
		g2 := randGrad(102, n)
		p1 := alg.Encode(g1)
		c1 := append([]float32(nil), p1.Data...)
		p2 := alg.Encode(g2)
		// The second payload may reuse the first's backing memory — that is
		// the contract — but the caller's copy must live on its own array.
		if len(p2.Data) > 0 && len(c1) > 0 && &p2.Data[0] == &c1[0] {
			t.Fatalf("%s: caller copy aliases instance scratch", name)
		}
		// Re-encode g1 on a fresh instance: its payload must equal the copy,
		// proving the copy is the true step-1 encoding, not scratch residue.
		fresh := buildNamed(t, name, n, 5)
		q1 := fresh.Encode(g1)
		if len(q1.Data) != len(c1) {
			t.Fatalf("%s: retained copy length %d, fresh encode %d", name, len(c1), len(q1.Data))
		}
		if i, ok := wordsEqual(c1, q1.Data); !ok {
			t.Fatalf("%s: retained copy corrupted at word %d", name, i)
		}
	}

	// Decode witness: a retained QSGD stream decodes identically after the
	// instance's decode scratch has been through other streams.
	o := DefaultOptions(n)
	o.Seed = 5
	q := NewQSGD(o)
	g1, g2 := randGrad(103, n), randGrad(104, n)
	stream := append([]float32(nil), q.Encode(g1).Data...)
	want := make([]float32, n)
	q.Decode(stream, want)
	wantCopy := append([]float32(nil), want...)
	q.Encode(g2) // recycle encode scratch
	other := append([]float32(nil), q.Encode(g2).Data...)
	q.Decode(other, want) // recycle decode scratch with a different stream
	got := make([]float32, n)
	q.Decode(stream, got)
	if i, ok := wordsEqual(got, wantCopy); !ok {
		t.Fatalf("qsgd: retained stream decoded differently at %d after scratch reuse", i)
	}
}

// TestBucketedBucketsDontAliasScratch: Bucketed builds one instance per
// bucket, so encoding bucket j must never move or modify bucket i's live
// payload — the overlap pipeline holds several buckets' payloads in flight
// at once.
func TestBucketedBucketsDontAliasScratch(t *testing.T) {
	const n, buckets = 4096, 4
	bounds := make([]int, buckets+1)
	for i := range bounds {
		bounds[i] = i * n / buckets
	}
	for _, name := range aliasAlgos {
		bk := NewBucketed(bounds, func(b, bn int) Algorithm {
			return buildNamed(t, name, bn, uint64(b+1))
		})
		g := randGrad(55, n)
		payloads := make([]Payload, buckets)
		snaps := make([][]float32, buckets)
		for b := 0; b < buckets; b++ {
			payloads[b] = bk.EncodeBucket(b, bk.BucketSlice(b, g))
			snaps[b] = append([]float32(nil), payloads[b].Data...)
		}
		// After all buckets encoded, every earlier live payload must still
		// match its snapshot (no cross-bucket scratch sharing)...
		for b := 0; b < buckets; b++ {
			if len(payloads[b].Data) != len(snaps[b]) {
				t.Fatalf("%s: bucket %d payload resized by later buckets", name, b)
			}
			if i, ok := wordsEqual(payloads[b].Data, snaps[b]); !ok {
				t.Fatalf("%s: bucket %d payload corrupted at %d by a later bucket's encode", name, b, i)
			}
		}
		// ...and no two non-empty payloads may share backing memory.
		for a := 0; a < buckets; a++ {
			for b := a + 1; b < buckets; b++ {
				if len(payloads[a].Data) > 0 && len(payloads[b].Data) > 0 &&
					&payloads[a].Data[0] == &payloads[b].Data[0] {
					t.Fatalf("%s: buckets %d and %d alias one scratch buffer", name, a, b)
				}
			}
		}
	}
}

// TestEncodeReplayDeterministicUnderReuse is the fuzz-style reuse check: a
// multi-step encode sequence on one (scratch-recycling) instance must be
// bitwise identical to the same sequence on a fresh instance — any stale
// bits leaking from a recycled buffer into a later payload would diverge.
func TestEncodeReplayDeterministicUnderReuse(t *testing.T) {
	const n, steps = 2048, 6
	for _, name := range aliasAlgos {
		grads := make([][]float32, steps)
		for s := range grads {
			grads[s] = randGrad(uint64(200+s), n)
		}
		run := func() [][]float32 {
			alg := buildNamed(t, name, n, 9)
			out := make([][]float32, steps)
			for s, g := range grads {
				out[s] = append([]float32(nil), alg.Encode(g).Data...)
			}
			return out
		}
		a, b := run(), run()
		for s := range a {
			if len(a[s]) != len(b[s]) {
				t.Fatalf("%s: step %d payload lengths differ: %d vs %d", name, s, len(a[s]), len(b[s]))
			}
			if i, ok := wordsEqual(a[s], b[s]); !ok {
				t.Fatalf("%s: step %d payload diverged at word %d under scratch reuse", name, s, i)
			}
		}
	}
}
