package compress

import (
	"math"
	"testing"
	"testing/quick"

	"a2sgd/internal/comm"
	"a2sgd/internal/netsim"
	"a2sgd/internal/tensor"
)

func TestEliasGammaRoundTrip(t *testing.T) {
	var w bitWriter
	values := []uint32{1, 2, 3, 4, 5, 7, 8, 100, 1023, 1024, 1 << 20}
	for _, v := range values {
		eliasGammaWrite(&w, v)
	}
	r := &bitReader{words: w.words}
	for _, want := range values {
		if got := eliasGammaRead(r); got != want {
			t.Fatalf("round trip: got %d want %d", got, want)
		}
	}
}

func TestEliasGammaKnownCodes(t *testing.T) {
	// gamma(1) = "1" (1 bit); gamma(2) = "010" (3); gamma(4) = "00100" (5).
	cases := map[uint32]uint64{1: 1, 2: 3, 3: 3, 4: 5, 7: 5, 8: 7}
	for v, bits := range cases {
		var w bitWriter
		eliasGammaWrite(&w, v)
		if w.nbits != bits {
			t.Errorf("gamma(%d): %d bits, want %d", v, w.nbits, bits)
		}
	}
}

func TestEliasGammaZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var w bitWriter
	eliasGammaWrite(&w, 0)
}

func TestEliasGammaProperty(t *testing.T) {
	f := func(v uint32) bool {
		if v == 0 {
			v = 1
		}
		var w bitWriter
		eliasGammaWrite(&w, v)
		r := &bitReader{words: w.words}
		return eliasGammaRead(r) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBitWriterReaderAcrossWordBoundaries(t *testing.T) {
	var w bitWriter
	// 3 + 31 + 7 bits straddle word boundaries.
	w.writeBits(0b101, 3)
	w.writeBits(0x7fffffff, 31)
	w.writeBits(0b1010101, 7)
	r := &bitReader{words: w.words}
	if got := r.readBits(3); got != 0b101 {
		t.Fatalf("first field %b", got)
	}
	if got := r.readBits(31); got != 0x7fffffff {
		t.Fatalf("second field %x", got)
	}
	if got := r.readBits(7); got != 0b1010101 {
		t.Fatalf("third field %b", got)
	}
	// Reading past the end yields zeros, not a crash.
	if got := r.readBits(16); got != 0 {
		t.Fatalf("past-end read %x", got)
	}
}

func TestQSGDEliasRoundTripBounds(t *testing.T) {
	n := 2000
	o := DefaultOptions(n)
	o.Seed = 5
	e := NewQSGDElias(o)
	g := randGrad(55, n)
	norm := tensor.Norm2(g)
	p := e.Encode(g)
	dec := make([]float32, n)
	e.Decode(p.Data, dec)
	step := norm/float64(e.Levels()) + 1e-6
	for i := range g {
		if math.Abs(float64(dec[i]-g[i])) > step {
			t.Fatalf("elem %d: |%v-%v| > %v", i, dec[i], g[i], step)
		}
		if dec[i] != 0 && (dec[i] > 0) != (g[i] >= 0) {
			t.Fatalf("elem %d: sign flipped", i)
		}
	}
}

func TestQSGDEliasCompressesBelowFixedWidth(t *testing.T) {
	// For Gaussian gradients the entropy-coded stream must be much smaller
	// than the 4-bit fixed-width QSGD stream — the point of the coding.
	n := 100_000
	o := DefaultOptions(n)
	g := randGrad(66, n)
	fixed := NewQSGD(o).Encode(g)
	coded := NewQSGDElias(o).Encode(g)
	if coded.Bits >= fixed.Bits {
		t.Errorf("elias %d bits >= fixed %d bits", coded.Bits, fixed.Bits)
	}
	// And it must stay within the paper's analytic envelope.
	if coded.Bits > int64(2.8*float64(n))+64 {
		t.Errorf("elias %d bits exceeds 2.8n envelope", coded.Bits)
	}
	t.Logf("fixed=%d bits (%.2f/elem), elias=%d bits (%.2f/elem)",
		fixed.Bits, float64(fixed.Bits)/float64(n), coded.Bits, float64(coded.Bits)/float64(n))
}

func TestQSGDEliasZeroVector(t *testing.T) {
	e := NewQSGDElias(DefaultOptions(32))
	p := e.Encode(make([]float32, 32))
	dec := make([]float32, 32)
	tensor.Fill(dec, 5)
	e.Decode(p.Data, dec)
	for _, v := range dec {
		if v != 0 {
			t.Fatal("zero vector must decode to zeros")
		}
	}
}

func TestQSGDEliasSyncApproximatesAverage(t *testing.T) {
	p, n := 3, 3000
	grads := make([][]float32, p)
	for r := range grads {
		grads[r] = randGrad(uint64(80+r), n)
	}
	want := denseAverage(grads)
	out := runSync(t, p, func(rank int) Algorithm {
		o := DefaultOptions(n)
		o.Seed = uint64(rank + 1)
		return NewQSGDElias(o)
	}, grads)
	var maxNorm float64
	for _, g := range grads {
		if nn := tensor.Norm2(g); nn > maxNorm {
			maxNorm = nn
		}
	}
	var rms float64
	for i := range want {
		d := float64(out[0][i] - want[i])
		rms += d * d
	}
	rms = math.Sqrt(rms / float64(n))
	if bound := maxNorm / 4 / math.Sqrt(float64(p)); rms > bound {
		t.Errorf("rms %v > bound %v", rms, bound)
	}
	// All ranks agree.
	for r := 1; r < p; r++ {
		for i := range out[0] {
			if out[r][i] != out[0][i] {
				t.Fatalf("ranks disagree at %d", i)
			}
		}
	}
}

func TestQSGDEliasMetadata(t *testing.T) {
	e := NewQSGDElias(DefaultOptions(1000))
	if e.Name() != "qsgd-elias" {
		t.Error("name")
	}
	if e.ExchangeKind() != netsim.ExchangeAllgather {
		t.Error("kind")
	}
	if e.PayloadBytes(1000) != (2800+32+7)/8 {
		t.Errorf("payload bytes %d", e.PayloadBytes(1000))
	}
	e.Reset()
}

func TestQSGDEliasUnbiased(t *testing.T) {
	n := 32
	g := randGrad(90, n)
	mean := make([]float64, n)
	const trials = 2000
	for tr := 0; tr < trials; tr++ {
		o := DefaultOptions(n)
		o.Seed = uint64(tr + 1)
		e := NewQSGDElias(o)
		p := e.Encode(g)
		dec := make([]float32, n)
		e.Decode(p.Data, dec)
		for i := range mean {
			mean[i] += float64(dec[i]) / trials
		}
	}
	norm := tensor.Norm2(g)
	for i := range g {
		tol := 4*norm/4/math.Sqrt(trials) + 1e-4
		if math.Abs(mean[i]-float64(g[i])) > tol {
			t.Fatalf("elem %d: E=%v want %v", i, mean[i], g[i])
		}
	}
}

func TestQSGDEliasCorruptStreamFailsSafe(t *testing.T) {
	// A stream of all-zero bits would loop in a naive gamma decoder; ours
	// must bail out and decode zeros.
	e := NewQSGDElias(DefaultOptions(8))
	data := make([]float32, 4)
	data[0] = 1                        // nonzero norm
	data[1] = comm.Float32FromIndex(8) // claims 8 elements
	dst := make([]float32, 8)          // words 2..3 are all-zero bits
	e.Decode(data, dst)                // must terminate
	_ = dst
}
