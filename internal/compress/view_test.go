package compress

import (
	"math"
	"runtime/debug"
	"sync"
	"testing"

	"a2sgd/internal/comm"
	"a2sgd/internal/tensor"
)

// splitSegs cuts g into deterministic pseudo-random segments so the view
// tests sweep tensor boundaries landing anywhere relative to the kernels'
// block and unroll widths.
func splitSegs(seed uint64, g []float32) [][]float32 {
	rng := tensor.NewRNG(seed)
	var segs [][]float32
	lo := 0
	for lo < len(g) {
		w := 1 + rng.Intn(1+len(g)/3)
		if rng.Intn(3) == 0 {
			w = 1 + rng.Intn(9) // short odd segments too
		}
		if lo+w > len(g) {
			w = len(g) - lo
		}
		segs = append(segs, g[lo:lo+w])
		lo += w
	}
	return segs
}

// viewEquivAlgos is the builtin set with per-element or residual state whose
// view path must stay in bitwise lockstep with the flat path across steps.
var viewEquivAlgos = []string{"dense", "topk", "gaussiank", "randk", "dgc", "qsgd", "terngrad", "qsgd-elias"}

// TestEncodeViewMatchesFlatBitwise runs a flat instance and a view instance
// of every builtin over the same gradient sequence and requires bit-identical
// payloads every step — which also proves the internal state (residuals,
// momentum, RNG position) stays in lockstep.
func TestEncodeViewMatchesFlatBitwise(t *testing.T) {
	const n, steps = 5000, 4
	for _, name := range viewEquivAlgos {
		o := DefaultOptions(n)
		o.Seed = 9
		flat, err := Build(&Spec{Name: name}, o)
		if err != nil {
			t.Fatal(err)
		}
		viewed, err := Build(&Spec{Name: name}, o)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < steps; step++ {
			g := randGrad(uint64(100+step), n)
			gv := append([]float32(nil), g...)
			v := tensor.NewVecView(splitSegs(uint64(7+step), gv)...)
			if len(v.Segments()) < 2 {
				t.Fatalf("%s: split produced a contiguous view", name)
			}
			pf := flat.Encode(g)
			pv := viewed.EncodeView(v)
			if pf.Bits != pv.Bits {
				t.Fatalf("%s step %d: Bits %d != %d", name, step, pv.Bits, pf.Bits)
			}
			if len(pf.Data) != len(pv.Data) {
				t.Fatalf("%s step %d: payload words %d != %d", name, step, len(pv.Data), len(pf.Data))
			}
			for i := range pf.Data {
				if math.Float32bits(pf.Data[i]) != math.Float32bits(pv.Data[i]) {
					t.Fatalf("%s step %d: payload word %d: %08x != %08x",
						name, step, i, math.Float32bits(pv.Data[i]), math.Float32bits(pf.Data[i]))
				}
			}
		}
	}
}

// runSyncView is runSync through the view surface: each worker's gradient is
// wrapped in a multi-segment view, encoded and exchanged through it, and the
// reconstructed flattened vector returned.
func runSyncView(t *testing.T, p int, build func(rank int) Algorithm, grads [][]float32) [][]float32 {
	t.Helper()
	out := make([][]float32, p)
	var mu sync.Mutex
	err := comm.RunGroup(p, func(c *comm.Communicator) error {
		a := build(c.Rank())
		g := append([]float32(nil), grads[c.Rank()]...)
		v := tensor.NewVecView(splitSegs(uint64(31+c.Rank()), g)...)
		pl := a.EncodeView(v)
		if err := a.ExchangeView(pl, v, c); err != nil {
			return err
		}
		res := make([]float32, v.Len())
		v.CopyTo(res)
		mu.Lock()
		out[c.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestExchangeViewMatchesFlatBitwise: the synchronized gradient
// reconstructed into a strided view is bit-identical to the flat exchange
// for every builtin.
func TestExchangeViewMatchesFlatBitwise(t *testing.T) {
	const p, n = 3, 4000
	grads := make([][]float32, p)
	for r := range grads {
		grads[r] = randGrad(uint64(40+r), n)
	}
	for _, name := range viewEquivAlgos {
		build := func(rank int) Algorithm {
			o := DefaultOptions(n)
			o.Seed = uint64(rank + 1)
			a, err := Build(&Spec{Name: name}, o)
			if err != nil {
				t.Fatal(err)
			}
			return a
		}
		flat := runSync(t, p, build, grads)
		viewed := runSyncView(t, p, build, grads)
		for r := 0; r < p; r++ {
			for i := range flat[r] {
				if math.Float32bits(flat[r][i]) != math.Float32bits(viewed[r][i]) {
					t.Fatalf("%s rank %d [%d]: view %v != flat %v", name, r, i, viewed[r][i], flat[r][i])
				}
			}
		}
	}
}

// TestPeriodicViewStepPhase: the view surface advances the same step counter
// as the flat one, so a wrapper driven through views syncs on the same steps.
func TestPeriodicViewStepPhase(t *testing.T) {
	const n = 256
	o := DefaultOptions(n)
	pa := NewPeriodic(NewTopK(o), 3)
	g := randGrad(5, n)
	gv := append([]float32(nil), g...)
	v := tensor.NewVecView(splitSegs(3, gv)...)
	phaseOK := true
	err := comm.RunGroup(1, func(c *comm.Communicator) error {
		for step := 0; step < 6; step++ {
			pl := pa.EncodeView(v)
			if wantSync := step%3 == 2; (pl.Bits != 0) != wantSync {
				phaseOK = false
			}
			if err := pa.ExchangeView(pl, v, c); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !phaseOK {
		t.Fatal("view surface synced on the wrong steps")
	}
	if pa.step != 6 {
		t.Fatalf("step counter %d after 6 view exchanges, want 6", pa.step)
	}
}

// TestBucketedViewMatchesFlat: the whole-vector view surface of Bucketed
// produces the same per-bucket payload bits and synchronized gradient as the
// flat surface.
func TestBucketedViewMatchesFlat(t *testing.T) {
	const p, n = 2, 3000
	bounds := []int{0, 700, 1800, n}
	grads := make([][]float32, p)
	for r := range grads {
		grads[r] = randGrad(uint64(60+r), n)
	}
	build := func(rank int) Algorithm {
		o := DefaultOptions(n)
		o.Seed = uint64(rank + 1)
		return NewBucketed(bounds, func(b, bn int) Algorithm {
			bo := o
			bo.N = bn
			bo.Seed = o.Seed + uint64(b)
			if b == 1 {
				q, err := Build(&Spec{Name: "qsgd"}, bo)
				if err != nil {
					t.Fatal(err)
				}
				return q
			}
			tk, err := Build(&Spec{Name: "topk"}, bo)
			if err != nil {
				t.Fatal(err)
			}
			return tk
		})
	}
	flat := runSync(t, p, build, grads)
	viewed := runSyncView(t, p, build, grads)
	for r := 0; r < p; r++ {
		for i := range flat[r] {
			if math.Float32bits(flat[r][i]) != math.Float32bits(viewed[r][i]) {
				t.Fatalf("rank %d [%d]: view %v != flat %v", r, i, viewed[r][i], flat[r][i])
			}
		}
	}
}

// refEliasEncode is the historical per-bit QSGDElias encoder (scalar
// quantization loop + bitWriter), kept as the wire-format reference for the
// batched writer: same levels in the same RNG order, same MSB-first stream,
// same header words.
func refEliasEncode(s int, seed uint64, g []float32) ([]float32, int64) {
	return refEliasEncodeFrom(s, tensor.NewRNG(seed), g)
}

// TestQSGDEliasWireFormatPinned: the batched block encoder emits exactly the
// historical stream — checkpoint payloads and cross-version exchanges stay
// compatible.
func TestQSGDEliasWireFormatPinned(t *testing.T) {
	for _, n := range []int{1, 3, 31, 1000, 4096, 5000, 10000} {
		o := DefaultOptions(n)
		o.Seed = 77
		e := NewQSGDElias(o)
		for step := 0; step < 3; step++ {
			g := randGrad(uint64(200+17*n+step), n)
			// Reference RNG resumes from the instance's current position.
			ref := tensor.NewRNG(1)
			ref.SetState(e.q.rng.State())
			wantData, wantBits := refEliasEncodeFrom(e.q.s, ref, g)
			p := e.Encode(g)
			if p.Bits != wantBits {
				t.Fatalf("n=%d step %d: Bits %d, reference %d", n, step, p.Bits, wantBits)
			}
			if len(p.Data) != len(wantData) {
				t.Fatalf("n=%d step %d: %d payload words, reference %d", n, step, len(p.Data), len(wantData))
			}
			for i := range wantData {
				if math.Float32bits(p.Data[i]) != math.Float32bits(wantData[i]) {
					t.Fatalf("n=%d step %d: word %d = %08x, reference %08x",
						n, step, i, math.Float32bits(p.Data[i]), math.Float32bits(wantData[i]))
				}
			}
		}
	}
	// And the zero-state constructor path matches too.
	g := randGrad(9, 500)
	o := DefaultOptions(500)
	o.Seed = 5
	wantData, wantBits := refEliasEncode(NewQSGD(o).s, o.Seed, g)
	p := NewQSGDElias(o).Encode(g)
	if p.Bits != wantBits || len(p.Data) != len(wantData) {
		t.Fatalf("fresh instance: Bits %d/%d words %d/%d", p.Bits, wantBits, len(p.Data), len(wantData))
	}
}

// refEliasEncodeFrom is refEliasEncode continuing an existing RNG stream.
func refEliasEncodeFrom(s int, rng *tensor.RNG, g []float32) ([]float32, int64) {
	var w bitWriter
	norm := float32(tensor.Norm2(g))
	if norm > 0 {
		for _, x := range g {
			sign := uint32(0)
			a := x
			if a < 0 {
				sign = 1
				a = -a
			}
			scaled := float64(a) / float64(norm) * float64(s)
			level := uint32(scaled)
			if rng.Float64() < scaled-float64(level) {
				level++
			}
			if level > uint32(s) {
				level = uint32(s)
			}
			eliasGammaWrite(&w, level+1)
			if level > 0 {
				w.writeBit(sign)
			}
		}
	}
	data := make([]float32, 2+len(w.words))
	data[0] = math.Float32frombits(math.Float32bits(norm))
	data[1] = comm.Float32FromIndex(uint32(len(g)))
	for i, word := range w.words {
		data[2+i] = math.Float32frombits(word)
	}
	return data, int64(w.nbits) + 64
}

// TestSparseScratchFirstEncodeNoGrow: satellite check for the pre-sizing
// slack — a fresh Gaussian-K instance absorbs its first selections without
// growing the idx/val/data buffers.
func TestSparseScratchFirstEncodeNoGrow(t *testing.T) {
	const n = 1 << 16
	o := DefaultOptions(n)
	gk := NewGaussianK(o)
	idxCap, valCap, dataCap := cap(gk.sc.idx), cap(gk.sc.val), cap(gk.sc.data)
	if idxCap < o.K()+o.K()/4 {
		t.Fatalf("idx cap %d lacks slack above k=%d", idxCap, o.K())
	}
	for step := 0; step < 3; step++ {
		gk.Encode(randGrad(uint64(300+step), n))
	}
	if cap(gk.sc.idx) != idxCap || cap(gk.sc.val) != valCap || cap(gk.sc.data) != dataCap {
		t.Fatalf("selection scratch grew: idx %d→%d val %d→%d data %d→%d",
			idxCap, cap(gk.sc.idx), valCap, cap(gk.sc.val), dataCap, cap(gk.sc.data))
	}
}

// TestEncodeViewZeroAllocSteadyState pins the view path's allocation
// discipline the same way the flat pins do.
func TestEncodeViewZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	const n = 1 << 16
	for _, tc := range []struct {
		name    string
		warmups int
	}{
		{"topk", 1},
		{"gaussiank", 5},
		{"qsgd", 1},
		{"qsgd-elias", 1},
		{"dgc", 1},
		{"terngrad", 1},
		{"dense", 1},
	} {
		o := DefaultOptions(n)
		o.Seed = 3
		alg, err := Build(&Spec{Name: tc.name}, o)
		if err != nil {
			t.Fatal(err)
		}
		g := randGrad(18, n)
		v := tensor.NewVecView(splitSegs(11, g)...)
		for i := 0; i < tc.warmups; i++ {
			alg.EncodeView(v)
		}
		func() {
			defer debug.SetGCPercent(debug.SetGCPercent(-1))
			if a := testing.AllocsPerRun(10, func() { alg.EncodeView(v) }); a != 0 {
				t.Errorf("%s: %.1f allocs per steady-state EncodeView, want 0", tc.name, a)
			}
		}()
	}
}
