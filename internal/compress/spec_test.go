package compress

import (
	"strings"
	"testing"
)

func TestParseFormatRoundTrip(t *testing.T) {
	cases := []struct {
		src  string
		want string // canonical form
	}{
		{"dense", "dense"},
		{"topk(density=0.01)", "topk(density=0.01)"},
		{"  topk( density = 0.01 )", "topk(density=0.01)"},
		{"qsgd(levels=8)", "qsgd(levels=8)"},
		{"periodic(dense, interval=4)", "periodic(dense, interval=4)"},
		{"periodic(qsgd(levels=8), interval=4)", "periodic(qsgd(levels=8), interval=4)"},
		{"mixed(big=a2sgd, small=dense, threshold=64KiB)", "mixed(big=a2sgd, small=dense, threshold=64KiB)"},
		{"bylayer(fc1=topk(density=0.05), default=dense)", "bylayer(fc1=topk(density=0.05), default=dense)"},
		{"dense()", "dense"},
	}
	for _, c := range cases {
		s, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := s.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.want)
		}
		// Reparsing the canonical form is a fixed point.
		s2, err := Parse(s.String())
		if err != nil {
			t.Errorf("reparse %q: %v", s.String(), err)
			continue
		}
		if s2.String() != s.String() {
			t.Errorf("reformat changed %q -> %q", s.String(), s2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"topk(",
		"topk(density=0.01",
		"topk)",
		"topk(density=)",
		"topk(=0.01)",
		"topk(density=0.01)x",
		"topk(density=0.01, density=0.02)", // duplicate key
		"a b",
		"(dense)",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestUnknownAlgorithmErrorListsUsage(t *testing.T) {
	_, err := ParseBuild("nope", DefaultOptions(16))
	if err == nil {
		t.Fatal("expected error")
	}
	// The error must list every registered name together with its accepted
	// parameters, not bare names only.
	for _, want := range []string{"topk(density=float)", "qsgd(levels=int)", "periodic(inner, interval=int)", "dense"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-algorithm error missing %q:\n%v", want, err)
		}
	}
}

func TestBadParametersRejected(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"topk(density=2)", "out of range"},
		{"topk(density=0)", "out of range"},
		{"topk(density=abc)", "not a float"},
		{"topk(foo=1)", `unknown parameter "foo"`},
		{"topk(foo=1)", "topk(density=float)"}, // error names the accepted params
		{"dense(x=1)", "unknown parameter"},
		{"qsgd(levels=0)", "out of range"},
		{"qsgd(levels=2.5)", "not an int"},
		{"periodic(dense, interval=0)", "out of range"},
		{"periodic(interval=2)", "takes 1 inner"},
		{"periodic(dense, qsgd, interval=2)", "takes 1 inner"},
		{"topk(density=dense(x=1))", "wants a float"},
	}
	for _, c := range cases {
		_, err := ParseBuild(c.src, DefaultOptions(64))
		if err == nil {
			t.Errorf("ParseBuild(%q): expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseBuild(%q) error %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestCheckSpecRecursesIntoWrappers(t *testing.T) {
	s, err := Parse("periodic(nope, interval=2)")
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSpec(s); err == nil || !strings.Contains(err.Error(), `unknown algorithm "nope"`) {
		t.Errorf("CheckSpec must reject unknown inner algorithms, got %v", err)
	}
}

func TestBuildMatchesDirectConstruction(t *testing.T) {
	o := DefaultOptions(1000)
	o.Density = 0.05
	direct := NewTopK(o)
	viaSpec, err := ParseBuild("topk(density=0.05)", DefaultOptions(1000))
	if err != nil {
		t.Fatal(err)
	}
	g := make([]float32, 1000)
	for i := range g {
		g[i] = float32(i%17) - 8
	}
	pd, ps := direct.Encode(g), viaSpec.Encode(g)
	if pd.Bits != ps.Bits || len(pd.Data) != len(ps.Data) {
		t.Fatalf("spec-built topk differs: %d/%d bits, %d/%d words",
			pd.Bits, ps.Bits, len(pd.Data), len(ps.Data))
	}
	for i := range pd.Data {
		if pd.Data[i] != ps.Data[i] {
			t.Fatalf("payload word %d differs", i)
		}
	}
}

func TestWrapperNestingBuilds(t *testing.T) {
	a, err := ParseBuild("periodic(qsgd(levels=8), interval=4)", DefaultOptions(256))
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Name(); got != "qsgd-every4" {
		t.Errorf("Name() = %q", got)
	}
	p, ok := a.(*Periodic)
	if !ok || p.Interval() != 4 {
		t.Fatalf("wrapper not periodic(interval=4): %T", a)
	}
	inner, ok := p.inner.(*QSGD)
	if !ok || inner.Levels() != 8 {
		t.Fatalf("inner not qsgd(levels=8): %T", p.inner)
	}
	// Amortized payload: qsgd payload / 4.
	q := NewQSGD(Options{N: 256, QuantLevels: 8, Seed: 1})
	if want := q.PayloadBytes(256) / 4; a.PayloadBytes(256) != want {
		t.Errorf("amortized payload %d, want %d", a.PayloadBytes(256), want)
	}
}

func TestRegisterRejectsBadNames(t *testing.T) {
	for _, bad := range []string{"", "has space", "par(en"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) must panic", bad)
				}
			}()
			Register(bad, Builder{Build: func(o Options, _ BuildArgs) (Algorithm, error) { return NewDense(o), nil }})
		}()
	}
	// Duplicate registration panics too.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate Register must panic")
			}
		}()
		Register("dense", Builder{Build: func(o Options, _ BuildArgs) (Algorithm, error) { return NewDense(o), nil }})
	}()
}

func TestParseByteSize(t *testing.T) {
	cases := map[string]int64{
		"0":      0,
		"4096":   4096,
		"4096B":  4096,
		"64KiB":  65536,
		"64kib":  65536,
		"1MiB":   1 << 20,
		"1.5MiB": 1572864,
		"2GiB":   2 << 30,
		"1KB":    1000,
		"2MB":    2_000_000,
	}
	for src, want := range cases {
		got, err := ParseByteSize(src)
		if err != nil || got != want {
			t.Errorf("ParseByteSize(%q) = %d, %v; want %d", src, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "-1", "12XiB"} {
		if _, err := ParseByteSize(bad); err == nil {
			t.Errorf("ParseByteSize(%q): expected error", bad)
		}
	}
	for _, n := range []int64{0, 17, 4096, 65536, 1 << 20, 3 << 30, 5000} {
		back, err := ParseByteSize(FormatByteSize(n))
		if err != nil || back != n {
			t.Errorf("FormatByteSize round trip %d -> %q -> %d, %v", n, FormatByteSize(n), back, err)
		}
	}
}

func TestSignatureAndUsage(t *testing.T) {
	if got := Signature("topk"); got != "topk(density=float)" {
		t.Errorf("Signature(topk) = %q", got)
	}
	if got := Signature("dense"); got != "dense" {
		t.Errorf("Signature(dense) = %q", got)
	}
	if got := Signature("periodic"); got != "periodic(inner, interval=int)" {
		t.Errorf("Signature(periodic) = %q", got)
	}
	usage := Usage()
	if len(usage) != len(Registered()) {
		t.Errorf("Usage/Registered length mismatch: %d vs %d", len(usage), len(Registered()))
	}
}
