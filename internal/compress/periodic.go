package compress

import (
	"fmt"

	"a2sgd/internal/comm"
	"a2sgd/internal/netsim"
	"a2sgd/internal/tensor"
)

// Periodic wraps any Algorithm with round reduction — the "reducing the
// rounds of communication" family the paper's introduction cites ([13–15])
// and names as composable with A2SGD in its conclusion. Workers synchronize
// only every Interval-th step; on the other steps the local gradient is
// applied directly (local-SGD style) and a zero-byte payload is reported.
//
// Semantics per step s (0-based):
//
//	s % Interval != Interval-1 : g is left untouched (pure local update)
//	s % Interval == Interval-1 : the inner algorithm synchronizes g
//
// With Interval = 1 the wrapper is exactly the inner algorithm. The traffic
// reported over a window is the inner payload divided by Interval.
type Periodic struct {
	inner    Algorithm
	interval int
	step     int
}

// NewPeriodic wraps inner, synchronizing every interval steps (≥ 1).
func NewPeriodic(inner Algorithm, interval int) *Periodic {
	if interval < 1 {
		panic("compress: periodic interval must be ≥ 1")
	}
	return &Periodic{inner: inner, interval: interval}
}

// Name implements Algorithm.
func (p *Periodic) Name() string {
	return fmt.Sprintf("%s-every%d", p.inner.Name(), p.interval)
}

// Interval exposes the synchronization period.
func (p *Periodic) Interval() int { return p.interval }

// syncing reports whether the *current* step (the one whose Encode is next
// or in flight) is a synchronization step.
func (p *Periodic) syncing() bool { return p.step%p.interval == p.interval-1 }

// Encode implements Algorithm: pass-through on sync steps, empty otherwise.
func (p *Periodic) Encode(g []float32) Payload {
	if p.syncing() {
		return p.inner.Encode(g)
	}
	return Payload{Bits: 0}
}

// EncodeView implements Algorithm (same step phase as Encode).
func (p *Periodic) EncodeView(v *tensor.VecView) Payload {
	if p.syncing() {
		return p.inner.EncodeView(v)
	}
	return Payload{Bits: 0}
}

// Exchange implements Algorithm.
func (p *Periodic) Exchange(pl Payload, g []float32, c *comm.Communicator) error {
	defer func() { p.step++ }()
	if p.syncing() {
		return p.inner.Exchange(pl, g, c)
	}
	return nil // local step: g already holds the local gradient
}

// ExchangeView implements Algorithm (advances the step phase exactly like
// Exchange).
func (p *Periodic) ExchangeView(pl Payload, v *tensor.VecView, c *comm.Communicator) error {
	defer func() { p.step++ }()
	if p.syncing() {
		return p.inner.ExchangeView(pl, v, c)
	}
	return nil // local step: the view's segments already hold the local gradient
}

// ExchangeKind implements Algorithm (the inner collective when it happens).
func (p *Periodic) ExchangeKind() netsim.ExchangeKind { return p.inner.ExchangeKind() }

// PayloadBytes implements Algorithm: the amortized per-step payload.
func (p *Periodic) PayloadBytes(n int) int64 {
	return p.inner.PayloadBytes(n) / int64(p.interval)
}

// Reset implements Algorithm.
func (p *Periodic) Reset() {
	p.step = 0
	p.inner.Reset()
}

// SaveState implements StateSaver: the step-phase counter plus the inner
// algorithm's state (its keys merged under the same namespace — the wrapper
// and its inner instance never collide on key names).
func (p *Periodic) SaveState() State {
	var s State
	if sv, ok := p.inner.(StateSaver); ok {
		s = sv.SaveState()
		s.Alg = ""
	}
	s.setWords("periodic.step", []uint64{uint64(p.step)})
	return s
}

// LoadState implements StateLoader.
func (p *Periodic) LoadState(s State) {
	if w := s.words("periodic.step"); len(w) == 1 {
		p.step = int(w[0])
	}
	if ld, ok := p.inner.(StateLoader); ok {
		ld.LoadState(s)
	}
}
