package compress

import (
	"testing"

	"a2sgd/internal/comm"
)

// TestBucketedDenseMatchesWholeVector: per-bucket dense allreduce with
// recursive doubling is bitwise identical to the whole-vector allreduce
// (every element sees the same partner-addition order regardless of vector
// length), so the bucketed wrapper must reproduce the dense baseline exactly.
func TestBucketedDenseMatchesWholeVector(t *testing.T) {
	const p, n = 4, 1000
	bounds := []int{0, 130, 500, 730, n}
	mk := func(rank int) []float32 {
		g := make([]float32, n)
		for i := range g {
			g[i] = float32((rank+1)*(i%89)) * 0.01
		}
		return g
	}
	want := make([]float32, n)
	err := comm.RunGroup(p, func(c *comm.Communicator) error {
		g := mk(c.Rank())
		d := NewDense(Options{N: n, Allreduce: comm.AlgoRecursiveDoubling})
		pl := d.Encode(g)
		if err := d.Exchange(pl, g, c); err != nil {
			return err
		}
		if c.Rank() == 0 {
			copy(want, g)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = comm.RunGroup(p, func(c *comm.Communicator) error {
		g := mk(c.Rank())
		bk := NewBucketed(bounds, func(b, bn int) Algorithm {
			return NewDense(Options{N: bn, Allreduce: comm.AlgoRecursiveDoubling})
		})
		pl := bk.Encode(g)
		if err := bk.Exchange(pl, g, c); err != nil {
			return err
		}
		for i := range g {
			if g[i] != want[i] {
				t.Errorf("rank %d elem %d: %v != %v", c.Rank(), i, g[i], want[i])
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBucketedAccountingAggregates(t *testing.T) {
	bounds := []int{0, 10, 30, 100}
	bk := NewBucketed(bounds, func(b, bn int) Algorithm {
		return NewQSGD(Options{N: bn, QuantLevels: 4, Seed: uint64(b + 1)})
	})
	if bk.NumBuckets() != 3 {
		t.Fatalf("buckets %d", bk.NumBuckets())
	}
	per := bk.PayloadBytesPerBucket()
	var sum int64
	for _, b := range per {
		sum += b
	}
	if got := bk.PayloadBytes(100); got != sum {
		t.Fatalf("PayloadBytes %d != per-bucket sum %d", got, sum)
	}
	g := make([]float32, 100)
	for i := range g {
		g[i] = float32(i%7) - 3
	}
	pl := bk.Encode(g)
	var bits int64
	for b := 0; b < 3; b++ {
		bits += bk.EncodeBucket(b, bk.BucketSlice(b, g)).Bits
	}
	if pl.Bits != bits {
		t.Fatalf("aggregate bits %d != per-bucket sum %d", pl.Bits, bits)
	}
	if name := bk.Name(); name != "qsgd+bucketed[3]" {
		t.Fatalf("name %q", name)
	}
}

func TestBucketedSingleBucketKeepsName(t *testing.T) {
	bk := NewBucketed([]int{0, 50}, func(b, bn int) Algorithm {
		return NewDense(Options{N: bn})
	})
	if bk.Name() != "dense" {
		t.Fatalf("single-bucket name %q, want dense", bk.Name())
	}
}

// TestBucketedSparsifierRoundTrip: per-bucket Top-K with error feedback must
// synchronize without error and leave every rank with identical gradients.
func TestBucketedSparsifierRoundTrip(t *testing.T) {
	const p, n = 3, 400
	bounds := []int{0, 150, 280, n}
	results := make([][]float32, p)
	err := comm.RunGroup(p, func(c *comm.Communicator) error {
		g := make([]float32, n)
		for i := range g {
			g[i] = float32((c.Rank()+1)*(i%31)) * 0.02
		}
		bk := NewBucketed(bounds, func(b, bn int) Algorithm {
			return NewTopK(Options{N: bn, Density: 0.05})
		})
		pl := bk.Encode(g)
		if err := bk.Exchange(pl, g, c); err != nil {
			return err
		}
		results[c.Rank()] = g
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < p; r++ {
		for i := range results[0] {
			if results[0][i] != results[r][i] {
				t.Fatalf("rank %d diverged at %d: %v vs %v", r, i, results[r][i], results[0][i])
			}
		}
	}
}
