package compress

import (
	"fmt"

	"a2sgd/internal/comm"
	"a2sgd/internal/netsim"
	"a2sgd/internal/tensor"
)

// Payload is the result of local compression: the packed float32 words that
// will travel on the fabric plus the analytic size in bits. Integer data
// (sparse indices, packed quantization words) is bit-cast into the float32
// stream via comm.Float32FromIndex.
//
// Ownership: Data aliases scratch owned by the algorithm instance that
// produced it and is only valid until the next Encode call on that same
// instance — the zero-allocation contract that keeps the steady-state hot
// path off the allocator (ARCHITECTURE.md "Memory discipline & hot path").
// The training pipeline naturally respects it (each bucket's payload is
// consumed by its Exchange before that bucket's next Encode); callers that
// need a payload to outlive the next Encode must copy Data explicitly.
type Payload struct {
	// Data is the packed payload handed to the collective.
	Data []float32
	// Bits is the analytic payload size in bits (what Table 2 reports).
	Bits int64
}

// Algorithm is one gradient-synchronization method.
//
// An Algorithm instance belongs to a single worker: it owns per-worker state
// (error-feedback residuals, RNG) and must not be shared across goroutines.
//
// The view methods are the primary implementations: every builtin encodes
// from and reconstructs into a strided multi-segment gradient view
// (tensor.VecView), which is how the training runtime hands a bucket the
// layers' live gradient storage even when the bucket spans tensor
// boundaries — no gather copy before encode, no scatter copy after decode.
// The flat Encode/Exchange are thin adapters that wrap g in an
// instance-owned single-segment view; a single-segment view takes exactly
// the flat code paths, so the two surfaces are bitwise identical.
type Algorithm interface {
	// Name returns the identifier used in reports ("a2sgd", "topk", ...).
	Name() string
	// Encode runs the local compression of gradient g. It may read and
	// update internal residual state but must not modify g. The returned
	// Payload may alias instance scratch: it is valid until the next
	// Encode on this instance (see the Payload ownership contract).
	Encode(g []float32) Payload
	// EncodeView is Encode over a strided gradient view. Same contracts.
	EncodeView(v *tensor.VecView) Payload
	// Exchange performs the collective synchronization of the payload and
	// writes the synchronized (worker-averaged) gradient into g. g must be
	// the same vector passed to the immediately preceding Encode.
	Exchange(p Payload, g []float32, c *comm.Communicator) error
	// ExchangeView is Exchange over a strided gradient view: the
	// synchronized gradient is reconstructed directly into the view's
	// segments. v must be the view passed to the immediately preceding
	// EncodeView.
	ExchangeView(p Payload, v *tensor.VecView, c *comm.Communicator) error
	// ExchangeKind reports which collective dominates the exchange, for
	// the α–β network model.
	ExchangeKind() netsim.ExchangeKind
	// PayloadBytes returns the analytic per-worker payload in bytes for an
	// n-parameter model, used by the traffic tables and netsim.
	PayloadBytes(n int) int64
	// Reset clears error-feedback state (between convergence runs).
	Reset()
}

// Sync is the one-call convenience the training loop uses:
// Encode followed by Exchange.
func Sync(a Algorithm, g []float32, c *comm.Communicator) (Payload, error) {
	p := a.Encode(g)
	return p, a.Exchange(p, g, c)
}

// Options bundles the tunables shared by the algorithm constructors.
type Options struct {
	// N is the model's parameter count (the gradient length).
	N int
	// Density is the selected fraction k/n for sparsifiers. The paper's
	// appendix uses 0.001 ("Threshold for TopK and GaussianK is 0.001d").
	Density float64
	// QuantLevels is QSGD's s parameter; the paper's appendix uses 4.
	QuantLevels int
	// Seed seeds per-worker stochastic compression (QSGD, Rand-K, TernGrad).
	Seed uint64
	// Allreduce selects the dense/scalar allreduce algorithm.
	Allreduce comm.AllreduceAlgorithm
}

// DefaultOptions mirrors the paper's experimental appendix for an
// n-parameter model: density 0.001, QSGD quantization level 4.
func DefaultOptions(n int) Options {
	return Options{N: n, Density: 0.001, QuantLevels: 4, Seed: 1, Allreduce: comm.AlgoAuto}
}

// K returns the sparsifier selection count implied by the options, ≥ 1.
func (o Options) K() int {
	k := int(o.Density * float64(o.N))
	if k < 1 {
		k = 1
	}
	if k > o.N {
		k = o.N
	}
	return k
}

func (o Options) validate() {
	if o.N <= 0 {
		panic(fmt.Sprintf("compress: invalid N=%d", o.N))
	}
}

// ---- Dense SGD ----

// Dense is the default distributed SGD synchronization: every worker
// allreduce-averages the full 32n-bit gradient. Its local computation is
// O(1) — there is nothing to compress (Table 2, row 1).
type Dense struct {
	algo comm.AllreduceAlgorithm

	fv    tensor.VecView // flat-call adapter view
	stage []float32      // contiguous staging for strided views (allreduce needs one buffer)
}

// NewDense builds the dense baseline.
func NewDense(o Options) *Dense {
	o.validate()
	return &Dense{algo: o.Allreduce}
}

// Name implements Algorithm.
func (d *Dense) Name() string { return "dense" }

// Encode is the identity: the payload is the gradient itself (no copy).
func (d *Dense) Encode(g []float32) Payload {
	return Payload{Data: g, Bits: int64(32 * len(g))}
}

// EncodeView implements Algorithm. A contiguous view keeps the zero-copy
// identity payload; a strided one is staged into instance scratch — dense
// has no compressed form, and the allreduce needs one contiguous buffer.
func (d *Dense) EncodeView(v *tensor.VecView) Payload {
	if g := v.Contiguous(); g != nil || v.Len() == 0 {
		return d.Encode(g)
	}
	st := growF32(&d.stage, v.Len())
	v.CopyTo(st)
	return Payload{Data: st, Bits: int64(32 * v.Len())}
}

// Exchange allreduce-averages the gradient in place.
func (d *Dense) Exchange(p Payload, g []float32, c *comm.Communicator) error {
	return c.AllreduceMean(g, d.algo)
}

// ExchangeView implements Algorithm: in place for a contiguous view;
// through the staged payload (which EncodeView filled) otherwise, copied
// back into the view's segments after the collective.
func (d *Dense) ExchangeView(p Payload, v *tensor.VecView, c *comm.Communicator) error {
	if g := v.Contiguous(); g != nil || v.Len() == 0 {
		return d.Exchange(p, g, c)
	}
	if err := c.AllreduceMean(p.Data, d.algo); err != nil {
		return err
	}
	v.CopyFrom(p.Data)
	return nil
}

// ExchangeKind implements Algorithm.
func (d *Dense) ExchangeKind() netsim.ExchangeKind { return netsim.ExchangeAllreduce }

// PayloadBytes implements Algorithm: 32n bits.
func (d *Dense) PayloadBytes(n int) int64 { return int64(4 * n) }

// Reset implements Algorithm (no state).
func (d *Dense) Reset() {}
