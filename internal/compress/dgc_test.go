package compress

import (
	"math"
	"testing"

	"a2sgd/internal/comm"
	"a2sgd/internal/netsim"
)

func TestDGCMetadata(t *testing.T) {
	d := NewDGC(Options{N: 10000, Density: 0.001})
	if d.Name() != "dgc" {
		t.Error("name")
	}
	if d.K() != 10 {
		t.Errorf("k = %d", d.K())
	}
	if d.ExchangeKind() != netsim.ExchangeAllgatherV {
		t.Error("kind")
	}
	if d.PayloadBytes(10000) != 40 {
		t.Error("payload")
	}
}

func TestDGCMomentumAccumulation(t *testing.T) {
	// With k=1 and a constant gradient, the transmitted value must grow
	// super-linearly across steps (velocity accumulates momentum-corrected
	// gradients), unlike plain EF which grows linearly.
	n := 4
	d := NewDGC(Options{N: n, Density: 1.0 / float64(n)})
	g := []float32{0, 1, 0, 0}
	var vals []float32
	for s := 0; s < 3; s++ {
		p := d.Encode(g)
		if ix := comm.Float32ToIndex(p.Data[0]); ix != 1 {
			t.Fatalf("step %d selected %d", s, ix)
		}
		vals = append(vals, p.Data[1])
	}
	// Step 0: u=1, v=1 → tx 1. Buffers cleared at 1. Step 1 identical.
	if math.Abs(float64(vals[0]-1)) > 1e-6 || math.Abs(float64(vals[1]-1)) > 1e-6 {
		t.Errorf("vals = %v", vals)
	}
	// Untransmitted coordinates keep accumulating: check index 1 is always
	// the winner and buffers at other indices stay zero for zero grads.
	for i, v := range d.u {
		if i != 1 && v != 0 {
			t.Errorf("u[%d] = %v", i, v)
		}
	}
}

func TestDGCMomentumMasking(t *testing.T) {
	// After transmission, both buffers must be cleared at the transmitted
	// coordinate.
	n := 8
	d := NewDGC(Options{N: n, Density: 1.0 / float64(n)})
	g := make([]float32, n)
	g[3] = 5
	d.Encode(g)
	if d.u[3] != 0 || d.v[3] != 0 {
		t.Errorf("masking failed: u=%v v=%v", d.u[3], d.v[3])
	}
	d.Reset()
	for i := range d.u {
		if d.u[i] != 0 || d.v[i] != 0 {
			t.Fatal("reset failed")
		}
	}
}

func TestDGCDeferredTransmission(t *testing.T) {
	// A small persistent gradient must eventually out-accumulate and ship.
	n := 4
	d := NewDGC(Options{N: n, Density: 1.0 / float64(n)})
	g := []float32{1.0, 0.45, 0, 0}
	shippedSmall := false
	for s := 0; s < 6; s++ {
		p := d.Encode(g)
		if comm.Float32ToIndex(p.Data[0]) == 1 {
			shippedSmall = true
		}
	}
	if !shippedSmall {
		t.Error("momentum-corrected residual never shipped the small coordinate")
	}
}

func TestDGCSyncAverages(t *testing.T) {
	n := 20
	g0 := make([]float32, n)
	g1 := make([]float32, n)
	g0[4] = 2
	g1[4] = 4
	out := runSync(t, 2, func(int) Algorithm {
		return NewDGC(Options{N: n, Density: 0.05})
	}, [][]float32{g0, g1})
	for r := 0; r < 2; r++ {
		if math.Abs(float64(out[r][4]-3)) > 1e-5 {
			t.Errorf("rank %d out[4] = %v want 3", r, out[r][4])
		}
	}
}

func TestDGCLengthChangePanics(t *testing.T) {
	d := NewDGC(Options{N: 4, Density: 0.5})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Encode(make([]float32, 5))
}
