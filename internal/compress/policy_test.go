package compress

import (
	"strings"
	"testing"
)

func bucket(idx, params int, layers ...string) BucketInfo {
	return BucketInfo{Index: idx, Params: params, Bytes: int64(4 * params), Layers: layers}
}

func TestUniformPolicy(t *testing.T) {
	p, err := ParsePolicy("uniform(topk(density=0.01))")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "uniform(topk(density=0.01))" {
		t.Errorf("Name() = %q", p.Name())
	}
	for _, b := range []BucketInfo{bucket(0, 10), bucket(3, 1_000_000)} {
		if got := p.SpecFor(b).String(); got != "topk(density=0.01)" {
			t.Errorf("SpecFor(%d) = %q", b.Index, got)
		}
	}
	if len(p.Specs()) != 1 {
		t.Errorf("Specs() = %v", p.Specs())
	}
}

func TestBareAlgorithmSpecIsUniform(t *testing.T) {
	p, err := ParsePolicy("qsgd(levels=8)")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "uniform(qsgd(levels=8))" {
		t.Errorf("Name() = %q", p.Name())
	}
}

func TestMixedPolicyThreshold(t *testing.T) {
	p, err := ParsePolicy("mixed(big=topk(density=0.01), small=dense, threshold=1KiB)")
	if err != nil {
		t.Fatal(err)
	}
	// 1 KiB = 1024 bytes = 256 float32 params.
	if got := p.SpecFor(bucket(0, 255)).Name; got != "dense" {
		t.Errorf("small bucket got %q", got)
	}
	if got := p.SpecFor(bucket(1, 256)).Name; got != "topk" { // exactly at threshold: big
		t.Errorf("threshold bucket got %q", got)
	}
	if got := p.SpecFor(bucket(2, 100_000)).Name; got != "topk" {
		t.Errorf("big bucket got %q", got)
	}
	if want := "mixed(big=topk(density=0.01), small=dense, threshold=1KiB)"; p.Name() != want {
		t.Errorf("Name() = %q, want %q", p.Name(), want)
	}
	if len(p.Specs()) != 2 {
		t.Errorf("Specs() = %v", p.Specs())
	}
}

func TestMixedPolicyErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"mixed(big=nope, small=dense)", `unknown algorithm "nope"`},
		{"mixed(foo=dense)", `unknown parameter "foo"`},
		{"mixed(dense)", "keyed arguments only"},
		{"mixed(threshold=abc)", "byte size"},
		{"mixed(big=topk(density=9), small=dense)", "out of range"},
	}
	for _, c := range cases {
		_, err := ParsePolicy(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParsePolicy(%q) error %v, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestMixedPolicySpecValidation(t *testing.T) {
	// Out-of-range parameters inside a policy's branch are caught when the
	// policy is built, not at training time.
	if _, err := ParsePolicy("mixed(big=dense, small=qsgd(levels=0))"); err == nil {
		t.Error("bad small spec must be rejected at policy build")
	}
}

func TestByLayerPolicy(t *testing.T) {
	p, err := ParsePolicy("bylayer(conv=qsgd(levels=8), fc=topk(density=0.05), default=dense)")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		b    BucketInfo
		want string
	}{
		{bucket(0, 100, "conv1.W", "conv1.b"), "qsgd"},
		{bucket(1, 100, "fc2.W"), "topk"},
		{bucket(2, 100, "embed.W"), "dense"},
		// First matching rule wins, in declaration order.
		{bucket(3, 100, "fc1.W", "conv9.W"), "qsgd"},
	}
	for _, c := range cases {
		if got := p.SpecFor(c.b).Name; got != c.want {
			t.Errorf("SpecFor(%v) = %q, want %q", c.b.Layers, got, c.want)
		}
	}
	if len(p.Specs()) != 3 {
		t.Errorf("Specs() = %v", p.Specs())
	}
	if _, err := ParsePolicy("bylayer(conv=dense)"); err == nil || !strings.Contains(err.Error(), "default") {
		t.Errorf("bylayer without default must error, got %v", err)
	}
}

func TestUnknownPolicyErrorListsBoth(t *testing.T) {
	_, err := ParsePolicy("zigzag(a=1)")
	if err == nil {
		t.Fatal("expected error")
	}
	for _, want := range []string{"mixed(big=spec, small=spec, threshold=bytes)", "uniform(spec)", "topk(density=float)"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-policy error missing %q:\n%v", want, err)
		}
	}
}

func TestPoliciesRegistered(t *testing.T) {
	got := Policies()
	// Sorted, and containing at least the three built-ins (other tests may
	// register extras in the same binary).
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Policies() not sorted: %v", got)
		}
	}
	for _, want := range []string{"bylayer", "mixed", "uniform"} {
		found := false
		for _, n := range got {
			found = found || n == want
		}
		if !found {
			t.Fatalf("Policies() = %v, missing %q", got, want)
		}
	}
}

// TestPolicyUsageDerivesFromRegistry: a registered third-party policy shows
// up in PolicyUsage and in the unknown-policy error, like algorithms do.
func TestPolicyUsageDerivesFromRegistry(t *testing.T) {
	RegisterPolicy("zz-test-policy", "zz-test-policy(spec)", func(args []Arg) (Policy, error) {
		return &uniform{spec: &Spec{Name: "dense"}}, nil
	})
	found := false
	for _, u := range PolicyUsage() {
		if u == "zz-test-policy(spec)" {
			found = true
		}
	}
	if !found {
		t.Errorf("PolicyUsage() missing registered policy: %v", PolicyUsage())
	}
	_, err := ParsePolicy("definitely-unknown")
	if err == nil || !strings.Contains(err.Error(), "zz-test-policy(spec)") {
		t.Errorf("unknown-policy error missing registered usage:\n%v", err)
	}
}

// TestPolicyDeterminism: SpecFor is a pure function of BucketInfo — repeated
// calls with the same plan agree, which is what makes policy-driven training
// runs reproducible per seed.
func TestPolicyDeterminism(t *testing.T) {
	p, err := ParsePolicy("mixed(big=topk(density=0.01), small=dense, threshold=2KiB)")
	if err != nil {
		t.Fatal(err)
	}
	plan := []BucketInfo{bucket(0, 100), bucket(1, 600, "fc1.W"), bucket(2, 300), bucket(3, 4000)}
	var first []string
	for trial := 0; trial < 3; trial++ {
		var got []string
		for _, b := range plan {
			got = append(got, p.SpecFor(b).String())
		}
		if trial == 0 {
			first = got
			continue
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("trial %d bucket %d: %q != %q", trial, i, got[i], first[i])
			}
		}
	}
}
