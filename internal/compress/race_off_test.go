//go:build !race

package compress

// raceEnabled: see race_on_test.go.
const raceEnabled = false
