package compress

import (
	"fmt"

	"a2sgd/internal/netsim"
)

// Built-in registrations: the baselines this package implements, plus the
// periodic wrapper. A2SGD and its ablation variants self-register from
// a2sgd/internal/core (which imports this package), so any binary linking
// core sees the full set.
//
// Every registration carries a CostModel hook so the planner and the auto
// policy can price the spec without building it. The EncSecPerElem constants
// are CPU estimates in the nanosecond-per-element range, ordered by the
// Figure-2 measurements (rand-k's O(k) pick is cheapest, the heap-selection
// and entropy-coding methods dearest); payload accounting mirrors each
// algorithm's PayloadBytes exactly.

// densityParam is the shared schema of the sparsifiers' selection fraction.
var densityParam = ParamSpec{
	Name: "density", Kind: ParamFloat,
	Doc: "selected fraction k/n in (0, 1] (default 0.001)",
}

// sparsifierCost prices a density-sparsified exchange: one error-feedback +
// selection pass over the bucket, 4·k value bytes on an allgather.
func sparsifierCost(encSecPerElem float64) func(o Options, args BuildArgs, _ []CostModel) CostModel {
	return func(o Options, args BuildArgs, _ []CostModel) CostModel {
		d := args.Float("density", o.Density)
		if d <= 0 || d > 1 {
			d = o.Density
		}
		return CostModel{
			EncSecPerElem: encSecPerElem,
			BytesPerElem:  4 * d,
			FixedBytes:    4, // the k >= 1 floor
			Kind:          netsim.ExchangeAllgatherV,
		}
	}
}

// sparsifier registers a density-parameterized leaf algorithm.
func sparsifier(summary string, encSecPerElem float64, ctor func(Options) Algorithm) Builder {
	return Builder{
		Summary: summary,
		Params:  []ParamSpec{densityParam},
		Build: func(o Options, args BuildArgs) (Algorithm, error) {
			o.Density = args.Float("density", o.Density)
			if o.Density <= 0 || o.Density > 1 {
				return nil, fmt.Errorf("density %g out of range (0, 1]", o.Density)
			}
			return ctor(o), nil
		},
		Cost: sparsifierCost(encSecPerElem),
	}
}

// qsgdBitsPerElem mirrors NewQSGD's field width: 1 sign bit plus the
// smallest level field holding s+1 values.
func qsgdBitsPerElem(levels int) int {
	if levels < 1 {
		levels = 1
	}
	bits := 1
	for (1 << bits) < levels+1 {
		bits++
	}
	return 1 + bits
}

// quantizer registers a levels-parameterized leaf algorithm.
func quantizer(summary string, encSecPerElem float64, bytesPerElem func(levels int) float64,
	kind netsim.ExchangeKind, ctor func(Options) Algorithm) Builder {
	return Builder{
		Summary: summary,
		Params: []ParamSpec{{
			Name: "levels", Kind: ParamInt,
			Doc: "quantization levels s >= 1 (default 4)",
		}},
		Build: func(o Options, args BuildArgs) (Algorithm, error) {
			o.QuantLevels = args.Int("levels", o.QuantLevels)
			if o.QuantLevels < 1 {
				return nil, fmt.Errorf("levels %d out of range (>= 1)", o.QuantLevels)
			}
			return ctor(o), nil
		},
		Cost: func(o Options, args BuildArgs, _ []CostModel) CostModel {
			levels := args.Int("levels", o.QuantLevels)
			return CostModel{
				EncSecPerElem: encSecPerElem,
				BytesPerElem:  bytesPerElem(levels),
				FixedBytes:    4, // the leading norm word
				Kind:          kind,
			}
		},
	}
}

func init() {
	Register("dense", Builder{
		Summary: "uncompressed allreduce-averaged SGD (baseline)",
		Build:   func(o Options, _ BuildArgs) (Algorithm, error) { return NewDense(o), nil },
		Cost: func(Options, BuildArgs, []CostModel) CostModel {
			// Encode is the identity — no local compression pass at all.
			return CostModel{BytesPerElem: 4, Kind: netsim.ExchangeAllreduce}
		},
	})
	// topk/qsgd EncSecPerElem reflect the post-zero-allocation measurements
	// (BENCH_hotpath.json: ~2.5x between the heap selection and the packed
	// quantizer at vgg16-scale buckets). Full measured calibration — feeding
	// NewIterModel's encode timings back into these hooks — is the ROADMAP
	// "measured cost models" follow-up.
	Register("topk", sparsifier("top-k magnitude sparsification with error feedback", 1e-8,
		func(o Options) Algorithm { return NewTopK(o) }))
	Register("gaussiank", sparsifier("Gaussian-threshold sparsification with error feedback", 5e-9,
		func(o Options) Algorithm { return NewGaussianK(o) }))
	Register("randk", sparsifier("uniform random-k sparsification with error feedback", 3e-9,
		func(o Options) Algorithm { return NewRandK(o) }))
	Register("dgc", sparsifier("deep gradient compression (top-k + momentum correction)", 8e-9,
		func(o Options) Algorithm { return NewDGC(o) }))
	Register("qsgd", quantizer("QSGD stochastic quantization, packed words", 4e-9,
		func(levels int) float64 { return float64(qsgdBitsPerElem(levels)) / 8 },
		netsim.ExchangeAllreduce,
		func(o Options) Algorithm { return NewQSGD(o) }))
	Register("qsgd-elias", quantizer("QSGD with Elias-gamma entropy coding", 9e-9,
		// Expected Elias-gamma length for Gaussian-like gradients (see
		// QSGDElias.PayloadBytes): ~2.8 bits per element.
		func(int) float64 { return 2.8 / 8 },
		netsim.ExchangeAllgather,
		func(o Options) Algorithm { return NewQSGDElias(o) }))
	Register("terngrad", Builder{
		Summary: "ternary {-1,0,+1} stochastic quantization",
		Build:   func(o Options, _ BuildArgs) (Algorithm, error) { return NewTernGrad(o), nil },
		Cost: func(Options, BuildArgs, []CostModel) CostModel {
			return CostModel{
				EncSecPerElem: 3e-9,
				BytesPerElem:  2.0 / 8, // 2 bits per element
				FixedBytes:    4,       // the leading max-magnitude word
				Kind:          netsim.ExchangeAllreduce,
			}
		},
	})
	Register("periodic", Builder{
		Summary: "round reduction wrapper: synchronize every interval-th step",
		Wraps:   1,
		Params: []ParamSpec{{
			Name: "interval", Kind: ParamInt,
			Doc: "steps between synchronizations, >= 1 (default 2)",
		}},
		Build: func(o Options, args BuildArgs) (Algorithm, error) {
			interval := args.Int("interval", 2)
			if interval < 1 {
				return nil, fmt.Errorf("interval %d out of range (>= 1)", interval)
			}
			return NewPeriodic(args.Inner[0], interval), nil
		},
		Cost: func(o Options, args BuildArgs, inner []CostModel) CostModel {
			// Amortized over the interval: the inner algorithm encodes and
			// exchanges on one step in k, the others are free local updates
			// (mirrors Periodic.PayloadBytes accounting).
			interval := args.Int("interval", 2)
			if interval < 1 {
				interval = 1
			}
			cm := inner[0]
			cm.EncSecPerElem /= float64(interval)
			cm.BytesPerElem /= float64(interval)
			cm.FixedBytes /= int64(interval)
			return cm
		},
	})
}
