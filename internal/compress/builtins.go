package compress

import "fmt"

// Built-in registrations: the baselines this package implements, plus the
// periodic wrapper. A2SGD and its ablation variants self-register from
// a2sgd/internal/core (which imports this package), so any binary linking
// core sees the full set.

// densityParam is the shared schema of the sparsifiers' selection fraction.
var densityParam = ParamSpec{
	Name: "density", Kind: ParamFloat,
	Doc: "selected fraction k/n in (0, 1] (default 0.001)",
}

// sparsifier registers a density-parameterized leaf algorithm.
func sparsifier(summary string, ctor func(Options) Algorithm) Builder {
	return Builder{
		Summary: summary,
		Params:  []ParamSpec{densityParam},
		Build: func(o Options, args BuildArgs) (Algorithm, error) {
			o.Density = args.Float("density", o.Density)
			if o.Density <= 0 || o.Density > 1 {
				return nil, fmt.Errorf("density %g out of range (0, 1]", o.Density)
			}
			return ctor(o), nil
		},
	}
}

// quantizer registers a levels-parameterized leaf algorithm.
func quantizer(summary string, ctor func(Options) Algorithm) Builder {
	return Builder{
		Summary: summary,
		Params: []ParamSpec{{
			Name: "levels", Kind: ParamInt,
			Doc: "quantization levels s >= 1 (default 4)",
		}},
		Build: func(o Options, args BuildArgs) (Algorithm, error) {
			o.QuantLevels = args.Int("levels", o.QuantLevels)
			if o.QuantLevels < 1 {
				return nil, fmt.Errorf("levels %d out of range (>= 1)", o.QuantLevels)
			}
			return ctor(o), nil
		},
	}
}

func init() {
	Register("dense", Builder{
		Summary: "uncompressed allreduce-averaged SGD (baseline)",
		Build:   func(o Options, _ BuildArgs) (Algorithm, error) { return NewDense(o), nil },
	})
	Register("topk", sparsifier("top-k magnitude sparsification with error feedback",
		func(o Options) Algorithm { return NewTopK(o) }))
	Register("gaussiank", sparsifier("Gaussian-threshold sparsification with error feedback",
		func(o Options) Algorithm { return NewGaussianK(o) }))
	Register("randk", sparsifier("uniform random-k sparsification with error feedback",
		func(o Options) Algorithm { return NewRandK(o) }))
	Register("dgc", sparsifier("deep gradient compression (top-k + momentum correction)",
		func(o Options) Algorithm { return NewDGC(o) }))
	Register("qsgd", quantizer("QSGD stochastic quantization, packed words",
		func(o Options) Algorithm { return NewQSGD(o) }))
	Register("qsgd-elias", quantizer("QSGD with Elias-gamma entropy coding",
		func(o Options) Algorithm { return NewQSGDElias(o) }))
	Register("terngrad", Builder{
		Summary: "ternary {-1,0,+1} stochastic quantization",
		Build:   func(o Options, _ BuildArgs) (Algorithm, error) { return NewTernGrad(o), nil },
	})
	Register("periodic", Builder{
		Summary: "round reduction wrapper: synchronize every interval-th step",
		Wraps:   1,
		Params: []ParamSpec{{
			Name: "interval", Kind: ParamInt,
			Doc: "steps between synchronizations, >= 1 (default 2)",
		}},
		Build: func(o Options, args BuildArgs) (Algorithm, error) {
			interval := args.Int("interval", 2)
			if interval < 1 {
				return nil, fmt.Errorf("interval %d out of range (>= 1)", interval)
			}
			return NewPeriodic(args.Inner[0], interval), nil
		},
	})
}
