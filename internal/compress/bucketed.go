package compress

import (
	"fmt"
	"strings"

	"a2sgd/internal/comm"
	"a2sgd/internal/netsim"
	"a2sgd/internal/tensor"
)

// Bucketed composes per-bucket instances of one algorithm over a contiguous
// partition of the gradient vector (a nn.BucketPlan's Bounds). Each bucket
// owns a full algorithm instance — error-feedback residuals, QSGD seeds and
// A2SGD two-level means are all per-bucket, sized to the bucket's length —
// so buckets are independent and their synchronization can be pipelined: the
// training runtime launches bucket i's exchange while bucket i+1 is still
// being gathered and encoded.
//
// Bucketed also implements Algorithm itself (encode/exchange every bucket in
// order), so it drops into any code path that expects a whole-vector
// algorithm; traffic and compute accounting are aggregated across buckets.
type Bucketed struct {
	algs     []Algorithm
	bounds   []int            // len(algs)+1 cumulative offsets; bounds[len] = n
	payloads []Payload        // per-bucket payloads of the last whole-vector Encode
	views    []tensor.VecView // per-bucket sub-view scratch of the whole-vector view calls
}

// NewBucketed builds one algorithm instance per bucket. bounds holds the
// cumulative bucket offsets (len = buckets+1, bounds[0] = 0, strictly
// derived from a layer-granular plan); build constructs the instance for
// bucket b of the given element count.
func NewBucketed(bounds []int, build func(bucket, n int) Algorithm) *Bucketed {
	if len(bounds) < 2 || bounds[0] != 0 {
		panic(fmt.Sprintf("compress: invalid bucket bounds %v", bounds))
	}
	k := len(bounds) - 1
	algs := make([]Algorithm, k)
	for b := 0; b < k; b++ {
		if bounds[b+1] < bounds[b] {
			panic(fmt.Sprintf("compress: decreasing bucket bounds %v", bounds))
		}
		algs[b] = build(b, bounds[b+1]-bounds[b])
	}
	return &Bucketed{algs: algs, bounds: bounds, payloads: make([]Payload, k), views: make([]tensor.VecView, k)}
}

// NumBuckets returns the bucket count.
func (bk *Bucketed) NumBuckets() int { return len(bk.algs) }

// Bounds returns the cumulative bucket offsets (not to be mutated).
func (bk *Bucketed) Bounds() []int { return bk.bounds }

// BucketSlice returns bucket b's view of the full flattened vector g.
func (bk *Bucketed) BucketSlice(b int, g []float32) []float32 {
	return g[bk.bounds[b]:bk.bounds[b+1]]
}

// EncodeBucket runs bucket b's local compression on its slice gb (which must
// be BucketSlice(b, g)).
func (bk *Bucketed) EncodeBucket(b int, gb []float32) Payload {
	return bk.algs[b].Encode(gb)
}

// ExchangeBucket runs bucket b's collective synchronization, writing the
// synchronized gradient into gb.
func (bk *Bucketed) ExchangeBucket(b int, p Payload, gb []float32, c *comm.Communicator) error {
	return bk.algs[b].Exchange(p, gb, c)
}

// EncodeBucketView runs bucket b's local compression directly from a strided
// view of the bucket's live gradient storage (the training runtime's
// GradView of the bucket span — no gather copy).
func (bk *Bucketed) EncodeBucketView(b int, v *tensor.VecView) Payload {
	return bk.algs[b].EncodeView(v)
}

// ExchangeBucketView runs bucket b's collective, reconstructing the
// synchronized gradient directly into the view's segments (no scatter copy).
func (bk *Bucketed) ExchangeBucketView(b int, p Payload, v *tensor.VecView, c *comm.Communicator) error {
	return bk.algs[b].ExchangeView(p, v, c)
}

// PayloadBytesPerBucket returns the analytic per-worker payload of each
// bucket — the per-bucket byte counts the overlap-aware network model prices.
func (bk *Bucketed) PayloadBytesPerBucket() []int64 {
	out := make([]int64, len(bk.algs))
	for b, a := range bk.algs {
		out[b] = a.PayloadBytes(bk.bounds[b+1] - bk.bounds[b])
	}
	return out
}

// Name implements Algorithm: the inner name, suffixed with the bucket count
// when the partition is non-trivial. Under a mixing policy the buckets run
// different algorithms; the distinct inner names are joined in first-use
// order ("a2sgd|dense+bucketed[5]").
func (bk *Bucketed) Name() string {
	if len(bk.algs) == 1 {
		return bk.algs[0].Name()
	}
	var distinct []string
	seen := map[string]bool{}
	for _, a := range bk.algs {
		if n := a.Name(); !seen[n] {
			seen[n] = true
			distinct = append(distinct, n)
		}
	}
	return fmt.Sprintf("%s+bucketed[%d]", strings.Join(distinct, "|"), len(bk.algs))
}

// ExchangeKinds returns each bucket's dominant collective — the per-bucket
// input to the mixed-policy price laws (netsim *SyncTimeKinds). Uniform
// runs repeat one kind; mixed policies interleave allreduce- and
// allgather-style buckets.
func (bk *Bucketed) ExchangeKinds() []netsim.ExchangeKind {
	kinds := make([]netsim.ExchangeKind, len(bk.algs))
	for b, a := range bk.algs {
		kinds[b] = a.ExchangeKind()
	}
	return kinds
}

// Encode implements Algorithm: every bucket is encoded in order. The
// returned payload aggregates the analytic bits across buckets; the packed
// per-bucket payloads stay internal and are consumed by the next Exchange
// (pair Encode/Exchange as the Algorithm contract requires).
func (bk *Bucketed) Encode(g []float32) Payload {
	if len(g) != bk.bounds[len(bk.bounds)-1] {
		panic(fmt.Sprintf("compress: Bucketed.Encode length %d, plan covers %d",
			len(g), bk.bounds[len(bk.bounds)-1]))
	}
	var bits int64
	for b := range bk.algs {
		bk.payloads[b] = bk.algs[b].Encode(bk.BucketSlice(b, g))
		bits += bk.payloads[b].Bits
	}
	return Payload{Bits: bits}
}

// Exchange implements Algorithm: every bucket's collective runs in order,
// using the payloads of the immediately preceding Encode.
func (bk *Bucketed) Exchange(_ Payload, g []float32, c *comm.Communicator) error {
	for b := range bk.algs {
		if err := bk.algs[b].Exchange(bk.payloads[b], bk.BucketSlice(b, g), c); err != nil {
			return err
		}
	}
	return nil
}

// EncodeView implements Algorithm: every bucket encodes in order from its
// sub-view of v (the per-bucket sub-view structs are instance scratch).
func (bk *Bucketed) EncodeView(v *tensor.VecView) Payload {
	if v.Len() != bk.bounds[len(bk.bounds)-1] {
		panic(fmt.Sprintf("compress: Bucketed.EncodeView length %d, plan covers %d",
			v.Len(), bk.bounds[len(bk.bounds)-1]))
	}
	var bits int64
	for b := range bk.algs {
		bv := v.SliceView(bk.bounds[b], bk.bounds[b+1], &bk.views[b])
		bk.payloads[b] = bk.algs[b].EncodeView(bv)
		bits += bk.payloads[b].Bits
	}
	return Payload{Bits: bits}
}

// ExchangeView implements Algorithm, pairing with the immediately preceding
// EncodeView (the per-bucket sub-views are rebuilt; their segment structure
// is identical as long as v is).
func (bk *Bucketed) ExchangeView(_ Payload, v *tensor.VecView, c *comm.Communicator) error {
	for b := range bk.algs {
		bv := v.SliceView(bk.bounds[b], bk.bounds[b+1], &bk.views[b])
		if err := bk.algs[b].ExchangeView(bk.payloads[b], bv, c); err != nil {
			return err
		}
	}
	return nil
}

// ExchangeKind implements Algorithm (all buckets share the inner kind).
func (bk *Bucketed) ExchangeKind() netsim.ExchangeKind { return bk.algs[0].ExchangeKind() }

// PayloadBytes implements Algorithm: the sum of per-bucket payloads. The
// bucket plan fixes the partition, so n is ignored — unlike the inner
// algorithms, a Bucketed instance cannot price hypothetical model sizes.
func (bk *Bucketed) PayloadBytes(n int) int64 {
	var total int64
	for _, b := range bk.PayloadBytesPerBucket() {
		total += b
	}
	return total
}

// Reset implements Algorithm.
func (bk *Bucketed) Reset() {
	for _, a := range bk.algs {
		a.Reset()
	}
}

var _ Algorithm = (*Bucketed)(nil)
