package compress

// Algorithm state capture. Several builtins carry cross-step state — error
// feedback residuals (Top-K, Gaussian-K, Rand-K), DGC's momentum/velocity
// accumulators, Periodic's step counter, and the RNG streams of the
// stochastic quantizers. A checkpoint that omits any of it cannot resume a
// run bitwise, so stateful algorithms implement StateSaver/StateLoader and
// the elastic runtime snapshots every per-bucket instance through them.
//
// A State's vectors come in two flavors:
//
//   - Vecs are element-aligned: each vector has exactly the bucket's element
//     count, with entry i describing gradient element bounds[b]+i. Because
//     they are positional, Vecs survive a bucket-plan change: RemapStates
//     scatters them into model-length vectors at the old bucket offsets and
//     re-slices them at the new bounds. Residual mass is never lost to a
//     re-plan.
//   - Words are opaque (RNG state, counters). They are only meaningful to the
//     exact algorithm that saved them over the exact same bucket, so a remap
//     across changed bounds drops them and the rebuilt instance keeps its
//     fresh deterministic seed (compress.BucketSeed) — deterministic either
//     way, which is what the resharding guarantee needs.

// State is a deep-copied snapshot of one algorithm instance's cross-step
// state. The zero value (nil maps) means "no carried state".
type State struct {
	// Alg is the saving instance's Name(), so a restore can refuse state
	// saved by a different algorithm.
	Alg string
	// Vecs holds element-aligned vectors keyed by role ("ef", "dgc.u", ...).
	Vecs map[string][]float32
	// Words holds opaque word blobs keyed by role ("rng", "periodic.step").
	Words map[string][]uint64
}

// setVec deep-copies v into the state under key.
func (s *State) setVec(key string, v []float32) {
	if s.Vecs == nil {
		s.Vecs = map[string][]float32{}
	}
	s.Vecs[key] = append([]float32(nil), v...)
}

// setWords deep-copies w into the state under key.
func (s *State) setWords(key string, w []uint64) {
	if s.Words == nil {
		s.Words = map[string][]uint64{}
	}
	s.Words[key] = append([]uint64(nil), w...)
}

// vec copies the stored vector for key into dst (length-matched); a missing
// key leaves dst untouched (the instance keeps its fresh zero state).
func (s State) vec(key string, dst []float32) {
	if v, ok := s.Vecs[key]; ok && len(v) == len(dst) {
		copy(dst, v)
	}
}

// words returns the stored blob for key, or nil.
func (s State) words(key string) []uint64 { return s.Words[key] }

// Empty reports whether the state carries nothing.
func (s State) Empty() bool { return len(s.Vecs) == 0 && len(s.Words) == 0 }

// StateSaver is implemented by algorithms with cross-step state. SaveState
// returns a deep copy — mutating the instance afterwards does not change the
// snapshot, and vice versa.
type StateSaver interface {
	SaveState() State
}

// StateLoader restores state captured by SaveState on a compatible instance
// (same spec, same bucket length). Unknown or missing keys are ignored: the
// instance keeps its fresh deterministic initialization for them, so loading
// a remapped State that lost its Words is safe.
type StateLoader interface {
	LoadState(State)
}

// SaveStates captures every bucket's algorithm state. Buckets whose
// algorithm carries no state (dense, A2SGD) get an empty State with the
// algorithm's name, so a restore can still verify spec compatibility.
func (bk *Bucketed) SaveStates() []State {
	out := make([]State, len(bk.algs))
	for b, a := range bk.algs {
		if sv, ok := a.(StateSaver); ok {
			out[b] = sv.SaveState()
		}
		out[b].Alg = a.Name()
	}
	return out
}

// LoadStates restores per-bucket states captured by SaveStates. states must
// be parallel to the buckets (a short slice restores a prefix). Words are
// only loaded into a bucket whose algorithm name matches the saved one —
// opaque state from a different spec would corrupt the stream.
func (bk *Bucketed) LoadStates(states []State) {
	for b, a := range bk.algs {
		if b >= len(states) {
			return
		}
		ld, ok := a.(StateLoader)
		if !ok {
			continue
		}
		st := states[b]
		if st.Alg != "" && st.Alg != a.Name() {
			// Spec changed under this bucket: element-aligned vectors still
			// transfer (residual mass is algorithm-agnostic error), opaque
			// words do not.
			st.Words = nil
		}
		ld.LoadState(st)
	}
}

// Algorithm returns bucket b's algorithm instance.
func (bk *Bucketed) Algorithm(b int) Algorithm { return bk.algs[b] }

// RemapStates re-buckets per-bucket states from one bucket plan to another
// over the same flattened parameter space. Element-aligned Vecs are scattered
// into model-length vectors at the old offsets and re-sliced at the new
// bounds; buckets whose [lo, hi) range is unchanged keep their Words and Alg
// tag, every other bucket drops them (see the package comment on why that is
// deterministic). oldBounds and newBounds are cumulative offsets ending at
// the same element count n.
func RemapStates(states []State, oldBounds, newBounds []int) []State {
	if boundsEqual(oldBounds, newBounds) {
		return states
	}
	n := oldBounds[len(oldBounds)-1]
	// Gather each vector role into one model-length vector.
	global := map[string][]float32{}
	for b, st := range states {
		lo, hi := oldBounds[b], oldBounds[b+1]
		for key, v := range st.Vecs {
			if len(v) != hi-lo {
				continue // not element-aligned; cannot be remapped
			}
			g, ok := global[key]
			if !ok {
				g = make([]float32, n)
				global[key] = g
			}
			copy(g[lo:hi], v)
		}
	}
	// Index old buckets by range so unchanged buckets keep opaque state.
	type span struct{ lo, hi int }
	oldAt := map[span]State{}
	for b, st := range states {
		oldAt[span{oldBounds[b], oldBounds[b+1]}] = st
	}
	out := make([]State, len(newBounds)-1)
	for b := range out {
		lo, hi := newBounds[b], newBounds[b+1]
		if st, ok := oldAt[span{lo, hi}]; ok {
			out[b] = st
			continue
		}
		for key, g := range global {
			seg := g[lo:hi]
			if !allZero(seg) {
				out[b].setVec(key, seg)
			}
		}
	}
	return out
}

func boundsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allZero(v []float32) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}
