package compress

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the algorithm-spec grammar shared by the registry
// (Build) and the policy layer (ParsePolicy). A spec is a name with an
// optional parenthesized argument list:
//
//	spec  := name [ '(' args ')' ]
//	args  := arg { ',' arg }
//	arg   := [ name '=' ] value
//	value := spec | scalar
//
// Names and scalars are runs of letters, digits and [._+-]; that one token
// class covers algorithm names ("a2sgd-fused"), numbers ("0.01", "8") and
// byte sizes ("64KiB"). Positional arguments (no key) are inner algorithm
// specs for wrappers; keyed arguments are typed parameters validated against
// the registered schema. Examples:
//
//	topk(density=0.01)
//	periodic(qsgd(levels=8), interval=4)
//	mixed(big=a2sgd, small=dense, threshold=64KiB)

// Spec is one parsed node of the grammar: an algorithm (or policy) name and
// its ordered argument list.
type Spec struct {
	// Name is the registered algorithm or policy name.
	Name string
	// Args are the arguments in source order (order matters for policies
	// like bylayer, whose rules are tried first to last).
	Args []Arg
}

// Arg is one argument of a spec: positional when Key is empty, keyed
// otherwise.
type Arg struct {
	Key   string
	Value Value
}

// Value is an argument value: either a nested spec (written with
// parentheses, or converted from a bare name by AsSpec) or a scalar token.
type Value struct {
	// Spec is non-nil when the value was written as name(...).
	Spec *Spec
	// Text is the scalar token otherwise ("0.01", "4", "64KiB", "a2sgd").
	Text string
}

// String formats the value in canonical grammar form.
func (v Value) String() string {
	if v.Spec != nil {
		return v.Spec.String()
	}
	return v.Text
}

// AsSpec interprets the value as an algorithm spec: a nested spec is
// returned as is, a bare name token becomes a zero-argument spec.
func (v Value) AsSpec() (*Spec, error) {
	if v.Spec != nil {
		return v.Spec, nil
	}
	if !isAtom(v.Text) {
		return nil, fmt.Errorf("compress: %q is not an algorithm spec", v.Text)
	}
	return &Spec{Name: v.Text}, nil
}

// String formats the spec canonically: Parse(s.String()) reproduces s, and
// reformatting is idempotent.
func (s *Spec) String() string {
	if len(s.Args) == 0 {
		return s.Name
	}
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		if a.Key == "" {
			parts[i] = a.Value.String()
		} else {
			parts[i] = a.Key + "=" + a.Value.String()
		}
	}
	return s.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Positional returns the positional (un-keyed) arguments, in order.
func (s *Spec) Positional() []Value {
	var out []Value
	for _, a := range s.Args {
		if a.Key == "" {
			out = append(out, a.Value)
		}
	}
	return out
}

// Keyed returns the value of the named keyed argument, if present.
func (s *Spec) Keyed(key string) (Value, bool) {
	for _, a := range s.Args {
		if a.Key == key {
			return a.Value, true
		}
	}
	return Value{}, false
}

// SetKeyed appends a keyed argument unless the key is already present, and
// reports whether it was added. Legacy TrainConfig fields lower onto the
// spec through this (an explicit spec parameter always wins).
func (s *Spec) SetKeyed(key, text string) bool {
	if _, ok := s.Keyed(key); ok {
		return false
	}
	s.Args = append(s.Args, Arg{Key: key, Value: Value{Text: text}})
	return true
}

// Parse parses one spec string. The entire input must be consumed.
func Parse(src string) (*Spec, error) {
	p := &parser{src: src}
	s, err := p.spec()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("compress: spec %q: unexpected %q at offset %d", src, rest(p), p.pos)
	}
	return s, nil
}

type parser struct {
	src string
	pos int
}

func rest(p *parser) string {
	r := p.src[p.pos:]
	if len(r) > 12 {
		r = r[:12] + "…"
	}
	return r
}

func isAtomByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '.' || c == '_' || c == '+' || c == '-'
}

func isAtom(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isAtomByte(s[i]) {
			return false
		}
	}
	return true
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

// atom consumes one token of name/scalar characters.
func (p *parser) atom() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isAtomByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("compress: spec %q: expected a name at offset %d (got %q)", p.src, start, rest(p))
	}
	return p.src[start:p.pos], nil
}

// peek returns the next non-space byte without consuming it (0 at EOF).
func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

// spec parses name [ '(' args ')' ].
func (p *parser) spec() (*Spec, error) {
	name, err := p.atom()
	if err != nil {
		return nil, err
	}
	if p.peek() != '(' {
		return &Spec{Name: name}, nil
	}
	return p.specAfterName(name)
}

// arg parses [ key '=' ] value.
func (p *parser) arg() (Arg, error) {
	tok, err := p.atom()
	if err != nil {
		return Arg{}, err
	}
	switch p.peek() {
	case '=':
		p.pos++
		v, err := p.value()
		if err != nil {
			return Arg{}, err
		}
		return Arg{Key: tok, Value: v}, nil
	case '(':
		inner, err := p.specAfterName(tok)
		if err != nil {
			return Arg{}, err
		}
		return Arg{Value: Value{Spec: inner}}, nil
	default:
		return Arg{Value: Value{Text: tok}}, nil
	}
}

// value parses scalar | spec (after a '=').
func (p *parser) value() (Value, error) {
	tok, err := p.atom()
	if err != nil {
		return Value{}, err
	}
	if p.peek() == '(' {
		inner, err := p.specAfterName(tok)
		if err != nil {
			return Value{}, err
		}
		return Value{Spec: inner}, nil
	}
	return Value{Text: tok}, nil
}

// specAfterName parses the '(' args ')' tail of a spec whose name was
// already consumed.
func (p *parser) specAfterName(name string) (*Spec, error) {
	s := &Spec{Name: name}
	p.pos++ // consume '('
	if p.peek() == ')' {
		p.pos++
		return s, nil
	}
	for {
		arg, err := p.arg()
		if err != nil {
			return nil, err
		}
		if arg.Key != "" {
			if _, dup := s.Keyed(arg.Key); dup {
				return nil, fmt.Errorf("compress: spec %q: duplicate parameter %q", p.src, arg.Key)
			}
		}
		s.Args = append(s.Args, arg)
		switch p.peek() {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return s, nil
		default:
			return nil, fmt.Errorf("compress: spec %q: expected ',' or ')' at offset %d (got %q)", p.src, p.pos, rest(p))
		}
	}
}

// ParseByteSize parses a byte-size scalar: a number with an optional B /
// KiB / MiB / GiB (binary) or KB / MB / GB (decimal) suffix. "64KiB" →
// 65536, "4096" → 4096, "1.5MiB" → 1572864.
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := float64(1)
	lower := strings.ToLower(t)
	switch {
	case strings.HasSuffix(lower, "kib"):
		mult, t = 1024, t[:len(t)-3]
	case strings.HasSuffix(lower, "mib"):
		mult, t = 1024*1024, t[:len(t)-3]
	case strings.HasSuffix(lower, "gib"):
		mult, t = 1024*1024*1024, t[:len(t)-3]
	case strings.HasSuffix(lower, "kb"):
		mult, t = 1000, t[:len(t)-2]
	case strings.HasSuffix(lower, "mb"):
		mult, t = 1000*1000, t[:len(t)-2]
	case strings.HasSuffix(lower, "gb"):
		mult, t = 1000*1000*1000, t[:len(t)-2]
	case strings.HasSuffix(lower, "b"):
		t = t[:len(t)-1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("compress: bad byte size %q (want e.g. 4096, 64KiB, 1.5MiB)", s)
	}
	return int64(v * mult), nil
}

// FormatByteSize renders n in the most compact exact binary unit
// (the inverse of ParseByteSize for the canonical cases).
func FormatByteSize(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return strconv.FormatInt(n>>30, 10) + "GiB"
	case n >= 1<<20 && n%(1<<20) == 0:
		return strconv.FormatInt(n>>20, 10) + "MiB"
	case n >= 1<<10 && n%(1<<10) == 0:
		return strconv.FormatInt(n>>10, 10) + "KiB"
	default:
		return strconv.FormatInt(n, 10) + "B"
	}
}
