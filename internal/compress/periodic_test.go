package compress

import (
	"math"
	"sync"
	"testing"

	"a2sgd/internal/comm"
)

func TestPeriodicIntervalOneIsTransparent(t *testing.T) {
	n := 100
	p1 := NewPeriodic(NewDense(DefaultOptions(n)), 1)
	grads := [][]float32{randGrad(1, n), randGrad(2, n)}
	want := denseAverage(grads)
	out := runSync(t, 2, func(int) Algorithm {
		return NewPeriodic(NewDense(DefaultOptions(n)), 1)
	}, grads)
	for r := range out {
		for i := range want {
			if math.Abs(float64(out[r][i]-want[i])) > 1e-5 {
				t.Fatalf("interval-1 differs at %d", i)
			}
		}
	}
	if p1.Name() != "dense-every1" {
		t.Error("name")
	}
}

func TestPeriodicSkipsAndSyncs(t *testing.T) {
	n := 16
	p := 2
	grads := [][]float32{randGrad(5, n), randGrad(6, n)}
	want := denseAverage(grads)
	// Interval 3: steps 0,1 local; step 2 syncs.
	results := make([][3][]float32, p)
	err := comm.RunGroup(p, func(c *comm.Communicator) error {
		alg := NewPeriodic(NewDense(DefaultOptions(n)), 3)
		var mu sync.Mutex
		for s := 0; s < 3; s++ {
			g := append([]float32(nil), grads[c.Rank()]...)
			if _, err := Sync(alg, g, c); err != nil {
				return err
			}
			mu.Lock()
			results[c.Rank()][s] = g
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		// Steps 0 and 1: local gradient untouched.
		for s := 0; s < 2; s++ {
			for i := range grads[r] {
				if results[r][s][i] != grads[r][i] {
					t.Fatalf("rank %d step %d: local step modified gradient", r, s)
				}
			}
		}
		// Step 2: dense average.
		for i := range want {
			if math.Abs(float64(results[r][2][i]-want[i])) > 1e-5 {
				t.Fatalf("rank %d sync step wrong at %d", r, i)
			}
		}
	}
}

func TestPeriodicTrafficAmortized(t *testing.T) {
	n := 1000
	inner := NewDense(DefaultOptions(n))
	p := NewPeriodic(inner, 4)
	if p.PayloadBytes(n) != inner.PayloadBytes(n)/4 {
		t.Errorf("amortized payload %d", p.PayloadBytes(n))
	}
	if p.Interval() != 4 {
		t.Error("interval")
	}
	// Non-sync encodes are free.
	pl := p.Encode(make([]float32, n))
	if pl.Bits != 0 {
		t.Errorf("local-step payload bits %d", pl.Bits)
	}
	// Measured traffic over 8 steps with 2 workers: exactly 2 syncs.
	var syncBytes int64
	err := comm.RunGroup(2, func(c *comm.Communicator) error {
		alg := NewPeriodic(NewDense(DefaultOptions(n)), 4)
		g := make([]float32, n)
		for s := 0; s < 8; s++ {
			if _, err := Sync(alg, g, c); err != nil {
				return err
			}
		}
		if c.Rank() == 0 {
			syncBytes = c.Traffic().BytesSent
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Dense allreduce (p=2) sends n·4 bytes per sync; 2 syncs happened.
	want := int64(2 * 4 * n)
	if syncBytes != want {
		t.Errorf("traffic %d, want %d", syncBytes, want)
	}
}

func TestPeriodicReset(t *testing.T) {
	p := NewPeriodic(NewTopK(DefaultOptions(100)), 2)
	p.Encode(make([]float32, 100))
	p.step = 5
	p.Reset()
	if p.step != 0 {
		t.Error("reset step")
	}
}

func TestPeriodicInvalidIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPeriodic(NewDense(DefaultOptions(10)), 0)
}
