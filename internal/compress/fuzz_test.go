package compress

import (
	"math"
	"testing"

	"a2sgd/internal/tensor"
)

// Fuzz targets: the decoders consume bytes that crossed a network, so they
// must never panic or loop on arbitrary input. Under plain `go test` these
// run their seed corpus; `go test -fuzz=FuzzX` explores further.

func bytesToF32(data []byte) []float32 {
	out := make([]float32, len(data)/4)
	for i := range out {
		bits := uint32(data[4*i]) | uint32(data[4*i+1])<<8 |
			uint32(data[4*i+2])<<16 | uint32(data[4*i+3])<<24
		out[i] = math.Float32frombits(bits)
	}
	return out
}

func FuzzQSGDDecode(f *testing.F) {
	// Seed with a genuine encoding and a few corruptions.
	q := NewQSGD(DefaultOptions(64))
	g := make([]float32, 64)
	tensor.NewRNG(1).NormVec(g, 0, 1)
	p := q.Encode(g)
	seed := make([]byte, 4*len(p.Data))
	for i, v := range p.Data {
		bits := math.Float32bits(v)
		seed[4*i] = byte(bits)
		seed[4*i+1] = byte(bits >> 8)
		seed[4*i+2] = byte(bits >> 16)
		seed[4*i+3] = byte(bits >> 24)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(seed[:8])
	f.Fuzz(func(t *testing.T, data []byte) {
		words := bytesToF32(data)
		if len(words) == 0 {
			return
		}
		dst := make([]float32, 64)
		dec := NewQSGD(DefaultOptions(64))
		// Must not panic for any stream whose word count covers the
		// fixed-width layout; shorter streams are rejected by length checks
		// upstream, so pad to the expected size here.
		need := 1 + dec.encodedWords(64)
		for len(words) < need {
			words = append(words, 0)
		}
		dec.Decode(words[:need], dst)
	})
}

func FuzzQSGDEliasDecode(f *testing.F) {
	e := NewQSGDElias(DefaultOptions(32))
	g := make([]float32, 32)
	tensor.NewRNG(2).NormVec(g, 0, 1)
	p := e.Encode(g)
	seed := make([]byte, 4*len(p.Data))
	for i, v := range p.Data {
		bits := math.Float32bits(v)
		seed[4*i] = byte(bits)
		seed[4*i+1] = byte(bits >> 8)
		seed[4*i+2] = byte(bits >> 16)
		seed[4*i+3] = byte(bits >> 24)
	}
	f.Add(seed)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(make([]byte, 16)) // all-zero bit stream (gamma bail-out path)
	f.Fuzz(func(t *testing.T, data []byte) {
		words := bytesToF32(data)
		if len(words) < 2 {
			return
		}
		dst := make([]float32, 32)
		NewQSGDElias(DefaultOptions(32)).Decode(words, dst)
	})
}

func FuzzEliasGammaStream(f *testing.F) {
	f.Add(uint32(1), uint32(100), uint32(1<<20))
	f.Add(uint32(7), uint32(8), uint32(9))
	f.Fuzz(func(t *testing.T, a, b, c uint32) {
		vals := []uint32{a | 1, b | 1, c | 1} // keep positive
		var w bitWriter
		for _, v := range vals {
			eliasGammaWrite(&w, v)
		}
		r := &bitReader{words: w.words}
		for _, want := range vals {
			if got := eliasGammaRead(r); got != want {
				t.Fatalf("round trip %d -> %d", want, got)
			}
		}
	})
}
