package compress

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// BucketInfo describes one bucket of the gradient partition — the metadata
// the training runtime hands a Policy so it can choose that bucket's
// algorithm spec.
type BucketInfo struct {
	// Index is the bucket's position in flattened-vector order.
	Index int
	// Params is the bucket's element count.
	Params int
	// Bytes is the bucket's raw float32 size (4 * Params) — what size
	// thresholds compare against.
	Bytes int64
	// Layers names the tensors the bucket covers, in layer order
	// (nn.Segment names, e.g. "fc1.W") — what bylayer patterns match.
	Layers []string
}

// Policy maps each bucket to the algorithm spec that synchronizes it. A
// Policy is a pure function of BucketInfo: for a fixed bucket plan it always
// returns the same specs, so policy-driven runs are deterministic per seed.
type Policy interface {
	// Name returns the policy's canonical spec string.
	Name() string
	// SpecFor returns the (already-validated) spec for one bucket.
	SpecFor(b BucketInfo) *Spec
	// Specs enumerates every spec the policy can return, so callers can
	// validate or price them up front.
	Specs() []*Spec
}

// PolicyBuilder constructs a policy from its spec arguments. The builder
// must validate every referenced algorithm spec (CheckSpec) so SpecFor
// cannot fail at runtime.
type PolicyBuilder func(args []Arg) (Policy, error)

// policyEntry pairs a policy's constructor with its usage signature.
type policyEntry struct {
	build PolicyBuilder
	usage string
}

var policyRegistry = struct {
	sync.RWMutex
	m map[string]policyEntry
}{m: map[string]policyEntry{}}

// RegisterPolicy adds a policy under the given spec name, with the usage
// signature that unknown-policy errors and CLI flag help print (e.g.
// "mixed(big=spec, small=spec, threshold=bytes)"; the bare name is used
// when empty). Like Register, it panics on invalid or duplicate names —
// registration is init-time wiring.
func RegisterPolicy(name, usage string, b PolicyBuilder) {
	if !isAtom(name) {
		panic(fmt.Sprintf("compress: invalid policy name %q", name))
	}
	if b == nil {
		panic(fmt.Sprintf("compress: RegisterPolicy(%q): nil builder", name))
	}
	if usage == "" {
		usage = name
	}
	policyRegistry.Lock()
	defer policyRegistry.Unlock()
	if _, dup := policyRegistry.m[name]; dup {
		panic(fmt.Sprintf("compress: policy %q registered twice", name))
	}
	policyRegistry.m[name] = policyEntry{build: b, usage: usage}
}

// Policies lists the registered policy names, sorted.
func Policies() []string {
	policyRegistry.RLock()
	defer policyRegistry.RUnlock()
	names := make([]string, 0, len(policyRegistry.m))
	for n := range policyRegistry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PolicyUsage lists every registered policy's usage signature, sorted by
// name — what unknown-policy errors and CLI flag help print.
func PolicyUsage() []string {
	names := Policies()
	policyRegistry.RLock()
	defer policyRegistry.RUnlock()
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = policyRegistry.m[n].usage
	}
	return out
}

// BuildPolicy constructs a policy from a parsed spec. A name registered as
// a policy builds that policy; a name registered as an algorithm builds
// uniform(spec) — so a plain algorithm spec is a valid policy.
func BuildPolicy(s *Spec) (Policy, error) {
	policyRegistry.RLock()
	e, ok := policyRegistry.m[s.Name]
	policyRegistry.RUnlock()
	if ok {
		return e.build(s.Args)
	}
	if _, isAlgo := LookupBuilder(s.Name); isAlgo {
		if err := validateSpec(s); err != nil {
			return nil, err
		}
		return &uniform{spec: s}, nil
	}
	return nil, fmt.Errorf("compress: unknown policy %q — policies: %s; or any algorithm spec: %s",
		s.Name, strings.Join(PolicyUsage(), ", "), strings.Join(Usage(), ", "))
}

// ParsePolicy parses and builds a policy spec string.
func ParsePolicy(src string) (Policy, error) {
	s, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return BuildPolicy(s)
}

// ---- uniform ----

// uniform synchronizes every bucket with the same spec.
type uniform struct{ spec *Spec }

func (u *uniform) Name() string             { return fmt.Sprintf("uniform(%s)", u.spec) }
func (u *uniform) SpecFor(BucketInfo) *Spec { return u.spec }
func (u *uniform) Specs() []*Spec           { return []*Spec{u.spec} }

// ---- mixed ----

// mixed synchronizes big buckets (raw bytes >= threshold) with one spec and
// small buckets with another — the ROADMAP's embedding-buckets-compressed /
// tiny-head-dense scenario.
type mixed struct {
	big, small *Spec
	threshold  int64
}

func (m *mixed) Name() string {
	return fmt.Sprintf("mixed(big=%s, small=%s, threshold=%s)", m.big, m.small, FormatByteSize(m.threshold))
}

func (m *mixed) SpecFor(b BucketInfo) *Spec {
	if b.Bytes >= m.threshold {
		return m.big
	}
	return m.small
}

func (m *mixed) Specs() []*Spec { return []*Spec{m.big, m.small} }

// ---- bylayer ----

// byLayerRule is one pattern → spec rule of a bylayer policy.
type byLayerRule struct {
	pattern string
	spec    *Spec
}

// byLayer chooses a bucket's spec by layer name: rules are tried in
// declaration order, and the first whose pattern is a substring of any of
// the bucket's layer names wins; the required default covers the rest.
type byLayer struct {
	rules []byLayerRule
	def   *Spec
}

func (p *byLayer) Name() string {
	parts := make([]string, 0, len(p.rules)+1)
	for _, r := range p.rules {
		parts = append(parts, fmt.Sprintf("%s=%s", r.pattern, r.spec))
	}
	parts = append(parts, fmt.Sprintf("default=%s", p.def))
	return "bylayer(" + strings.Join(parts, ", ") + ")"
}

func (p *byLayer) SpecFor(b BucketInfo) *Spec {
	for _, r := range p.rules {
		for _, layer := range b.Layers {
			if strings.Contains(layer, r.pattern) {
				return r.spec
			}
		}
	}
	return p.def
}

func (p *byLayer) Specs() []*Spec {
	out := make([]*Spec, 0, len(p.rules)+1)
	for _, r := range p.rules {
		out = append(out, r.spec)
	}
	return append(out, p.def)
}

// validateSpec checks a spec's names and parameters and trial-builds it, so
// out-of-range values (density > 1, levels < 1) are rejected when the
// policy is constructed, not when a worker first asks for an algorithm.
func validateSpec(s *Spec) error {
	if err := CheckSpec(s); err != nil {
		return err
	}
	_, err := Build(s, DefaultOptions(4))
	return err
}

// specArg converts one policy argument value into a validated algorithm spec.
func specArg(policy string, a Arg) (*Spec, error) {
	s, err := a.Value.AsSpec()
	if err != nil {
		return nil, fmt.Errorf("compress: %s: %s: %w", policy, a.Key, err)
	}
	if err := validateSpec(s); err != nil {
		return nil, fmt.Errorf("compress: %s: %s: %w", policy, a.Key, err)
	}
	return s, nil
}

// Usage signatures of the built-in policies.
const (
	uniformUsage = "uniform(spec)"
	mixedUsage   = "mixed(big=spec, small=spec, threshold=bytes)"
	bylayerUsage = "bylayer(pattern=spec, ..., default=spec)"
)

func init() {
	RegisterPolicy("uniform", uniformUsage, func(args []Arg) (Policy, error) {
		if len(args) != 1 || args[0].Key != "" {
			return nil, fmt.Errorf("compress: uniform takes exactly one algorithm spec — want %s", uniformUsage)
		}
		s, err := specArg("uniform", args[0])
		if err != nil {
			return nil, err
		}
		return &uniform{spec: s}, nil
	})

	RegisterPolicy("mixed", mixedUsage, func(args []Arg) (Policy, error) {
		m := &mixed{
			big:       &Spec{Name: "a2sgd"},
			small:     &Spec{Name: "dense"},
			threshold: 64 * 1024,
		}
		for _, a := range args {
			switch a.Key {
			case "big", "small":
				s, err := specArg("mixed", a)
				if err != nil {
					return nil, err
				}
				if a.Key == "big" {
					m.big = s
				} else {
					m.small = s
				}
			case "threshold":
				if a.Value.Spec != nil {
					return nil, fmt.Errorf("compress: mixed: threshold wants a byte size, got spec %s", a.Value.Spec)
				}
				v, err := ParseByteSize(a.Value.Text)
				if err != nil {
					return nil, fmt.Errorf("compress: mixed: %w", err)
				}
				m.threshold = v
			case "":
				return nil, fmt.Errorf("compress: mixed takes keyed arguments only — want %s", mixedUsage)
			default:
				return nil, fmt.Errorf("compress: mixed: unknown parameter %q — want %s", a.Key, mixedUsage)
			}
		}
		// The defaults reference registered names only when core is linked;
		// validate whichever specs ended up selected.
		for _, s := range m.Specs() {
			if err := validateSpec(s); err != nil {
				return nil, fmt.Errorf("compress: mixed: %w", err)
			}
		}
		return m, nil
	})

	RegisterPolicy("bylayer", bylayerUsage, func(args []Arg) (Policy, error) {
		p := &byLayer{}
		for _, a := range args {
			if a.Key == "" {
				return nil, fmt.Errorf("compress: bylayer takes keyed rules only — want %s", bylayerUsage)
			}
			s, err := specArg("bylayer", a)
			if err != nil {
				return nil, err
			}
			if a.Key == "default" {
				p.def = s
				continue
			}
			p.rules = append(p.rules, byLayerRule{pattern: a.Key, spec: s})
		}
		if p.def == nil {
			return nil, fmt.Errorf("compress: bylayer requires a default rule — want %s", bylayerUsage)
		}
		return p, nil
	})
}
