package compress

import (
	"runtime/debug"
	"testing"
)

// The zero-allocation contract (ARCHITECTURE.md "Memory discipline & hot
// path"): after a warm-up call grows the instance scratch, Encode on the
// paper's compression set never touches the allocator. GC is paused during
// the measurements so a collection can't recycle scratch mid-run and charge
// a re-grow to the steady state.

// encodeAllocs measures steady-state allocations per Encode on a warm
// instance of the named algorithm over a vgg16-scale bucket.
func encodeAllocs(t *testing.T, name string, warmups int) float64 {
	t.Helper()
	const n = 1 << 18
	o := DefaultOptions(n)
	o.Seed = 3
	alg, err := Build(&Spec{Name: name}, o)
	if err != nil {
		t.Fatal(err)
	}
	g := randGrad(17, n)
	for i := 0; i < warmups; i++ {
		alg.Encode(g)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	return testing.AllocsPerRun(10, func() { alg.Encode(g) })
}

func TestEncodeZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	// gaussiank's selected count varies around k step to step, so it gets a
	// few warm-ups to reach its high-water selection size; the fixed-size
	// selections are steady after one.
	for _, tc := range []struct {
		name    string
		warmups int
	}{
		{"topk", 1},
		{"gaussiank", 5},
		{"qsgd", 1},
		{"qsgd-elias", 1},
		{"randk", 1},
		{"dgc", 1},
		{"terngrad", 1},
	} {
		// a2sgd self-registers from internal/core (not linked into this
		// test binary); its Encode allocation test lives in that package.
		if a := encodeAllocs(t, tc.name, tc.warmups); a != 0 {
			t.Errorf("%s: %.1f allocs per steady-state Encode, want 0", tc.name, a)
		}
	}
}

// TestDecodeZeroAllocSteadyState: QSGD's Decode recycles its word scratch.
func TestDecodeZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	const n = 1 << 18
	o := DefaultOptions(n)
	o.Seed = 3
	q := NewQSGD(o)
	g := randGrad(17, n)
	p := q.Encode(g)
	stream := append([]float32(nil), p.Data...) // retained copy (payload contract)
	dst := make([]float32, n)
	q.Decode(stream, dst)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if a := testing.AllocsPerRun(10, func() { q.Decode(stream, dst) }); a != 0 {
		t.Errorf("qsgd decode: %.1f allocs per steady-state run, want 0", a)
	}
}
