package compress

import (
	"testing"

	"a2sgd/internal/netsim"
)

// TestSpecCostMatchesAlgorithms pins the planning contract: for every
// registered leaf builtin, the cost model's payload and exchange kind must
// agree with the built algorithm's PayloadBytes/ExchangeKind (within the
// affine model's integer rounding), so planned prices and measured-run
// prices speak the same accounting.
func TestSpecCostMatchesAlgorithms(t *testing.T) {
	for _, src := range []string{
		"dense", "topk", "topk(density=0.05)", "gaussiank", "randk", "dgc",
		"qsgd", "qsgd(levels=8)", "qsgd-elias", "terngrad",
	} {
		for _, n := range []int{1000, 4096, 100_000} {
			s, err := Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			o := DefaultOptions(n)
			cm, err := SpecCost(s, o)
			if err != nil {
				t.Fatalf("SpecCost(%s): %v", src, err)
			}
			a, err := Build(s, o)
			if err != nil {
				t.Fatal(err)
			}
			got, want := cm.PayloadBytes(n), a.PayloadBytes(n)
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			// Affine model vs exact integer accounting: allow the fixed-part
			// slack (k>=1 floor, word rounding).
			if diff > 8 {
				t.Errorf("%s n=%d: cost model payload %d, algorithm %d", src, n, got, want)
			}
			if cm.Kind != a.ExchangeKind() {
				t.Errorf("%s: cost model kind %v, algorithm %v", src, cm.Kind, a.ExchangeKind())
			}
		}
	}
}

func TestSpecCostPeriodicAmortizes(t *testing.T) {
	n := 10_000
	inner, err := SpecCost(mustParse(t, "topk"), DefaultOptions(n))
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := SpecCost(mustParse(t, "periodic(topk, interval=4)"), DefaultOptions(n))
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Kind != inner.Kind {
		t.Errorf("wrapper kind %v != inner %v", wrapped.Kind, inner.Kind)
	}
	if got, want := wrapped.PayloadBytes(n), inner.PayloadBytes(n)/4; got > want+4 || got < want-4 {
		t.Errorf("amortized payload %d, want ~%d", got, want)
	}
	if wrapped.EncSec(n) >= inner.EncSec(n) {
		t.Errorf("amortized encode %v not below inner %v", wrapped.EncSec(n), inner.EncSec(n))
	}
}

// TestSpecCostFallbackSampling registers a throwaway algorithm without a
// Cost hook and checks the sampled affine model reproduces its payload law.
func TestSpecCostFallbackSampling(t *testing.T) {
	Register("costless-test", Builder{
		Summary: "test-only: no Cost hook",
		Build: func(o Options, _ BuildArgs) (Algorithm, error) {
			return NewDense(o), nil
		},
	})
	cm, err := SpecCost(mustParse(t, "costless-test"), DefaultOptions(512))
	if err != nil {
		t.Fatal(err)
	}
	if got := cm.PayloadBytes(512); got != 4*512 {
		t.Errorf("sampled payload %d, want %d", got, 4*512)
	}
	if cm.Kind != netsim.ExchangeAllreduce {
		t.Errorf("sampled kind %v", cm.Kind)
	}
	if cm.EncSecPerElem <= 0 {
		t.Errorf("fallback encode estimate %v", cm.EncSecPerElem)
	}
}

func TestSpecCostUnknownName(t *testing.T) {
	if _, err := SpecCost(&Spec{Name: "no-such-algo"}, DefaultOptions(8)); err == nil {
		t.Fatal("expected unknown-name error")
	}
	if _, err := SpecCost(mustParse(t, "dense"), Options{}); err == nil {
		t.Fatal("expected N>0 error")
	}
}

func TestBucketSeedFormula(t *testing.T) {
	// Bucket 0 must keep the historical per-rank derivation exactly.
	if got, want := BucketSeed(7, 3, 0), uint64(7*31+3+1); got != want {
		t.Errorf("bucket 0 seed %d, want %d", got, want)
	}
	seen := map[uint64]bool{}
	for rank := 0; rank < 4; rank++ {
		for bucket := 0; bucket < 4; bucket++ {
			s := BucketSeed(7, rank, bucket)
			if seen[s] {
				t.Errorf("duplicate seed %d at rank %d bucket %d", s, rank, bucket)
			}
			seen[s] = true
		}
	}
}

func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAutoPolicyParseAndChoice(t *testing.T) {
	pol, err := ParsePolicy("auto(dense, topk(density=0.01))")
	if err != nil {
		t.Fatal(err)
	}
	ap, ok := pol.(*AutoPolicy)
	if !ok {
		t.Fatalf("ParsePolicy(auto) returned %T", pol)
	}
	if got := ap.Name(); got != "auto(dense, topk(density=0.01))" {
		t.Errorf("canonical name %q", got)
	}
	if len(ap.Specs()) != 2 {
		t.Fatalf("Specs() = %v", ap.Specs())
	}
	// Deterministic: same bucket, same answer.
	b := BucketInfo{Index: 0, Params: 4096, Bytes: 4 * 4096}
	if a, bb := ap.SpecFor(b), ap.SpecFor(b); a != bb {
		t.Error("SpecFor not deterministic")
	}
	// On the fast default context a small dense bucket beats sparsification
	// (encode costs more than the wire saves).
	if got := ap.SpecFor(BucketInfo{Index: 0, Params: 256, Bytes: 1024}); got.Name != "dense" {
		t.Errorf("small fast-fabric bucket chose %s", got)
	}
}

func TestAutoPolicyRejectsBadCandidates(t *testing.T) {
	if _, err := ParsePolicy("auto(nope)"); err == nil {
		t.Fatal("expected unknown-candidate error")
	}
	if _, err := ParsePolicy("auto(big=dense)"); err == nil {
		t.Fatal("expected keyed-argument error")
	}
	if _, err := ParsePolicy("auto(topk(density=7))"); err == nil {
		t.Fatal("expected out-of-range candidate error")
	}
}
