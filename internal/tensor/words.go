//go:build !purego

package tensor

import "unsafe"

// Zero-copy views between []float32 and []uint32 — the second half of the
// bits.go pattern. Unlike the byte views, these are endian-independent:
// uint32 and float32 share size, alignment and bit layout on every supported
// target, so the alias view gives exactly math.Float32bits / Float32frombits
// of each element. Only the purego tag forces the copying fallback. The
// quantized-stream encoders use these to publish their packed words as a
// float32 collective payload (and to read gathered streams back) without the
// per-word conversion loop.

// WordsZeroCopy reports whether U32FromF32/F32FromU32 return alias views.
func WordsZeroCopy() bool { return true }

// U32FromF32 reinterprets v's backing array as []uint32 without copying:
// element i equals math.Float32bits(v[i]) and mutations are visible through
// both slices.
func U32FromF32(v []float32) []uint32 {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&v[0])), len(v))
}

// F32FromU32 is the inverse view: element i equals
// math.Float32frombits(w[i]).
func F32FromU32(w []uint32) []float32 {
	if len(w) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&w[0])), len(w))
}
