//go:build amd64 && !purego

#include "textflag.h"

// SSE2 kernels for the float32 hot loops. See simd_amd64.go for the
// bitwise-identity contract with the scalar fallbacks.

// func addKernel(dst, src *float32, n int)
// dst[i] += src[i]
TEXT ·addKernel(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

add16:
	CMPQ CX, $16
	JLT  add4
	MOVUPS (DI), X0
	MOVUPS 16(DI), X1
	MOVUPS 32(DI), X2
	MOVUPS 48(DI), X3
	MOVUPS (SI), X4
	MOVUPS 16(SI), X5
	MOVUPS 32(SI), X6
	MOVUPS 48(SI), X7
	ADDPS  X4, X0
	ADDPS  X5, X1
	ADDPS  X6, X2
	ADDPS  X7, X3
	MOVUPS X0, (DI)
	MOVUPS X1, 16(DI)
	MOVUPS X2, 32(DI)
	MOVUPS X3, 48(DI)
	ADDQ   $64, DI
	ADDQ   $64, SI
	SUBQ   $16, CX
	JMP    add16

add4:
	CMPQ CX, $4
	JLT  add1
	MOVUPS (DI), X0
	MOVUPS (SI), X4
	ADDPS  X4, X0
	MOVUPS X0, (DI)
	ADDQ   $16, DI
	ADDQ   $16, SI
	SUBQ   $4, CX
	JMP    add4

add1:
	CMPQ CX, $0
	JLE  addDone
	MOVSS (DI), X0
	MOVSS (SI), X4
	ADDSS X4, X0
	MOVSS X0, (DI)
	ADDQ  $4, DI
	ADDQ  $4, SI
	DECQ  CX
	JMP   add1

addDone:
	RET

// func axpyKernel(dst *float32, a float32, src *float32, n int)
// dst[i] += a*src[i], computed as mul-then-add (two roundings, no FMA) to
// match the scalar path exactly.
TEXT ·axpyKernel(SB), NOSPLIT, $0-32
	MOVQ   dst+0(FP), DI
	MOVSS  a+8(FP), X8
	SHUFPS $0x00, X8, X8
	MOVQ   src+16(FP), SI
	MOVQ   n+24(FP), CX

axpy8:
	CMPQ CX, $8
	JLT  axpy4
	MOVUPS (SI), X1
	MOVUPS 16(SI), X3
	MULPS  X8, X1
	MULPS  X8, X3
	MOVUPS (DI), X0
	MOVUPS 16(DI), X2
	ADDPS  X1, X0
	ADDPS  X3, X2
	MOVUPS X0, (DI)
	MOVUPS X2, 16(DI)
	ADDQ   $32, DI
	ADDQ   $32, SI
	SUBQ   $8, CX
	JMP    axpy8

axpy4:
	CMPQ CX, $4
	JLT  axpy1
	MOVUPS (SI), X1
	MULPS  X8, X1
	MOVUPS (DI), X0
	ADDPS  X1, X0
	MOVUPS X0, (DI)
	ADDQ   $16, DI
	ADDQ   $16, SI
	SUBQ   $4, CX
	JMP    axpy4

axpy1:
	CMPQ CX, $0
	JLE  axpyDone
	MOVSS (SI), X1
	MULSS X8, X1
	MOVSS (DI), X0
	ADDSS X1, X0
	MOVSS X0, (DI)
	ADDQ  $4, DI
	ADDQ  $4, SI
	DECQ  CX
	JMP   axpy1

axpyDone:
	RET

// func scaleKernel(v *float32, c float32, n int)
// v[i] *= c
TEXT ·scaleKernel(SB), NOSPLIT, $0-24
	MOVQ   v+0(FP), DI
	MOVSS  c+8(FP), X8
	SHUFPS $0x00, X8, X8
	MOVQ   n+16(FP), CX

scale8:
	CMPQ CX, $8
	JLT  scale4
	MOVUPS (DI), X0
	MOVUPS 16(DI), X1
	MULPS  X8, X0
	MULPS  X8, X1
	MOVUPS X0, (DI)
	MOVUPS X1, 16(DI)
	ADDQ   $32, DI
	SUBQ   $8, CX
	JMP    scale8

scale4:
	CMPQ CX, $4
	JLT  scale1
	MOVUPS (DI), X0
	MULPS  X8, X0
	MOVUPS X0, (DI)
	ADDQ   $16, DI
	SUBQ   $4, CX
	JMP    scale4

scale1:
	CMPQ CX, $0
	JLE  scaleDone
	MOVSS (DI), X0
	MULSS X8, X0
	MOVSS X0, (DI)
	ADDQ  $4, DI
	DECQ  CX
	JMP   scale1

scaleDone:
	RET

DATA absMask32<>+0(SB)/4, $0x7fffffff
DATA absMask32<>+4(SB)/4, $0x7fffffff
DATA absMask32<>+8(SB)/4, $0x7fffffff
DATA absMask32<>+12(SB)/4, $0x7fffffff
GLOBL absMask32<>(SB), RODATA|NOPTR, $16

// func absMaxKernel(v *float32, n int) float32
// max_i |v[i]| — max is associative and exact, so lane-parallel reduction
// returns the same bits as the scalar scan for finite inputs.
TEXT ·absMaxKernel(SB), NOSPLIT, $0-20
	MOVQ   v+0(FP), SI
	MOVQ   n+8(FP), CX
	PXOR   X0, X0
	MOVUPS absMask32<>(SB), X7

amax4:
	CMPQ CX, $4
	JLT  amax1
	MOVUPS (SI), X1
	ANDPS  X7, X1
	MAXPS  X1, X0
	ADDQ   $16, SI
	SUBQ   $4, CX
	JMP    amax4

amax1:
	CMPQ CX, $0
	JLE  amaxFold
	MOVSS (SI), X1
	ANDPS X7, X1
	MAXSS X1, X0
	ADDQ  $4, SI
	DECQ  CX
	JMP   amax1

amaxFold:
	MOVAPS X0, X1
	SHUFPS $0x4E, X0, X1
	MAXPS  X1, X0
	MOVAPS X0, X1
	SHUFPS $0xB1, X0, X1
	MAXPS  X1, X0
	MOVSS  X0, ret+16(FP)
	RET

DATA absMask64<>+0(SB)/8, $0x7fffffffffffffff
DATA absMask64<>+8(SB)/8, $0x7fffffffffffffff
GLOBL absMask64<>(SB), RODATA|NOPTR, $16

// func qsgdFieldsKernel(fields *uint32, g *float32, rnd *float64, n int, norm float64, s float64)
//
// Two elements per iteration, replicating the scalar math exactly:
//   scaled = float64(|g[i]|) / norm * s      (CVTPS2PD, ANDPD, DIVPD, MULPD)
//   level  = trunc(scaled)                   (CVTTPD2PL)
//   level++ when rnd[i] < scaled - level     (CVTPL2PD, SUBPD, CMPPD lt)
//   level  = min(level, s)                   (PCMPGTL select)
//   fields[i] = signbit(g[i]) | level<<1
// n must be even.
TEXT ·qsgdFieldsKernel(SB), NOSPLIT, $0-48
	MOVQ fields+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ rnd+16(FP), DX
	MOVQ n+24(FP), CX

	// X8 = [norm, norm], X9 = [s, s], X10 = [int32(s) x4]
	MOVSD    norm+32(FP), X8
	UNPCKLPD X8, X8
	MOVSD    s+40(FP), X9
	UNPCKLPD X9, X9
	CVTTSD2SL s+40(FP), AX
	MOVQ     AX, X10
	PSHUFD   $0x00, X10, X10

qf2:
	CMPQ CX, $2
	JLT  qfDone

	MOVSD    (SI), X0             // two float32 values in lanes 0,1
	CVTPS2PD X0, X1               // X1 = [f64(x0), f64(x1)]
	ANDPD    absMask64<>(SB), X1  // |x|
	DIVPD    X8, X1               // |x| / norm
	MULPD    X9, X1               // scaled = |x|/norm*s
	CVTTPD2PL X1, X2              // level = trunc(scaled) in dword lanes 0,1
	CVTPL2PD X2, X3               // float64(level)
	SUBPD    X3, X1               // frac = scaled - level
	MOVOU    (DX), X4             // rnd pair (as raw bits)
	CMPPD    X1, X4, $1           // X4 = (rnd < frac) ? ~0 : 0, per qword lane
	PSHUFD   $0x88, X4, X4        // pack qword masks into dword lanes 0,1
	PSUBL    X4, X2               // level -= mask  (mask = -1 => level++)

	// clamp: level = min(level, s)
	MOVO     X2, X5
	PCMPGTL  X10, X5              // X5 = (level > s) ? ~0 : 0
	MOVO     X5, X6
	PANDN    X2, X6               // X6 = level where not greater
	PAND     X10, X5              // X5 = s where greater
	POR      X5, X6               // clamped level

	// field = signbit | level<<1
	MOVO     X0, X7
	PSRLL    $31, X7
	PSLLL    $1, X6
	POR      X7, X6
	MOVQ     X6, (DI)             // two packed dword fields

	ADDQ $8, SI
	ADDQ $16, DX
	ADDQ $8, DI
	SUBQ $2, CX
	JMP  qf2

qfDone:
	RET

// func absKernel(dst, src *float32, n int)
// dst[i] = |src[i]| by clearing the sign bit (ANDPS) — feeds Top-K's heap
// comparisons; -0.0 maps to +0.0, indistinguishable under ordered compares.
TEXT ·absKernel(SB), NOSPLIT, $0-24
	MOVQ   dst+0(FP), DI
	MOVQ   src+8(FP), SI
	MOVQ   n+16(FP), CX
	MOVUPS absMask32<>(SB), X7

abs16:
	CMPQ CX, $16
	JLT  abs4
	MOVUPS (SI), X0
	MOVUPS 16(SI), X1
	MOVUPS 32(SI), X2
	MOVUPS 48(SI), X3
	ANDPS  X7, X0
	ANDPS  X7, X1
	ANDPS  X7, X2
	ANDPS  X7, X3
	MOVUPS X0, (DI)
	MOVUPS X1, 16(DI)
	MOVUPS X2, 32(DI)
	MOVUPS X3, 48(DI)
	ADDQ   $64, DI
	ADDQ   $64, SI
	SUBQ   $16, CX
	JMP    abs16

abs4:
	CMPQ CX, $4
	JLT  abs1
	MOVUPS (SI), X0
	ANDPS  X7, X0
	MOVUPS X0, (DI)
	ADDQ   $16, DI
	ADDQ   $16, SI
	SUBQ   $4, CX
	JMP    abs4

abs1:
	CMPQ CX, $0
	JLE  absDone
	MOVSS (SI), X0
	ANDPS X7, X0
	MOVSS X0, (DI)
	ADDQ  $4, DI
	ADDQ  $4, SI
	DECQ  CX
	JMP   abs1

absDone:
	RET

// func gaussTailKernel(dst *int32, src *float32, n int, base int32, mu, tau float64) int64
//
// Two elements per iteration: d = |float64(x) - mu| (CVTPS2PD, SUBPD,
// ANDPD), select when tau < d (CMPPD lt with tau as destination, so a NaN
// distance never selects — the scalar predicate d > tau exactly). Selection
// is expected sparse (~0.1%), so a MOVMSKPD fast-skip covers the common
// all-reject pair and the stores stay scalar. n must be even.
TEXT ·gaussTailKernel(SB), NOSPLIT, $0-56
	MOVQ     dst+0(FP), DI
	MOVQ     src+8(FP), SI
	MOVQ     n+16(FP), CX
	MOVL     base+24(FP), R8      // next flattened index
	MOVSD    mu+32(FP), X8
	UNPCKLPD X8, X8
	MOVSD    tau+40(FP), X9
	UNPCKLPD X9, X9
	XORQ     R9, R9               // selected count

gt2:
	CMPQ CX, $2
	JLT  gtDone
	MOVSD    (SI), X0             // two float32 values in lanes 0,1
	CVTPS2PD X0, X1               // [f64(x0), f64(x1)]
	SUBPD    X8, X1               // x - mu
	ANDPD    absMask64<>(SB), X1  // d = |x - mu|
	MOVAPS   X9, X2
	CMPPD    X1, X2, $1           // X2 = (tau < d) ? ~0 : 0, per qword lane
	MOVMSKPD X2, AX
	TESTQ    AX, AX
	JZ       gtSkip
	TESTQ    $1, AX
	JZ       gtHigh
	MOVL     R8, (DI)(R9*4)
	INCQ     R9

gtHigh:
	TESTQ $2, AX
	JZ    gtSkip
	LEAL  1(R8), R10
	MOVL  R10, (DI)(R9*4)
	INCQ  R9

gtSkip:
	ADDL $2, R8
	ADDQ $8, SI
	SUBQ $2, CX
	JMP  gt2

gtDone:
	MOVQ R9, ret+48(FP)
	RET

// func eliasPackKernel(words *uint32, fields *uint32, n int, bitPos uint64) uint64
//
// Batched Elias-gamma+sign writer (see tensor.EliasGammaSignPack for the
// stream contract): per field, BSR finds the bit length of level+1, the
// whole gamma(level+1)[+sign] code is assembled in a register and ORed into
// the MSB-first word stream with one unconditional two-word store. Codes are
// at most 30 bits (level+1 < 1<<15, the constructor guard), so the pair
// store never reaches past one spare word.
TEXT ·eliasPackKernel(SB), NOSPLIT, $0-40
	MOVQ words+0(FP), DI
	MOVQ fields+8(FP), SI
	MOVQ n+16(FP), DX
	MOVQ bitPos+24(FP), BX

epLoop:
	MOVL (SI), AX        // f = sign | level<<1
	MOVL AX, R8
	ANDL $1, R8          // sign
	SHRL $1, AX          // level
	LEAL 1(AX), R9       // v = level + 1
	BSRL R9, R10         // n0 = bitlen(v) - 1
	MOVL R10, R11
	SHLL $1, R11
	INCL R11             // width = 2*n0 + 1
	MOVL R9, R12         // code = v
	TESTL AX, AX
	JZ   epNoSign
	SHLQ $1, R12         // append sign bit when level > 0
	ORQ  R8, R12
	INCL R11

epNoSign:
	MOVQ BX, R13
	SHRQ $5, R13         // w = bitPos / 32
	MOVQ $64, CX
	SUBQ R11, CX
	MOVQ BX, R9
	ANDQ $31, R9
	SUBQ R9, CX          // shift = 64 - width - (bitPos % 32)
	SHLQ CX, R12         // code aligned to the top of a 64-bit window
	MOVQ R12, R9
	SHRQ $32, R9
	ORL  R9, (DI)(R13*4)  // high dword into words[w]
	ORL  R12, 4(DI)(R13*4) // low dword into words[w+1]
	ADDQ R11, BX         // bitPos += width
	ADDQ $4, SI
	DECQ DX
	JNZ  epLoop

	MOVQ BX, ret+32(FP)
	RET

// func signedMeansKernel(v *float32, n int) (sp, sn float64, nNeg int64)
//
// Two double-precision accumulator lanes per sum, split by element parity,
// folded lane0+lane1 at the end. Sign classification is the exact scalar
// predicate x >= 0 expressed as NOT(x < 0): -0.0 counts as non-negative,
// matching the scalar loop.
TEXT ·signedMeansKernel(SB), NOSPLIT, $0-40
	MOVQ v+0(FP), SI
	MOVQ n+8(FP), CX
	PXOR X2, X2 // sp accumulator (2 × float64)
	PXOR X3, X3 // sn accumulator (2 × float64)
	PXOR X4, X4 // negative-count accumulator (2 × int64)
	PXOR X7, X7 // 0.0 pair for the sign compare

sm4:
	CMPQ CX, $4
	JL   smFold
	MOVUPS (SI), X0

	// low float pair -> doubles
	CVTPS2PD X0, X1
	MOVO     X1, X5
	CMPPD    X7, X5, $1 // X5 = (x < 0) ? ~0 : 0
	MOVO     X5, X6
	ANDNPD   X1, X6     // x where x >= 0, +0.0 elsewhere
	ADDPD    X6, X2
	MOVO     X5, X6
	ANDPD    X1, X6     // x where x < 0, +0.0 elsewhere
	SUBPD    X6, X3     // sn -= x  (accumulates |x|)
	PSUBQ    X5, X4     // count += 1 per negative lane (mask qword = -1)

	// high float pair -> doubles
	MOVAPS   X0, X1
	SHUFPS   $0xEE, X1, X1
	CVTPS2PD X1, X1
	MOVO     X1, X5
	CMPPD    X7, X5, $1
	MOVO     X5, X6
	ANDNPD   X1, X6
	ADDPD    X6, X2
	MOVO     X5, X6
	ANDPD    X1, X6
	SUBPD    X6, X3
	PSUBQ    X5, X4

	ADDQ $16, SI
	SUBQ $4, CX
	JMP  sm4

smFold:
	PSHUFD $0x4E, X2, X1
	ADDSD  X1, X2
	MOVSD  X2, sp+16(FP)
	PSHUFD $0x4E, X3, X1
	ADDSD  X1, X3
	MOVSD  X3, sn+24(FP)
	PSHUFD $0x4E, X4, X1
	PADDQ  X1, X4
	MOVQ   X4, AX
	MOVQ   AX, nNeg+32(FP)
	RET
