package tensor

import (
	"math"
	"runtime"
	"sync"
)

// Vec is a dense float32 vector. Gradients, weights and activations are all
// Vecs; the distributed algorithms in this repository operate on flattened
// parameter vectors exactly as the paper's Algorithm 1 does.
type Vec = []float32

// NewVec allocates a zeroed vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Zero sets every element of v to 0 in place.
func Zero(v Vec) {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to c in place.
func Fill(v Vec, c float32) {
	for i := range v {
		v[i] = c
	}
}

// Clone returns a copy of v.
func Clone(v Vec) Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Add computes dst[i] += src[i]. Panics when lengths differ.
// Dispatches to the SSE2 kernel on amd64 (see simd_amd64.go); per-lane adds
// keep the result bitwise identical to the scalar loop.
func Add(dst, src Vec) {
	checkLen(len(dst), len(src))
	vecAdd(dst, src)
}

func addScalar(dst, src Vec) {
	for i, s := range src {
		dst[i] += s
	}
}

// Sub computes dst[i] -= src[i]. Panics when lengths differ.
func Sub(dst, src Vec) {
	checkLen(len(dst), len(src))
	for i, s := range src {
		dst[i] -= s
	}
}

// Mul computes dst[i] *= src[i]. Panics when lengths differ.
func Mul(dst, src Vec) {
	checkLen(len(dst), len(src))
	for i, s := range src {
		dst[i] *= s
	}
}

// Scale computes v[i] *= c in place (SIMD-dispatched, bitwise identical).
func Scale(v Vec, c float32) {
	vecScale(v, c)
}

func scaleScalar(v Vec, c float32) {
	for i := range v {
		v[i] *= c
	}
}

// AXPY computes dst[i] += a*src[i] (the BLAS axpy kernel). The SIMD path
// multiplies then adds with two roundings — no FMA — matching the scalar
// loop bit for bit.
func AXPY(dst Vec, a float32, src Vec) {
	checkLen(len(dst), len(src))
	vecAXPY(dst, a, src)
}

func axpyScalar(dst Vec, a float32, src Vec) {
	for i, s := range src {
		dst[i] += a * s
	}
}

// Dot returns the inner product <a, b> accumulated in float64 for stability.
func Dot(a, b Vec) float64 {
	checkLen(len(a), len(b))
	var s float64
	for i, x := range a {
		s += float64(x) * float64(b[i])
	}
	return s
}

// Sum returns the float64-accumulated sum of v.
func Sum(v Vec) float64 {
	var s float64
	for _, x := range v {
		s += float64(x)
	}
	return s
}

// Norm2 returns the l2 norm of v.
func Norm2(v Vec) float64 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}

// AbsMax returns max_i |v[i]|, or 0 for an empty vector. max is exact, so
// the lane-parallel SIMD reduction returns the same bits as this scan for
// finite inputs.
func AbsMax(v Vec) float32 {
	return vecAbsMax(v)
}

func absMaxScalar(v Vec) float32 {
	var m float32
	for _, x := range v {
		a := x
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// MaxIdx returns the index of the maximum element (first on ties) or -1 for
// an empty vector. Used for top-1 classification accuracy.
func MaxIdx(v Vec) int {
	if len(v) == 0 {
		return -1
	}
	best, bi := v[0], 0
	for i := 1; i < len(v); i++ {
		if v[i] > best {
			best, bi = v[i], i
		}
	}
	return bi
}

// SignedMeans computes the paper's two-level statistics in one pass:
// muPos = mean(v_i | v_i >= 0) and muNeg = mean(|v_i| | v_i < 0).
// When a side is empty its mean is 0 (the natural neutral element for the
// enc operator). nPos reports how many entries were non-negative.
func SignedMeans(v Vec) (muPos, muNeg float32, nPos int) {
	sp, sn, np := signedMeansAccum(v)
	if np > 0 {
		muPos = float32(sp / float64(np))
	}
	if nn := len(v) - np; nn > 0 {
		muNeg = float32(sn / float64(nn))
	}
	return muPos, muNeg, np
}

// signedMeansAccum is the shared reduction body of SignedMeans and the
// ParSignedMeans chunk workers: the vector kernel (where compiled in) covers
// the aligned prefix and the sequential loop folds in the tail.
func signedMeansAccum(v Vec) (sp, sn float64, np int) {
	var done int
	sp, sn, np, done = signedMeansArch(v)
	for _, x := range v[done:] {
		if x >= 0 {
			sp += float64(x)
			np++
		} else {
			sn -= float64(x)
		}
	}
	return sp, sn, np
}

// HasNaNOrInf reports whether any element is NaN or ±Inf. The training
// runtime uses it for failure injection tests and gradient health checks.
func HasNaNOrInf(v Vec) bool {
	for _, x := range v {
		f := float64(x)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}

func checkLen(a, b int) {
	if a != b {
		panic("tensor: vector length mismatch")
	}
}

// ---- parallel helpers ----

// maxProcs bounds the fan-out of the parallel helpers. It is read per call
// (not captured at package init) so later runtime.GOMAXPROCS changes — and
// tests that restrict parallelism — are honored.
func maxProcs() int { return runtime.GOMAXPROCS(0) }

// grainSize is the minimum number of elements worth a goroutine.
const grainSize = 1 << 14

// ParallelFor splits [0, n) into contiguous chunks and runs body(lo, hi) on
// each, using up to GOMAXPROCS goroutines. Small ranges run inline. body
// must be safe to run concurrently on disjoint ranges.
func ParallelFor(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := maxProcs()
	if w := (n + grainSize - 1) / grainSize; w < workers {
		workers = w
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// signedMeansPart is one worker's partial reduction for ParSignedMeans.
type signedMeansPart struct {
	sp, sn float64
	np     int
}

// signedMeansWorker reduces one chunk into *out. It is a named function (not
// a closure) so the goroutine fan-out copies its arguments instead of
// heap-allocating a capture — part of the hot path's allocation discipline.
func signedMeansWorker(v Vec, out *signedMeansPart, wg *sync.WaitGroup) {
	defer wg.Done()
	sp, sn, np := signedMeansAccum(v)
	*out = signedMeansPart{sp, sn, np}
}

// ParSignedMeans is SignedMeans with a parallel reduction; used on the
// paper-scale vectors (up to 100 M elements) in Figure 2 and Table 2.
// With one worker (GOMAXPROCS=1 or a short vector) it is allocation-free;
// the parallel fan-out costs one partials slice per call.
func ParSignedMeans(v Vec) (muPos, muNeg float32, nPos int) {
	n := len(v)
	workers := maxProcs()
	if n < 4*grainSize || workers <= 1 {
		return SignedMeans(v)
	}
	parts := make([]signedMeansPart, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go signedMeansWorker(v[lo:hi], &parts[w], &wg)
	}
	wg.Wait()
	var sp, sn float64
	np := 0
	for _, p := range parts {
		sp += p.sp
		sn += p.sn
		np += p.np
	}
	if np > 0 {
		muPos = float32(sp / float64(np))
	}
	if nn := n - np; nn > 0 {
		muNeg = float32(sn / float64(nn))
	}
	return muPos, muNeg, np
}
