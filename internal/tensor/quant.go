package tensor

import "math"

// Stochastic level quantization and bit packing — the shared inner loops of
// the QSGD and TernGrad encoders. Split out of the compress package so the
// amd64 build can dispatch the quantization loop to the SSE2 kernel in
// simd_amd64.s (with the scalar loop below as the portable fallback and
// odd-tail cleanup). TernGrad is the levels=1 corner of the same family.

// QuantizeFields computes, for every element of g, the packed field
//
//	signbit(g[i]) | level<<1
//
// where level is |g[i]|/norm*levels stochastically rounded: floor, promoted
// by one with probability equal to the fractional part (promote when
// rnd[i] < frac), clamped to levels. All arithmetic is float64, matching the
// Alistarh et al. scheme: scaled = float64(|x|)/float64(norm)*float64(levels).
// rnd must hold one uniform [0,1) variate per element (see RNG.Float64Vec);
// consuming pre-generated variates keeps the RNG sequence identical between
// the vector and scalar paths. norm must be > 0 and g free of NaN/Inf.
// len(fields) and len(rnd) must be >= len(g).
func QuantizeFields(fields []uint32, g []float32, rnd []float64, norm float32, levels int) {
	_ = fields[:len(g)]
	_ = rnd[:len(g)]
	done := quantFieldsArch(fields, g, rnd, norm, levels)
	quantFieldsScalar(fields[done:], g[done:], rnd[done:], norm, levels)
}

func quantFieldsScalar(fields []uint32, g []float32, rnd []float64, norm float32, levels int) {
	nf := float64(norm)
	sf := float64(levels)
	smax := uint32(levels)
	for i, x := range g {
		sign := math.Float32bits(x) >> 31
		scaled := math.Abs(float64(x)) / nf * sf
		level := uint32(scaled)
		if rnd[i] < scaled-float64(level) {
			level++
		}
		if level > smax {
			level = smax
		}
		fields[i] = sign | level<<1
	}
}

// PackFields ORs bitsPer-wide fields into words LSB-first starting at bit
// offset bitPos, and returns the advanced offset. words must be zeroed (or
// already partially packed below bitPos) by the caller. When bitsPer divides
// 32 — the common case: 4-bit QSGD fields at the paper's s=4, 2-bit TernGrad
// fields — fields never straddle a word boundary and the spill branch is
// dropped from the inner loop.
func PackFields(words []uint32, fields []uint32, bitsPer uint, bitPos uint64) uint64 {
	w := int(bitPos / 32)
	off := uint(bitPos % 32)
	if 32%bitsPer == 0 {
		for _, f := range fields {
			words[w] |= f << off
			off += bitsPer
			if off == 32 {
				off = 0
				w++
			}
		}
	} else {
		for _, f := range fields {
			words[w] |= f << off
			if off+bitsPer > 32 {
				words[w+1] |= f >> (32 - off)
			}
			off += bitsPer
			if off >= 32 {
				off -= 32
				w++
			}
		}
	}
	return bitPos + uint64(len(fields))*uint64(bitsPer)
}
