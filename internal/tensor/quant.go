package tensor

import (
	"math"
	"math/bits"
)

// Stochastic level quantization and bit packing — the shared inner loops of
// the QSGD and TernGrad encoders. Split out of the compress package so the
// amd64 build can dispatch the quantization loop to the SSE2 kernel in
// simd_amd64.s (with the scalar loop below as the portable fallback and
// odd-tail cleanup). TernGrad is the levels=1 corner of the same family.

// QuantizeFields computes, for every element of g, the packed field
//
//	signbit(g[i]) | level<<1
//
// where level is |g[i]|/norm*levels stochastically rounded: floor, promoted
// by one with probability equal to the fractional part (promote when
// rnd[i] < frac), clamped to levels. All arithmetic is float64, matching the
// Alistarh et al. scheme: scaled = float64(|x|)/float64(norm)*float64(levels).
// rnd must hold one uniform [0,1) variate per element (see RNG.Float64Vec);
// consuming pre-generated variates keeps the RNG sequence identical between
// the vector and scalar paths. norm must be > 0 and g free of NaN/Inf.
// len(fields) and len(rnd) must be >= len(g).
func QuantizeFields(fields []uint32, g []float32, rnd []float64, norm float32, levels int) {
	_ = fields[:len(g)]
	_ = rnd[:len(g)]
	done := quantFieldsArch(fields, g, rnd, norm, levels)
	quantFieldsScalar(fields[done:], g[done:], rnd[done:], norm, levels)
}

func quantFieldsScalar(fields []uint32, g []float32, rnd []float64, norm float32, levels int) {
	nf := float64(norm)
	sf := float64(levels)
	smax := uint32(levels)
	for i, x := range g {
		sign := math.Float32bits(x) >> 31
		scaled := math.Abs(float64(x)) / nf * sf
		level := uint32(scaled)
		if rnd[i] < scaled-float64(level) {
			level++
		}
		if level > smax {
			level = smax
		}
		fields[i] = sign | level<<1
	}
}

// PackFields ORs bitsPer-wide fields into words LSB-first starting at bit
// offset bitPos, and returns the advanced offset. words must be zeroed (or
// already partially packed below bitPos) by the caller. When bitsPer divides
// 32 — the common case: 4-bit QSGD fields at the paper's s=4, 2-bit TernGrad
// fields — fields never straddle a word boundary and the spill branch is
// dropped from the inner loop.
func PackFields(words []uint32, fields []uint32, bitsPer uint, bitPos uint64) uint64 {
	w := int(bitPos / 32)
	off := uint(bitPos % 32)
	if 32%bitsPer == 0 {
		for _, f := range fields {
			words[w] |= f << off
			off += bitsPer
			if off == 32 {
				off = 0
				w++
			}
		}
	} else {
		for _, f := range fields {
			words[w] |= f << off
			if off+bitsPer > 32 {
				words[w+1] |= f >> (32 - off)
			}
			off += bitsPer
			if off >= 32 {
				off -= 32
				w++
			}
		}
	}
	return bitPos + uint64(len(fields))*uint64(bitsPer)
}

// EliasGammaSignPack is the batched Elias-gamma bit-writer behind the QSGD
// Elias encoder: for every quantization field (signbit | level<<1, the
// QuantizeFields layout) it emits gamma(level+1) followed by the sign bit
// iff level > 0, MSB-first starting at stream offset bitPos, and returns the
// advanced offset. The code for one field is built in a register and ORed
// into the word stream with one unconditional two-word store, replacing the
// bit-at-a-time writer.
//
// Contract: every field's level must satisfy level+1 < 1<<15 (the QSGD
// constructor guard), so one code is at most 30 bits and never spans more
// than two words; words must be zero from bit bitPos on and hold one spare
// word past the final bit (the second store of the pair is unconditional).
// On amd64 the loop is the assembly kernel in simd_amd64.s; the scalar loop
// below is the portable fallback, bit-identical by construction.
func EliasGammaSignPack(words []uint32, fields []uint32, bitPos uint64) uint64 {
	return eliasPackArch(words, fields, bitPos)
}

func eliasPackScalar(words []uint32, fields []uint32, bitPos uint64) uint64 {
	for _, f := range fields {
		level := f >> 1
		v := level + 1
		n0 := uint(bits.Len32(v)) - 1
		width := 2*n0 + 1
		code := uint64(v)
		if level > 0 {
			code = code<<1 | uint64(f&1)
			width++
		}
		w := bitPos >> 5
		o := uint(bitPos & 31)
		tmp := code << (64 - width - o)
		words[w] |= uint32(tmp >> 32)
		words[w+1] |= uint32(tmp)
		bitPos += uint64(width)
	}
	return bitPos
}

// EliasGammaSignBits returns the exact stream length in bits of
// EliasGammaSignPack over fields — the sizing pass that lets the encoder
// pre-zero and bound its word buffer before packing.
func EliasGammaSignBits(fields []uint32) uint64 {
	var n uint64
	for _, f := range fields {
		level := f >> 1
		n0 := uint64(bits.Len32(level+1)) - 1
		n += 2*n0 + 1
		if level > 0 {
			n++
		}
	}
	return n
}
