package tensor

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("RNG not deterministic at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d/1000 equal draws", same)
	}
}

func TestRNGFloat32Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", f)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		x := float64(r.Norm())
		sum += x
		sq += x * x
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestZipfDistribution(t *testing.T) {
	r := NewRNG(11)
	z := NewZipf(r, 50, 1.0)
	counts := make([]int, 50)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must be the most frequent and ranks must broadly decay.
	if counts[0] <= counts[10] || counts[10] <= counts[40] {
		t.Errorf("Zipf counts not decaying: c0=%d c10=%d c40=%d", counts[0], counts[10], counts[40])
	}
}

func TestVecBasics(t *testing.T) {
	v := NewVec(4)
	Fill(v, 2)
	w := Vec{1, 2, 3, 4}
	Add(v, w)
	want := Vec{3, 4, 5, 6}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Add: v[%d]=%v want %v", i, v[i], want[i])
		}
	}
	Sub(v, w)
	for i := range v {
		if v[i] != 2 {
			t.Fatalf("Sub: v[%d]=%v want 2", i, v[i])
		}
	}
	Mul(v, w)
	Scale(v, 0.5)
	want = Vec{1, 2, 3, 4}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Mul/Scale: v[%d]=%v want %v", i, v[i], want[i])
		}
	}
	AXPY(v, 2, w)
	for i := range v {
		if v[i] != 3*w[i] {
			t.Fatalf("AXPY: v[%d]=%v want %v", i, v[i], 3*w[i])
		}
	}
}

func TestVecLenMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Add(NewVec(3), NewVec(4))
}

func TestDotSumNorm(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Sum(a); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
	if got := Norm2(Vec{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := AbsMax(Vec{-7, 2, 6}); got != 7 {
		t.Errorf("AbsMax = %v, want 7", got)
	}
	if got := MaxIdx(Vec{1, 9, 3}); got != 1 {
		t.Errorf("MaxIdx = %v, want 1", got)
	}
	if got := MaxIdx(nil); got != -1 {
		t.Errorf("MaxIdx(nil) = %v, want -1", got)
	}
}

func TestSignedMeans(t *testing.T) {
	v := Vec{1, -2, 3, -4, 0}
	mp, mn, np := SignedMeans(v)
	if np != 3 {
		t.Errorf("nPos = %d, want 3", np)
	}
	if !almostEq(float64(mp), 4.0/3, 1e-6) {
		t.Errorf("muPos = %v, want 4/3", mp)
	}
	if !almostEq(float64(mn), 3, 1e-6) {
		t.Errorf("muNeg = %v, want 3", mn)
	}
}

func TestSignedMeansEdge(t *testing.T) {
	mp, mn, np := SignedMeans(Vec{1, 2})
	if mn != 0 || np != 2 || !almostEq(float64(mp), 1.5, 1e-6) {
		t.Errorf("all-positive: got %v %v %d", mp, mn, np)
	}
	mp, mn, np = SignedMeans(Vec{-1, -3})
	if mp != 0 || np != 0 || !almostEq(float64(mn), 2, 1e-6) {
		t.Errorf("all-negative: got %v %v %d", mp, mn, np)
	}
	mp, mn, np = SignedMeans(nil)
	if mp != 0 || mn != 0 || np != 0 {
		t.Errorf("empty: got %v %v %d", mp, mn, np)
	}
}

// Property: ParSignedMeans agrees with the serial single-pass version.
func TestParSignedMeansMatchesSerial(t *testing.T) {
	r := NewRNG(3)
	v := make(Vec, 300000)
	r.NormVec(v, 0.1, 1.5)
	mp1, mn1, np1 := SignedMeans(v)
	mp2, mn2, np2 := ParSignedMeans(v)
	if np1 != np2 {
		t.Fatalf("nPos mismatch: %d vs %d", np1, np2)
	}
	if !almostEq(float64(mp1), float64(mp2), 1e-5) || !almostEq(float64(mn1), float64(mn2), 1e-5) {
		t.Fatalf("means mismatch: (%v,%v) vs (%v,%v)", mp1, mn1, mp2, mn2)
	}
}

// Property-based: the signed means bracket the data correctly for random
// vectors: every non-negative element contributes to muPos etc.
func TestSignedMeansProperty(t *testing.T) {
	f := func(raw []float32) bool {
		v := make(Vec, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(float64(x)) && !math.IsInf(float64(x), 0) {
				// Keep magnitudes sane to avoid float32 overflow artifacts.
				if x > 1e6 {
					x = 1e6
				}
				if x < -1e6 {
					x = -1e6
				}
				v = append(v, x)
			}
		}
		mp, mn, np := SignedMeans(v)
		var sp, sn float64
		cp := 0
		for _, x := range v {
			if x >= 0 {
				sp += float64(x)
				cp++
			} else {
				sn += float64(-x)
			}
		}
		if cp != np {
			return false
		}
		wantP := 0.0
		if cp > 0 {
			wantP = sp / float64(cp)
		}
		wantN := 0.0
		if len(v)-cp > 0 {
			wantN = sn / float64(len(v)-cp)
		}
		return almostEq(float64(mp), wantP, 1e-4) && almostEq(float64(mn), wantN, 1e-4) && mp >= 0 && mn >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHasNaNOrInf(t *testing.T) {
	if HasNaNOrInf(Vec{1, 2, 3}) {
		t.Error("false positive")
	}
	if !HasNaNOrInf(Vec{1, float32(math.NaN()), 3}) {
		t.Error("missed NaN")
	}
	if !HasNaNOrInf(Vec{float32(math.Inf(1))}) {
		t.Error("missed +Inf")
	}
	if !HasNaNOrInf(Vec{float32(math.Inf(-1))}) {
		t.Error("missed -Inf")
	}
}

func TestParallelForCoversRange(t *testing.T) {
	n := 100001
	marks := make([]int32, n)
	ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			marks[i]++
		}
	})
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("index %d visited %d times", i, m)
		}
	}
	// Zero and negative lengths are no-ops.
	ParallelFor(0, func(lo, hi int) { t.Error("body called for n=0") })
	ParallelFor(-5, func(lo, hi int) { t.Error("body called for n<0") })
}

func TestCloneIndependent(t *testing.T) {
	v := Vec{1, 2, 3}
	c := Clone(v)
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(42)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("split streams collide: %d/1000", same)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestZipfInvalidNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipf(NewRNG(1), 0, 1)
}

func TestUniformVecRange(t *testing.T) {
	r := NewRNG(8)
	v := make(Vec, 1000)
	r.UniformVec(v, -2, 3)
	for _, x := range v {
		if x < -2 || x >= 3 {
			t.Fatalf("out of range: %v", x)
		}
	}
}

// TestParallelForHonorsRuntimeGOMAXPROCS: the worker bound must be read per
// call, so restricting GOMAXPROCS after package init restricts the fan-out
// (previously it was captured once at init and later changes were ignored).
func TestParallelForHonorsRuntimeGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	var cur, peak atomic.Int32
	ParallelFor(4*grainSize, func(lo, hi int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
	})
	if got := peak.Load(); got > 1 {
		t.Errorf("GOMAXPROCS(1) but %d bodies ran concurrently", got)
	}
}
