// Package tensor provides the dense float32 math kernels that every other
// package in this repository builds on: vectors, matrices, elementwise and
// reduction kernels, a parallel-for helper, and a fast deterministic RNG.
//
// The kernels are deliberately simple, allocation-conscious and cache
// friendly; they are the CPU stand-in for the GPU tensor runtime (PyTorch)
// used by the paper. All heavy operations have both a serial and a parallel
// path and are covered by reference-comparison tests.
package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xoshiro256**). Each worker in the distributed runtime
// owns one RNG so that runs are reproducible for any interleaving of
// goroutines. It is not safe for concurrent use; clone per goroutine.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to spread the seed across the state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives a new independent generator; useful to hand one RNG to each
// worker from a single experiment seed.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}

// State returns the generator's internal 256-bit state, so a checkpoint can
// capture the stream position and SetState can resume it exactly: after a
// round-trip the generator produces the identical draw sequence it would have
// produced uninterrupted.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState restores a state previously captured with State.
func (r *RNG) SetState(s [4]uint64) { r.s = s }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) * (1.0 / (1 << 24))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Vec fills dst with iid U[0,1) samples, consuming exactly
// len(dst) generator draws in sequence — element i equals what the i-th
// Float64 call would have returned. The quantization kernels pre-generate
// their stochastic-rounding variates through this so the vectorized path
// preserves the scalar RNG sequence.
func (r *RNG) Float64Vec(dst []float64) {
	for i := range dst {
		dst[i] = float64(r.Uint64()>>11) * (1.0 / (1 << 53))
	}
}

// Norm returns a standard normal variate (Box–Muller, cached pair).
func (r *RNG) Norm() float32 {
	// Marsaglia polar method without caching keeps the struct small; the
	// expected number of iterations is ~1.27.
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return float32(u * math.Sqrt(-2*math.Log(s)/s))
		}
	}
}

// NormVec fills dst with iid N(mean, std²) samples.
func (r *RNG) NormVec(dst []float32, mean, std float32) {
	for i := range dst {
		dst[i] = mean + std*r.Norm()
	}
}

// UniformVec fills dst with iid U[lo, hi) samples.
func (r *RNG) UniformVec(dst []float32, lo, hi float32) {
	w := hi - lo
	for i := range dst {
		dst[i] = lo + w*r.Float32()
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf returns samples from a Zipf-Mandelbrot-like distribution over
// [0, n) with exponent s > 0: P(k) ∝ 1/(k+1)^s. Used by the PTB-like
// synthetic corpus; implemented with a cached inverse CDF for speed.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a sampler over n items with exponent s.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("tensor: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next draws one sample via binary search over the CDF.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
