package tensor

import (
	"math"
	"math/bits"
	"testing"
)

// randSplit cuts v into segments at random boundaries (possibly none,
// possibly single-element segments) so the view tests sweep segment
// boundaries landing anywhere relative to the SIMD unroll widths.
func randSplit(rng *RNG, v []float32) [][]float32 {
	var segs [][]float32
	lo := 0
	for lo < len(v) {
		w := 1 + rng.Intn(len(v)-lo)
		if rng.Intn(4) == 0 {
			w = 1 + rng.Intn(7) // force short, odd-length segments too
			if lo+w > len(v) {
				w = len(v) - lo
			}
		}
		segs = append(segs, v[lo:lo+w])
		lo += w
	}
	return segs
}

func TestVecViewReductionsMatchFlat(t *testing.T) {
	rng := NewRNG(21)
	for _, n := range simdLens {
		flat := randVec(rng, n)
		for trial := 0; trial < 8; trial++ {
			v := NewVecView(randSplit(rng, flat)...)
			if v.Len() != n {
				t.Fatalf("n=%d: view len %d", n, v.Len())
			}
			if got, want := v.Sum(), Sum(flat); got != want {
				t.Fatalf("n=%d: Sum %v != %v", n, got, want)
			}
			if got, want := v.Norm2(), Norm2(flat); got != want {
				t.Fatalf("n=%d: Norm2 %v != %v", n, got, want)
			}
			if got, want := v.AbsMax(), AbsMax(flat); math.Float32bits(got) != math.Float32bits(want) {
				t.Fatalf("n=%d: AbsMax %v != %v", n, got, want)
			}
			if v.HasNaNOrInf() {
				t.Fatalf("n=%d: HasNaNOrInf on finite input", n)
			}
			// SignedMeans: bitwise-flat only for a single segment (the kernel
			// fold is a documented association exception); check tolerance on
			// multi-segment views and exactness when contiguous.
			mp, mn, np := v.SignedMeans()
			fmp, fmn, fnp := SignedMeans(flat)
			if np != fnp {
				t.Fatalf("n=%d: nPos %d != %d", n, np, fnp)
			}
			if v.Contiguous() != nil {
				if mp != fmp || mn != fmn {
					t.Fatalf("n=%d: contiguous SignedMeans (%v,%v) != (%v,%v)", n, mp, mn, fmp, fmn)
				}
			} else if math.Abs(float64(mp-fmp)) > 1e-5 || math.Abs(float64(mn-fmn)) > 1e-5 {
				t.Fatalf("n=%d: SignedMeans (%v,%v) far from (%v,%v)", n, mp, mn, fmp, fmn)
			}
		}
	}
}

func TestVecViewCopyAXPYAddAt(t *testing.T) {
	rng := NewRNG(22)
	for _, n := range simdLens {
		if n == 0 {
			continue
		}
		flat := randVec(rng, n)
		backing := Clone(flat)
		v := NewVecView(randSplit(rng, backing)...)

		out := NewVec(n)
		v.CopyTo(out)
		for i := range out {
			if out[i] != flat[i] {
				t.Fatalf("CopyTo[%d] = %v, want %v", i, out[i], flat[i])
			}
		}
		for i := 0; i < n; i += 1 + n/7 {
			if v.At(i) != flat[i] {
				t.Fatalf("At(%d) = %v, want %v", i, v.At(i), flat[i])
			}
		}

		src := randVec(rng, n)
		a := rng.Float32() - 0.5
		want := Clone(flat)
		axpyScalar(want, a, src)
		v.AXPY(a, src)
		v.CopyTo(out)
		for i := range out {
			if math.Float32bits(out[i]) != math.Float32bits(want[i]) {
				t.Fatalf("AXPY[%d] = %x, want %x", i, math.Float32bits(out[i]), math.Float32bits(want[i]))
			}
		}

		dst := randVec(rng, n)
		wantAdd := Clone(dst)
		addScalar(wantAdd, out)
		v.AddInto(dst)
		for i := range dst {
			if math.Float32bits(dst[i]) != math.Float32bits(wantAdd[i]) {
				t.Fatalf("AddInto[%d] = %x, want %x", i, math.Float32bits(dst[i]), math.Float32bits(wantAdd[i]))
			}
		}

		v.Zero()
		v.CopyFrom(flat)
		v.CopyTo(out)
		for i := range out {
			if out[i] != flat[i] {
				t.Fatalf("CopyFrom[%d] = %v, want %v", i, out[i], flat[i])
			}
		}

		// Scatter-add at random (possibly repeated) indices matches the flat
		// g[i] += x loop including duplicate accumulation order.
		wantSc := Clone(flat)
		for k := 0; k < 32; k++ {
			i := rng.Intn(n)
			x := rng.Float32() - 0.5
			wantSc[i] += x
			v.AddAt(i, x)
		}
		v.CopyTo(out)
		for i := range out {
			if math.Float32bits(out[i]) != math.Float32bits(wantSc[i]) {
				t.Fatalf("AddAt[%d] = %x, want %x", i, math.Float32bits(out[i]), math.Float32bits(wantSc[i]))
			}
		}
	}
}

func TestVecViewResetRecycles(t *testing.T) {
	v := NewVecView([]float32{1, 2}, nil, []float32{3})
	if v.Len() != 3 || len(v.Segments()) != 2 {
		t.Fatalf("empty segment not dropped: len=%d segs=%d", v.Len(), len(v.Segments()))
	}
	s := []float32{4, 5, 6}
	v.Reset1(s)
	if c := v.Contiguous(); &c[0] != &s[0] || v.Len() != 3 {
		t.Fatal("Reset1 must alias the given slice")
	}
	v.Reset1(nil)
	if v.Len() != 0 || v.Contiguous() != nil {
		t.Fatal("empty Reset1 must produce an empty view")
	}
}

func TestAbsIntoMatchesScalar(t *testing.T) {
	rng := NewRNG(23)
	for _, n := range simdLens {
		src := randVec(rng, n)
		if n > 2 {
			src[n/2] = float32(math.Copysign(0, -1)) // -0.0 → +0.0 under the mask
		}
		want := NewVec(n)
		absIntoScalar(want, src)
		got := NewVec(n)
		AbsInto(got, src)
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("n=%d: AbsInto[%d] = %x, scalar %x", n, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}
	}
}

func TestGaussTailSelectMatchesScalar(t *testing.T) {
	rng := NewRNG(24)
	for _, n := range simdLens {
		src := randVec(rng, n)
		mu := float64(rng.Float32()-0.5) * 0.1
		// tau near the distribution's edge so some — but few — elements pass.
		for _, tau := range []float64{0.5, 1.5, 3.9, 1e9} {
			want := make([]int32, n)
			nw := gaussTailScalar(want, src, 7, mu, tau)
			got := make([]int32, n)
			ng := GaussTailSelect(got, src, 7, mu, tau)
			if ng != nw {
				t.Fatalf("n=%d tau=%v: count %d != %d", n, tau, ng, nw)
			}
			for i := 0; i < ng; i++ {
				if got[i] != want[i] {
					t.Fatalf("n=%d tau=%v: idx[%d] %d != %d", n, tau, i, got[i], want[i])
				}
			}
		}
	}
	// NaN distances never select — both paths.
	src := make([]float32, 64)
	for i := range src {
		src[i] = float32(math.NaN())
	}
	if GaussTailSelect(make([]int32, 64), src, 0, 0, 0.5) != 0 {
		t.Fatal("NaN elements must not be selected")
	}
}

// refEliasPack writes gamma(level+1)+sign bit-by-bit MSB-first — the
// pre-batching reference semantics of the compress bit writer.
func refEliasPack(words []uint32, fields []uint32, bitPos uint64) uint64 {
	writeBit := func(b uint32) {
		if b != 0 {
			words[bitPos>>5] |= 1 << (31 - uint(bitPos&31))
		}
		bitPos++
	}
	for _, f := range fields {
		level := f >> 1
		v := level + 1
		n0 := bits.Len32(v) - 1
		for i := 0; i < n0; i++ {
			writeBit(0)
		}
		for i := n0; i >= 0; i-- {
			writeBit((v >> uint(i)) & 1)
		}
		if level > 0 {
			writeBit(f & 1)
		}
	}
	return bitPos
}

func TestEliasGammaSignPackMatchesReference(t *testing.T) {
	rng := NewRNG(25)
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		fields := make([]uint32, n)
		for i := range fields {
			var level uint32
			switch rng.Intn(4) {
			case 0:
				level = 0
			case 1:
				level = uint32(rng.Intn(8))
			case 2:
				level = uint32(rng.Intn(1 << 10))
			default:
				level = uint32(rng.Intn(1<<15 - 1)) // max legal: level+1 < 1<<15
			}
			fields[i] = level<<1 | uint32(rng.Intn(2))
		}
		start := uint64(rng.Intn(97)) // arbitrary, unaligned stream offsets
		nw := int(start/32) + n + 4   // ≤ 31 bits per field + spare word
		want := make([]uint32, nw)
		got := make([]uint32, nw)
		endWant := refEliasPack(want, fields, start)
		endGot := EliasGammaSignPack(got, fields, start)
		if endGot != endWant {
			t.Fatalf("trial %d: end bit %d != %d", trial, endGot, endWant)
		}
		if bitsN := EliasGammaSignBits(fields); start+bitsN != endWant {
			t.Fatalf("trial %d: EliasGammaSignBits %d, stream grew %d", trial, bitsN, endWant-start)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: word[%d] = %08x, want %08x", trial, i, got[i], want[i])
			}
		}
	}
}

func FuzzEliasGammaSignPack(f *testing.F) {
	f.Add(uint16(0), uint16(1), uint16(77), uint8(3))
	f.Add(uint16(32766), uint16(12345), uint16(2), uint8(31))
	f.Fuzz(func(t *testing.T, a, b, c uint16, off uint8) {
		mk := func(x uint16) uint32 {
			level := uint32(x) % (1<<15 - 1)
			return level<<1 | uint32(x>>15)
		}
		fields := []uint32{mk(a), mk(b), mk(c)}
		start := uint64(off) % 64
		nw := int(start/32) + len(fields) + 4
		want := make([]uint32, nw)
		got := make([]uint32, nw)
		endWant := refEliasPack(want, fields, start)
		if endGot := EliasGammaSignPack(got, fields, start); endGot != endWant {
			t.Fatalf("end bit %d != %d", endGot, endWant)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("word[%d] = %08x, want %08x", i, got[i], want[i])
			}
		}
	})
}
