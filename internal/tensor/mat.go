package tensor

// Mat is a dense row-major float32 matrix. It is the workhorse of the NN
// framework: fully connected layers, im2col convolution and LSTM gate
// computations all reduce to Mat products.
type Mat struct {
	Rows, Cols int
	Data       Vec // len == Rows*Cols, row-major
}

// NewMat allocates a zeroed Rows×Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("tensor: negative matrix dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make(Vec, rows*cols)}
}

// MatFrom wraps an existing slice as a Rows×Cols matrix (no copy).
func MatFrom(rows, cols int, data Vec) *Mat {
	if len(data) != rows*cols {
		panic("tensor: MatFrom length mismatch")
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (m *Mat) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Mat) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a subslice (no copy).
func (m *Mat) Row(r int) Vec { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	return &Mat{Rows: m.Rows, Cols: m.Cols, Data: Clone(m.Data)}
}

// MatMul computes dst = a × b. dst must be pre-allocated with shape
// a.Rows × b.Cols and must not alias a or b. The kernel is a blocked
// ikj loop that vectorizes well and runs row-parallel for large outputs.
func MatMul(dst, a, b *Mat) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMul shape mismatch")
	}
	n := a.Rows
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			di := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			Zero(di)
			ai := a.Data[i*a.Cols : (i+1)*a.Cols]
			for k, av := range ai {
				if av == 0 {
					continue
				}
				bk := b.Data[k*b.Cols : (k+1)*b.Cols]
				AXPY(di, av, bk)
			}
		}
	}
	// Parallelize across output rows when the work is worth it.
	if n*a.Cols*b.Cols >= grainSize*8 {
		ParallelFor(n, body)
	} else {
		body(0, n)
	}
}

// MatMulATB computes dst = aᵀ × b without materializing the transpose.
// Shapes: a is m×n, b is m×p, dst is n×p.
func MatMulATB(dst, a, b *Mat) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("tensor: MatMulATB shape mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for k := 0; k < a.Rows; k++ {
		ak := a.Row(k)
		bk := b.Row(k)
		for i, av := range ak {
			if av == 0 {
				continue
			}
			AXPY(dst.Data[i*dst.Cols:(i+1)*dst.Cols], av, bk)
		}
	}
}

// MatMulABT computes dst = a × bᵀ without materializing the transpose.
// Shapes: a is m×n, b is p×n, dst is m×p.
func MatMulABT(dst, a, b *Mat) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: MatMulABT shape mismatch")
	}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Row(i)
			di := dst.Row(i)
			for j := 0; j < b.Rows; j++ {
				di[j] = float32(Dot(ai, b.Row(j)))
			}
		}
	}
	if a.Rows*a.Cols*b.Rows >= grainSize*8 {
		ParallelFor(a.Rows, body)
	} else {
		body(0, a.Rows)
	}
}

// AddRowVec adds v to every row of m (broadcast bias add).
func AddRowVec(m *Mat, v Vec) {
	if len(v) != m.Cols {
		panic("tensor: AddRowVec length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		Add(m.Row(r), v)
	}
}

// ColSums accumulates the column sums of m into dst (len dst == m.Cols).
// Used for bias gradients.
func ColSums(dst Vec, m *Mat) {
	if len(dst) != m.Cols {
		panic("tensor: ColSums length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		Add(dst, m.Row(r))
	}
}
