package tensor

import "math"

// VecView is a strided multi-segment view over a flattened float32 vector:
// an ordered list of []float32 segments that together form one logical
// vector of length Len(). Gradient buckets that span parameter-tensor
// boundaries are the motivating case — the compression algorithms encode
// from and reconstruct into the layers' live gradient storage through a
// view, so no bucket ever pays a gather copy before encode or a scatter
// copy after decode (ARCHITECTURE.md "Memory discipline & hot path").
//
// A view holds references to the segments, never copies of them; segment
// contents may change between operations (they are live gradients), but the
// segment *structure* is fixed between Reset calls. All reductions thread a
// single scalar accumulator through the segments in order, so a
// multi-segment view reduces bitwise-identically to the flat vector it
// represents — with the one documented exception of SignedMeans, whose
// vector kernel already folds in a build-consistent association order.
type VecView struct {
	segs [][]float32
	off  []int // off[i] = flattened start offset of segs[i]
	n    int
}

// NewVecView builds a view over segs in order. Empty segments are dropped.
func NewVecView(segs ...[]float32) *VecView {
	v := &VecView{}
	return v.Reset(segs)
}

// Reset rebuilds the view in place over segs (dropping empty segments) and
// returns it. The segment and offset slices are recycled, so a warm Reset
// with no more segments than the high-water count does not allocate.
func (v *VecView) Reset(segs [][]float32) *VecView {
	v.segs = v.segs[:0]
	v.off = v.off[:0]
	v.n = 0
	for _, s := range segs {
		if len(s) == 0 {
			continue
		}
		v.segs = append(v.segs, s)
		v.off = append(v.off, v.n)
		v.n += len(s)
	}
	return v
}

// Reset1 rebuilds the view as a single contiguous segment (the flat-vector
// adapter case) and returns it. Allocation-free after the first call.
func (v *VecView) Reset1(s []float32) *VecView {
	v.segs = append(v.segs[:0], s)
	v.off = append(v.off[:0], 0)
	v.n = len(s)
	if len(s) == 0 {
		v.segs = v.segs[:0]
		v.off = v.off[:0]
	}
	return v
}

// Len returns the flattened length of the view.
func (v *VecView) Len() int { return v.n }

// Segments returns the ordered segment list. Callers may mutate element
// values (the segments alias live storage) but must not restructure the
// returned slice.
func (v *VecView) Segments() [][]float32 { return v.segs }

// Offsets returns the flattened start offset of each segment, parallel to
// Segments(). Same aliasing rules as Segments.
func (v *VecView) Offsets() []int { return v.off }

// Contiguous returns the backing slice when the view is a single segment
// (or empty), and nil for a genuinely strided view — the fast-path test for
// algorithms with a flat-vector kernel.
func (v *VecView) Contiguous() []float32 {
	switch len(v.segs) {
	case 0:
		return nil
	case 1:
		return v.segs[0]
	}
	return nil
}

// SliceView writes the sub-view covering flattened span [lo, hi) into dst
// (recycling dst's slices, so a warm call does not allocate) and returns
// dst. Boundary segments are sub-sliced; hi is clamped to Len().
func (v *VecView) SliceView(lo, hi int, dst *VecView) *VecView {
	dst.segs = dst.segs[:0]
	dst.off = dst.off[:0]
	dst.n = 0
	if hi > v.n {
		hi = v.n
	}
	if lo < 0 || lo >= hi {
		return dst
	}
	for s := v.segAt(lo); s < len(v.segs) && v.off[s] < hi; s++ {
		seg := v.segs[s]
		a, b := 0, len(seg)
		if v.off[s] < lo {
			a = lo - v.off[s]
		}
		if v.off[s]+len(seg) > hi {
			b = hi - v.off[s]
		}
		dst.segs = append(dst.segs, seg[a:b])
		dst.off = append(dst.off, dst.n)
		dst.n += b - a
	}
	return dst
}

// segAt returns the index of the segment containing flattened offset i
// (binary search over the offset table).
func (v *VecView) segAt(i int) int {
	lo, hi := 0, len(v.segs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if v.off[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// At returns the element at flattened offset i.
func (v *VecView) At(i int) float32 {
	s := v.segAt(i)
	return v.segs[s][i-v.off[s]]
}

// AddAt adds x to the element at flattened offset i — the scatter-add used
// by the sparse exchange paths. Repeated adds to the same index accumulate
// in call order, exactly like the flat g[i] += x loop.
func (v *VecView) AddAt(i int, x float32) {
	s := v.segAt(i)
	v.segs[s][i-v.off[s]] += x
}

// Zero sets every element to 0.
func (v *VecView) Zero() {
	for _, s := range v.segs {
		Zero(s)
	}
}

// CopyTo copies the view's elements into dst[0:Len()].
func (v *VecView) CopyTo(dst []float32) {
	checkLen(len(dst), v.n)
	for i, s := range v.segs {
		copy(dst[v.off[i]:], s)
	}
}

// CopyFrom copies src[0:Len()] into the view's segments.
func (v *VecView) CopyFrom(src []float32) {
	checkLen(len(src), v.n)
	for i, s := range v.segs {
		copy(s, src[v.off[i]:v.off[i]+len(s)])
	}
}

// AddInto computes dst[i] += v[i] over the flattened index space — per-lane,
// bitwise identical to adding the flat vector.
func (v *VecView) AddInto(dst []float32) {
	checkLen(len(dst), v.n)
	for i, s := range v.segs {
		Add(dst[v.off[i]:v.off[i]+len(s)], s)
	}
}

// AXPY computes v[i] += a*src[i] over the flattened index space (the error
// feedback / decode-average kernel, per-lane and bitwise-flat).
func (v *VecView) AXPY(a float32, src []float32) {
	checkLen(len(src), v.n)
	for i, s := range v.segs {
		AXPY(s, a, src[v.off[i]:v.off[i]+len(s)])
	}
}

// Sum returns the float64-accumulated sum, threading one accumulator
// through the segments in order — bitwise identical to Sum on the flat
// vector.
func (v *VecView) Sum() float64 {
	var acc float64
	for _, s := range v.segs {
		for _, x := range s {
			acc += float64(x)
		}
	}
	return acc
}

// Norm2 returns the l2 norm with the same sequential float64 accumulation
// as Norm2 on the flat vector.
func (v *VecView) Norm2() float64 {
	var acc float64
	for _, s := range v.segs {
		for _, x := range s {
			acc += float64(x) * float64(x)
		}
	}
	return math.Sqrt(acc)
}

// AbsMax returns max_i |v[i]|. max is exact, so folding the per-segment
// SIMD maxima returns the same bits as the flat scan for finite inputs.
func (v *VecView) AbsMax() float32 {
	var m float32
	for _, s := range v.segs {
		if sm := AbsMax(s); sm > m {
			m = sm
		}
	}
	return m
}

// SignedMeans computes the paper's two-level statistics over the view: the
// per-segment partial sums (vector kernel + sequential tail, exactly
// SignedMeans' reduction body) are folded in segment order. A single-segment
// view is bitwise identical to SignedMeans on the flat vector; multi-segment
// folding is a build-consistent association exception like the kernel's
// parity lanes.
func (v *VecView) SignedMeans() (muPos, muNeg float32, nPos int) {
	var sp, sn float64
	for _, s := range v.segs {
		ssp, ssn, snp := signedMeansAccum(s)
		sp += ssp
		sn += ssn
		nPos += snp
	}
	if nPos > 0 {
		muPos = float32(sp / float64(nPos))
	}
	if nn := v.n - nPos; nn > 0 {
		muNeg = float32(sn / float64(nn))
	}
	return muPos, muNeg, nPos
}

// ParSignedMeans is SignedMeans with the parallel reduction on a contiguous
// view (paper-scale whole-model vectors); strided views use the sequential
// per-segment fold, which is already kernel-accelerated per segment.
func (v *VecView) ParSignedMeans() (muPos, muNeg float32, nPos int) {
	if s := v.Contiguous(); s != nil || v.n == 0 {
		return ParSignedMeans(s)
	}
	return v.SignedMeans()
}

// HasNaNOrInf reports whether any element is NaN or ±Inf.
func (v *VecView) HasNaNOrInf() bool {
	for _, s := range v.segs {
		if HasNaNOrInf(s) {
			return true
		}
	}
	return false
}
