package tensor

import (
	"encoding/binary"
	"math"
)

// PutF32LE encodes src into dst as little-endian float32 words. dst must
// hold at least 4*len(src) bytes. This is the portable counterpart of
// F32LEBytes: wire code paths use the zero-copy view when BitsZeroCopy()
// allows and convert through a caller-owned (pooled) dst otherwise.
func PutF32LE(dst []byte, src []float32) {
	_ = dst[:4*len(src)]
	for i, f := range src {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(f))
	}
}

// GetF32LE decodes little-endian float32 words from src into dst. src must
// hold at least 4*len(dst) bytes.
func GetF32LE(dst []float32, src []byte) {
	_ = src[:4*len(dst)]
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
}
