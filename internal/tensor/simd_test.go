package tensor

import (
	"math"
	"testing"
)

// randVec fills a vector with a mix of magnitudes, signs and exact zeros so
// the kernel comparisons exercise rounding, sign handling and the clamp path.
func randVec(rng *RNG, n int) Vec {
	v := NewVec(n)
	for i := range v {
		switch rng.Intn(8) {
		case 0:
			v[i] = 0
		case 1:
			v[i] = float32(math.Copysign(1e-30, float64(rng.Float64()-0.5)))
		default:
			v[i] = (rng.Float32() - 0.5) * 8
		}
	}
	return v
}

// kernel lengths to cover: below simdMinLen, odd tails for every unroll
// width, and a large block.
var simdLens = []int{0, 1, 3, 4, 7, 15, 16, 17, 31, 64, 100, 1023, 4096}

func TestAddMatchesScalar(t *testing.T) {
	rng := NewRNG(11)
	for _, n := range simdLens {
		dst := randVec(rng, n)
		src := randVec(rng, n)
		want := Clone(dst)
		addScalar(want, src)
		Add(dst, src)
		for i := range dst {
			if math.Float32bits(dst[i]) != math.Float32bits(want[i]) {
				t.Fatalf("n=%d: Add[%d] = %x, scalar %x", n, i, math.Float32bits(dst[i]), math.Float32bits(want[i]))
			}
		}
	}
}

func TestAXPYMatchesScalar(t *testing.T) {
	rng := NewRNG(12)
	for _, n := range simdLens {
		dst := randVec(rng, n)
		src := randVec(rng, n)
		a := rng.Float32() - 0.5
		want := Clone(dst)
		axpyScalar(want, a, src)
		AXPY(dst, a, src)
		for i := range dst {
			if math.Float32bits(dst[i]) != math.Float32bits(want[i]) {
				t.Fatalf("n=%d: AXPY[%d] = %x, scalar %x", n, i, math.Float32bits(dst[i]), math.Float32bits(want[i]))
			}
		}
	}
}

func TestScaleMatchesScalar(t *testing.T) {
	rng := NewRNG(13)
	for _, n := range simdLens {
		v := randVec(rng, n)
		c := rng.Float32()*2 - 1
		want := Clone(v)
		scaleScalar(want, c)
		Scale(v, c)
		for i := range v {
			if math.Float32bits(v[i]) != math.Float32bits(want[i]) {
				t.Fatalf("n=%d: Scale[%d] = %x, scalar %x", n, i, math.Float32bits(v[i]), math.Float32bits(want[i]))
			}
		}
	}
}

func TestAbsMaxMatchesScalar(t *testing.T) {
	rng := NewRNG(14)
	for _, n := range simdLens {
		v := randVec(rng, n)
		got, want := AbsMax(v), absMaxScalar(v)
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("n=%d: AbsMax = %x, scalar %x", n, got, want)
		}
	}
}

func TestQuantizeFieldsMatchesScalar(t *testing.T) {
	rng := NewRNG(15)
	for _, levels := range []int{1, 4, 15} {
		for _, n := range simdLens {
			g := randVec(rng, n)
			norm := float32(Norm2(g))
			if norm == 0 {
				norm = 1
			}
			rnd := make([]float64, n)
			rng.Float64Vec(rnd)
			got := make([]uint32, n)
			want := make([]uint32, n)
			QuantizeFields(got, g, rnd, norm, levels)
			quantFieldsScalar(want, g, rnd, norm, levels)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("levels=%d n=%d: field[%d] = %#x, scalar %#x (x=%v rnd=%v)",
						levels, n, i, got[i], want[i], g[i], rnd[i])
				}
			}
		}
	}
}

// TestQuantizeFieldsClamp forces the promote-then-clamp corner: |x| == norm
// gives scaled == levels exactly; frac is 0 so no promotion, level stays at
// levels and the clamp must keep it there.
func TestQuantizeFieldsClamp(t *testing.T) {
	g := make([]float32, 32)
	rnd := make([]float64, 32)
	for i := range g {
		g[i] = 2.5
		if i%2 == 1 {
			g[i] = -2.5
		}
	}
	fields := make([]uint32, 32)
	QuantizeFields(fields, g, rnd, 2.5, 4)
	for i, f := range fields {
		wantSign := uint32(i % 2)
		if f != wantSign|4<<1 {
			t.Fatalf("field[%d] = %#x, want %#x", i, f, wantSign|4<<1)
		}
	}
}

func TestPackFields(t *testing.T) {
	rng := NewRNG(16)
	for _, bitsPer := range []uint{2, 3, 4, 5} {
		n := 257
		fields := make([]uint32, n)
		mask := uint32(1<<bitsPer) - 1
		for i := range fields {
			fields[i] = uint32(rng.Intn(int(mask) + 1))
		}
		words := make([]uint32, (n*int(bitsPer)+31)/32)
		// Pack in two irregular chunks to exercise the resumable offset.
		pos := PackFields(words, fields[:100], bitsPer, 0)
		end := PackFields(words, fields[100:], bitsPer, pos)
		if end != uint64(n)*uint64(bitsPer) {
			t.Fatalf("bitsPer=%d: end offset %d, want %d", bitsPer, end, n*int(bitsPer))
		}
		for i, f := range fields {
			bitPos := uint64(i) * uint64(bitsPer)
			w, off := bitPos/32, uint(bitPos%32)
			got := words[w] >> off
			if off+bitsPer > 32 && int(w+1) < len(words) {
				got |= words[w+1] << (32 - off)
			}
			if got&mask != f {
				t.Fatalf("bitsPer=%d: unpack[%d] = %#x, want %#x", bitsPer, i, got&mask, f)
			}
		}
	}
}

func TestWordViews(t *testing.T) {
	v := []float32{0, 1, -2.5, float32(math.Inf(1))}
	w := U32FromF32(v)
	for i := range v {
		if w[i] != math.Float32bits(v[i]) {
			t.Fatalf("U32FromF32[%d] = %#x, want %#x", i, w[i], math.Float32bits(v[i]))
		}
	}
	back := F32FromU32(w)
	for i := range v {
		if math.Float32bits(back[i]) != math.Float32bits(v[i]) {
			t.Fatalf("F32FromU32 round-trip[%d] mismatch", i)
		}
	}
	if WordsZeroCopy() {
		w[1] = math.Float32bits(42)
		if v[1] != 42 {
			t.Fatal("zero-copy word view does not alias")
		}
	}
	if U32FromF32(nil) != nil && len(U32FromF32(nil)) != 0 {
		t.Fatal("nil view not empty")
	}
}

func TestFloat64VecMatchesSequence(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	got := make([]float64, 100)
	a.Float64Vec(got)
	for i := range got {
		if want := b.Float64(); got[i] != want {
			t.Fatalf("Float64Vec[%d] = %v, want %v", i, got[i], want)
		}
	}
}

// SignedMeans is the one kernel allowed to differ from the scalar path in
// association order (documented in simd_amd64.go), so it is checked with a
// tight relative tolerance instead of bitwise; the count must match exactly.
func TestSignedMeansKernelMatchesScalar(t *testing.T) {
	rng := NewRNG(77)
	for _, n := range simdLens {
		v := randVec(rng, n)
		if n > 4 {
			v[1] = float32(math.Copysign(0, -1)) // -0.0 counts as non-negative
			v[3] = 0
		}
		var sp, sn float64
		np := 0
		for _, x := range v {
			if x >= 0 {
				sp += float64(x)
				np++
			} else {
				sn -= float64(x)
			}
		}
		wantP, wantN := float32(0), float32(0)
		if np > 0 {
			wantP = float32(sp / float64(np))
		}
		if nn := n - np; nn > 0 {
			wantN = float32(sn / float64(nn))
		}
		mp, mn, gotNP := SignedMeans(v)
		if gotNP != np {
			t.Fatalf("n=%d: nPos = %d, want %d", n, gotNP, np)
		}
		if relErr(float64(mp), float64(wantP)) > 1e-6 || relErr(float64(mn), float64(wantN)) > 1e-6 {
			t.Fatalf("n=%d: means (%v,%v), want (%v,%v)", n, mp, mn, wantP, wantN)
		}
	}
}

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 1 {
		return d / m
	}
	return d
}
