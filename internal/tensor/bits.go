//go:build (386 || amd64 || arm || arm64 || loong64 || mipsle || mips64le || ppc64le || riscv64 || wasm) && !purego

package tensor

import "unsafe"

// BitsZeroCopy reports whether F32LEBytes returns a zero-copy view of the
// float32 backing memory. True on little-endian targets (where Go's in-memory
// float32 layout already matches the little-endian wire format) unless the
// purego build tag disables the unsafe path; false builds fall back to the
// portable per-element conversion in bits_portable.go.
func BitsZeroCopy() bool { return true }

// F32LEBytes reinterprets v's backing array as the little-endian byte stream
// of its elements, without copying: len(result) == 4*len(v) and the two
// slices alias the same memory. Mutating either is visible through the other.
// Only meaningful when BitsZeroCopy() is true; callers on the wire hot path
// must guard with BitsZeroCopy() and use PutF32LE/GetF32LE otherwise.
func F32LEBytes(v []float32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
}
