package tensor

import "math"

// Selection-support kernels for the sparsifying compressors: a vectorized
// |v| materialization feeding Top-K's heap comparisons, and the Gaussian
// tail test that picks GaussianK's candidate indices. Both dispatch to SSE2
// on amd64 (simd_amd64.s) with the scalar loops below as portable fallbacks
// and odd-tail cleanup.

// AbsInto computes dst[i] = |src[i]| by clearing the sign bit — the ANDPS
// semantics of the vector kernel, so -0.0 maps to +0.0 on every build
// (ordered comparisons cannot tell the two apart, keeping heap selection
// identical either way). Panics when lengths differ.
func AbsInto(dst, src []float32) {
	checkLen(len(dst), len(src))
	vecAbsInto(dst, src)
}

func absIntoScalar(dst, src []float32) {
	for i, x := range src {
		dst[i] = math.Float32frombits(math.Float32bits(x) &^ (1 << 31))
	}
}

// GaussTailSelect appends to dst the flattened indices base+i of every
// element with |float64(src[i]) - mu| > tau, in ascending order, and returns
// how many were selected. The predicate is evaluated in float64 exactly as
// the scalar loop (NaN distances never select). dst must have room for
// len(src) indices — selection is expected sparse, but the kernel's bound is
// the worst case.
func GaussTailSelect(dst []int32, src []float32, base int32, mu, tau float64) int {
	_ = dst[:len(src)]
	nsel, done := gaussTailArch(dst, src, base, mu, tau)
	for i, x := range src[done:] {
		if d := math.Abs(float64(x) - mu); d > tau {
			dst[nsel] = base + int32(done+i)
			nsel++
		}
	}
	return nsel
}

func gaussTailScalar(dst []int32, src []float32, base int32, mu, tau float64) int {
	nsel := 0
	for i, x := range src {
		if d := math.Abs(float64(x) - mu); d > tau {
			dst[nsel] = base + int32(i)
			nsel++
		}
	}
	return nsel
}
