//go:build amd64 && !purego

package tensor

// This file extends the bits.go build-tag pattern from byte views to compute
// kernels: hand-written SSE2 assembly for the elementwise hot loops (Add,
// AXPY, Scale, AbsMax) and for the stochastic level-quantization inner loop
// shared by QSGD and TernGrad. SSE2 is part of the amd64 baseline (GOAMD64=v1)
// so no runtime feature detection is needed; the purego tag or any other
// GOARCH selects the portable fallbacks in simd_generic.go.
//
// Every kernel is bitwise-identical to its scalar counterpart: only
// elementwise and order-independent operations are vectorized (per-lane
// add/mul, max, truncation), never float reductions whose association order
// would change the rounded result. The quantization kernel reproduces the
// scalar float64 arithmetic operation-for-operation (convert, abs, divide by
// norm, multiply by s, truncate, stochastic promote, clamp). Kernels assume
// finite inputs; gradient health checks (HasNaNOrInf) run upstream.

// SIMDEnabled reports whether the assembly vector kernels are compiled in.
func SIMDEnabled() bool { return true }

// simdMinLen is the shortest vector worth the call overhead of an assembly
// kernel; shorter vectors take the scalar path.
const simdMinLen = 16

//go:noescape
func addKernel(dst, src *float32, n int)

//go:noescape
func axpyKernel(dst *float32, a float32, src *float32, n int)

//go:noescape
func scaleKernel(v *float32, c float32, n int)

//go:noescape
func absMaxKernel(v *float32, n int) float32

// qsgdFieldsKernel handles an even number of elements; the Go wrapper peels
// the odd tail. norm and s are passed as float64 so the kernel performs the
// exact double-precision divide/multiply of the scalar path.
//
//go:noescape
func qsgdFieldsKernel(fields *uint32, src *float32, rnd *float64, n int, norm float64, s float64)

// signedMeansKernel reduces n elements (a multiple of 4) into the signed
// partial sums of SignedMeans: sp = Σ x_i for x_i >= 0, sn = Σ -x_i for
// x_i < 0, nNeg = |{x_i < 0}|. The two double-precision accumulator lanes
// split the input by parity and are folded lane0+lane1 at the end, so the
// association order differs from the sequential scalar sum — a deliberate,
// build-consistent exception to the bitwise rule above (the parallel
// reduction in ParSignedMeans already varies the order with GOMAXPROCS).
//
//go:noescape
func signedMeansKernel(v *float32, n int) (sp, sn float64, nNeg int64)

//go:noescape
func absKernel(dst, src *float32, n int)

// gaussTailKernel scans an even number of elements and stores base+i for
// every i whose float64 distance from mu exceeds tau; returns the selected
// count. The Go wrapper peels the odd tail.
//
//go:noescape
func gaussTailKernel(dst *int32, src *float32, n int, base int32, mu, tau float64) int64

// eliasPackKernel is the batched Elias-gamma+sign writer
// (EliasGammaSignPack); scalar amd64 code — the win over the portable loop
// is BSR for the bit length and the branch-free two-word store.
//
//go:noescape
func eliasPackKernel(words *uint32, fields *uint32, n int, bitPos uint64) uint64

func vecAdd(dst, src Vec) {
	if len(dst) >= simdMinLen {
		addKernel(&dst[0], &src[0], len(dst))
		return
	}
	addScalar(dst, src)
}

func vecAXPY(dst Vec, a float32, src Vec) {
	if len(dst) >= simdMinLen {
		axpyKernel(&dst[0], a, &src[0], len(dst))
		return
	}
	axpyScalar(dst, a, src)
}

func vecScale(v Vec, c float32) {
	if len(v) >= simdMinLen {
		scaleKernel(&v[0], c, len(v))
		return
	}
	scaleScalar(v, c)
}

func vecAbsMax(v Vec) float32 {
	if len(v) >= simdMinLen {
		return absMaxKernel(&v[0], len(v))
	}
	return absMaxScalar(v)
}

// signedMeansArch reduces the longest multiple-of-4 prefix of v with the
// vector kernel, returning the partial sums, the non-negative count over the
// prefix, and the prefix length consumed (0 when v is too short to benefit);
// the caller folds in the tail sequentially.
func signedMeansArch(v []float32) (sp, sn float64, np, done int) {
	if len(v) < simdMinLen {
		return 0, 0, 0, 0
	}
	done = len(v) &^ 3
	var nneg int64
	sp, sn, nneg = signedMeansKernel(&v[0], done)
	np = done - int(nneg)
	return sp, sn, np, done
}

// quantFieldsArch runs the vector quantization kernel over the longest even
// prefix and returns how many elements it handled; the caller finishes the
// tail with the scalar loop.
func quantFieldsArch(fields []uint32, g []float32, rnd []float64, norm float32, levels int) int {
	n := len(g) &^ 1
	if n < simdMinLen {
		return 0
	}
	qsgdFieldsKernel(&fields[0], &g[0], &rnd[0], n, float64(norm), float64(levels))
	return n
}

func vecAbsInto(dst, src Vec) {
	if len(src) >= simdMinLen {
		absKernel(&dst[0], &src[0], len(src))
		return
	}
	absIntoScalar(dst, src)
}

// gaussTailArch runs the selection kernel over the longest even prefix of
// src, returning the selected count and the prefix length consumed; the
// caller finishes the tail with the scalar predicate.
func gaussTailArch(dst []int32, src []float32, base int32, mu, tau float64) (nsel, done int) {
	done = len(src) &^ 1
	if done < simdMinLen {
		return 0, 0
	}
	nsel = int(gaussTailKernel(&dst[0], &src[0], done, base, mu, tau))
	return nsel, done
}

func eliasPackArch(words []uint32, fields []uint32, bitPos uint64) uint64 {
	if len(fields) == 0 {
		return bitPos
	}
	return eliasPackKernel(&words[0], &fields[0], len(fields), bitPos)
}
