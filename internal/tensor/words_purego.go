//go:build purego

package tensor

import "math"

// WordsZeroCopy reports that this build cannot alias float32 memory as
// uint32 words; callers must branch on it and convert into their own pooled
// buffers. The allocating helpers below keep non-hot-path code working
// unchanged.
func WordsZeroCopy() bool { return false }

// U32FromF32 is the copying fallback of the zero-copy view.
func U32FromF32(v []float32) []uint32 {
	w := make([]uint32, len(v))
	for i, f := range v {
		w[i] = math.Float32bits(f)
	}
	return w
}

// F32FromU32 is the copying fallback of the zero-copy view.
func F32FromU32(w []uint32) []float32 {
	v := make([]float32, len(w))
	for i, u := range w {
		v[i] = math.Float32frombits(u)
	}
	return v
}
