//go:build !amd64 || purego

package tensor

// Portable fallbacks for the assembly kernels in simd_amd64.s. Selected on
// non-amd64 targets and under the purego build tag; bitwise-identical to the
// vector kernels by construction (same per-element arithmetic).

// SIMDEnabled reports whether the assembly vector kernels are compiled in.
func SIMDEnabled() bool { return false }

func vecAdd(dst, src Vec)                 { addScalar(dst, src) }
func vecAXPY(dst Vec, a float32, src Vec) { axpyScalar(dst, a, src) }
func vecScale(v Vec, c float32)           { scaleScalar(v, c) }
func vecAbsMax(v Vec) float32             { return absMaxScalar(v) }

// quantFieldsArch handles no elements on portable builds; the caller's scalar
// loop does all the work.
func quantFieldsArch(fields []uint32, g []float32, rnd []float64, norm float32, levels int) int {
	return 0
}

// signedMeansArch handles no elements on portable builds; the caller's
// sequential loop does all the work.
func signedMeansArch(v []float32) (sp, sn float64, np, done int) {
	return 0, 0, 0, 0
}

func vecAbsInto(dst, src Vec) { absIntoScalar(dst, src) }

// gaussTailArch handles no elements on portable builds; the caller's scalar
// predicate does all the work.
func gaussTailArch(dst []int32, src []float32, base int32, mu, tau float64) (nsel, done int) {
	return 0, 0
}

func eliasPackArch(words []uint32, fields []uint32, bitPos uint64) uint64 {
	return eliasPackScalar(words, fields, bitPos)
}
