package tensor

import (
	"testing"
	"testing/quick"
)

// naiveMul is the reference O(n³) triple loop all kernels are checked against.
func naiveMul(a, b *Mat) *Mat {
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			out.Set(i, j, float32(s))
		}
	}
	return out
}

func randMat(r *RNG, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	r.NormVec(m.Data, 0, 1)
	return m
}

func matsClose(t *testing.T, got, want *Mat, tol float64, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape (%d,%d) vs (%d,%d)", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if !almostEq(float64(got.Data[i]), float64(want.Data[i]), tol) {
			t.Fatalf("%s: element %d = %v, want %v", label, i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	r := NewRNG(1)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {17, 9, 13}, {64, 32, 48}} {
		a := randMat(r, dims[0], dims[1])
		b := randMat(r, dims[1], dims[2])
		dst := NewMat(dims[0], dims[2])
		MatMul(dst, a, b)
		matsClose(t, dst, naiveMul(a, b), 1e-4, "MatMul")
	}
}

func TestMatMulLargeParallel(t *testing.T) {
	r := NewRNG(2)
	a := randMat(r, 130, 70)
	b := randMat(r, 70, 90)
	dst := NewMat(130, 90)
	MatMul(dst, a, b)
	matsClose(t, dst, naiveMul(a, b), 1e-3, "MatMul-large")
}

func TestMatMulATB(t *testing.T) {
	r := NewRNG(3)
	a := randMat(r, 12, 7) // aᵀ is 7x12
	b := randMat(r, 12, 9)
	dst := NewMat(7, 9)
	MatMulATB(dst, a, b)
	// Reference: transpose a explicitly.
	at := NewMat(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	matsClose(t, dst, naiveMul(at, b), 1e-4, "MatMulATB")
}

func TestMatMulABT(t *testing.T) {
	r := NewRNG(4)
	a := randMat(r, 8, 11)
	b := randMat(r, 6, 11) // bᵀ is 11x6
	dst := NewMat(8, 6)
	MatMulABT(dst, a, b)
	bt := NewMat(b.Cols, b.Rows)
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	matsClose(t, dst, naiveMul(a, bt), 1e-4, "MatMulABT")
}

func TestMatShapePanics(t *testing.T) {
	cases := []func(){
		func() { MatMul(NewMat(2, 2), NewMat(2, 3), NewMat(4, 2)) },
		func() { MatMulATB(NewMat(2, 2), NewMat(3, 2), NewMat(4, 2)) },
		func() { MatMulABT(NewMat(2, 2), NewMat(2, 3), NewMat(2, 4)) },
		func() { MatFrom(2, 3, NewVec(5)) },
		func() { AddRowVec(NewMat(2, 3), NewVec(2)) },
		func() { ColSums(NewVec(2), NewMat(2, 3)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAddRowVecColSums(t *testing.T) {
	m := MatFrom(2, 3, Vec{1, 2, 3, 4, 5, 6})
	AddRowVec(m, Vec{10, 20, 30})
	want := Vec{11, 22, 33, 14, 25, 36}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("AddRowVec[%d]=%v want %v", i, m.Data[i], want[i])
		}
	}
	s := NewVec(3)
	ColSums(s, m)
	wantS := Vec{25, 47, 69}
	for i := range wantS {
		if s[i] != wantS[i] {
			t.Fatalf("ColSums[%d]=%v want %v", i, s[i], wantS[i])
		}
	}
}

func TestRowAndAt(t *testing.T) {
	m := MatFrom(2, 2, Vec{1, 2, 3, 4})
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0)=%v", m.At(1, 0))
	}
	row := m.Row(1)
	row[1] = 9
	if m.At(1, 1) != 9 {
		t.Error("Row must alias storage")
	}
	c := m.Clone()
	c.Set(0, 0, 100)
	if m.At(0, 0) != 1 {
		t.Error("Clone must not alias storage")
	}
}

// Property: (A×B)ᵀ == Bᵀ×Aᵀ via the ATB/ABT kernels on random shapes.
func TestMatMulTransposeIdentity(t *testing.T) {
	r := NewRNG(5)
	f := func(seed uint32) bool {
		rr := NewRNG(uint64(seed))
		m := 1 + rr.Intn(10)
		n := 1 + rr.Intn(10)
		p := 1 + rr.Intn(10)
		a := randMat(r, m, n)
		b := randMat(r, n, p)
		ab := NewMat(m, p)
		MatMul(ab, a, b)
		// Compute bᵀaᵀ = (ab)ᵀ using ABT/ATB composition:
		// (ab)ᵀ[j][i] == ab[i][j]
		abt := NewMat(p, m)
		for i := 0; i < m; i++ {
			for j := 0; j < p; j++ {
				abt.Set(j, i, ab.At(i, j))
			}
		}
		// bᵀ × aᵀ directly with naive loops over transposes.
		bt := NewMat(p, n)
		for i := 0; i < n; i++ {
			for j := 0; j < p; j++ {
				bt.Set(j, i, b.At(i, j))
			}
		}
		at := NewMat(n, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				at.Set(j, i, a.At(i, j))
			}
		}
		want := naiveMul(bt, at)
		for i := range want.Data {
			if !almostEq(float64(abt.Data[i]), float64(want.Data[i]), 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
