//go:build !((386 || amd64 || arm || arm64 || loong64 || mipsle || mips64le || ppc64le || riscv64 || wasm) && !purego)

package tensor

// BitsZeroCopy reports that this build cannot alias float32 memory as
// little-endian bytes (big-endian target, or the purego tag): callers must
// convert through PutF32LE/GetF32LE into their own pooled buffers.
func BitsZeroCopy() bool { return false }

// F32LEBytes is the safe fallback: an allocating little-endian encode. The
// wire hot paths never call it on fallback builds (they branch on
// BitsZeroCopy and reuse pooled buffers via PutF32LE); it exists so code that
// tolerates one allocation keeps working unchanged.
func F32LEBytes(v []float32) []byte {
	dst := make([]byte, 4*len(v))
	PutF32LE(dst, v)
	return dst
}
