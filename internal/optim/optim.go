// Package optim implements the optimizer and learning-rate machinery of the
// paper's Table 1: plain SGD with optional momentum and weight decay, the
// LARS layer-wise adaptive scaling used for the large-batch VGG-16 runs, and
// the LR policies — Linear Scaling (LS), Gradual Warmup (GW) and Polynomial
// Decay (PD).
package optim

import (
	"math"

	"a2sgd/internal/nn"
	"a2sgd/internal/tensor"
)

// Schedule computes the learning rate for an epoch. Schedules compose
// multiplicatively via Chain.
type Schedule interface {
	// LR returns the learning rate at the given (0-based) epoch out of
	// totalEpochs.
	LR(epoch, totalEpochs int) float64
}

// Const is a fixed learning rate.
type Const float64

// LR implements Schedule.
func (c Const) LR(int, int) float64 { return float64(c) }

// LinearScaling multiplies a base schedule by Factor·P — the "LS(1×)" /
// "LS(1.5×)" entries of Table 1, which scale the LR with worker count.
type LinearScaling struct {
	Base    Schedule
	Factor  float64
	Workers int
}

// LR implements Schedule.
func (l LinearScaling) LR(e, t int) float64 {
	return l.Base.LR(e, t) * l.Factor * float64(l.Workers)
}

// GradualWarmup ramps the LR linearly from Base/WarmupEpochs to the full
// base value over the first WarmupEpochs epochs (Goyal et al.).
type GradualWarmup struct {
	Base         Schedule
	WarmupEpochs int
}

// LR implements Schedule.
func (g GradualWarmup) LR(e, t int) float64 {
	base := g.Base.LR(e, t)
	if g.WarmupEpochs <= 0 || e >= g.WarmupEpochs {
		return base
	}
	return base * float64(e+1) / float64(g.WarmupEpochs)
}

// PolynomialDecay decays the LR to zero as (1 − e/T)^Power (Power 2 is the
// common default).
type PolynomialDecay struct {
	Base  Schedule
	Power float64
}

// LR implements Schedule.
func (p PolynomialDecay) LR(e, t int) float64 {
	if t <= 0 {
		return p.Base.LR(e, t)
	}
	frac := 1 - float64(e)/float64(t)
	if frac < 0 {
		frac = 0
	}
	pw := p.Power
	if pw == 0 {
		pw = 2
	}
	return p.Base.LR(e, t) * math.Pow(frac, pw)
}

// PolicyFor returns the Table 1 LR policy for a model family at a worker
// count: FNN-3 "LS(1×)+GW+PD" @ 0.01, VGG-16 "LS(1.5×)+GW+PD+LARS" @ 0.1,
// ResNet-20 "LS(1×)+GW+PD" @ 0.1, LSTM "PD" @ 22. The LARS flag is returned
// separately since it modifies the optimizer, not the schedule.
func PolicyFor(family string, workers int) (s Schedule, useLARS bool) {
	switch family {
	case "fnn3":
		return PolynomialDecay{Base: GradualWarmup{
			Base:         LinearScaling{Base: Const(0.01), Factor: 1, Workers: workers},
			WarmupEpochs: 3,
		}}, false
	case "vgg16":
		return PolynomialDecay{Base: GradualWarmup{
			Base:         LinearScaling{Base: Const(0.1), Factor: 1.5, Workers: workers},
			WarmupEpochs: 3,
		}}, true
	case "resnet20":
		return PolynomialDecay{Base: GradualWarmup{
			Base:         LinearScaling{Base: Const(0.1), Factor: 1, Workers: workers},
			WarmupEpochs: 3,
		}}, false
	case "lstm":
		return PolynomialDecay{Base: Const(22)}, false
	default:
		return Const(0.01), false
	}
}

// SGD applies w ← w − η·(g + wd·w) with optional momentum and optional LARS
// layer-wise trust scaling.
type SGD struct {
	// Momentum in [0, 1); 0 disables the velocity buffers.
	Momentum float32
	// WeightDecay is the L2 coefficient applied inside the update.
	WeightDecay float32
	// LARS enables layer-wise adaptive rate scaling (You et al., the
	// paper's reference [11]): each parameter tensor's step is scaled by
	// Trust·‖w‖/(‖g‖ + wd·‖w‖ + ε).
	LARS bool
	// Trust is the LARS trust coefficient (default 0.001 when zero).
	Trust float64

	vel map[string][]float32
}

// NewSGD builds a plain SGD optimizer.
func NewSGD(momentum, weightDecay float32) *SGD {
	return &SGD{Momentum: momentum, WeightDecay: weightDecay}
}

// Step applies one update with learning rate lr to all parameters.
func (s *SGD) Step(params []nn.Param, lr float64) {
	for _, p := range params {
		step := lr
		if s.LARS {
			trust := s.Trust
			if trust == 0 {
				trust = 0.001
			}
			wn := tensor.Norm2(p.W)
			gn := tensor.Norm2(p.G)
			denom := gn + float64(s.WeightDecay)*wn + 1e-12
			if wn > 0 && denom > 0 {
				local := trust * wn / denom
				// Clamp the adaptive ratio: with sparse or error-compensated
				// gradients ‖g‖ can be near zero, which would otherwise send
				// the local rate to infinity and destabilize training.
				if local > 10 {
					local = 10
				}
				step = lr * local
			}
		}
		if s.Momentum > 0 {
			if s.vel == nil {
				s.vel = make(map[string][]float32)
			}
			v, ok := s.vel[p.Name]
			if !ok || len(v) != len(p.W) {
				v = make([]float32, len(p.W))
				s.vel[p.Name] = v
			}
			for i := range p.W {
				g := p.G[i] + s.WeightDecay*p.W[i]
				v[i] = s.Momentum*v[i] + g
				p.W[i] -= float32(step) * v[i]
			}
		} else {
			for i := range p.W {
				g := p.G[i] + s.WeightDecay*p.W[i]
				p.W[i] -= float32(step) * g
			}
		}
	}
}

// Reset clears momentum state (between convergence runs).
func (s *SGD) Reset() { s.vel = nil }

// GatherVelocity copies the momentum buffers into dst, flattened positionally
// in params order (dst length = total parameter count). Parameters without a
// buffer yet contribute zeros. Positional layout sidesteps the fact that
// layer-derived parameter names are not unique: parameters that share a name
// also share one velocity buffer in Step, and the flattened copy reproduces
// exactly the values Step would read at each position.
func (s *SGD) GatherVelocity(params []nn.Param, dst []float32) {
	off := 0
	for _, p := range params {
		seg := dst[off : off+len(p.W)]
		if v, ok := s.vel[p.Name]; ok && len(v) == len(seg) {
			copy(seg, v)
		} else {
			for i := range seg {
				seg[i] = 0
			}
		}
		off += len(p.W)
	}
}

// ScatterVelocity restores momentum buffers captured by GatherVelocity. It
// allocates buffers even where the flattened segment is zero, so a restored
// optimizer is indistinguishable from one that has already stepped.
func (s *SGD) ScatterVelocity(params []nn.Param, src []float32) {
	if s.vel == nil {
		s.vel = make(map[string][]float32)
	}
	off := 0
	for _, p := range params {
		seg := src[off : off+len(p.W)]
		v, ok := s.vel[p.Name]
		if !ok || len(v) != len(seg) {
			v = make([]float32, len(seg))
			s.vel[p.Name] = v
		}
		copy(v, seg)
		off += len(p.W)
	}
}

// ClipGradNorm rescales all gradients so their global l2 norm does not
// exceed maxNorm, returning the pre-clip norm. The standard recurrent-
// network stabilizer (and one of Deep Gradient Compression's ingredients).
func ClipGradNorm(params []nn.Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		n := tensor.Norm2(p.G)
		sq += n * n
	}
	total := math.Sqrt(sq)
	if maxNorm > 0 && total > maxNorm {
		scale := float32(maxNorm / (total + 1e-12))
		for _, p := range params {
			tensor.Scale(p.G, scale)
		}
	}
	return total
}
