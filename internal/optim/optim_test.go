package optim

import (
	"math"
	"testing"

	"a2sgd/internal/nn"
)

func TestConstSchedule(t *testing.T) {
	if Const(0.1).LR(5, 100) != 0.1 {
		t.Error("const")
	}
}

func TestLinearScaling(t *testing.T) {
	s := LinearScaling{Base: Const(0.1), Factor: 1.5, Workers: 8}
	if got := s.LR(0, 10); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("got %v want 1.2", got)
	}
}

func TestGradualWarmup(t *testing.T) {
	s := GradualWarmup{Base: Const(1), WarmupEpochs: 4}
	wants := []float64{0.25, 0.5, 0.75, 1, 1, 1}
	for e, w := range wants {
		if got := s.LR(e, 10); math.Abs(got-w) > 1e-12 {
			t.Errorf("epoch %d: got %v want %v", e, got, w)
		}
	}
	// No warmup configured → identity.
	s0 := GradualWarmup{Base: Const(2)}
	if s0.LR(0, 10) != 2 {
		t.Error("zero warmup should be identity")
	}
}

func TestPolynomialDecay(t *testing.T) {
	s := PolynomialDecay{Base: Const(1), Power: 2}
	if got := s.LR(0, 10); got != 1 {
		t.Errorf("epoch 0: %v", got)
	}
	if got := s.LR(5, 10); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("epoch 5: %v want 0.25", got)
	}
	if got := s.LR(10, 10); got != 0 {
		t.Errorf("final epoch: %v want 0", got)
	}
	if got := s.LR(15, 10); got != 0 {
		t.Errorf("past end must clamp: %v", got)
	}
	// Zero power defaults to 2; zero total epochs is identity.
	d := PolynomialDecay{Base: Const(1)}
	if got := d.LR(5, 10); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("default power: %v", got)
	}
	if d.LR(3, 0) != 1 {
		t.Error("t=0 should be identity")
	}
}

func TestPolicyForMatchesTable1(t *testing.T) {
	// FNN: LS(1x)+GW+PD at base 0.01 → epoch after warmup, early in decay.
	s, lars := PolicyFor("fnn3", 8)
	if lars {
		t.Error("fnn3 should not use LARS")
	}
	// After warmup (epoch 3 of 30): LR ≈ 0.01·8·(1-3/30)².
	want := 0.01 * 8 * math.Pow(0.9, 2)
	if got := s.LR(3, 30); math.Abs(got-want) > 1e-9 {
		t.Errorf("fnn3 LR = %v want %v", got, want)
	}
	// VGG: factor 1.5 and LARS on.
	s, lars = PolicyFor("vgg16", 4)
	if !lars {
		t.Error("vgg16 should use LARS")
	}
	want = 0.1 * 1.5 * 4 * math.Pow(1-3.0/150, 2)
	if got := s.LR(3, 150); math.Abs(got-want) > 1e-9 {
		t.Errorf("vgg16 LR = %v want %v", got, want)
	}
	// LSTM: plain PD at 22, no scaling with workers.
	s, lars = PolicyFor("lstm", 16)
	if lars {
		t.Error("lstm: no LARS")
	}
	if got := s.LR(0, 100); math.Abs(got-22) > 1e-9 {
		t.Errorf("lstm epoch-0 LR = %v want 22", got)
	}
	// Unknown family falls back to a small constant.
	s, _ = PolicyFor("nope", 2)
	if s.LR(0, 1) != 0.01 {
		t.Error("fallback policy")
	}
}

func makeParam(w, g []float32) nn.Param {
	return nn.Param{Name: "p", W: w, G: g}
}

func TestSGDPlainStep(t *testing.T) {
	w := []float32{1, 2}
	g := []float32{0.5, -0.5}
	s := NewSGD(0, 0)
	s.Step([]nn.Param{makeParam(w, g)}, 0.1)
	if math.Abs(float64(w[0])-0.95) > 1e-6 || math.Abs(float64(w[1])-2.05) > 1e-6 {
		t.Errorf("w = %v", w)
	}
}

func TestSGDWeightDecay(t *testing.T) {
	w := []float32{1}
	g := []float32{0}
	s := NewSGD(0, 0.1)
	s.Step([]nn.Param{makeParam(w, g)}, 1)
	// w ← w − 1·(0 + 0.1·1) = 0.9
	if math.Abs(float64(w[0])-0.9) > 1e-6 {
		t.Errorf("w = %v", w)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	w := []float32{0}
	g := []float32{1}
	s := NewSGD(0.9, 0)
	s.Step([]nn.Param{makeParam(w, g)}, 1) // v=1, w=-1
	s.Step([]nn.Param{makeParam(w, g)}, 1) // v=1.9, w=-2.9
	if math.Abs(float64(w[0])+2.9) > 1e-6 {
		t.Errorf("w = %v, want -2.9", w[0])
	}
	s.Reset()
	s.Step([]nn.Param{makeParam(w, g)}, 1) // v=1 again
	if math.Abs(float64(w[0])+3.9) > 1e-6 {
		t.Errorf("after reset w = %v, want -3.9", w[0])
	}
}

func TestSGDLARSScalesByLayer(t *testing.T) {
	// Two layers with identical gradients but different weight norms must
	// receive different effective steps under LARS.
	w1 := []float32{10, 0}
	w2 := []float32{0.1, 0}
	g1 := []float32{1, 0}
	g2 := []float32{1, 0}
	s := &SGD{LARS: true, Trust: 0.01}
	s.Step([]nn.Param{{Name: "a", W: w1, G: g1}, {Name: "b", W: w2, G: g2}}, 1)
	step1 := 10 - float64(w1[0])
	step2 := 0.1 - float64(w2[0])
	// local lr = trust·‖w‖/‖g‖ → layer 1 steps 0.1, layer 2 steps 0.001.
	if math.Abs(step1-0.1) > 1e-4 {
		t.Errorf("layer1 step %v want 0.1", step1)
	}
	if math.Abs(step2-0.001) > 1e-6 {
		t.Errorf("layer2 step %v want 0.001", step2)
	}
}

func TestSGDLARSZeroWeightsFallsBack(t *testing.T) {
	// ‖w‖ = 0 (fresh bias): LARS must not zero the step entirely; it falls
	// back to the plain LR.
	w := []float32{0}
	g := []float32{1}
	s := &SGD{LARS: true, Trust: 0.01}
	s.Step([]nn.Param{makeParam(w, g)}, 0.5)
	if w[0] != -0.5 {
		t.Errorf("w = %v, want -0.5 (plain step)", w[0])
	}
}

func TestSGDLARSDefaultTrust(t *testing.T) {
	w := []float32{1}
	g := []float32{1}
	s := &SGD{LARS: true} // Trust defaults to 0.001
	s.Step([]nn.Param{makeParam(w, g)}, 1)
	if math.Abs(float64(1-w[0])-0.001) > 1e-6 {
		t.Errorf("step %v want 0.001", 1-w[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	g1 := []float32{3, 0}
	g2 := []float32{0, 4}
	params := []nn.Param{{Name: "a", W: make([]float32, 2), G: g1},
		{Name: "b", W: make([]float32, 2), G: g2}}
	// Global norm = 5; clip to 2.5 → all gradients halved.
	pre := ClipGradNorm(params, 2.5)
	if math.Abs(pre-5) > 1e-9 {
		t.Fatalf("pre-clip norm %v", pre)
	}
	if math.Abs(float64(g1[0])-1.5) > 1e-5 || math.Abs(float64(g2[1])-2) > 1e-5 {
		t.Fatalf("clipped grads %v %v", g1, g2)
	}
	// Under the limit: untouched.
	pre = ClipGradNorm(params, 100)
	if math.Abs(float64(g1[0])-1.5) > 1e-5 {
		t.Fatal("clip below limit must not rescale")
	}
	_ = pre
	// maxNorm <= 0 disables clipping.
	ClipGradNorm(params, 0)
	if math.Abs(float64(g1[0])-1.5) > 1e-5 {
		t.Fatal("maxNorm=0 must disable clipping")
	}
}
